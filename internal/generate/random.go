// Package generate synthesizes the workloads of the paper's evaluation:
// random hypergraphs with planted tangled blocks (Table 1, Figures 2-3,
// "generated based on Garbers et al."), Rent-rule-driven hierarchical
// circuits standing in for the ISPD 2005/06 placement benchmarks
// (Table 2, Figures 4-5), structural logic fragments (adders, decoders,
// MUX trees, dissolved ROMs) used to plant realistic tangled logic, and
// an industrial-circuit proxy with dissolved ROM blocks (Table 3,
// Figures 1, 6, 7).
//
// Everything is deterministic for a fixed Spec.Seed, so experiment
// tables regenerate bit-identically.
package generate

import (
	"fmt"
	"math"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// BlockSpec describes one planted tangled block in a random graph.
type BlockSpec struct {
	// Size is the number of cells in the block.
	Size int
	// InternalPins is the target average pin count inside the block;
	// it should exceed the background AvgPins so the block is denser
	// than its surroundings (complex-gate logic per the paper). 0
	// means DefaultBlockPins.
	InternalPins float64
	// ExternalNets is the number of boundary nets tying the block to
	// the rest of the circuit — this *is* the block's net cut T(C),
	// since block cells appear in no other external net. 0 means a
	// Rent-like default of round(0.4 · Size^0.6) nets, which lands the
	// planted blocks in the paper's reported score range (« 1).
	ExternalNets int
}

// DefaultBlockPins is the internal pin density used when
// BlockSpec.InternalPins is zero.
const DefaultBlockPins = 5.0

// RandomGraphSpec configures a Garbers-style random hypergraph with
// planted tangled blocks.
type RandomGraphSpec struct {
	// Cells is |V|.
	Cells int
	// AvgPins is the background average pin count A(G) target
	// (0 means 4.0, a typical standard-cell figure).
	AvgPins float64
	// Blocks are the planted GTLs; their sizes must sum to < Cells.
	Blocks []BlockSpec
	// Seed drives the deterministic RNG.
	Seed uint64
}

// RandomGraph is a generated hypergraph plus its ground truth.
type RandomGraph struct {
	Netlist *netlist.Netlist
	// Blocks holds the ground-truth membership of each planted block,
	// in the order of the spec.
	Blocks [][]netlist.CellID
}

// NewRandomGraph builds the random graph. Background cells connect only
// to background cells; block cells connect internally plus through
// exactly ExternalNets boundary nets, so each block's true cut is known
// a priori — the property Table 1's miss/over columns rely on.
func NewRandomGraph(spec RandomGraphSpec) (*RandomGraph, error) {
	if spec.Cells < 4 {
		return nil, fmt.Errorf("generate: need at least 4 cells, got %d", spec.Cells)
	}
	blockTotal := 0
	for i, b := range spec.Blocks {
		if b.Size < 4 {
			return nil, fmt.Errorf("generate: block %d too small (%d cells)", i, b.Size)
		}
		blockTotal += b.Size
	}
	if blockTotal >= spec.Cells {
		return nil, fmt.Errorf("generate: blocks use %d of %d cells; need background room", blockTotal, spec.Cells)
	}
	avg := spec.AvgPins
	if avg <= 0 {
		avg = 4.0
	}
	rng := ds.NewRNG(spec.Seed + 0x5eed)

	// Scatter block membership across the id space with a random
	// permutation so cell ids carry no structure.
	perm := rng.Perm(spec.Cells)
	var b netlist.Builder
	b.DropDegenerateNets = true
	b.AddCells(spec.Cells)

	out := &RandomGraph{Blocks: make([][]netlist.CellID, len(spec.Blocks))}
	next := 0
	take := func(n int) []netlist.CellID {
		ids := make([]netlist.CellID, n)
		for i := 0; i < n; i++ {
			ids[i] = netlist.CellID(perm[next])
			next++
		}
		return ids
	}
	var blockCells [][]netlist.CellID
	for i, bs := range spec.Blocks {
		cells := take(bs.Size)
		out.Blocks[i] = cells
		blockCells = append(blockCells, cells)
	}
	background := take(spec.Cells - blockTotal)

	// Background: small random nets among background cells until the
	// average pin count target is met.
	addRandomNets(&b, rng, background, avg, netSizeDist)

	// Blocks: a connectivity spine (Hamiltonian-ish 2-pin chain) to
	// guarantee the block is connected, then dense random internal
	// nets up to the internal pin target.
	for i, bs := range spec.Blocks {
		cells := blockCells[i]
		internal := bs.InternalPins
		if internal <= 0 {
			internal = DefaultBlockPins
		}
		for j := 1; j < len(cells); j++ {
			b.AddNet("", cells[j-1], cells[j])
		}
		// The spine contributed 2 pins per cell on average already.
		remaining := internal - 2
		if remaining > 0 {
			addRandomNets(&b, rng, cells, remaining, blockNetSizeDist)
		}
		// Boundary nets: 1-2 block pins + 1-3 background pins each.
		ext := bs.ExternalNets
		if ext <= 0 {
			ext = defaultExternalNets(bs.Size)
		}
		for e := 0; e < ext; e++ {
			pins := []netlist.CellID{cells[rng.Intn(len(cells))]}
			if rng.Float64() < 0.3 {
				pins = append(pins, cells[rng.Intn(len(cells))])
			}
			for k := 0; k < 1+rng.Intn(3); k++ {
				pins = append(pins, background[rng.Intn(len(background))])
			}
			b.AddNet("", pins...)
		}
	}
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.Netlist = nl
	return out, nil
}

// defaultExternalNets follows Rent-like scaling so planted blocks score
// deep below 1 at every size the paper uses (500 … 40K cells).
func defaultExternalNets(size int) int {
	n := int(0.4 * math.Pow(float64(size), 0.6))
	if n < 4 {
		n = 4
	}
	return n
}

// netSizeDist mimics a synthesized netlist's net-size histogram:
// dominated by 2- and 3-pin nets.
var netSizeDist = []struct {
	size int
	cum  float64
}{
	{2, 0.55}, {3, 0.80}, {4, 0.92}, {5, 1.0},
}

// blockNetSizeDist is denser (complex NAND4/AOI-style gates).
var blockNetSizeDist = []struct {
	size int
	cum  float64
}{
	{2, 0.30}, {3, 0.60}, {4, 0.85}, {5, 0.95}, {6, 1.0},
}

// addRandomNets adds random nets over the pool until the pool's average
// pin count increases by avgPins (approximately; net sizes are drawn
// from dist).
func addRandomNets(b *netlist.Builder, rng *ds.RNG, pool []netlist.CellID, avgPins float64, dist []struct {
	size int
	cum  float64
}) {
	if len(pool) < 2 {
		return
	}
	targetPins := int(avgPins * float64(len(pool)))
	pins := 0
	for pins < targetPins {
		sz := drawSize(rng, dist)
		if sz > len(pool) {
			sz = len(pool)
		}
		cells := make([]netlist.CellID, 0, sz)
		for len(cells) < sz {
			c := pool[rng.Intn(len(pool))]
			dup := false
			for _, x := range cells {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				cells = append(cells, c)
			}
		}
		b.AddNet("", cells...)
		pins += sz
	}
}

func drawSize(rng *ds.RNG, dist []struct {
	size int
	cum  float64
}) int {
	u := rng.Float64()
	for _, d := range dist {
		if u <= d.cum {
			return d.size
		}
	}
	return dist[len(dist)-1].size
}
