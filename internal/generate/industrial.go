package generate

import (
	"fmt"

	"tanglefind/internal/ds"
)

// IndustrialBlockSizes are the ground-truth dissolved-ROM block sizes
// of the paper's 65 nm industrial circuit (Table 3, "Size of GTL in
// design") with the interface widths implied by its cut column.
var IndustrialBlockSizes = []struct {
	Cells int
	Cut   int
}{
	{31880, 36},
	{31914, 36},
	{31754, 36},
	{32002, 36},
	{10932, 28},
}

// NewIndustrialProxy builds the industrial-circuit stand-in: a
// hierarchical host plus the five dissolved-ROM blocks at the paper's
// sizes times scale. The blocks' cells are returned as ground truth.
func NewIndustrialProxy(scale float64, seed uint64) (*Design, error) {
	if scale <= 0 {
		scale = 1
	}
	rng := ds.NewRNG(seed + 0x1d5)
	blockCells := 0
	frags := make([]Fragment, 0, len(IndustrialBlockSizes))
	for _, bs := range IndustrialBlockSizes {
		size := int(float64(bs.Cells) * scale)
		if size < 64 {
			size = 64
		}
		f := DissolvedROM(size, bs.Cut, rng.Uint64())
		frags = append(frags, f)
		blockCells += f.Cells
	}
	// The host is ~3× the combined block area, as in the paper's die
	// shots where the blobs cover a modest fraction of the design.
	hostCells := 3 * blockCells
	if hostCells < 4000 {
		hostCells = 4000
	}
	b, hostOpen, err := buildHier(HierSpec{Cells: hostCells, Rent: 0.62, Seed: seed + 23}, nil)
	if err != nil {
		return nil, fmt.Errorf("generate: industrial host: %w", err)
	}
	d := &Design{Name: "industrial"}
	for _, f := range frags {
		cells := Embed(b, f, hostOpen, rng)
		d.Structures = append(d.Structures, cells)
		d.Kinds = append(d.Kinds, f.Name)
	}
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	d.Netlist = nl
	return d, nil
}
