package generate

// WithReducedInterface narrows a fragment's interface to roughly
// keepOpen nets by absorbing the remainder into 4-to-1 reduction cells,
// modeling the consumer logic (output cones, operand registers) a
// structure is synthesized together with. A bare decoder exposes 2^n
// output nets and would score near ambient; decoder-plus-consumers is
// the tangled unit a placer actually clumps. The reduction cells carry
// ~5 pins each, matching the complex-gate density the paper associates
// with GTLs.
func WithReducedInterface(f Fragment, keepOpen int) Fragment {
	if keepOpen < 1 {
		keepOpen = 1
	}
	if len(f.OpenNets) <= keepOpen {
		return f
	}
	out := Fragment{Name: f.Name, Cells: f.Cells}
	out.InternalNets = append(out.InternalNets, f.InternalNets...)
	out.OpenNets = append(out.OpenNets, f.OpenNets[:keepOpen]...)
	cur := f.OpenNets[keepOpen:]
	for len(cur) > 4 {
		next := make([][]int32, 0, (len(cur)+3)/4)
		for i := 0; i < len(cur); i += 4 {
			end := i + 4
			if end > len(cur) {
				end = len(cur)
			}
			c := int32(out.Cells)
			out.Cells++
			for _, net := range cur[i:end] {
				withCell := make([]int32, 0, len(net)+1)
				withCell = append(withCell, net...)
				withCell = append(withCell, c)
				out.InternalNets = append(out.InternalNets, withCell)
			}
			next = append(next, []int32{c})
		}
		cur = next
	}
	out.OpenNets = append(out.OpenNets, cur...)
	return out
}
