package generate

import (
	"fmt"
	"math"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// ISPDProfile parameterizes a proxy for one ISPD 2005/06 placement
// benchmark: a Rent-driven hierarchical host of the benchmark's size
// with a population of embedded logic structures comparable to what the
// paper's finder discovered there (Table 2). Real Bookshelf benchmarks
// can be loaded through internal/bookshelf instead when available.
type ISPDProfile struct {
	Name       string
	Cells      int // paper |V|
	Structures int // paper "# GTL found" — how many structures to plant
	Rent       float64
}

// ISPDProfiles mirrors Table 2's six circuits.
var ISPDProfiles = []ISPDProfile{
	{Name: "bigblue1", Cells: 278164, Structures: 72, Rent: 0.62},
	{Name: "bigblue2", Cells: 557786, Structures: 93, Rent: 0.60},
	{Name: "bigblue3", Cells: 1096812, Structures: 112, Rent: 0.64},
	{Name: "adaptec1", Cells: 211447, Structures: 78, Rent: 0.63},
	{Name: "adaptec2", Cells: 255023, Structures: 54, Rent: 0.61},
	{Name: "adaptec3", Cells: 451650, Structures: 109, Rent: 0.65},
}

// ProfileByName looks an ISPD profile up; ok is false for unknown names.
func ProfileByName(name string) (ISPDProfile, bool) {
	for _, p := range ISPDProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return ISPDProfile{}, false
}

// Design is a generated circuit with ground-truth structure membership.
type Design struct {
	Name    string
	Netlist *netlist.Netlist
	// Structures holds the planted blocks' cells (ground truth).
	Structures [][]netlist.CellID
	// Kinds names each planted structure ("rom12345", "cla64", ...).
	Kinds []string
}

// NewISPDProxy builds the proxy at the given scale (1.0 = the paper's
// cell count; benchmarks default to ~1/8 so the suite runs on laptop
// cores). The planted structure count shrinks with sqrt(scale) so
// scaled designs still contain tens of structures.
func NewISPDProxy(p ISPDProfile, scale float64, seed uint64) (*Design, error) {
	if scale <= 0 {
		scale = 1
	}
	totalCells := int(float64(p.Cells) * scale)
	if totalCells < 4000 {
		totalCells = 4000
	}
	nStructs := int(float64(p.Structures) * math.Sqrt(scale))
	if nStructs < 8 {
		nStructs = 8
	}
	rng := ds.NewRNG(seed ^ hashName(p.Name))

	// Draw the structure mix first so we know how many host cells to
	// generate. Sizes are log-uniform over the Table 2 range, scaled.
	minSize := 64.0
	maxSize := 14000.0 * scale
	if maxSize < 4*minSize {
		maxSize = 4 * minSize
	}
	frags := make([]Fragment, 0, nStructs)
	structCells := 0
	for i := 0; i < nStructs; i++ {
		target := int(math.Exp(math.Log(minSize) + rng.Float64()*(math.Log(maxSize)-math.Log(minSize))))
		frags = append(frags, drawStructure(rng, target))
		structCells += frags[len(frags)-1].Cells
	}
	hostCells := totalCells - structCells
	if hostCells < totalCells/2 {
		hostCells = totalCells / 2
	}

	b, hostOpen, err := buildHier(HierSpec{Cells: hostCells, Rent: p.Rent, Seed: seed + 17}, nil)
	if err != nil {
		return nil, fmt.Errorf("generate: %s host: %w", p.Name, err)
	}
	d := &Design{Name: p.Name}
	for _, f := range frags {
		cells := Embed(b, f, hostOpen, rng)
		d.Structures = append(d.Structures, cells)
		d.Kinds = append(d.Kinds, f.Name)
	}
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	d.Netlist = nl
	return d, nil
}

// drawStructure picks a structure kind with a realistic mix and sizes
// it as close to target cells as its parameter grid allows.
func drawStructure(rng *ds.RNG, target int) Fragment {
	u := rng.Float64()
	switch {
	case u < 0.55:
		// Dissolved-ROM-style dense logic dominates the hotspot
		// population; interface width grows slowly with size.
		open := 24 + rng.Intn(16)
		return DissolvedROM(target, open, rng.Uint64())
	case u < 0.70:
		width := clampInt(target/11, 8, 128) // ~11 cells per CLA bit
		return WithReducedInterface(CarryLookaheadAdder(width), width/4+8)
	case u < 0.80:
		width := clampInt(target/5, 8, 256) // 5 cells per RCA bit
		return WithReducedInterface(RippleCarryAdder(width), width/4+8)
	case u < 0.90:
		n := clampInt(intLog2(target), 5, 9)
		return WithReducedInterface(Decoder(n), n+4)
	case u < 0.97:
		ways := clampInt(target/2, 32, 1024)
		return WithReducedInterface(MuxTree(ways), 8)
	default:
		width := clampInt(intSqrt(target/2), 6, 24)
		return WithReducedInterface(ArrayMultiplier(width), width/2+8)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func intLog2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func intSqrt(v int) int {
	if v < 0 {
		return 0
	}
	return int(math.Sqrt(float64(v)))
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
