package generate

import (
	"testing"

	"tanglefind/internal/ds"
)

// Structural expectations: the fragment generators must produce the
// gate counts and interfaces their circuits imply, so embedding
// arithmetic in the proxies means what the names claim.

func TestRippleCarryAdderStructure(t *testing.T) {
	w := 8
	f := RippleCarryAdder(w)
	if f.Cells != 5*w {
		t.Errorf("cells = %d, want %d (5 per bit)", f.Cells, 5*w)
	}
	// Interface: a_i, b_i, sum_i per bit + carry-in + carry-out.
	if got, want := len(f.OpenNets), 3*w+2; got != want {
		t.Errorf("open nets = %d, want %d", got, want)
	}
}

func TestDecoderStructure(t *testing.T) {
	n := 5
	f := Decoder(n)
	// Interface: n address inputs + 2^n outputs.
	if got, want := len(f.OpenNets), n+(1<<n); got != want {
		t.Errorf("open nets = %d, want %d", got, want)
	}
	if f.Cells < (1<<n)+2*n {
		t.Errorf("cells = %d, want at least %d (ANDs + drivers)", f.Cells, (1<<n)+2*n)
	}
}

func TestMuxTreeStructure(t *testing.T) {
	ways := 32
	f := MuxTree(ways)
	// Interface: 32 data + 5 selects + 1 output.
	if got, want := len(f.OpenNets), ways+5+1; got != want {
		t.Errorf("open nets = %d, want %d", got, want)
	}
}

func TestBarrelShifterStructure(t *testing.T) {
	w := 16
	f := BarrelShifter(w)
	// Interface: w data in + w data out + log2(w) selects.
	if got, want := len(f.OpenNets), 2*w+4; got != want {
		t.Errorf("open nets = %d, want %d", got, want)
	}
	// 1 input rank + 4 mux ranks + 4 selects + buffers.
	if f.Cells < 5*w+4 {
		t.Errorf("cells = %d, want >= %d", f.Cells, 5*w+4)
	}
}

func TestArrayMultiplierStructure(t *testing.T) {
	w := 6
	f := ArrayMultiplier(w)
	// At least w^2 partial products + (w-1)*w adders + 2w drivers.
	minCells := w*w + (w-1)*w + 2*w
	if f.Cells < minCells {
		t.Errorf("cells = %d, want >= %d", f.Cells, minCells)
	}
	// Interface: 2w operand bits + w product bits.
	if got, want := len(f.OpenNets), 3*w; got != want {
		t.Errorf("open nets = %d, want %d", got, want)
	}
}

func TestWithReducedInterface(t *testing.T) {
	f := Decoder(6) // 6 + 64 open nets
	r := WithReducedInterface(f, 10)
	if len(r.OpenNets) > 14 { // keepOpen + up to 4 residual
		t.Errorf("open nets = %d, want <= 14", len(r.OpenNets))
	}
	if r.Cells <= f.Cells {
		t.Error("reduction cells not added")
	}
	// All original open nets either stayed open or gained a consumer.
	if got, want := len(r.InternalNets)+len(r.OpenNets), len(f.InternalNets)+len(f.OpenNets); got < want {
		t.Errorf("nets lost: %d < %d", got, want)
	}
	// No-op cases.
	same := WithReducedInterface(f, 1000)
	if same.Cells != f.Cells || len(same.OpenNets) != len(f.OpenNets) {
		t.Error("keepOpen above interface size should be a no-op")
	}
	// The reduced fragment must still build and stay connected.
	nl, err := BuildStandalone(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !connected(nl) {
		t.Error("reduced fragment disconnected")
	}
}

func TestEmbedGroundTruth(t *testing.T) {
	b, hostOpen, err := NewHierarchicalHost(HierSpec{Cells: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRNGForEmbed()
	f := DissolvedROM(300, 20, 7)
	cells := Embed(b, f, hostOpen, rng)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != f.Cells {
		t.Fatalf("ground truth size %d, want %d", len(cells), f.Cells)
	}
	in := make(mapMembers, len(cells))
	for _, c := range cells {
		in[c] = true
	}
	// Cut equals the interface width: internal nets gained no host
	// pins, every open net did (or stayed internal-only when the host
	// pool was empty — not the case here).
	cut := nl.Cut(cells, in)
	if cut != 20 {
		t.Errorf("embedded cut = %d, want 20", cut)
	}
}

func newTestRNGForEmbed() *ds.RNG { return ds.NewRNG(55) }
