package generate

import (
	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Embed splices a fragment into a host under construction. Internal
// nets are copied verbatim; each open net additionally receives one or
// two host pins drawn from hostOpen (the host's unconsumed terminals),
// wiring the structure into the circuit while keeping its cut equal to
// len(frag.OpenNets). It returns the fragment's cells as global ids —
// the ground truth the experiments score against.
func Embed(b *netlist.Builder, frag Fragment, hostOpen []netlist.CellID, rng *ds.RNG) []netlist.CellID {
	base := b.AddCells(frag.Cells)
	global := func(local int32) netlist.CellID { return base + netlist.CellID(local) }
	for _, net := range frag.InternalNets {
		pins := make([]netlist.CellID, len(net))
		for i, l := range net {
			pins[i] = global(l)
		}
		b.AddNet("", pins...)
	}
	for _, net := range frag.OpenNets {
		pins := make([]netlist.CellID, 0, len(net)+2)
		for _, l := range net {
			pins = append(pins, global(l))
		}
		if len(hostOpen) > 0 {
			pins = append(pins, hostOpen[rng.Intn(len(hostOpen))])
			if rng.Float64() < 0.3 {
				pins = append(pins, hostOpen[rng.Intn(len(hostOpen))])
			}
		}
		b.AddNet("", pins...)
	}
	cells := make([]netlist.CellID, frag.Cells)
	for i := range cells {
		cells[i] = base + netlist.CellID(i)
	}
	return cells
}

// BuildStandalone materializes a fragment as its own netlist (open nets
// become the structure's I/O). Useful for unit tests and the examples.
func BuildStandalone(frag Fragment) (*netlist.Netlist, error) {
	var b netlist.Builder
	b.DropDegenerateNets = false
	b.AddCells(frag.Cells)
	for _, net := range frag.InternalNets {
		pins := make([]netlist.CellID, len(net))
		for i, l := range net {
			pins[i] = netlist.CellID(l)
		}
		b.AddNet("", pins...)
	}
	for _, net := range frag.OpenNets {
		pins := make([]netlist.CellID, len(net))
		for i, l := range net {
			pins[i] = netlist.CellID(l)
		}
		b.AddNet("", pins...)
	}
	return b.Build()
}
