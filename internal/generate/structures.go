package generate

import (
	"fmt"

	"tanglefind/internal/ds"
)

// Fragment is a self-contained logic structure in local cell ids
// 0..Cells-1. InternalNets live wholly inside the structure; OpenNets
// are its I/O — when the fragment is embedded into a host netlist they
// also receive host pins, and their count is therefore the structure's
// net cut T(C). Structural generators model gates as cells and signals
// as nets, the same abstraction the paper's netlists use.
type Fragment struct {
	Name         string
	Cells        int
	InternalNets [][]int32
	OpenNets     [][]int32
}

// fragBuilder keeps fragment construction terse.
type fragBuilder struct{ f Fragment }

func (fb *fragBuilder) cell() int32 {
	id := int32(fb.f.Cells)
	fb.f.Cells++
	return id
}

func (fb *fragBuilder) cells(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = fb.cell()
	}
	return out
}

func (fb *fragBuilder) net(pins ...int32) { fb.f.InternalNets = append(fb.f.InternalNets, pins) }
func (fb *fragBuilder) open(pins ...int32) {
	fb.f.OpenNets = append(fb.f.OpenNets, pins)
}

// buffered connects driver to consumers through a buffer tree with the
// given branching factor, keeping every net at or below branch+1 pins —
// what synthesis does to high-fanout nets, and what keeps structure
// nets under the finder's big-net threshold.
func (fb *fragBuilder) buffered(driver int32, consumers []int32, branch int) {
	for len(consumers) > branch {
		var nextLevel []int32
		for i := 0; i < len(consumers); i += branch {
			end := i + branch
			if end > len(consumers) {
				end = len(consumers)
			}
			buf := fb.cell()
			fb.net(append([]int32{buf}, consumers[i:end]...)...)
			nextLevel = append(nextLevel, buf)
		}
		consumers = nextLevel
	}
	fb.net(append([]int32{driver}, consumers...)...)
}

// RippleCarryAdder builds a width-bit ripple-carry adder: five gates
// per bit (two XORs, two ANDs, an OR) chained through the carry nets.
func RippleCarryAdder(width int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("rca%d", width)}}
	var prevCarry int32 = -1
	for i := 0; i < width; i++ {
		xa, xb, g, p, or := fb.cell(), fb.cell(), fb.cell(), fb.cell(), fb.cell()
		fb.open(xa, g)    // a_i
		fb.open(xa, g)    // b_i
		fb.net(xa, xb, p) // a_i ^ b_i
		fb.net(g, or)     // generate
		fb.net(p, or)     // propagate·carry
		if prevCarry < 0 {
			fb.open(xb, p) // carry-in
		} else {
			fb.net(prevCarry, xb, p) // carry chain
		}
		fb.open(xb) // sum_i
		prevCarry = or
	}
	fb.open(prevCarry) // carry-out
	return fb.f
}

// CarryLookaheadAdder builds a width-bit CLA with 4-bit lookahead
// groups. The lookahead gates take up to five inputs, giving the dense
// complex-gate pin profile the paper associates with tangled logic.
func CarryLookaheadAdder(width int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("cla%d", width)}}
	var groupCarry int32 = -1
	for base := 0; base < width; base += 4 {
		bits := min(4, width-base)
		gs := fb.cells(bits) // generate gates
		ps := fb.cells(bits) // propagate gates
		ss := fb.cells(bits) // sum XORs
		for i := 0; i < bits; i++ {
			fb.open(gs[i], ps[i]) // a_i
			fb.open(gs[i], ps[i]) // b_i
			fb.net(ps[i], ss[i])  // p_i feeds the sum XOR
		}
		// Carry gates: c_{i+1} = g_i + p_i·g_{i-1} + ... + (Π p)·c_in.
		carries := fb.cells(bits)
		for i := 0; i < bits; i++ {
			pins := []int32{carries[i]}
			for j := 0; j <= i; j++ {
				pins = append(pins, gs[j], ps[j])
			}
			fb.net(pins...)
			if i+1 < bits {
				fb.net(carries[i], ss[i+1]) // carry into next sum
			}
		}
		if groupCarry < 0 {
			fb.open(ss[0], carries[bits-1]) // carry-in
		} else {
			fb.net(groupCarry, ss[0], carries[bits-1])
		}
		for i := 0; i < bits; i++ {
			fb.open(ss[i]) // sum outputs
		}
		groupCarry = carries[bits-1]
	}
	fb.open(groupCarry)
	return fb.f
}

// Decoder builds an nIn-to-2^nIn decoder with buffered literal
// distribution (branching 8), the classic tangled control structure.
func Decoder(nIn int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("dec%d", nIn)}}
	outputs := 1 << nIn
	ands := fb.cells(outputs)
	for bit := 0; bit < nIn; bit++ {
		drvT, drvF := fb.cell(), fb.cell() // true/complement drivers
		fb.open(drvT, drvF)                // address input a_bit
		var consT, consF []int32
		for o := 0; o < outputs; o++ {
			if o&(1<<bit) != 0 {
				consT = append(consT, ands[o])
			} else {
				consF = append(consF, ands[o])
			}
		}
		fb.buffered(drvT, consT, 8)
		fb.buffered(drvF, consF, 8)
	}
	for _, a := range ands {
		fb.open(a) // decoded output line
	}
	return fb.f
}

// MuxTree builds a ways-input multiplexer as a binary tree of 2:1 mux
// gates with buffered select lines.
func MuxTree(ways int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("mux%d", ways)}}
	level := make([]int32, 0, ways)
	for i := 0; i < ways; i++ {
		m := fb.cell()
		fb.open(m) // data input d_i
		level = append(level, m)
	}
	sel := 0
	for len(level) > 1 {
		var next []int32
		var selConsumers []int32
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			m := fb.cell()
			fb.net(level[i], m)
			fb.net(level[i+1], m)
			selConsumers = append(selConsumers, m)
			next = append(next, m)
		}
		if len(selConsumers) > 0 {
			drv := fb.cell()
			fb.open(drv) // select line s_level
			fb.buffered(drv, selConsumers, 8)
			sel++
		}
		level = next
	}
	fb.open(level[0]) // mux output
	return fb.f
}

// ArrayMultiplier builds a width×width array multiplier: a grid of
// partial-product AND gates feeding a carry-save adder array.
func ArrayMultiplier(width int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("mult%d", width)}}
	// Partial products: pp[i][j] = a_i · b_j.
	pp := make([][]int32, width)
	aCons := make([][]int32, width)
	bCons := make([][]int32, width)
	for i := range aCons {
		aCons[i] = nil
		bCons[i] = nil
	}
	for i := 0; i < width; i++ {
		pp[i] = fb.cells(width)
		for j := 0; j < width; j++ {
			aCons[i] = append(aCons[i], pp[i][j])
			bCons[j] = append(bCons[j], pp[i][j])
		}
	}
	for i := 0; i < width; i++ {
		aDrv, bDrv := fb.cell(), fb.cell()
		fb.open(aDrv) // a_i
		fb.open(bDrv) // b_i
		fb.buffered(aDrv, aCons[i], 8)
		fb.buffered(bDrv, bCons[i], 8)
	}
	// Carry-save rows of full adders: row r sums pp row r+1 into the
	// running sum/carry vectors.
	sum := pp[0]
	for r := 1; r < width; r++ {
		fas := fb.cells(width)
		for j := 0; j < width; j++ {
			pins := []int32{fas[j], pp[r][j]}
			if j < len(sum) {
				pins = append(pins, sum[j])
			}
			if j > 0 {
				pins = append(pins, fas[j-1]) // carry from the right
			}
			fb.net(pins...)
		}
		sum = fas
	}
	for _, s := range sum {
		fb.open(s) // product bits
	}
	return fb.f
}

// DissolvedROM models the paper's industrial hotspot: a ROM block
// dissolved into dense random complex-gate logic (NAND4/AOI-style, ~5
// pins per cell) behind a small address/data interface. openNets is the
// interface width — it becomes the block's net cut; the industrial
// circuit's blocks had cuts of only 28-36 nets at 11K-32K cells.
func DissolvedROM(cells, openNets int, seed uint64) Fragment {
	if cells < 8 {
		cells = 8
	}
	if openNets < 2 {
		openNets = 2
	}
	rng := ds.NewRNG(seed + 0xd0d0)
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("rom%d", cells)}}
	ids := fb.cells(cells)
	// Connectivity spine.
	for i := 1; i < cells; i++ {
		fb.net(ids[i-1], ids[i])
	}
	// Dense internal mesh: target ~5 pins/cell total; the spine gave ~2.
	targetPins := 5 * cells
	pins := 2 * cells
	for pins < targetPins {
		sz := 3 + rng.Intn(4) // 3-6 pin complex-gate nets
		net := make([]int32, 0, sz)
		for len(net) < sz {
			c := ids[rng.Intn(cells)]
			dup := false
			for _, x := range net {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				net = append(net, c)
			}
		}
		fb.net(net...)
		pins += sz
	}
	// Interface: address/data nets pinned on 1-2 boundary cells each.
	for i := 0; i < openNets; i++ {
		if rng.Float64() < 0.5 {
			fb.open(ids[rng.Intn(cells)])
		} else {
			fb.open(ids[rng.Intn(cells)], ids[rng.Intn(cells)])
		}
	}
	return fb.f
}

// BarrelShifter builds a width-bit, log2(width)-stage barrel shifter:
// each stage is a rank of 2:1 muxes whose inputs come from the previous
// rank at offsets 0 and 2^stage, with a buffered per-stage select line.
func BarrelShifter(width int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("bshift%d", width)}}
	prev := fb.cells(width) // input drivers
	for _, d := range prev {
		fb.open(d) // data inputs
	}
	for shift := 1; shift < width; shift <<= 1 {
		rank := fb.cells(width)
		for i := 0; i < width; i++ {
			fb.net(prev[i], rank[i])               // pass-through input
			fb.net(prev[(i+shift)%width], rank[i]) // shifted input
		}
		sel := fb.cell()
		fb.open(sel) // stage select line
		fb.buffered(sel, rank, 8)
		prev = rank
	}
	for _, d := range prev {
		fb.open(d) // shifted outputs
	}
	return fb.f
}

// Crossbar builds an n×n crossbar: n² switch cells on row and column
// nets (n+1 pins each), a uniformly tangled 2-D structure.
func Crossbar(n int) Fragment {
	fb := &fragBuilder{f: Fragment{Name: fmt.Sprintf("xbar%d", n)}}
	sw := make([][]int32, n)
	for i := range sw {
		sw[i] = fb.cells(n)
	}
	for i := 0; i < n; i++ {
		row := []int32{}
		col := []int32{}
		for j := 0; j < n; j++ {
			row = append(row, sw[i][j])
			col = append(col, sw[j][i])
		}
		rDrv, cDrv := fb.cell(), fb.cell()
		fb.open(rDrv)
		fb.open(cDrv)
		fb.buffered(rDrv, row, 8)
		fb.buffered(cDrv, col, 8)
	}
	return fb.f
}
