package generate

import (
	"testing"

	"tanglefind/internal/metrics"
	"tanglefind/internal/netlist"
)

func TestRandomGraphProperties(t *testing.T) {
	rg, err := NewRandomGraph(RandomGraphSpec{
		Cells:  20_000,
		Blocks: []BlockSpec{{Size: 1000}, {Size: 3000}},
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist
	if err := nl.Validate(); err != nil {
		t.Fatalf("invalid netlist: %v", err)
	}
	if nl.NumCells() != 20_000 {
		t.Fatalf("cells = %d, want 20000", nl.NumCells())
	}
	if got := nl.AvgPins(); got < 3.0 || got > 6.0 {
		t.Errorf("AvgPins = %.2f, want a plausible 3-6", got)
	}
	// The planted blocks' cut must equal the spec'd boundary nets (the
	// generator's central guarantee) and be far below a random subset's.
	for i, block := range rg.Blocks {
		in := make(map[netlist.CellID]bool, len(block))
		for _, c := range block {
			in[c] = true
		}
		cut := nl.Cut(block, mapMembers(in))
		want := defaultExternalNets(len(block))
		if cut > want {
			t.Errorf("block %d cut = %d, want <= %d boundary nets", i, cut, want)
		}
		pins := nl.PinsIn(block)
		aC := float64(pins) / float64(len(block))
		if aC < 3.5 {
			t.Errorf("block %d internal density %.2f pins/cell, want >= 3.5", i, aC)
		}
	}
}

type mapMembers map[netlist.CellID]bool

func (m mapMembers) Has(c int) bool { return m[netlist.CellID(c)] }

func TestRandomGraphRejectsBadSpecs(t *testing.T) {
	cases := []RandomGraphSpec{
		{Cells: 2},
		{Cells: 100, Blocks: []BlockSpec{{Size: 100}}},
		{Cells: 100, Blocks: []BlockSpec{{Size: 2}}},
	}
	for i, spec := range cases {
		if _, err := NewRandomGraph(spec); err == nil {
			t.Errorf("case %d: expected error for spec %+v", i, spec)
		}
	}
}

func TestHierarchicalRentBehavior(t *testing.T) {
	nl, err := NewHierarchical(HierSpec{Cells: 16384, Rent: 0.65, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("invalid netlist: %v", err)
	}
	if got := nl.AvgPins(); got < 2.5 || got > 5.5 {
		t.Errorf("AvgPins = %.2f, want 2.5-5.5", got)
	}
	// Random contiguous-id windows approximate hierarchy modules (ids
	// are assigned leaf-order), so their cut should follow Rent's rule:
	// markedly sublinear growth.
	cutAt := func(k int) int {
		members := make([]netlist.CellID, k)
		in := make(mapMembers, k)
		for i := 0; i < k; i++ {
			members[i] = netlist.CellID(i)
			in[netlist.CellID(i)] = true
		}
		return nl.Cut(members, in)
	}
	c1, c2 := cutAt(1024), cutAt(4096)
	if c1 <= 0 || c2 <= 0 {
		t.Fatalf("degenerate cuts %d, %d", c1, c2)
	}
	ratio := float64(c2) / float64(c1)
	// Pure Rent scaling would give 4^0.65 ≈ 2.46; linear growth gives 4.
	if ratio > 3.5 {
		t.Errorf("cut growth ratio %.2f looks linear, want sublinear (Rent-like)", ratio)
	}
}

func TestStructuralFragmentsAreValid(t *testing.T) {
	frags := []Fragment{
		RippleCarryAdder(16),
		CarryLookaheadAdder(32),
		Decoder(6),
		MuxTree(64),
		ArrayMultiplier(8),
		DissolvedROM(500, 30, 1),
		BarrelShifter(16),
		Crossbar(8),
	}
	for _, f := range frags {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if f.Cells < 4 {
				t.Fatalf("only %d cells", f.Cells)
			}
			nl, err := BuildStandalone(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := nl.Validate(); err != nil {
				t.Fatal(err)
			}
			// All nets must stay below the finder's big-net skip
			// threshold, or the structure would be invisible to
			// Phase I — the reason the generators buffer fanout.
			if st := nl.Stats(); st.MaxNetSize >= 20 {
				t.Errorf("max net size %d >= 20 (big-net threshold)", st.MaxNetSize)
			}
			// The fragment must be one connected component (via its
			// internal nets) so agglomeration can absorb all of it.
			if !connected(nl) {
				t.Error("fragment is not connected")
			}
		})
	}
}

func connected(nl *netlist.Netlist) bool {
	n := nl.NumCells()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := []netlist.CellID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range nl.CellPins(c) {
			for _, o := range nl.NetPins(e) {
				if !seen[o] {
					seen[o] = true
					count++
					queue = append(queue, o)
				}
			}
		}
	}
	return count == n
}

func TestDissolvedROMDensity(t *testing.T) {
	f := DissolvedROM(2000, 36, 9)
	nl, err := BuildStandalone(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := nl.AvgPins(); got < 4.2 {
		t.Errorf("ROM density %.2f pins/cell, want >= 4.2 (complex gates)", got)
	}
	if len(f.OpenNets) != 36 {
		t.Errorf("open nets = %d, want 36", len(f.OpenNets))
	}
}

func TestISPDProxy(t *testing.T) {
	p, ok := ProfileByName("bigblue1")
	if !ok {
		t.Fatal("missing profile")
	}
	d, err := NewISPDProxy(p, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Structures) < 8 {
		t.Errorf("planted %d structures, want >= 8", len(d.Structures))
	}
	// Planted structures should score far below 1 under nGTL-S with a
	// typical Rent exponent — that is what makes them GTLs.
	nl := d.Netlist
	aG := nl.AvgPins()
	for i, s := range d.Structures {
		if len(s) < 200 {
			continue // tiny structures can score closer to ambient
		}
		in := make(mapMembers, len(s))
		for _, c := range s {
			in[c] = true
		}
		cut := nl.Cut(s, in)
		score := metrics.NGTLScore(cut, len(s), 0.65, aG)
		if score > 0.6 {
			t.Errorf("structure %d (%s, %d cells) nGTL-S = %.3f, want < 0.6", i, d.Kinds[i], len(s), score)
		}
	}
}

func TestIndustrialProxy(t *testing.T) {
	d, err := NewIndustrialProxy(0.03, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Structures) != 5 {
		t.Fatalf("blocks = %d, want 5", len(d.Structures))
	}
	for i, s := range d.Structures {
		in := make(mapMembers, len(s))
		for _, c := range s {
			in[c] = true
		}
		cut := d.Netlist.Cut(s, in)
		if cut > IndustrialBlockSizes[i].Cut {
			t.Errorf("block %d cut = %d, want <= %d", i, cut, IndustrialBlockSizes[i].Cut)
		}
	}
}
