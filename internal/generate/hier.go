package generate

import (
	"fmt"
	"math"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// HierSpec configures a Rent-rule-driven hierarchical netlist, the
// stand-in for the ISPD placement benchmarks' background logic. The
// construction is the classic gnl-style bottom-up one: leaf cells carry
// AvgPins open pins each; groups of Fanout modules merge recursively,
// and at each merge enough open pins are consumed by new internal nets
// that the merged module retains ≈ T·size^Rent open terminals. The
// resulting netlist obeys Rent's rule with exponent ≈ Rent by
// construction.
type HierSpec struct {
	// Cells is the approximate number of leaf cells (rounded to a
	// power of Fanout).
	Cells int
	// Rent is the target Rent exponent p (0 means 0.65, a typical
	// value for control-dominated logic).
	Rent float64
	// AvgPins is the leaf pin budget per cell (0 means 4.2).
	AvgPins float64
	// Fanout is the module grouping factor (0 means 4).
	Fanout int
	// Seed drives the deterministic RNG.
	Seed uint64
}

// NewHierarchical builds the hierarchical netlist.
func NewHierarchical(spec HierSpec) (*netlist.Netlist, error) {
	b, _, err := buildHier(spec, nil)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// NewHierarchicalHost builds the hierarchy into a fresh Builder and
// returns the builder plus the top module's open pins, so callers can
// Embed structures of their own before finalizing.
func NewHierarchicalHost(spec HierSpec) (*netlist.Builder, []netlist.CellID, error) {
	return buildHier(spec, nil)
}

// buildHier constructs the hierarchy inside a Builder and returns the
// builder plus the top module's leftover open pins (cells that still
// want connections — embedding splices planted structures onto them).
// When reuse is non-nil the hierarchy is appended to it instead of a
// fresh builder.
func buildHier(spec HierSpec, reuse *netlist.Builder) (*netlist.Builder, []netlist.CellID, error) {
	if spec.Cells < 8 {
		return nil, nil, fmt.Errorf("generate: hierarchical netlist needs >= 8 cells, got %d", spec.Cells)
	}
	p := spec.Rent
	if p <= 0 {
		p = 0.65
	}
	if p >= 1 {
		return nil, nil, fmt.Errorf("generate: Rent exponent must be < 1, got %v", p)
	}
	avg := spec.AvgPins
	if avg <= 0 {
		avg = 4.2
	}
	g := spec.Fanout
	if g <= 1 {
		g = 4
	}
	rng := ds.NewRNG(spec.Seed + 0x41e2)
	leaves := spec.Cells // partial top-level groups are fine

	b := reuse
	if b == nil {
		b = &netlist.Builder{}
	}
	b.DropDegenerateNets = true
	first := b.AddCells(leaves)

	// module = multiset of open pins, each an owning cell id. Leaf
	// modules start with round(avg) pins (jittered to hit the average).
	type module struct {
		open []netlist.CellID
		size int
	}
	mods := make([]module, leaves)
	for i := 0; i < leaves; i++ {
		c := first + netlist.CellID(i)
		pins := int(avg)
		if rng.Float64() < avg-math.Floor(avg) {
			pins++
		}
		m := module{size: 1, open: make([]netlist.CellID, pins)}
		for j := range m.open {
			m.open[j] = c
		}
		mods[i] = m
	}

	t := avg // Rent coefficient: T(1 cell) = avg pins
	for len(mods) > 1 {
		var nextMods []module
		for i := 0; i < len(mods); i += g {
			end := i + g
			if end > len(mods) {
				end = len(mods)
			}
			children := mods[i:end]
			merged := module{}
			for _, ch := range children {
				merged.size += ch.size
				merged.open = append(merged.open, ch.open...)
			}
			target := int(math.Ceil(t * math.Pow(float64(merged.size), p)))
			// Consume open pins into internal nets until only ~target
			// remain. Net sizes 2-4, pins drawn at random so nets mix
			// children (that is what makes the hierarchy connected).
			shuffle(rng, merged.open)
			for len(merged.open) > target && len(merged.open) >= 2 {
				sz := 2 + rng.Intn(3)
				if sz > len(merged.open) {
					sz = len(merged.open)
				}
				net := merged.open[len(merged.open)-sz:]
				merged.open = merged.open[:len(merged.open)-sz]
				b.AddNet("", net...)
			}
			nextMods = append(nextMods, merged)
		}
		mods = nextMods
	}
	return b, mods[0].open, nil
}

func shuffle(rng *ds.RNG, a []netlist.CellID) {
	for i := len(a) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		a[i], a[j] = a[j], a[i]
	}
}
