package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"tanglefind/internal/core"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
	"tanglefind/internal/report"
)

// AblationRow measures one finder variant on the shared workload.
type AblationRow struct {
	Name      string
	RecoveryP float64 // % of the planted block recovered by the best GTL
	OverP     float64 // % extra cells relative to the block
	Found     int
	Elapsed   time.Duration
}

// Ablation runs the design-choice ablations DESIGN.md calls out on one
// planted-block workload: Phase I growth rule (the paper's §3.2.1
// argument), Phase III refinement on/off, driving metric, and the
// big-net skip threshold.
func Ablation(ctx context.Context, cfg Config, w io.Writer) ([]AblationRow, error) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  cfg.scaled(250_000),
		Blocks: []generate.BlockSpec{{Size: cfg.scaled(15_000)}},
		Seed:   cfg.Seed*3 + 5,
	})
	if err != nil {
		return nil, err
	}
	truth := rg.Blocks[0]
	in := make(map[netlist.CellID]bool, len(truth))
	for _, c := range truth {
		in[c] = true
	}
	base := cfg.finderOptions(len(truth), rg.Netlist.NumCells())

	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"weighted ordering (paper)", func(o *core.Options) {}},
		{"min-cut greedy ordering", func(o *core.Options) { o.Ordering = core.OrderMinCut }},
		{"BFS ordering", func(o *core.Options) { o.Ordering = core.OrderBFS }},
		{"refinement off", func(o *core.Options) { o.Refine = false }},
		{"metric nGTL-S", func(o *core.Options) { o.Metric = core.MetricNGTLS }},
		{"big-net skip off", func(o *core.Options) { o.BigNetSkip = 0 }},
	}
	// One engine serves every variant: the ablation sweep is exactly the
	// repeated-run-over-one-netlist shape the pooled worker state exists
	// for.
	finder, err := core.NewFinder(rg.Netlist)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, v := range variants {
		opt := base
		v.mutate(&opt)
		res, err := finder.Find(ctx, opt)
		if err != nil {
			return nil, err
		}
		bestHit, bestOver := 0, 0
		for _, g := range res.GTLs {
			hit := 0
			for _, c := range g.Members {
				if in[c] {
					hit++
				}
			}
			if hit > bestHit {
				bestHit = hit
				bestOver = g.Size() - hit
			}
		}
		rows = append(rows, AblationRow{
			Name:      v.name,
			RecoveryP: 100 * float64(bestHit) / float64(len(truth)),
			OverP:     100 * float64(bestOver) / float64(len(truth)),
			Found:     len(res.GTLs),
			Elapsed:   res.Elapsed,
		})
	}
	if w != nil {
		tbl := report.New(
			fmt.Sprintf("Ablations (planted block %d cells in %d-cell graph, %d seeds)",
				len(truth), rg.Netlist.NumCells(), base.Seeds),
			"Variant", "Recovery%", "Over%", "#GTL", "Runtime")
		for _, r := range rows {
			tbl.Row(r.Name, fmt.Sprintf("%.1f", r.RecoveryP), fmt.Sprintf("%.1f", r.OverP),
				r.Found, r.Elapsed.Round(time.Millisecond).String())
		}
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
