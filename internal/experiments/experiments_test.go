package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tanglefind/internal/bookshelf"
	"tanglefind/internal/core"
	"tanglefind/internal/generate"
)

// tiny is a fast config for CI-style runs of the full suite.
var tiny = Config{Scale: 0.04, Seeds: 100, Seed: 1}

func TestTable1ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	results, err := Table1(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	for _, r := range results {
		for bi, b := range r.Blocks {
			if !b.Found {
				t.Errorf("%s block %d (%d cells): missed entirely", r.Case.Name, bi, b.TruthSize)
				continue
			}
			// Paper: miss <= 0.14%, over <= 0.5%. We allow a little
			// slack at reduced scale where blocks are tiny.
			if b.MissPct > 2 {
				t.Errorf("%s block %d: miss %.2f%% > 2%%", r.Case.Name, bi, b.MissPct)
			}
			if b.OverPct > 5 {
				t.Errorf("%s block %d: over %.2f%% > 5%%", r.Case.Name, bi, b.OverPct)
			}
			if b.NGTLS > 0.5 {
				t.Errorf("%s block %d: nGTL-S %.3f not « 1", r.Case.Name, bi, b.NGTLS)
			}
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	results, err := Table2(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	for _, r := range results {
		if r.Found < 3 {
			t.Errorf("%s: found %d GTLs, want several", r.Name, r.Found)
			continue
		}
		if r.Top[0].Score > 0.4 {
			t.Errorf("%s: best GTL score %.3f, want « 1", r.Name, r.Top[0].Score)
		}
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny
	cfg.Seeds = 160
	r, err := Table3(context.Background(), cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	foundCount := 0
	for _, b := range r.Blocks {
		if b.Found && b.MissPct <= 5 && b.OverPct <= 5 {
			foundCount++
		}
	}
	if foundCount < len(r.Blocks)-1 {
		t.Errorf("recovered %d of %d industrial blocks", foundCount, len(r.Blocks))
	}
}

func TestFigure23Shapes(t *testing.T) {
	for _, m := range []core.Metric{core.MetricNGTLS, core.MetricGTLSD} {
		var buf bytes.Buffer
		r, err := Figure23(context.Background(), m, tiny, &buf)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: insideMin=%.4f@%d (block %d) outsideMin=%.4f end=%.4f",
			m, r.InsideMinV, r.InsideMinK, r.BlockSize, r.OutsideMinV, r.OutsideEndV)
		// Paper shape: inside curve dips deeply at the block size;
		// outside curve never goes anywhere near it.
		if r.InsideMinV > 0.3 {
			t.Errorf("%s: inside minimum %.3f, want deep dip", m, r.InsideMinV)
		}
		tol := int(float64(r.BlockSize) * 0.05)
		if r.InsideMinK < r.BlockSize-tol || r.InsideMinK > r.BlockSize+tol {
			t.Errorf("%s: inside minimum at %d, want near %d", m, r.InsideMinK, r.BlockSize)
		}
		if r.OutsideMinV < 3*r.InsideMinV {
			t.Errorf("%s: outside minimum %.3f too close to inside %.3f",
				m, r.OutsideMinV, r.InsideMinV)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	var buf bytes.Buffer
	r, err := Figure5(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	// Ratio cut favors ever-larger groups: its minimum must sit far
	// right of the structure boundary (it fails to identify the GTL),
	// while the GTL metrics dip at the structure. The hierarchy's
	// module completions make the ratio curve's right tail noisy, so
	// we assert the separation rather than an exact right-end pin.
	if r.RatioCutMinK < r.OrderLen/2 {
		t.Errorf("ratio-cut minimum at %d of %d; expected right-half bias", r.RatioCutMinK, r.OrderLen)
	}
	if r.RatioCutMinK < 3*r.NGTLSMinK {
		t.Errorf("ratio-cut minimum (%d) too close to the structure dip (%d)", r.RatioCutMinK, r.NGTLSMinK)
	}
	if r.NGTLSMinK >= (r.OrderLen*9)/10 {
		t.Errorf("nGTL-S minimum at %d of %d; expected interior dip", r.NGTLSMinK, r.OrderLen)
	}
	if r.GTLSDMinK >= (r.OrderLen*9)/10 {
		t.Errorf("GTL-SD minimum at %d of %d; expected interior dip", r.GTLSDMinK, r.OrderLen)
	}
}

func TestFigure46Renders(t *testing.T) {
	var buf bytes.Buffer
	r, err := Figure46(context.Background(), "industrial", tiny, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	if r.GTLs < 3 {
		t.Errorf("overlay shows %d GTLs, want >= 3", r.GTLs)
	}
	hasSymbol := false
	for _, line := range strings.Split(r.ASCII, "\n") {
		if strings.ContainsAny(line, "0123456789ABCDEF") {
			hasSymbol = true
			break
		}
	}
	if !hasSymbol {
		t.Error("ASCII overlay contains no GTL tiles")
	}
}

func TestInflationShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny
	r, err := Inflation(context.Background(), cfg, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	if r.FoundGTLs < 3 {
		t.Errorf("found %d GTLs before inflating, want >= 3", r.FoundGTLs)
	}
	if r.Before.NetsThrough100 == 0 {
		t.Fatal("baseline has no congestion; experiment vacuous")
	}
	// Paper: 5x reduction at >=100%, 2x at >=90%, 136%->91% average.
	// Shape requirement: clear improvement on all three.
	if r.Ratio100 < 1.3 {
		t.Errorf(">=100%% factor %.2fx, want clear reduction", r.Ratio100)
	}
	if r.Ratio90 < 1.1 {
		t.Errorf(">=90%% factor %.2fx, want reduction", r.Ratio90)
	}
	if r.RatioAvg < 1.05 {
		t.Errorf("avg-congestion factor %.2fx, want reduction", r.RatioAvg)
	}
	// When inflation eliminates overflow entirely the factors degrade
	// to the raw before-counts and their ordering is meaningless.
	if r.After.NetsThrough100 > 0 && r.Ratio100 < r.Ratio90 {
		t.Errorf("paper ordering violated: >=100%% factor (%.2f) < >=90%% factor (%.2f)",
			r.Ratio100, r.Ratio90)
	}
}

func TestAblationOrderingMatters(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Ablation(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + buf.String())
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	paper := byName["weighted ordering (paper)"]
	if paper.RecoveryP < 98 {
		t.Errorf("paper variant recovery %.1f%%, want ~100%%", paper.RecoveryP)
	}
	// §3.2.1: min-cut greed readily absorbs weakly connected outside
	// cells and misses the block.
	if mc := byName["min-cut greedy ordering"]; mc.RecoveryP >= paper.RecoveryP {
		t.Errorf("min-cut greed (%.1f%%) should underperform the paper's rule (%.1f%%)",
			mc.RecoveryP, paper.RecoveryP)
	}
}

func TestTable2Bookshelf(t *testing.T) {
	// Round-trip a generated proxy through Bookshelf files and run the
	// real-benchmark entry point on them.
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 500}},
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := bookshelf.Write(dir, "bb", rg.Netlist); err != nil {
		t.Fatal(err)
	}
	cfg := tiny
	cfg.Seeds = 64
	r, err := Table2RunBookshelf(context.Background(), "bb", filepath.Join(dir, "bb.aux"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells != 6000 {
		t.Fatalf("cells = %d", r.Cells)
	}
	if r.Found < 1 {
		t.Fatal("no GTLs found on the Bookshelf round trip")
	}
	if r.Top[0].Size() < 450 {
		t.Errorf("top GTL size = %d, want ~500", r.Top[0].Size())
	}
}

// TestMultilevelShapeHolds is the smoke test of the flat-vs-multilevel
// comparison: the table renders, the multilevel runs actually coarsen,
// and the pipeline does not collapse quality on the planted blocks.
func TestMultilevelShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	results, err := Multilevel(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(MultilevelCases) {
		t.Fatalf("got %d results for %d cases", len(results), len(MultilevelCases))
	}
	for _, r := range results {
		if r.LevelsUsed < 2 {
			t.Errorf("%s: multilevel run used %d levels; coarsening never engaged", r.Name, r.LevelsUsed)
		}
		if r.MultiRecovery < 85 {
			t.Errorf("%s: multilevel recovery %.1f%%; want >= 85%% at smoke scale", r.Name, r.MultiRecovery)
		}
		if r.FlatMS <= 0 || r.MultiMS <= 0 {
			t.Errorf("%s: non-positive timings: flat %.1fms ml %.1fms", r.Name, r.FlatMS, r.MultiMS)
		}
	}
	if !strings.Contains(buf.String(), "Flat vs multilevel") {
		t.Error("table title missing from rendered output")
	}

	// The JSON record round-trips.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_multilevel.json")
	if err := WriteMultilevelRecord(path, tiny, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec MultilevelRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if len(rec.Results) != len(results) || rec.Scale != tiny.Scale {
		t.Errorf("record mismatch: %+v", rec)
	}
}

func TestIncrementalShapeHolds(t *testing.T) {
	tiny := Config{Scale: 0.08, Seeds: 24, Seed: 1}
	var buf bytes.Buffer
	results, err := Incremental(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IncrementalCases) {
		t.Fatalf("%d results for %d cases", len(results), len(IncrementalCases))
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s: incremental diverged from full re-detection", r.Name)
		}
		if r.ReusedSeeds+r.RerunSeeds != r.Seeds {
			t.Errorf("%s: seed accounting %d+%d != %d", r.Name, r.ReusedSeeds, r.RerunSeeds, r.Seeds)
		}
		if r.DirtyCells == 0 || r.FullMS <= 0 || r.IncrMS <= 0 {
			t.Errorf("%s: degenerate row: %+v", r.Name, r)
		}
	}
	if !strings.Contains(buf.String(), "Incremental vs full") {
		t.Error("table title missing from rendered output")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_incremental.json")
	if err := WriteIncrementalRecord(path, tiny, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec IncrementalRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if len(rec.Results) != len(results) || rec.Scale != tiny.Scale {
		t.Errorf("record mismatch: %+v", rec)
	}
}

func TestLintShapeHolds(t *testing.T) {
	tiny := Config{Scale: 0.02, Seeds: 8, Seed: 1}
	var buf bytes.Buffer
	results, err := Lint(context.Background(), tiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 workload rows, got %d", len(results))
	}
	byName := map[string]*LintResult{}
	for _, r := range results {
		byName[r.Name] = r
		if r.Cells == 0 || r.Nets == 0 {
			t.Errorf("%s: degenerate workload: %+v", r.Name, r)
		}
	}
	mill := byName["ring_mill"]
	if mill == nil || !mill.Directed {
		t.Fatal("ring_mill row missing or undirected")
	}
	// The planted rings must be found; the flip-flop-broken outer
	// cycle must not be (it would show as one giant extra finding).
	if mill.Errors != tiny.scaled(1024) {
		t.Errorf("ring_mill: %d comb-loop errors, want %d planted rings",
			mill.Errors, tiny.scaled(1024))
	}
	host := byName["hier_host"]
	if host == nil || host.Directed {
		t.Fatal("hier_host row missing or unexpectedly directed")
	}
	// Undirected workloads must skip direction-dependent rules, not
	// fail or fabricate findings from them.
	if host.Skipped == 0 {
		t.Error("hier_host: no direction-dependent rules recorded as skipped")
	}
	if host.Errors != 0 {
		t.Errorf("hier_host: %d errors on a clean Rent-rule circuit", host.Errors)
	}
	if !strings.Contains(buf.String(), "Structural lint") {
		t.Error("table title missing from rendered output")
	}
}
