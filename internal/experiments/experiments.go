// Package experiments regenerates every table and figure of the
// paper's evaluation chapter. Each experiment builds its workload with
// internal/generate (or loads real Bookshelf data when pointed at it),
// runs the tangled-logic finder and prints a paper-style table, while
// also returning a structured result the test suite and the root
// benchmarks assert on.
//
// Scale: the paper's largest case has 800K cells and uses 100 seeds on
// an 8-way Xeon server; Config.Scale shrinks the workloads
// proportionally so the suite runs in seconds on laptop cores, and
// ScaleFull reruns the paper's exact sizes.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"tanglefind/internal/bookshelf"
	"tanglefind/internal/core"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
	"tanglefind/internal/report"
)

// Config sets the workload scale of every experiment.
type Config struct {
	// Scale multiplies the paper's design and structure sizes
	// (1.0 = paper scale).
	Scale float64
	// Seeds is the finder's seed count m (paper: 100).
	Seeds int
	// Seed is the deterministic RNG seed for workload generation and
	// the finder.
	Seed uint64
	// Workers caps finder parallelism (0 = GOMAXPROCS).
	Workers int
}

// ScaleSmall runs every experiment in a few seconds on 2 cores —
// the default for tests and benchmarks.
var ScaleSmall = Config{Scale: 0.08, Seeds: 48, Seed: 1}

// ScaleMedium is a heavier preset for workstation runs.
var ScaleMedium = Config{Scale: 0.25, Seeds: 100, Seed: 1}

// ScaleFull reruns the paper's exact sizes (hours on a laptop).
var ScaleFull = Config{Scale: 1.0, Seeds: 100, Seed: 1}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// ResolvedWorkers reports the engine worker count the Config actually
// runs with: Workers when positive, otherwise GOMAXPROCS — the same
// default the engine applies to Options.Workers <= 0. Bench records
// emit this resolved value (never the raw 0) so artifacts stay
// self-describing about the parallelism they were measured under.
func (c Config) ResolvedWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BlockOutcome describes how the finder did on one ground-truth block.
type BlockOutcome struct {
	TruthSize int
	FoundSize int
	Cut       int
	NGTLS     float64
	GTLSD     float64
	MissPct   float64 // % of truth cells missed
	OverPct   float64 // % extra cells relative to truth
	Found     bool
}

// matchOutcome pairs a truth block with its best-overlap GTL.
func matchOutcome(truth []netlist.CellID, gtls []core.GTL) BlockOutcome {
	out := BlockOutcome{TruthSize: len(truth)}
	in := make(map[netlist.CellID]bool, len(truth))
	for _, c := range truth {
		in[c] = true
	}
	bestIdx, bestHit := -1, 0
	for i := range gtls {
		hit := 0
		for _, c := range gtls[i].Members {
			if in[c] {
				hit++
			}
		}
		if hit > bestHit {
			bestHit, bestIdx = hit, i
		}
	}
	if bestIdx < 0 {
		return out
	}
	g := &gtls[bestIdx]
	out.Found = true
	out.FoundSize = g.Size()
	out.Cut = g.Cut
	out.NGTLS = g.NGTLS
	out.GTLSD = g.GTLSD
	out.MissPct = 100 * float64(len(truth)-bestHit) / float64(len(truth))
	out.OverPct = 100 * float64(g.Size()-bestHit) / float64(len(truth))
	return out
}

// findCtx runs one engine-backed detection pass over nl under ctx.
// Experiments build each workload once and run it once, so the engine
// lives for just that run; the ablation sweep, which reruns one
// workload many times, keeps its engine across variants instead.
func findCtx(ctx context.Context, nl *netlist.Netlist, opt core.Options) (*core.Result, error) {
	f, err := core.NewFinder(nl)
	if err != nil {
		return nil, err
	}
	return f.Find(ctx, opt)
}

// finderOptions derives finder options sized for a workload of
// numCells cells whose largest expected GTL has maxBlock cells. Z is
// kept well below |V| — an ordering that swallows the whole netlist
// ends at cut 0 and score 0, which would defeat Phase II's
// interior-minimum test.
func (c Config) finderOptions(maxBlock, numCells int) core.Options {
	opt := core.DefaultOptions()
	opt.Seeds = c.Seeds
	opt.RandSeed = c.Seed
	opt.Workers = c.Workers
	z := 4 * maxBlock
	if z < 2000 {
		z = 2000
	}
	if z > numCells/2 {
		z = numCells / 2
	}
	if z < 2*maxBlock {
		z = 2 * maxBlock // blocks may cover a large design fraction
	}
	if z > 100_000 {
		z = 100_000 // the paper's cap
	}
	opt.MaxOrderLen = z
	return opt
}

// ---------------------------------------------------------------------
// Table 1 — random graphs with planted GTLs.
// ---------------------------------------------------------------------

// Table1Case describes one of the paper's four random-graph cases.
type Table1Case struct {
	Name   string
	Cells  int
	Blocks []int
}

// Table1Cases mirrors the paper's Table 1 workloads.
var Table1Cases = []Table1Case{
	{"case1", 10_000, []int{500}},
	{"case2", 100_000, []int{2000, 15_000}},
	{"case3", 100_000, []int{5000}},
	{"case4", 800_000, []int{40_000, 40_000, 40_000, 40_000, 40_000, 40_000}},
}

// Table1Result is the measured analog of one Table 1 row group.
type Table1Result struct {
	Case      Table1Case
	Cells     int // after scaling
	Found     int
	Blocks    []BlockOutcome
	Elapsed   time.Duration
	Spurious  int // found GTLs not matching any block
	SeedsUsed int // may exceed Config.Seeds (small-block coverage)
}

// Table1Workload builds one case's scaled random graph, returning the
// generated workload and the spec it was built from. Exposed so the
// CLI tools can regenerate and save the exact experiment inputs.
func Table1Workload(cs Table1Case, cfg Config) (*generate.RandomGraph, generate.RandomGraphSpec, error) {
	spec := generate.RandomGraphSpec{
		Cells: cfg.scaled(cs.Cells),
		Seed:  cfg.Seed*1000 + 11,
	}
	blockTotal, origBlockTotal := 0, 0
	for _, b := range cs.Blocks {
		origBlockTotal += b
		size := cfg.scaled(b)
		if size < 48 {
			size = 48 // blocks below ~2x MinGroupSize degenerate
		}
		spec.Blocks = append(spec.Blocks, generate.BlockSpec{Size: size})
		blockTotal += size
	}
	// Block flooring at tiny scales can leave the blocks a larger
	// design fraction than the paper's; restore the paper's
	// block/background proportions (a no-op at full scale).
	if want := blockTotal * cs.Cells / origBlockTotal; spec.Cells < want {
		spec.Cells = want
	}
	if spec.Cells < 2500 {
		spec.Cells = 2500
	}
	rg, err := generate.NewRandomGraph(spec)
	if err != nil {
		return nil, spec, fmt.Errorf("table1 %s: %w", cs.Name, err)
	}
	return rg, spec, nil
}

// Table1Run executes one case.
func Table1Run(ctx context.Context, cs Table1Case, cfg Config) (*Table1Result, error) {
	rg, spec, err := Table1Workload(cs, cfg)
	if err != nil {
		return nil, err
	}
	maxBlock := 0
	for _, b := range spec.Blocks {
		if b.Size > maxBlock {
			maxBlock = b.Size
		}
	}
	opt := cfg.finderOptions(maxBlock, spec.Cells)
	// Deterministic full recovery needs every block to receive a seed:
	// aim for ~5 expected seeds in the smallest block (the blocks are
	// scattered across the id space, so seed stratification cannot
	// guarantee hits and the miss chance is ~e^-5 ≈ 0.7%). The paper's
	// fixed m=100 leaves case 2's small block a ~13% miss chance per
	// run, which a single lucky run can hide but a reproduction
	// cannot.
	minBlock := spec.Blocks[0].Size
	for _, b := range spec.Blocks {
		if b.Size < minBlock {
			minBlock = b.Size
		}
	}
	if want := 5 * spec.Cells / minBlock; opt.Seeds < want {
		opt.Seeds = want
	}
	res, err := findCtx(ctx, rg.Netlist, opt)
	if err != nil {
		return nil, err
	}
	out := &Table1Result{Case: cs, Cells: spec.Cells, Found: len(res.GTLs), Elapsed: res.Elapsed, SeedsUsed: opt.Seeds}
	matched := make(map[int]bool)
	for _, truth := range rg.Blocks {
		o := matchOutcome(truth, res.GTLs)
		out.Blocks = append(out.Blocks, o)
		if o.Found {
			for i := range res.GTLs {
				if res.GTLs[i].Size() == o.FoundSize && res.GTLs[i].Cut == o.Cut {
					matched[i] = true
				}
			}
		}
	}
	for i := range res.GTLs {
		if !matched[i] {
			out.Spurious++
		}
	}
	return out, nil
}

// Table1 runs all four cases and renders the paper-style table.
func Table1(ctx context.Context, cfg Config, w io.Writer) ([]*Table1Result, error) {
	tbl := report.New("Table 1: experimental results on random graphs (scaled)",
		"Case", "|V|", "Planted", "#seeds", "#GTL", "GTL size", "nGTL-S", "GTL-SD", "Miss%", "Over%")
	var results []*Table1Result
	for _, cs := range Table1Cases {
		r, err := Table1Run(ctx, cs, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		for i, b := range r.Blocks {
			name, planted := "", ""
			if i == 0 {
				name = cs.Name
				planted = fmt.Sprintf("%d blocks", len(cs.Blocks))
			}
			if !b.Found {
				tbl.Row(name, r.Cells, planted, r.SeedsUsed, r.Found, "MISSED", "-", "-", "-", "-")
				continue
			}
			tbl.Row(name, r.Cells, planted, r.SeedsUsed, r.Found,
				b.FoundSize, b.NGTLS, b.GTLSD,
				fmt.Sprintf("%.2f", b.MissPct), fmt.Sprintf("%.2f", b.OverPct))
		}
	}
	if w != nil {
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ---------------------------------------------------------------------
// Table 2 — ISPD benchmark proxies.
// ---------------------------------------------------------------------

// Table2Result is the measured analog of one Table 2 row group.
type Table2Result struct {
	Name    string
	Cells   int
	Found   int
	Top     []core.GTL // up to 3 best
	Elapsed time.Duration
}

// Table2Run executes one ISPD profile.
func Table2Run(ctx context.Context, p generate.ISPDProfile, cfg Config) (*Table2Result, error) {
	d, err := generate.NewISPDProxy(p, cfg.Scale, cfg.Seed*100+7)
	if err != nil {
		return nil, err
	}
	maxBlock := 0
	for _, s := range d.Structures {
		if len(s) > maxBlock {
			maxBlock = len(s)
		}
	}
	opt := cfg.finderOptions(maxBlock, d.Netlist.NumCells())
	res, err := findCtx(ctx, d.Netlist, opt)
	if err != nil {
		return nil, err
	}
	out := &Table2Result{Name: p.Name, Cells: d.Netlist.NumCells(), Found: len(res.GTLs), Elapsed: res.Elapsed}
	for i := 0; i < len(res.GTLs) && i < 3; i++ {
		out.Top = append(out.Top, res.GTLs[i])
	}
	return out, nil
}

// Table2 runs all six profiles.
func Table2(ctx context.Context, cfg Config, w io.Writer) ([]*Table2Result, error) {
	tbl := report.New("Table 2: ISPD 05/06 proxy benchmarks (scaled)",
		"Case", "|V|", "#seeds", "#GTL", "Top GTL", "size", "Cut", "GTL-S", "GTL-SD", "Runtime")
	var results []*Table2Result
	for _, p := range generate.ISPDProfiles {
		r, err := Table2Run(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		for i, g := range r.Top {
			name, cells, seeds, found, rt := "", "", "", "", ""
			if i == 0 {
				name = r.Name
				cells = fmt.Sprintf("%d", r.Cells)
				seeds = fmt.Sprintf("%d", cfg.Seeds)
				found = fmt.Sprintf("%d", r.Found)
				rt = r.Elapsed.Round(time.Millisecond).String()
			}
			tbl.Row(name, cells, seeds, found,
				fmt.Sprintf("Structure %d", i+1), g.Size(), g.Cut, g.NGTLS, g.GTLSD, rt)
		}
	}
	if w != nil {
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ---------------------------------------------------------------------
// Table 3 — industrial circuit proxy.
// ---------------------------------------------------------------------

// Table3Result is the measured analog of Table 3.
type Table3Result struct {
	Cells   int
	Blocks  []BlockOutcome
	Elapsed time.Duration
}

// Table3Run builds the industrial proxy and scores the finder on the
// five dissolved-ROM blocks.
func Table3Run(ctx context.Context, cfg Config) (*Table3Result, error) {
	d, err := generate.NewIndustrialProxy(cfg.Scale, cfg.Seed*10+3)
	if err != nil {
		return nil, err
	}
	maxBlock := 0
	for _, s := range d.Structures {
		if len(s) > maxBlock {
			maxBlock = len(s)
		}
	}
	opt := cfg.finderOptions(maxBlock, d.Netlist.NumCells())
	// The industrial blocks cover a large fraction of the design, but
	// the smallest one is only ~2% of the cells; deterministic full
	// recovery wants ~3 expected seeds in it (the paper used a flat
	// 100 on a circuit whose blocks were proportionally larger).
	minBlock := len(d.Structures[0])
	for _, s := range d.Structures {
		if len(s) < minBlock {
			minBlock = len(s)
		}
	}
	if want := 5 * d.Netlist.NumCells() / minBlock; opt.Seeds < want {
		opt.Seeds = want
	}
	if opt.Seeds < 100 {
		opt.Seeds = 100
	}
	res, err := findCtx(ctx, d.Netlist, opt)
	if err != nil {
		return nil, err
	}
	out := &Table3Result{Cells: d.Netlist.NumCells(), Elapsed: res.Elapsed}
	for _, truth := range d.Structures {
		out.Blocks = append(out.Blocks, matchOutcome(truth, res.GTLs))
	}
	return out, nil
}

// Table3 renders the industrial-circuit table.
func Table3(ctx context.Context, cfg Config, w io.Writer) (*Table3Result, error) {
	r, err := Table3Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	tbl := report.New("Table 3: GTLs found on the industrial proxy (scaled)",
		"Size in design", "Size found", "Cut", "GTL-Score")
	for _, b := range r.Blocks {
		if !b.Found {
			tbl.Row(b.TruthSize, "MISSED", "-", "-")
			continue
		}
		tbl.Row(b.TruthSize, b.FoundSize, b.Cut, b.GTLSD)
	}
	if w != nil {
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ---------------------------------------------------------------------
// Helpers shared by the figure experiments.
// ---------------------------------------------------------------------

// sampleCurve thins a score curve to at most n (size, value) points for
// printing.
func sampleCurve(scores []float64, n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	var out [][2]float64
	step := float64(len(scores)) / float64(n)
	if step < 1 {
		step = 1
	}
	for f := 0.0; int(f) < len(scores); f += step {
		k := int(f)
		out = append(out, [2]float64{float64(k + 1), scores[k]})
	}
	last := len(scores) - 1
	if len(out) == 0 || int(out[len(out)-1][0]) != last+1 {
		out = append(out, [2]float64{float64(last + 1), scores[last]})
	}
	return out
}

// argmin returns the index of the smallest finite value.
func argmin(scores []float64, from int) (int, float64) {
	bestK, bestV := -1, math.Inf(1)
	for k := from; k < len(scores); k++ {
		if scores[k] < bestV {
			bestV, bestK = scores[k], k
		}
	}
	return bestK, bestV
}

// Table2RunBookshelf measures a real Bookshelf circuit (e.g. a genuine
// ISPD 2005/06 benchmark) with the same procedure as Table2Run. The
// expected maximum GTL size is unknown for real circuits, so Z follows
// the paper's 100K cap, bounded by |V|/2.
func Table2RunBookshelf(ctx context.Context, name, auxPath string, cfg Config) (*Table2Result, error) {
	d, err := bookshelf.ReadAux(auxPath)
	if err != nil {
		return nil, err
	}
	nl := d.Netlist
	opt := core.DefaultOptions()
	opt.Seeds = cfg.Seeds
	opt.RandSeed = cfg.Seed
	opt.Workers = cfg.Workers
	if opt.MaxOrderLen > nl.NumCells()/2 {
		opt.MaxOrderLen = nl.NumCells() / 2
	}
	res, err := findCtx(ctx, nl, opt)
	if err != nil {
		return nil, err
	}
	out := &Table2Result{Name: name, Cells: nl.NumCells(), Found: len(res.GTLs), Elapsed: res.Elapsed}
	for i := 0; i < len(res.GTLs) && i < 3; i++ {
		out.Top = append(out.Top, res.GTLs[i])
	}
	return out, nil
}
