package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"time"

	"tanglefind/internal/core"
	"tanglefind/internal/netlist"
	"tanglefind/internal/netlist/deltatest"
	"tanglefind/internal/report"
	"tanglefind/internal/telemetry"
)

// ---------------------------------------------------------------------
// Parallel scaling — the work-stealing seed scheduler swept across
// worker counts on the million-cell multilevel workload (the committed
// BENCH_multilevel.json headliner), so the speedup-vs-cores curve and
// the flat-vs-(multilevel × parallel) combined speedup come from one
// invocation. Every row is differentially verified against the
// Workers=1 run before any timing is reported: parallel scheduling
// must never change results.
// ---------------------------------------------------------------------

// DefaultWorkerSweep is the standard sweep: 1, 2, 4 and NumCPU
// workers, deduplicated and sorted (on a 2-core box that is 1, 2, 4).
func DefaultWorkerSweep() []int {
	sweep := []int{1, 2, 4, runtime.NumCPU()}
	slices.Sort(sweep)
	return slices.Compact(sweep)
}

// ParallelResult is one worker-count row of the scaling sweep.
type ParallelResult struct {
	Workers int     `json:"workers"`
	FindMS  float64 `json:"find_ms"`
	// Speedup is the self-speedup versus this sweep's Workers=1 row —
	// the scheduler's scaling, isolated from every other optimization.
	Speedup float64 `json:"speedup"`
	// SpeedupVsFlat compares against the flat sequential reference run
	// (Levels=1, Workers=1): the combined multilevel × parallel gain.
	SpeedupVsFlat float64 `json:"speedup_vs_flat"`
	// Steals/SeedsStolen/WorkerSeeds mirror core.SchedStats for the
	// run: steal traffic plus the per-worker seed counts whose spread
	// is the utilization picture.
	Steals      int64   `json:"steals"`
	SeedsStolen int64   `json:"seeds_stolen"`
	WorkerSeeds []int64 `json:"worker_seeds,omitempty"`
	GTLs        int     `json:"gtls"`
	// Stages is the run's per-stage wall-time breakdown (worker-summed
	// phases plus per-run stamps), serialized as {"stage": ms}.
	Stages telemetry.StageTimings `json:"stages_ms,omitempty"`
	// Match is the differential oracle verdict against the Workers=1
	// run of the identical options (groups and scores to 1e-9).
	Match bool `json:"match"`
}

// ParallelRun executes the sweep over one prepared workload: a flat
// sequential reference first, then the multilevel pipeline once per
// worker count, all on one shared engine.
func ParallelRun(ctx context.Context, cfg Config, sweep []int) (flatMS float64, rows []*ParallelResult, cells, pins int, err error) {
	cs := MultilevelCases[len(MultilevelCases)-1] // the million-cell headliner
	rg, err := multilevelWorkload(cs, cfg)
	if err != nil {
		return 0, nil, 0, 0, fmt.Errorf("parallel: %w", err)
	}
	nl := rg.Netlist
	maxBlock := 0
	for _, b := range rg.Blocks {
		if len(b) > maxBlock {
			maxBlock = len(b)
		}
	}
	opt := cfg.finderOptions(maxBlock, nl.NumCells())
	opt.Levels = cs.Levels
	if floor := nl.NumCells() / 8; floor < netlist.DefaultMinCoarseCells {
		opt.MinCoarseCells = max(floor, 256)
	}

	f, err := core.NewFinder(nl)
	if err != nil {
		return 0, nil, 0, 0, err
	}

	flatOpt := opt
	flatOpt.Levels = 1
	flatOpt.Workers = 1
	start := time.Now()
	if _, err := f.Find(ctx, flatOpt); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("parallel: flat reference: %w", err)
	}
	flatMS = float64(time.Since(start)) / float64(time.Millisecond)

	// Warm the engine before timing: the first multilevel run pays
	// hierarchy construction and cold scratch pools that every later
	// run reuses, which would otherwise gift the second row a phantom
	// speedup unrelated to scheduling.
	warmOpt := opt
	warmOpt.Workers = 1
	if _, err := f.Find(ctx, warmOpt); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("parallel: warmup: %w", err)
	}

	var baseline *core.Result
	var baseMS float64
	for _, w := range sweep {
		runOpt := opt
		runOpt.Workers = w
		start := time.Now()
		res, err := f.Find(ctx, runOpt)
		if err != nil {
			return 0, nil, 0, 0, fmt.Errorf("parallel: workers=%d: %w", w, err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		row := &ParallelResult{Workers: w, FindMS: ms, GTLs: len(res.GTLs), Stages: res.Stages}
		if res.Sched != nil {
			row.Steals = res.Sched.Steals
			row.SeedsStolen = res.Sched.SeedsStolen
			row.WorkerSeeds = res.Sched.WorkerSeeds
		}
		if baseline == nil {
			// The first row anchors the sweep. The standard sweep starts
			// at 1, making Speedup a true self-speedup; a custom sweep
			// without a 1 row still gets internally consistent ratios.
			baseline, baseMS = res, ms
		}
		row.Match = deltatest.DiffResults(baseline, res, 1e-9) == nil
		if !row.Match {
			return 0, nil, 0, 0, fmt.Errorf("parallel: workers=%d diverged from workers=%d: %v",
				w, sweep[0], deltatest.DiffResults(baseline, res, 1e-9))
		}
		if ms > 0 {
			row.Speedup = baseMS / ms
			row.SpeedupVsFlat = flatMS / ms
		}
		rows = append(rows, row)
	}
	return flatMS, rows, nl.NumCells(), nl.NumPins(), nil
}

// Parallel runs the worker sweep and renders the scaling table. A nil
// sweep uses DefaultWorkerSweep.
func Parallel(ctx context.Context, cfg Config, sweep []int, w io.Writer) (*ParallelRecord, error) {
	if len(sweep) == 0 {
		sweep = DefaultWorkerSweep()
	}
	flatMS, rows, cells, pins, err := ParallelRun(ctx, cfg, sweep)
	if err != nil {
		return nil, err
	}
	rec := &ParallelRecord{
		Scale:   cfg.Scale,
		Seeds:   cfg.Seeds,
		CPUs:    runtime.GOMAXPROCS(0),
		Cells:   cells,
		Pins:    pins,
		FlatMS:  flatMS,
		Results: rows,
	}
	if w != nil {
		tbl := report.New(
			fmt.Sprintf("Parallel scaling, multilevel million-cell workload (%d cells, %d CPUs, flat 1-worker ref %.0f ms)",
				cells, rec.CPUs, flatMS),
			"Workers", "Find ms", "Speedup", "vs flat", "Steals", "Seeds stolen", "GTLs", "Top stages", "Match")
		for _, r := range rows {
			tbl.Row(r.Workers, fmt.Sprintf("%.0f", r.FindMS),
				fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%.2fx", r.SpeedupVsFlat),
				r.Steals, r.SeedsStolen, r.GTLs, r.Stages.Top(3), r.Match)
		}
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// ParallelRecord is the serialized scaling record gtlexp -dump writes
// as BENCH_parallel.json. CPUs is the honest parallelism of the
// measuring machine: rows with Workers > CPUs cannot show real
// scaling, and a record with CPUs == 1 documents a sweep that only
// verified determinism, not speedup.
type ParallelRecord struct {
	Scale   float64           `json:"scale"`
	Seeds   int               `json:"seeds"`
	CPUs    int               `json:"cpus"` // runtime.GOMAXPROCS(0) at measurement time
	Cells   int               `json:"cells"`
	Pins    int               `json:"pins"`
	FlatMS  float64           `json:"flat_ms"` // flat sequential reference (Levels=1, Workers=1)
	Results []*ParallelResult `json:"results"`
}

// WriteParallelRecord saves the sweep as indented JSON.
func WriteParallelRecord(path string, rec *ParallelRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
