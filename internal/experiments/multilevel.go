package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tanglefind/internal/core"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
	"tanglefind/internal/report"
)

// ---------------------------------------------------------------------
// Flat vs multilevel — the speed/quality table for the coarsen →
// detect → project + refine pipeline. Not a paper table: this is the
// repo's own scaling evaluation, run over the Table-1 random-graph
// workload and a million-cell generated netlist (sizes scale with
// Config.Scale; -scale full reproduces the committed record).
// ---------------------------------------------------------------------

// MultilevelCase describes one flat-vs-multilevel comparison workload.
type MultilevelCase struct {
	Name   string
	Cells  int   // at full scale
	Blocks []int // planted block sizes at full scale
	Levels int   // requested pipeline depth for the multilevel run
}

// MultilevelCases are the two comparison workloads: the Table 1 case-3
// geometry, and the scaling headliner — a 1.25M-cell random graph with
// four planted 60K-cell blocks.
var MultilevelCases = []MultilevelCase{
	{Name: "table1_case3", Cells: 100_000, Blocks: []int{5000}, Levels: 2},
	{Name: "million", Cells: 1_250_000, Blocks: []int{60_000, 60_000, 60_000, 60_000}, Levels: 4},
}

// MultilevelResult is one row of the speed/quality comparison.
type MultilevelResult struct {
	Name          string  `json:"name"`
	Cells         int     `json:"cells"`
	Pins          int     `json:"pins"`
	Seeds         int     `json:"seeds"`
	LevelsUsed    int     `json:"levels_used"` // hierarchy depth actually formed
	FlatMS        float64 `json:"flat_ms"`
	MultiMS       float64 `json:"multilevel_ms"`
	Speedup       float64 `json:"speedup"`
	FlatRecovery  float64 `json:"flat_recovery_pct"`  // % of planted cells in any reported GTL
	MultiRecovery float64 `json:"multi_recovery_pct"` //
	FlatGTLs      int     `json:"flat_gtls"`
	MultiGTLs     int     `json:"multi_gtls"`
}

// unionRecovery returns the percentage of planted cells appearing in
// any reported GTL — the pipeline's cell-recovery quality metric.
func unionRecovery(blocks [][]netlist.CellID, gtls []core.GTL) float64 {
	planted := make(map[netlist.CellID]bool)
	for _, b := range blocks {
		for _, c := range b {
			planted[c] = true
		}
	}
	if len(planted) == 0 {
		return 0
	}
	hit := 0
	for i := range gtls {
		for _, c := range gtls[i].Members {
			if planted[c] {
				hit++
				delete(planted, c) // count each planted cell once
			}
		}
	}
	total := hit + len(planted)
	return 100 * float64(hit) / float64(total)
}

// multilevelWorkload builds one case's scaled random graph.
func multilevelWorkload(cs MultilevelCase, cfg Config) (*generate.RandomGraph, error) {
	spec := generate.RandomGraphSpec{
		Cells: cfg.scaled(cs.Cells),
		Seed:  cfg.Seed*1000 + 77,
	}
	for _, b := range cs.Blocks {
		size := cfg.scaled(b)
		if size < 64 {
			size = 64
		}
		spec.Blocks = append(spec.Blocks, generate.BlockSpec{Size: size})
	}
	// Keep the background dominant when scaling floors the blocks.
	minCells := 0
	for _, b := range spec.Blocks {
		minCells += 3 * b.Size
	}
	if spec.Cells < minCells {
		spec.Cells = minCells
	}
	return generate.NewRandomGraph(spec)
}

// MultilevelRun executes one case: the identical workload and seed
// schedule through the flat pipeline and through the multilevel
// pipeline, on one shared engine.
func MultilevelRun(ctx context.Context, cs MultilevelCase, cfg Config) (*MultilevelResult, error) {
	rg, err := multilevelWorkload(cs, cfg)
	if err != nil {
		return nil, fmt.Errorf("multilevel %s: %w", cs.Name, err)
	}
	nl := rg.Netlist
	maxBlock := 0
	for _, b := range rg.Blocks {
		if len(b) > maxBlock {
			maxBlock = len(b)
		}
	}
	opt := cfg.finderOptions(maxBlock, nl.NumCells())
	// Give each planted block ~5 expected seeds (same policy as the
	// Table 1 runs) so recovery is a property of the pipeline, not of
	// seed luck.
	minBlock := len(rg.Blocks[0])
	for _, b := range rg.Blocks {
		if len(b) < minBlock {
			minBlock = len(b)
		}
	}
	if want := 5 * nl.NumCells() / minBlock; opt.Seeds < want {
		opt.Seeds = want
	}

	f, err := core.NewFinder(nl)
	if err != nil {
		return nil, err
	}
	out := &MultilevelResult{
		Name:  cs.Name,
		Cells: nl.NumCells(),
		Pins:  nl.NumPins(),
		Seeds: opt.Seeds,
	}

	flatOpt := opt
	flatOpt.Levels = 1
	start := time.Now()
	flat, err := f.Find(ctx, flatOpt)
	if err != nil {
		return nil, fmt.Errorf("multilevel %s: flat run: %w", cs.Name, err)
	}
	out.FlatMS = float64(time.Since(start)) / float64(time.Millisecond)
	out.FlatGTLs = len(flat.GTLs)
	out.FlatRecovery = unionRecovery(rg.Blocks, flat.GTLs)

	mlOpt := opt
	mlOpt.Levels = cs.Levels
	// Let small-scale runs coarsen too: the floor tracks the workload
	// so the pipeline under test is always the multilevel one.
	if floor := nl.NumCells() / 8; floor < netlist.DefaultMinCoarseCells {
		mlOpt.MinCoarseCells = max(floor, 256)
	}
	start = time.Now()
	ml, err := f.Find(ctx, mlOpt)
	if err != nil {
		return nil, fmt.Errorf("multilevel %s: multilevel run: %w", cs.Name, err)
	}
	out.MultiMS = float64(time.Since(start)) / float64(time.Millisecond)
	out.MultiGTLs = len(ml.GTLs)
	out.MultiRecovery = unionRecovery(rg.Blocks, ml.GTLs)
	out.LevelsUsed = len(ml.Levels)
	if out.LevelsUsed == 0 {
		out.LevelsUsed = 1
	}
	if out.MultiMS > 0 {
		out.Speedup = out.FlatMS / out.MultiMS
	}
	return out, nil
}

// Multilevel runs every comparison case and renders the speed/quality
// table.
func Multilevel(ctx context.Context, cfg Config, w io.Writer) ([]*MultilevelResult, error) {
	tbl := report.New("Flat vs multilevel detection (coarsen -> detect -> project + refine)",
		"Case", "|V|", "#seeds", "Lvls", "Flat ms", "ML ms", "Speedup", "Flat rec%", "ML rec%", "Flat GTL", "ML GTL")
	var results []*MultilevelResult
	for _, cs := range MultilevelCases {
		r, err := MultilevelRun(ctx, cs, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		tbl.Row(r.Name, r.Cells, r.Seeds, r.LevelsUsed,
			fmt.Sprintf("%.0f", r.FlatMS), fmt.Sprintf("%.0f", r.MultiMS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.FlatRecovery), fmt.Sprintf("%.1f", r.MultiRecovery),
			r.FlatGTLs, r.MultiGTLs)
	}
	if w != nil {
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MultilevelRecord is the serialized speed/quality record gtlexp -dump
// writes as BENCH_multilevel.json, for the repo's perf trajectory.
type MultilevelRecord struct {
	Scale   float64             `json:"scale"`
	Seeds   int                 `json:"seeds"`
	Workers int                 `json:"workers"` // resolved engine worker count (never 0)
	CPUs    int                 `json:"cpus"`    // runtime.GOMAXPROCS(0) at measurement time
	Results []*MultilevelResult `json:"results"`
}

// WriteMultilevelRecord saves the comparison as indented JSON.
func WriteMultilevelRecord(path string, cfg Config, results []*MultilevelResult) error {
	rec := MultilevelRecord{
		Scale:   cfg.Scale,
		Seeds:   cfg.Seeds,
		Workers: cfg.ResolvedWorkers(),
		CPUs:    runtime.GOMAXPROCS(0),
		Results: results,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
