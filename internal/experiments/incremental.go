package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tanglefind/internal/core"
	"tanglefind/internal/netlist"
	"tanglefind/internal/netlist/deltatest"
	"tanglefind/internal/report"
)

// ---------------------------------------------------------------------
// Incremental detection vs full re-detection — the repo's ECO-loop
// evaluation, run over the Table 1 random-graph workload. A recorded
// baseline run detects the netlist once; an ECO-style delta then
// perturbs it, and the comparison is a from-scratch re-detection of
// the patched netlist against core.FindIncremental reusing the
// baseline's seed state. Results are verified identical (the
// deltatest differential oracle) before any timing is reported.
// ---------------------------------------------------------------------

// IncrementalCase describes one delta-vs-full comparison workload.
type IncrementalCase struct {
	Name   string
	Case   Table1Case // workload geometry (scaled by Config)
	Edit   string     // "site": one background location; "block": inside the planted tangle
	Rewire int        // nets rewired (pin-preserving)
}

// IncrementalCases compares the two ECO edit classes on the Table 1
// case 3 geometry. A "site" edit — the common ECO: a rewire at one
// location away from any tangle — leaves every tangle seed replayable.
// A "block" edit lands inside the planted tangle itself, forcing that
// tangle's (expensive, refined) seeds to re-run: the honest worst
// case, reported alongside rather than hidden.
var IncrementalCases = []IncrementalCase{
	{Name: "case3_site_edit", Case: Table1Cases[2], Edit: "site", Rewire: 2},
	{Name: "case3_block_edit", Case: Table1Cases[2], Edit: "block", Rewire: 4},
}

// IncrementalResult is one row of the delta-vs-full comparison.
type IncrementalResult struct {
	Name          string  `json:"name"`
	Cells         int     `json:"cells"`
	Pins          int     `json:"pins"`
	Seeds         int     `json:"seeds"`
	DirtyCells    int     `json:"dirty_cells"`
	BaseMS        float64 `json:"base_ms"` // recorded baseline run
	FullMS        float64 `json:"full_ms"` // from-scratch re-detection of the patched netlist
	IncrMS        float64 `json:"incremental_ms"`
	Speedup       float64 `json:"speedup"`
	ReusedSeeds   int     `json:"reused_seeds"`
	RerunSeeds    int     `json:"rerun_seeds"`
	ReusedGroups  int     `json:"reused_groups"`
	ReseededCells int     `json:"reseeded_cells"`
	Match         bool    `json:"match"` // differential oracle verdict
}

// incrementalOptions sizes the finder for the ECO loop: the ordering
// cap is kept at ~2x the largest expected tangle — enough margin for
// Phase II's interior-minimum test, while keeping each seed's read
// footprint (and therefore the reuse blast radius of an edit) tight.
func incrementalOptions(cfg Config, maxBlock, numCells int) core.Options {
	opt := cfg.finderOptions(maxBlock, numCells)
	z := 2 * maxBlock
	if z < 2000 {
		z = 2000
	}
	if z > numCells/2 {
		z = numCells / 2
	}
	opt.MaxOrderLen = z
	opt.RecordIncremental = true
	return opt
}

// blockEdit rewires k nets living entirely inside the planted block,
// moving one pin per net to another block cell (pin-preserving).
func blockEdit(nl *netlist.Netlist, block []netlist.CellID, k int) *netlist.Delta {
	inBlock := make(map[netlist.CellID]bool, len(block))
	for _, c := range block {
		inBlock[c] = true
	}
	d := &netlist.Delta{}
	for e, edited := 0, 0; e < nl.NumNets() && edited < k; e++ {
		pins := nl.NetPins(netlist.NetID(e))
		ok := len(pins) >= 3
		for _, c := range pins {
			if !inBlock[c] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		onNet := make(map[netlist.CellID]bool, len(pins))
		for _, c := range pins {
			onNet[c] = true
		}
		var repl netlist.CellID = -1
		for i := 0; i < len(block); i++ {
			if c := block[(edited*37+i)%len(block)]; !onNet[c] {
				repl = c
				break
			}
		}
		if repl < 0 {
			continue
		}
		d.SetNets = append(d.SetNets, netlist.NetEdit{
			Net:   netlist.NetID(e),
			Cells: append(pins[:len(pins)-1:len(pins)-1], repl),
		})
		edited++
		e += 50 // spread the edits across the block
	}
	return d
}

// siteEdit rewires k nets of one background cell (pin-preserving),
// modeling a localized ECO — buffer insertion, a fanout fix — away
// from any tangle.
func siteEdit(nl *netlist.Netlist, blocks [][]netlist.CellID, k int) *netlist.Delta {
	planted := make(map[netlist.CellID]bool)
	for _, b := range blocks {
		for _, c := range b {
			planted[c] = true
		}
	}
	var site netlist.CellID = -1
	for c := nl.NumCells() - 1; c >= 0; c-- {
		if !planted[netlist.CellID(c)] && nl.CellDegree(netlist.CellID(c)) >= k {
			site = netlist.CellID(c)
			break
		}
	}
	d := &netlist.Delta{}
	if site < 0 {
		return d
	}
	nets := nl.CellPins(site)
	for j := 0; j < k && j < len(nets); j++ {
		pins := nl.NetPins(nets[j])
		onNet := make(map[netlist.CellID]bool, len(pins))
		for _, c := range pins {
			onNet[c] = true
		}
		var repl netlist.CellID = -1
		for i := 1; i < nl.NumCells(); i++ {
			c := netlist.CellID((int(site) + i*97) % nl.NumCells())
			if !onNet[c] && !planted[c] {
				repl = c
				break
			}
		}
		if repl < 0 {
			continue
		}
		keep := append([]netlist.CellID(nil), pins[1:]...)
		d.SetNets = append(d.SetNets, netlist.NetEdit{Net: nets[j], Cells: append(keep, repl)})
	}
	return d
}

// IncrementalRun executes one case: recorded baseline, ECO delta,
// then the timed full-vs-incremental comparison with a differential
// check.
func IncrementalRun(ctx context.Context, cs IncrementalCase, cfg Config) (*IncrementalResult, error) {
	rg, _, err := Table1Workload(cs.Case, cfg)
	if err != nil {
		return nil, fmt.Errorf("incremental %s: %w", cs.Name, err)
	}
	nl := rg.Netlist
	maxBlock := 0
	for _, b := range rg.Blocks {
		if len(b) > maxBlock {
			maxBlock = len(b)
		}
	}
	opt := incrementalOptions(cfg, maxBlock, nl.NumCells())
	out := &IncrementalResult{
		Name:  cs.Name,
		Cells: nl.NumCells(),
		Pins:  nl.NumPins(),
		Seeds: opt.Seeds,
	}

	base, err := core.NewFinder(nl)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	prev, err := base.Find(ctx, opt)
	if err != nil {
		return nil, fmt.Errorf("incremental %s: baseline run: %w", cs.Name, err)
	}
	out.BaseMS = float64(time.Since(start)) / float64(time.Millisecond)

	var d *netlist.Delta
	switch cs.Edit {
	case "block":
		d = blockEdit(nl, rg.Blocks[0], cs.Rewire)
	default:
		d = siteEdit(nl, rg.Blocks, cs.Rewire)
	}
	if d.Empty() {
		return nil, fmt.Errorf("incremental %s: could not construct the %s edit", cs.Name, cs.Edit)
	}
	patched, eff, err := d.Apply(nl)
	if err != nil {
		return nil, fmt.Errorf("incremental %s: apply: %w", cs.Name, err)
	}
	out.DirtyCells = len(eff.Dirty)

	fullOpt := opt
	fullOpt.RecordIncremental = false
	fFull, err := core.NewFinder(patched)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	full, err := fFull.Find(ctx, fullOpt)
	if err != nil {
		return nil, fmt.Errorf("incremental %s: full re-detection: %w", cs.Name, err)
	}
	out.FullMS = float64(time.Since(start)) / float64(time.Millisecond)

	fIncr, err := core.NewFinder(patched)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	incr, err := fIncr.FindIncremental(ctx, opt, prev, eff.Dirty)
	if err != nil {
		return nil, fmt.Errorf("incremental %s: incremental run: %w", cs.Name, err)
	}
	out.IncrMS = float64(time.Since(start)) / float64(time.Millisecond)
	if out.IncrMS > 0 {
		out.Speedup = out.FullMS / out.IncrMS
	}
	if st := incr.Incremental; st != nil {
		out.ReusedSeeds = st.ReusedSeeds
		out.RerunSeeds = st.RerunSeeds
		out.ReusedGroups = st.ReusedGroups
		out.ReseededCells = st.ReseededCells
	}
	out.Match = deltatest.DiffResults(full, incr, 1e-9) == nil
	if !out.Match {
		return nil, fmt.Errorf("incremental %s: differential oracle failed: %v",
			cs.Name, deltatest.DiffResults(full, incr, 1e-9))
	}
	return out, nil
}

// Incremental runs every comparison case and renders the table.
func Incremental(ctx context.Context, cfg Config, w io.Writer) ([]*IncrementalResult, error) {
	tbl := report.New("Incremental vs full re-detection (ECO deltas)",
		"Case", "|V|", "#seeds", "Dirty", "Base ms", "Full ms", "Incr ms", "Speedup", "Reused", "Rerun", "Match")
	var results []*IncrementalResult
	for _, cs := range IncrementalCases {
		r, err := IncrementalRun(ctx, cs, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		tbl.Row(r.Name, r.Cells, r.Seeds, r.DirtyCells,
			fmt.Sprintf("%.0f", r.BaseMS), fmt.Sprintf("%.0f", r.FullMS), fmt.Sprintf("%.0f", r.IncrMS),
			fmt.Sprintf("%.2fx", r.Speedup), r.ReusedSeeds, r.RerunSeeds, r.Match)
	}
	if w != nil {
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// IncrementalRecord is the serialized ECO-loop record gtlexp -dump
// writes as BENCH_incremental.json.
type IncrementalRecord struct {
	Scale   float64              `json:"scale"`
	Seeds   int                  `json:"seeds"`
	Workers int                  `json:"workers"` // resolved engine worker count (never 0)
	CPUs    int                  `json:"cpus"`    // runtime.GOMAXPROCS(0) at measurement time
	Results []*IncrementalResult `json:"results"`
}

// WriteIncrementalRecord saves the comparison as indented JSON.
func WriteIncrementalRecord(path string, cfg Config, results []*IncrementalResult) error {
	rec := IncrementalRecord{
		Scale:   cfg.Scale,
		Seeds:   cfg.Seeds,
		Workers: cfg.ResolvedWorkers(),
		CPUs:    runtime.GOMAXPROCS(0),
		Results: results,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
