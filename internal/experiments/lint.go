package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"tanglefind/internal/generate"
	"tanglefind/internal/lint"
	"tanglefind/internal/netlist"
	"tanglefind/internal/report"
)

// ---------------------------------------------------------------------
// Structural lint at scale — the repo's static-analysis evaluation.
// Three workload classes: a clean Rent-rule host circuit (the honest
// false-positive check: realistic connectivity should lint quietly), a
// random-graph detection workload (undirected, so direction-dependent
// rules must skip themselves), and a large directed "ring mill" whose
// planted combinational rings and sequential breaks exercise the
// comb-loop rule's near-linear Tarjan pass at up to a million cells.
// ---------------------------------------------------------------------

// LintResult is one row of the lint experiment.
type LintResult struct {
	Name     string  `json:"name"`
	Cells    int     `json:"cells"`
	Nets     int     `json:"nets"`
	Pins     int     `json:"pins"`
	Directed bool    `json:"directed"`
	Errors   int     `json:"errors"`
	Warnings int     `json:"warnings"`
	Infos    int     `json:"infos"`
	Skipped  int     `json:"skipped_rules"`
	TotalMS  float64 `json:"total_ms"`
	LoopMS   float64 `json:"comb_loop_ms"` // the comb-loop rule's share
}

// ringMill builds a directed netlist of numCells cells: rings of eight
// combinational gates (one planted loop each) for the first loops*8
// cells, then one long chain that closes back on itself through a
// flip-flop — a cycle in the hypergraph that the comb-loop rule must
// NOT report, keeping the sequential-break logic honest at scale.
func ringMill(numCells, loops int) (*netlist.Netlist, error) {
	const ringLen = 8
	if numCells < loops*ringLen+2 {
		numCells = loops*ringLen + 2
	}
	var b netlist.Builder
	cells := make([]netlist.CellID, numCells)
	for i := range cells {
		name := ""
		switch {
		case i == loops*ringLen:
			name = "dff_break" // the chain's sequential break
		case i%257 == 0:
			name = "g" + strconv.Itoa(i)
		}
		cells[i] = b.AddCell(name)
	}
	wire := func(from, to netlist.CellID) {
		b.AddDrivenNet("", []netlist.CellID{from}, to)
	}
	// One primary output keeps the design live: every ring taps into
	// it and the chain ends at it, so the dangling-cell rule has a real
	// fanout frontier to trace instead of declaring the whole netlist
	// dead.
	po := b.AddCell("po_out")
	for r := 0; r < loops; r++ {
		base := r * ringLen
		for i := 0; i < ringLen; i++ {
			wire(cells[base+i], cells[base+(i+1)%ringLen])
		}
		wire(cells[base], po)
	}
	for i := loops * ringLen; i < numCells-1; i++ {
		wire(cells[i], cells[i+1])
	}
	// Close the chain: a structural cycle, broken by dff_break.
	wire(cells[numCells-1], cells[loops*ringLen])
	wire(cells[numCells-1], po)
	return b.Build()
}

// lintWorkload names one netlist to lint.
type lintWorkload struct {
	name string
	nl   *netlist.Netlist
}

// lintWorkloads builds the three workload classes at cfg's scale.
func lintWorkloads(cfg Config) ([]lintWorkload, error) {
	bld, _, err := generate.NewHierarchicalHost(generate.HierSpec{
		Cells: cfg.scaled(200_000), Rent: 0.63, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	host, err := bld.Build()
	if err != nil {
		return nil, err
	}
	rg, _, err := Table1Workload(Table1Cases[2], cfg)
	if err != nil {
		return nil, err
	}
	mill, err := ringMill(cfg.scaled(1_000_000), cfg.scaled(1024))
	if err != nil {
		return nil, err
	}
	return []lintWorkload{
		{"hier_host", host},
		{"random_case3", rg.Netlist},
		{"ring_mill", mill},
	}, nil
}

// LintRun lints one workload and folds the report into a row.
func LintRun(nl *netlist.Netlist, name string) *LintResult {
	start := time.Now()
	rep := lint.Lint(nl, lint.Config{})
	out := &LintResult{
		Name:     name,
		Cells:    nl.NumCells(),
		Nets:     nl.NumNets(),
		Pins:     nl.NumPins(),
		Directed: nl.Directed(),
		Skipped:  len(rep.Skipped),
		TotalMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	n := rep.CountBySeverity()
	out.Errors, out.Warnings, out.Infos = n[lint.SevError], n[lint.SevWarning], n[lint.SevInfo]
	for _, rs := range rep.Rules {
		if rs.Rule == "comb-loop" {
			out.LoopMS = float64(rs.Nanos) / float64(time.Millisecond)
		}
	}
	return out
}

// Lint runs the lint experiment and renders the table. The ring-mill
// row is the headline: at full scale it is the million-cell netlist
// whose planted rings the comb-loop rule must find in seconds.
func Lint(ctx context.Context, cfg Config, w io.Writer) ([]*LintResult, error) {
	workloads, err := lintWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	tbl := report.New("Structural lint (all rules, default thresholds)",
		"Workload", "|V|", "|E|", "Pins", "Directed", "Err", "Warn", "Info", "Skipped", "Total ms", "Loop ms")
	var results []*LintResult
	for _, wl := range workloads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := LintRun(wl.nl, wl.name)
		results = append(results, r)
		loop := "-"
		if wl.nl.Directed() {
			loop = fmt.Sprintf("%.0f", r.LoopMS)
		}
		tbl.Row(r.Name, r.Cells, r.Nets, r.Pins, r.Directed,
			r.Errors, r.Warnings, r.Infos, r.Skipped,
			fmt.Sprintf("%.0f", r.TotalMS), loop)
	}
	if w != nil {
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return results, nil
}
