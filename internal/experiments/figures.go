package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"tanglefind/internal/core"
	"tanglefind/internal/ds"
	"tanglefind/internal/generate"
	"tanglefind/internal/metrics"
	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
	"tanglefind/internal/report"
	"tanglefind/internal/route"
	"tanglefind/internal/viz"
)

// Figure23Result captures the two agglomeration curves of Figures 2
// and 3: one seed inside the planted 40K-cell GTL, one outside.
type Figure23Result struct {
	Metric       core.Metric
	BlockSize    int
	InsideMinK   int     // group size at the inside curve's minimum
	InsideMinV   float64 // score at that minimum
	OutsideMinV  float64 // smallest score on the outside curve (past warm-up)
	OutsideEndV  float64 // outside curve's final value (the ~0.9 asymptote)
	InsideCurve  [][2]float64
	OutsideCurve [][2]float64
}

// Figure23 regenerates Figure 2 (nGTL-S) or Figure 3 (GTL-SD): the
// paper's 250K-cell random graph with one 40K-cell GTL, two
// agglomerations, score versus group size.
func Figure23(ctx context.Context, metric core.Metric, cfg Config, w io.Writer) (*Figure23Result, error) {
	cells := cfg.scaled(250_000)
	block := cfg.scaled(40_000)
	if block < 200 {
		block = 200
	}
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  cells,
		Blocks: []generate.BlockSpec{{Size: block}},
		Seed:   cfg.Seed*7 + 2,
	})
	if err != nil {
		return nil, err
	}
	nl := rg.Netlist
	aG := nl.AvgPins()
	inBlock := make(map[netlist.CellID]bool, block)
	for _, c := range rg.Blocks[0] {
		inBlock[c] = true
	}
	rng := ds.NewRNG(cfg.Seed + 99)
	seedIn := rg.Blocks[0][rng.Intn(block)]
	var seedOut netlist.CellID
	for {
		seedOut = netlist.CellID(rng.Intn(cells))
		if !inBlock[seedOut] {
			break
		}
	}
	opt := core.DefaultOptions()
	z := 2 * block
	curveFor := func(seed netlist.CellID) *core.Curve {
		ord := core.GrowOrdering(nl, seed, z, opt)
		return core.ScoreCurve(ord, metric, aG)
	}
	cIn := curveFor(seedIn)
	cOut := curveFor(seedOut)
	res := &Figure23Result{Metric: metric, BlockSize: block}
	warm := 24
	k, v := argmin(cIn.Scores, warm)
	res.InsideMinK, res.InsideMinV = k+1, v
	_, res.OutsideMinV = argmin(cOut.Scores, warm)
	res.OutsideEndV = cOut.Scores[len(cOut.Scores)-1]
	res.InsideCurve = sampleCurve(cIn.Scores, 40)
	res.OutsideCurve = sampleCurve(cOut.Scores, 40)
	if w != nil {
		fig := "Figure 2"
		if metric == core.MetricGTLSD {
			fig = "Figure 3"
		}
		fmt.Fprintf(w, "%s: %s vs group size (|V|=%d, planted GTL=%d cells)\n",
			fig, metric, cells, block)
		fmt.Fprintf(w, "  inside-seed minimum: score %.4f at size %d (planted %d)\n",
			res.InsideMinV, res.InsideMinK, block)
		fmt.Fprintf(w, "  outside-seed minimum %.4f, asymptote %.4f\n\n", res.OutsideMinV, res.OutsideEndV)
		tbl := report.New("  size : inside-seed score : outside-seed score", "size", "inside", "outside")
		for i := range res.InsideCurve {
			in := res.InsideCurve[i]
			out := [2]float64{0, 0}
			if i < len(res.OutsideCurve) {
				out = res.OutsideCurve[i]
			}
			tbl.Row(int(in[0]), in[1], out[1])
		}
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Figure5Result captures the three-metric comparison along one linear
// ordering of the Bigblue1 proxy.
type Figure5Result struct {
	NGTLSMinK, GTLSDMinK int // interior minima locations
	RatioCutMinK         int // ratio cut's minimum location
	OrderLen             int
	NGTLS, GTLSD, Ratio  [][2]float64
}

// Figure5 regenerates Figure 5: nGTL-S, GTL-SD and ratio cut T(C)/|C|
// versus prefix size along one linear ordering of a Bigblue1-like
// circuit, demonstrating that ratio cut's minimum sits at the right end
// while the GTL metrics dip at the structure boundary.
//
// The workload is a dedicated variant of the Bigblue1 proxy: its
// planted structure has a *moderate* score (the paper's Bigblue1
// Structure 1 scores 0.14, not the ~0.02 of the dissolved ROMs),
// because ratio cut's large-size bias only separates from the GTL
// metrics when the structure's dip is not overwhelmingly deep.
func Figure5(ctx context.Context, cfg Config, w io.Writer) (*Figure5Result, error) {
	// A Rent-obeying hierarchical host is essential here: in a uniform
	// random graph the background cut grows linearly, so ratio cut's
	// asymptote never undercuts the structure dip and the baseline
	// would falsely look dip-seeking.
	p, _ := generate.ProfileByName("bigblue1")
	hostCells := cfg.scaled(p.Cells)
	if hostCells < 20_000 {
		hostCells = 20_000
	}
	structSize := cfg.scaled(6187) // the paper's Bigblue1 Structure 1
	if structSize < 300 {
		structSize = 300
	}
	// Interface width targeting nGTL-S ≈ 0.30 with A_G ≈ 4, p ≈ 0.65:
	// deep enough that both GTL metrics dip at the structure (the
	// hierarchical host's own module boundaries reach ≈ 0.65), shallow
	// enough that ratio cut still prefers the right end of the curve.
	openNets := int(0.30 * 4 * math.Pow(float64(structSize), 0.65))
	b, hostOpen, err := generate.NewHierarchicalHost(generate.HierSpec{
		Cells: hostCells, Rent: p.Rent, Seed: cfg.Seed*100 + 41,
	})
	if err != nil {
		return nil, err
	}
	rng := ds.NewRNG(cfg.Seed*100 + 43)
	structure := generate.Embed(b, generate.DissolvedROM(structSize, openNets, cfg.Seed+5), hostOpen, rng)
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	aG := nl.AvgPins()
	seed := structure[0]
	z := 20 * structSize
	if z > nl.NumCells()/2 {
		z = nl.NumCells() / 2
	}
	opt := core.DefaultOptions()
	ord := core.GrowOrdering(nl, seed, z, opt)
	cN := core.ScoreCurve(ord, core.MetricNGTLS, aG)
	cD := core.ScoreCurve(ord, core.MetricGTLSD, aG)
	ratio := make([]float64, ord.Len())
	for k := 1; k <= ord.Len(); k++ {
		ratio[k-1] = metrics.RatioCut(int(ord.Cuts[k-1]), k)
	}
	res := &Figure5Result{OrderLen: ord.Len()}
	warm := 24
	kN, _ := argmin(cN.Scores, warm)
	kD, _ := argmin(cD.Scores, warm)
	kR, _ := argmin(ratio, warm)
	res.NGTLSMinK, res.GTLSDMinK, res.RatioCutMinK = kN+1, kD+1, kR+1
	res.NGTLS = sampleCurve(cN.Scores, 40)
	res.GTLSD = sampleCurve(cD.Scores, 40)
	res.Ratio = sampleCurve(ratio, 40)
	if w != nil {
		fmt.Fprintf(w, "Figure 5: metric curves along one Bigblue1-proxy ordering (len=%d, planted structure=%d cells)\n",
			ord.Len(), structSize)
		fmt.Fprintf(w, "  minima: nGTL-S@%d GTL-SD@%d ratio-cut@%d (ordering end=%d)\n\n",
			res.NGTLSMinK, res.GTLSDMinK, res.RatioCutMinK, ord.Len())
		tbl := report.New("", "size", "nGTL-S", "GTL-SD", "ratio-cut")
		for i := range res.NGTLS {
			tbl.Row(int(res.NGTLS[i][0]), res.NGTLS[i][1], res.GTLSD[i][1], res.Ratio[i][1])
		}
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Figure46Result captures the placement-overlay renders of Figures 4
// and 6.
type Figure46Result struct {
	GTLs  int
	ASCII string
}

// Figure46 places a design, finds its GTLs and renders the overlay.
// design selects "bigblue1" (Figure 4) or "industrial" (Figure 6).
// When pgm is non-nil a PPM image is written to it as well.
func Figure46(ctx context.Context, design string, cfg Config, w io.Writer, ppm io.Writer) (*Figure46Result, error) {
	var nl *netlist.Netlist
	var maxBlock int
	switch design {
	case "industrial":
		d, err := generate.NewIndustrialProxy(cfg.Scale, cfg.Seed*10+3)
		if err != nil {
			return nil, err
		}
		nl = d.Netlist
		for _, s := range d.Structures {
			if len(s) > maxBlock {
				maxBlock = len(s)
			}
		}
	default:
		p, ok := generate.ProfileByName(design)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown design %q", design)
		}
		d, err := generate.NewISPDProxy(p, cfg.Scale, cfg.Seed*100+7)
		if err != nil {
			return nil, err
		}
		nl = d.Netlist
		for _, s := range d.Structures {
			if len(s) > maxBlock {
				maxBlock = len(s)
			}
		}
	}
	opt := cfg.finderOptions(maxBlock, nl.NumCells())
	if opt.Seeds < 100 {
		opt.Seeds = 100
	}
	res, err := findCtx(ctx, nl, opt)
	if err != nil {
		return nil, err
	}
	pl, err := place.Place(nl, place.Rect{}, place.Options{Seed: cfg.Seed + 31})
	if err != nil {
		return nil, err
	}
	groups := make([][]netlist.CellID, len(res.GTLs))
	for i := range res.GTLs {
		groups[i] = res.GTLs[i].Members
	}
	var buf limitedBuilder
	if err := viz.PlacementASCII(pl, groups, 48, &buf); err != nil {
		return nil, err
	}
	if ppm != nil {
		if err := viz.PlacementPPM(pl, groups, 512, ppm); err != nil {
			return nil, err
		}
	}
	out := &Figure46Result{GTLs: len(res.GTLs), ASCII: buf.String()}
	if w != nil {
		fmt.Fprintf(w, "Figure 4/6 (%s): placement with %d GTLs overlaid (digits mark GTL tiles)\n%s\n",
			design, len(res.GTLs), out.ASCII)
	}
	return out, nil
}

// InflationResult captures the §5.1.3 cell-inflation experiment
// (Figures 1 and 7 plus the congestion statistics).
type InflationResult struct {
	Before, After route.Stats
	// Ratio100 etc. are before/after improvement factors.
	Ratio100, Ratio90, RatioAvg float64
	FoundGTLs                   int
}

// Inflation runs the end-to-end flow: find GTLs on the industrial
// proxy, place, measure congestion, inflate the found GTL cells 4×,
// re-place, re-measure. Unlike the route package's unit test, this uses
// the *found* GTLs, not ground truth — the full pipeline of the paper.
// When asciiW is non-nil, before/after congestion maps render to it.
func Inflation(ctx context.Context, cfg Config, w io.Writer, asciiW io.Writer) (*InflationResult, error) {
	d, err := generate.NewIndustrialProxy(cfg.Scale, cfg.Seed*10+3)
	if err != nil {
		return nil, err
	}
	nl := d.Netlist
	maxBlock := 0
	for _, s := range d.Structures {
		if len(s) > maxBlock {
			maxBlock = len(s)
		}
	}
	opt := cfg.finderOptions(maxBlock, nl.NumCells())
	if opt.Seeds < 100 {
		opt.Seeds = 100
	}
	found, err := findCtx(ctx, nl, opt)
	if err != nil {
		return nil, err
	}
	groups := make([][]netlist.CellID, len(found.GTLs))
	for i := range found.GTLs {
		groups[i] = found.GTLs[i].Members
	}

	pl, err := place.Place(nl, place.Rect{}, place.Options{Seed: cfg.Seed + 13})
	if err != nil {
		return nil, err
	}
	grid := 48
	before, err := route.Estimate(nl, pl, grid, grid)
	if err != nil {
		return nil, err
	}
	before.SetCapacityRelative(1.25)
	stBefore := route.ComputeStats(nl, pl, before)

	inflated, err := place.Inflate(nl, groups, 4)
	if err != nil {
		return nil, err
	}
	pl2, err := place.Place(inflated, place.Rect{}, place.Options{Seed: cfg.Seed + 13})
	if err != nil {
		return nil, err
	}
	after, err := route.Estimate(inflated, pl2, grid, grid)
	if err != nil {
		return nil, err
	}
	// Hold absolute capacity per unit die area fixed across the runs.
	after.Capacity = before.Capacity * (after.Die.Area() / float64(after.W*after.H)) /
		(before.Die.Area() / float64(before.W*before.H))
	stAfter := route.ComputeStats(inflated, pl2, after)

	res := &InflationResult{Before: stBefore, After: stAfter, FoundGTLs: len(found.GTLs)}
	res.Ratio100 = ratio(stBefore.NetsThrough100, stAfter.NetsThrough100)
	res.Ratio90 = ratio(stBefore.NetsThrough90, stAfter.NetsThrough90)
	if stAfter.AvgWorst20 > 0 {
		res.RatioAvg = stBefore.AvgWorst20 / stAfter.AvgWorst20
	}
	if w != nil {
		tbl := report.New("Cell inflation on the industrial proxy (paper §5.1.3 / Figures 1, 7)",
			"Metric", "Before", "After", "Factor")
		tbl.Row("nets through >=100% tiles", res.Before.NetsThrough100, res.After.NetsThrough100,
			fmt.Sprintf("%.1fx", res.Ratio100))
		tbl.Row("nets through >=90% tiles", res.Before.NetsThrough90, res.After.NetsThrough90,
			fmt.Sprintf("%.1fx", res.Ratio90))
		tbl.Row("avg congestion (worst 20% nets)",
			fmt.Sprintf("%.0f%%", 100*res.Before.AvgWorst20),
			fmt.Sprintf("%.0f%%", 100*res.After.AvgWorst20),
			fmt.Sprintf("%.2fx", res.RatioAvg))
		tbl.Row("max tile utilization",
			fmt.Sprintf("%.0f%%", 100*res.Before.MaxTile),
			fmt.Sprintf("%.0f%%", 100*res.After.MaxTile), "")
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	if asciiW != nil {
		fmt.Fprintf(asciiW, "\nFigure 1 (before inflation):\n")
		if err := viz.CongestionASCII(before, asciiW); err != nil {
			return nil, err
		}
		fmt.Fprintf(asciiW, "\nFigure 7 (after 4x inflation of found GTLs):\n")
		if err := viz.CongestionASCII(after, asciiW); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func ratio(before, after int) float64 {
	if after == 0 {
		if before == 0 {
			return 1
		}
		return float64(before)
	}
	return float64(before) / float64(after)
}

// limitedBuilder is a strings.Builder look-alike that satisfies
// io.Writer; kept tiny to avoid importing strings in the hot path.
type limitedBuilder struct{ b []byte }

func (l *limitedBuilder) Write(p []byte) (int, error) {
	l.b = append(l.b, p...)
	return len(p), nil
}

func (l *limitedBuilder) String() string { return string(l.b) }
