package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tanglefind/internal/core"
	"tanglefind/internal/netlist/deltatest"
	"tanglefind/internal/report"
	"tanglefind/internal/telemetry"
)

// ---------------------------------------------------------------------
// Single-core hot path — the PR's before/after: the retained
// pre-overhaul absorb loop (full NetPins re-walks, per-(net,cell)
// heap pushes, binary heap) against the overhauled engine (amortized
// outside-pin compaction, coalesced pushes, 4-ary heap), and the
// overhauled engine again under Options.Relabel's locality-permuted
// execution. Every timed pair is differentially verified first:
// optimized must be bit-identical to baseline, relabel set-identical
// with scores to 1e-9. Flat pipeline, Workers=1 throughout — this is
// the single-core story; the parallel experiment owns scaling.
// ---------------------------------------------------------------------

// HotPathResult is one workload row of the before/after comparison.
type HotPathResult struct {
	Name  string `json:"name"`
	Cells int    `json:"cells"`
	Pins  int    `json:"pins"`
	Seeds int    `json:"seeds"`
	// BaselineMS times the retained pre-overhaul absorb loop
	// (core.Finder.SetBaselineGrowth); OptimizedMS the default engine;
	// RelabelMS the default engine in locality-permuted id space
	// (shadow construction excluded — a warmup run builds it).
	BaselineMS  float64 `json:"baseline_ms"`
	OptimizedMS float64 `json:"optimized_ms"`
	RelabelMS   float64 `json:"relabel_ms"`
	// Speedup = BaselineMS/OptimizedMS, the overhaul's single-core
	// gain; RelabelSpeedup = BaselineMS/RelabelMS adds the locality
	// permutation on top.
	Speedup        float64 `json:"speedup"`
	RelabelSpeedup float64 `json:"relabel_speedup"`
	GTLs           int     `json:"gtls"`
	// Stage breakdowns of the timed baseline and optimized runs, so
	// the record shows where the time went, not just that it shrank.
	BaselineStages  telemetry.StageTimings `json:"baseline_stages_ms,omitempty"`
	OptimizedStages telemetry.StageTimings `json:"optimized_stages_ms,omitempty"`
	// Match is the bit-identity verdict (optimized vs baseline, zero
	// tolerance); RelabelMatch the set-identity verdict (1e-9).
	Match        bool `json:"match"`
	RelabelMatch bool `json:"relabel_match"`
}

// HotPathRun executes the before/after on one case's workload.
func HotPathRun(ctx context.Context, cs MultilevelCase, cfg Config) (*HotPathResult, error) {
	rg, err := multilevelWorkload(cs, cfg)
	if err != nil {
		return nil, fmt.Errorf("hotpath %s: %w", cs.Name, err)
	}
	nl := rg.Netlist
	maxBlock := 0
	for _, b := range rg.Blocks {
		if len(b) > maxBlock {
			maxBlock = len(b)
		}
	}
	opt := cfg.finderOptions(maxBlock, nl.NumCells())
	opt.Levels = 1 // flat: time the absorb loop itself, not coarsening
	opt.Workers = 1

	f, err := core.NewFinder(nl)
	if err != nil {
		return nil, err
	}

	timed := func(o core.Options) (*core.Result, float64, error) {
		start := time.Now()
		res, err := f.Find(ctx, o)
		return res, float64(time.Since(start)) / float64(time.Millisecond), err
	}

	// One warmup run pays cold scratch pools and page-faults the CSR
	// once, so neither engine's timed run carries setup noise. Warm
	// with the baseline engine: any residual warmup bias then favors
	// the baseline, making the reported speedup conservative.
	f.SetBaselineGrowth(true)
	if _, _, err := timed(opt); err != nil {
		return nil, fmt.Errorf("hotpath %s: warmup: %w", cs.Name, err)
	}
	baseRes, baseMS, err := timed(opt)
	if err != nil {
		return nil, fmt.Errorf("hotpath %s: baseline: %w", cs.Name, err)
	}

	f.SetBaselineGrowth(false)
	optRes, optMS, err := timed(opt)
	if err != nil {
		return nil, fmt.Errorf("hotpath %s: optimized: %w", cs.Name, err)
	}
	if err := deltatest.DiffResults(baseRes, optRes, 0); err != nil {
		return nil, fmt.Errorf("hotpath %s: optimized diverged from baseline: %w", cs.Name, err)
	}

	relOpt := opt
	relOpt.Relabel = true
	if _, _, err := timed(relOpt); err != nil { // builds the shadow once
		return nil, fmt.Errorf("hotpath %s: relabel warmup: %w", cs.Name, err)
	}
	relRes, relMS, err := timed(relOpt)
	if err != nil {
		return nil, fmt.Errorf("hotpath %s: relabel: %w", cs.Name, err)
	}
	if err := deltatest.DiffResultsSetwise(baseRes, relRes, 1e-9); err != nil {
		return nil, fmt.Errorf("hotpath %s: relabel diverged from baseline: %w", cs.Name, err)
	}

	row := &HotPathResult{
		Name:            cs.Name,
		Cells:           nl.NumCells(),
		Pins:            nl.NumPins(),
		Seeds:           opt.Seeds,
		BaselineMS:      baseMS,
		OptimizedMS:     optMS,
		RelabelMS:       relMS,
		GTLs:            len(optRes.GTLs),
		BaselineStages:  baseRes.Stages,
		OptimizedStages: optRes.Stages,
		Match:           true,
		RelabelMatch:    true,
	}
	if optMS > 0 {
		row.Speedup = baseMS / optMS
	}
	if relMS > 0 {
		row.RelabelSpeedup = baseMS / relMS
	}
	return row, nil
}

// HotPath runs the before/after over both standard geometries and
// renders the comparison table.
func HotPath(ctx context.Context, cfg Config, w io.Writer) (*HotPathRecord, error) {
	rec := &HotPathRecord{Scale: cfg.Scale, Seeds: cfg.Seeds, CPUs: runtime.GOMAXPROCS(0)}
	for _, cs := range MultilevelCases {
		row, err := HotPathRun(ctx, cs, cfg)
		if err != nil {
			return nil, err
		}
		rec.Results = append(rec.Results, row)
	}
	if w != nil {
		tbl := report.New(
			fmt.Sprintf("Single-core hot path, flat pipeline, Workers=1 (%d CPUs)", rec.CPUs),
			"Workload", "Cells", "Baseline ms", "Optimized ms", "Speedup", "Relabel ms", "vs base", "GTLs", "Top stages", "Match")
		for _, r := range rec.Results {
			tbl.Row(r.Name, r.Cells, fmt.Sprintf("%.0f", r.BaselineMS),
				fmt.Sprintf("%.0f", r.OptimizedMS), fmt.Sprintf("%.2fx", r.Speedup),
				fmt.Sprintf("%.0f", r.RelabelMS), fmt.Sprintf("%.2fx", r.RelabelSpeedup),
				r.GTLs, r.OptimizedStages.Top(3), r.Match && r.RelabelMatch)
		}
		if err := tbl.Render(w); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// HotPathRecord is the serialized before/after gtlexp -dump writes as
// BENCH_hotpath.json. A record with Scale < 1 documents a smoke
// measurement, not the headline claim.
type HotPathRecord struct {
	Scale   float64          `json:"scale"`
	Seeds   int              `json:"seeds"`
	CPUs    int              `json:"cpus"` // runtime.GOMAXPROCS(0) at measurement time
	Results []*HotPathResult `json:"results"`
}

// WriteHotPathRecord saves the comparison as indented JSON.
func WriteHotPathRecord(path string, rec *HotPathRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
