// Package maxflow implements Dinic's maximum-flow algorithm on
// float-capacity digraphs. It is the substrate for the expensive
// min-cut-based baselines the paper surveys — edge separability
// (Cong–Lim) and adhesion (Kudva et al.) — whose cost the paper cites
// as the reason they are impractical at netlist scale.
package maxflow

import "math"

const eps = 1e-12

// Graph is a flow network under construction. Nodes are dense ints;
// use AddEdge to add directed capacity. The zero value of Graph is not
// usable; call New.
type Graph struct {
	head []int32 // per node: first arc index, -1 none
	next []int32 // per arc: next arc of same node
	to   []int32
	cap  []float64
	// level/iter are Dinic working state
	level []int32
	iter  []int32
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	g := &Graph{head: make([]int32, n)}
	for i := range g.head {
		g.head[i] = -1
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.head) }

// AddEdge adds a directed edge u→v with the given capacity plus its
// zero-capacity reverse arc (arc pairs live at indices 2k, 2k+1).
func (g *Graph) AddEdge(u, v int32, capacity float64) {
	g.addArc(u, v, capacity)
	g.addArc(v, u, 0)
}

// AddUndirected adds capacity in both directions (an undirected edge).
func (g *Graph) AddUndirected(u, v int32, capacity float64) {
	g.addArc(u, v, capacity)
	g.addArc(v, u, capacity)
}

func (g *Graph) addArc(u, v int32, c float64) {
	g.to = append(g.to, v)
	g.cap = append(g.cap, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = int32(len(g.to) - 1)
}

// MaxFlow computes the maximum s→t flow, mutating residual capacities.
func (g *Graph) MaxFlow(s, t int32) float64 {
	if s == t {
		return math.Inf(1)
	}
	if g.level == nil {
		g.level = make([]int32, len(g.head))
		g.iter = make([]int32, len(g.head))
	}
	total := 0.0
	for g.bfs(s, t) {
		copy(g.iter, g.head)
		for {
			f := g.dfs(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (g *Graph) bfs(s, t int32) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int32{s}
	g.level[s] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for a := g.head[u]; a >= 0; a = g.next[a] {
			v := g.to[a]
			if g.cap[a] > eps && g.level[v] < 0 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(u, t int32, f float64) float64 {
	if u == t {
		return f
	}
	for ; g.iter[u] >= 0; g.iter[u] = g.next[g.iter[u]] {
		a := g.iter[u]
		v := g.to[a]
		if g.cap[a] > eps && g.level[v] == g.level[u]+1 {
			d := g.dfs(v, t, math.Min(f, g.cap[a]))
			if d > eps {
				g.cap[a] -= d
				g.cap[a^1] += d
				return d
			}
		}
	}
	return 0
}

// MinCutSide returns the source side of the minimum cut after MaxFlow
// has run: all nodes reachable from s in the residual graph.
func (g *Graph) MinCutSide(s int32) []bool {
	side := make([]bool, len(g.head))
	queue := []int32{s}
	side[s] = true
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for a := g.head[u]; a >= 0; a = g.next[a] {
			v := g.to[a]
			if g.cap[a] > eps && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}
