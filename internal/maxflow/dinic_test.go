package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 6-node example with max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); math.Abs(got-23) > 1e-9 {
		t.Errorf("max flow = %v, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("flow across disconnection = %v, want 0", got)
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 4)
	if got := g.MaxFlow(0, 1); math.Abs(got-7) > 1e-9 {
		t.Errorf("parallel edges flow = %v, want 7", got)
	}
}

func TestUndirectedEdge(t *testing.T) {
	g := New(3)
	g.AddUndirected(0, 1, 2)
	g.AddUndirected(1, 2, 5)
	if got := g.MaxFlow(0, 2); math.Abs(got-2) > 1e-9 {
		t.Errorf("path flow = %v, want bottleneck 2", got)
	}
}

func TestMinCutSide(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1) // bottleneck
	g.AddEdge(2, 3, 10)
	g.MaxFlow(0, 3)
	side := g.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Errorf("cut side = %v, want {0,1} | {2,3}", side)
	}
}

// bruteMinCut enumerates all s-t cuts of a small undirected graph.
func bruteMinCut(n int, edges [][3]float64, s, t int) float64 {
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		cut := 0.0
		for _, e := range edges {
			u, v := int(e[0]), int(e[1])
			uIn, vIn := mask&(1<<u) != 0, mask&(1<<v) != 0
			if uIn != vIn {
				cut += e[2]
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

// TestMaxFlowMinCutDuality: on random small undirected graphs, Dinic's
// flow equals the brute-force minimum cut.
func TestMaxFlowMinCutDuality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		var edges [][3]float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					edges = append(edges, [3]float64{float64(i), float64(j), float64(1 + r.Intn(5))})
				}
			}
		}
		g := New(n)
		for _, e := range edges {
			g.AddUndirected(int32(e[0]), int32(e[1]), e[2])
		}
		got := g.MaxFlow(0, int32(n-1))
		want := bruteMinCut(n, edges, 0, n-1)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	if got := g.MaxFlow(0, 0); !math.IsInf(got, 1) {
		t.Errorf("s==t flow = %v, want +Inf", got)
	}
}
