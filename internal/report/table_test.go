package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := New("My title", "Name", "Count", "Score")
	tbl.Row("alpha", 3, 0.12345)
	tbl.Row("a-much-longer-name", 12345, 1234.5)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "My title" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Score") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns aligned: "Count" column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "Count")
	for _, row := range lines[3:] {
		if len(row) <= idx {
			t.Fatalf("short row %q", row)
		}
	}
	if !strings.Contains(out, "0.123") {
		t.Errorf("float formatting lost: %s", out)
	}
	if !strings.Contains(out, "1234") {
		t.Errorf("large float formatting lost: %s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.5:    "42.5",
		0.5:     "0.500",
		0.00123: "0.0012",
	}
	for in, want := range cases {
		if got := fmtFloat(in); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
