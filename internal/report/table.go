// Package report formats fixed-width text tables in the style of the
// paper's result tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmtFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10:
		return fmt.Sprintf("%.1f", x)
	case x >= 0.01:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
