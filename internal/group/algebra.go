package group

import (
	"sort"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Set is an evaluated cell group: its members plus the cut and pin
// totals needed to score it. Members order is unspecified unless stated.
type Set struct {
	Members []netlist.CellID
	Cut     int // T(C)
	Pins    int // Σ_{c∈C} deg(c)
}

// Size returns |C|.
func (s Set) Size() int { return len(s.Members) }

// AvgPins returns A_C (0 for an empty set).
func (s Set) AvgPins() float64 {
	if len(s.Members) == 0 {
		return 0
	}
	return float64(s.Pins) / float64(len(s.Members))
}

// sortedCopy returns the members sorted ascending.
func sortedCopy(a []netlist.CellID) []netlist.CellID {
	out := make([]netlist.CellID, len(a))
	copy(out, a)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union returns a ∪ b as a sorted id slice.
func Union(a, b []netlist.CellID) []netlist.CellID {
	sa, sb := sortedCopy(a), sortedCopy(b)
	out := make([]netlist.CellID, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			out = append(out, sa[i])
			i++
		case sa[i] > sb[j]:
			out = append(out, sb[j])
			j++
		default:
			out = append(out, sa[i])
			i++
			j++
		}
	}
	out = append(out, sa[i:]...)
	out = append(out, sb[j:]...)
	return out
}

// Intersect returns a ∩ b as a sorted id slice.
func Intersect(a, b []netlist.CellID) []netlist.CellID {
	sa, sb := sortedCopy(a), sortedCopy(b)
	var out []netlist.CellID
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sa[i] > sb[j]:
			j++
		default:
			out = append(out, sa[i])
			i++
			j++
		}
	}
	return out
}

// Difference returns a − b as a sorted id slice.
func Difference(a, b []netlist.CellID) []netlist.CellID {
	sa, sb := sortedCopy(a), sortedCopy(b)
	var out []netlist.CellID
	i, j := 0, 0
	for i < len(sa) {
		switch {
		case j >= len(sb) || sa[i] < sb[j]:
			out = append(out, sa[i])
			i++
		case sa[i] > sb[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// MergeUnion appends a ∪ b to dst and returns it. Unlike Union it
// allocates nothing beyond dst's growth, but requires both inputs
// sorted ascending and duplicate-free; the output is sorted too.
func MergeUnion(dst, a, b []netlist.CellID) []netlist.CellID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// MergeIntersect appends a ∩ b to dst (same sorted-unique contract as
// MergeUnion) and returns it.
func MergeIntersect(dst, a, b []netlist.CellID) []netlist.CellID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// MergeDifference appends a − b to dst (same sorted-unique contract
// as MergeUnion) and returns it.
func MergeDifference(dst, a, b []netlist.CellID) []netlist.CellID {
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return dst
}

// Evaluator computes Cut/Pins of arbitrary cell sets with reusable
// scratch space. Not safe for concurrent use.
type Evaluator struct {
	nl      *netlist.Netlist
	in      *ds.Bitset
	netSeen []int32 // stamp per net
	stamp   int32
}

// NewEvaluator returns an evaluator over nl.
func NewEvaluator(nl *netlist.Netlist) *Evaluator {
	return &Evaluator{
		nl:      nl,
		in:      ds.NewBitset(nl.NumCells()),
		netSeen: make([]int32, nl.NumNets()),
	}
}

// MemoryFootprint returns the evaluator's retained bytes, for engine
// memory accounting.
func (e *Evaluator) MemoryFootprint() int64 {
	return int64(e.in.Capacity())/8 + int64(cap(e.netSeen))*4
}

// Eval computes the Set value (cut and pins) for the given members.
// Duplicate ids are tolerated and collapsed.
func (e *Evaluator) Eval(members []netlist.CellID) Set {
	e.stamp++
	uniq := members[:0:0]
	for _, c := range members {
		if e.in.Add(int(c)) {
			uniq = append(uniq, c)
		}
	}
	cut, pins := 0, 0
	for _, c := range uniq {
		nets := e.nl.CellPins(c)
		pins += len(nets)
		for _, n := range nets {
			if e.netSeen[n] == e.stamp {
				continue
			}
			e.netSeen[n] = e.stamp
			for _, other := range e.nl.NetPins(n) {
				if !e.in.Has(int(other)) {
					cut++
					break
				}
			}
		}
	}
	for _, c := range uniq {
		e.in.Remove(int(c))
	}
	return Set{Members: uniq, Cut: cut, Pins: pins}
}

// Tally computes the cut and pin totals of a duplicate-free member
// slice without copying or retaining it — the zero-allocation core of
// Eval, for callers that manage their own member storage (the Phase
// III recombination arena). Eval(members) == Set{members, Tally(members)}
// whenever members is duplicate-free.
func (e *Evaluator) Tally(members []netlist.CellID) (cut, pins int) {
	e.stamp++
	for _, c := range members {
		e.in.Add(int(c))
	}
	for _, c := range members {
		nets := e.nl.CellPins(c)
		pins += len(nets)
		for _, n := range nets {
			if e.netSeen[n] == e.stamp {
				continue
			}
			e.netSeen[n] = e.stamp
			for _, other := range e.nl.NetPins(n) {
				if !e.in.Has(int(other)) {
					cut++
					break
				}
			}
		}
	}
	for _, c := range members {
		e.in.Remove(int(c))
	}
	return cut, pins
}
