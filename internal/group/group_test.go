package group

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tanglefind/internal/netlist"
)

func randomNetlist(r *rand.Rand, cells, nets int) *netlist.Netlist {
	var b netlist.Builder
	b.AddCells(cells)
	for i := 0; i < nets; i++ {
		sz := 1 + r.Intn(5)
		pins := make([]netlist.CellID, sz)
		for j := range pins {
			pins[j] = netlist.CellID(r.Intn(cells))
		}
		b.AddNet("", pins...)
	}
	return b.MustBuild()
}

// TestTrackerMatchesBruteForce is the central property test of the
// incremental tracker: after any sequence of adds, Cut and Pins must
// equal the one-shot reference computation.
func TestTrackerMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := randomNetlist(r, 2+r.Intn(40), 1+r.Intn(60))
		tr := NewTracker(nl)
		perm := r.Perm(nl.NumCells())
		addCount := 1 + r.Intn(nl.NumCells())
		for _, c := range perm[:addCount] {
			tr.Add(netlist.CellID(c))
			members := tr.Members()
			wantCut := nl.Cut(members, tr)
			if tr.Cut() != wantCut {
				t.Logf("cut mismatch after %d adds: got %d want %d", tr.Size(), tr.Cut(), wantCut)
				return false
			}
			if tr.Pins() != nl.PinsIn(members) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDeltaCutMatchesAdd: DeltaCut(c) must equal the cut change an
// actual Add produces.
func TestDeltaCutMatchesAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := randomNetlist(r, 2+r.Intn(30), 1+r.Intn(40))
		tr := NewTracker(nl)
		perm := r.Perm(nl.NumCells())
		for _, c := range perm {
			d := tr.DeltaCut(netlist.CellID(c))
			before := tr.Cut()
			tr.Add(netlist.CellID(c))
			if tr.Cut()-before != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrackerResetReuses(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	nl := randomNetlist(r, 30, 50)
	tr := NewTracker(nl)
	tr.Add(0)
	tr.Add(5)
	firstCut := tr.Cut()
	tr.Reset()
	if tr.Size() != 0 || tr.Cut() != 0 || tr.Pins() != 0 {
		t.Fatal("Reset left state")
	}
	tr.Add(0)
	tr.Add(5)
	if tr.Cut() != firstCut {
		t.Errorf("cut after reset = %d, want %d", tr.Cut(), firstCut)
	}
}

func TestTrackerPanicsOnDoubleAdd(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(2)), 10, 10)
	tr := NewTracker(nl)
	tr.Add(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double add")
		}
	}()
	tr.Add(3)
}

func TestTrackerSnapshot(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(3)), 20, 30)
	tr := NewTracker(nl)
	tr.Add(1)
	tr.Add(2)
	snap := tr.Snapshot()
	tr.Add(3)
	if snap.Size() != 2 || len(snap.Members) != 2 {
		t.Error("snapshot mutated by later Add")
	}
	if snap.Cut == tr.Cut() && snap.Pins == tr.Pins() && tr.Size() == snap.Size() {
		t.Error("snapshot should differ after Add")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := []netlist.CellID{5, 1, 3}
	b := []netlist.CellID{3, 7, 1}
	if got := Union(a, b); !reflect.DeepEqual(got, []netlist.CellID{1, 3, 5, 7}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b); !reflect.DeepEqual(got, []netlist.CellID{1, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Difference(a, b); !reflect.DeepEqual(got, []netlist.CellID{5}) {
		t.Errorf("Difference = %v", got)
	}
	if got := Difference(b, a); !reflect.DeepEqual(got, []netlist.CellID{7}) {
		t.Errorf("Difference = %v", got)
	}
	if got := Intersect(a, nil); len(got) != 0 {
		t.Errorf("Intersect with empty = %v", got)
	}
}

// TestSetAlgebraProperties: |A∪B| + |A∩B| == |A| + |B| for sets, and
// difference/intersection partition A.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(av, bv []uint8) bool {
		dedupe := func(v []uint8) []netlist.CellID {
			seen := map[netlist.CellID]bool{}
			var out []netlist.CellID
			for _, x := range v {
				id := netlist.CellID(x % 64)
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
			return out
		}
		a, b := dedupe(av), dedupe(bv)
		u, i := Union(a, b), Intersect(a, b)
		if len(u)+len(i) != len(a)+len(b) {
			return false
		}
		d := Difference(a, b)
		return len(d)+len(i) == len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEvaluatorMatchesTracker: Eval of a member list equals the
// tracker's incremental result.
func TestEvaluatorMatchesTracker(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := randomNetlist(r, 2+r.Intn(40), 1+r.Intn(60))
		tr := NewTracker(nl)
		ev := NewEvaluator(nl)
		perm := r.Perm(nl.NumCells())
		k := 1 + r.Intn(nl.NumCells())
		var members []netlist.CellID
		for _, c := range perm[:k] {
			tr.Add(netlist.CellID(c))
			members = append(members, netlist.CellID(c))
		}
		got := ev.Eval(members)
		return got.Cut == tr.Cut() && got.Pins == tr.Pins() && got.Size() == tr.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvaluatorToleratesDuplicates(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(5)), 20, 30)
	ev := NewEvaluator(nl)
	a := ev.Eval([]netlist.CellID{1, 2, 3})
	b := ev.Eval([]netlist.CellID{1, 2, 3, 2, 1})
	if a.Cut != b.Cut || a.Pins != b.Pins || a.Size() != b.Size() {
		t.Error("duplicates changed the evaluation")
	}
}

func TestEvaluatorIsReusable(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(6)), 25, 40)
	ev := NewEvaluator(nl)
	first := ev.Eval([]netlist.CellID{0, 1, 2})
	for i := 0; i < 10; i++ {
		ev.Eval([]netlist.CellID{netlist.CellID(i), netlist.CellID((i + 7) % 25)})
	}
	again := ev.Eval([]netlist.CellID{0, 1, 2})
	if first.Cut != again.Cut || first.Pins != again.Pins {
		t.Error("evaluator state leaked between calls")
	}
}
