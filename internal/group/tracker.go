// Package group maintains growing cell groups over a netlist with
// incremental cut bookkeeping, plus the set algebra and one-shot
// evaluation used by the finder's refinement phase.
//
// The paper's Phase I adds one cell at a time to a group of up to
// Z = 100K cells; recomputing T(C) from scratch each step would be
// quadratic. Tracker keeps per-net inside-pin counts so Add is
// O(deg(cell)) and T(C), Σ pins and per-net λ(e) are always current.
// Every pin walk here runs over the netlist's flat CSR arrays
// (contiguous subslices per cell/net), so the hot Add/DeltaCut loops
// stream memory instead of chasing per-list pointers.
package group

import (
	"fmt"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Tracker is an append-only growing group over a fixed netlist.
// Create with NewTracker; Reset recycles it for a new seed without
// reallocating. Tracker is not safe for concurrent use — the finder
// gives each parallel seed its own.
type Tracker struct {
	nl *netlist.Netlist
	in *ds.Bitset
	// state holds, per net, λ(e)<<2 | wide<<1 | connected: the net's
	// outside-pin count, a frozen NetSize ≥ WideNetMin flag, and whether
	// the group has reached the net yet. Untouched nets sit at
	// NetSize<<2 | wide<<1. Encoding λ rather than the inside count lets
	// Add and DeltaCut decide every cut transition from this single
	// value — "becomes cut" is an untouched net with λ≥2 (state ≥ 8,
	// low bit 0), "becomes internal" is a connected net at λ=1
	// (state>>2 == 1, low bit 1) — so the hot loops touch one array
	// where the inside-count encoding needed a NetSize load from a
	// second one per net. The wide bit rides along into AbsorbInfo so
	// the finder's absorb loop can pick its walk strategy without a
	// NetSize load either.
	state   []int32
	touched []netlist.NetID
	members []netlist.CellID
	// absorb holds, per net of the most recently Added cell and
	// aligned with its CellPins run, the AbsorbInfo encoding. Add
	// fills it during its own cut-bookkeeping walk so the finder's
	// absorb loop never re-reads the net state for the same nets.
	absorb []int32
	cut    int // T(S)
	pins   int // Σ_{c∈S} deg(c)
}

// WideNetMin is the pin count from which a net carries the wide flag
// in its state word and in AbsorbInfo. The finder's absorb loop keys
// its walk strategy off it: wide nets amortize a materialized live
// outside-pin list, narrow nets walk their pin run directly.
const WideNetMin = 16

// AbsorbInfo bit layout (see AbsorbInfo).
const (
	AbsorbNewBit  = 1 << 0 // the add connected the net to the group
	AbsorbWideBit = 1 << 1 // NetSize(e) >= WideNetMin
	AbsorbShift   = 2      // λ(e) lives in the bits above
)

func initialState(sz int) int32 {
	s := int32(sz) << AbsorbShift
	if sz >= WideNetMin {
		s |= AbsorbWideBit
	}
	return s
}

// NewTracker returns an empty tracker over nl.
func NewTracker(nl *netlist.Netlist) *Tracker {
	t := &Tracker{
		nl:    nl,
		in:    ds.NewBitset(nl.NumCells()),
		state: make([]int32, nl.NumNets()),
	}
	for n := range t.state {
		t.state[n] = initialState(nl.NetSize(netlist.NetID(n)))
	}
	return t
}

// Reset empties the group, retaining all allocations.
func (t *Tracker) Reset() {
	for _, n := range t.touched {
		t.state[n] = initialState(t.nl.NetSize(n))
	}
	t.touched = t.touched[:0]
	t.members = t.members[:0]
	t.in.Clear()
	t.cut = 0
	t.pins = 0
}

// Netlist returns the netlist the tracker operates on.
func (t *Tracker) Netlist() *netlist.Netlist { return t.nl }

// MemoryFootprint returns the tracker's retained bytes (membership
// bitset, per-net pin counts and scratch capacity), for engine memory
// accounting.
func (t *Tracker) MemoryFootprint() int64 {
	return int64(t.in.Capacity())/8 + int64(cap(t.state))*4 +
		int64(cap(t.touched))*4 + int64(cap(t.members))*4 +
		int64(cap(t.absorb))*4
}

// Size returns |S|.
func (t *Tracker) Size() int { return len(t.members) }

// Cut returns T(S): nets with pins both inside and outside the group.
func (t *Tracker) Cut() int { return t.cut }

// Pins returns the total pin count of the group's cells.
func (t *Tracker) Pins() int { return t.pins }

// AvgPins returns A_C = Pins/|S| (0 for an empty group).
func (t *Tracker) AvgPins() float64 {
	if len(t.members) == 0 {
		return 0
	}
	return float64(t.pins) / float64(len(t.members))
}

// Has reports whether cell c is in the group.
func (t *Tracker) Has(c int) bool { return t.in.Has(c) }

// Members returns the cells in insertion order (do not modify).
func (t *Tracker) Members() []netlist.CellID { return t.members }

// NetPinsIn returns |e ∩ S| for net n.
func (t *Tracker) NetPinsIn(n netlist.NetID) int {
	return t.nl.NetSize(n) - int(t.state[n]>>AbsorbShift)
}

// TouchedNets returns every net with at least one member pin, each
// exactly once, in first-touch order. The slice aliases the tracker's
// scratch: do not modify it, and treat it as invalid after Reset.
// Boundary walks use it to visit each incident net once instead of
// once per member.
func (t *Tracker) TouchedNets() []netlist.NetID { return t.touched }

// Add inserts cell c into the group, updating cut and pin counts in
// O(deg(c)). It panics if c is already a member (a finder logic error).
// As a side effect it refreshes the AbsorbInfo scratch for c's nets.
func (t *Tracker) Add(c netlist.CellID) {
	if !t.in.Add(int(c)) {
		panic(fmt.Sprintf("group: cell %d added twice", c))
	}
	nets := t.nl.CellPins(c)
	t.pins += len(nets)
	t.members = append(t.members, c)
	t.absorb = t.absorb[:0]
	for _, n := range nets {
		s := t.state[n]
		if s&AbsorbNewBit == 0 {
			// Net newly connected to the group. λ≥2 (state ≥ 8) means it
			// had other pins, all outside: it becomes externally
			// connected. A single-pin net goes straight to fully
			// internal without ever counting toward the cut.
			t.touched = append(t.touched, n)
			if s >= 2<<AbsorbShift {
				t.cut++
			}
			s += AbsorbNewBit - 1<<AbsorbShift // λ-1, now connected
			t.state[n] = s
			t.absorb = append(t.absorb, s)
		} else {
			s -= 1 << AbsorbShift // λ-1, stays connected
			t.state[n] = s
			if s>>AbsorbShift == 0 {
				t.cut-- // last outside pin absorbed: net became internal
			}
			t.absorb = append(t.absorb, s&^AbsorbNewBit)
		}
	}
}

// AbsorbInfo describes the nets of the most recently Added cell,
// aligned index-for-index with its CellPins run: each entry encodes
// λ(e)<<AbsorbShift | wide | newlyConnected, where λ(e) is the net's
// outside-pin count after the add, AbsorbWideBit marks nets of
// WideNetMin or more pins, and AbsorbNewBit marks nets the add
// connected to the group for the first time. The slice aliases tracker
// scratch — read it before the next Add and do not modify it. It
// exists so the finder's absorb loop can reuse the state reads Add
// already paid for instead of making a second pass over the same CSR
// runs.
func (t *Tracker) AbsorbInfo() []int32 { return t.absorb }

// DeltaCut returns the change in T(S) if cell c (currently outside)
// were added. It does not modify the group.
func (t *Tracker) DeltaCut(c netlist.CellID) int {
	d := 0
	for _, n := range t.nl.CellPins(c) {
		s := t.state[n]
		if s&AbsorbNewBit == 0 {
			if s >= 2<<AbsorbShift {
				d++ // untouched net with other pins: becomes cut
			}
			// λ==1 untouched is a single-pin net: no change.
		} else if s>>AbsorbShift == 1 {
			d-- // c is the net's last outside pin: becomes internal
		}
	}
	return d
}

// Snapshot captures the current group as an immutable value.
func (t *Tracker) Snapshot() Set {
	m := make([]netlist.CellID, len(t.members))
	copy(m, t.members)
	return Set{Members: m, Cut: t.cut, Pins: t.pins}
}
