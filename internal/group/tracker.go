// Package group maintains growing cell groups over a netlist with
// incremental cut bookkeeping, plus the set algebra and one-shot
// evaluation used by the finder's refinement phase.
//
// The paper's Phase I adds one cell at a time to a group of up to
// Z = 100K cells; recomputing T(C) from scratch each step would be
// quadratic. Tracker keeps per-net inside-pin counts so Add is
// O(deg(cell)) and T(C), Σ pins and per-net λ(e) are always current.
// Every pin walk here runs over the netlist's flat CSR arrays
// (contiguous subslices per cell/net), so the hot Add/DeltaCut loops
// stream memory instead of chasing per-list pointers.
package group

import (
	"fmt"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Tracker is an append-only growing group over a fixed netlist.
// Create with NewTracker; Reset recycles it for a new seed without
// reallocating. Tracker is not safe for concurrent use — the finder
// gives each parallel seed its own.
type Tracker struct {
	nl      *netlist.Netlist
	in      *ds.Bitset
	pinsIn  []int32 // per net: pins inside the group
	touched []netlist.NetID
	members []netlist.CellID
	cut     int // T(S)
	pins    int // Σ_{c∈S} deg(c)
}

// NewTracker returns an empty tracker over nl.
func NewTracker(nl *netlist.Netlist) *Tracker {
	return &Tracker{
		nl:     nl,
		in:     ds.NewBitset(nl.NumCells()),
		pinsIn: make([]int32, nl.NumNets()),
	}
}

// Reset empties the group, retaining all allocations.
func (t *Tracker) Reset() {
	for _, n := range t.touched {
		t.pinsIn[n] = 0
	}
	t.touched = t.touched[:0]
	t.members = t.members[:0]
	t.in.Clear()
	t.cut = 0
	t.pins = 0
}

// Netlist returns the netlist the tracker operates on.
func (t *Tracker) Netlist() *netlist.Netlist { return t.nl }

// MemoryFootprint returns the tracker's retained bytes (membership
// bitset, per-net pin counts and scratch capacity), for engine memory
// accounting.
func (t *Tracker) MemoryFootprint() int64 {
	return int64(t.in.Capacity())/8 + int64(cap(t.pinsIn))*4 +
		int64(cap(t.touched))*4 + int64(cap(t.members))*4
}

// Size returns |S|.
func (t *Tracker) Size() int { return len(t.members) }

// Cut returns T(S): nets with pins both inside and outside the group.
func (t *Tracker) Cut() int { return t.cut }

// Pins returns the total pin count of the group's cells.
func (t *Tracker) Pins() int { return t.pins }

// AvgPins returns A_C = Pins/|S| (0 for an empty group).
func (t *Tracker) AvgPins() float64 {
	if len(t.members) == 0 {
		return 0
	}
	return float64(t.pins) / float64(len(t.members))
}

// Has reports whether cell c is in the group.
func (t *Tracker) Has(c int) bool { return t.in.Has(c) }

// Members returns the cells in insertion order (do not modify).
func (t *Tracker) Members() []netlist.CellID { return t.members }

// NetPinsIn returns |e ∩ S| for net n.
func (t *Tracker) NetPinsIn(n netlist.NetID) int { return int(t.pinsIn[n]) }

// TouchedNets returns every net with at least one member pin, each
// exactly once, in first-touch order. The slice aliases the tracker's
// scratch: do not modify it, and treat it as invalid after Reset.
// Boundary walks use it to visit each incident net once instead of
// once per member.
func (t *Tracker) TouchedNets() []netlist.NetID { return t.touched }

// Add inserts cell c into the group, updating cut and pin counts in
// O(deg(c)). It panics if c is already a member (a finder logic error).
func (t *Tracker) Add(c netlist.CellID) {
	if !t.in.Add(int(c)) {
		panic(fmt.Sprintf("group: cell %d added twice", c))
	}
	nets := t.nl.CellPins(c)
	t.pins += len(nets)
	t.members = append(t.members, c)
	for _, n := range nets {
		sz := t.nl.NetSize(n)
		p := t.pinsIn[n]
		if p == 0 {
			t.touched = append(t.touched, n)
			if sz > 1 {
				t.cut++ // net becomes externally connected
			}
		}
		p++
		t.pinsIn[n] = p
		if int(p) == sz && sz > 1 {
			t.cut-- // net became fully internal
		}
	}
}

// DeltaCut returns the change in T(S) if cell c (currently outside)
// were added. It does not modify the group.
func (t *Tracker) DeltaCut(c netlist.CellID) int {
	d := 0
	for _, n := range t.nl.CellPins(c) {
		sz := t.nl.NetSize(n)
		if sz <= 1 {
			continue
		}
		switch int(t.pinsIn[n]) {
		case 0:
			d++
		case sz - 1:
			d--
		}
	}
	return d
}

// Snapshot captures the current group as an immutable value.
func (t *Tracker) Snapshot() Set {
	m := make([]netlist.CellID, len(t.members))
	copy(m, t.members)
	return Set{Members: m, Cut: t.cut, Pins: t.pins}
}
