package ds

import (
	"testing"
	"unsafe"
)

// TestGainHeapRankOrdering pins the rank-table tie-break the relabel
// shadow engine relies on: with SetRank installed, equal (gain, tie)
// entries pop in rank order, not key order, so a permuted-id heap
// reproduces the original-id pop sequence exactly.
func TestGainHeapRankOrdering(t *testing.T) {
	var h GainHeap
	// rank[key]: key 7 has rank 0, key 2 rank 1, key 5 rank 2.
	rank := make([]int32, 10)
	for i := range rank {
		rank[i] = 9
	}
	rank[7], rank[2], rank[5] = 0, 1, 2
	h.SetRank(rank)
	h.Push(5, 1.0, 3)
	h.Push(2, 1.0, 3)
	h.Push(7, 1.0, 3)
	for _, want := range []int32{7, 2, 5} {
		k, _, _, ok := h.Pop()
		if !ok || k != want {
			t.Fatalf("pop = %d (ok=%v), want %d", k, ok, want)
		}
	}

	// Without a rank table the same pushes fall back to key order.
	h.SetRank(nil)
	h.Push(5, 1.0, 3)
	h.Push(2, 1.0, 3)
	h.Push(7, 1.0, 3)
	for _, want := range []int32{2, 5, 7} {
		k, _, _, ok := h.Pop()
		if !ok || k != want {
			t.Fatalf("rankless pop = %d (ok=%v), want %d", k, ok, want)
		}
	}
}

// TestGainHeapPushHinted pins the cross-push coalescing contract: a
// valid hint overwrites the buffered entry in place (no duplicate, pop
// sequence as if only the final revision was ever pushed), a stale or
// mismatched hint degrades to a plain append, and the tracked buffer
// best survives in-place improvement of a non-best slot.
func TestGainHeapPushHinted(t *testing.T) {
	var h GainHeap
	s5 := h.PushHinted(5, 1.0, 0, ^uint32(0)) // garbage hint: appended
	s9 := h.PushHinted(9, 3.0, 0, ^uint32(0))
	if s5 == s9 {
		t.Fatalf("distinct keys share slot %d", s5)
	}
	// Coalesce key 5 upward past the current best (key 9 at 3.0).
	if got := h.PushHinted(5, 4.0, 0, s5); got != s5 {
		t.Fatalf("valid hint moved slot %d -> %d", s5, got)
	}
	if h.Len() != 2 {
		t.Fatalf("coalesced push grew the queue to %d entries", h.Len())
	}
	// A hint pointing at another key's slot must append, not clobber.
	s7 := h.PushHinted(7, 2.0, 0, s9)
	if s7 == s9 || h.Len() != 3 {
		t.Fatalf("mismatched hint: slot %d (from %d), len %d", s7, s9, h.Len())
	}
	for _, want := range []int32{5, 9, 7} {
		k, _, _, ok := h.Pop()
		if !ok || k != want {
			t.Fatalf("pop = %d (ok=%v), want %d", k, ok, want)
		}
	}

	// Across a spill the remembered slot goes stale; the key check must
	// reject it and append rather than corrupt an unrelated entry.
	h.Reset()
	slot := h.PushHinted(1, 1.0, 0, ^uint32(0))
	for i := int32(2); i < 2+heapBufCap; i++ { // forces at least one spill
		h.PushHinted(i, 0.5, 0, ^uint32(0))
	}
	h.PushHinted(1, 6.0, 0, slot)
	if k, g, _, ok := h.Pop(); !ok || k != 1 || g != 6.0 {
		t.Fatalf("post-spill pop = key %d gain %g (ok=%v), want key 1 gain 6", k, g, ok)
	}
	// The pre-spill revision of key 1 is still queued and stale — exactly
	// what the absorb loop's pop path discards by gain mismatch.
	seen := 0
	for {
		k, g, _, ok := h.Pop()
		if !ok {
			break
		}
		if k == 1 {
			if g != 1.0 {
				t.Fatalf("stale revision of key 1 has gain %g, want 1", g)
			}
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("found %d stale revisions of key 1, want 1", seen)
	}
}

// TestGainHeapMemoryFootprint guards against the footprint drifting
// from the real entry size again (it was once hardcoded to a stale
// constant).
func TestGainHeapMemoryFootprint(t *testing.T) {
	var h GainHeap
	if h.MemoryFootprint() != 0 {
		t.Fatalf("empty heap reports %d bytes", h.MemoryFootprint())
	}
	for i := int32(0); i < 100; i++ {
		h.Push(i, float64(i), 0)
	}
	want := int64(cap(h.entries)+cap(h.buf)) * int64(unsafe.Sizeof(gainEntry{}))
	if got := h.MemoryFootprint(); got != want {
		t.Fatalf("footprint %d, want (cap(%d)+cap(%d))*%d = %d",
			got, cap(h.entries), cap(h.buf), unsafe.Sizeof(gainEntry{}), want)
	}
	if h.MemoryFootprint() < 100*16 {
		t.Fatalf("footprint %d smaller than 100 16-byte entries", h.MemoryFootprint())
	}
}
