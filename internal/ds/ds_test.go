package ds

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(200)
	if b.Len() != 0 || b.Has(5) {
		t.Fatal("new bitset not empty")
	}
	if !b.Add(5) || b.Add(5) {
		t.Fatal("Add return values wrong")
	}
	if !b.Has(5) || b.Len() != 1 {
		t.Fatal("Add failed")
	}
	if !b.Remove(5) || b.Remove(5) {
		t.Fatal("Remove return values wrong")
	}
	if b.Has(5) || b.Len() != 0 {
		t.Fatal("Remove failed")
	}
	b.Add(0)
	b.Add(63)
	b.Add(64)
	b.Add(199)
	if got := b.Slice(); len(got) != 4 || got[0] != 0 || got[3] != 199 {
		t.Fatalf("Slice = %v", got)
	}
	b.Clear()
	if b.Len() != 0 || b.Has(63) {
		t.Fatal("Clear failed")
	}
}

func TestBitsetHasOutOfRange(t *testing.T) {
	b := NewBitset(64)
	if b.Has(1000) {
		t.Error("Has past capacity should be false")
	}
}

func TestBitsetGrow(t *testing.T) {
	b := NewBitset(10)
	b.Add(3)
	b.Grow(1000)
	if !b.Has(3) {
		t.Error("Grow lost contents")
	}
	b.Add(999)
	if !b.Has(999) {
		t.Error("Grow did not extend capacity")
	}
}

// TestBitsetMatchesMap is a property test: a bitset driven by a random
// operation sequence behaves exactly like a map[int]bool.
func TestBitsetMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBitset(1024)
		ref := map[int]bool{}
		for _, op := range ops {
			v := int(op % 1024)
			switch (op / 1024) % 3 {
			case 0:
				b.Add(v)
				ref[v] = true
			case 1:
				b.Remove(v)
				delete(ref, v)
			case 2:
				if b.Has(v) != ref[v] {
					return false
				}
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		got := b.Slice()
		want := make([]int, 0, len(ref))
		for v := range ref {
			want = append(want, v)
		}
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitsetIntersection(t *testing.T) {
	a, b := NewBitset(256), NewBitset(256)
	for i := 0; i < 256; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 256; i += 3 {
		b.Add(i)
	}
	if !a.IntersectsWith(b) {
		t.Error("multiples of 6 exist; should intersect")
	}
	want := 0
	for i := 0; i < 256; i += 6 {
		want++
	}
	if got := a.IntersectionLen(b); got != want {
		t.Errorf("IntersectionLen = %d, want %d", got, want)
	}
	c := NewBitset(256)
	c.Add(1)
	c.Add(3)
	if a.IntersectsWith(c) {
		t.Error("even vs odd should not intersect")
	}
}

// TestGainHeapOrdering checks the (gain desc, tie asc, key asc) order.
func TestGainHeapOrdering(t *testing.T) {
	var h GainHeap
	h.Push(1, 1.0, 5)
	h.Push(2, 2.0, 9)
	h.Push(3, 2.0, 3)
	h.Push(4, 2.0, 3)
	wantKeys := []int32{3, 4, 2, 1} // gain 2 first; tie 3 before 9; key asc
	for _, want := range wantKeys {
		k, _, _, ok := h.Pop()
		if !ok || k != want {
			t.Fatalf("pop = %d (ok=%v), want %d", k, ok, want)
		}
	}
	if _, _, _, ok := h.Pop(); ok {
		t.Fatal("heap should be empty")
	}
}

// TestGainHeapMatchesSort is a property test against a reference sort.
func TestGainHeapMatchesSort(t *testing.T) {
	f := func(gains []float64) bool {
		var h GainHeap
		type entry struct {
			gain float64
			key  int32
		}
		var ref []entry
		for i, g := range gains {
			h.Push(int32(i), g, 0)
			ref = append(ref, entry{g, int32(i)})
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].gain != ref[b].gain {
				return ref[a].gain > ref[b].gain
			}
			return ref[a].key < ref[b].key
		})
		for _, want := range ref {
			k, g, _, ok := h.Pop()
			if !ok || k != want.key || g != want.gain {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Values: func(vs []reflect.Value, r *rand.Rand) {
		n := r.Intn(50)
		g := make([]float64, n)
		for i := range g {
			g[i] = float64(r.Intn(10)) // duplicates likely
		}
		vs[0] = reflect.ValueOf(g)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDSU(t *testing.T) {
	d := NewDSU(10)
	if d.Find(3) != 3 {
		t.Fatal("initial parent wrong")
	}
	if !d.Union(1, 2) || d.Union(1, 2) {
		t.Fatal("Union return values wrong")
	}
	d.Union(2, 3)
	if d.Find(1) != d.Find(3) {
		t.Error("1 and 3 should be joined")
	}
	if d.Find(1) == d.Find(4) {
		t.Error("1 and 4 should be separate")
	}
	if d.SetSize(3) != 3 {
		t.Errorf("SetSize = %d, want 3", d.SetSize(3))
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}
