package ds

// DSU is a disjoint-set forest with union by size and path halving.
type DSU struct {
	parent []int32
	size   []int32
}

// NewDSU returns a forest of n singleton sets {0}..{n-1}.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), size: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets holding a and b; it reports whether a merge
// happened (false when already joined).
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return true
}

// SetSize returns the size of the set containing x.
func (d *DSU) SetSize(x int32) int32 { return d.size[d.Find(x)] }
