package ds

import "unsafe"

// GainHeap is a lazy max-priority queue over int32 keys ordered by
// (gain descending, tie ascending, key ascending).
//
// It is "lazy": a revision pushes a fresh entry instead of sifting the
// old one, and Pop relies on the caller to discard entries whose
// (gain, tie) no longer match its current values. This is the classic
// pattern for agglomerative growth where a cell's connection weight is
// revised many times before it is ever popped — and it is deliberately
// kept over an indexed decrease-key heap: revisions almost always
// carry small gains that park near the leaves, while stale duplicates
// (strictly below their key's freshest entry, since gains only grow)
// sink to the bottom and are almost never popped. An indexed variant
// was measured slower on the background-dominated workloads that
// matter: position upkeep on every sift plus mid-heap re-sifts cost
// more than the duplicates ever do.
//
// Internally the queue is two-level. Pushes append to a small
// unordered buffer whose best entry is tracked with one comparison per
// push; only when the buffer fills do its entries spill into the main
// heap. Pop serves from whichever side holds the overall best entry.
// The shape fits the absorb loop exactly: each absorbed cell bumps a
// burst of neighbor gains, and the next winner is very often one of
// those fresh bumps — served straight from the L1-resident buffer, no
// sift-down over a multi-megabyte heap array. Entries absorbed from
// the buffer before it spills never touch the main heap at all.
//
// The main heap is 4-ary: each sift-down touches one parent and up to
// four children in adjacent array slots, halving the tree depth of the
// binary layout. The comparison order is a total order over entries,
// so the sequence of Pop results is a function of the pushed multiset
// alone — buffering, spill timing and layout never change what Pop
// returns.
type GainHeap struct {
	entries []gainEntry
	buf     []gainEntry
	best    int // index of the buffer's best entry, -1 when empty
	// rank, when non-nil, replaces the final key-ascending tiebreak
	// with rank[key]-ascending (see SetRank).
	rank []int32
}

type gainEntry struct {
	gain float64
	tie  int32 // secondary criterion, smaller wins (e.g. cut delta)
	key  int32
}

// heapArity is the fan-out of the main heap's implicit tree.
const heapArity = 4

// heapBufCap bounds the insertion buffer: 1KB of entries, small enough
// that the rescan after a buffer pop stays in L1, large enough to
// absorb a typical burst of gain bumps between pops.
const heapBufCap = 64

// Len returns the number of queued entries, including stale ones.
func (h *GainHeap) Len() int { return len(h.entries) + len(h.buf) }

// MemoryFootprint returns the queue's retained bytes (entry and buffer
// capacity, whether or not in use) for engine memory accounting.
func (h *GainHeap) MemoryFootprint() int64 {
	return int64(cap(h.entries)+cap(h.buf)) * int64(unsafe.Sizeof(gainEntry{}))
}

// Reset empties the queue, retaining capacity.
func (h *GainHeap) Reset() {
	h.entries = h.entries[:0]
	h.buf = h.buf[:0]
	h.best = -1
}

// SetRank replaces the final key-ascending tiebreak with an ascending
// comparison of rank[key]. rank must be a permutation of the key space
// (so the order stays total) and must outlive the heap's use; nil
// restores the plain key order. The relabeled detection engine uses
// this to break ties in original-id order while running in permuted id
// space, keeping its pop sequence physically identical to the
// unpermuted engine's. Call only while the queue is empty.
func (h *GainHeap) SetRank(rank []int32) { h.rank = rank }

// Push queues key with the given gain and tiebreak value.
func (h *GainHeap) Push(key int32, gain float64, tie int32) {
	if len(h.buf) == heapBufCap {
		h.spill()
	}
	e := gainEntry{gain, tie, key}
	h.buf = append(h.buf, e)
	if h.best < 0 || h.before(e, h.buf[h.best]) {
		h.best = len(h.buf) - 1
	}
}

// PushHinted queues like Push, but first checks whether buffer slot
// hint still holds an entry for the same key — the slot a previous
// PushHinted for that key returned — and if so overwrites it in place
// instead of appending. It returns the slot the entry now occupies,
// for the caller to remember as the next hint.
//
// Callers may only coalesce entries whose priority never worsens
// between pushes (the absorb loop qualifies: a cell's gain only grows
// within a growth), so an in-place overwrite can only improve the
// slot's entry and the tracked best stays valid. The overwritten entry
// is one the caller's pop loop would have discarded as stale with no
// side effects, so coalescing never changes the pop sequence — it just
// keeps superseded revisions from ever reaching the main heap.
//
// Hints are best-effort: a stale hint (the slot was popped, spilled or
// reused since) simply fails the key check and the entry is appended.
// Callers need not invalidate hints, only route them back in.
func (h *GainHeap) PushHinted(key int32, gain float64, tie int32, hint uint32) uint32 {
	if int(hint) < len(h.buf) {
		if e := &h.buf[hint]; e.key == key {
			e.gain, e.tie = gain, tie
			if h.best != int(hint) && h.before(*e, h.buf[h.best]) {
				h.best = int(hint)
			}
			return hint
		}
	}
	if len(h.buf) == heapBufCap {
		h.spill()
	}
	h.buf = append(h.buf, gainEntry{gain, tie, key})
	slot := len(h.buf) - 1
	if h.best < 0 || h.before(h.buf[slot], h.buf[h.best]) {
		h.best = slot
	}
	return uint32(slot)
}

// spill moves every buffered entry into the main heap.
func (h *GainHeap) spill() {
	for _, e := range h.buf {
		h.entries = append(h.entries, e)
		h.up(len(h.entries) - 1)
	}
	h.buf = h.buf[:0]
	h.best = -1
}

// Pop removes and returns the best entry. ok is false when empty.
func (h *GainHeap) Pop() (key int32, gain float64, tie int32, ok bool) {
	if h.best >= 0 {
		if len(h.entries) == 0 || h.before(h.buf[h.best], h.entries[0]) {
			e := h.buf[h.best]
			last := len(h.buf) - 1
			h.buf[h.best] = h.buf[last]
			h.buf = h.buf[:last]
			h.rescan()
			return e.key, e.gain, e.tie, true
		}
	}
	if len(h.entries) == 0 {
		return 0, 0, 0, false
	}
	e := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.down(0)
	}
	return e.key, e.gain, e.tie, true
}

// rescan recomputes the buffer's best index after a buffer pop.
func (h *GainHeap) rescan() {
	h.best = -1
	for i := range h.buf {
		if h.best < 0 || h.before(h.buf[i], h.buf[h.best]) {
			h.best = i
		}
	}
}

// TopGain reports the best queued entry's gain without removing it.
// The absorb loop's pop path uses it to skip cut-delta re-verification
// when the popped entry's gain is strictly ahead of every rival: the
// tiebreak cannot influence an uncontested maximum.
func (h *GainHeap) TopGain() (float64, bool) {
	switch {
	case h.best < 0 && len(h.entries) == 0:
		return 0, false
	case h.best < 0:
		return h.entries[0].gain, true
	case len(h.entries) == 0 || h.buf[h.best].gain >= h.entries[0].gain:
		return h.buf[h.best].gain, true
	default:
		return h.entries[0].gain, true
	}
}

// StillBest reports whether an entry (gain, tie, key) would pop before
// everything currently queued. The absorb loop uses it after lazily
// re-verifying a popped entry's tiebreak: when the corrected entry
// still beats the queue, requeueing it would only be followed by an
// immediate pop of the very same entry — the answer is already known.
func (h *GainHeap) StillBest(key int32, gain float64, tie int32) bool {
	cand := gainEntry{gain, tie, key}
	if h.best >= 0 && h.before(h.buf[h.best], cand) {
		return false
	}
	if len(h.entries) > 0 && h.before(h.entries[0], cand) {
		return false
	}
	return true
}

// before is the queue's total order over entries.
func (h *GainHeap) before(a, b gainEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	if h.rank != nil {
		return h.rank[a.key] < h.rank[b.key]
	}
	return a.key < b.key
}

func (h *GainHeap) less(i, j int) bool { return h.before(h.entries[i], h.entries[j]) }

func (h *GainHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / heapArity
		if !h.less(i, p) {
			break
		}
		h.entries[i], h.entries[p] = h.entries[p], h.entries[i]
		i = p
	}
}

func (h *GainHeap) down(i int) {
	n := len(h.entries)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		best := i
		for c := first; c < end; c++ {
			if h.less(c, best) {
				best = c
			}
		}
		if best == i {
			return
		}
		h.entries[i], h.entries[best] = h.entries[best], h.entries[i]
		i = best
	}
}
