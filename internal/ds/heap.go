package ds

// GainHeap is a lazy max-heap over int32 keys ordered by
// (gain descending, tie ascending, key ascending).
//
// It is "lazy": Update pushes a fresh entry instead of sifting the old
// one, and Pop discards entries whose (gain, tie) no longer match the
// caller-supplied current values. This is the classic pattern for
// agglomerative growth where a cell's connection weight is revised many
// times before it is ever popped.
type GainHeap struct {
	entries []gainEntry
}

type gainEntry struct {
	gain float64
	tie  int32 // secondary criterion, smaller wins (e.g. cut delta)
	key  int32
}

// Len returns the number of queued entries, including stale ones.
func (h *GainHeap) Len() int { return len(h.entries) }

// MemoryFootprint returns the heap's retained bytes (entry capacity,
// whether or not in use) for engine memory accounting.
func (h *GainHeap) MemoryFootprint() int64 { return int64(cap(h.entries)) * 16 }

// Reset empties the heap, retaining capacity.
func (h *GainHeap) Reset() { h.entries = h.entries[:0] }

// Push queues key with the given gain and tiebreak value.
func (h *GainHeap) Push(key int32, gain float64, tie int32) {
	h.entries = append(h.entries, gainEntry{gain, tie, key})
	h.up(len(h.entries) - 1)
}

// Pop removes and returns the best entry. ok is false when empty.
func (h *GainHeap) Pop() (key int32, gain float64, tie int32, ok bool) {
	if len(h.entries) == 0 {
		return 0, 0, 0, false
	}
	e := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.down(0)
	}
	return e.key, e.gain, e.tie, true
}

func (h *GainHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.key < b.key
}

func (h *GainHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.entries[i], h.entries[p] = h.entries[p], h.entries[i]
		i = p
	}
}

func (h *GainHeap) down(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.entries[i], h.entries[best] = h.entries[best], h.entries[i]
		i = best
	}
}
