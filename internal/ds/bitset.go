// Package ds provides the small data structures shared by the rest of
// tanglefind: a fixed-capacity bitset, an indexed lazy priority queue,
// a disjoint-set forest and a deterministic splitmix64 RNG.
//
// Everything here is allocation-conscious: the tangled-logic finder runs
// many thousands of group-grow steps over netlists with up to ~10^6
// cells, so the hot structures use flat slices indexed by int32 cell ids.
package ds

import "math/bits"

// Bitset is a fixed-capacity set of non-negative integers.
// The zero value is an empty set of capacity 0; use NewBitset or Grow.
type Bitset struct {
	words []uint64
	n     int // number of set bits, maintained incrementally
}

// NewBitset returns an empty bitset able to hold values in [0, capacity).
func NewBitset(capacity int) *Bitset {
	return &Bitset{words: make([]uint64, (capacity+63)/64)}
}

// Grow extends the bitset capacity to at least capacity values.
func (b *Bitset) Grow(capacity int) {
	need := (capacity + 63) / 64
	if need > len(b.words) {
		w := make([]uint64, need)
		copy(w, b.words)
		b.words = w
	}
}

// Capacity reports the number of values the bitset can hold.
func (b *Bitset) Capacity() int { return len(b.words) * 64 }

// Add inserts v. It reports whether v was newly added.
func (b *Bitset) Add(v int) bool {
	w, m := v>>6, uint64(1)<<(uint(v)&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.n++
	return true
}

// Remove deletes v. It reports whether v was present.
func (b *Bitset) Remove(v int) bool {
	w, m := v>>6, uint64(1)<<(uint(v)&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.n--
	return true
}

// Has reports whether v is in the set.
func (b *Bitset) Has(v int) bool {
	w := v >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(uint64(1)<<(uint(v)&63)) != 0
}

// Len returns the number of elements in the set.
func (b *Bitset) Len() int { return b.n }

// Clear empties the set, retaining capacity.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = 0
}

// Clone returns a deep copy of the set.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// ForEach calls f for every element in ascending order.
func (b *Bitset) ForEach(f func(v int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			f(wi*64 + tz)
			w &= w - 1
		}
	}
}

// Slice returns the elements in ascending order.
func (b *Bitset) Slice() []int {
	out := make([]int, 0, b.n)
	b.ForEach(func(v int) { out = append(out, v) })
	return out
}

// IntersectsWith reports whether b and o share any element.
func (b *Bitset) IntersectsWith(o *Bitset) bool {
	n := min(len(b.words), len(o.words))
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionLen returns |b ∩ o|.
func (b *Bitset) IntersectionLen(o *Bitset) int {
	n := min(len(b.words), len(o.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}
