package ds

// RNG is a splitmix64 pseudo-random generator. It is deterministic
// across platforms and Go releases, which matters for reproducible
// experiment tables; math/rand's stream is not guaranteed stable.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("ds: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("ds: Int31n with non-positive n")
	}
	return int32(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns an independent generator derived from this one.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
