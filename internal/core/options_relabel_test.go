package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// Relabel is a result-affecting option (member order inside groups can
// differ from the unpermuted engine), so it must round-trip through
// the JSON surface and participate in IncrementalKey — recorded state
// from a relabeled run must not be replayed into an unpermuted run's
// cache slot or vice versa.
func TestOptionsRelabelSurface(t *testing.T) {
	opt, err := ParseOptions([]byte(`{"relabel": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Relabel {
		t.Fatal("relabel did not parse")
	}

	data, err := json.Marshal(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"relabel":true`) {
		t.Fatalf("marshal dropped relabel: %s", data)
	}

	// omitempty: pre-existing payloads and keys are byte-stable.
	def := DefaultOptions()
	data, err = json.Marshal(def)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "relabel") {
		t.Fatalf("default marshal mentions relabel: %s", data)
	}

	on := def
	on.Relabel = true
	if def.IncrementalKey() == on.IncrementalKey() {
		t.Fatal("IncrementalKey ignores Relabel")
	}
	// Scheduling-only fields still collapse onto one key.
	w := on
	w.Workers = 8
	if w.IncrementalKey() != on.IncrementalKey() {
		t.Fatal("IncrementalKey depends on Workers")
	}
}
