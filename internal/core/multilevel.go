package core

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"tanglefind/internal/group"
	"tanglefind/internal/metrics"
	"tanglefind/internal/netlist"
	"tanglefind/internal/telemetry"
)

// This file is the multilevel detection pipeline: coarsen → detect →
// project + refine. A flat run's cost is seeds × ordering length ×
// pin degree, all at full netlist resolution; the multilevel run
// instead coarsens the netlist by repeated heavy-edge matching
// (internal/netlist.BuildHierarchy), runs the complete three-phase
// seed-and-grow detection on the coarsest level — where orderings are
// 2^(Levels-1) times shorter — and then carries each winning group
// back down, expanding its members one level at a time and running a
// bounded boundary-refinement sweep at every finer level to recover
// the cells the coarse boundary quantized away. Final scoring, and
// the global disjointness pruning, happen at the original resolution.

// mlKey identifies one hierarchy configuration of a Finder.
type mlKey struct {
	levels    int
	minCoarse int
}

// maxHierarchies bounds how many hierarchy configurations one engine
// caches. (Levels, MinCoarseCells) is client-controlled in serving
// deployments, and each cached hierarchy is O(cells+pins) — without a
// bound a client cycling min_coarse_cells values could grow engine
// memory without limit. Past the bound the oldest configuration is
// evicted; an evicted configuration simply rebuilds on next use.
const maxHierarchies = 4

// mlState caches a built hierarchy plus one sub-engine per coarse
// level, so repeated multilevel runs over one netlist pay the
// coarsening cost once and reuse pooled per-worker state at every
// level, exactly like flat runs reuse the finest-level pool.
type mlState struct {
	hier    *netlist.Hierarchy
	finders []*Finder // finders[0] is the owning engine itself
}

// mlEntry is one cache slot: the build runs under the entry's Once —
// outside the cache mutex — so a multi-second coarsening of a large
// netlist never blocks readers like MemoryEstimate or TrimPool, while
// concurrent runs with the same configuration still build only once.
type mlEntry struct {
	once sync.Once
	s    *mlState
	err  error
}

// LevelStats describes one level's share of a multilevel run, for
// results, the serving stats endpoint and the experiment tables.
type LevelStats struct {
	Level       int     `json:"level"` // 0 = original/finest
	Cells       int     `json:"cells"`
	Nets        int     `json:"nets"`
	SeedsRun    int     `json:"seeds_run,omitempty"`    // detection level only
	Candidates  int     `json:"candidates,omitempty"`   // detection level only
	RefineAdded int     `json:"refine_added,omitempty"` // cells absorbed by boundary refinement
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// multilevelState returns (building and caching on first use) the
// hierarchy and sub-engines for the run's coarsening configuration.
func (f *Finder) multilevelState(opt *Options) (*mlState, error) {
	minCoarse := opt.MinCoarseCells
	if minCoarse == 0 {
		// BuildHierarchy treats 0 as the default floor; normalize the
		// cache key so "omitted" and "explicit default" share one
		// hierarchy instead of building and caching it twice.
		minCoarse = netlist.DefaultMinCoarseCells
	}
	key := mlKey{levels: opt.Levels, minCoarse: minCoarse}
	f.mlMu.Lock()
	if f.ml == nil {
		f.ml = make(map[mlKey]*mlEntry)
	}
	e, ok := f.ml[key]
	if !ok {
		e = &mlEntry{}
		f.ml[key] = e
		f.mlOrder = append(f.mlOrder, key)
		for len(f.mlOrder) > maxHierarchies {
			delete(f.ml, f.mlOrder[0])
			f.mlOrder = f.mlOrder[1:]
		}
	}
	f.mlMu.Unlock()
	e.once.Do(func() {
		s, err := f.buildMLState(opt)
		// Publish under the cache mutex so concurrent snapshot readers
		// (MemoryEstimate, TrimPool) see a consistent entry; waiters on
		// the Once itself are ordered by its happens-before edge.
		f.mlMu.Lock()
		e.s, e.err = s, err
		f.mlMu.Unlock()
	})
	return e.s, e.err
}

// buildMLState coarsens the netlist and constructs the per-level
// sub-engines for one configuration.
func (f *Finder) buildMLState(opt *Options) (*mlState, error) {
	h, err := netlist.BuildHierarchy(f.nl, netlist.CoarsenOptions{
		Levels:   opt.Levels,
		MinCells: opt.MinCoarseCells,
	})
	if err != nil {
		return nil, err
	}
	s := &mlState{hier: h, finders: make([]*Finder, h.NumLevels())}
	s.finders[0] = f
	f.poolMu.Lock()
	cap := f.poolCap
	f.poolMu.Unlock()
	for l := 1; l < h.NumLevels(); l++ {
		sub, err := NewFinder(h.Level(l))
		if err != nil {
			return nil, fmt.Errorf("core: level %d engine: %w", l, err)
		}
		// Sub-engines inherit the owner's current pool bound, so a
		// SetPoolCap issued before the hierarchy existed still holds.
		sub.SetPoolCap(cap)
		s.finders[l] = sub
	}
	return s, nil
}

// coarseOptions derives the detection options for the coarsest level:
// size-dependent knobs shrink by the aggregation ratio (a coarse cell
// stands for ~ratio fine cells), everything else carries over, and
// the ordering cap never swallows the coarse netlist whole — Phase II
// needs exterior curve to contrast a minimum against.
func coarseOptions(opt *Options, fineCells, coarseCells, level int) Options {
	c := *opt
	c.Levels = 1
	ratio := float64(fineCells) / float64(coarseCells)
	c.MaxOrderLen = int(float64(opt.MaxOrderLen) / ratio)
	if c.MaxOrderLen > coarseCells/2 {
		c.MaxOrderLen = coarseCells / 2
	}
	if c.MaxOrderLen < 2 {
		c.MaxOrderLen = 2
	}
	if opt.MinGroupSize > 0 {
		c.MinGroupSize = int(float64(opt.MinGroupSize) / ratio)
		if c.MinGroupSize < 2 {
			c.MinGroupSize = 2
		}
	}
	c.BigNetSkip = scaledSkip(opt.BigNetSkip, ratio)
	c.Progress = nil
	if opt.Progress != nil {
		outer := opt.Progress
		c.Progress = func(p Progress) {
			p.Level = level
			outer(p)
		}
	}
	return c
}

// scaledSkip rescales the paper's K-factor net-skip threshold for a
// coarser level: λ outside pins there stand for ~λ·ratio fine pins,
// so the "this net's contribution is negligible" cutoff shrinks with
// the same ratio. Aggregation inflates coarse cell degrees, and
// without this the skipped-net walks dominate coarse-level work.
func scaledSkip(skip int, ratio float64) int {
	if skip <= 0 {
		return skip
	}
	s := int(float64(skip) / ratio)
	if s < 4 {
		s = 4
	}
	return s
}

// mlCand is one coarse-level winner being carried down the hierarchy.
type mlCand struct {
	members []netlist.CellID // at the level currently being processed
	rent    float64          // Rent exponent from the coarse ordering
	seed    netlist.CellID   // original coarse seed (mapped down at the end)
}

// findMultilevel runs the coarsen → detect → project + refine
// pipeline. On cancellation it returns the partial result assembled
// from whatever completed, mirroring findFlat's contract.
func (f *Finder) findMultilevel(ctx context.Context, opt *Options) (*Result, error) {
	start := time.Now()
	ms, err := f.multilevelState(opt)
	if err != nil {
		return nil, err
	}
	L := ms.hier.NumLevels()
	if L == 1 {
		// Coarsening had nothing to do (netlist already at or below the
		// floor): the flat pipeline is the multilevel pipeline.
		return f.findFlat(ctx, opt)
	}

	// Detect on the coarsest level with the full three-phase pipeline,
	// including its own refinement and disjointness pruning — the
	// survivors are the only groups worth projecting down. Under
	// RecordIncremental the coarse run also records its per-seed
	// state; projectDown/wrapping attaches it so multilevel runs can
	// be resumed incrementally (see findIncrementalMultilevel).
	top := ms.finders[L-1]
	copt := coarseOptions(opt, f.nl.NumCells(), top.nl.NumCells(), L-1)
	detectStart := time.Now()
	cres, runErr := top.findFlat(ctx, &copt)
	if cres == nil {
		return nil, runErr
	}

	res, runErr := f.projectDown(ctx, opt, ms, cres,
		float64(time.Since(detectStart))/float64(time.Millisecond), runErr)
	res.Elapsed = time.Since(start)
	if runErr == nil && opt.RecordIncremental && cres.IncrState != nil {
		res.IncrState = wrapMLIncrState(opt, f.nl.NumCells(), top.nl, cres.IncrState)
	}
	return res, runErr
}

// projectDown carries pruned coarse-level winners down the hierarchy —
// expand one level at a time, boundary-refine each candidate (fanned
// out across the worker pool; candidates are independent, so the
// parallel sweep is deterministic), then rescore and globally prune at
// the original resolution. cres is the coarsest level's result and
// detectMS the wall time its detection took, for the level stats. The
// descent is shared by Find's multilevel path, multilevel Merge and
// multilevel FindIncremental; Elapsed is left for the caller.
func (f *Finder) projectDown(ctx context.Context, opt *Options, ms *mlState, cres *Result, detectMS float64, runErr error) (*Result, error) {
	projStart := time.Now()
	L := ms.hier.NumLevels()
	top := ms.finders[L-1]
	levels := make([]LevelStats, 0, L)
	levels = append(levels, LevelStats{
		Level:      L - 1,
		Cells:      top.nl.NumCells(),
		Nets:       top.nl.NumNets(),
		SeedsRun:   len(cres.Seeds),
		Candidates: cres.Candidates,
		ElapsedMS:  detectMS,
	})
	var sched SchedStats
	if cres.Sched != nil {
		sched.merge(*cres.Sched)
	}

	cands := make([]mlCand, 0, len(cres.GTLs))
	for i := range cres.GTLs {
		g := &cres.GTLs[i]
		cands = append(cands, mlCand{members: g.Members, rent: g.Rent, seed: g.Seed})
	}

	// Project down level by level, boundary-refining after each
	// expansion so the group tracks the finer netlist's true contour
	// instead of the coarse quantization of it. Expansion is cheap and
	// always runs (projection must finish even when cancelled mid-way);
	// the refinement sweeps shard by group across the pool.
	for l := L - 1; l >= 1; l-- {
		lower := ms.finders[l-1]
		lvlStart := time.Now()
		for i := range cands {
			cands[i].members = ms.hier.ExpandDown(l, cands[i].members)
		}
		var added atomic.Int64
		if opt.RefineRadius > 0 && len(cands) > 0 && ctx.Err() == nil {
			skip := scaledSkip(opt.BigNetSkip, float64(f.nl.NumCells())/float64(lower.nl.NumCells()))
			ropt := *opt
			ropt.Progress = nil // refinement has no seed schedule to report
			_, rs, _ := lower.runSeedPool(ctx, &ropt, len(cands), func(ws *workerState, i int) bool {
				set, n := ws.gr.refineBoundary(cands[i].members, opt.RefineRadius, skip, opt.Metric, cands[i].rent, lower.aG)
				cands[i].members = set.Members
				added.Add(int64(n))
				return false
			})
			sched.merge(rs)
		}
		levels = append(levels, LevelStats{
			Level:       l - 1,
			Cells:       lower.nl.NumCells(),
			Nets:        lower.nl.NumNets(),
			RefineAdded: int(added.Load()),
			ElapsedMS:   float64(time.Since(lvlStart)) / float64(time.Millisecond),
		})
	}

	// Score every candidate at the original resolution and run the
	// global Phase III pruning there, so the result's disjointness and
	// ranking semantics match a flat run's exactly.
	res := &Result{AG: f.aG, Rent: cres.Rent, Candidates: cres.Candidates, Stages: telemetry.StageTimings{}}
	res.Seeds = append(res.Seeds, cres.Seeds...)
	for i := range res.Seeds {
		res.Seeds[i].Seed = ms.hier.RepresentativeAtFinest(L-1, res.Seeds[i].Seed)
	}
	ws := f.acquire(opt)
	cs := make([]cand, 0, len(cands))
	for i := range cands {
		set := ws.ev.Eval(cands[i].members)
		if set.Size() < opt.MinGroupSize {
			// The coarse pass runs with a ratio-scaled minimum; a group
			// that projects back below the caller's MinGroupSize is one
			// a flat run could never return — drop it here so the
			// result honors the original contract.
			continue
		}
		cs = append(cs, cand{
			set:   &set,
			score: scoreVals(set.Cut, set.Size(), set.Pins, cands[i].rent, f.aG, opt.Metric),
			rent:  cands[i].rent,
			seed:  ms.hier.RepresentativeAtFinest(L-1, cands[i].seed),
		})
	}
	f.release(ws)
	pruneStart := time.Now()
	f.prune(opt, cs, res)
	res.Stages.Add(StagePrune, time.Since(pruneStart))
	// The coarse run's own per-seed phases fold in flat; coarse_detect
	// and project are per-run wall times (the former overlaps the
	// coarse phases, the latter overlaps the final prune).
	res.Stages.Merge(cres.Stages)
	res.Stages.Add(StageCoarseDetect, time.Duration(detectMS*float64(time.Millisecond)))
	res.Stages.Add(StageProject, time.Since(projStart))
	res.Levels = levels
	res.Sched = &sched
	if runErr == nil && ctx.Err() != nil {
		runErr = fmt.Errorf("core: multilevel run cancelled during projection: %w", ctx.Err())
	}
	return res, runErr
}

// scoreVals evaluates Φ from raw cut/size/pin totals.
func scoreVals(cut, size, pins int, rent, aG float64, m Metric) float64 {
	switch m {
	case MetricNGTLS:
		return metrics.NGTLScore(cut, size, rent, aG)
	default:
		return metrics.GTLSD(cut, size, pins, rent, aG)
	}
}

// refineBoundary runs the bounded boundary-refinement pass for one
// projected candidate: up to `rounds` sweeps over the group's
// frontier (outside cells on cut nets), greedily absorbing every cell
// whose addition improves Φ, stopping early when a sweep absorbs
// nothing. skip is the K-factor cutoff: cut nets with at least that
// many outside pins contribute no frontier (0 disables), mirroring
// Phase I's BigNetSkip — a clock net's 50K pins are not boundary
// candidates, and walking them per sweep would dominate the pass. It
// reports the refined set and how many cells were absorbed. The sweep
// reuses the grower's tracker and mark arrays and visits every
// incident net once per sweep (via the tracker's touched-net list),
// so a sweep is O(touched nets + frontier pins).
func (g *grower) refineBoundary(members []netlist.CellID, rounds, skip int, m Metric, rent, aG float64) (group.Set, int) {
	g.reset()
	t := g.tracker
	for _, c := range members {
		if !t.Has(int(c)) {
			t.Add(c)
		}
	}
	cur := scoreVals(t.Cut(), t.Size(), t.Pins(), rent, aG, m)
	added := 0
	var frontier []netlist.CellID
	for r := 0; r < rounds; r++ {
		// Enumerate the frontier once per sweep — each touched net
		// exactly once, using a fresh epoch stamp to dedupe; bumping
		// the epoch afterwards is what "clears" the marks, so the
		// grower stays reusable without a walk.
		g.bumpEpoch()
		frontier = frontier[:0]
		for _, e := range t.TouchedNets() {
			p := t.NetPinsIn(e)
			lambda := g.nl.NetSize(e) - p
			if p == 0 || lambda == 0 {
				continue // untouched or fully internal: no frontier
			}
			if skip > 0 && lambda >= skip {
				continue // K-factor: huge cut nets carry no boundary signal
			}
			for _, w := range g.nl.NetPins(e) {
				if t.Has(int(w)) || g.front[w].stamp&epochMask == g.epoch {
					continue
				}
				g.front[w].stamp = g.epoch
				frontier = append(frontier, w)
			}
		}
		slices.Sort(frontier)
		grew := 0
		for _, c := range frontier {
			dcut := t.DeltaCut(c)
			deg := g.nl.CellDegree(c)
			if ns := scoreVals(t.Cut()+dcut, t.Size()+1, t.Pins()+deg, rent, aG, m); ns < cur {
				t.Add(c)
				cur = ns
				grew++
			}
		}
		added += grew
		if grew == 0 {
			break
		}
	}
	return t.Snapshot(), added
}
