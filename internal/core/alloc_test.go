package core

import (
	"context"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// TestGrowAllocGuard pins the hot-path overhaul's zero-allocation
// contract: once a worker's buffers are warm, Phase I growth performs
// no heap allocations per seed — on the flat engine, on the optimized
// and retained-baseline absorb loops, on a multilevel run's coarse
// sub-engine, and on the relabel shadow engine that the incremental
// rerun path grows through. (Replay and candidate extraction allocate
// by design — Eval copies members out of the grower's reusable
// buffers — so the guard targets grow, the per-seed O(Σ|e|) loop.)
//
// A regression here is what the BENCH_hotpath "zero steady-state
// allocations" claim rests on; testing.AllocsPerRun makes it a test
// instead of a benchmark eyeball.

func allocWorkload(t *testing.T) *netlist.Netlist {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  4000,
		Blocks: []generate.BlockSpec{{Size: 300}, {Size: 200}},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rg.Netlist
}

// growAllocs warms a worker over a spread of seeds, then measures
// steady-state allocations per grow call.
func growAllocs(t *testing.T, f *Finder, opt *Options) float64 {
	t.Helper()
	n := f.nl.NumCells()
	seeds := []netlist.CellID{0, netlist.CellID(n / 3), netlist.CellID(2 * n / 3), netlist.CellID(n - 1)}
	maxLen := 400
	if maxLen > n {
		maxLen = n
	}
	ws := f.acquire(opt)
	defer f.release(ws)
	for _, s := range seeds {
		ws.gr.grow(s, maxLen)
	}
	i := 0
	return testing.AllocsPerRun(20, func() {
		ws.gr.grow(seeds[i%len(seeds)], maxLen)
		i++
	})
}

func TestGrowAllocGuard(t *testing.T) {
	nl := allocWorkload(t)
	opt := DefaultOptions()

	t.Run("flat", func(t *testing.T) {
		f, err := NewFinder(nl)
		if err != nil {
			t.Fatal(err)
		}
		if got := growAllocs(t, f, &opt); got != 0 {
			t.Fatalf("steady-state grow allocates %.1f objects/seed, want 0", got)
		}
	})

	t.Run("flat_baseline", func(t *testing.T) {
		f, err := NewFinder(nl)
		if err != nil {
			t.Fatal(err)
		}
		f.SetBaselineGrowth(true)
		if got := growAllocs(t, f, &opt); got != 0 {
			t.Fatalf("steady-state baseline grow allocates %.1f objects/seed, want 0", got)
		}
	})

	t.Run("multilevel_coarse", func(t *testing.T) {
		f, err := NewFinder(nl)
		if err != nil {
			t.Fatal(err)
		}
		mopt := opt
		mopt.Levels = 3
		mopt.MinCoarseCells = 512
		mopt.Seeds = 4
		mopt.MaxOrderLen = 200
		if _, err := f.Find(context.Background(), mopt); err != nil {
			t.Fatal(err)
		}
		states := f.mlStates()
		if len(states) == 0 {
			t.Fatal("multilevel run cached no hierarchy")
		}
		top := states[0].finders[states[0].hier.NumLevels()-1]
		if top == f {
			t.Fatal("hierarchy did not coarsen")
		}
		if got := growAllocs(t, top, &opt); got != 0 {
			t.Fatalf("steady-state coarse grow allocates %.1f objects/seed, want 0", got)
		}
	})

	t.Run("relabel_shadow", func(t *testing.T) {
		f, err := NewFinder(nl)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := f.shadow()
		if err != nil {
			t.Fatal(err)
		}
		if got := growAllocs(t, sh.pf, &opt); got != 0 {
			t.Fatalf("steady-state shadow grow allocates %.1f objects/seed, want 0", got)
		}
	})
}
