package core

import (
	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Locality-permuted execution (Options.Relabel).
//
// Under Relabel the engine builds — once per Finder, lazily — a shadow
// engine over a reverse-Cuthill–McKee-permuted copy of the netlist
// (netlist.LocalityOrder + netlist.PermuteCells) and routes every
// seeded-growth shard through it: the dense frontier array and the CSR
// pin runs are then indexed in an id space where connected cells sit
// on nearby cache lines. The translation boundary is findShard — plans
// are translated in, traces/candidates/incremental records are
// translated back out — so assemble, prune, Merge, incremental replay
// and the multilevel projection descent all keep running in original
// id space, untouched. Multilevel runs inherit Relabel for their
// coarse detection pass automatically (it goes through the coarse
// finder's findShard); the per-level boundary refinement stays
// unpermuted by design — it is a sweep over already-localized members,
// not a frontier growth.
//
// Equivalence guarantee: only cell ids are permuted, never net ids, so
// each absorbed cell's CellPins run — and with it the order gain
// deltas accumulate per frontier cell — is positionally identical to
// the unpermuted run's. Materialized outside-pin lists are sorted by
// original rank (grower.sortByRank) and the heap breaks final ties by
// rank (ds.GainHeap.SetRank), so discovery order, every tiebreak, and
// the pop sequence are physically identical too: the shadow performs
// the same absorb sequence and produces bitwise-equal scores. The one
// visible difference is member order inside recombined (Phase III
// union/intersect/difference) winners, whose members are sorted by
// permuted id — which is why Relabel's contract is set-equality with
// bitwise-equal scores rather than bit-identity, and why the deltatest
// differential compares groups as sets.
type shadowState struct {
	perm []int32 // original id -> permuted id
	rank []int32 // permuted id -> original id (inverse of perm)
	pf   *Finder // shadow engine over the permuted netlist
}

// shadow returns the engine's relabel shadow, building and caching it
// on first use. The build — permutation, CSR rewrite, shadow engine —
// is O(cells + pins) and serializes concurrent first users.
func (f *Finder) shadow() (*shadowState, error) {
	f.shMu.Lock()
	defer f.shMu.Unlock()
	if f.sh != nil {
		return f.sh, nil
	}
	perm := netlist.LocalityOrder(f.nl)
	pnl, err := netlist.PermuteCells(f.nl, perm)
	if err != nil {
		return nil, err
	}
	pf, err := NewFinder(pnl)
	if err != nil {
		return nil, err
	}
	n := f.nl.NumCells()
	sh := &shadowState{perm: make([]int32, n), rank: make([]int32, n), pf: pf}
	for old, nw := range perm {
		sh.perm[old] = int32(nw)
		sh.rank[nw] = int32(old)
	}
	pf.rank = sh.rank
	pf.baseline.Store(f.baseline.Load())
	f.poolMu.Lock()
	pf.poolCap = f.poolCap
	f.poolMu.Unlock()
	f.sh = sh
	return sh, nil
}

// shadowMemoryEstimate reports the retained bytes of the relabel
// shadow, if one has been built: the permuted netlist, both id maps
// and the shadow engine's own pools.
func (f *Finder) shadowMemoryEstimate() int64 {
	f.shMu.Lock()
	sh := f.sh
	f.shMu.Unlock()
	if sh == nil {
		return 0
	}
	return sh.pf.nl.MemoryFootprint() + int64(cap(sh.perm))*4 + int64(cap(sh.rank))*4 +
		sh.pf.MemoryEstimate()
}

// translatePlan maps a schedule's seed cells into permuted id space.
// The owner map carries over unchanged: the permutation is a bijection,
// so two schedule slots collide in permuted space exactly when they
// collide in original space.
func (sh *shadowState) translatePlan(plan seedPlan) seedPlan {
	ids := make([]netlist.CellID, len(plan.ids))
	for i, id := range plan.ids {
		ids[i] = netlist.CellID(sh.perm[id])
	}
	return seedPlan{ids: ids, owner: plan.owner}
}

func (sh *shadowState) translateMembers(members []netlist.CellID) {
	for i, m := range members {
		members[i] = netlist.CellID(sh.rank[m])
	}
}

// translateShardOut rewrites a shadow-produced shard into original id
// space, in place: seed traces, candidate members and (when recorded)
// the per-seed incremental records with their footprint bitsets.
// Curves and scores carry no ids and are bitwise-equal to the
// unpermuted run's by the physical-identity argument above.
func (sh *shadowState) translateShardOut(sr *ShardResult) {
	for k := range sr.outs {
		o := &sr.outs[k]
		o.trace.Seed = netlist.CellID(sh.rank[o.trace.Seed])
		if o.cand != nil {
			sh.translateMembers(o.cand.Members)
		}
	}
	for _, rec := range sr.recs {
		if rec != nil {
			sh.translateRecord(rec)
		}
	}
}

// translateRecord rewrites one seed's incremental record into original
// id space, so replaySeed and footprint-vs-dirty intersection work on
// the caller's netlist without knowing the shadow exists. Growth order
// is physically identical to an unpermuted run's, so the translated
// record is exactly what recording without Relabel would have stored.
func (sh *shadowState) translateRecord(rec *seedRecord) {
	rec.seed = netlist.CellID(sh.rank[rec.seed])
	sh.translateMembers(rec.ord.members)
	for i := range rec.refine {
		rr := &rec.refine[i]
		rr.seed = netlist.CellID(sh.rank[rr.seed])
		sh.translateMembers(rr.ord.members)
	}
	if rec.foot != nil {
		foot := ds.NewBitset(len(sh.rank))
		rec.foot.ForEach(func(i int) { foot.Add(int(sh.rank[i])) })
		rec.foot = foot
	}
}

// runSeedTranslated executes one seed's full growth pipeline on the
// shadow and returns its outcome in original id space — the relabel
// path of findIncrementalFlat's reseed branch, where replayed and
// re-grown seeds mix in one pool. host is the calling pool's worker
// state: the shadow worker's phase clocks are folded into it so stage
// timing survives the indirection.
func (sh *shadowState) runSeedTranslated(host *workerState, i int, id netlist.CellID, opt *Options, rec *seedRecord) seedOut {
	ws := sh.pf.acquire(opt)
	o := runSeed(sh.pf.nl, ws.gr, ws.ev, seedRNG(opt.RandSeed, i),
		netlist.CellID(sh.perm[id]), opt, sh.pf.aG, rec)
	for p := range ws.gr.phases {
		host.gr.phases[p] += ws.gr.phases[p]
	}
	sh.pf.release(ws)
	o.trace.Seed = netlist.CellID(sh.rank[o.trace.Seed])
	if o.candidate != nil {
		sh.translateMembers(o.candidate.Members)
	}
	if rec != nil {
		sh.translateRecord(rec)
	}
	return o
}
