package core

import (
	"sync/atomic"
	"time"

	"tanglefind/internal/telemetry"
)

// Stage names used in Result.Stages. Flat runs report the first four;
// multilevel runs add StageCoarseDetect/StageProject and incremental
// runs add StageReplay/StageReseed.
const (
	StageGrow         = "grow"
	StageScore        = "score"
	StageRecombine    = "recombine"
	StagePrune        = "prune"
	StageCoarseDetect = "coarse_detect"
	StageProject      = "project"
	StageReplay       = "replay"
	StageReseed       = "reseed"
)

// The per-seed pipeline phases accumulated on each worker's grower.
// Kept as a fixed array of plain int64 nanoseconds so the hot path
// pays one time.Now pair per phase and no map or atomic traffic; the
// totals are harvested once per worker when the pool drains.
const (
	phaseGrow = iota
	phaseScore
	phaseRecombine
	nPhases
)

var phaseNames = [nPhases]string{StageGrow, StageScore, StageRecombine}

// phaseAcc is a per-phase nanosecond accumulator.
type phaseAcc [nPhases]int64

// stages converts the accumulator to the exported map form, skipping
// phases that never ran.
func (p *phaseAcc) stages() telemetry.StageTimings {
	t := telemetry.StageTimings{}
	for i, ns := range p {
		if ns > 0 {
			t[phaseNames[i]] = time.Duration(ns)
		}
	}
	return t
}

// stageTimingOff disables per-seed stage accounting (and the
// per-exec busy/steal clocks in the scheduler) when set. Stored
// inverted so the zero value means "timing on" — the default.
// Growers and steal groups capture it once per run, so the seed loop
// reads a plain bool.
var stageTimingOff atomic.Bool

// SetStageTiming switches the engine's per-seed stage accounting
// (Result.Stages phase entries, SchedStats worker busy/steal clocks)
// on or off, returning the previous setting. Per-run stamps (prune,
// coarse_detect, project) are always recorded — they cost a handful
// of clock reads per run. The toggle exists for overhead measurement
// (BenchmarkFind_Instrumented); it never affects detection results.
func SetStageTiming(enabled bool) (prev bool) {
	return !stageTimingOff.Swap(!enabled)
}

// StageTimingEnabled reports whether per-seed stage accounting is on.
func StageTimingEnabled() bool { return !stageTimingOff.Load() }

// stamp folds the time elapsed since `from` into phase p and returns
// the new timestamp, chaining consecutive phase boundaries through
// one clock read each.
func (g *grower) stamp(p int, from time.Time) time.Time {
	now := time.Now()
	g.phases[p] += int64(now.Sub(from))
	return now
}
