package core

import (
	"math"

	"tanglefind/internal/metrics"
)

// Curve is the Phase II score function Φ(C_k) over prefixes of one
// linear ordering, together with the Rent exponent used to compute it.
// Scores[k-1] is the score of the first-k-cells prefix; prefixes
// smaller than 2 cells hold +Inf.
type Curve struct {
	Scores []float64
	Rent   float64 // averaged Rent exponent p for this ordering
	AG     float64 // netlist-wide average pins per cell
}

// averageRent implements the paper's estimator: the Rent exponent of
// the ordering is the mean of per-prefix estimates
// (ln T(C_k) − ln A_{C_k}) / ln k over all prefixes where it is defined.
func averageRent(o *OrderingStats) float64 {
	sum, n := 0.0, 0
	for k := 2; k <= o.Len(); k++ {
		p, ok := metrics.RentExponent(int(o.Cuts[k-1]), k, int(o.Pins[k-1]))
		if ok {
			sum += p
			n++
		}
	}
	if n == 0 {
		return 0.5 // degenerate ordering; any p gives score 0 everywhere
	}
	return sum / float64(n)
}

// ScoreCurve evaluates metric m over every prefix of the ordering.
// aG is the netlist's average pin count A(G).
func ScoreCurve(o *OrderingStats, m Metric, aG float64) *Curve {
	c := &Curve{}
	scoreCurveInto(c, o, m, aG)
	return c
}

// scoreCurveInto fills c (reusing its Scores capacity) with metric m
// over every prefix of the ordering.
func scoreCurveInto(c *Curve, o *OrderingStats, m Metric, aG float64) {
	scoreCurveWithRent(c, o, averageRent(o), m, aG)
}

// scoreCurveWithRent is scoreCurveInto with the Rent exponent supplied
// by the caller — incremental replay re-scores recorded orderings whose
// (structural) rent it already stored, under a new A(G), through this
// exact loop, so replayed curves are bit-identical by construction.
func scoreCurveWithRent(c *Curve, o *OrderingStats, p float64, m Metric, aG float64) {
	if cap(c.Scores) < o.Len() {
		c.Scores = make([]float64, o.Len())
	}
	c.Scores = c.Scores[:o.Len()]
	c.Rent = p
	c.AG = aG
	for k := 1; k <= o.Len(); k++ {
		cut := int(o.Cuts[k-1])
		switch m {
		case MetricNGTLS:
			c.Scores[k-1] = metrics.NGTLScore(cut, k, p, aG)
		case MetricGTLSD:
			c.Scores[k-1] = metrics.GTLSD(cut, k, int(o.Pins[k-1]), p, aG)
		}
	}
}

// scoreCurve evaluates the Phase II curve for one ordering. Unless the
// caller needs to keep the curve alive (Options.KeepCurves), the
// grower's reusable buffer backs it — the returned curve is then valid
// only until the grower's next scoreCurve call.
func (g *grower) scoreCurve(o *OrderingStats, m Metric, aG float64, keep bool) *Curve {
	if keep {
		return ScoreCurve(o, m, aG)
	}
	scoreCurveInto(&g.curve, o, m, aG)
	return &g.curve
}

// extraction is the outcome of Phase II for one ordering.
type extraction struct {
	size  int     // |B|: prefix length at the accepted minimum
	score float64 // Φ at the minimum
	rent  float64
	ok    bool
}

// extract finds a clear interior minimum of the score curve within
// [opt.MinGroupSize, len]. Acceptance demands (i) the minimum beats
// AcceptThreshold, and (ii) the curve value at both window ends exceeds
// the minimum by at least 1/DipRatio — rejecting the flat or monotone
// curves produced by seeds outside any GTL (paper Figures 2 and 3).
func extract(c *Curve, opt *Options) extraction {
	n := len(c.Scores)
	lo := opt.MinGroupSize
	if lo < 2 {
		lo = 2
	}
	if lo > n {
		return extraction{}
	}
	bestK, bestV := -1, math.Inf(1)
	for k := lo; k <= n; k++ {
		if v := c.Scores[k-1]; v < bestV {
			bestV, bestK = v, k
		}
	}
	if bestK < 0 || math.IsInf(bestV, 1) || bestV > opt.AcceptThreshold {
		return extraction{}
	}
	// A minimum sitting at the window's right edge means the curve was
	// still descending — there is no evidence the structure ended.
	if bestK >= n {
		return extraction{}
	}
	leftRef := c.Scores[lo-1]
	rightRef := c.Scores[n-1]
	if bestV > opt.DipRatio*leftRef || bestV > opt.DipRatio*rightRef {
		return extraction{}
	}
	return extraction{size: bestK, score: bestV, rent: c.Rent, ok: true}
}
