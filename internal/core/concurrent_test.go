package core

import (
	"context"
	"sync"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// TestConcurrentFindSharedNetlist is the invariant the serving layer
// depends on: one immutable *Netlist may be analyzed from many
// goroutines at once — through concurrent FindMany batches and
// through one shared Finder — with identical, deterministic results.
// Run under -race (the CI race shard does) to make the check real.
func TestConcurrentFindSharedNetlist(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 500}},
		Seed:   33,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist
	opt := DefaultOptions()
	opt.Seeds = 16
	opt.MaxOrderLen = 1500
	opt.Workers = 2

	ref, err := Find(nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := gtlHash(ref)

	const goroutines = 4
	ctx := context.Background()

	// Concurrent FindMany batches over the same shared netlist (the
	// batch itself also repeats it).
	var wg sync.WaitGroup
	results := make([][]*Result, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = FindMany(ctx, []*netlist.Netlist{nl, nl}, opt)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i, res := range results[g] {
			if got := gtlHash(res); got != want {
				t.Errorf("goroutine %d result %d diverged: %x != %x", g, i, got, want)
			}
		}
	}

	// Concurrent runs on one shared Finder draw from one state pool.
	f, err := NewFinder(nl)
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]*Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shared[g], errs[g] = f.Find(ctx, opt)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("shared finder goroutine %d: %v", g, errs[g])
		}
		if got := gtlHash(shared[g]); got != want {
			t.Errorf("shared finder goroutine %d diverged", g)
		}
	}
}
