package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// gtlHash digests the full member sets (plus cut/pin/seed data) of a
// result, so equality of hashes means byte-identical GTLs.
func gtlHash(res *Result) uint64 {
	h := fnv.New64a()
	for _, g := range res.GTLs {
		fmt.Fprintf(h, "gtl size=%d cut=%d pins=%d seed=%d:", g.Size(), g.Cut, g.Pins, g.Seed)
		for _, m := range g.Members {
			fmt.Fprintf(h, " %d", m)
		}
		fmt.Fprintln(h)
	}
	return h.Sum64()
}

// TestEngineGoldenDeterminism locks the engine to the exact output of
// the pre-engine one-shot Find implementation: the hashes below were
// captured by running the original core.Find (commit with the
// per-call worker construction) over these workloads. A fixed RandSeed
// must keep producing byte-identical GTL member sets.
func TestEngineGoldenDeterminism(t *testing.T) {
	cases := []struct {
		cells, block, seeds, z int
		rand                   uint64
		want                   uint64
	}{
		{8000, 400, 32, 1600, 7, 0x5ba804c73ec20c5b},
		{12000, 900, 40, 3600, 42, 0xd7a5dc88ad5128c6},
	}
	for _, tc := range cases {
		rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
			Cells:  tc.cells,
			Blocks: []generate.BlockSpec{{Size: tc.block}},
			Seed:   tc.rand,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Seeds = tc.seeds
		opt.MaxOrderLen = tc.z
		opt.RandSeed = tc.rand

		// The compat wrapper and a reused engine must agree with the
		// golden value.
		res, err := Find(rg.Netlist, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := gtlHash(res); got != tc.want {
			t.Errorf("cells=%d: Find hash %#016x, want golden %#016x", tc.cells, got, tc.want)
		}
		f, err := NewFinder(rg.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			res2, err := f.Find(context.Background(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := gtlHash(res2); got != tc.want {
				t.Errorf("cells=%d run %d: engine hash %#016x, want golden %#016x", tc.cells, run, got, tc.want)
			}
		}
	}
}

// TestShardMergeMatchesFind splits one run into shards and checks the
// merged result is identical to the unsharded run — traces included.
func TestShardMergeMatchesFind(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  8000,
		Blocks: []generate.BlockSpec{{Size: 400}},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 32
	opt.MaxOrderLen = 1600
	opt.RandSeed = 7

	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s1, err := f.FindShard(ctx, opt, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.FindShard(ctx, opt, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := f.FindShard(ctx, opt, 25, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Merge must accept shards in any order.
	merged, err := f.Merge(opt, s3, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if gtlHash(merged) != gtlHash(whole) {
		t.Errorf("sharded run differs from whole run")
	}
	if merged.Candidates != whole.Candidates {
		t.Errorf("candidates: sharded %d, whole %d", merged.Candidates, whole.Candidates)
	}
	if len(merged.Seeds) != len(whole.Seeds) {
		t.Fatalf("trace count: sharded %d, whole %d", len(merged.Seeds), len(whole.Seeds))
	}
	for i := range merged.Seeds {
		a, b := merged.Seeds[i], whole.Seeds[i]
		if a.Seed != b.Seed || a.OrderLen != b.OrderLen || a.Extracted != b.Extracted ||
			a.Size != b.Size || a.Score != b.Score {
			t.Errorf("trace %d differs: %+v vs %+v", i, a, b)
		}
	}

	// Bad coverage must be rejected.
	if _, err := f.Merge(opt, s1, s3); err == nil {
		t.Error("merge with a coverage gap accepted")
	}
	if _, err := f.Merge(opt, s1, s2); err == nil {
		t.Error("merge missing the tail shard accepted")
	}
}

// TestFindCancellation checks a cancelled context stops the run early
// and yields a partial result alongside an error wrapping ctx.Err().
func TestFindCancellation(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  12000,
		Blocks: []generate.BlockSpec{{Size: 600}},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 64
	opt.MaxOrderLen = 3000
	opt.Workers = 1 // deterministic completion count around the cancel point

	// Cancel from the progress callback after the second seed: the run
	// must stop long before all 64 seeds execute.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt.Progress = func(p Progress) {
		if p.SeedsDone >= 2 {
			cancel()
		}
	}
	res, err := f.Find(ctx, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if len(res.Seeds) == 0 || len(res.Seeds) >= opt.Seeds {
		t.Errorf("partial run completed %d/%d seeds; want some but not all", len(res.Seeds), opt.Seeds)
	}

	// A context cancelled before the run starts yields an empty partial.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	opt.Progress = nil
	res, err = f.Find(pre, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Seeds) != 0 || len(res.GTLs) != 0 {
		t.Errorf("pre-cancelled run: res=%+v, want empty partial", res)
	}

	// A cancelled shard must be refused by Merge.
	sr, err := f.FindShard(pre, opt, 0, opt.Seeds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("shard err = %v", err)
	}
	if _, err := f.Merge(opt, sr); err == nil {
		t.Error("merge accepted a cancelled (incomplete) shard")
	}
}

// TestDuplicateSeedDedup is the regression test for the stratified
// seeding waste: with Seeds far above the cell count, strata collapse
// onto the same cells and the engine must run each unique seed once,
// while still reporting Options.Seeds deterministic trace entries.
func TestDuplicateSeedDedup(t *testing.T) {
	var b netlist.Builder
	b.AddCells(12)
	for i := 0; i < 11; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID(i+1))
	}
	nl := b.MustBuild()
	opt := DefaultOptions()
	opt.Seeds = 60 // 5x the cell count: every cell is hit repeatedly
	opt.MaxOrderLen = 6
	opt.MinGroupSize = 2

	f, err := NewFinder(nl)
	if err != nil {
		t.Fatal(err)
	}
	var lastTotal int
	opt.Progress = func(p Progress) { lastTotal = p.SeedsTotal }
	res1, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if lastTotal > nl.NumCells() {
		t.Errorf("engine executed %d seeds for a %d-cell netlist; duplicates not deduped", lastTotal, nl.NumCells())
	}
	if lastTotal >= opt.Seeds {
		t.Errorf("SeedsTotal %d not reduced below requested %d", lastTotal, opt.Seeds)
	}
	if len(res1.Seeds) != opt.Seeds {
		t.Fatalf("trace entries %d, want %d (one per requested seed)", len(res1.Seeds), opt.Seeds)
	}
	// Duplicate indices must carry their owner's trace: every trace with
	// the same seed cell must be identical.
	bySeed := map[netlist.CellID]SeedTrace{}
	for i, tr := range res1.Seeds {
		if prev, ok := bySeed[tr.Seed]; ok {
			if prev != tr {
				t.Errorf("trace %d for seed %d differs from earlier occurrence", i, tr.Seed)
			}
		} else {
			bySeed[tr.Seed] = tr
		}
	}
	// And the whole run stays deterministic.
	opt.Progress = nil
	res2, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if gtlHash(res1) != gtlHash(res2) {
		t.Error("dedup run not deterministic")
	}
	if len(res1.Seeds) != len(res2.Seeds) {
		t.Errorf("trace counts differ across runs: %d vs %d", len(res1.Seeds), len(res2.Seeds))
	}
}

// TestFindMany checks the batch entry point: positional results, shared
// options, and partial output on cancellation.
func TestFindMany(t *testing.T) {
	var nls []*netlist.Netlist
	for i := 0; i < 3; i++ {
		rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
			Cells:  4000,
			Blocks: []generate.BlockSpec{{Size: 300}},
			Seed:   uint64(10 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nls = append(nls, rg.Netlist)
	}
	opt := DefaultOptions()
	opt.Seeds = 24
	opt.MaxOrderLen = 1200

	results, err := FindMany(context.Background(), nls, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(nls) {
		t.Fatalf("got %d results for %d netlists", len(results), len(nls))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
		if len(r.GTLs) == 0 {
			t.Errorf("netlist %d: no GTLs found (candidates=%d)", i, r.Candidates)
		}
		// Each netlist's batch result must match its solo run.
		solo, err := Find(nls[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		if gtlHash(r) != gtlHash(solo) {
			t.Errorf("netlist %d: batch result differs from solo Find", i)
		}
	}

	// Cancellation mid-batch: the error names the interrupted netlist
	// and earlier results survive.
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	opt.Progress = func(p Progress) {
		done++
		if done > opt.Seeds+2 { // somewhere inside the second netlist
			cancel()
		}
	}
	results, err = FindMany(ctx, nls, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results[0] == nil || len(results[0].GTLs) == 0 {
		t.Error("first netlist's completed result lost on cancellation")
	}
	if results[2] != nil {
		t.Error("third netlist ran despite cancellation")
	}

	// An empty netlist in the batch is a descriptive error.
	_, err = FindMany(context.Background(), []*netlist.Netlist{{}}, opt)
	if err == nil {
		t.Error("empty netlist accepted")
	}
}

// TestFinderConcurrentRuns exercises the shared worker-state pool from
// concurrent runs of one engine (run with -race to make this count).
func TestFinderConcurrentRuns(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  5000,
		Blocks: []generate.BlockSpec{{Size: 300}},
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 16
	opt.MaxOrderLen = 1000
	ref, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	want := gtlHash(ref)
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			res, err := f.Find(context.Background(), opt)
			if err == nil && gtlHash(res) != want {
				err = errors.New("concurrent run diverged")
			}
			errs <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
