package core

import (
	"fmt"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// baselineTracker is the pre-overhaul group tracker, retained verbatim
// so the baseline engine's absorb loop pays exactly the pre-overhaul
// memory traffic: per-net inside-pin counts in their own array, with
// Add and DeltaCut loading both NetSize (the CSR offset array) and
// pinsIn per net — the two random loads per net that the overhauled
// tracker's fused state word collapsed into one. Only the baseline
// growth paths use it; it is allocated lazily on the first baseline
// growth so ordinary engines never pay its per-net array.
type baselineTracker struct {
	nl      *netlist.Netlist
	in      *ds.Bitset
	pinsIn  []int32 // per net: pins inside the group
	touched []netlist.NetID
	members []netlist.CellID
	cut     int
	pins    int
}

func newBaselineTracker(nl *netlist.Netlist) *baselineTracker {
	return &baselineTracker{
		nl:     nl,
		in:     ds.NewBitset(nl.NumCells()),
		pinsIn: make([]int32, nl.NumNets()),
	}
}

func (t *baselineTracker) Reset() {
	for _, n := range t.touched {
		t.pinsIn[n] = 0
	}
	t.touched = t.touched[:0]
	t.members = t.members[:0]
	t.in.Clear()
	t.cut = 0
	t.pins = 0
}

func (t *baselineTracker) MemoryFootprint() int64 {
	return int64(t.in.Capacity())/8 + int64(cap(t.pinsIn))*4 +
		int64(cap(t.touched))*4 + int64(cap(t.members))*4
}

func (t *baselineTracker) Size() int                     { return len(t.members) }
func (t *baselineTracker) Cut() int                      { return t.cut }
func (t *baselineTracker) Pins() int                     { return t.pins }
func (t *baselineTracker) Has(c int) bool                { return t.in.Has(c) }
func (t *baselineTracker) Members() []netlist.CellID     { return t.members }
func (t *baselineTracker) NetPinsIn(n netlist.NetID) int { return int(t.pinsIn[n]) }

func (t *baselineTracker) Add(c netlist.CellID) {
	if !t.in.Add(int(c)) {
		panic(fmt.Sprintf("core: baseline cell %d added twice", c))
	}
	nets := t.nl.CellPins(c)
	t.pins += len(nets)
	t.members = append(t.members, c)
	for _, n := range nets {
		sz := t.nl.NetSize(n)
		p := t.pinsIn[n]
		if p == 0 {
			t.touched = append(t.touched, n)
			if sz > 1 {
				t.cut++ // net becomes externally connected
			}
		}
		p++
		t.pinsIn[n] = p
		if int(p) == sz && sz > 1 {
			t.cut-- // net became fully internal
		}
	}
}

func (t *baselineTracker) DeltaCut(c netlist.CellID) int {
	d := 0
	for _, n := range t.nl.CellPins(c) {
		sz := t.nl.NetSize(n)
		if sz <= 1 {
			continue
		}
		switch int(t.pinsIn[n]) {
		case 0:
			d++
		case sz - 1:
			d--
		}
	}
	return d
}

// baselineHeap is the pre-overhaul frontier queue, retained verbatim
// alongside addCellBaseline: a lazy binary max-heap with no insertion
// buffer. The baseline engine runs on it so the hotpath experiment's
// "before" timings measure the pre-overhaul queue, not the overhauled
// ds.GainHeap. The only post-hoc addition is the rank tiebreak, which
// the relabel differential needs to run the baseline oracle inside a
// permuted shadow; it costs one nil check on the tiebreak path.
type baselineHeap struct {
	entries []baselineEntry
	rank    []int32
}

type baselineEntry struct {
	gain float64
	tie  int32
	key  int32
}

func (h *baselineHeap) Reset() { h.entries = h.entries[:0] }

func (h *baselineHeap) MemoryFootprint() int64 { return int64(cap(h.entries)) * 16 }

func (h *baselineHeap) Push(key int32, gain float64, tie int32) {
	h.entries = append(h.entries, baselineEntry{gain, tie, key})
	h.up(len(h.entries) - 1)
}

func (h *baselineHeap) Pop() (key int32, gain float64, tie int32, ok bool) {
	if len(h.entries) == 0 {
		return 0, 0, 0, false
	}
	e := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.down(0)
	}
	return e.key, e.gain, e.tie, true
}

func (h *baselineHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	if h.rank != nil {
		return h.rank[a.key] < h.rank[b.key]
	}
	return a.key < b.key
}

func (h *baselineHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.entries[i], h.entries[p] = h.entries[p], h.entries[i]
		i = p
	}
}

func (h *baselineHeap) down(i int) {
	n := len(h.entries)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			return
		}
		h.entries[i], h.entries[c] = h.entries[c], h.entries[i]
		i = c
	}
}

// growBaseline is the pre-overhaul Phase I loop, dispatched to by grow
// when the engine runs in baseline mode. It mirrors grow exactly but
// reads group state from the retained baselineTracker, so the timed
// "before" engine carries the pre-overhaul tracker's memory traffic as
// well as its heap and walk behavior.
func (g *grower) growBaseline(seed netlist.CellID, maxLen int) *OrderingStats {
	if g.btracker == nil {
		g.btracker = newBaselineTracker(g.nl)
	}
	t := g.btracker
	t.Reset()
	g.bheap.Reset()
	g.bumpEpoch()
	g.touched = g.touched[:0]
	g.examined = g.examined[:0]
	if maxLen > g.nl.NumCells() {
		maxLen = g.nl.NumCells()
	}
	out := &g.ord
	out.Members = out.Members[:0]
	out.Cuts = out.Cuts[:0]
	out.Pins = out.Pins[:0]
	record := func() {
		out.Members = append(out.Members, t.Members()[t.Size()-1])
		out.Cuts = append(out.Cuts, int32(t.Cut()))
		out.Pins = append(out.Pins, int64(t.Pins()))
	}
	g.addCellBaseline(seed)
	record()
	for t.Size() < maxLen {
		v, ok := g.popBestBaseline()
		if !ok {
			break
		}
		g.addCellBaseline(v)
		record()
	}
	return out
}

// popBestBaseline is the pre-overhaul pop path: no uncontested-maximum
// shortcut, every equal-gain pop pays a DeltaCut walk, and requeues
// always round-trip through the heap. Kept verbatim (modulo the
// frontEntry stamp rename and the examined-list dedupe, which is
// shared bookkeeping) as the timing and bit-identity reference.
func (g *grower) popBestBaseline() (netlist.CellID, bool) {
	for {
		v, gain, tie, ok := g.bheap.Pop()
		if !ok {
			return 0, false
		}
		fe := &g.front[v]
		if g.btracker.Has(int(v)) || fe.stamp&epochMask != g.epoch {
			continue // already absorbed
		}
		if gain != fe.gain {
			continue // stale gain; a fresher entry exists
		}
		if g.opt.Ordering == OrderBFS {
			return v, true // tie is the discovery index, always valid
		}
		if fe.stamp&examinedBit == 0 {
			fe.stamp |= examinedBit
			g.examined = append(g.examined, v)
		}
		fresh := int32(g.btracker.DeltaCut(v))
		if fresh != tie {
			// The cut delta drifted since this entry was pushed;
			// requeue at the exact value and keep popping.
			fe.tie = fresh
			g.bheap.Push(v, gain, fresh)
			continue
		}
		return v, true
	}
}

// addCellBaseline is the pre-overhaul absorb loop, kept verbatim
// (modulo the frontEntry stamp rename) as the reference the optimized
// addCell must stay bit-identical to: full NetPins(e) re-walks with
// member skipping, per-net NetSize/NetPinsIn loads off the retained
// tracker, per-term float divides, and one heap push per (net, cell)
// gain update. The hotpath experiment times it as the "before" engine
// and the differential tests grow against it as the golden oracle; it
// is selected per grower via the baseline flag
// (Finder.SetBaselineGrowth).
func (g *grower) addCellBaseline(v netlist.CellID) {
	t := g.btracker
	if g.front[v].stamp&epochMask != g.epoch {
		g.front[v].stamp = g.epoch
		g.touched = append(g.touched, v) // first touch: enters the discovery list
	}
	t.Add(v)
	for _, e := range g.nl.CellPins(v) {
		sz := g.nl.NetSize(e)
		p := t.NetPinsIn(e) // pins inside after adding v
		lambda := sz - p    // pins still outside
		if lambda == 0 {
			continue // fully internal: no frontier contribution left
		}
		if g.opt.BigNetSkip > 0 && lambda >= g.opt.BigNetSkip {
			// The paper's K-factor optimization: weight changes on
			// nets with many outside pins are negligible; skip them.
			continue
		}
		var delta float64
		switch g.opt.Ordering {
		case OrderWeighted:
			wNew := 1.0 / float64(lambda+1)
			if p == 1 {
				delta = wNew // net newly connected to the group
			} else {
				delta = wNew - 1.0/float64(lambda+2)
			}
		case OrderMinCut, OrderBFS:
			delta = 0 // gain unused; frontier membership only
		}
		for _, w := range g.nl.NetPins(e) {
			if t.Has(int(w)) {
				continue
			}
			fe := &g.front[w]
			if fe.stamp&epochMask != g.epoch {
				fe.stamp = g.epoch
				g.touched = append(g.touched, w)
				fe.gain = 0
				switch g.opt.Ordering {
				case OrderBFS:
					// Discovery order: earlier index wins. Encode as
					// constant gain with index tiebreak.
					fe.tie = int32(len(g.touched))
					g.bheap.Push(w, 0, fe.tie)
				case OrderMinCut:
					fe.tie = int32(t.DeltaCut(w))
					g.bheap.Push(w, 0, fe.tie)
				default:
					fe.tie = 0
				}
			}
			switch g.opt.Ordering {
			case OrderWeighted:
				fe.gain += delta
				g.bheap.Push(w, fe.gain, fe.tie)
			case OrderMinCut:
				// Gain stays 0; cut deltas are re-verified at pop.
			}
		}
	}
}
