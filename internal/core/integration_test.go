package core

import (
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func overlapCount(a []netlist.CellID, set map[netlist.CellID]bool) int {
	n := 0
	for _, c := range a {
		if set[c] {
			n++
		}
	}
	return n
}

// TestFindIndustrialBlocks is the Table 3 scenario: five dissolved-ROM
// blocks in a host circuit, all of which the finder must recover with
// tight size agreement.
func TestFindIndustrialBlocks(t *testing.T) {
	d, err := generate.NewIndustrialProxy(0.04, 3) // blocks ~1275/437 cells
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	// The paper uses 100 seeds; we use a few more because the scaled
	// proxy's smallest block covers only ~2% of the cells and every
	// block must receive at least one seed for the 5/5 recovery check.
	opt.Seeds = 160
	opt.MaxOrderLen = 4000
	res, err := Find(d.Netlist, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("found %d GTLs from %d candidates (|V|=%d)", len(res.GTLs), res.Candidates, d.Netlist.NumCells())
	recovered := 0
	for i, truth := range d.Structures {
		in := make(map[netlist.CellID]bool, len(truth))
		for _, c := range truth {
			in[c] = true
		}
		best, bestHit := -1, 0
		for gi := range res.GTLs {
			if hit := overlapCount(res.GTLs[gi].Members, in); hit > bestHit {
				bestHit, best = hit, gi
			}
		}
		if best < 0 {
			t.Errorf("block %d (%d cells): not found", i, len(truth))
			continue
		}
		g := &res.GTLs[best]
		missFrac := 1 - float64(bestHit)/float64(len(truth))
		overFrac := float64(g.Size()-bestHit) / float64(len(truth))
		t.Logf("block %d: truth=%d found=%d cut=%d score=%.4f miss=%.2f%% over=%.2f%%",
			i, len(truth), g.Size(), g.Cut, g.Score, 100*missFrac, 100*overFrac)
		if missFrac <= 0.05 && overFrac <= 0.05 {
			recovered++
		}
	}
	if recovered < len(d.Structures) {
		t.Errorf("recovered %d of %d blocks within 5%%", recovered, len(d.Structures))
	}
}

// TestFindISPDStructures is the Table 2 scenario: the finder should
// return a healthy population of disjoint GTLs on an ISPD-profile
// proxy, with top scores well below 1.
func TestFindISPDStructures(t *testing.T) {
	p, _ := generate.ProfileByName("adaptec1")
	d, err := generate.NewISPDProxy(p, 0.04, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 80
	opt.MaxOrderLen = 4000
	res, err := Find(d.Netlist, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("|V|=%d planted=%d found=%d candidates=%d",
		d.Netlist.NumCells(), len(d.Structures), len(res.GTLs), res.Candidates)
	if len(res.GTLs) < 5 {
		t.Fatalf("found only %d GTLs, want >= 5", len(res.GTLs))
	}
	if res.GTLs[0].Score > 0.3 {
		t.Errorf("best GTL score = %.3f, want « 1", res.GTLs[0].Score)
	}
	// All returned GTLs must be pairwise disjoint (the pruning
	// contract).
	seen := make(map[netlist.CellID]bool)
	for _, g := range res.GTLs {
		for _, c := range g.Members {
			if seen[c] {
				t.Fatalf("GTLs overlap at cell %d", c)
			}
			seen[c] = true
		}
	}
	// Most found GTLs should correspond to planted structures: count
	// found GTLs whose majority of cells lie in some planted block.
	planted := make(map[netlist.CellID]int)
	for bi, block := range d.Structures {
		for _, c := range block {
			planted[c] = bi + 1
		}
	}
	matched := 0
	for _, g := range res.GTLs {
		inPlanted := 0
		for _, c := range g.Members {
			if planted[c] != 0 {
				inPlanted++
			}
		}
		if 2*inPlanted > g.Size() {
			matched++
		}
	}
	t.Logf("%d of %d found GTLs are majority-planted", matched, len(res.GTLs))
	if matched*3 < len(res.GTLs)*2 {
		t.Errorf("only %d of %d GTLs correspond to planted structures", matched, len(res.GTLs))
	}
}
