// Package core implements the paper's contribution: the
// TangledLogicFinder, a three-phase randomized algorithm that detects
// groups of tangled logic (GTLs) in a synthesized netlist.
//
//   - Phase I grows a linear ordering of cells from a random seed,
//     always taking the frontier cell with the strongest connection
//     weight Σ 1/(λ(e)+1) to the group, ties broken by minimum net cut.
//   - Phase II scores every prefix of the ordering with the Rent-based
//     GTL metrics and extracts the prefix at a clear interior minimum
//     as a candidate GTL.
//   - Phase III re-seeds from inside each candidate, combines the
//     resulting sets with union/intersection/difference operations,
//     keeps the best-scoring combination, and finally prunes
//     overlapping inferior candidates to yield a disjoint set of GTLs.
//
// All seeds run in parallel (the paper used 8 pthreads; we use a
// goroutine worker pool) and the run is deterministic for a fixed
// Options.RandSeed regardless of scheduling.
package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
)

// ErrUnsupportedOptions is returned when an engine entry point is
// asked for an option combination it does not implement — sharded or
// incremental runs with Levels > 1. It is a typed, wrappable error so
// serving layers can map it to a client-fault status (HTTP 422)
// instead of a generic server failure.
var ErrUnsupportedOptions = errors.New("core: unsupported options")

// Metric selects the score Φ that drives candidate extraction,
// refinement and pruning.
type Metric int

const (
	// MetricGTLSD uses the density-aware GTL-Score (the paper's final
	// metric; its minima contrast most sharply, per Figure 3).
	MetricGTLSD Metric = iota
	// MetricNGTLS uses the normalized GTL-Score.
	MetricNGTLS
)

// String returns the metric's paper name.
func (m Metric) String() string {
	switch m {
	case MetricGTLSD:
		return "GTL-SD"
	case MetricNGTLS:
		return "nGTL-S"
	}
	return "unknown"
}

// ParseMetric maps a metric name — the CLI/JSON form ("gtlsd",
// "ngtls") or the paper form ("GTL-SD", "nGTL-S") — to its constant.
func ParseMetric(s string) (Metric, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gtlsd", "gtl-sd":
		return MetricGTLSD, nil
	case "ngtls", "ngtl-s":
		return MetricNGTLS, nil
	}
	return 0, fmt.Errorf("core: unknown metric %q (want gtlsd or ngtls)", s)
}

// jsonName is the wire form of the metric (matches the CLI flags).
func (m Metric) jsonName() string {
	if m == MetricNGTLS {
		return "ngtls"
	}
	return "gtlsd"
}

// MarshalJSON encodes the metric as its wire name.
func (m Metric) MarshalJSON() ([]byte, error) { return json.Marshal(m.jsonName()) }

// UnmarshalJSON accepts a metric name (or a bare constant for
// compatibility with naive encoders).
func (m *Metric) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		var n int
		if json.Unmarshal(b, &n) == nil && (n == int(MetricGTLSD) || n == int(MetricNGTLS)) {
			*m = Metric(n)
			return nil
		}
		return fmt.Errorf("core: metric must be a string: %w", err)
	}
	v, err := ParseMetric(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Ordering selects the Phase I growth rule; variants other than
// OrderWeighted exist for the ablation benchmarks.
type Ordering int

const (
	// OrderWeighted is the paper's rule: maximize Σ 1/(λ(e)+1), break
	// ties by minimum cut delta.
	OrderWeighted Ordering = iota
	// OrderMinCut greedily minimizes the net cut alone — the
	// alternative the paper argues against in §3.2.1.
	OrderMinCut
	// OrderBFS adds frontier cells in breadth-first discovery order, a
	// connectivity-blind baseline.
	OrderBFS
)

// String names the ordering rule.
func (o Ordering) String() string {
	switch o {
	case OrderWeighted:
		return "weighted"
	case OrderMinCut:
		return "mincut"
	case OrderBFS:
		return "bfs"
	}
	return "unknown"
}

// ParseOrdering maps an ordering name to its constant.
func ParseOrdering(s string) (Ordering, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "weighted":
		return OrderWeighted, nil
	case "mincut":
		return OrderMinCut, nil
	case "bfs":
		return OrderBFS, nil
	}
	return 0, fmt.Errorf("core: unknown ordering %q (want weighted, mincut or bfs)", s)
}

// MarshalJSON encodes the ordering as its name.
func (o Ordering) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// UnmarshalJSON accepts an ordering name (or a bare constant).
func (o *Ordering) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		var n int
		if json.Unmarshal(b, &n) == nil && n >= int(OrderWeighted) && n <= int(OrderBFS) {
			*o = Ordering(n)
			return nil
		}
		return fmt.Errorf("core: ordering must be a string: %w", err)
	}
	v, err := ParseOrdering(s)
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// Options configures a finder run. The zero value is not valid; start
// from DefaultOptions.
//
// Options is JSON-round-trippable: every field that affects results
// carries a struct tag (Metric and Ordering serialize as their names),
// and ParseOptions turns a JSON document into validated Options with
// unspecified fields at their defaults. Progress is a callback and is
// never serialized.
type Options struct {
	// Seeds is m, the number of random starting cells (paper: 100).
	Seeds int `json:"seeds"`
	// MaxOrderLen is Z, the cap on each linear ordering's length
	// (paper: 100K). It is clamped to the netlist size.
	MaxOrderLen int `json:"max_order_len"`
	// Metric is Φ, the score driving extraction and pruning.
	Metric Metric `json:"metric"`
	// Ordering is the Phase I growth rule (OrderWeighted = paper).
	Ordering Ordering `json:"ordering"`
	// MinGroupSize is the smallest prefix considered in Phase II; the
	// paper does "not care about tiny clusters with a handful of
	// cells".
	MinGroupSize int `json:"min_group_size"`
	// AcceptThreshold is the largest Φ value a candidate minimum may
	// have. Average-quality groups score ≈ 1, strong GTLs « 1.
	AcceptThreshold float64 `json:"accept_threshold"`
	// DipRatio qualifies a "clear minimum": the minimum must be at
	// most DipRatio times the curve value at both ends of the search
	// window, rejecting monotone curves from seeds outside any GTL.
	DipRatio float64 `json:"dip_ratio"`
	// BigNetSkip is the λ(e) threshold above which Phase I skips
	// connection-weight updates for a net (paper: 20).
	BigNetSkip int `json:"big_net_skip"`
	// RefineSeeds is the number of interior re-seeds per candidate in
	// Phase III (paper: 3).
	RefineSeeds int `json:"refine_seeds"`
	// PruneOverlapTolerance is the fraction of a candidate's cells
	// allowed to collide with already-accepted GTLs during final
	// pruning; colliding cells are trimmed and the remainder kept.
	// Candidate growth can absorb a few "junction" cells that sit on
	// the boundary nets of two structures, and pruning on any
	// single-cell overlap would then discard a whole structure — the
	// paper notes a few extra cells are negligible (§5.1.1).
	PruneOverlapTolerance float64 `json:"prune_overlap_tolerance"`
	// Refine disables Phase III when false (ablation).
	Refine bool `json:"refine"`
	// Levels selects the multilevel pipeline depth: the netlist is
	// coarsened Levels-1 times by heavy-edge matching, seeds grow on
	// the coarsest level, and winning groups are projected down and
	// boundary-refined at each finer level. Levels <= 1 runs the
	// classic flat pipeline (bit-identical to pre-multilevel results).
	// The hierarchy may come out shallower than requested when
	// coarsening hits MinCoarseCells or stops making progress.
	Levels int `json:"levels"`
	// MinCoarseCells stops coarsening once a level has at most this
	// many cells, so detection always has enough exterior to contrast
	// candidates against (0 means netlist.DefaultMinCoarseCells).
	MinCoarseCells int `json:"min_coarse_cells"`
	// RefineRadius bounds the boundary-refinement sweeps per level
	// after projection: each sweep scans the projected group's
	// frontier once and greedily absorbs score-improving cells. 0
	// projects without refinement (fastest, coarsest boundaries).
	RefineRadius int `json:"refine_radius"`
	// DirtyRadius widens the dirty set FindIncremental guards seed
	// reuse against: cells within this BFS hop count of a delta's
	// dirty cells are treated as dirty too. The default 0 trusts the
	// exact read-set analysis (a seed replays only if no recorded
	// read could have changed — sound by construction, and what the
	// deltatest differential harness exercises); positive radii are a
	// pure conservatism margin. Each hop multiplies the dirty region
	// by the average net fan-out — one hub net can inflate it to
	// thousands of cells — so large radii rapidly erase reuse. It
	// never changes results, only how much work a run may reuse.
	DirtyRadius int `json:"dirty_radius"`
	// IncrementalFallback is the dirty-region fraction of the netlist
	// above which FindIncremental abandons reuse and runs the full
	// pipeline (edits that large dirty most seed footprints anyway).
	IncrementalFallback float64 `json:"incremental_fallback"`
	// RecordIncremental makes a flat run retain per-seed structural
	// state (orderings, score-curve inputs, read footprints) on the
	// Result so a later FindIncremental can reuse clean seeds. It
	// never changes results; it costs O(Seeds × MaxOrderLen) memory
	// on the returned Result.
	RecordIncremental bool `json:"record_incremental,omitempty"`
	// Workers caps the goroutine pool; <= 0 means GOMAXPROCS. Workers
	// never changes results, only scheduling.
	Workers int `json:"workers,omitempty"`
	// Relabel runs the seeded-growth phases in a locality-permuted
	// shadow id space (reverse Cuthill–McKee over the cells; see
	// relabel.go), translating seeds in and members/footprints back out
	// at the shard boundary. It trades a one-time O(cells + pins)
	// shadow build plus ~1x extra netlist memory for cache-friendly
	// frontier and CSR access on id-scattered netlists. Results are
	// set-identical to a Relabel=off run with bitwise-equal scores;
	// member order inside recombined groups may differ, which is why
	// this is a result-affecting option (it participates in
	// IncrementalKey and job cache keys) despite changing no group or
	// score.
	Relabel bool `json:"relabel,omitempty"`
	// RandSeed makes the whole run reproducible.
	RandSeed uint64 `json:"rand_seed"`
	// KeepCurves retains each seed's score curve in the result (memory
	// heavy; used by the figure generators).
	KeepCurves bool `json:"keep_curves,omitempty"`
	// Progress, when non-nil, receives engine progress snapshots after
	// every completed seed. It has no effect on results. Calls are
	// serialized but may come from any worker goroutine; keep it fast.
	Progress ProgressFunc `json:"-"`
}

// DefaultOptions returns the paper's parameter settings.
func DefaultOptions() Options {
	return Options{
		Seeds:                 100,
		MaxOrderLen:           100_000,
		Metric:                MetricGTLSD,
		Ordering:              OrderWeighted,
		MinGroupSize:          24,
		AcceptThreshold:       0.8,
		DipRatio:              0.75,
		BigNetSkip:            20,
		RefineSeeds:           3,
		Refine:                true,
		PruneOverlapTolerance: 0.02,
		Levels:                1,
		MinCoarseCells:        0, // netlist.DefaultMinCoarseCells
		RefineRadius:          2,
		DirtyRadius:           0,
		IncrementalFallback:   0.25,
		Workers:               0,
		RandSeed:              1,
	}
}

// IncrementalKey canonicalizes the result-affecting options into a
// fingerprint string. Two runs whose keys match compute identical
// results for identical netlists, which is the compatibility check
// FindIncremental applies before reusing recorded seed state: fields
// that only steer scheduling, memory or incremental bookkeeping
// (Workers, Progress, KeepCurves, RecordIncremental, DirtyRadius,
// IncrementalFallback) are excluded.
func (o Options) IncrementalKey() string {
	o.Workers = 0
	o.Progress = nil
	o.KeepCurves = false
	o.RecordIncremental = false
	o.DirtyRadius = 0
	o.IncrementalFallback = 0
	data, err := json.Marshal(o)
	if err != nil {
		// Options is a plain tagged struct; this cannot fail, but never
		// let two different configurations collapse onto one key.
		return fmt.Sprintf("unmarshalable:%+v", o)
	}
	return string(data)
}

// ParseOptions decodes a JSON document into Options. Fields absent
// from the document keep their DefaultOptions values, unknown fields
// are rejected (catching typos that would silently fall back to a
// default), and the result is validated — so API layers can hand the
// returned Options straight to the engine. An empty or all-whitespace
// document yields DefaultOptions.
func ParseOptions(data []byte) (Options, error) {
	opt := DefaultOptions()
	if len(bytes.TrimSpace(data)) == 0 {
		return opt, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opt); err != nil {
		return Options{}, fmt.Errorf("core: parse options: %w", err)
	}
	if dec.More() {
		return Options{}, fmt.Errorf("core: parse options: trailing data after JSON document")
	}
	if err := opt.validate(); err != nil {
		return Options{}, err
	}
	return opt, nil
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// validate is the single place options are sanity-checked; every engine
// entry point calls it before touching the netlist. Workers needs no
// check (<= 0 means GOMAXPROCS) and Progress/KeepCurves are free-form.
func (o *Options) validate() error {
	switch {
	case o.Seeds <= 0:
		return fmt.Errorf("core: Seeds must be positive, got %d", o.Seeds)
	case o.MaxOrderLen < 2:
		return fmt.Errorf("core: MaxOrderLen must be at least 2, got %d", o.MaxOrderLen)
	case o.MinGroupSize < 0:
		return fmt.Errorf("core: MinGroupSize must be non-negative, got %d", o.MinGroupSize)
	case o.AcceptThreshold <= 0:
		return fmt.Errorf("core: AcceptThreshold must be positive, got %g", o.AcceptThreshold)
	case o.DipRatio <= 0:
		return fmt.Errorf("core: DipRatio must be positive, got %g", o.DipRatio)
	case o.BigNetSkip < 0:
		return fmt.Errorf("core: BigNetSkip must be non-negative (0 disables), got %d", o.BigNetSkip)
	case o.RefineSeeds < 0:
		return fmt.Errorf("core: RefineSeeds must be non-negative, got %d", o.RefineSeeds)
	case o.PruneOverlapTolerance < 0:
		return fmt.Errorf("core: PruneOverlapTolerance must be non-negative, got %g", o.PruneOverlapTolerance)
	case o.Levels < 0 || o.Levels > 16:
		return fmt.Errorf("core: Levels must be in [0,16] (0 and 1 both mean flat), got %d", o.Levels)
	case o.MinCoarseCells < 0:
		return fmt.Errorf("core: MinCoarseCells must be non-negative (0 means the default floor), got %d", o.MinCoarseCells)
	case o.RefineRadius < 0:
		return fmt.Errorf("core: RefineRadius must be non-negative (0 disables boundary refinement), got %d", o.RefineRadius)
	case o.DirtyRadius < 0:
		return fmt.Errorf("core: DirtyRadius must be non-negative, got %d", o.DirtyRadius)
	case o.IncrementalFallback < 0 || o.IncrementalFallback > 1:
		return fmt.Errorf("core: IncrementalFallback must be in [0,1], got %g", o.IncrementalFallback)
	}
	return nil
}
