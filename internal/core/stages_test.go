package core

import (
	"context"
	"encoding/json"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func stagesWorkload(t testing.TB) (*generate.RandomGraph, Options) {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 400}},
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 16
	opt.MaxOrderLen = 600
	return rg, opt
}

// TestFlatRunStages locks the contract the serving layer builds on:
// every completed run carries a non-nil Stages map with the flat
// pipeline's phases, and the breakdown survives a JSON round-trip.
func TestFlatRunStages(t *testing.T) {
	rg, opt := stagesWorkload(t)
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages == nil {
		t.Fatal("completed run has nil Stages")
	}
	for _, stage := range []string{StageGrow, StageScore, StageRecombine, StagePrune} {
		if res.Stages[stage] <= 0 {
			t.Errorf("stage %q missing or non-positive: %v", stage, res.Stages)
		}
	}
	for _, stage := range []string{StageCoarseDetect, StageProject, StageReplay, StageReseed} {
		if _, ok := res.Stages[stage]; ok {
			t.Errorf("flat run reports multilevel/incremental stage %q: %v", stage, res.Stages)
		}
	}
	data, err := json.Marshal(res.Stages)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]float64
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("stages JSON %s: %v", data, err)
	}
	if back[StageGrow] <= 0 {
		t.Errorf("marshaled grow ms = %v", back[StageGrow])
	}
	if res.Sched == nil || len(res.Sched.WorkerBusyNS) == 0 {
		t.Fatalf("sched missing worker busy clocks: %+v", res.Sched)
	}
	var busy int64
	for _, ns := range res.Sched.WorkerBusyNS {
		busy += ns
	}
	if busy <= 0 {
		t.Errorf("total worker busy time = %d", busy)
	}
}

// TestMultilevelRunStages: the descent adds coarse_detect and project
// on top of the coarse run's per-seed phases.
func TestMultilevelRunStages(t *testing.T) {
	rg, opt := stagesWorkload(t)
	opt.Levels = 2
	opt.MinCoarseCells = 1024
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{StageGrow, StagePrune, StageCoarseDetect, StageProject} {
		if res.Stages[stage] <= 0 {
			t.Errorf("stage %q missing: %v", stage, res.Stages)
		}
	}
}

// TestIncrementalRunStages: a replaying run reports the replay/reseed
// wall-time split next to the usual phases.
func TestIncrementalRunStages(t *testing.T) {
	rg, opt := stagesWorkload(t)
	opt.RecordIncremental = true
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	prev, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist
	e := netlist.NetID(nl.NumNets() - 1)
	cells := append([]netlist.CellID{0, 1}, nl.NetPins(e)...)
	d := &netlist.Delta{SetNets: []netlist.NetEdit{{Net: e, Cells: cells[:2]}}}
	patched, eff, err := d.Apply(nl)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFinder(patched)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := fi.FindIncremental(ctx, opt, prev, eff.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if incr.Incremental == nil || incr.Incremental.FullFallback {
		t.Fatalf("expected a replaying run: %+v", incr.Incremental)
	}
	if incr.Incremental.ReusedSeeds > 0 && incr.Stages[StageReplay] <= 0 {
		t.Errorf("replayed %d seeds but no replay stage: %v", incr.Incremental.ReusedSeeds, incr.Stages)
	}
	if incr.Incremental.RerunSeeds > 0 && incr.Stages[StageReseed] <= 0 {
		t.Errorf("reran %d seeds but no reseed stage: %v", incr.Incremental.RerunSeeds, incr.Stages)
	}
	if incr.Stages[StagePrune] <= 0 {
		t.Errorf("incremental run missing prune stage: %v", incr.Stages)
	}
}

// TestShardMergeStages: merged shards sum their per-seed phases into
// the final result, and ShardResult exposes its own breakdown.
func TestShardMergeStages(t *testing.T) {
	rg, opt := stagesWorkload(t)
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mid := opt.Seeds / 2
	s1, err := f.FindShard(ctx, opt, 0, mid)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.FindShard(ctx, opt, mid, opt.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stages()[StageGrow] <= 0 {
		t.Errorf("shard stages missing grow: %v", s1.Stages())
	}
	res, err := f.Merge(opt, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want := s1.Stages()[StageGrow] + s2.Stages()[StageGrow]
	if res.Stages[StageGrow] != want {
		t.Errorf("merged grow = %v, want %v", res.Stages[StageGrow], want)
	}
	if res.Stages[StagePrune] <= 0 {
		t.Errorf("merged result missing prune: %v", res.Stages)
	}
}

// TestSetStageTiming: disabling per-seed accounting removes the phase
// entries and worker clocks while per-run stamps (prune) survive —
// and never changes detection results.
func TestSetStageTiming(t *testing.T) {
	rg, opt := stagesWorkload(t)
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	on, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}

	if prev := SetStageTiming(false); !prev {
		t.Error("default stage timing should be on")
	}
	defer SetStageTiming(true)
	if StageTimingEnabled() {
		t.Error("StageTimingEnabled after SetStageTiming(false)")
	}
	off, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{StageGrow, StageScore, StageRecombine} {
		if _, ok := off.Stages[stage]; ok {
			t.Errorf("per-seed stage %q present with timing off: %v", stage, off.Stages)
		}
	}
	if off.Stages == nil || off.Stages[StagePrune] <= 0 {
		t.Errorf("per-run prune stamp should survive the toggle: %v", off.Stages)
	}
	if off.Sched == nil || len(off.Sched.WorkerBusyNS) != 0 {
		t.Errorf("worker clocks present with timing off: %+v", off.Sched)
	}

	if len(on.GTLs) != len(off.GTLs) {
		t.Fatalf("timing toggle changed results: %d vs %d GTLs", len(on.GTLs), len(off.GTLs))
	}
	for i := range on.GTLs {
		if on.GTLs[i].Score != off.GTLs[i].Score || on.GTLs[i].Size() != off.GTLs[i].Size() {
			t.Fatalf("timing toggle changed GTL %d", i)
		}
	}
}
