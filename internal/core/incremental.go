package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"tanglefind/internal/ds"
	"tanglefind/internal/group"
	"tanglefind/internal/netlist"
)

// Incremental detection.
//
// An ECO edit perturbs a handful of nets; the paper's structures are
// local, so most seeds of a re-run would read exactly the bytes they
// read last time. FindIncremental exploits that with an exact-replay
// argument rather than a heuristic:
//
//   - A recorded run (Options.RecordIncremental) stores, per seed, the
//     structural outcome of every growth — the ordering members and
//     the per-prefix cut/pin totals Phase II scores are computed from
//     — plus the growth's exact read set (its "footprint": ordering
//     members plus the frontier cells whose own pin runs the grower
//     re-verified). Scores themselves are NOT stored: they depend on
//     the netlist-wide A(G), which almost every delta changes.
//   - A delta reports its dirty cells: every cell on a touched net,
//     old or new side. A net incident to any cell a seed read is
//     touched only if that cell is dirty, so footprint ∩ dirty = ∅
//     proves the seed's growths would re-run byte-for-byte.
//   - For such seeds, replay re-derives Phase II from the stored
//     cut/pin curves under the patched netlist's A(G) (GTL-SD couples
//     A_G into the score exponent, so extraction must genuinely be
//     re-decided), re-evaluates candidate sets on the patched netlist
//     and re-runs recombination — identical to what a full run would
//     compute, at O(ordering length) cost instead of a growth.
//   - Seeds whose footprint intersects the (DirtyRadius-expanded)
//     dirty region, or whose replay diverges from the recorded control
//     flow (an extraction flipped under the new A_G), re-run the full
//     growth pipeline. Phase III pruning is global and always re-runs.
//
// The differential guarantee — incremental output equals a full run on
// the patched netlist — is locked by internal/netlist/deltatest.

// ordRecord is the structural (A_G-independent) content of one growth:
// the ordering and the per-prefix totals its score curve derives from.
type ordRecord struct {
	members []netlist.CellID
	cuts    []int32
	pins    []int64
	rent    float64 // averageRent of the ordering; structural too
}

func copyOrdRecord(o *OrderingStats, rent float64) ordRecord {
	return ordRecord{
		members: append([]netlist.CellID(nil), o.Members...),
		cuts:    append([]int32(nil), o.Cuts...),
		pins:    append([]int64(nil), o.Pins...),
		rent:    rent,
	}
}

// refineRecord is one Phase III re-growth: the interior cell drawn
// (verified on replay against the reproduced RNG stream), its growth
// record and its Phase II outcome at record time — the latter lets
// A_G-preserving replays skip rescoring entirely.
type refineRecord struct {
	seed      netlist.CellID
	ord       ordRecord
	extracted bool
	size      int
}

// seedRecord is everything one executed seed needs for exact replay.
type seedRecord struct {
	seed netlist.CellID
	// foot is the union read set of all the seed's growths. For
	// OrderWeighted/OrderBFS that is members ∪ examined (unexamined
	// frontier cells contribute only gains, which are functions of
	// member-incident nets — and a touched member-incident net makes
	// the member itself dirty); OrderMinCut reads every frontier
	// cell's pin run at insert, so there the whole touched set counts.
	foot      *ds.Bitset
	aG        float64 // A(G) the curves were scored under
	ord       ordRecord
	extracted bool    // Phase II outcome at record time
	size      int     // extraction size at record time
	score     float64 // extraction score at record time
	refine    []refineRecord
}

// markFootprint folds the grower's current growth into the record's
// read set; must run before the grower's next grow call resets it.
func (rec *seedRecord) markFootprint(gr *grower) {
	if gr.opt.Ordering == OrderMinCut {
		for _, c := range gr.touched {
			rec.foot.Add(int(c))
		}
		return
	}
	for _, c := range gr.ord.Members {
		rec.foot.Add(int(c))
	}
	for _, c := range gr.examined {
		rec.foot.Add(int(c))
	}
}

// IncrementalState is the recorded per-seed state of one run, attached
// to its Result under Options.RecordIncremental and consumed by
// FindIncremental. For a flat run it holds the per-seed records
// directly; for a multilevel run it wraps the coarsest level's state
// together with the coarse netlist it was recorded on, so a later run
// can diff its own coarsening against the recorded one and replay
// coarse seeds. It is immutable once built; replayed seeds of an
// incremental run share their records with the previous state, so
// chains of deltas stay cheap.
type IncrementalState struct {
	cells  int    // NumCells of the recorded run's netlist
	maxLen int    // effective ordering cap min(MaxOrderLen, cells)
	key    string // Options.IncrementalKey of the recorded run
	seeds  []*seedRecord

	// Multilevel wrapping (nil/zero for flat states): the recorded
	// run's Levels, the coarsest-level netlist it detected on, and the
	// coarse-level state recorded there.
	levels   int
	coarseNl *netlist.Netlist
	inner    *IncrementalState
}

// wrapMLIncrState wraps a coarse-level recorded state as the
// multilevel state of the fine run: outer key/cells/maxLen describe
// the fine run (so a flat FindIncremental can cheaply reject it), the
// inner state and coarse netlist feed the coarse diff-and-replay.
func wrapMLIncrState(opt *Options, fineCells int, coarseNl *netlist.Netlist, inner *IncrementalState) *IncrementalState {
	maxLen := opt.MaxOrderLen
	if maxLen > fineCells {
		maxLen = fineCells
	}
	return &IncrementalState{
		cells:    fineCells,
		maxLen:   maxLen,
		key:      opt.IncrementalKey(),
		levels:   opt.Levels,
		coarseNl: coarseNl,
		inner:    inner,
	}
}

// Seeds reports how many executed seeds the state holds (the coarse
// level's, for a multilevel state).
func (st *IncrementalState) Seeds() int {
	if st.inner != nil {
		return st.inner.Seeds()
	}
	n := 0
	for _, r := range st.seeds {
		if r != nil {
			n++
		}
	}
	return n
}

// MemoryEstimate reports the state's retained bytes: footprint bitsets
// plus the stored growth records, and for multilevel states the
// retained coarse netlist plus the wrapped coarse state.
func (st *IncrementalState) MemoryEstimate() int64 {
	var b int64
	if st.inner != nil {
		b += st.inner.MemoryEstimate()
	}
	if st.coarseNl != nil {
		b += st.coarseNl.MemoryFootprint()
	}
	ord := func(o *ordRecord) {
		b += int64(cap(o.members))*4 + int64(cap(o.cuts))*4 + int64(cap(o.pins))*8
	}
	for _, r := range st.seeds {
		if r == nil {
			continue
		}
		b += int64(r.foot.Capacity()) / 8
		ord(&r.ord)
		for i := range r.refine {
			ord(&r.refine[i].ord)
		}
	}
	return b
}

// buildIncrState indexes completed shard records by seed index.
func (f *Finder) buildIncrState(opt *Options, outs []shardOut, recs []*seedRecord) *IncrementalState {
	if recs == nil {
		return nil
	}
	st := &IncrementalState{
		cells: f.nl.NumCells(),
		key:   opt.IncrementalKey(),
		seeds: make([]*seedRecord, opt.Seeds),
	}
	st.maxLen = opt.MaxOrderLen
	if st.maxLen > st.cells {
		st.maxLen = st.cells
	}
	for k := range outs {
		st.seeds[outs[k].idx] = recs[k]
	}
	return st
}

// rescoreInto recomputes a growth's Phase II curve from its structural
// record under a (possibly new) A(G), through the same scoring loop a
// live re-growth would run (scoreCurveWithRent) with the stored
// structural rent — so a replayed curve is bit-identical by
// construction.
func rescoreInto(c *Curve, rec *ordRecord, m Metric, aG float64) {
	o := OrderingStats{Members: rec.members, Cuts: rec.cuts, Pins: rec.pins}
	scoreCurveWithRent(c, &o, rec.rent, m, aG)
}

// replaySeed reproduces one recorded seed's outcome on the patched
// netlist without re-growing. It reports ok=false when the replay
// would diverge from the recorded control flow — a Phase II extraction
// that flipped or moved under the new A(G) changes which interior
// cells Phase III draws, so the seed must re-run its growths instead.
//
// When the patched A(G) is bitwise-identical to the recorded one (the
// common case for pin-count-preserving ECO edits: reconnects, splits,
// merges) the recorded Phase II outcomes ARE this run's outcomes, so
// rescoring is skipped entirely and the replay is just the candidate
// set evaluations and recombination.
func (f *Finder) replaySeed(ws *workerState, rec *seedRecord, idx int, opt *Options) (shardOut, bool) {
	sameAG := rec.aG == f.aG && !opt.KeepCurves
	out := shardOut{idx: idx}
	out.trace = SeedTrace{Seed: rec.seed, OrderLen: len(rec.ord.members)}
	var ex extraction
	if sameAG {
		if !rec.extracted {
			return out, true
		}
		ex = extraction{size: rec.size, score: rec.score, rent: rec.ord.rent, ok: true}
	} else {
		curve := &ws.gr.curve
		if opt.KeepCurves {
			curve = &Curve{}
		}
		rescoreInto(curve, &rec.ord, opt.Metric, f.aG)
		ex = extract(curve, opt)
		if opt.KeepCurves {
			out.trace.Curve = curve
		}
		if !ex.ok {
			// A full run would reject this curve too (same integers,
			// same A_G): no candidate, no Phase III, nothing to replay.
			return out, true
		}
		if !rec.extracted || ex.size != rec.size {
			return shardOut{}, false
		}
	}
	out.trace.Extracted = true
	out.trace.Size = ex.size
	out.trace.Score = ex.score

	base := ws.ev.Eval(rec.ord.members[:ex.size])
	if !opt.Refine {
		out.cand, out.score, out.rent = &base, ex.score, ex.rent
		return out, true
	}
	rng := seedRNG(opt.RandSeed, idx)
	family := []group.Set{base}
	var rc Curve
	for r := 0; r < opt.RefineSeeds && base.Size() > 0; r++ {
		if r >= len(rec.refine) {
			return shardOut{}, false
		}
		s := base.Members[rng.Intn(base.Size())]
		rr := &rec.refine[r]
		if rr.seed != s {
			return shardOut{}, false
		}
		ok2, size2 := rr.extracted, rr.size
		if !sameAG {
			rescoreInto(&rc, &rr.ord, opt.Metric, f.aG)
			ex2 := extract(&rc, opt)
			ok2, size2 = ex2.ok, ex2.size
		}
		if !ok2 {
			continue
		}
		family = append(family, ws.ev.Eval(rr.ord.members[:size2]))
	}
	refined, score := recombine(ws.ev, &ws.gr.combo, family, ex, opt, f.aG)
	out.cand, out.score, out.rent = refined, score, ex.rent
	return out, true
}

// expandDirty grows the dirty set by `radius` BFS hops over the
// patched netlist (through nets, so one hop reaches every co-pinned
// cell). Out-of-range ids — cells a delta truncated away — are
// dropped; their former neighbors are dirty in their own right.
func expandDirty(nl *netlist.Netlist, dirty []netlist.CellID, radius int) *ds.Bitset {
	n := nl.NumCells()
	region := ds.NewBitset(n)
	frontier := make([]netlist.CellID, 0, len(dirty))
	for _, c := range dirty {
		if c >= 0 && int(c) < n && region.Add(int(c)) {
			frontier = append(frontier, c)
		}
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []netlist.CellID
		for _, c := range frontier {
			for _, e := range nl.CellPins(c) {
				for _, w := range nl.NetPins(e) {
					if region.Add(int(w)) {
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	return region
}

// reusableRecord returns seed index i's record when it can be replayed
// against the given dirty region, nil when the seed must re-run.
func (st *IncrementalState) reusableRecord(i int, id netlist.CellID, region *ds.Bitset) *seedRecord {
	if i >= len(st.seeds) {
		return nil
	}
	rec := st.seeds[i]
	if rec == nil || rec.seed != id {
		return nil
	}
	if rec.foot.IntersectsWith(region) {
		return nil
	}
	return rec
}

// FindIncremental runs detection over the engine's (patched) netlist
// after a delta, reusing the recorded state of a previous run where
// the edit provably cannot have changed a seed's computation. dirty is
// the delta's dirty cell set in the patched netlist's id space
// (DeltaEffect.Dirty); prev is the previous run's Result, which must
// carry IncrState (a run made with Options.RecordIncremental — or a
// previous FindIncremental, so delta chains compose).
//
// The output is exactly what Find would return on the same netlist and
// Options — same groups, same scores — only faster; the differential
// harness in internal/netlist/deltatest enforces this. When reuse is
// impossible (no state, changed options, or a dirty region past
// Options.IncrementalFallback of the netlist) it degrades to a full
// run and says so in Result.Incremental.
//
// With Options.Levels > 1 the engine rebuilds the hierarchy over the
// patched netlist, diffs its coarsest level against the recorded
// run's (netlist.DiffDirty), replays coarse seeds whose footprints
// miss the coarse diff, and re-runs the projection descent — so
// multilevel and incremental compose. A reshaped coarsening (the diff
// is not local) degrades to a full multilevel run, reported in
// Result.Incremental like every other fallback.
func (f *Finder) FindIncremental(ctx context.Context, opt Options, prev *Result, dirty []netlist.CellID) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Levels > 1 {
		return f.findIncrementalMultilevel(ctx, &opt, prev, dirty)
	}
	return f.findIncrementalFlat(ctx, &opt, prev, dirty)
}

// findIncrementalMultilevel composes incremental replay with the
// multilevel pipeline: coarsen the patched netlist, localize the edit
// at the coarsest level by diffing against the recorded coarse
// netlist, run the flat incremental machinery there, then project the
// result down as any multilevel run would.
func (f *Finder) findIncrementalMultilevel(ctx context.Context, opt *Options, prev *Result, dirty []netlist.CellID) (*Result, error) {
	start := time.Now()
	ms, err := f.multilevelState(opt)
	if err != nil {
		return nil, err
	}
	L := ms.hier.NumLevels()
	if L == 1 {
		// Degenerate hierarchy (netlist at or below the coarsening
		// floor): a recorded run under these options degenerated the
		// same way, so flat incremental is multilevel incremental.
		return f.findIncrementalFlat(ctx, opt, prev, dirty)
	}

	fallback := func(reason string) (*Result, error) {
		res, err := f.findMultilevel(ctx, opt)
		if res != nil {
			res.Incremental = &IncrStats{
				DirtyCells:     len(dirty),
				FullFallback:   true,
				FallbackReason: reason,
			}
			res.Elapsed = time.Since(start)
		}
		return res, err
	}

	var st *IncrementalState
	if prev != nil {
		st = prev.IncrState
	}
	if st == nil {
		return fallback("previous result carries no incremental state (run with record_incremental)")
	}
	if st.key != opt.IncrementalKey() {
		return fallback("result-affecting options differ from the recorded run")
	}
	if st.inner == nil || st.coarseNl == nil {
		return fallback("recorded state is flat; multilevel replay needs a multilevel recording")
	}
	top := ms.finders[L-1]
	cdirty, ok := netlist.DiffDirty(st.coarseNl, top.nl)
	if !ok {
		return fallback("coarsening reshaped under the edit; no local coarse diff exists")
	}

	copt := coarseOptions(opt, f.nl.NumCells(), top.nl.NumCells(), L-1)
	detectStart := time.Now()
	cres, runErr := top.FindIncremental(ctx, copt, &Result{IncrState: st.inner}, cdirty)
	if cres == nil {
		return nil, runErr
	}
	res, runErr := f.projectDown(ctx, opt, ms, cres,
		float64(time.Since(detectStart))/float64(time.Millisecond), runErr)
	if cres.Incremental != nil {
		// Surface the coarse reuse breakdown, but report the dirty set
		// the caller actually handed in (ReseededCells stays coarse —
		// that is where re-detection happened).
		stats := *cres.Incremental
		stats.DirtyCells = len(dirty)
		res.Incremental = &stats
	}
	if runErr == nil && opt.RecordIncremental && cres.IncrState != nil {
		res.IncrState = wrapMLIncrState(opt, f.nl.NumCells(), top.nl, cres.IncrState)
	}
	res.Elapsed = time.Since(start)
	return res, runErr
}

// findIncrementalFlat is the single-level incremental pipeline.
func (f *Finder) findIncrementalFlat(ctx context.Context, opt *Options, prev *Result, dirty []netlist.CellID) (*Result, error) {
	start := time.Now()
	n := f.nl.NumCells()

	fallback := func(reason string) (*Result, error) {
		res, err := f.findFlat(ctx, opt)
		if res != nil {
			res.Incremental = &IncrStats{
				DirtyCells:     len(dirty),
				FullFallback:   true,
				FallbackReason: reason,
			}
			res.Elapsed = time.Since(start)
		}
		return res, err
	}

	var st *IncrementalState
	if prev != nil {
		st = prev.IncrState
	}
	if st == nil {
		return fallback("previous result carries no incremental state (run with record_incremental)")
	}
	if st.key != opt.IncrementalKey() {
		return fallback("result-affecting options differ from the recorded run")
	}
	effLen := opt.MaxOrderLen
	if effLen > n {
		effLen = n
	}
	if st.maxLen != effLen {
		return fallback(fmt.Sprintf("effective ordering cap changed (%d -> %d)", st.maxLen, effLen))
	}
	region := expandDirty(f.nl, dirty, opt.DirtyRadius)
	frac := float64(region.Len()) / float64(n)
	if frac > opt.IncrementalFallback {
		return fallback(fmt.Sprintf("dirty region spans %.1f%% of cells (fallback threshold %.0f%%)", 100*frac, 100*opt.IncrementalFallback))
	}

	plan := f.plan(opt)
	var owners []int
	for i := 0; i < opt.Seeds; i++ {
		if plan.owner[i] == i {
			owners = append(owners, i)
		}
	}

	// Under Relabel, seeds that fail replay re-grow on the
	// locality-permuted shadow (prebuilt here so the pool can't race
	// its construction); replayed seeds never touch it — records are
	// stored in original id space.
	var sh *shadowState
	if opt.Relabel {
		var err error
		if sh, err = f.shadow(); err != nil {
			return nil, err
		}
	}

	outs := make([]shardOut, len(owners))
	replayed := make([]bool, len(owners))
	var recs []*seedRecord
	if opt.RecordIncremental {
		recs = make([]*seedRecord, len(owners))
	}
	// The replay-vs-reseed wall-time split for Result.Stages: a seed
	// that fails replay and falls through to the full pipeline counts
	// wholly as reseed (its grow/score/recombine phases also land in
	// the worker's phase clocks).
	timed := !stageTimingOff.Load()
	var replayNS, reseedNS atomic.Int64
	completed, sched, phases := f.runSeedPool(ctx, opt, len(owners), func(ws *workerState, k int) bool {
		i := owners[k]
		var t time.Time
		if timed {
			t = time.Now()
		}
		if rec := st.reusableRecord(i, plan.ids[i], region); rec != nil {
			if o, ok := f.replaySeed(ws, rec, i, opt); ok {
				outs[k] = o
				replayed[k] = true
				if recs != nil {
					recs[k] = rec // immutable; chains share it
				}
				if timed {
					replayNS.Add(int64(time.Since(t)))
				}
				return o.cand != nil
			}
		}
		var rec *seedRecord
		if recs != nil {
			rec = &seedRecord{}
			recs[k] = rec
		}
		var o seedOut
		if sh != nil {
			o = sh.runSeedTranslated(ws, i, plan.ids[i], opt, rec)
		} else {
			o = runSeed(f.nl, ws.gr, ws.ev, seedRNG(opt.RandSeed, i), plan.ids[i], opt, f.aG, rec)
		}
		outs[k] = shardOut{idx: i, trace: o.trace, cand: o.candidate, score: o.score, rent: o.rent}
		if timed {
			reseedNS.Add(int64(time.Since(t)))
		}
		return o.candidate != nil
	})

	stats := &IncrStats{DirtyCells: len(dirty), ReseededCells: region.Len()}
	replayedCand := make(map[netlist.CellID]bool)
	var doneOuts []shardOut
	var doneRecs []*seedRecord
	for k := range outs {
		if !completed[k] {
			continue
		}
		doneOuts = append(doneOuts, outs[k])
		if recs != nil {
			doneRecs = append(doneRecs, recs[k])
		}
		if replayed[k] {
			stats.ReusedSeeds++
			if outs[k].cand != nil {
				replayedCand[outs[k].trace.Seed] = true
			}
		} else {
			stats.RerunSeeds++
		}
	}

	res := f.assemble(opt, plan, doneOuts)
	res.Incremental = stats
	res.Sched = &sched
	res.Stages.Merge(phases.stages())
	if v := replayNS.Load(); v > 0 {
		res.Stages.Add(StageReplay, time.Duration(v))
	}
	if v := reseedNS.Load(); v > 0 {
		res.Stages.Add(StageReseed, time.Duration(v))
	}
	for i := range res.GTLs {
		if replayedCand[res.GTLs[i].Seed] {
			stats.ReusedGroups++
		}
	}
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil && len(doneOuts) < len(owners) {
		return res, fmt.Errorf("core: incremental run cancelled after %d/%d seeds: %w", len(doneOuts), len(owners), err)
	}
	if opt.RecordIncremental {
		res.IncrState = f.buildIncrState(opt, doneOuts, doneRecs)
	}
	return res, nil
}
