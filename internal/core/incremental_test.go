package core

import (
	"context"
	"math"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// incrWorkload builds a Table-1-style planted-block workload and the
// options a recorded baseline run uses.
func incrWorkload(t testing.TB, cells, block int, seed uint64) (*generate.RandomGraph, Options) {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  cells,
		Blocks: []generate.BlockSpec{{Size: block}},
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 24
	opt.MaxOrderLen = 3 * block / 2
	opt.RecordIncremental = true
	return rg, opt
}

// sameResult asserts two results are equal up to float tolerance —
// the differential oracle the incremental engine is specified by.
func sameResult(t *testing.T, want, got *Result) {
	t.Helper()
	const tol = 1e-9
	if len(want.GTLs) != len(got.GTLs) {
		t.Fatalf("GTL count %d vs %d", len(want.GTLs), len(got.GTLs))
	}
	for i := range want.GTLs {
		a, b := &want.GTLs[i], &got.GTLs[i]
		if a.Size() != b.Size() || a.Cut != b.Cut || a.Pins != b.Pins || a.Seed != b.Seed {
			t.Fatalf("GTL %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Members {
			if a.Members[j] != b.Members[j] {
				t.Fatalf("GTL %d member %d: %d vs %d", i, j, a.Members[j], b.Members[j])
			}
		}
		if math.Abs(a.Score-b.Score) > tol || math.Abs(a.NGTLS-b.NGTLS) > tol || math.Abs(a.GTLSD-b.GTLSD) > tol {
			t.Fatalf("GTL %d scores differ: %g/%g/%g vs %g/%g/%g", i, a.Score, a.NGTLS, a.GTLSD, b.Score, b.NGTLS, b.GTLSD)
		}
	}
	if want.Candidates != got.Candidates {
		t.Fatalf("candidates %d vs %d", want.Candidates, got.Candidates)
	}
	if len(want.Seeds) != len(got.Seeds) {
		t.Fatalf("seed traces %d vs %d", len(want.Seeds), len(got.Seeds))
	}
	for i := range want.Seeds {
		a, b := &want.Seeds[i], &got.Seeds[i]
		if a.Seed != b.Seed || a.OrderLen != b.OrderLen || a.Extracted != b.Extracted || a.Size != b.Size {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Score-b.Score) > tol {
			t.Fatalf("trace %d score %g vs %g", i, a.Score, b.Score)
		}
	}
	if math.Abs(want.Rent-got.Rent) > tol {
		t.Fatalf("rent %g vs %g", want.Rent, got.Rent)
	}
}

// TestFindIncrementalMatchesFull is the core-level differential check:
// after a background rewire, FindIncremental on the patched netlist
// must equal a from-scratch Find, while actually reusing seeds.
func TestFindIncrementalMatchesFull(t *testing.T) {
	rg, opt := incrWorkload(t, 6000, 400, 3)
	ctx := context.Background()

	f0, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := f0.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if prev.IncrState == nil {
		t.Fatal("RecordIncremental run carries no state")
	}
	if prev.IncrState.MemoryEstimate() <= 0 {
		t.Error("state memory estimate not positive")
	}

	// Rewire one background net far from the planted block (block
	// cells occupy the front of the id space in generated graphs; use
	// high ids and verify they are background).
	inBlock := make(map[netlist.CellID]bool)
	for _, c := range rg.Blocks[0] {
		inBlock[c] = true
	}
	n := rg.Netlist.NumCells()
	var a, b netlist.CellID = -1, -1
	for c := n - 1; c >= 0 && (a < 0 || b < 0); c-- {
		if !inBlock[netlist.CellID(c)] {
			if a < 0 {
				a = netlist.CellID(c)
			} else {
				b = netlist.CellID(c)
			}
		}
	}
	var editNet netlist.NetID = -1
	for e := 0; e < rg.Netlist.NumNets(); e++ {
		pins := rg.Netlist.NetPins(netlist.NetID(e))
		ok := len(pins) >= 2
		for _, c := range pins {
			if inBlock[c] {
				ok = false
				break
			}
		}
		if ok {
			editNet = netlist.NetID(e)
			break
		}
	}
	if editNet < 0 {
		t.Fatal("no background net found")
	}
	d := &netlist.Delta{SetNets: []netlist.NetEdit{{Net: editNet, Cells: []netlist.CellID{a, b}}}}
	patched, eff, err := d.Apply(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}

	fFull, err := NewFinder(patched)
	if err != nil {
		t.Fatal(err)
	}
	optFull := opt
	optFull.RecordIncremental = false
	full, err := fFull.Find(ctx, optFull)
	if err != nil {
		t.Fatal(err)
	}

	fIncr, err := NewFinder(patched)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := fIncr.FindIncremental(ctx, opt, prev, eff.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, full, incr)
	if incr.Incremental == nil || incr.Incremental.FullFallback {
		t.Fatalf("incremental stats = %+v", incr.Incremental)
	}
	if incr.Incremental.ReusedSeeds+incr.Incremental.RerunSeeds != 24 {
		t.Errorf("seed accounting: %+v", incr.Incremental)
	}
	if incr.IncrState == nil {
		t.Error("incremental run with RecordIncremental lost its state")
	}
}

// TestFindIncrementalChain chains three deltas, each incremental run
// feeding the next, with a full-run oracle at every step.
func TestFindIncrementalChain(t *testing.T) {
	rg, opt := incrWorkload(t, 4000, 300, 7)
	ctx := context.Background()
	f0, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := f0.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist
	for step := 0; step < 3; step++ {
		// Rotate pins of one mid-range net.
		e := netlist.NetID((step*13 + 5) % nl.NumNets())
		pins := append([]netlist.CellID(nil), nl.NetPins(e)...)
		cells := []netlist.CellID{netlist.CellID((step*101 + 7) % nl.NumCells()), netlist.CellID((step*211 + 19) % nl.NumCells())}
		cells = append(cells, pins...)
		d := &netlist.Delta{SetNets: []netlist.NetEdit{{Net: e, Cells: cells[:2+len(pins)/2]}}}
		patched, eff, err := d.Apply(nl)
		if err != nil {
			t.Fatal(err)
		}
		fFull, _ := NewFinder(patched)
		optFull := opt
		optFull.RecordIncremental = false
		full, err := fFull.Find(ctx, optFull)
		if err != nil {
			t.Fatal(err)
		}
		fIncr, _ := NewFinder(patched)
		incr, err := fIncr.FindIncremental(ctx, opt, prev, eff.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, full, incr)
		nl, prev = patched, incr
	}
}

func TestFindIncrementalFallbacks(t *testing.T) {
	rg, opt := incrWorkload(t, 3000, 200, 11)
	ctx := context.Background()
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}

	// No state.
	res, err := f.FindIncremental(ctx, opt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil || !res.Incremental.FullFallback {
		t.Fatalf("nil prev should fall back: %+v", res.Incremental)
	}

	// Changed result-affecting options.
	opt2 := opt
	opt2.Seeds = 25
	res, err = f.FindIncremental(ctx, opt2, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental.FullFallback {
		t.Fatal("changed Seeds should fall back")
	}

	// Dirty fraction past the threshold.
	optSmall := opt
	optSmall.IncrementalFallback = 0.001
	dirty := make([]netlist.CellID, 100)
	for i := range dirty {
		dirty[i] = netlist.CellID(i * 17 % rg.Netlist.NumCells())
	}
	res, err = f.FindIncremental(ctx, optSmall, prev, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental.FullFallback {
		t.Fatal("oversized dirty region should fall back")
	}
	// Fallback results still equal a full run (the run IS a full run,
	// modulo the stats annotation).
	optFull := opt
	optFull.RecordIncremental = false
	full, err := f.Find(ctx, optFull)
	if err != nil {
		t.Fatal(err)
	}
	res.Incremental = nil
	full.Incremental = nil
	sameResult(t, full, res)
}

// TestMultilevelMatrixComposes: FindShard/Merge and FindIncremental
// accept Levels > 1 and reproduce Find's multilevel output exactly —
// the matrix restriction that used to return ErrUnsupportedOptions is
// gone. (ErrUnsupportedOptions itself stays typed for genuinely
// invalid combinations; see the options validation tests.)
func TestMultilevelMatrixComposes(t *testing.T) {
	rg, opt := incrWorkload(t, 3000, 200, 13)
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ml := opt
	ml.Levels = 3
	ml.RecordIncremental = false

	want, err := f.Find(ctx, ml)
	if err != nil {
		t.Fatal(err)
	}

	// Sharded + merged multilevel == whole multilevel.
	mid := ml.Seeds / 2
	s1, err := f.FindShard(ctx, ml, 0, mid)
	if err != nil {
		t.Fatalf("FindShard multilevel [0,%d): %v", mid, err)
	}
	s2, err := f.FindShard(ctx, ml, mid, ml.Seeds)
	if err != nil {
		t.Fatalf("FindShard multilevel [%d,%d): %v", mid, ml.Seeds, err)
	}
	merged, err := f.Merge(ml, s2, s1)
	if err != nil {
		t.Fatalf("Merge multilevel: %v", err)
	}
	sameResult(t, want, merged)

	// A multilevel shard must not merge under flat options.
	flat := ml
	flat.Levels = 1
	if _, err := f.Merge(flat, s1, s2); err == nil {
		t.Error("merging multilevel shards under flat options should fail")
	}

	// Incremental multilevel without recorded state falls back to a
	// full multilevel run — same output, annotated as a fallback.
	incr, err := f.FindIncremental(ctx, ml, nil, nil)
	if err != nil {
		t.Fatalf("FindIncremental multilevel: %v", err)
	}
	if incr.Incremental == nil || !incr.Incremental.FullFallback {
		t.Error("incremental multilevel without prior state should report a full fallback")
	}
	incr.Incremental = nil
	sameResult(t, want, incr)
}

// TestMultilevelIncrementalReplay: a recorded multilevel run can be
// resumed after an edit, and the incremental output equals a full
// multilevel run on the patched netlist.
func TestMultilevelIncrementalReplay(t *testing.T) {
	rg, opt := incrWorkload(t, 3000, 200, 13)
	ctx := context.Background()
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ml := opt
	ml.Levels = 3
	ml.RecordIncremental = true

	prev, err := f.Find(ctx, ml)
	if err != nil {
		t.Fatal(err)
	}
	if prev.IncrState == nil {
		t.Fatal("recorded multilevel run carries no IncrState")
	}
	if prev.IncrState.inner == nil || prev.IncrState.coarseNl == nil {
		t.Fatal("multilevel IncrState should wrap the coarse state and netlist")
	}

	// A pin-preserving rewire of one net.
	d := &netlist.Delta{}
	n := netlist.NetID(7)
	pins := append([]netlist.CellID(nil), rg.Netlist.NetPins(n)...)
	pins[0] = (pins[0] + 1) % netlist.CellID(rg.Netlist.NumCells())
	d.SetNets = append(d.SetNets, netlist.NetEdit{Net: n, Cells: pins})
	patched, eff, err := d.Apply(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFinder(patched)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := f2.FindIncremental(ctx, ml, prev, eff.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if incr.Incremental == nil {
		t.Fatal("incremental multilevel run carries no stats")
	}
	mlFull := ml
	mlFull.RecordIncremental = false
	full, err := f2.Find(ctx, mlFull)
	if err != nil {
		t.Fatal(err)
	}
	incr.Incremental = nil
	sameResult(t, full, incr)
}

// TestRecordingDoesNotChangeResults locks the capture path's
// transparency: a recorded run's visible output is bit-identical to an
// unrecorded one.
func TestRecordingDoesNotChangeResults(t *testing.T) {
	rg, opt := incrWorkload(t, 3000, 200, 17)
	ctx := context.Background()
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain := opt
	plain.RecordIncremental = false
	bare, err := f.Find(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bare.IncrState != nil {
		t.Error("unrecorded run carries state")
	}
	sameResult(t, bare, rec)
}

func TestIncrementalKeyStability(t *testing.T) {
	a := DefaultOptions()
	b := DefaultOptions()
	b.Workers = 7
	b.KeepCurves = true
	b.RecordIncremental = true
	b.DirtyRadius = 9
	b.IncrementalFallback = 0.9
	if a.IncrementalKey() != b.IncrementalKey() {
		t.Error("scheduling-only fields changed the incremental key")
	}
	c := DefaultOptions()
	c.RandSeed = 999
	if a.IncrementalKey() == c.IncrementalKey() {
		t.Error("RandSeed did not change the incremental key")
	}
}
