package core

import (
	"math"
	"testing"

	"tanglefind/internal/metrics"
)

// syntheticOrdering fabricates an OrderingStats whose prefix cuts are
// supplied directly; pins follow a fixed 4 pins/cell density.
func syntheticOrdering(cuts []int32) *OrderingStats {
	o := &OrderingStats{
		Members: make([]int32, len(cuts)),
		Cuts:    cuts,
		Pins:    make([]int64, len(cuts)),
	}
	for i := range cuts {
		o.Members[i] = int32(i)
		o.Pins[i] = int64(4 * (i + 1))
	}
	return o
}

// rentCuts builds a cut curve T(k) = aC·k^p with a dip to dipCut at
// index dipAt (0-based prefix size dipAt+1).
func rentCuts(n int, p float64, dipAt int, dipCut int32) []int32 {
	cuts := make([]int32, n)
	for k := 1; k <= n; k++ {
		cuts[k-1] = int32(math.Round(4 * math.Pow(float64(k), p)))
	}
	if dipAt >= 0 {
		cuts[dipAt] = dipCut
	}
	return cuts
}

func TestAverageRentRecoversExponent(t *testing.T) {
	o := syntheticOrdering(rentCuts(500, 0.65, -1, 0))
	got := averageRent(o)
	if math.Abs(got-0.65) > 0.05 {
		t.Errorf("averageRent = %v, want ≈ 0.65", got)
	}
}

func TestScoreCurveFlatForAverageGroups(t *testing.T) {
	// A curve that follows Rent's rule exactly should score ≈ 1
	// everywhere under nGTL-S (past the noisy small prefixes).
	o := syntheticOrdering(rentCuts(500, 0.65, -1, 0))
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	for k := 50; k <= 500; k += 50 {
		if v := c.Scores[k-1]; v < 0.7 || v > 1.4 {
			t.Errorf("score at %d = %v, want ≈ 1", k, v)
		}
	}
}

func TestExtractFindsClearDip(t *testing.T) {
	o := syntheticOrdering(rentCuts(500, 0.65, 299, 3))
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	opt := DefaultOptions()
	ex := extract(c, &opt)
	if !ex.ok {
		t.Fatal("clear dip not extracted")
	}
	if ex.size != 300 {
		t.Errorf("dip at %d, want 300", ex.size)
	}
	if ex.score > 0.1 {
		t.Errorf("dip score = %v, want tiny", ex.score)
	}
}

func TestExtractRejectsFlatCurve(t *testing.T) {
	o := syntheticOrdering(rentCuts(500, 0.65, -1, 0))
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	opt := DefaultOptions()
	if ex := extract(c, &opt); ex.ok {
		t.Errorf("flat curve extracted at %d (score %v)", ex.size, ex.score)
	}
}

func TestExtractRejectsRightEdgeMinimum(t *testing.T) {
	// Monotone decreasing score curve: minimum at the window edge
	// means "still descending" — no evidence the structure ended.
	cuts := make([]int32, 300)
	for k := 1; k <= 300; k++ {
		cuts[k-1] = 10 // constant cut: score decreases as k^-p
	}
	o := syntheticOrdering(cuts)
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	opt := DefaultOptions()
	if ex := extract(c, &opt); ex.ok {
		t.Errorf("right-edge minimum extracted at %d", ex.size)
	}
}

func TestExtractRespectsMinGroupSize(t *testing.T) {
	// Dip at size 10, below MinGroupSize 24: must be ignored.
	o := syntheticOrdering(rentCuts(200, 0.65, 9, 1))
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	opt := DefaultOptions()
	if ex := extract(c, &opt); ex.ok && ex.size == 10 {
		t.Error("tiny dip below MinGroupSize extracted")
	}
}

func TestExtractRespectsThreshold(t *testing.T) {
	// A mild dip (score ~0.9 · ambient) must not pass a strict
	// threshold.
	o := syntheticOrdering(rentCuts(500, 0.65, 299, 40))
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	opt := DefaultOptions()
	opt.AcceptThreshold = 0.2
	if ex := extract(c, &opt); ex.ok {
		t.Errorf("mild dip (score %v) passed threshold 0.2", ex.score)
	}
}

func TestExtractEmptyAndShortCurves(t *testing.T) {
	opt := DefaultOptions()
	if ex := extract(&Curve{}, &opt); ex.ok {
		t.Error("empty curve extracted")
	}
	o := syntheticOrdering(rentCuts(10, 0.65, -1, 0)) // shorter than MinGroupSize
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	if ex := extract(c, &opt); ex.ok {
		t.Error("curve shorter than MinGroupSize extracted")
	}
}

func TestScoreCurveMetricsAgreeAtUniformDensity(t *testing.T) {
	// With A_C == A_G everywhere, GTL-SD degenerates to nGTL-S.
	o := syntheticOrdering(rentCuts(300, 0.6, 149, 5))
	cN := ScoreCurve(o, MetricNGTLS, 4.0)
	cD := ScoreCurve(o, MetricGTLSD, 4.0)
	for k := 30; k <= 300; k += 30 {
		if math.Abs(cN.Scores[k-1]-cD.Scores[k-1]) > 1e-9 {
			t.Fatalf("metrics disagree at %d: %v vs %v", k, cN.Scores[k-1], cD.Scores[k-1])
		}
	}
}

func TestRentExponentConsistency(t *testing.T) {
	// The curve's Rent value is what the scores are computed with.
	o := syntheticOrdering(rentCuts(400, 0.7, -1, 0))
	c := ScoreCurve(o, MetricNGTLS, 4.0)
	k := 200
	want := metrics.NGTLScore(int(o.Cuts[k-1]), k, c.Rent, 4.0)
	if got := c.Scores[k-1]; math.Abs(got-want) > 1e-12 {
		t.Errorf("score[%d] = %v, want %v", k, got, want)
	}
}
