package core

import (
	"math"
	"testing"

	"tanglefind/internal/netlist"
)

// weightOf computes the paper's connection weight of candidate v to the
// group by brute force: Σ_{e ∋ v, e∩S≠∅} 1/(|e| − |e∩S| + 1).
func weightOf(nl *netlist.Netlist, in map[netlist.CellID]bool, v netlist.CellID) float64 {
	w := 0.0
	for _, e := range nl.CellPins(v) {
		inside := 0
		for _, c := range nl.NetPins(e) {
			if in[c] {
				inside++
			}
		}
		if inside == 0 {
			continue
		}
		lambda := nl.NetSize(e) - inside
		w += 1.0 / float64(lambda+1)
	}
	return w
}

// TestWeightedOrderingIsGreedy verifies Phase I against a brute-force
// reference: at every step the added cell has the maximum connection
// weight among all frontier cells (ties resolved by min cut delta are
// allowed — we only check weight optimality).
func TestWeightedOrderingIsGreedy(t *testing.T) {
	var b netlist.Builder
	b.AddCells(60)
	// An irregular small graph: ring + chords + a few 3-pin nets.
	for i := 0; i < 60; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID((i+1)%60))
		if i%3 == 0 {
			b.AddNet("", netlist.CellID(i), netlist.CellID((i+7)%60), netlist.CellID((i+13)%60))
		}
	}
	nl := b.MustBuild()
	opt := DefaultOptions()
	opt.BigNetSkip = 0 // exact weights for the reference comparison
	ord := GrowOrdering(nl, 0, 40, opt)
	if ord.Len() != 40 {
		t.Fatalf("ordering length %d", ord.Len())
	}
	in := map[netlist.CellID]bool{ord.Members[0]: true}
	for step := 1; step < ord.Len(); step++ {
		picked := ord.Members[step]
		pickedW := weightOf(nl, in, picked)
		// No other outside cell may beat the picked weight.
		for c := 0; c < nl.NumCells(); c++ {
			id := netlist.CellID(c)
			if in[id] || id == picked {
				continue
			}
			if w := weightOf(nl, in, id); w > pickedW+1e-9 {
				t.Fatalf("step %d picked %d (w=%.4f) but %d has w=%.4f",
					step, picked, pickedW, id, w)
			}
		}
		in[picked] = true
	}
}

// TestOrderingTieBreakPrefersMinCut: among equal-weight candidates the
// one whose addition increases the cut least must win.
func TestOrderingTieBreakPrefersMinCut(t *testing.T) {
	// Seed s; two candidates a and b each share one 2-pin net with s
	// (equal weight 1/2). a has 3 extra private nets (cut +3+...),
	// b has 1 (cut +1). b must be added first.
	var b netlist.Builder
	s := b.AddCell("s")
	a := b.AddCell("a")
	bb := b.AddCell("b")
	others := b.AddCells(8)
	b.AddNet("", s, a)
	b.AddNet("", s, bb)
	b.AddNet("", a, others+0)
	b.AddNet("", a, others+1)
	b.AddNet("", a, others+2)
	b.AddNet("", bb, others+3)
	nl := b.MustBuild()
	ord := GrowOrdering(nl, s, 3, DefaultOptions())
	if ord.Members[1] != bb {
		t.Errorf("second cell = %d, want b=%d (min cut tie-break)", ord.Members[1], bb)
	}
}

func TestOrderingStopsAtComponentBoundary(t *testing.T) {
	var b netlist.Builder
	b.AddCells(10)
	// Two components: 0-1-2 and 3..9.
	b.AddNet("", 0, 1)
	b.AddNet("", 1, 2)
	for i := 3; i < 9; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID(i+1))
	}
	nl := b.MustBuild()
	ord := GrowOrdering(nl, 0, 10, DefaultOptions())
	if ord.Len() != 3 {
		t.Errorf("ordering escaped the component: len %d, want 3", ord.Len())
	}
}

func TestOrderingCutsMatchTrackerSemantics(t *testing.T) {
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("", 0, 1)
	b.AddNet("", 1, 2)
	b.AddNet("", 2, 3)
	nl := b.MustBuild()
	ord := GrowOrdering(nl, 0, 4, DefaultOptions())
	// Chain absorbed in order: cuts must be 1,1,1,0.
	want := []int32{1, 1, 1, 0}
	for i, w := range want {
		if ord.Cuts[i] != w {
			t.Errorf("cut[%d] = %d, want %d (%v)", i, ord.Cuts[i], w, ord.Cuts)
		}
	}
	if ord.Pins[3] != 6 {
		t.Errorf("pins[3] = %d, want 6", ord.Pins[3])
	}
}

func TestBigNetSkipLimitsFrontier(t *testing.T) {
	// A star net with 30 pins: with BigNetSkip 20, growing from the
	// hub must not pull in the leaves (their only connection is the
	// big net); with skip disabled it must.
	var b netlist.Builder
	hub := b.AddCell("hub")
	leaves := b.AddCells(30)
	pins := []netlist.CellID{hub}
	for i := 0; i < 30; i++ {
		pins = append(pins, leaves+netlist.CellID(i))
	}
	b.AddNet("star", pins...)
	// A small 2-pin chain from the hub so there is something to grow.
	chain := b.AddCells(3)
	b.AddNet("", hub, chain)
	b.AddNet("", chain, chain+1)
	b.AddNet("", chain+1, chain+2)
	nl := b.MustBuild()

	opt := DefaultOptions() // BigNetSkip = 20
	ord := GrowOrdering(nl, hub, 10, opt)
	if ord.Len() != 4 {
		t.Errorf("with skip: ordering len %d, want 4 (hub + chain only)", ord.Len())
	}
	opt.BigNetSkip = 0
	ord = GrowOrdering(nl, hub, 10, opt)
	if ord.Len() != 10 {
		t.Errorf("without skip: ordering len %d, want 10", ord.Len())
	}
}

func TestFindValidatesOptions(t *testing.T) {
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("", 0, 1)
	nl := b.MustBuild()
	opt := DefaultOptions()
	opt.Seeds = 0
	if _, err := Find(nl, opt); err == nil {
		t.Error("Seeds=0 accepted")
	}
	opt = DefaultOptions()
	opt.MaxOrderLen = 1
	if _, err := Find(nl, opt); err == nil {
		t.Error("MaxOrderLen=1 accepted")
	}
	if _, err := Find(&netlist.Netlist{}, DefaultOptions()); err == nil {
		t.Error("empty netlist accepted")
	}
}

// TestFindDeterministic: identical options and seed give bit-identical
// results regardless of scheduling.
func TestFindDeterministic(t *testing.T) {
	var b netlist.Builder
	n := 3000
	b.AddCells(n)
	for i := 0; i < n-1; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID(i+1))
		b.AddNet("", netlist.CellID(i), netlist.CellID((i*7+13)%n))
	}
	// A small dense block.
	for i := 0; i < 200; i++ {
		b.AddNet("", netlist.CellID(i%100), netlist.CellID((i*3+1)%100), netlist.CellID((i*5+2)%100))
	}
	nl := b.MustBuild()
	opt := DefaultOptions()
	opt.Seeds = 16
	opt.MaxOrderLen = 500
	run := func(workers int) []GTL {
		o := opt
		o.Workers = workers
		res, err := Find(nl, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.GTLs
	}
	a, c := run(1), run(4)
	if len(a) != len(c) {
		t.Fatalf("worker count changed result: %d vs %d GTLs", len(a), len(c))
	}
	for i := range a {
		if a[i].Size() != c[i].Size() || a[i].Cut != c[i].Cut || a[i].Score != c[i].Score {
			t.Fatalf("GTL %d differs across worker counts", i)
		}
		for j := range a[i].Members {
			if a[i].Members[j] != c[i].Members[j] {
				t.Fatalf("GTL %d member %d differs", i, j)
			}
		}
	}
}

func TestKeepCurves(t *testing.T) {
	var b netlist.Builder
	b.AddCells(500)
	for i := 0; i < 499; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID(i+1))
	}
	nl := b.MustBuild()
	opt := DefaultOptions()
	opt.Seeds = 4
	opt.MaxOrderLen = 100
	opt.KeepCurves = true
	res, err := Find(nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Seeds {
		if s.Curve == nil {
			t.Fatalf("seed %d: curve not kept", i)
		}
		if len(s.Curve.Scores) != s.OrderLen {
			t.Fatalf("seed %d: curve length %d != order length %d", i, len(s.Curve.Scores), s.OrderLen)
		}
	}
	if math.IsNaN(res.AG) || res.AG <= 0 {
		t.Errorf("AG = %v", res.AG)
	}
}

func TestMetricAndOrderingStrings(t *testing.T) {
	if MetricGTLSD.String() != "GTL-SD" || MetricNGTLS.String() != "nGTL-S" {
		t.Error("metric names wrong")
	}
	if Metric(99).String() != "unknown" {
		t.Error("unknown metric name wrong")
	}
	if OrderWeighted.String() != "weighted" || OrderMinCut.String() != "mincut" || OrderBFS.String() != "bfs" {
		t.Error("ordering names wrong")
	}
	if Ordering(99).String() != "unknown" {
		t.Error("unknown ordering name wrong")
	}
}
