package core

import (
	"context"
	"sync/atomic"
	"time"
)

// Work-stealing seed scheduler.
//
// The engine's unit of work is one seed, and seed costs are wildly
// uneven: a seed that lands in a tangled region grows a MaxOrderLen
// ordering and runs RefineSeeds extra growths, while a seed on a clean
// rail exhausts its reachable region in a handful of cells. A static
// per-worker partition therefore serializes a whole worker's tail
// behind its stragglers. Instead each worker owns a contiguous range
// of schedule indexes packed into one atomic word; the owner pops one
// index at a time off the front and an idle worker steals the back
// half of the largest remainder it can find. Chunking is adaptive by
// construction — every migration halves the victim's remaining range,
// so chunks shrink geometrically toward the end of the run exactly
// where cost variance hurts most.
//
// Determinism: stealing moves *indexes*, never results. Each index k
// is executed exactly once (the packed-range CAS hands it to exactly
// one worker), its RNG stream is seedRNG(RandSeed, i) regardless of
// which worker runs it, and its outcome lands in outs[k]. The
// schedule→output mapping is a pure function of Options, so results
// are bit-identical to Workers=1 no matter how the steal race
// resolves. The differential lock for this claim lives in
// internal/netlist/deltatest's parallel harness.

// SchedStats describes how one run's seed schedule was executed:
// resolved worker count, per-worker seed counts and steal traffic.
// It is JSON-tagged so bench artifacts and the serving stats endpoint
// can publish it verbatim.
type SchedStats struct {
	// Workers is the resolved worker count (Options.Workers after the
	// <=0 → GOMAXPROCS default and the can't-exceed-items clamp).
	Workers int `json:"workers"`
	// Steals counts successful steal operations; SeedsStolen counts the
	// seeds those steals migrated. Zero on a balanced schedule.
	Steals      int64 `json:"steals"`
	SeedsStolen int64 `json:"seeds_stolen"`
	// WorkerSeeds[w] is how many seeds worker w executed; the spread is
	// the utilization picture (max/mean ≈ 1 means the pool stayed
	// saturated).
	WorkerSeeds []int64 `json:"worker_seeds,omitempty"`
	// WorkerBusyNS[w] is the wall time (ns) worker w spent executing
	// seeds; WorkerStealNS[w] is what it spent scanning for and
	// performing steals. Empty under SetStageTiming(false). The gap
	// between max(busy) and the run's elapsed time is the scheduling
	// overhead picture.
	WorkerBusyNS  []int64 `json:"worker_busy_ns,omitempty"`
	WorkerStealNS []int64 `json:"worker_steal_ns,omitempty"`
}

// merge folds another schedule's stats into s (multilevel runs
// schedule twice: coarse detection and projection refinement; merged
// runs schedule once per shard).
func (s *SchedStats) merge(o SchedStats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Steals += o.Steals
	s.SeedsStolen += o.SeedsStolen
	for len(s.WorkerSeeds) < len(o.WorkerSeeds) {
		s.WorkerSeeds = append(s.WorkerSeeds, 0)
	}
	for w, c := range o.WorkerSeeds {
		s.WorkerSeeds[w] += c
	}
	for len(s.WorkerBusyNS) < len(o.WorkerBusyNS) {
		s.WorkerBusyNS = append(s.WorkerBusyNS, 0)
	}
	for w, c := range o.WorkerBusyNS {
		s.WorkerBusyNS[w] += c
	}
	for len(s.WorkerStealNS) < len(o.WorkerStealNS) {
		s.WorkerStealNS = append(s.WorkerStealNS, 0)
	}
	for w, c := range o.WorkerStealNS {
		s.WorkerStealNS[w] += c
	}
}

// stealQueue is one worker's share of the schedule: the half-open
// index range [next, end) packed (next<<32 | end) into a single
// atomic word, so the owner's take-one and a thief's take-half are
// each one CAS. The pad keeps neighboring queues on distinct cache
// lines; without it every CAS would bounce the whole group's lines.
type stealQueue struct {
	r atomic.Uint64
	_ [56]byte
}

func packRange(next, end uint32) uint64 { return uint64(next)<<32 | uint64(end) }

func unpackRange(v uint64) (next, end uint32) { return uint32(v >> 32), uint32(v) }

// take pops the front index for the owner; ok=false when empty.
func (q *stealQueue) take() (int, bool) {
	for {
		cur := q.r.Load()
		next, end := unpackRange(cur)
		if next >= end {
			return 0, false
		}
		if q.r.CompareAndSwap(cur, packRange(next+1, end)) {
			return int(next), true
		}
	}
}

// stealHalf detaches the back half of the queue's remaining range.
// A single remaining item is not worth a migration — its owner
// finishes it cheaper than the CAS traffic — so ok=false below two.
func (q *stealQueue) stealHalf() (lo, hi int, ok bool) {
	for {
		cur := q.r.Load()
		next, end := unpackRange(cur)
		if next >= end || end-next < 2 {
			return 0, 0, false
		}
		mid := next + (end-next+1)/2
		if q.r.CompareAndSwap(cur, packRange(next, mid)) {
			return int(mid), int(end), true
		}
	}
}

// remaining reports the queue's current backlog (racy; scheduling
// heuristic only).
func (q *stealQueue) remaining() int {
	next, end := unpackRange(q.r.Load())
	if next >= end {
		return 0
	}
	return int(end - next)
}

// stealGroup is the shared schedule of one run: nWorkers queues over
// [0, n) plus per-worker counters (each written only by its worker
// until the final aggregation).
type stealGroup struct {
	queues []stealQueue
	exec   []int64
	steals []int64
	stolen []int64
	// busy/stealNS are the per-worker execute and steal-scan clocks
	// (ns); timed snapshots the stage-timing switch at construction so
	// the schedule loop reads a plain bool.
	busy    []int64
	stealNS []int64
	timed   bool
}

func newStealGroup(n, nWorkers int) *stealGroup {
	g := &stealGroup{
		queues:  make([]stealQueue, nWorkers),
		exec:    make([]int64, nWorkers),
		steals:  make([]int64, nWorkers),
		stolen:  make([]int64, nWorkers),
		busy:    make([]int64, nWorkers),
		stealNS: make([]int64, nWorkers),
		timed:   !stageTimingOff.Load(),
	}
	for w := 0; w < nWorkers; w++ {
		lo := w * n / nWorkers
		hi := (w + 1) * n / nWorkers
		g.queues[w].r.Store(packRange(uint32(lo), uint32(hi)))
	}
	return g
}

// run is worker w's schedule loop: drain the own queue, then steal the
// biggest visible remainder and continue; exit when a full scan finds
// nothing left to take or steal (remaining singletons belong to their
// owners, which always drain their own queue before exiting).
func (g *stealGroup) run(ctx context.Context, w int, exec func(k int)) {
	var ran, steals, stolen int64
	var busyNS, stealWaitNS int64
	defer func() {
		g.exec[w] = ran
		g.steals[w] = steals
		g.stolen[w] = stolen
		g.busy[w] = busyNS
		g.stealNS[w] = stealWaitNS
	}()
	own := &g.queues[w]
	for {
		for {
			k, ok := own.take()
			if !ok {
				break
			}
			if ctx.Err() != nil {
				return
			}
			if g.timed {
				t := time.Now()
				exec(k)
				busyNS += int64(time.Since(t))
			} else {
				exec(k)
			}
			ran++
		}
		// Own queue dry: pick the victim with the largest backlog so a
		// steal moves the most work per CAS, then re-expose the stolen
		// range through the own queue (thieves can sub-steal its tail).
		var scanStart time.Time
		if g.timed {
			scanStart = time.Now()
		}
		victim, best := -1, 1
		for v := range g.queues {
			if v == w {
				continue
			}
			if r := g.queues[v].remaining(); r > best {
				victim, best = v, r
			}
		}
		if victim < 0 {
			if g.timed {
				stealWaitNS += int64(time.Since(scanStart))
			}
			return
		}
		lo, hi, ok := g.queues[victim].stealHalf()
		if g.timed {
			stealWaitNS += int64(time.Since(scanStart))
		}
		if !ok {
			continue // lost the race; rescan
		}
		steals++
		stolen += int64(hi - lo)
		own.r.Store(packRange(uint32(lo), uint32(hi)))
	}
}

// stats aggregates the per-worker counters; call only after every
// worker has returned.
func (g *stealGroup) stats() SchedStats {
	s := SchedStats{Workers: len(g.queues), WorkerSeeds: g.exec}
	if g.timed {
		s.WorkerBusyNS = g.busy
		s.WorkerStealNS = g.stealNS
	}
	for w := range g.queues {
		s.Steals += g.steals[w]
		s.SeedsStolen += g.stolen[w]
	}
	return s
}
