package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tanglefind/internal/ds"
	"tanglefind/internal/group"
	"tanglefind/internal/metrics"
	"tanglefind/internal/netlist"
)

// GTL is one detected group of tangled logic.
type GTL struct {
	Members []netlist.CellID
	Cut     int     // T(C)
	Pins    int     // Σ deg(c), so A_C = Pins/len(Members)
	Score   float64 // Φ under Options.Metric
	NGTLS   float64 // normalized GTL-Score
	GTLSD   float64 // density-aware GTL-Score
	Rent    float64 // Rent exponent used for the scores
	Seed    netlist.CellID
}

// Size returns |C|.
func (g *GTL) Size() int { return len(g.Members) }

// SeedTrace records what one Phase I/II seed produced; used by the
// figure generators and by tests probing intermediate behavior.
type SeedTrace struct {
	Seed      netlist.CellID
	OrderLen  int
	Extracted bool
	Size      int
	Score     float64
	Curve     *Curve // only when Options.KeepCurves
}

// Result is the outcome of one finder run.
type Result struct {
	GTLs       []GTL // disjoint, sorted best (smallest Φ) first
	Candidates int   // refined candidates before pruning
	Seeds      []SeedTrace
	Elapsed    time.Duration
	Rent       float64 // mean Rent exponent across successful seeds
	AG         float64
}

// Find runs the TangledLogicFinder over nl with the given options and
// returns the disjoint set of detected GTLs. The run is deterministic
// for a fixed Options.RandSeed.
func Find(nl *netlist.Netlist, opt Options) (*Result, error) {
	if nl.NumCells() == 0 {
		return nil, fmt.Errorf("core: empty netlist")
	}
	if opt.Seeds <= 0 {
		return nil, fmt.Errorf("core: Seeds must be positive, got %d", opt.Seeds)
	}
	if opt.MaxOrderLen < 2 {
		return nil, fmt.Errorf("core: MaxOrderLen must be at least 2, got %d", opt.MaxOrderLen)
	}
	start := time.Now()
	aG := nl.AvgPins()

	// I.1: the seed list comes from the master RNG up front so results
	// do not depend on goroutine scheduling. Seeds are stratified —
	// one uniform draw per equal-width slice of the cell-id space —
	// instead of the paper's i.i.d. draws: each seed is still uniform
	// within its stratum, but no region of the netlist can be starved
	// by an unlucky sequence, which matters for deterministic
	// reproduction (i.i.d. leaves a structure covering fraction f a
	// (1-f)^m chance of receiving no seed at all).
	master := ds.NewRNG(opt.RandSeed)
	seeds := make([]netlist.CellID, opt.Seeds)
	stride := float64(nl.NumCells()) / float64(opt.Seeds)
	for i := range seeds {
		lo := int(float64(i) * stride)
		hi := int(float64(i+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > nl.NumCells() {
			hi = nl.NumCells()
		}
		if lo >= hi {
			lo = hi - 1
		}
		seeds[i] = netlist.CellID(lo + master.Intn(hi-lo))
	}

	type seedOut struct {
		trace     SeedTrace
		candidate *group.Set // refined candidate B̂_i (nil if none)
		score     float64
		rent      float64
	}
	outs := make([]seedOut, opt.Seeds)

	nWorkers := opt.workers()
	if nWorkers > opt.Seeds {
		nWorkers = opt.Seeds
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gr := newGrower(nl, &opt)
			ev := group.NewEvaluator(nl)
			for i := range jobs {
				// Per-seed RNG derived from (RandSeed, i): identical
				// streams no matter which worker runs the job.
				rng := ds.NewRNG(opt.RandSeed ^ (0x9e37_79b9_7f4a_7c15 * uint64(i+1)))
				outs[i] = runSeed(nl, gr, ev, rng, seeds[i], &opt, aG)
			}
		}()
	}
	for i := 0; i < opt.Seeds; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Phase III pruning: sort refined candidates by score, greedily
	// keep the disjoint prefix-best set.
	res := &Result{AG: aG}
	type cand struct {
		set   *group.Set
		score float64
		rent  float64
		seed  netlist.CellID
	}
	var cands []cand
	rentSum, rentN := 0.0, 0
	for i := range outs {
		res.Seeds = append(res.Seeds, outs[i].trace)
		if outs[i].candidate != nil {
			cands = append(cands, cand{outs[i].candidate, outs[i].score, outs[i].rent, seeds[i]})
			rentSum += outs[i].rent
			rentN++
		}
	}
	if rentN > 0 {
		res.Rent = rentSum / float64(rentN)
	}
	res.Candidates = len(cands)
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	taken := ds.NewBitset(nl.NumCells())
	pruneEval := group.NewEvaluator(nl)
	for _, c := range cands {
		overlap := 0
		for _, m := range c.set.Members {
			if taken.Has(int(m)) {
				overlap++
			}
		}
		if float64(overlap) > opt.PruneOverlapTolerance*float64(c.set.Size()) {
			continue // substantially the same structure as a better GTL
		}
		set := *c.set
		score := c.score
		if overlap > 0 {
			// Trim the junction cells already owned by a better GTL
			// and re-evaluate the remainder.
			kept := make([]netlist.CellID, 0, set.Size()-overlap)
			for _, m := range set.Members {
				if !taken.Has(int(m)) {
					kept = append(kept, m)
				}
			}
			if len(kept) < opt.MinGroupSize {
				continue
			}
			set = pruneEval.Eval(kept)
			switch opt.Metric {
			case MetricNGTLS:
				score = metrics.NGTLScore(set.Cut, set.Size(), c.rent, aG)
			default:
				score = metrics.GTLSD(set.Cut, set.Size(), set.Pins, c.rent, aG)
			}
		}
		for _, m := range set.Members {
			taken.Add(int(m))
		}
		res.GTLs = append(res.GTLs, GTL{
			Members: set.Members,
			Cut:     set.Cut,
			Pins:    set.Pins,
			Score:   score,
			NGTLS:   metrics.NGTLScore(set.Cut, set.Size(), c.rent, aG),
			GTLSD:   metrics.GTLSD(set.Cut, set.Size(), set.Pins, c.rent, aG),
			Rent:    c.rent,
			Seed:    c.seed,
		})
	}
	// Trimming can disturb the best-first order slightly; restore it.
	sort.SliceStable(res.GTLs, func(i, j int) bool { return res.GTLs[i].Score < res.GTLs[j].Score })
	res.Elapsed = time.Since(start)
	return res, nil
}

// runSeed executes Phases I–III (refinement, not pruning) for one seed.
func runSeed(nl *netlist.Netlist, gr *grower, ev *group.Evaluator, rng *ds.RNG, seed netlist.CellID, opt *Options, aG float64) (out struct {
	trace     SeedTrace
	candidate *group.Set
	score     float64
	rent      float64
}) {
	ord := gr.grow(seed, opt.MaxOrderLen)
	curve := ScoreCurve(ord, opt.Metric, aG)
	ex := extract(curve, opt)
	out.trace = SeedTrace{Seed: seed, OrderLen: ord.Len()}
	if opt.KeepCurves {
		out.trace.Curve = curve
	}
	if !ex.ok {
		return out
	}
	out.trace.Extracted = true
	out.trace.Size = ex.size
	out.trace.Score = ex.score

	base := ev.Eval(ord.Prefix(ex.size))
	if !opt.Refine {
		out.candidate = &base
		out.score = ex.score
		out.rent = ex.rent
		return out
	}
	refined, score := refine(gr, ev, rng, base, ex, opt, aG)
	out.candidate = refined
	out.score = score
	out.rent = ex.rent
	return out
}

// refine implements Phase III for one candidate B: re-grow from
// RefineSeeds random interior cells, then search the closure of the
// resulting family under pairwise union, intersection and difference
// for the best-scoring set (the paper's "genetic" recombination).
func refine(gr *grower, ev *group.Evaluator, rng *ds.RNG, base group.Set, ex extraction, opt *Options, aG float64) (*group.Set, float64) {
	family := []group.Set{base}
	for r := 0; r < opt.RefineSeeds && base.Size() > 0; r++ {
		s := base.Members[rng.Intn(base.Size())]
		ord := gr.grow(s, opt.MaxOrderLen)
		curve := ScoreCurve(ord, opt.Metric, aG)
		ex2 := extract(curve, opt)
		if !ex2.ok {
			continue
		}
		family = append(family, ev.Eval(ord.Prefix(ex2.size)))
	}
	// Pairwise recombination (paper steps III.6–III.12).
	var combos [][]netlist.CellID
	for i := 0; i < len(family); i++ {
		for j := i + 1; j < len(family); j++ {
			a, b := family[i].Members, family[j].Members
			inter := group.Intersect(a, b)
			combos = append(combos,
				group.Union(a, b),
				inter,
				group.Difference(a, inter),
				group.Difference(b, inter),
			)
		}
	}
	best := base
	bestScore := score(&base, ex.rent, aG, opt.Metric)
	consider := func(s group.Set) {
		if s.Size() < opt.MinGroupSize {
			return
		}
		if v := score(&s, ex.rent, aG, opt.Metric); v < bestScore {
			best, bestScore = s, v
		}
	}
	for _, f := range family[1:] {
		consider(f)
	}
	for _, members := range combos {
		if len(members) < opt.MinGroupSize {
			continue
		}
		consider(ev.Eval(members))
	}
	return &best, bestScore
}

// score evaluates Φ for an arbitrary set under the chosen metric.
func score(s *group.Set, rent, aG float64, m Metric) float64 {
	switch m {
	case MetricNGTLS:
		return metrics.NGTLScore(s.Cut, s.Size(), rent, aG)
	default:
		return metrics.GTLSD(s.Cut, s.Size(), s.Pins, rent, aG)
	}
}

// GrowOrdering exposes Phase I for one seed — the building block the
// figure generators (Figures 2, 3, 5) use to plot raw score curves.
func GrowOrdering(nl *netlist.Netlist, seed netlist.CellID, maxLen int, opt Options) *OrderingStats {
	gr := newGrower(nl, &opt)
	return gr.grow(seed, maxLen)
}
