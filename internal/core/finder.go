package core

import (
	"context"
	"slices"
	"time"

	"tanglefind/internal/ds"
	"tanglefind/internal/group"
	"tanglefind/internal/netlist"
	"tanglefind/internal/telemetry"
)

// GTL is one detected group of tangled logic.
type GTL struct {
	Members []netlist.CellID
	Cut     int     // T(C)
	Pins    int     // Σ deg(c), so A_C = Pins/len(Members)
	Score   float64 // Φ under Options.Metric
	NGTLS   float64 // normalized GTL-Score
	GTLSD   float64 // density-aware GTL-Score
	Rent    float64 // Rent exponent used for the scores
	Seed    netlist.CellID
}

// Size returns |C|.
func (g *GTL) Size() int { return len(g.Members) }

// SeedTrace records what one Phase I/II seed produced; used by the
// figure generators and by tests probing intermediate behavior.
type SeedTrace struct {
	Seed      netlist.CellID
	OrderLen  int
	Extracted bool
	Size      int
	Score     float64
	Curve     *Curve // only when Options.KeepCurves
}

// Result is the outcome of one finder run.
type Result struct {
	GTLs       []GTL // disjoint, sorted best (smallest Φ) first
	Candidates int   // refined candidates before pruning
	Seeds      []SeedTrace
	Elapsed    time.Duration
	Rent       float64 // mean Rent exponent across successful seeds
	AG         float64
	// Levels is the per-level breakdown of a multilevel run (nil for
	// flat runs): coarsest first, finishing at the original netlist.
	Levels []LevelStats
	// Sched describes how the run's seed schedule was executed across
	// workers (resolved worker count, steal traffic, per-worker seed
	// counts). Scheduling never affects the detection output — results
	// are bit-identical to Workers=1 — so Sched is purely diagnostic.
	Sched *SchedStats
	// Incremental is the reuse breakdown of a FindIncremental run
	// (nil for plain runs).
	Incremental *IncrStats
	// IncrState is the recorded per-seed structural state of a flat
	// run made with Options.RecordIncremental; FindIncremental
	// consumes it as the previous run. It is in-memory only (never
	// serialized) and can be sizable — O(Seeds × MaxOrderLen).
	IncrState *IncrementalState
	// Stages is the run's flat per-stage wall-time breakdown. The
	// per-seed phases ("grow", "score", "recombine", and the
	// incremental "replay"/"reseed" split) are summed across workers,
	// so they can exceed Elapsed when Workers > 1; "prune" is the
	// global pruning pass, and multilevel runs add "coarse_detect"
	// (the coarse detection's wall time, which overlaps its own
	// per-seed phases) and "project" (the projection/refinement
	// descent). Always non-nil on a completed run; per-seed entries
	// disappear under SetStageTiming(false). Purely diagnostic —
	// timing never affects detection results.
	Stages telemetry.StageTimings
}

// IncrStats is the work breakdown of one FindIncremental run. It is
// JSON-tagged so serving layers can return it on the wire verbatim.
type IncrStats struct {
	// DirtyCells is the size of the delta's dirty set as handed in.
	DirtyCells int `json:"dirty_cells"`
	// ReseededCells is the size of the dirty region after DirtyRadius
	// expansion — the cells whose neighborhoods were re-detected.
	ReseededCells int `json:"reseeded_cells"`
	// ReusedSeeds counts seeds answered by replaying recorded state.
	ReusedSeeds int `json:"reused_seeds"`
	// RerunSeeds counts seeds that re-ran the growth pipeline.
	RerunSeeds int `json:"rerun_seeds"`
	// ReusedGroups counts reported GTLs whose candidate came from a
	// replayed seed.
	ReusedGroups int `json:"reused_groups"`
	// FullFallback marks a run that abandoned reuse entirely;
	// FallbackReason says why.
	FullFallback   bool   `json:"full_fallback,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// Find runs the TangledLogicFinder over nl with the given options and
// returns the disjoint set of detected GTLs. The run is deterministic
// for a fixed Options.RandSeed.
//
// Find is a compatibility wrapper: it builds a fresh Finder engine and
// discards it after one run. Callers that run repeatedly over the same
// netlist, need cancellation, progress reporting or sharded execution
// should construct a Finder directly.
//
// One deliberate difference from the historical implementation: when
// Seeds exceeds the cell count, seed strata collapse onto duplicate
// cells, and the engine now runs each unique seed once instead of
// re-running identical seeds (duplicates inherit the first
// occurrence's trace and candidate). Results are unchanged whenever
// the schedule is duplicate-free — the common case.
func Find(nl *netlist.Netlist, opt Options) (*Result, error) {
	f, err := NewFinder(nl)
	if err != nil {
		return nil, err
	}
	return f.Find(context.Background(), opt)
}

// seedOut is the outcome of Phases I-III (refinement, not pruning) for
// one seed.
type seedOut struct {
	trace     SeedTrace
	candidate *group.Set // refined candidate B̂ (nil if none)
	score     float64
	rent      float64
}

// runSeed executes Phases I–III (refinement, not pruning) for one
// seed. When rec is non-nil it also captures the seed's structural
// state — orderings, score-curve inputs and the exact read footprint —
// for later incremental replay; capture never changes the outcome.
func runSeed(nl *netlist.Netlist, gr *grower, ev *group.Evaluator, rng *ds.RNG, seed netlist.CellID, opt *Options, aG float64, rec *seedRecord) (out seedOut) {
	var t time.Time
	if gr.timed {
		t = time.Now()
	}
	ord := gr.grow(seed, opt.MaxOrderLen)
	if gr.timed {
		t = gr.stamp(phaseGrow, t)
	}
	curve := gr.scoreCurve(ord, opt.Metric, aG, opt.KeepCurves)
	if rec != nil {
		rec.seed = seed
		rec.foot = ds.NewBitset(nl.NumCells())
		rec.markFootprint(gr)
		rec.aG = aG
		rec.ord = copyOrdRecord(ord, curve.Rent)
	}
	ex := extract(curve, opt)
	if gr.timed {
		// Score covers curve scoring, extraction and the incremental
		// footprint capture above; recombine starts here and runs
		// through refinement.
		t = gr.stamp(phaseScore, t)
	}
	if rec != nil {
		rec.extracted = ex.ok
		rec.size = ex.size
		rec.score = ex.score
	}
	out.trace = SeedTrace{Seed: seed, OrderLen: ord.Len()}
	if opt.KeepCurves {
		out.trace.Curve = curve
	}
	if !ex.ok {
		return out
	}
	out.trace.Extracted = true
	out.trace.Size = ex.size
	out.trace.Score = ex.score

	base := ev.Eval(ord.Prefix(ex.size))
	if !opt.Refine {
		out.candidate = &base
		out.score = ex.score
		out.rent = ex.rent
		if gr.timed {
			gr.stamp(phaseRecombine, t)
		}
		return out
	}
	// Refinement's internal re-growths and re-scores are attributed to
	// recombine wholesale: they exist to feed the recombination family.
	refined, score := refine(gr, ev, rng, base, ex, opt, aG, rec)
	out.candidate = refined
	out.score = score
	out.rent = ex.rent
	if gr.timed {
		gr.stamp(phaseRecombine, t)
	}
	return out
}

// comboScratch is the reusable arena of Phase III recombination: one
// sorted view per family member plus merge and best-so-far buffers.
// Pooled with the grower, it makes steady-state recombination allocate
// only for the winning set — the old path re-sorted every family
// member once per pairing and allocated every combo it evaluated.
type comboScratch struct {
	sorted [][]netlist.CellID
	buf    []netlist.CellID
	best   []netlist.CellID
}

// sortFamily refreshes the arena's sorted views for one family.
func (sc *comboScratch) sortFamily(family []group.Set) [][]netlist.CellID {
	for len(sc.sorted) < len(family) {
		sc.sorted = append(sc.sorted, nil)
	}
	views := sc.sorted[:len(family)]
	for i := range family {
		views[i] = append(views[i][:0], family[i].Members...)
		slices.Sort(views[i])
	}
	return views
}

// refine implements Phase III for one candidate B: re-grow from
// RefineSeeds random interior cells, then search the closure of the
// resulting family under pairwise union, intersection and difference
// for the best-scoring set (the paper's "genetic" recombination).
func refine(gr *grower, ev *group.Evaluator, rng *ds.RNG, base group.Set, ex extraction, opt *Options, aG float64, rec *seedRecord) (*group.Set, float64) {
	family := []group.Set{base}
	for r := 0; r < opt.RefineSeeds && base.Size() > 0; r++ {
		s := base.Members[rng.Intn(base.Size())]
		ord := gr.grow(s, opt.MaxOrderLen)
		curve := gr.scoreCurve(ord, opt.Metric, aG, false)
		ex2 := extract(curve, opt)
		if rec != nil {
			rec.markFootprint(gr)
			rec.refine = append(rec.refine, refineRecord{
				seed: s, ord: copyOrdRecord(ord, curve.Rent),
				extracted: ex2.ok, size: ex2.size,
			})
		}
		if !ex2.ok {
			continue
		}
		family = append(family, ev.Eval(ord.Prefix(ex2.size)))
	}
	return recombine(ev, &gr.combo, family, ex, opt, aG)
}

// recombine is the shared tail of Phase III (paper steps III.6–III.12)
// over an assembled family whose first entry is the base candidate:
// pairwise union/intersection/difference closure, best score wins.
// Both the live pipeline (refine) and incremental replay feed it, so
// replayed seeds recombine exactly as a full run would.
//
// Combos are streamed through the arena in the same order the closure
// has always enumerated them (union, intersection, both differences,
// per ascending pair) and scored with Evaluator.Tally, so the
// selection — including strict-improvement tie behavior — is
// bit-identical to the allocating path it replaced; only the winner's
// members are materialized. a − (a∩b) is computed directly as a − b,
// which is the same set.
func recombine(ev *group.Evaluator, sc *comboScratch, family []group.Set, ex extraction, opt *Options, aG float64) (*group.Set, float64) {
	base := family[0]
	best := base
	bestScore := score(&base, ex.rent, aG, opt.Metric)
	for i := range family[1:] {
		f := &family[1+i]
		if f.Size() < opt.MinGroupSize {
			continue
		}
		if v := score(f, ex.rent, aG, opt.Metric); v < bestScore {
			best, bestScore = *f, v
		}
	}
	views := sc.sortFamily(family)
	comboWon := false
	var comboCut, comboPins int
	for i := 0; i < len(family); i++ {
		for j := i + 1; j < len(family); j++ {
			a, b := views[i], views[j]
			for op := 0; op < 4; op++ {
				sc.buf = sc.buf[:0]
				switch op {
				case 0:
					sc.buf = group.MergeUnion(sc.buf, a, b)
				case 1:
					sc.buf = group.MergeIntersect(sc.buf, a, b)
				case 2:
					sc.buf = group.MergeDifference(sc.buf, a, b)
				case 3:
					sc.buf = group.MergeDifference(sc.buf, b, a)
				}
				if len(sc.buf) < opt.MinGroupSize {
					continue
				}
				cut, pins := ev.Tally(sc.buf)
				if v := scoreVals(cut, len(sc.buf), pins, ex.rent, aG, opt.Metric); v < bestScore {
					bestScore = v
					comboWon = true
					comboCut, comboPins = cut, pins
					sc.best = append(sc.best[:0], sc.buf...)
				}
			}
		}
	}
	if comboWon {
		return &group.Set{
			Members: append([]netlist.CellID(nil), sc.best...),
			Cut:     comboCut,
			Pins:    comboPins,
		}, bestScore
	}
	return &best, bestScore
}

// score evaluates Φ for an arbitrary set under the chosen metric.
func score(s *group.Set, rent, aG float64, m Metric) float64 {
	return scoreVals(s.Cut, s.Size(), s.Pins, rent, aG, m)
}

// GrowOrdering exposes Phase I for one seed — the building block the
// figure generators (Figures 2, 3, 5) use to plot raw score curves.
func GrowOrdering(nl *netlist.Netlist, seed netlist.CellID, maxLen int, opt Options) *OrderingStats {
	gr := newGrower(nl)
	gr.opt = &opt
	return gr.grow(seed, maxLen)
}
