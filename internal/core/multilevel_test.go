package core

import (
	"context"
	"strings"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// TestLevelsOneBitIdentical is the multilevel golden guarantee:
// Levels=1 (and the zero value 0) must reproduce the flat pipeline's
// results bit-identically — same GTL member sets, same traces — on
// the same workloads the engine golden test locks down.
func TestLevelsOneBitIdentical(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  12000,
		Blocks: []generate.BlockSpec{{Size: 900}},
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat := DefaultOptions()
	flat.Seeds = 40
	flat.MaxOrderLen = 3600
	flat.RandSeed = 42

	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.Find(context.Background(), flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, levels := range []int{0, 1} {
		opt := flat
		opt.Levels = levels
		got, err := f.Find(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if gtlHash(got) != gtlHash(ref) {
			t.Errorf("Levels=%d result differs from flat run", levels)
		}
		if got.Levels != nil {
			t.Errorf("Levels=%d: flat run carries level stats %+v", levels, got.Levels)
		}
		if len(got.Seeds) != len(ref.Seeds) {
			t.Errorf("Levels=%d: trace count %d != flat %d", levels, len(got.Seeds), len(ref.Seeds))
		}
	}
}

// TestMultilevelRecoversPlantedBlocks checks the quality half of the
// pipeline's contract: with Levels>=2 the detector must still recover
// the overwhelming majority of planted-GTL cells.
func TestMultilevelRecoversPlantedBlocks(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  40_000,
		Blocks: []generate.BlockSpec{{Size: 2500}, {Size: 1800}},
		Seed:   21,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 64
	opt.MaxOrderLen = 10_000
	opt.RandSeed = 21
	opt.Levels = 3
	opt.MinCoarseCells = 2000

	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 2 {
		t.Fatalf("multilevel run reports %d level entries; hierarchy did not form", len(res.Levels))
	}
	if res.Levels[0].SeedsRun == 0 {
		t.Error("coarsest level ran no seeds")
	}
	planted, recovered := 0, 0
	for _, truth := range rg.Blocks {
		planted += len(truth)
		if m := bestMatch(truth, res.GTLs); m != nil {
			missed, _ := matchBlock(truth, m.Members)
			recovered += len(truth) - missed
		}
	}
	frac := float64(recovered) / float64(planted)
	t.Logf("multilevel recovery: %d/%d planted cells (%.1f%%), %d GTLs, levels=%d",
		recovered, planted, 100*frac, len(res.GTLs), len(res.Levels))
	if frac < 0.9 {
		t.Errorf("recovered only %.1f%% of planted cells; want >= 90%%", 100*frac)
	}

	// Determinism: the multilevel pipeline must reproduce itself.
	res2, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if gtlHash(res) != gtlHash(res2) {
		t.Error("multilevel run not deterministic")
	}
}

// TestMultilevelSharding: a multilevel run split into coarse-schedule
// shards and merged reproduces the whole multilevel run exactly, and
// shards produced under a different Levels are refused at merge time
// instead of silently mis-assembling.
func TestMultilevelSharding(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 4000, Blocks: []generate.BlockSpec{{Size: 220}}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opt := DefaultOptions()
	opt.Seeds = 8
	opt.MaxOrderLen = 500
	opt.Levels = 2

	want, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*ShardResult
	for lo := 0; lo < opt.Seeds; lo += 3 {
		hi := lo + 3
		if hi > opt.Seeds {
			hi = opt.Seeds
		}
		s, err := f.FindShard(ctx, opt, lo, hi)
		if err != nil {
			t.Fatalf("FindShard [%d,%d): %v", lo, hi, err)
		}
		shards = append(shards, s)
	}
	merged, err := f.Merge(opt, shards...)
	if err != nil {
		t.Fatal(err)
	}
	if gtlHash(want) != gtlHash(merged) {
		t.Error("merged multilevel shards diverge from whole multilevel run")
	}

	// Flat shards must not merge into a multilevel run (and vice versa).
	flat := opt
	flat.Levels = 1
	fs, err := f.FindShard(ctx, flat, 0, opt.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Merge(opt, fs); err == nil || !strings.Contains(err.Error(), "Levels") {
		t.Errorf("merging a flat shard under Levels=2 should fail with a Levels mismatch, got %v", err)
	}
}

// TestMultilevelOptionValidation covers the new fields' bounds.
func TestMultilevelOptionValidation(t *testing.T) {
	var b netlist.Builder
	b.AddCells(16)
	for i := 0; i < 15; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID(i+1))
	}
	nl := b.MustBuild()
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
		want   string
	}{
		{"negative levels", func(o *Options) { o.Levels = -1 }, "Levels"},
		{"absurd levels", func(o *Options) { o.Levels = 40 }, "Levels"},
		{"negative min coarse", func(o *Options) { o.MinCoarseCells = -5 }, "MinCoarseCells"},
		{"negative refine radius", func(o *Options) { o.RefineRadius = -1 }, "RefineRadius"},
	} {
		opt := DefaultOptions()
		tc.mutate(&opt)
		if _, err := Find(nl, opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
}

// TestMultilevelTinyNetlistFallsBack: when the netlist is already at
// or below the coarsening floor, Levels>1 must degrade gracefully to
// the flat pipeline instead of failing.
func TestMultilevelTinyNetlistFallsBack(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  2000,
		Blocks: []generate.BlockSpec{{Size: 300}},
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 24
	opt.MaxOrderLen = 900
	opt.Levels = 3 // floor (default 2500) exceeds the netlist size

	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Levels = 1
	flat, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if gtlHash(ml) != gtlHash(flat) {
		t.Error("degenerate multilevel run differs from flat run")
	}
}

// TestPoolCapAndTrim covers the bounded worker-state pool: the engine
// must retain at most PoolCap idle states, SetPoolCap(0) and TrimPool
// must drop them, and MemoryEstimate must track what is retained.
func TestPoolCapAndTrim(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 400}},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 16
	opt.MaxOrderLen = 1200
	opt.Workers = 4
	if _, err := f.Find(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if n := f.PooledStates(); n == 0 {
		t.Fatal("no worker states pooled after a run")
	}
	if b := f.MemoryEstimate(); b <= 0 {
		t.Errorf("MemoryEstimate = %d after a pooled run; want positive", b)
	}

	f.SetPoolCap(1)
	if n := f.PooledStates(); n > 1 {
		t.Errorf("pool holds %d states after SetPoolCap(1)", n)
	}
	if _, err := f.Find(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if n := f.PooledStates(); n > 1 {
		t.Errorf("pool refilled past cap: %d states", n)
	}

	f.TrimPool()
	if n := f.PooledStates(); n != 0 {
		t.Errorf("pool holds %d states after TrimPool", n)
	}
	if b := f.MemoryEstimate(); b != 0 {
		t.Errorf("MemoryEstimate = %d after TrimPool; want 0", b)
	}

	// A multilevel run builds sub-engines; the trim and the estimate
	// must reach them too.
	f.SetPoolCap(2)
	mlOpt := opt
	mlOpt.Levels = 2
	mlOpt.MinCoarseCells = 500
	if _, err := f.Find(context.Background(), mlOpt); err != nil {
		t.Fatal(err)
	}
	if b := f.MemoryEstimate(); b <= 0 {
		t.Errorf("MemoryEstimate = %d after a multilevel run; want positive (hierarchy retained)", b)
	}
	f.TrimPool()
	if n := f.PooledStates(); n != 0 {
		t.Errorf("finest pool holds %d states after TrimPool", n)
	}
	// The hierarchy's coarse netlists stay cached (rebuilding them per
	// run would defeat the engine), so the estimate stays positive but
	// must shrink once the pools are gone.
	afterTrim := f.MemoryEstimate()
	if afterTrim <= 0 {
		t.Errorf("MemoryEstimate = %d after multilevel trim; hierarchy bytes should remain", afterTrim)
	}

	// Results must be unaffected by pool churn.
	res1, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	f.TrimPool()
	res2, err := f.Find(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if gtlHash(res1) != gtlHash(res2) {
		t.Error("pool trimming changed results")
	}
}
