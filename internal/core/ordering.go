package core

import (
	"slices"

	"tanglefind/internal/ds"
	"tanglefind/internal/group"
	"tanglefind/internal/netlist"
)

// OrderingStats is the outcome of Phase I for one seed: the ordering
// itself plus the per-prefix cut and pin totals Phase II scores.
// Cuts[k-1] and Pins[k-1] describe the prefix of the first k cells.
type OrderingStats struct {
	Members []netlist.CellID
	Cuts    []int32
	Pins    []int64
}

// Len returns the ordering length.
func (o *OrderingStats) Len() int { return len(o.Members) }

// Prefix returns the first k members (aliasing the ordering).
func (o *OrderingStats) Prefix(k int) []netlist.CellID { return o.Members[:k] }

// grower owns the reusable state for running Phase I repeatedly over
// one netlist. It is not safe for concurrent use; the engine pools
// growers and hands each worker its own. The options pointer is set by
// the engine when a worker borrows the grower for a run (options can
// change between runs of the same engine; the sized arrays and buffers
// below depend only on the netlist and survive every run).
//
// The inner addCell loop is the finder's hottest path. Per absorbed
// cell it walks CellPins(v) once (fused with the tracker's cut
// bookkeeping) and then, per incident net, only that net's *live
// outside pins*: each net's outside-pin list is materialized into the
// shared arena on first touch and compacted order-preservingly as its
// pins are absorbed, so a pin run is scanned in full exactly once per
// growth and every later touch pays only for the pins still outside —
// amortized O(Σ|e|) list maintenance instead of the former
// O(Σ|e|·absorbs(e)) full re-walks. See addCellBaseline for the
// retained pre-overhaul loop (benchmark baseline and golden oracle).
type grower struct {
	nl      *netlist.Netlist
	tracker *group.Tracker
	heap    ds.GainHeap
	// bheap and btracker are the retained pre-overhaul frontier heap
	// and group tracker; only the baseline engine touches them, and the
	// tracker is allocated lazily on the first baseline growth (see
	// ordering_baseline.go).
	bheap    baselineHeap
	btracker *baselineTracker
	// front is the dense per-cell frontier state: one epoch-stamped
	// 16-byte entry holding the cell's gain, tiebreak and discovery
	// stamp. A cell is live in the current growth iff the epoch bits of
	// its stamp equal the grower's — so per-seed reset is one counter
	// bump instead of a walk, and the hot loop touches one cache line
	// per cell where the former gain/tie/inFront parallel arrays
	// touched three. The stamp's high bits carry per-growth flags
	// (pending coalesced push, examined) and the cell's heap-buffer
	// slot hint; see epochMask.
	front []frontEntry
	epoch uint32
	// outs is the per-net live outside-pin descriptor: a window into
	// arena, valid while its epoch matches the grower's. Nets that stay
	// fully internal or above the K-factor skip are never materialized.
	outs  []outsEntry
	arena []netlist.CellID // backing store for outs windows, reset per growth
	// pend lists the frontier cells whose gain the current addCell has
	// bumped but not yet pushed: all of one absorb's bumps to a cell
	// coalesce into a single heap push (see the flush at the end of
	// addCell for why that is output-invariant).
	pend []netlist.CellID
	// rank, when non-nil, is the permuted→original id map of a relabel
	// shadow engine (see relabel.go): materialized outside-pin lists
	// are sorted by it and the heap breaks final ties by it, which
	// makes the shadow's absorb sequence physically identical to the
	// unpermuted engine's. Nil on ordinary growers — there the CSR's
	// ascending pin runs are already rank order.
	rank []int32
	// baseline selects the retained pre-overhaul inner loop: full
	// NetPins re-walks and one heap push per (net, cell) update. Used
	// by the hotpath experiment as the timing baseline and by the
	// differential tests as the bit-identity oracle.
	baseline bool
	// touched is the discovery list of the current growth (frontier
	// and absorbed cells, in first-touch order — BFS ties index it);
	// incremental footprints under OrderMinCut consume it.
	touched []netlist.CellID
	// examined records the cells whose own pin runs popBest read (the
	// DeltaCut re-verification) during the current growth. Together
	// with the ordering members it is the growth's exact read set
	// under OrderWeighted — unexamined frontier cells contribute only
	// gains, which are functions of member-incident nets — and that
	// read set is what incremental detection stores as the seed's
	// footprint. Deduplicated at append time via the examined stamp
	// bit: each cell appears at most once per growth.
	examined []netlist.CellID
	opt      *Options

	// phases accumulates the per-seed pipeline phase wall time (ns)
	// this worker executed; timed snapshots the package stage-timing
	// switch at acquire time so runSeed reads a plain bool. Harvested
	// and zeroed by runSeedPool when the worker drains.
	phases phaseAcc
	timed  bool

	ord   OrderingStats // reusable Phase I output (aliased by grow's return)
	curve Curve         // reusable Phase II score buffer (see scoreCurve)
	combo comboScratch  // reusable Phase III recombination arena
}

// frontEntry is one cell's frontier state, valid while the epoch bits
// of stamp match the grower's current epoch.
type frontEntry struct {
	gain  float64 // current connection weight
	tie   int32   // discovery index (BFS) or last verified cut-delta
	stamp uint32  // epoch bits plus per-growth flag bits
}

// outsEntry locates one net's live outside pins inside grower.arena,
// valid while epoch matches the grower's current epoch.
type outsEntry struct {
	off   int32
	n     int32
	epoch uint32
}

// Stamp layout: the low 23 bits are the growth epoch; above them sit
// two per-growth flag bits and a 7-bit heap-buffer slot hint. Flags
// and hint are implicitly cleared whenever the epoch bits go stale
// (liveness always compares stamp&epochMask), and the hint is
// additionally self-validating: the heap re-checks the slot's key
// before coalescing, so a hint left dangling by a pop or spill is
// merely a missed coalesce, never a wrong one.
const (
	epochMask   = 1<<23 - 1 // growth epoch
	pendingBit  = 1 << 23   // gain bumped this addCell, push pending
	examinedBit = 1 << 24   // already on the examined list this growth
	slotShift   = 25        // buffered-push slot hint (see GainHeap.PushHinted)
	slotMask    = uint32(0x7F) << slotShift
)

// Nets below group.WideNetMin pins are walked directly off the pin CSR
// instead of through a materialized live outside-pin list (see the
// dispatch in addCell): list upkeep only amortizes when the same net's
// pin run is re-walked many times, and for the narrow nets that
// dominate real netlists the direct walk's member-skip is cheaper than
// the arena traffic — skipping the list machinery also skips the
// per-net g.outs epoch probe, the absorb loop's one remaining random
// load besides the frontier itself. Wide nets are the asymptotic case
// the lists exist for: a mostly-absorbed wide net re-walked directly
// would cost its full pin run per absorb (the pre-overhaul
// O(Σ|e|·absorbs) pathology) where the live list costs only λ. The
// width test rides in on the AbsorbWideBit the tracker's Add already
// computed, so the dispatch is branch-only.

// invTab caches 1/k for small k: the weighted gain formula otherwise
// spends one float divide per term per walked net, and λ is bounded by
// the K-factor skip in every realistic configuration. Entries are
// exactly the IEEE values 1.0/float64(k) produces, so using the table
// is bit-invisible.
var invTab = func() (t [256]float64) {
	for i := 1; i < len(t); i++ {
		t[i] = 1.0 / float64(i)
	}
	return
}()

func inv(k int) float64 {
	if k < len(invTab) {
		return invTab[k]
	}
	return 1.0 / float64(k)
}

func newGrower(nl *netlist.Netlist) *grower {
	g := &grower{
		nl:      nl,
		tracker: group.NewTracker(nl),
		front:   make([]frontEntry, nl.NumCells()),
		outs:    make([]outsEntry, nl.NumNets()),
	}
	return g
}

func (g *grower) reset() {
	g.tracker.Reset()
	g.heap.Reset()
	g.bheap.Reset()
	g.bumpEpoch()
	g.touched = g.touched[:0]
	g.examined = g.examined[:0]
	g.arena = g.arena[:0]
	g.pend = g.pend[:0]
}

// bumpEpoch invalidates every frontier entry and outside-pin list in
// O(1). On the (once per 2^23 growths) wraparound both arrays are
// cleared so stale stamps from eight million growths ago cannot alias
// the fresh epoch.
func (g *grower) bumpEpoch() {
	g.epoch++
	if g.epoch > epochMask {
		clear(g.front)
		clear(g.outs)
		g.epoch = 1
	}
}

// grow runs Phase I from seed, producing an ordering of at most maxLen
// cells (shorter if the seed's reachable region is exhausted). The
// returned stats alias the grower's reusable buffer and stay valid only
// until the next grow call; callers that keep prefixes copy them
// through group.Evaluator.Eval.
func (g *grower) grow(seed netlist.CellID, maxLen int) *OrderingStats {
	if g.baseline {
		return g.growBaseline(seed, maxLen)
	}
	g.reset()
	if maxLen > g.nl.NumCells() {
		maxLen = g.nl.NumCells()
	}
	out := &g.ord
	out.Members = out.Members[:0]
	out.Cuts = out.Cuts[:0]
	out.Pins = out.Pins[:0]
	record := func() {
		out.Members = append(out.Members, g.tracker.Members()[g.tracker.Size()-1])
		out.Cuts = append(out.Cuts, int32(g.tracker.Cut()))
		out.Pins = append(out.Pins, int64(g.tracker.Pins()))
	}
	g.addCell(seed)
	record()
	for g.tracker.Size() < maxLen {
		v, ok := g.popBest()
		if !ok {
			break
		}
		g.addCell(v)
		record()
	}
	return out
}

// popBest pops the best frontier cell under the configured ordering
// rule, discarding stale entries and re-verifying cut deltas lazily.
func (g *grower) popBest() (netlist.CellID, bool) {
	for {
		v, gain, tie, ok := g.heap.Pop()
		if !ok {
			return 0, false
		}
		fe := &g.front[v]
		if g.tracker.Has(int(v)) || fe.stamp&epochMask != g.epoch {
			continue // already absorbed
		}
		if gain != fe.gain {
			continue // stale gain; a fresher entry exists
		}
		if g.opt.Ordering == OrderBFS {
			return v, true // tie is the discovery index, always valid
		}
		if fe.stamp&examinedBit == 0 {
			fe.stamp |= examinedBit
			g.examined = append(g.examined, v)
		}
		// The cut-delta tiebreak only decides between entries with
		// EQUAL gain. When v's gain is strictly ahead of the new top,
		// v wins whatever its tie is — the baseline would at worst
		// requeue v at the fresh tie and immediately pop it again
		// (nothing can overtake a strict maximum), returning the same
		// cell with the same heap state. Skipping the verification is
		// therefore bit-identical, and it eliminates a DeltaCut walk
		// from every uncontested pop.
		if tg, any := g.heap.TopGain(); !any || tg != gain {
			return v, true
		}
		fresh := int32(g.tracker.DeltaCut(v))
		if fresh != tie {
			fe.tie = fresh
			// The cut delta drifted since this entry was pushed. The
			// baseline requeues at the exact value and keeps popping —
			// but when the corrected entry still beats everything
			// queued, that requeue is popped straight back (and pays a
			// second, identical DeltaCut walk to verify the value just
			// computed). Returning directly leaves the same queue
			// multiset and the same winner: bit-identical, one
			// push/pop/verify round-trip cheaper. Cut deltas mostly
			// drift downward as the group grows, so this is the common
			// case in an equal-gain contest.
			if g.heap.StillBest(int32(v), gain, fresh) {
				return v, true
			}
			// Requeue hinted: the old hint is dead (this pop removed the
			// entry it pointed at), so this records the requeued entry's
			// slot — a later gain bump coalesces onto it in place.
			slot := g.heap.PushHinted(int32(v), gain, fresh, fe.stamp>>slotShift)
			fe.stamp = fe.stamp&^slotMask | slot<<slotShift
			continue
		}
		return v, true
	}
}

// addCell absorbs v into the group and refreshes frontier weights.
//
// Output invariance of the two walk optimizations, relied on by the
// golden tests against addCellBaseline:
//
//   - Live outside-pin lists: a list is materialized in pin-run order
//     (minus already-absorbed members) and compacted in place, so the
//     surviving pins keep exactly the relative order the baseline's
//     full re-walk would visit them in. First-touch discovery order —
//     and with it every BFS/MinCut tiebreak — is therefore unchanged,
//     and within one net every outside pin receives the same gain
//     delta, so accumulation order per cell (net by net along
//     CellPins(v)) is unchanged too.
//
//   - Push coalescing: the baseline pushes after every per-net gain
//     bump; this loop pushes once per touched cell per absorb, at the
//     cell's final accumulated gain. Weighted deltas are strictly
//     positive, so every intermediate value the baseline pushes is
//     strictly below the cell's final gain of that absorb and can
//     never match fe.gain again (gains only grow) — popBest discards
//     such entries with zero side effects before they influence
//     anything. The heap's (gain desc, tie asc, key asc) order is a
//     total order, so dropping entries that could never win and
//     reordering the survivors' pushes leaves the pop sequence
//     bit-identical.
func (g *grower) addCell(v netlist.CellID) {
	t := g.tracker
	front := g.front // hoisted: the inner loops index it per pin
	epoch := g.epoch
	if front[v].stamp&epochMask != epoch {
		front[v].stamp = epoch
		g.touched = append(g.touched, v) // first touch: enters the discovery list
	}
	t.Add(v)
	nets := g.nl.CellPins(v)
	info := t.AbsorbInfo() // per-net (λ, newly-connected), fused into Add's walk
	info = info[:len(nets)]
	weighted := g.opt.Ordering == OrderWeighted
	skip := g.opt.BigNetSkip
	for i, e := range nets {
		s := info[i]
		lambda := int(s >> group.AbsorbShift) // pins still outside
		if lambda == 0 {
			// Fully internal: no frontier contribution left. The net's
			// list (if materialized) still holds v, but λ can never
			// grow, so it is dead for the rest of this growth.
			continue
		}
		if skip > 0 && lambda >= skip {
			// The paper's K-factor optimization: weight changes on
			// nets with many outside pins are negligible; skip them.
			// λ only shrinks, so a skipped net has never been
			// materialized either.
			continue
		}
		var delta float64
		if weighted {
			wNew := inv(lambda + 1)
			if s&group.AbsorbNewBit != 0 {
				delta = wNew // net newly connected to the group
			} else {
				delta = wNew - inv(lambda+2)
			}
		}
		var list []netlist.CellID
		direct := false
		if s&group.AbsorbWideBit == 0 && g.rank == nil {
			// Narrow net: a direct pin-run walk with member skipping is
			// cheaper than list upkeep. Members — v included — are
			// filtered by the Has check in the loops below; the visit
			// order equals the materialized order, so the two paths are
			// interchangeable absorb by absorb. Width is a property of
			// the net, not of λ — so the narrow majority never touches
			// g.outs at all, while a wide net keeps its amortized list
			// even once λ is small: its full pin run (the direct walk's
			// cost) only grows more member-heavy as the group absorbs it.
			list = g.nl.NetPins(e)
			if s&group.AbsorbNewBit != 0 && weighted {
				// Freshly connected: v is the net's only member, so the
				// member skip degenerates to an id compare — no bitset
				// load per pin. Same survivors, same order.
				for _, w := range list {
					if w == v {
						continue
					}
					fe := &front[w]
					st := fe.stamp
					if st&epochMask != epoch {
						fe.stamp = epoch | pendingBit
						g.touched = append(g.touched, w)
						fe.gain = delta
						fe.tie = 0
						g.pend = append(g.pend, w)
						continue
					}
					fe.gain += delta
					if st&pendingBit == 0 {
						fe.stamp = st | pendingBit
						g.pend = append(g.pend, w)
					}
				}
				continue
			}
			direct = true
		} else if oe := &g.outs[e]; oe.epoch == epoch {
			// v was outside until this absorb: compact it out of the
			// live list, preserving the remaining pins' order.
			lst := g.arena[oe.off : oe.off+oe.n]
			for j, w := range lst {
				if w == v {
					copy(lst[j:], lst[j+1:])
					oe.n--
					break
				}
			}
			list = g.arena[oe.off : oe.off+oe.n]
		} else {
			// First walk of a wide net this growth: materialize its
			// live outside pins (pin-run order, rank order on relabel
			// shadows) into the arena, so later walks cost λ live pins
			// instead of |e| total. Offsets stay valid across arena
			// regrowth; the window slice is taken afterwards. Relabel
			// shadows materialize unconditionally — the rank sort is
			// what keeps their visit order physically identical to the
			// unpermuted engine's.
			start := len(g.arena)
			if s&group.AbsorbNewBit != 0 {
				// Freshly connected: the only member to filter is v.
				for _, w := range g.nl.NetPins(e) {
					if w != v {
						g.arena = append(g.arena, w)
					}
				}
			} else {
				for _, w := range g.nl.NetPins(e) {
					if !t.Has(int(w)) {
						g.arena = append(g.arena, w)
					}
				}
			}
			if g.rank != nil {
				g.sortByRank(g.arena[start:])
			}
			oe.off = int32(start)
			oe.n = int32(len(g.arena) - start)
			oe.epoch = epoch
			list = g.arena[start:]
		}
		if weighted {
			for _, w := range list {
				if direct && t.Has(int(w)) {
					continue // direct pin-run walk: skip members
				}
				fe := &front[w]
				st := fe.stamp
				if st&epochMask != epoch {
					fe.stamp = epoch | pendingBit
					g.touched = append(g.touched, w)
					fe.gain = delta
					fe.tie = 0
					g.pend = append(g.pend, w)
					continue
				}
				fe.gain += delta
				if st&pendingBit == 0 {
					fe.stamp = st | pendingBit
					g.pend = append(g.pend, w)
				}
			}
		} else {
			for _, w := range list {
				if direct && t.Has(int(w)) {
					continue // direct pin-run walk: skip members
				}
				fe := &front[w]
				if fe.stamp&epochMask != epoch {
					fe.stamp = epoch
					g.touched = append(g.touched, w)
					fe.gain = 0
					switch g.opt.Ordering {
					case OrderBFS:
						// Discovery order: earlier index wins. Encode as
						// constant gain with index tiebreak.
						fe.tie = int32(len(g.touched))
						g.heap.Push(w, 0, fe.tie)
					case OrderMinCut:
						fe.tie = int32(t.DeltaCut(w))
						g.heap.Push(w, 0, fe.tie)
					}
				}
				// OrderMinCut: gain stays 0; cut deltas are re-verified
				// at pop. OrderBFS: nothing beyond discovery.
			}
		}
	}
	// Flush the coalesced pushes: one per cell this absorb touched, at
	// its final accumulated gain. The slot hint carried in the stamp
	// lets consecutive absorbs that bump the same cell overwrite its
	// still-buffered entry instead of queueing a stale duplicate — the
	// duplicate could only ever be discarded at pop (gains only grow),
	// so the pop sequence is unchanged while the main heap stays free
	// of superseded revisions.
	for _, w := range g.pend {
		fe := &front[w]
		st := fe.stamp &^ pendingBit
		slot := g.heap.PushHinted(w, fe.gain, fe.tie, st>>slotShift)
		fe.stamp = st&^slotMask | slot<<slotShift
	}
	g.pend = g.pend[:0]
}

// sortByRank orders a freshly materialized outside-pin list by the
// relabel shadow's original-id rank. Lists are λ-bounded by the
// K-factor skip, so insertion sort wins; the slices.SortFunc fallback
// covers skip-disabled configurations with huge nets.
func (g *grower) sortByRank(lst []netlist.CellID) {
	if len(lst) > 64 {
		slices.SortFunc(lst, func(a, b netlist.CellID) int {
			return int(g.rank[a]) - int(g.rank[b])
		})
		return
	}
	for i := 1; i < len(lst); i++ {
		w := lst[i]
		r := g.rank[w]
		j := i - 1
		for j >= 0 && g.rank[lst[j]] > r {
			lst[j+1] = lst[j]
			j--
		}
		lst[j+1] = w
	}
}
