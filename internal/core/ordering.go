package core

import (
	"tanglefind/internal/ds"
	"tanglefind/internal/group"
	"tanglefind/internal/netlist"
)

// OrderingStats is the outcome of Phase I for one seed: the ordering
// itself plus the per-prefix cut and pin totals Phase II scores.
// Cuts[k-1] and Pins[k-1] describe the prefix of the first k cells.
type OrderingStats struct {
	Members []netlist.CellID
	Cuts    []int32
	Pins    []int64
}

// Len returns the ordering length.
func (o *OrderingStats) Len() int { return len(o.Members) }

// Prefix returns the first k members (aliasing the ordering).
func (o *OrderingStats) Prefix(k int) []netlist.CellID { return o.Members[:k] }

// grower owns the reusable state for running Phase I repeatedly over
// one netlist. It is not safe for concurrent use; the engine pools
// growers and hands each worker its own. The options pointer is set by
// the engine when a worker borrows the grower for a run (options can
// change between runs of the same engine; the sized arrays and buffers
// below depend only on the netlist and survive every run).
//
// The inner addCell loop is the finder's hottest path: per absorbed
// cell it walks CellPins(v) and then NetPins(e) for every incident
// net. Both walks are contiguous runs of the netlist's flat CSR
// arrays, which is what keeps Phase I memory-bound rather than
// latency-bound on netlists with hundreds of thousands of cells.
type grower struct {
	nl      *netlist.Netlist
	tracker *group.Tracker
	heap    ds.GainHeap
	// front is the dense per-cell frontier state: one epoch-stamped
	// 16-byte entry holding the cell's gain, tiebreak and discovery
	// stamp. A cell is live in the current growth iff its epoch equals
	// the grower's — so per-seed reset is one counter bump instead of
	// a walk, and the hot loop touches one cache line per cell where
	// the former gain/tie/inFront parallel arrays touched three.
	front []frontEntry
	epoch uint32
	// touched is the discovery list of the current growth (frontier
	// and absorbed cells, in first-touch order — BFS ties index it);
	// incremental footprints under OrderMinCut consume it.
	touched []netlist.CellID
	// examined records the cells whose own pin runs popBest read (the
	// DeltaCut re-verification) during the current growth. Together
	// with the ordering members it is the growth's exact read set
	// under OrderWeighted — unexamined frontier cells contribute only
	// gains, which are functions of member-incident nets — and that
	// read set is what incremental detection stores as the seed's
	// footprint. May hold duplicates; consumers dedupe.
	examined []netlist.CellID
	opt      *Options

	// phases accumulates the per-seed pipeline phase wall time (ns)
	// this worker executed; timed snapshots the package stage-timing
	// switch at acquire time so runSeed reads a plain bool. Harvested
	// and zeroed by runSeedPool when the worker drains.
	phases phaseAcc
	timed  bool

	ord   OrderingStats // reusable Phase I output (aliased by grow's return)
	curve Curve         // reusable Phase II score buffer (see scoreCurve)
	combo comboScratch  // reusable Phase III recombination arena
}

// frontEntry is one cell's frontier state, valid while epoch matches
// the grower's current stamp.
type frontEntry struct {
	gain  float64 // current connection weight
	tie   int32   // discovery index (BFS) or last verified cut-delta
	epoch uint32
}

func newGrower(nl *netlist.Netlist) *grower {
	return &grower{
		nl:      nl,
		tracker: group.NewTracker(nl),
		front:   make([]frontEntry, nl.NumCells()),
	}
}

func (g *grower) reset() {
	g.tracker.Reset()
	g.heap.Reset()
	g.bumpEpoch()
	g.touched = g.touched[:0]
	g.examined = g.examined[:0]
}

// bumpEpoch invalidates every frontier entry in O(1). On the (once per
// 2^32 growths) wraparound the whole array is cleared so stale stamps
// from four billion growths ago cannot alias the fresh epoch.
func (g *grower) bumpEpoch() {
	g.epoch++
	if g.epoch == 0 {
		clear(g.front)
		g.epoch = 1
	}
}

// grow runs Phase I from seed, producing an ordering of at most maxLen
// cells (shorter if the seed's reachable region is exhausted). The
// returned stats alias the grower's reusable buffer and stay valid only
// until the next grow call; callers that keep prefixes copy them
// through group.Evaluator.Eval.
func (g *grower) grow(seed netlist.CellID, maxLen int) *OrderingStats {
	g.reset()
	if maxLen > g.nl.NumCells() {
		maxLen = g.nl.NumCells()
	}
	out := &g.ord
	out.Members = out.Members[:0]
	out.Cuts = out.Cuts[:0]
	out.Pins = out.Pins[:0]
	record := func() {
		out.Members = append(out.Members, g.tracker.Members()[g.tracker.Size()-1])
		out.Cuts = append(out.Cuts, int32(g.tracker.Cut()))
		out.Pins = append(out.Pins, int64(g.tracker.Pins()))
	}
	g.addCell(seed)
	record()
	for g.tracker.Size() < maxLen {
		v, ok := g.popBest()
		if !ok {
			break
		}
		g.addCell(v)
		record()
	}
	return out
}

// popBest pops the best frontier cell under the configured ordering
// rule, discarding stale entries and re-verifying cut deltas lazily.
func (g *grower) popBest() (netlist.CellID, bool) {
	for {
		v, gain, tie, ok := g.heap.Pop()
		if !ok {
			return 0, false
		}
		fe := &g.front[v]
		if g.tracker.Has(int(v)) || fe.epoch != g.epoch {
			continue // already absorbed
		}
		if gain != fe.gain {
			continue // stale gain; a fresher entry exists
		}
		if g.opt.Ordering == OrderBFS {
			return v, true // tie is the discovery index, always valid
		}
		g.examined = append(g.examined, v)
		fresh := int32(g.tracker.DeltaCut(v))
		if fresh != tie {
			// The cut delta drifted since this entry was pushed;
			// requeue at the exact value and keep popping.
			fe.tie = fresh
			g.heap.Push(v, gain, fresh)
			continue
		}
		return v, true
	}
}

// addCell absorbs v into the group and refreshes frontier weights.
func (g *grower) addCell(v netlist.CellID) {
	t := g.tracker
	if g.front[v].epoch != g.epoch {
		g.front[v].epoch = g.epoch
		g.touched = append(g.touched, v) // first touch: enters the discovery list
	}
	t.Add(v)
	for _, e := range g.nl.CellPins(v) {
		sz := g.nl.NetSize(e)
		p := t.NetPinsIn(e) // pins inside after adding v
		lambda := sz - p    // pins still outside
		if lambda == 0 {
			continue // fully internal: no frontier contribution left
		}
		if g.opt.BigNetSkip > 0 && lambda >= g.opt.BigNetSkip {
			// The paper's K-factor optimization: weight changes on
			// nets with many outside pins are negligible; skip them.
			continue
		}
		var delta float64
		switch g.opt.Ordering {
		case OrderWeighted:
			wNew := 1.0 / float64(lambda+1)
			if p == 1 {
				delta = wNew // net newly connected to the group
			} else {
				delta = wNew - 1.0/float64(lambda+2)
			}
		case OrderMinCut, OrderBFS:
			delta = 0 // gain unused; frontier membership only
		}
		for _, w := range g.nl.NetPins(e) {
			if t.Has(int(w)) {
				continue
			}
			fe := &g.front[w]
			if fe.epoch != g.epoch {
				fe.epoch = g.epoch
				g.touched = append(g.touched, w)
				fe.gain = 0
				switch g.opt.Ordering {
				case OrderBFS:
					// Discovery order: earlier index wins. Encode as
					// constant gain with index tiebreak.
					fe.tie = int32(len(g.touched))
					g.heap.Push(w, 0, fe.tie)
				case OrderMinCut:
					fe.tie = int32(t.DeltaCut(w))
					g.heap.Push(w, 0, fe.tie)
				default:
					fe.tie = 0
				}
			}
			switch g.opt.Ordering {
			case OrderWeighted:
				fe.gain += delta
				g.heap.Push(w, fe.gain, fe.tie)
			case OrderMinCut:
				// Gain stays 0; cut deltas are re-verified at pop.
			}
		}
	}
}
