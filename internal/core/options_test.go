package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	opt.Seeds = 17
	opt.Metric = MetricNGTLS
	opt.Ordering = OrderBFS
	opt.Refine = false
	opt.Workers = 3
	opt.KeepCurves = true
	opt.RandSeed = 99

	data, err := json.Marshal(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"metric":"ngtls"`, `"ordering":"bfs"`, `"refine":false`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshal missing %s in %s", want, data)
		}
	}
	got, err := ParseOptions(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, opt) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, opt)
	}
}

func TestParseOptionsDefaultsAndErrors(t *testing.T) {
	// Absent fields keep their defaults; empty document is all-default.
	for _, doc := range []string{"", "   ", "{}"} {
		got, err := ParseOptions([]byte(doc))
		if err != nil {
			t.Fatalf("ParseOptions(%q): %v", doc, err)
		}
		if !reflect.DeepEqual(got, DefaultOptions()) {
			t.Errorf("ParseOptions(%q) != DefaultOptions", doc)
		}
	}
	got, err := ParseOptions([]byte(`{"seeds": 5, "metric": "ngtls"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seeds != 5 || got.Metric != MetricNGTLS || got.MaxOrderLen != DefaultOptions().MaxOrderLen {
		t.Errorf("partial overlay wrong: %+v", got)
	}

	// Unknown fields, invalid values and trailing garbage are rejected.
	for _, doc := range []string{
		`{"seedz": 5}`,
		`{"seeds": -1}`,
		`{"metric": "banana"}`,
		`{"ordering": "dfs"}`,
		`{} {"seeds": 2}`,
		`{"dip_ratio": 0}`,
	} {
		if _, err := ParseOptions([]byte(doc)); err == nil {
			t.Errorf("ParseOptions(%q) accepted", doc)
		}
	}
}

func TestParseMetricOrdering(t *testing.T) {
	cases := []struct {
		in   string
		m    Metric
		fail bool
	}{
		{"gtlsd", MetricGTLSD, false},
		{"GTL-SD", MetricGTLSD, false},
		{" ngtls ", MetricNGTLS, false},
		{"nGTL-S", MetricNGTLS, false},
		{"", 0, true},
		{"cut", 0, true},
	}
	for _, c := range cases {
		m, err := ParseMetric(c.in)
		if (err != nil) != c.fail || (!c.fail && m != c.m) {
			t.Errorf("ParseMetric(%q) = %v, %v", c.in, m, err)
		}
	}
	for _, s := range []string{"weighted", "mincut", "bfs"} {
		o, err := ParseOrdering(s)
		if err != nil || o.String() != s {
			t.Errorf("ParseOrdering(%q) = %v, %v", s, o, err)
		}
	}
	if _, err := ParseOrdering("random"); err == nil {
		t.Error("ParseOrdering accepted garbage")
	}
}
