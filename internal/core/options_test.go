package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	opt.Seeds = 17
	opt.Metric = MetricNGTLS
	opt.Ordering = OrderBFS
	opt.Refine = false
	opt.Workers = 3
	opt.KeepCurves = true
	opt.RandSeed = 99

	data, err := json.Marshal(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"metric":"ngtls"`, `"ordering":"bfs"`, `"refine":false`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshal missing %s in %s", want, data)
		}
	}
	got, err := ParseOptions(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, opt) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, opt)
	}
}

func TestParseOptionsDefaultsAndErrors(t *testing.T) {
	// Absent fields keep their defaults; empty document is all-default.
	for _, doc := range []string{"", "   ", "{}"} {
		got, err := ParseOptions([]byte(doc))
		if err != nil {
			t.Fatalf("ParseOptions(%q): %v", doc, err)
		}
		if !reflect.DeepEqual(got, DefaultOptions()) {
			t.Errorf("ParseOptions(%q) != DefaultOptions", doc)
		}
	}
	got, err := ParseOptions([]byte(`{"seeds": 5, "metric": "ngtls"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seeds != 5 || got.Metric != MetricNGTLS || got.MaxOrderLen != DefaultOptions().MaxOrderLen {
		t.Errorf("partial overlay wrong: %+v", got)
	}

	// Unknown fields, invalid values and trailing garbage are rejected.
	for _, doc := range []string{
		`{"seedz": 5}`,
		`{"seeds": -1}`,
		`{"metric": "banana"}`,
		`{"ordering": "dfs"}`,
		`{} {"seeds": 2}`,
		`{"dip_ratio": 0}`,
	} {
		if _, err := ParseOptions([]byte(doc)); err == nil {
			t.Errorf("ParseOptions(%q) accepted", doc)
		}
	}
}

// TestParseOptionsOldPayload locks the forward-compatibility
// guarantee for the multilevel fields: an options document written by
// a pre-multilevel client (no levels/min_coarse_cells/refine_radius
// keys) must decode to the flat pipeline — Levels=1 and the multilevel
// defaults — so existing gtlserved clients and their cached result
// keys keep meaning exactly what they meant before the upgrade.
func TestParseOptionsOldPayload(t *testing.T) {
	// A full pre-multilevel document (every field PR-3 clients could
	// send), frozen verbatim.
	old := []byte(`{
		"seeds": 80,
		"max_order_len": 5000,
		"metric": "ngtls",
		"ordering": "weighted",
		"min_group_size": 24,
		"accept_threshold": 0.8,
		"dip_ratio": 0.75,
		"big_net_skip": 20,
		"refine_seeds": 3,
		"prune_overlap_tolerance": 0.02,
		"refine": true,
		"workers": 4,
		"rand_seed": 9
	}`)
	got, err := ParseOptions(old)
	if err != nil {
		t.Fatalf("old payload rejected: %v", err)
	}
	def := DefaultOptions()
	if got.Levels != 1 {
		t.Errorf("old payload decoded Levels=%d, want 1 (flat)", got.Levels)
	}
	if got.MinCoarseCells != def.MinCoarseCells || got.RefineRadius != def.RefineRadius {
		t.Errorf("old payload multilevel defaults wrong: MinCoarseCells=%d RefineRadius=%d, want %d/%d",
			got.MinCoarseCells, got.RefineRadius, def.MinCoarseCells, def.RefineRadius)
	}
	if got.Seeds != 80 || got.MaxOrderLen != 5000 || got.Metric != MetricNGTLS || got.RandSeed != 9 {
		t.Errorf("old payload fields lost: %+v", got)
	}

	// New fields round-trip once present.
	doc := []byte(`{"levels": 3, "min_coarse_cells": 4000, "refine_radius": 5}`)
	got, err = ParseOptions(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Levels != 3 || got.MinCoarseCells != 4000 || got.RefineRadius != 5 {
		t.Errorf("multilevel fields not decoded: %+v", got)
	}
	// And invalid values are rejected like every other field.
	for _, bad := range []string{
		`{"levels": -1}`,
		`{"levels": 99}`,
		`{"min_coarse_cells": -1}`,
		`{"refine_radius": -2}`,
	} {
		if _, err := ParseOptions([]byte(bad)); err == nil {
			t.Errorf("ParseOptions(%s) accepted", bad)
		}
	}
}

func TestParseMetricOrdering(t *testing.T) {
	cases := []struct {
		in   string
		m    Metric
		fail bool
	}{
		{"gtlsd", MetricGTLSD, false},
		{"GTL-SD", MetricGTLSD, false},
		{" ngtls ", MetricNGTLS, false},
		{"nGTL-S", MetricNGTLS, false},
		{"", 0, true},
		{"cut", 0, true},
	}
	for _, c := range cases {
		m, err := ParseMetric(c.in)
		if (err != nil) != c.fail || (!c.fail && m != c.m) {
			t.Errorf("ParseMetric(%q) = %v, %v", c.in, m, err)
		}
	}
	for _, s := range []string{"weighted", "mincut", "bfs"} {
		o, err := ParseOrdering(s)
		if err != nil || o.String() != s {
			t.Errorf("ParseOrdering(%q) = %v, %v", s, o, err)
		}
	}
	if _, err := ParseOrdering("random"); err == nil {
		t.Error("ParseOrdering accepted garbage")
	}
}
