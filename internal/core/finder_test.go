package core

import (
	"context"
	"strings"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// matchBlock returns how well a found GTL matches a ground-truth block:
// missed = truth cells absent from found, over = found cells outside
// truth.
func matchBlock(truth, found []netlist.CellID) (missed, over int) {
	in := make(map[netlist.CellID]bool, len(truth))
	for _, c := range truth {
		in[c] = true
	}
	hit := 0
	for _, c := range found {
		if in[c] {
			hit++
		} else {
			over++
		}
	}
	missed = len(truth) - hit
	return missed, over
}

// bestMatch pairs a truth block with the found GTL sharing the most
// cells; returns nil when nothing overlaps.
func bestMatch(truth []netlist.CellID, gtls []GTL) *GTL {
	in := make(map[netlist.CellID]bool, len(truth))
	for _, c := range truth {
		in[c] = true
	}
	bestIdx, bestHit := -1, 0
	for i := range gtls {
		hit := 0
		for _, c := range gtls[i].Members {
			if in[c] {
				hit++
			}
		}
		if hit > bestHit {
			bestHit, bestIdx = hit, i
		}
	}
	if bestIdx < 0 {
		return nil
	}
	return &gtls[bestIdx]
}

func TestFindSinglePlantedBlock(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  10_000,
		Blocks: []generate.BlockSpec{{Size: 500}},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 40
	opt.MaxOrderLen = 2000
	res, err := Find(rg.Netlist, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GTLs) == 0 {
		t.Fatalf("no GTLs found (candidates=%d)", res.Candidates)
	}
	m := bestMatch(rg.Blocks[0], res.GTLs)
	if m == nil {
		t.Fatalf("no GTL overlaps the planted block; best found sizes: %v", sizes(res.GTLs))
	}
	missed, over := matchBlock(rg.Blocks[0], m.Members)
	t.Logf("found size=%d score=%.4f nGTL-S=%.4f GTL-SD=%.4f rent=%.3f missed=%d over=%d",
		m.Size(), m.Score, m.NGTLS, m.GTLSD, m.Rent, missed, over)
	if float64(missed) > 0.02*float64(len(rg.Blocks[0])) {
		t.Errorf("missed %d of %d block cells (> 2%%)", missed, len(rg.Blocks[0]))
	}
	if float64(over) > 0.05*float64(len(rg.Blocks[0])) {
		t.Errorf("included %d foreign cells (> 5%% of block)", over)
	}
	if m.Score > 0.5 {
		t.Errorf("planted block score %.3f; want well below 1", m.Score)
	}
}

func sizes(gtls []GTL) []int {
	out := make([]int, len(gtls))
	for i := range gtls {
		out[i] = gtls[i].Size()
	}
	return out
}

// TestOptionsValidation covers the centralized Options.validate():
// every nonsense field value must produce a descriptive error from
// every engine entry point, not a silent misbehaving run.
func TestOptionsValidation(t *testing.T) {
	var b netlist.Builder
	b.AddCells(16)
	for i := 0; i < 15; i++ {
		b.AddNet("", netlist.CellID(i), netlist.CellID(i+1))
	}
	nl := b.MustBuild()
	cases := []struct {
		name   string
		mutate func(*Options)
		want   string
	}{
		{"zero seeds", func(o *Options) { o.Seeds = 0 }, "Seeds"},
		{"negative seeds", func(o *Options) { o.Seeds = -4 }, "Seeds"},
		{"short ordering", func(o *Options) { o.MaxOrderLen = 1 }, "MaxOrderLen"},
		{"negative min group", func(o *Options) { o.MinGroupSize = -1 }, "MinGroupSize"},
		{"zero accept threshold", func(o *Options) { o.AcceptThreshold = 0 }, "AcceptThreshold"},
		{"negative dip ratio", func(o *Options) { o.DipRatio = -0.5 }, "DipRatio"},
		{"zero dip ratio", func(o *Options) { o.DipRatio = 0 }, "DipRatio"},
		{"negative big-net skip", func(o *Options) { o.BigNetSkip = -1 }, "BigNetSkip"},
		{"negative refine seeds", func(o *Options) { o.RefineSeeds = -2 }, "RefineSeeds"},
		{"negative overlap tolerance", func(o *Options) { o.PruneOverlapTolerance = -0.1 }, "PruneOverlapTolerance"},
	}
	f, err := NewFinder(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		opt := DefaultOptions()
		tc.mutate(&opt)
		if _, err := Find(nl, opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Find err = %v, want mention of %s", tc.name, err, tc.want)
		}
		if _, err := f.Find(context.Background(), opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Finder.Find err = %v, want mention of %s", tc.name, err, tc.want)
		}
		if opt.Seeds > 0 {
			if _, err := f.FindShard(context.Background(), opt, 0, opt.Seeds); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: FindShard err = %v, want mention of %s", tc.name, err, tc.want)
			}
		}
	}
	// Valid defaults must pass, and a bad shard range must be caught.
	if _, err := f.FindShard(context.Background(), DefaultOptions(), 5, 3); err == nil {
		t.Error("inverted shard range accepted")
	}
	if _, err := f.FindShard(context.Background(), DefaultOptions(), 0, 10_000); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

func TestNoGTLInPureRandomGraph(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seeds = 20
	opt.MaxOrderLen = 1500
	res, err := Find(rg.Netlist, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GTLs) > 0 {
		t.Errorf("pure random graph produced %d spurious GTLs: sizes %v score0=%.3f",
			len(res.GTLs), sizes(res.GTLs), res.GTLs[0].Score)
	}
}
