package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"tanglefind/internal/ds"
	"tanglefind/internal/group"
	"tanglefind/internal/metrics"
	"tanglefind/internal/netlist"
	"tanglefind/internal/telemetry"
)

// Progress is a snapshot of a running engine, delivered to the
// Options.Progress callback after every completed seed. SeedsTotal is
// the number of unique seeds actually executed, which can be smaller
// than Options.Seeds when stratified seeding collapses strata onto the
// same cell (tiny netlists with large seed counts). Progress is a
// plain value with JSON tags so serving layers can stream snapshots
// over the wire verbatim.
type Progress struct {
	SeedsDone  int `json:"seeds_done"`
	SeedsTotal int `json:"seeds_total"`
	Candidates int `json:"candidates"` // refined candidates found so far
	// Level is the hierarchy level the seeds are growing on: 0 for
	// flat runs, the coarsest level's index during a multilevel run's
	// detection pass.
	Level int `json:"level,omitempty"`
}

// ProgressFunc receives Progress snapshots. Calls are serialized by the
// engine but may come from different worker goroutines; the callback
// must not block for long or it will stall the worker pool.
type ProgressFunc func(Progress)

// Finder is a long-lived tangled-logic engine over one netlist.
// Construct it once with NewFinder and run it many times: per-worker
// growth and evaluation state (frontier arrays, trackers, ordering and
// curve buffers) is pooled across runs, so repeated runs allocate far
// less than repeated one-shot Find calls.
//
// The pool is bounded: at most PoolCap idle worker states (default
// GOMAXPROCS at construction time) are retained between runs, each
// O(NumCells) bytes, and TrimPool drops them all — so a serving layer
// holding many engines can both cap and reclaim idle engine memory,
// and MemoryEstimate reports the engine's current retained footprint.
//
// Finder is safe for concurrent use; concurrent runs draw from the same
// worker-state pool. Results are deterministic for a fixed
// Options.RandSeed regardless of scheduling, worker count, or whether a
// run executes whole (Find) or as shards (FindShard + Merge).
type Finder struct {
	nl *netlist.Netlist
	aG float64

	// rank is non-nil only on relabel shadow engines: rank[permuted id]
	// = original id. acquire threads it into every grower and heap so
	// the shadow's tie-breaks and materialization order mirror the
	// unpermuted engine's (see relabel.go).
	rank []int32

	// baseline routes every growth through the retained pre-overhaul
	// absorb loop (see addCellBaseline); toggled by SetBaselineGrowth.
	baseline atomic.Bool

	poolMu  sync.Mutex
	free    []*workerState // idle states; len <= poolCap
	poolCap int

	mlMu    sync.Mutex
	ml      map[mlKey]*mlEntry // cached hierarchies + per-level sub-engines
	mlOrder []mlKey            // insertion order, for bounded eviction

	shMu sync.Mutex
	sh   *shadowState // lazily built relabel shadow (see relabel.go)
}

// workerState is the reusable per-worker scratch: one Phase I grower
// and one set evaluator. Not safe for concurrent use; each worker
// borrows one from the pool for the duration of a run.
type workerState struct {
	gr *grower
	ev *group.Evaluator
}

// memoryFootprint estimates the state's retained bytes from the actual
// capacities of its buffers. Entry sizes come from unsafe.Sizeof so the
// accounting tracks layout changes instead of hardcoding them.
func (ws *workerState) memoryFootprint() int64 {
	g := ws.gr
	b := int64(cap(g.front)) * int64(unsafe.Sizeof(frontEntry{}))
	b += int64(cap(g.outs)) * int64(unsafe.Sizeof(outsEntry{}))
	b += int64(cap(g.arena))*4 + int64(cap(g.pend))*4
	b += int64(cap(g.touched))*4 + int64(cap(g.examined))*4
	b += int64(cap(g.combo.buf))*4 + int64(cap(g.combo.best))*4
	for _, s := range g.combo.sorted {
		b += int64(cap(s)) * 4
	}
	b += g.heap.MemoryFootprint()
	b += g.bheap.MemoryFootprint()
	b += g.tracker.MemoryFootprint()
	if g.btracker != nil {
		b += g.btracker.MemoryFootprint()
	}
	b += int64(cap(g.ord.Members))*4 + int64(cap(g.ord.Cuts))*4 + int64(cap(g.ord.Pins))*8
	b += int64(cap(g.curve.Scores)) * 8
	b += ws.ev.MemoryFootprint()
	return b
}

// NewFinder constructs an engine over nl. The netlist must be non-empty
// and must not be mutated while the engine is in use.
func NewFinder(nl *netlist.Netlist) (*Finder, error) {
	if nl == nil || nl.NumCells() == 0 {
		return nil, fmt.Errorf("core: empty netlist")
	}
	return &Finder{nl: nl, aG: nl.AvgPins(), poolCap: runtime.GOMAXPROCS(0)}, nil
}

// Netlist returns the netlist the engine operates on.
func (f *Finder) Netlist() *netlist.Netlist { return f.nl }

// SetPoolCap bounds how many idle worker states the engine retains
// between runs (n <= 0 means retain none). Worker states in active use
// are unaffected — the cap only limits what release keeps. Lowering
// the cap drops the excess immediately.
func (f *Finder) SetPoolCap(n int) {
	f.poolMu.Lock()
	f.poolCap = n
	if n < 0 {
		n = 0
	}
	for len(f.free) > n {
		f.free[len(f.free)-1] = nil // release the reference, not just the slot
		f.free = f.free[:len(f.free)-1]
	}
	f.poolMu.Unlock()
	f.forEachSubFinder(func(sub *Finder) { sub.SetPoolCap(n) })
	if sh := f.shadowIfBuilt(); sh != nil {
		sh.pf.SetPoolCap(n)
	}
}

// shadowIfBuilt returns the relabel shadow without building one.
func (f *Finder) shadowIfBuilt() *shadowState {
	f.shMu.Lock()
	defer f.shMu.Unlock()
	return f.sh
}

// TrimPool drops every idle pooled worker state, in this engine and in
// the per-level sub-engines of any cached multilevel hierarchies.
// In-flight runs are unaffected; the next run re-allocates lazily.
func (f *Finder) TrimPool() {
	f.poolMu.Lock()
	f.free = nil
	f.poolMu.Unlock()
	f.forEachSubFinder(func(sub *Finder) { sub.TrimPool() })
	if sh := f.shadowIfBuilt(); sh != nil {
		sh.pf.TrimPool()
	}
}

// PooledStates returns the number of idle worker states currently
// retained (excluding sub-engines).
func (f *Finder) PooledStates() int {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	return len(f.free)
}

// MemoryEstimate reports the engine's retained memory in bytes: idle
// pooled worker states plus, for cached multilevel hierarchies, the
// coarse netlists and their sub-engines' pools. The netlist itself and
// states borrowed by in-flight runs are not counted.
func (f *Finder) MemoryEstimate() int64 {
	f.poolMu.Lock()
	var b int64
	for _, ws := range f.free {
		b += ws.memoryFootprint()
	}
	f.poolMu.Unlock()
	for _, s := range f.mlStates() {
		for l := 1; l < s.hier.NumLevels(); l++ {
			b += s.hier.Level(l).MemoryFootprint()
			b += s.finders[l].MemoryEstimate()
		}
	}
	b += f.shadowMemoryEstimate()
	return b
}

// mlStates snapshots the finished hierarchy states. Entries still
// building (or failed) are skipped: the cache mutex only guards the
// map, never a build, so this never blocks behind a coarsening pass.
func (f *Finder) mlStates() []*mlState {
	f.mlMu.Lock()
	states := make([]*mlState, 0, len(f.ml))
	for _, e := range f.ml {
		if e.s != nil {
			states = append(states, e.s)
		}
	}
	f.mlMu.Unlock()
	return states
}

// forEachSubFinder applies fn to the sub-engines of every cached
// hierarchy (level 0 excluded — that is f itself).
func (f *Finder) forEachSubFinder(fn func(*Finder)) {
	for _, s := range f.mlStates() {
		for l := 1; l < s.hier.NumLevels(); l++ {
			fn(s.finders[l])
		}
	}
}

func (f *Finder) acquire(opt *Options) *workerState {
	f.poolMu.Lock()
	var ws *workerState
	if n := len(f.free); n > 0 {
		ws = f.free[n-1]
		f.free = f.free[:n-1]
	}
	f.poolMu.Unlock()
	if ws == nil {
		ws = &workerState{gr: newGrower(f.nl), ev: group.NewEvaluator(f.nl)}
	}
	ws.gr.opt = opt
	ws.gr.phases = phaseAcc{}
	ws.gr.timed = !stageTimingOff.Load()
	ws.gr.rank = f.rank
	ws.gr.heap.SetRank(f.rank)
	ws.gr.bheap.rank = f.rank
	ws.gr.baseline = f.baseline.Load()
	return ws
}

// SetBaselineGrowth switches the engine between the optimized absorb
// loop (default) and the retained pre-overhaul reference loop. The two
// produce bit-identical results; the reference exists as the timing
// baseline for the hotpath experiment and as the golden oracle for the
// differential tests. The switch applies to runs started after the
// call; it does not reach into cached multilevel sub-engines' shadow
// state beyond routing their acquires the same way.
func (f *Finder) SetBaselineGrowth(on bool) {
	f.baseline.Store(on)
	f.forEachSubFinder(func(sub *Finder) { sub.SetBaselineGrowth(on) })
	if sh := f.shadowIfBuilt(); sh != nil {
		sh.pf.SetBaselineGrowth(on)
	}
}

func (f *Finder) release(ws *workerState) {
	ws.gr.opt = nil
	f.poolMu.Lock()
	if len(f.free) < f.poolCap {
		f.free = append(f.free, ws)
	}
	f.poolMu.Unlock()
}

// seedPlan is the deterministic seed schedule of one run: the seed cell
// for every index in [0, Options.Seeds), plus the first-occurrence
// index of each seed cell. Duplicate seeds (multiple strata collapsing
// onto one cell) are executed once, at their first index; later
// occurrences reuse that outcome.
type seedPlan struct {
	ids   []netlist.CellID
	owner []int // owner[i] = first index with the same seed cell (== i if unique)
}

// plan derives the full schedule from (RandSeed, Seeds, |V|). Seeds are
// stratified — one uniform draw per equal-width slice of the cell-id
// space — instead of the paper's i.i.d. draws: each seed is still
// uniform within its stratum, but no region of the netlist can be
// starved by an unlucky sequence, which matters for deterministic
// reproduction (i.i.d. leaves a structure covering fraction f a
// (1-f)^m chance of receiving no seed at all).
// The schedule depends only on (RandSeed, Seeds, |V|) — FindIncremental
// relies on that determinism, guarding reuse with a per-index seed-cell
// comparison against the recorded run.
func (f *Finder) plan(opt *Options) seedPlan {
	master := ds.NewRNG(opt.RandSeed)
	ids := make([]netlist.CellID, opt.Seeds)
	n := f.nl.NumCells()
	stride := float64(n) / float64(opt.Seeds)
	for i := range ids {
		lo := int(float64(i) * stride)
		hi := int(float64(i+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		if lo >= hi {
			lo = hi - 1
		}
		ids[i] = netlist.CellID(lo + master.Intn(hi-lo))
	}
	owner := make([]int, opt.Seeds)
	first := make(map[netlist.CellID]int, opt.Seeds)
	for i, id := range ids {
		if j, ok := first[id]; ok {
			owner[i] = j
		} else {
			first[id] = i
			owner[i] = i
		}
	}
	return seedPlan{ids: ids, owner: owner}
}

// shardOut is the raw outcome of one executed (owner) seed.
type shardOut struct {
	idx   int // seed index in the full schedule
	trace SeedTrace
	cand  *group.Set // refined candidate B̂ (nil if none)
	score float64
	rent  float64
}

// ShardResult holds the raw per-seed outcomes for the seed-index range
// [Lo, Hi) of one run's schedule. Shards exist so one large run can be
// split into resumable chunks within one process — run each range
// separately (sequentially, concurrently, or interleaved with other
// work) and Merge the pieces into the exact Result a single Find would
// have produced. ShardResult is not serializable yet; cross-process
// resume would need an explicit wire format.
type ShardResult struct {
	Lo, Hi  int
	Elapsed time.Duration
	outs    []shardOut    // executed owner seeds, ascending by idx
	recs    []*seedRecord // positional with outs; only under RecordIncremental via Find
	sched   SchedStats    // how the shard's schedule was executed
	levels  int           // Options.Levels the shard ran under (<=1: flat)
	stages  telemetry.StageTimings
}

// Sched reports how the shard's seed schedule was executed across
// workers (steal traffic, per-worker seed counts).
func (s *ShardResult) Sched() SchedStats { return s.sched }

// Stages reports the shard's per-seed phase wall time, summed across
// workers (see Result.Stages for the semantics).
func (s *ShardResult) Stages() telemetry.StageTimings { return s.stages }

// SeedsRun returns how many unique seeds this shard executed.
func (s *ShardResult) SeedsRun() int { return len(s.outs) }

// FindShard executes seeds [lo, hi) of the run's deterministic schedule
// and returns their raw outcomes. Phase III pruning is global, so it
// happens at Merge time, not per shard.
//
// With Options.Levels > 1 the schedule is the coarsest level's: the
// hierarchy is built (and cached) first, the shard runs coarse
// detection seeds, and Merge performs the global pruning plus the
// projection/refinement descent. Shards of a multilevel run can only
// be merged under the same Levels.
//
// On cancellation the returned error wraps ctx.Err() and the returned
// ShardResult holds the seeds that completed; it is not accepted by
// Merge (rerun the shard to completion for that), but Find uses the
// same machinery to assemble a partial Result.
func (f *Finder) FindShard(ctx context.Context, opt Options, lo, hi int) (*ShardResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi > opt.Seeds || lo >= hi {
		return nil, fmt.Errorf("core: shard [%d,%d) out of range for %d seeds", lo, hi, opt.Seeds)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Levels > 1 {
		ms, err := f.multilevelState(&opt)
		if err != nil {
			return nil, err
		}
		if L := ms.hier.NumLevels(); L > 1 {
			// Shard the coarsest level's deterministic schedule; the
			// seed count is unchanged (coarseOptions rescales only the
			// size-dependent knobs), so [lo,hi) bounds carry over.
			top := ms.finders[L-1]
			copt := coarseOptions(&opt, f.nl.NumCells(), top.nl.NumCells(), L-1)
			sr, err := top.findShard(ctx, &copt, top.plan(&copt), lo, hi, false)
			if sr != nil {
				sr.levels = opt.Levels
			}
			return sr, err
		}
		// Degenerate hierarchy (netlist at or below the coarsening
		// floor): the flat schedule is the multilevel schedule.
	}
	return f.findShard(ctx, &opt, f.plan(&opt), lo, hi, false)
}

// findShard is the validated core of FindShard, taking a precomputed
// plan so Find does not derive the schedule twice per run. With record
// set it captures per-seed incremental state alongside the outcomes.
//
// Under Options.Relabel the shard executes on the engine's
// locality-permuted shadow: the plan's seed cells are translated into
// permuted id space, the shadow runs the growth phases there, and
// every id-bearing output (traces, candidate members, incremental
// records and footprints) is translated back before the shard is
// returned — everything downstream (assemble, prune, Merge, replay)
// stays in original id space.
func (f *Finder) findShard(ctx context.Context, opt *Options, plan seedPlan, lo, hi int, record bool) (*ShardResult, error) {
	if opt.Relabel {
		sh, err := f.shadow()
		if err != nil {
			return nil, err
		}
		sr, err := sh.pf.runShard(ctx, opt, sh.translatePlan(plan), lo, hi, record)
		if sr != nil {
			sh.translateShardOut(sr)
		}
		return sr, err
	}
	return f.runShard(ctx, opt, plan, lo, hi, record)
}

// runShard executes the shard on this engine's own id space.
func (f *Finder) runShard(ctx context.Context, opt *Options, plan seedPlan, lo, hi int, record bool) (*ShardResult, error) {
	start := time.Now()

	// Only first occurrences run; duplicates inherit the owner's result.
	var run []int
	for i := lo; i < hi; i++ {
		if plan.owner[i] == i {
			run = append(run, i)
		}
	}

	outs := make([]shardOut, len(run))
	var recs []*seedRecord
	if record {
		recs = make([]*seedRecord, len(run))
	}
	completed, sched, phases := f.runSeedPool(ctx, opt, len(run), func(ws *workerState, k int) bool {
		i := run[k]
		// Per-seed RNG derived from (RandSeed, i): identical streams
		// no matter which worker runs the job.
		rng := seedRNG(opt.RandSeed, i)
		var rec *seedRecord
		if record {
			rec = &seedRecord{}
			recs[k] = rec
		}
		o := runSeed(f.nl, ws.gr, ws.ev, rng, plan.ids[i], opt, f.aG, rec)
		outs[k] = shardOut{idx: i, trace: o.trace, cand: o.candidate, score: o.score, rent: o.rent}
		return o.candidate != nil
	})

	sr := &ShardResult{Lo: lo, Hi: hi, Elapsed: time.Since(start), sched: sched, stages: phases.stages()}
	if err := ctx.Err(); err != nil {
		for k := range outs {
			if completed[k] {
				sr.outs = append(sr.outs, outs[k])
				if record {
					sr.recs = append(sr.recs, recs[k])
				}
			}
		}
		// Cancellation that lands after the last seed already finished
		// did not cost any work: the shard is complete, report success.
		if len(sr.outs) == len(run) {
			return sr, nil
		}
		return sr, fmt.Errorf("core: run cancelled after %d/%d seeds: %w", len(sr.outs), len(run), err)
	}
	sr.outs = outs
	sr.recs = recs
	return sr, nil
}

// seedRNG derives seed index i's deterministic RNG stream from the
// run's master seed: identical no matter which worker runs the job,
// and reproducible by incremental replay.
func seedRNG(randSeed uint64, i int) *ds.RNG {
	return ds.NewRNG(randSeed ^ (0x9e37_79b9_7f4a_7c15 * uint64(i+1)))
}

// runSeedPool executes fn(ws, k) for every k in [0, n) on a
// work-stealing worker pool (see steal.go) with per-worker pooled
// scratch, Options.Progress reporting after each completion, and
// cooperative cancellation — the shared scaffolding of findShard,
// FindIncremental and the multilevel projection sweep. fn reports
// whether index k produced a candidate (for the progress counter);
// the returned flags mark which indexes completed before
// cancellation, and the phase accumulator sums the per-seed stage
// wall time across workers. Scheduling never affects results:
// fn(ws, k) writes outcomes keyed by k, so the output is
// bit-identical to Workers=1.
func (f *Finder) runSeedPool(ctx context.Context, opt *Options, n int, fn func(ws *workerState, k int) bool) ([]bool, SchedStats, phaseAcc) {
	completed := make([]bool, n)
	if n == 0 {
		return completed, SchedStats{}, phaseAcc{}
	}
	var seedsDone, candsFound atomic.Int64
	var progMu sync.Mutex
	report := func() {
		if opt.Progress == nil {
			return
		}
		progMu.Lock()
		opt.Progress(Progress{
			SeedsDone:  int(seedsDone.Load()),
			SeedsTotal: n,
			Candidates: int(candsFound.Load()),
		})
		progMu.Unlock()
	}

	nWorkers := opt.workers()
	if nWorkers > n {
		nWorkers = n
	}
	sched := newStealGroup(n, nWorkers)
	var phases phaseAcc
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := f.acquire(opt)
			defer f.release(ws)
			sched.run(ctx, w, func(k int) {
				if fn(ws, k) {
					candsFound.Add(1)
				}
				completed[k] = true
				seedsDone.Add(1)
				report()
			})
			// Harvest this worker's phase clocks before the state goes
			// back to the pool (acquire re-zeroes them regardless).
			for p := range ws.gr.phases {
				if v := ws.gr.phases[p]; v != 0 {
					atomic.AddInt64(&phases[p], v)
				}
			}
		}(w)
	}
	wg.Wait()
	return completed, sched.stats(), phases
}

// Merge combines complete shards covering [0, Options.Seeds)
// contiguously into the final Result, applying Phase III pruning
// globally. The shards must come from the same netlist and Options;
// the merged Result is byte-identical to a single Find with the same
// Options. Result.Elapsed is the summed shard compute time (plus, for
// multilevel runs, the projection/refinement descent Merge itself
// performs at merge time).
func (f *Finder) Merge(opt Options, shards ...*ShardResult) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Levels > 1 {
		ms, err := f.multilevelState(&opt)
		if err != nil {
			return nil, err
		}
		if L := ms.hier.NumLevels(); L > 1 {
			// The shards hold coarse-level outcomes: assemble and prune
			// them on the coarsest level, then run the same projection
			// descent Find's multilevel path runs.
			top := ms.finders[L-1]
			copt := coarseOptions(&opt, f.nl.NumCells(), top.nl.NumCells(), L-1)
			cres, err := top.mergeShards(&copt, opt.Levels, shards)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := f.projectDown(context.Background(), &opt, ms, cres,
				float64(cres.Elapsed)/float64(time.Millisecond), nil)
			if res != nil {
				res.Elapsed = cres.Elapsed + time.Since(start)
			}
			return res, err
		}
	}
	return f.mergeShards(&opt, 0, shards)
}

// mergeShards is the flat merge: coverage validation, owner-outcome
// reassembly and global pruning. wantLevels is the Levels tag every
// shard must carry (0 for flat schedules), guarding against mixing
// shards produced under a different hierarchy configuration.
func (f *Finder) mergeShards(opt *Options, wantLevels int, shards []*ShardResult) (*Result, error) {
	ordered := make([]*ShardResult, len(shards))
	copy(ordered, shards)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Lo < ordered[j].Lo })
	next := 0
	var elapsed time.Duration
	var sched SchedStats
	stages := telemetry.StageTimings{}
	for _, s := range ordered {
		if s.levels != wantLevels {
			return nil, fmt.Errorf("core: shard [%d,%d) was produced under Levels=%d, merge expects Levels=%d", s.Lo, s.Hi, s.levels, wantLevels)
		}
		if s.Lo != next {
			return nil, fmt.Errorf("core: shard coverage gap: expected seed %d, got shard [%d,%d)", next, s.Lo, s.Hi)
		}
		next = s.Hi
		elapsed += s.Elapsed
		sched.merge(s.sched)
		stages.Merge(s.stages)
	}
	if next != opt.Seeds {
		return nil, fmt.Errorf("core: shards cover seeds [0,%d), want [0,%d)", next, opt.Seeds)
	}

	plan := f.plan(opt)
	byIdx := make([]*shardOut, opt.Seeds)
	for _, s := range ordered {
		for k := range s.outs {
			byIdx[s.outs[k].idx] = &s.outs[k]
		}
	}
	// A partial (cancelled) shard is missing owner outcomes; refuse it.
	for i := 0; i < opt.Seeds; i++ {
		if plan.owner[i] == i && byIdx[i] == nil {
			return nil, fmt.Errorf("core: shard covering seed %d is incomplete (cancelled run?); rerun it before merging", i)
		}
	}

	var ownerOuts []shardOut
	for i := 0; i < opt.Seeds; i++ {
		if plan.owner[i] == i {
			ownerOuts = append(ownerOuts, *byIdx[i])
		}
	}
	res := f.assemble(opt, plan, ownerOuts)
	res.Elapsed = elapsed
	res.Sched = &sched
	res.Stages.Merge(stages)
	return res, nil
}

// Find runs the full three-phase finder under ctx. With Options.Levels
// > 1 it runs the multilevel pipeline (coarsen → detect on the
// coarsest level → project + boundary-refine down); otherwise the
// classic flat pipeline. On cancellation it returns the partial Result
// assembled from the seeds that completed, together with an error
// wrapping ctx.Err().
func (f *Finder) Find(ctx context.Context, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Levels > 1 {
		return f.findMultilevel(ctx, &opt)
	}
	return f.findFlat(ctx, &opt)
}

// findFlat is the validated single-level pipeline Find has always run.
// Under Options.RecordIncremental a completed run carries the per-seed
// incremental state on the Result.
func (f *Finder) findFlat(ctx context.Context, opt *Options) (*Result, error) {
	start := time.Now()
	plan := f.plan(opt)
	sr, err := f.findShard(ctx, opt, plan, 0, opt.Seeds, opt.RecordIncremental)
	if err != nil && sr == nil {
		return nil, err
	}
	res := f.assemble(opt, plan, sr.outs)
	res.Elapsed = time.Since(start)
	res.Sched = &sr.sched
	res.Stages.Merge(sr.stages)
	if err == nil && opt.RecordIncremental {
		res.IncrState = f.buildIncrState(opt, sr.outs, sr.recs)
	}
	return res, err
}

// cand is one refined candidate awaiting Phase III pruning.
type cand struct {
	set   *group.Set
	score float64
	rent  float64
	seed  netlist.CellID
}

// assemble turns executed owner outcomes into a Result: it expands
// duplicate-seed traces, gathers candidates in schedule order and runs
// the global Phase III pruning. outs must be ascending by idx but may
// be partial (cancelled runs); traces and candidates of missing seeds
// are simply absent.
func (f *Finder) assemble(opt *Options, plan seedPlan, outs []shardOut) *Result {
	res := &Result{AG: f.aG, Stages: telemetry.StageTimings{}}
	byIdx := make(map[int]*shardOut, len(outs))
	for k := range outs {
		byIdx[outs[k].idx] = &outs[k]
	}
	var cands []cand
	rentSum, rentN := 0.0, 0
	for i := 0; i < opt.Seeds; i++ {
		o, ok := byIdx[plan.owner[i]]
		if !ok {
			continue // owner seed never ran (cancelled before it started)
		}
		res.Seeds = append(res.Seeds, o.trace)
		if plan.owner[i] != i {
			continue // duplicate: trace copied, candidate counted once
		}
		if o.cand != nil {
			cands = append(cands, cand{o.cand, o.score, o.rent, plan.ids[i]})
			rentSum += o.rent
			rentN++
		}
	}
	if rentN > 0 {
		res.Rent = rentSum / float64(rentN)
	}
	res.Candidates = len(cands)
	pruneStart := time.Now()
	f.prune(opt, cands, res)
	res.Stages.Add(StagePrune, time.Since(pruneStart))
	return res
}

// prune implements global Phase III pruning: sort refined candidates by
// score, greedily keep the disjoint prefix-best set, trimming small
// overlaps with already-accepted GTLs.
func (f *Finder) prune(opt *Options, cands []cand, res *Result) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	taken := ds.NewBitset(f.nl.NumCells())
	ws := f.acquire(opt)
	defer f.release(ws)
	pruneEval := ws.ev
	for _, c := range cands {
		overlap := 0
		for _, m := range c.set.Members {
			if taken.Has(int(m)) {
				overlap++
			}
		}
		if float64(overlap) > opt.PruneOverlapTolerance*float64(c.set.Size()) {
			continue // substantially the same structure as a better GTL
		}
		set := *c.set
		score := c.score
		if overlap > 0 {
			// Trim the junction cells already owned by a better GTL
			// and re-evaluate the remainder.
			kept := make([]netlist.CellID, 0, set.Size()-overlap)
			for _, m := range set.Members {
				if !taken.Has(int(m)) {
					kept = append(kept, m)
				}
			}
			if len(kept) < opt.MinGroupSize {
				continue
			}
			set = pruneEval.Eval(kept)
			score = scoreVals(set.Cut, set.Size(), set.Pins, c.rent, f.aG, opt.Metric)
		}
		for _, m := range set.Members {
			taken.Add(int(m))
		}
		res.GTLs = append(res.GTLs, GTL{
			Members: set.Members,
			Cut:     set.Cut,
			Pins:    set.Pins,
			Score:   score,
			NGTLS:   metrics.NGTLScore(set.Cut, set.Size(), c.rent, f.aG),
			GTLSD:   metrics.GTLSD(set.Cut, set.Size(), set.Pins, c.rent, f.aG),
			Rent:    c.rent,
			Seed:    c.seed,
		})
	}
	// Trimming can disturb the best-first order slightly; restore it.
	sort.SliceStable(res.GTLs, func(i, j int) bool { return res.GTLs[i].Score < res.GTLs[j].Score })
}

// FindMany runs the finder over a batch of netlists with shared
// Options, constructing one engine per netlist. The returned slice is
// positional: results[i] corresponds to nls[i]. Netlists run
// sequentially (each run is internally parallel); on error or
// cancellation the slice holds the results completed so far — including
// a partial result for the interrupted netlist — alongside the error.
func FindMany(ctx context.Context, nls []*netlist.Netlist, opt Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(nls))
	for i, nl := range nls {
		f, err := NewFinder(nl)
		if err != nil {
			return results, fmt.Errorf("core: netlist %d: %w", i, err)
		}
		res, err := f.Find(ctx, opt)
		results[i] = res
		if err != nil {
			return results, fmt.Errorf("core: netlist %d: %w", i, err)
		}
	}
	return results, nil
}
