package resynth

import (
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func TestDecomposeSimpleCell(t *testing.T) {
	// One 6-pin cell in the group, chained into 3-pin gates.
	var b netlist.Builder
	hub := b.AddCell("hub")
	others := b.AddCells(6)
	for i := 0; i < 6; i++ {
		b.AddNet("", hub, others+netlist.CellID(i))
	}
	nl := b.MustBuild()
	res, err := Decompose(nl, [][]netlist.CellID{{hub}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Netlist
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.CellsAdded == 0 {
		t.Fatal("no cells added")
	}
	// Every cell of the decomposed group obeys the pin budget.
	for _, c := range res.Groups[0] {
		if d := out.CellDegree(c); d > 3 {
			t.Errorf("cell %d has %d pins, budget 3", c, d)
		}
	}
	// Original connectivity preserved: each original net still has 2
	// pins and reaches the chain.
	for n := 0; n < 6; n++ {
		if out.NetSize(netlist.NetID(n)) != 2 {
			t.Errorf("net %d size = %d, want 2", n, out.NetSize(netlist.NetID(n)))
		}
	}
}

func TestDecomposeLowersDensity(t *testing.T) {
	f := generate.DissolvedROM(800, 30, 4)
	nl, err := generate.BuildStandalone(f)
	if err != nil {
		t.Fatal(err)
	}
	group := make([]netlist.CellID, nl.NumCells())
	for i := range group {
		group[i] = netlist.CellID(i)
	}
	before := nl.AvgPins()
	res, err := Decompose(nl, [][]netlist.CellID{group}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Netlist
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pin density of the resynthesized group must drop and area rise.
	pins := 0
	for _, c := range res.Groups[0] {
		pins += out.CellDegree(c)
	}
	after := float64(pins) / float64(len(res.Groups[0]))
	t.Logf("density %.2f -> %.2f pins/cell, +%d cells", before, after, res.CellsAdded)
	if after >= before-0.5 {
		t.Errorf("density barely moved: %.2f -> %.2f", before, after)
	}
	if out.TotalArea() <= nl.TotalArea() {
		t.Error("area should grow after decomposition")
	}
	maxDeg := 0
	for _, c := range res.Groups[0] {
		if d := out.CellDegree(c); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 3 {
		t.Errorf("max degree after decomposition = %d, want <= 3", maxDeg)
	}
}

func TestDecomposeUntouchedOutsideGroups(t *testing.T) {
	var b netlist.Builder
	big := b.AddCell("big")
	others := b.AddCells(5)
	for i := 0; i < 5; i++ {
		b.AddNet("", big, others+netlist.CellID(i))
	}
	nl := b.MustBuild()
	res, err := Decompose(nl, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsAdded != 0 {
		t.Error("cells outside groups were decomposed")
	}
	if res.Netlist.CellDegree(big) != 5 {
		t.Error("outside cell's pins changed")
	}
}

func TestDecomposeValidation(t *testing.T) {
	var b netlist.Builder
	b.AddCells(3)
	b.AddNet("", 0, 1)
	nl := b.MustBuild()
	if _, err := Decompose(nl, nil, 1); err == nil {
		t.Error("maxPins=1 accepted")
	}
	if _, err := Decompose(nl, [][]netlist.CellID{{0}, {0}}, 3); err == nil {
		t.Error("overlapping groups accepted")
	}
}
