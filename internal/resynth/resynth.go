// Package resynth implements the paper's logic re-synthesis
// application: "prior to placement, a GTL could be resynthesized or
// re-instantiated to utilize more area, but less interconnect, thereby
// reducing potential hotspots."
//
// Synthesis packs function into complex gates (NAND4, AOI, OAI) because
// they give the most function per unit area; that is exactly what makes
// GTLs pin-dense and hard to route. Decompose reverses the trade: every
// complex gate in a GTL is re-instantiated as a tree of simple 2-3 pin
// gates. Cell count and area go up a little, but the per-cell pin
// density — the driver of local routing demand — goes down, and the
// placer can spread the structure naturally.
package resynth

import (
	"fmt"

	"tanglefind/internal/netlist"
)

// Result describes a decomposition.
type Result struct {
	// Netlist is the resynthesized netlist. Cells 0..orig-1 correspond
	// 1:1 to the original cells; decomposition cells follow.
	Netlist *netlist.Netlist
	// Groups maps each input group to its cells in the new netlist
	// (original members plus the decomposition cells created inside).
	Groups [][]netlist.CellID
	// CellsAdded counts the new simple gates.
	CellsAdded int
}

// Decompose re-instantiates every cell of the given groups whose pin
// count exceeds maxPins (use 3 for 2-3 pin simple-gate libraries) as a
// chain of simple gates: the original cell keeps maxPins of its nets
// and each extra gate takes up to maxPins-1 more, linked by new 2-pin
// internal nets. Cells outside the groups are untouched.
func Decompose(nl *netlist.Netlist, groups [][]netlist.CellID, maxPins int) (*Result, error) {
	if maxPins < 2 {
		return nil, fmt.Errorf("resynth: maxPins must be >= 2, got %d", maxPins)
	}
	inGroup := make([]int32, nl.NumCells())
	for i := range inGroup {
		inGroup[i] = -1
	}
	for gi, g := range groups {
		for _, c := range g {
			if inGroup[c] != -1 && inGroup[c] != int32(gi) {
				return nil, fmt.Errorf("resynth: cell %d in multiple groups", c)
			}
			inGroup[c] = int32(gi)
		}
	}

	var b netlist.Builder
	for c := 0; c < nl.NumCells(); c++ {
		id := b.AddCell(nl.CellName(netlist.CellID(c)))
		b.SetCellArea(id, nl.CellArea(netlist.CellID(c)))
	}

	// A flat copy of the net→cell CSR accumulates the final pin list
	// of each original net; a decomposed cell's pin on a net is
	// re-pointed at the chain gate that took that net over. Copying
	// the two flat arrays is two allocations total instead of one
	// slice per net.
	netOff, netPins := nl.NetCSR()
	repoint := func(n netlist.NetID, from, to netlist.CellID) {
		pins := netPins[netOff[n]:netOff[n+1]]
		for i, c := range pins {
			if c == from {
				pins[i] = to
				return
			}
		}
	}

	out := &Result{Groups: make([][]netlist.CellID, len(groups))}
	for gi, g := range groups {
		out.Groups[gi] = append(out.Groups[gi], g...)
	}
	for c := 0; c < nl.NumCells(); c++ {
		gi := inGroup[c]
		if gi < 0 {
			continue
		}
		nets := nl.CellPins(netlist.CellID(c))
		if len(nets) <= maxPins {
			continue
		}
		// The original keeps its first maxPins-1 nets plus a link to
		// the chain; each chain gate takes maxPins-1 nets and links on.
		remaining := nets[maxPins-1:]
		prev := netlist.CellID(c)
		for len(remaining) > 0 {
			// The last chain gate has one link; middle gates have two,
			// so they take one net fewer to stay at maxPins pins.
			take := maxPins - 1
			if len(remaining) > take {
				take = maxPins - 2
			}
			if take < 1 {
				take = 1
			}
			if take > len(remaining) {
				take = len(remaining)
			}
			g := b.AddCell(fmt.Sprintf("%s_rs%d", nl.CellName(netlist.CellID(c)), len(out.Groups[gi])))
			b.SetCellArea(g, nl.CellArea(netlist.CellID(c))*0.6) // simple gates are smaller
			out.CellsAdded++
			out.Groups[gi] = append(out.Groups[gi], g)
			for _, n := range remaining[:take] {
				repoint(n, netlist.CellID(c), g)
			}
			// New internal wire linking the chain.
			b.AddNet("", prev, g)
			prev = g
			remaining = remaining[take:]
		}
	}
	b.DropDegenerateNets = true
	for n := 0; n < nl.NumNets(); n++ {
		b.AddNet(nl.NetName(netlist.NetID(n)), netPins[netOff[n]:netOff[n+1]]...)
	}
	built, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.Netlist = built
	return out, nil
}
