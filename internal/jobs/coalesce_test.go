package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"tanglefind"
	"tanglefind/api"
)

// blockWorker submits a slow, unique job and waits until it occupies
// the (single) worker, so subsequently submitted jobs stay queued
// deterministically. Returns the blocker's status; callers cancel it
// to release the worker.
func blockWorker(t *testing.T, m *Manager, digest string) api.JobStatus {
	t.Helper()
	slow, _ := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000, "rand_seed": 777})
	blocker, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := m.Status(blocker.ID); st.State == api.StateRunning {
			return blocker
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescedSubmissionsShareOneRun: identical submissions arriving
// while a matching job is queued attach as followers — one engine run,
// every job id completing with the full result and its own queue_wait.
func TestCoalescedSubmissionsShareOneRun(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1, QueueDepth: 16})
	defer m.Shutdown(context.Background())

	blocker := blockWorker(t, m, digest)
	same := smallOpts(t, 6)
	lead, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: same})
	if err != nil {
		t.Fatal(err)
	}
	const nFollowers = 5
	ids := map[string]bool{blocker.ID: true, lead.ID: true}
	var followers []api.JobStatus
	for i := 0; i < nFollowers; i++ {
		st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: same})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cached {
			t.Fatalf("follower %d served as cache hit before any run finished", i)
		}
		if ids[st.ID] {
			t.Fatalf("duplicate job id %s", st.ID)
		}
		ids[st.ID] = true
		followers = append(followers, st)
	}
	if st := m.Stats(); st.CoalescedJobs != nFollowers {
		t.Fatalf("coalesced_jobs = %d, want %d", st.CoalescedJobs, nFollowers)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}

	leadFin := wait(t, m, lead.ID)
	if leadFin.State != api.StateDone || leadFin.Result == nil {
		t.Fatalf("leader finished %s (%s)", leadFin.State, leadFin.Error)
	}
	for _, f := range followers {
		fin := wait(t, m, f.ID)
		if fin.State != api.StateDone || fin.Result == nil {
			t.Fatalf("follower %s finished %s (%s)", f.ID, fin.State, fin.Error)
		}
		if len(fin.Result.GTLs) != len(leadFin.Result.GTLs) || fin.Result.Candidates != leadFin.Result.Candidates {
			t.Errorf("follower %s result diverges from leader's", f.ID)
		}
		if _, ok := fin.Result.Stages["queue_wait"]; !ok {
			t.Errorf("follower %s has no queue_wait stage", f.ID)
		}
	}
	st := m.Stats()
	if st.EngineRuns != 2 {
		t.Errorf("engine_runs = %d, want 2 (blocker + one coalesced run)", st.EngineRuns)
	}
	if st.Completed != int64(1+nFollowers) {
		t.Errorf("completed = %d, want %d", st.Completed, 1+nFollowers)
	}
	if st.CacheHits != 0 {
		t.Errorf("cache_hits = %d during coalescing, want 0", st.CacheHits)
	}
	// With the run finished, the next identical submission is a plain
	// cache hit, not a new run or a follower.
	hit, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: same})
	if err != nil || !hit.Cached {
		t.Fatalf("post-run submission: %+v, %v", hit, err)
	}
}

// TestCoalescedCancelSemantics: cancelling a follower detaches only
// that submission; cancelling a queued leader promotes a follower so
// the group still gets its one engine run.
func TestCoalescedCancelSemantics(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1, QueueDepth: 16})
	defer m.Shutdown(context.Background())

	blocker := blockWorker(t, m, digest)
	same := smallOpts(t, 6)
	submit := func() api.JobStatus {
		st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: same})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	lead, f1, f2 := submit(), submit(), submit()

	// Cancelling one follower leaves the leader and its sibling alone.
	if st, err := m.Cancel(f1.ID); err != nil || st.State != api.StateCancelled {
		t.Fatalf("cancel follower: %+v, %v", st, err)
	}
	if st, _ := m.Status(lead.ID); st.State != api.StateQueued {
		t.Fatalf("leader state after follower cancel = %s", st.State)
	}
	// Cancelling the queued leader promotes the remaining follower.
	if st, err := m.Cancel(lead.ID); err != nil || st.State != api.StateCancelled {
		t.Fatalf("cancel leader: %+v, %v", st, err)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	fin := wait(t, m, f2.ID)
	if fin.State != api.StateDone || fin.Result == nil {
		t.Fatalf("promoted follower finished %s (%s)", fin.State, fin.Error)
	}
	st := m.Stats()
	if st.EngineRuns != 2 {
		t.Errorf("engine_runs = %d, want 2 (blocker + promoted run)", st.EngineRuns)
	}
	if st.Cancelled != 3 { // blocker, f1, lead
		t.Errorf("cancelled = %d, want 3", st.Cancelled)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
}

// TestFailedJobPrimesNothing: a job whose mitigation step fails after
// a clean engine pass must leave neither a cached result nor recorded
// incremental state behind — the next identical submission runs again.
func TestFailedJobPrimesNothing(t *testing.T) {
	s, digest := registered(t, 3000, 300, 5)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())
	m.testMitigationErr = errors.New("mitigation exploded")

	raw, _ := json.Marshal(map[string]any{"seeds": 8, "max_order_len": 1500, "record_incremental": true})
	req := api.JobRequest{Kind: api.KindCluster, Digest: digest, Options: json.RawMessage(raw)}
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	fin := wait(t, m, st.ID)
	if fin.State != api.StateFailed || !strings.Contains(fin.Error, "mitigation exploded") {
		t.Fatalf("job finished %s (%q), want failed with the seam's error", fin.State, fin.Error)
	}
	opt, err := tanglefind.ParseOptions(json.RawMessage(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.cache.get(cacheKey(api.KindCluster, digest, 0, opt)); ok {
		t.Error("failed job left a cached result")
	}
	if _, ok := m.incr.get(incrKey(digest, opt)); ok {
		t.Error("failed job primed the incremental-state cache")
	}

	// With the failure gone the identical submission must run the
	// engine again — not be served by anything the failed job left.
	m.testMitigationErr = nil
	st2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Fatal("resubmission after failure served from cache")
	}
	fin2 := wait(t, m, st2.ID)
	if fin2.State != api.StateDone {
		t.Fatalf("resubmission finished %s (%s)", fin2.State, fin2.Error)
	}
	if runs := m.Stats().EngineRuns; runs != 2 {
		t.Errorf("engine_runs = %d, want 2", runs)
	}
	if _, ok := m.incr.get(incrKey(digest, opt)); !ok {
		t.Error("successful run did not prime the incremental-state cache")
	}
}

// TestCacheHitReportsOwnQueueWait: a cache hit's stage breakdown keeps
// the producing run's engine stages but reports the hit's own queue
// wait (effectively zero), not the first job's.
func TestCacheHitReportsOwnQueueWait(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1, QueueDepth: 16})
	defer m.Shutdown(context.Background())

	blocker := blockWorker(t, m, digest)
	same := smallOpts(t, 6)
	j1, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: same})
	if err != nil {
		t.Fatal(err)
	}
	// Let the job accumulate real queue wait behind the blocker.
	time.Sleep(150 * time.Millisecond)
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	fin1 := wait(t, m, j1.ID)
	if fin1.State != api.StateDone {
		t.Fatalf("first job finished %s (%s)", fin1.State, fin1.Error)
	}
	qw1 := fin1.Result.Stages["queue_wait"]
	if qw1 < 100*time.Millisecond {
		t.Fatalf("first job queue_wait = %s, expected >= 100ms behind the blocker", qw1)
	}

	hit, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: same})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Result == nil {
		t.Fatalf("second submission not a cache hit: %+v", hit)
	}
	qw2 := hit.Result.Stages["queue_wait"]
	if qw2 >= qw1 || qw2 > 50*time.Millisecond {
		t.Errorf("cache hit queue_wait = %s leaked from the first run's %s", qw2, qw1)
	}
	if hit.Result.Stages["engine"] != fin1.Result.Stages["engine"] {
		t.Errorf("cache hit engine stage %s != producing run's %s",
			hit.Result.Stages["engine"], fin1.Result.Stages["engine"])
	}
	if _, ok := hit.Result.Stages["merge"]; !ok {
		t.Error("cache hit dropped the producing run's merge stage")
	}
	// The hit's private copy must not have rewritten the original.
	again, err := m.Status(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Result.Stages["queue_wait"] != qw1 {
		t.Errorf("first job's queue_wait changed from %s to %s after the hit",
			qw1, again.Result.Stages["queue_wait"])
	}
}
