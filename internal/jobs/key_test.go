package jobs

import (
	"testing"

	"tanglefind"
	"tanglefind/api"
)

// TestCacheKeyOptionIdentity pins the canonical cache-key contract:
// result-affecting options (Relabel among them) produce distinct
// keys, scheduling-only options (Workers) share one.
func TestCacheKeyOptionIdentity(t *testing.T) {
	opt := tanglefind.DefaultOptions()
	base := cacheKey(api.KindFind, "digest", 64, opt)

	rel := opt
	rel.Relabel = true
	if cacheKey(api.KindFind, "digest", 64, rel) == base {
		t.Fatal("relabel runs share a cache line with unpermuted runs")
	}

	wrk := opt
	wrk.Workers = 8
	if cacheKey(api.KindFind, "digest", 64, wrk) != base {
		t.Fatal("worker count leaked into the cache key")
	}
}
