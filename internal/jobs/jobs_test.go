package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"tanglefind/api"
	"tanglefind/internal/generate"
	"tanglefind/internal/store"
)

// registered builds a store holding one planted-block netlist and
// returns its digest.
func registered(t *testing.T, cells, block int, seed uint64) (*store.Store, string) {
	t.Helper()
	spec := generate.RandomGraphSpec{Cells: cells, Seed: seed}
	if block > 0 {
		spec.Blocks = []generate.BlockSpec{{Size: block}}
	}
	rg, err := generate.NewRandomGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rg.Netlist.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	s := store.New(0)
	info, err := s.Ingest(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return s, info.Digest
}

// smallOpts keeps test jobs fast and deterministic.
func smallOpts(t *testing.T, seeds int) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(map[string]any{
		"seeds":         seeds,
		"max_order_len": 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// wait polls a job to a terminal state.
func wait(t *testing.T, m *Manager, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFindJobAndResultCache(t *testing.T) {
	s, digest := registered(t, 5000, 500, 11)
	m := New(Config{Store: s, Workers: 2})
	defer m.Shutdown(context.Background())

	req := api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 16)}
	st1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cached {
		t.Error("first submission claimed a cache hit")
	}
	st1 = wait(t, m, st1.ID)
	if st1.State != api.StateDone || st1.Result == nil {
		t.Fatalf("job 1: %+v", st1)
	}
	if len(st1.Result.GTLs) == 0 || st1.Result.GTLs[0].Size < 400 {
		t.Fatalf("planted block not found: %+v", st1.Result)
	}

	// Identical request: served from cache, engine untouched.
	runs := m.Stats().EngineRuns
	st2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != api.StateDone || st2.Result == nil {
		t.Fatalf("job 2 not cached: %+v", st2)
	}
	if st2.Result != st1.Result && len(st2.Result.GTLs) != len(st1.Result.GTLs) {
		t.Error("cached result differs")
	}
	stats := m.Stats()
	if stats.EngineRuns != runs {
		t.Errorf("cache hit ran the engine (%d -> %d runs)", runs, stats.EngineRuns)
	}
	if stats.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", stats.CacheHits)
	}

	// Same options with a different worker count still hits (results
	// are scheduling-independent)...
	var withWorkers map[string]any
	if err := json.Unmarshal(smallOpts(t, 16), &withWorkers); err != nil {
		t.Fatal(err)
	}
	withWorkers["workers"] = 7
	raw, _ := json.Marshal(withWorkers)
	st3, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached {
		t.Error("worker-count-only change missed the cache")
	}
	// ...but a different seed count misses.
	st4, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 17)})
	if err != nil {
		t.Fatal(err)
	}
	if st4.Cached {
		t.Error("different options hit the cache")
	}
	wait(t, m, st4.ID)
}

func TestMitigationKinds(t *testing.T) {
	s, digest := registered(t, 5000, 500, 11)
	m := New(Config{Store: s, Workers: 2})
	defer m.Shutdown(context.Background())

	st, err := m.Submit(api.JobRequest{Kind: api.KindCluster, Digest: digest, Options: smallOpts(t, 16)})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, m, st.ID)
	if st.State != api.StateDone || st.Result == nil || st.Result.Cluster == nil {
		t.Fatalf("cluster job: %+v", st)
	}
	if st.Result.Cluster.Macros != len(st.Result.GTLs) {
		t.Errorf("macros = %d for %d GTLs", st.Result.Cluster.Macros, len(st.Result.GTLs))
	}

	st, err = m.Submit(api.JobRequest{Kind: api.KindDecompose, Digest: digest, Options: smallOpts(t, 16)})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, m, st.ID)
	if st.State != api.StateDone || st.Result == nil || st.Result.Decompose == nil {
		t.Fatalf("decompose job: %+v", st)
	}
	if st.Result.Decompose.CellsAdded == 0 {
		t.Error("decompose added no cells in a dense block")
	}
	// Kinds do not share cache lines with find.
	stats := m.Stats()
	if stats.CacheHits != 0 {
		t.Errorf("cross-kind cache hits: %d", stats.CacheHits)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, digest := registered(t, 2000, 0, 5)
	m := New(Config{Store: s})
	defer m.Shutdown(context.Background())

	cases := []api.JobRequest{
		{Kind: "melt", Digest: digest},
		{Kind: api.KindFind, Digest: "no-such-digest"},
		{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(`{"seedz": 1}`)},
		{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(`{"seeds": -2}`)},
		{Kind: api.KindDecompose, Digest: digest, MaxPins: 1},
		{Kind: api.KindFind, Digest: digest, TimeoutMS: -5},
	}
	for _, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("accepted bad request %+v", req)
		}
	}
	if _, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: "no-such-digest"}); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown digest error = %v", err)
	}
}

func TestCancelRunningJobFreesWorker(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	slow, err := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to occupy the only worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := m.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == api.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if got := wait(t, m, st.ID); got.State != api.StateCancelled {
		t.Fatalf("cancelled job state = %s", got.State)
	}
	// The worker must be free for the next job.
	quick, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if got := wait(t, m, quick.ID); got.State != api.StateDone {
		t.Fatalf("follow-up job state = %s (%s)", got.State, got.Error)
	}
	if stats := m.Stats(); stats.Cancelled != 1 {
		t.Errorf("cancelled count = %d", stats.Cancelled)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())

	slow, _ := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000})
	blocker, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCancelled {
		t.Errorf("queued job after cancel = %s", st.State)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	wait(t, m, blocker.ID)
}

func TestQueueFull(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1, QueueDepth: 1})
	defer m.Shutdown(context.Background())

	// One running + one queued fills the system; the next submission
	// may land before the worker dequeues, so allow one slack slot.
	// Each submission varies rand_seed so none of them coalesce onto
	// an identical in-flight job — this test is about queue capacity.
	var reject error
	for i := 0; i < 4 && reject == nil; i++ {
		slow, _ := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000, "rand_seed": 100 + i})
		_, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow)})
		if err != nil {
			reject = err
		}
	}
	if !errors.Is(reject, ErrQueueFull) {
		t.Fatalf("overflow error = %v, want ErrQueueFull", reject)
	}
	for _, st := range m.List() {
		m.Cancel(st.ID)
	}
}

// TestCancelFreesQueueSlot: cancelling queued jobs must release their
// queue capacity immediately, even while every worker stays busy.
func TestCancelFreesQueueSlot(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1, QueueDepth: 2})
	defer m.Shutdown(context.Background())

	// Every submission gets a distinct rand_seed: identical requests
	// would coalesce onto the in-flight run instead of consuming the
	// queue slots this test is about.
	seedN := 0
	submit := func() (api.JobStatus, error) {
		seedN++
		slow, _ := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000, "rand_seed": seedN})
		return m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow)})
	}
	blocker, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to leave the queue and occupy the worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := m.Status(blocker.ID); st.State == api.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	q1, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit error = %v", err)
	}
	// Cancel both queued jobs: their slots must free while the worker
	// is still busy with the blocker.
	for _, id := range []string{q1.ID, q2.ID} {
		st, err := m.Cancel(id)
		if err != nil || st.State != api.StateCancelled {
			t.Fatalf("cancel %s: %+v, %v", id, st, err)
		}
	}
	if _, err := submit(); err != nil {
		t.Fatalf("submit after cancelling queued jobs: %v", err)
	}
	for _, st := range m.List() {
		m.Cancel(st.ID)
	}
}

func TestJobTimeout(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	slow, _ := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000})
	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow), TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, m, st.ID)
	if st.State != api.StateFailed {
		t.Fatalf("timed-out job state = %s", st.State)
	}
	if st.Error == "" {
		t.Error("timed-out job carries no error message")
	}
}

func TestSubscribeSeesEvents(t *testing.T) {
	s, digest := registered(t, 5000, 500, 11)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 16)})
	if err != nil {
		t.Fatal(err)
	}
	events, unsub, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	var n int
	var lastState api.State
	for ev := range events {
		n++
		lastState = ev.State
	}
	if n < 1 {
		t.Fatal("no events delivered")
	}
	if !lastState.Terminal() {
		t.Errorf("stream ended in non-terminal state %s", lastState)
	}
	// A late subscriber still gets the terminal snapshot.
	late, unsub2, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub2()
	ev, open := <-late
	if !open || !ev.State.Terminal() {
		t.Errorf("late snapshot = %+v (open=%v)", ev, open)
	}
	if _, open := <-late; open {
		t.Error("late channel not closed after terminal snapshot")
	}
}

func TestShutdownDrains(t *testing.T) {
	s, digest := registered(t, 5000, 500, 11)
	m := New(Config{Store: s, Workers: 1})
	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := m.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.StateDone {
		t.Errorf("drained job state = %s", got.State)
	}
	if _, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-shutdown submit error = %v", err)
	}
}

func TestForcedShutdownCancels(t *testing.T) {
	s, digest := registered(t, 30000, 2000, 13)
	m := New(Config{Store: s, Workers: 1})
	slow, _ := json.Marshal(map[string]any{"seeds": 5000, "max_order_len": 12000})
	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: json.RawMessage(slow)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown error = %v", err)
	}
	got, err := m.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.State.Terminal() {
		t.Errorf("job survived forced shutdown in state %s", got.State)
	}
}

// TestMultilevelJob runs a find job through the multilevel pipeline
// and checks the serving-layer surfaces: the result carries the
// per-level breakdown, /v1/stats-style counters attribute the run to
// its level count, multilevel options form their own cache lines, and
// the store reports engine memory after the run.
func TestMultilevelJob(t *testing.T) {
	s, digest := registered(t, 8000, 600, 11)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	raw, err := json.Marshal(map[string]any{
		"seeds":            16,
		"max_order_len":    1500,
		"levels":           2,
		"min_coarse_cells": 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: raw})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, m, st.ID)
	if st.State != api.StateDone || st.Result == nil {
		t.Fatalf("multilevel job: %+v", st)
	}
	if len(st.Result.Levels) != 2 {
		t.Fatalf("result level entries = %d, want 2", len(st.Result.Levels))
	}
	if len(st.Result.GTLs) == 0 {
		t.Error("multilevel job found no GTLs on a planted-block netlist")
	}

	// A flat job over the same netlist must not share a cache line.
	flat, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: smallOpts(t, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Cached {
		t.Error("flat request hit the multilevel cache line")
	}
	wait(t, m, flat.ID)

	stats := m.Stats()
	if stats.RunsByLevels["2"] != 1 {
		t.Errorf("runs_by_levels[2] = %d, want 1 (stats: %+v)", stats.RunsByLevels["2"], stats.RunsByLevels)
	}
	if stats.RunsByLevels["1"] != 1 {
		t.Errorf("runs_by_levels[1] = %d, want 1 (stats: %+v)", stats.RunsByLevels["1"], stats.RunsByLevels)
	}
	if eb := s.Stats().EngineBytes; eb <= 0 {
		t.Errorf("store engine_bytes = %d after engine runs; want positive", eb)
	}
	s.TrimEngines()
	// Hierarchy bytes legitimately remain; the trim must not panic or
	// deadlock and must never increase the estimate.
	if eb := s.Stats().EngineBytes; eb < 0 {
		t.Errorf("engine_bytes negative after trim: %d", eb)
	}
}

// TestOldClientPayload submits the exact options document a
// pre-multilevel client would send and expects flat behavior — the
// explicit wire-level forward-compatibility check on top of the core
// ParseOptions test.
func TestOldClientPayload(t *testing.T) {
	s, digest := registered(t, 5000, 500, 11)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	old := json.RawMessage(`{"seeds": 16, "max_order_len": 1500, "metric": "gtlsd", "refine": true, "rand_seed": 1}`)
	st, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: old})
	if err != nil {
		t.Fatalf("old-client payload rejected: %v", err)
	}
	st = wait(t, m, st.ID)
	if st.State != api.StateDone || st.Result == nil {
		t.Fatalf("old-client job: %+v", st)
	}
	if len(st.Result.Levels) != 0 {
		t.Errorf("old-client payload triggered a multilevel run: %+v", st.Result.Levels)
	}
	if m.Stats().RunsByLevels["1"] != 1 {
		t.Errorf("old-client run not counted as flat: %+v", m.Stats().RunsByLevels)
	}
}

// applyTestDelta registers a pin-preserving reconnect delta against
// the digest's netlist and returns the child digest.
func applyTestDelta(t *testing.T, s *store.Store, digest string) string {
	t.Helper()
	nl, _, err := s.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	// Edit a net living entirely in the top of the cell-id space —
	// background territory in generated workloads (planted blocks
	// occupy the low ids), so the edit stays far from the tangle.
	var target int32 = -1
	var pins []int32
	for e := nl.NumNets() - 1; e >= 0; e-- {
		ps := nl.NetPins(int32(e))
		ok := len(ps) >= 2
		for _, c := range ps {
			if int(c) < nl.NumCells()/2 {
				ok = false
				break
			}
		}
		if ok {
			target = int32(e)
			for _, c := range ps {
				pins = append(pins, c)
			}
			break
		}
	}
	if target < 0 {
		t.Fatal("no background net found")
	}
	edit := map[string]any{"set_nets": []map[string]any{{
		"net": target, "cells": []int32{pins[0], pins[0] - 1},
	}}}
	doc, err := json.Marshal(edit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ApplyDelta(digest, doc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Netlist.Digest
}

// TestIncrementalJobReusesParentState drives the serving-layer flow:
// a recorded find on the parent, a delta, then a find_incremental on
// the child that reuses state — its result equal (in shape) to a
// from-scratch find on the child.
func TestIncrementalJobReusesParentState(t *testing.T) {
	s, digest := registered(t, 9000, 400, 61)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	opts, err := json.Marshal(map[string]any{
		"seeds": 16, "max_order_len": 700, "record_incremental": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if st := wait(t, m, base.ID); st.State != api.StateDone {
		t.Fatalf("base run: %+v", st)
	}

	child := applyTestDelta(t, s, digest)

	incr, err := m.Submit(api.JobRequest{Kind: api.KindFindIncremental, Digest: child, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	st := wait(t, m, incr.ID)
	if st.State != api.StateDone || st.Result == nil {
		t.Fatalf("incremental job: %+v", st)
	}
	br := st.Result.Incremental
	if br == nil {
		t.Fatal("incremental job result carries no breakdown")
	}
	if br.FullFallback {
		t.Fatalf("incremental job fell back: %+v", br)
	}
	if br.ReusedSeeds == 0 {
		t.Fatalf("no seeds reused: %+v", br)
	}

	// Oracle at the serving layer: a plain find on the child agrees.
	full, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: child, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	fs := wait(t, m, full.ID)
	if fs.State != api.StateDone {
		t.Fatalf("full child run: %+v", fs)
	}
	if len(fs.Result.GTLs) != len(st.Result.GTLs) || fs.Result.Candidates != st.Result.Candidates {
		t.Fatalf("incremental diverged from full: %d/%d GTLs, %d/%d candidates",
			len(st.Result.GTLs), len(fs.Result.GTLs), st.Result.Candidates, fs.Result.Candidates)
	}

	stats := m.Stats()
	if stats.IncrementalRuns != 1 || stats.IncrementalFallbacks != 0 {
		t.Errorf("stats = %+v", stats)
	}

	// A second delta on the child chains off the incremental run's
	// own recorded state.
	grand := applyTestDelta(t, s, child)
	incr2, err := m.Submit(api.JobRequest{Kind: api.KindFindIncremental, Digest: grand, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	st2 := wait(t, m, incr2.ID)
	if st2.State != api.StateDone || st2.Result.Incremental == nil || st2.Result.Incremental.FullFallback {
		t.Fatalf("chained incremental job: %+v", st2.Result)
	}
}

// TestIncrementalJobFallsBackWithoutState proves the degraded path: a
// find_incremental without a recorded parent run still completes, as
// a full run, and reports why.
func TestIncrementalJobFallsBackWithoutState(t *testing.T) {
	s, digest := registered(t, 4000, 300, 62)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	child := applyTestDelta(t, s, digest)
	st, err := m.Submit(api.JobRequest{Kind: api.KindFindIncremental, Digest: child, Options: smallOpts(t, 8)})
	if err != nil {
		t.Fatal(err)
	}
	got := wait(t, m, st.ID)
	if got.State != api.StateDone || got.Result == nil || got.Result.Incremental == nil {
		t.Fatalf("fallback job: %+v", got)
	}
	if !got.Result.Incremental.FullFallback {
		t.Fatal("expected a full fallback")
	}
	if m.Stats().IncrementalFallbacks != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

// TestIncrementalSubmitErrors locks the typed submission failures —
// a digest without lineage is a bad request — and that the matrix
// restriction is gone: a multilevel find_incremental submit is
// accepted and completes (here as a reported full fallback, since the
// parent digest has no recorded multilevel run to chain from).
func TestIncrementalSubmitErrors(t *testing.T) {
	s, digest := registered(t, 4000, 0, 63)
	m := New(Config{Store: s, Workers: 1})
	defer m.Shutdown(context.Background())

	_, err := m.Submit(api.JobRequest{Kind: api.KindFindIncremental, Digest: digest, Options: smallOpts(t, 8)})
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("no-lineage submit error = %v, want ErrBadRequest", err)
	}

	child := applyTestDelta(t, s, digest)
	ml, err := json.Marshal(map[string]any{"seeds": 8, "max_order_len": 1200, "levels": 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(api.JobRequest{Kind: api.KindFindIncremental, Digest: child, Options: ml})
	if err != nil {
		t.Fatalf("multilevel incremental submit = %v, want accepted", err)
	}
	got := wait(t, m, st.ID)
	if got.State != api.StateDone || got.Result == nil || got.Result.Incremental == nil {
		t.Fatalf("multilevel incremental job: %+v", got)
	}
	if !got.Result.Incremental.FullFallback {
		t.Error("first-in-chain multilevel incremental should report a full fallback")
	}
}

// TestCacheHitDoesNotStarveStatePriming: when the incremental state
// LRU has evicted a digest's recorded state, re-submitting the
// identical record_incremental find must run the engine again (the
// cached wire result alone cannot re-prime the state).
func TestCacheHitDoesNotStarveStatePriming(t *testing.T) {
	s, digest := registered(t, 9000, 400, 64)
	other, err := s.Ingest(payloadBytes(t, 4000, 65))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Store: s, Workers: 1, IncrStates: 1})
	defer m.Shutdown(context.Background())

	opts, err := json.Marshal(map[string]any{
		"seeds": 12, "max_order_len": 700, "record_incremental": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m, base.ID)
	// Evict digest's state from the 1-entry LRU with another recording.
	evictor, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: other.Digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m, evictor.ID)

	runs := m.Stats().EngineRuns
	again, err := m.Submit(api.JobRequest{Kind: api.KindFind, Digest: digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	st := wait(t, m, again.ID)
	if st.Cached {
		t.Fatal("re-priming submit was served from the result cache")
	}
	if m.Stats().EngineRuns != runs+1 {
		t.Fatalf("engine runs %d -> %d; re-priming did not run", runs, m.Stats().EngineRuns)
	}
	// The re-primed state makes the child's incremental job reuse work.
	child := applyTestDelta(t, s, digest)
	incr, err := m.Submit(api.JobRequest{Kind: api.KindFindIncremental, Digest: child, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	got := wait(t, m, incr.ID)
	if got.State != api.StateDone || got.Result.Incremental == nil || got.Result.Incremental.FullFallback {
		t.Fatalf("incremental after re-prime: %+v", got.Result)
	}
	if m.Stats().IncrStateBytes <= 0 {
		t.Errorf("IncrStateBytes = %d, want > 0", m.Stats().IncrStateBytes)
	}
}

// payloadBytes serializes a small block-free netlist as .tfb bytes.
func payloadBytes(t *testing.T, cells int, seed uint64) []byte {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: cells, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rg.Netlist.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
