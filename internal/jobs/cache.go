package jobs

import (
	"container/list"
	"sync"

	"tanglefind"
	"tanglefind/api"
)

// resultCache is an LRU map from compute identity (see cacheKey) to a
// completed job result. Results are immutable once cached — every hit
// shares the same *api.JobResult.
type resultCache struct {
	mu    sync.Mutex
	max   int
	byKey map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEnt struct {
	key string
	res *api.JobResult
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, byKey: make(map[string]*list.Element), order: list.New()}
}

func (c *resultCache) get(key string) (*api.JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEnt).res, true
}

func (c *resultCache) put(key string, res *api.JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEnt).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEnt{key: key, res: res})
	for c.order.Len() > c.max {
		el := c.order.Back()
		delete(c.byKey, el.Value.(*cacheEnt).key)
		c.order.Remove(el)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// incrCache is a small LRU from (digest, incremental options key) to
// the engine Result that recorded incremental state for that netlist.
// It is separate from resultCache because entries are heavy —
// O(Seeds × MaxOrderLen) of recorded orderings and footprints — so
// the bound is much tighter, and because values are engine results
// (with state attached), not wire results.
type incrCache struct {
	mu    sync.Mutex
	max   int
	byKey map[string]*list.Element
	order *list.List
}

type incrEnt struct {
	key string
	res *tanglefind.Result
}

func newIncrCache(max int) *incrCache {
	return &incrCache{max: max, byKey: make(map[string]*list.Element), order: list.New()}
}

func (c *incrCache) get(key string) (*tanglefind.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*incrEnt).res, true
}

func (c *incrCache) put(key string, res *tanglefind.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*incrEnt).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&incrEnt{key: key, res: res})
	for c.order.Len() > c.max {
		el := c.order.Back()
		delete(c.byKey, el.Value.(*incrEnt).key)
		c.order.Remove(el)
	}
}

// memoryEstimate sums the retained state bytes of every cached entry.
func (c *incrCache) memoryEstimate() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b int64
	for el := c.order.Front(); el != nil; el = el.Next() {
		if st := el.Value.(*incrEnt).res.IncrState; st != nil {
			b += st.MemoryEstimate()
		}
	}
	return b
}

// lintCache is a small LRU from lintKey (digest + canonical rule
// config) to a finished lint report, retained so delta-derived digests
// can lint incrementally against their parent's report.
type lintCache struct {
	mu    sync.Mutex
	max   int
	byKey map[string]*list.Element
	order *list.List
}

type lintEnt struct {
	key string
	rep *tanglefind.LintReport
}

func newLintCache(max int) *lintCache {
	return &lintCache{max: max, byKey: make(map[string]*list.Element), order: list.New()}
}

func (c *lintCache) get(key string) (*tanglefind.LintReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lintEnt).rep, true
}

func (c *lintCache) put(key string, rep *tanglefind.LintReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lintEnt).rep = rep
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lintEnt{key: key, rep: rep})
	for c.order.Len() > c.max {
		el := c.order.Back()
		delete(c.byKey, el.Value.(*lintEnt).key)
		c.order.Remove(el)
	}
}
