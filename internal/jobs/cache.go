package jobs

import (
	"container/list"
	"sync"

	"tanglefind/api"
)

// resultCache is an LRU map from compute identity (see cacheKey) to a
// completed job result. Results are immutable once cached — every hit
// shares the same *api.JobResult.
type resultCache struct {
	mu    sync.Mutex
	max   int
	byKey map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEnt struct {
	key string
	res *api.JobResult
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, byKey: make(map[string]*list.Element), order: list.New()}
}

func (c *resultCache) get(key string) (*api.JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEnt).res, true
}

func (c *resultCache) put(key string, res *api.JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEnt).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEnt{key: key, res: res})
	for c.order.Len() > c.max {
		el := c.order.Back()
		delete(c.byKey, el.Value.(*cacheEnt).key)
		c.order.Remove(el)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
