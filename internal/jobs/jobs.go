// Package jobs runs detection work over registered netlists: a
// bounded submission queue feeding a fixed worker pool, each job a
// Finder run (optionally followed by the cluster/decompose
// mitigation) with its own cancellation context and optional compute
// deadline, a queued → running → done/failed/cancelled state machine,
// per-job progress fan-out to any number of subscribers, and a
// digest+options result cache so identical requests are answered
// without touching the engine.
//
// Everything here speaks the facade (package tanglefind) and the wire
// types (package api); no internal/core import is needed — the point
// of the PR-3 facade exports.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tanglefind"
	"tanglefind/api"
	"tanglefind/internal/store"
	"tanglefind/internal/telemetry"
)

// Typed submission failures, mapped to HTTP statuses by the server.
var (
	// ErrQueueFull means the bounded queue rejected the job; retry later.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed means the manager is draining for shutdown.
	ErrClosed = errors.New("jobs: manager shut down")
	// ErrNoJob means the job id is unknown (or its record was retired).
	ErrNoJob = errors.New("jobs: no such job")
	// ErrBadRequest wraps malformed submissions (unknown kind, bad
	// options, undersized netlist).
	ErrBadRequest = errors.New("jobs: bad request")
)

// Config sizes a Manager. Zero fields take the documented defaults.
type Config struct {
	// Store resolves digests to netlists and shared engines. Required.
	Store *store.Store
	// Workers is the number of concurrent jobs (default 2). Each job
	// is itself internally parallel per its Options.Workers.
	Workers int
	// EngineWorkers is the pool-wide budget of engine goroutines
	// shared by all concurrently running jobs (default GOMAXPROCS).
	// Each job is granted min(its requested Options.Workers, what the
	// budget has free) — never less than 1 — when it starts, and
	// returns the grant when it finishes, so one greedy job cannot
	// oversubscribe the machine under concurrent load. Grants never
	// change results, only scheduling.
	EngineWorkers int
	// QueueDepth bounds the submission queue (default 64); a full
	// queue rejects with ErrQueueFull instead of buffering unboundedly.
	QueueDepth int
	// CacheResults bounds the result cache entry count (default 128).
	CacheResults int
	// IncrStates bounds how many recorded incremental states (one per
	// digest+options, each O(Seeds × MaxOrderLen) bytes) are retained
	// for find_incremental jobs (default 8).
	IncrStates int
	// LintStates bounds how many lint reports (one per digest+rule
	// config) are retained so delta-derived digests lint incrementally
	// against their parent's report (default 16).
	LintStates int
	// MaxJobs bounds retained job records; the oldest terminal records
	// are retired past this (default 1024).
	MaxJobs int
	// Metrics is the telemetry registry the manager registers its job
	// families in (stage histograms, outcome counters, scrape-mirrored
	// stats). Nil gets a private registry; the serving layer shares it
	// through Manager.Registry so one /metrics covers both.
	Metrics *telemetry.Registry
	// Logger receives structured job-lifecycle records (queued,
	// started, finished — with the submitting request's ID and the
	// stage durations). Nil discards.
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheResults <= 0 {
		c.CacheResults = 128
	}
	if c.IncrStates <= 0 {
		c.IncrStates = 8
	}
	if c.LintStates <= 0 {
		c.LintStates = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Manager owns the queue, the worker pool, the job records and the
// result cache. Construct with New, dispose with Shutdown.
//
// The queue is an explicit pending list (not a channel) so that
// cancelling a queued job frees its slot immediately — buffered
// cancelled jobs must not hold QueueDepth against live submissions.
type Manager struct {
	cfg   Config
	cache *resultCache
	incr  *incrCache
	lints *lintCache
	wg    sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // signals workers that pending grew or closed flipped
	pending []*Job     // queued jobs awaiting a worker, FIFO
	jobs    map[string]*Job
	order   []string // submission order, for listing and retirement
	closed  bool
	// inflight is the single-flight table: cacheKey → the job whose
	// engine run will serve every identical submission arriving while
	// it is queued or running (those attach as followers instead of
	// consuming a queue slot and an engine run). Guarded by mu; the
	// running worker removes its entry before finishing the job, so a
	// submission can never attach to a run that will not publish to it.
	inflight map[string]*Job

	nextID        atomic.Int64
	submitted     atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	cancelled     atomic.Int64
	cacheHits     atomic.Int64
	engineRuns    atomic.Int64
	incrRuns      atomic.Int64
	incrFallbacks atomic.Int64
	lintRuns      atomic.Int64
	lintIncr      atomic.Int64
	seedsStolen   atomic.Int64
	grantsCapped  atomic.Int64
	coalesced     atomic.Int64
	rewarmed      atomic.Int64
	journalErrs   atomic.Int64

	// testMitigationErr, when set by a test, is returned by the
	// mitigation step of every run — the seam for pinning the
	// "failed job must not prime caches" invariants, since Cluster/
	// Decompose cannot be made to fail through the public API.
	testMitigationErr error

	// grantMu guards the engine-worker budget (see Config.EngineWorkers).
	grantMu     sync.Mutex
	grantsInUse int

	levelMu     sync.Mutex
	runsByLevel map[int]int64 // engine runs keyed by hierarchy levels used (1 = flat)

	// Live metric handles (children resolved once at construction so
	// terminal paths pay one atomic op per update). The cumulative
	// stats atomics above are additionally mirrored into counter
	// families at scrape time — see registerMetrics.
	log          *slog.Logger
	stageSeconds *telemetry.HistogramVec
	jobsFinished *telemetry.CounterVec
	cacheHitC    *telemetry.Counter
	cacheMissC   *telemetry.Counter
	grantFullC   *telemetry.Counter
	grantCapC    *telemetry.Counter
}

// New starts a manager and its worker pool. When the store recovered
// journaled job results at startup (durable serving), they are
// rewarmed into the result cache before the first submission, so a
// restart does not turn yesterday's cache hits into engine runs.
func New(cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:         cfg,
		cache:       newResultCache(cfg.CacheResults),
		incr:        newIncrCache(cfg.IncrStates),
		lints:       newLintCache(cfg.LintStates),
		jobs:        make(map[string]*Job),
		inflight:    make(map[string]*Job),
		runsByLevel: make(map[int]int64),
	}
	m.cond = sync.NewCond(&m.mu)
	m.log = cfg.Logger
	m.registerMetrics()
	if cfg.Store != nil {
		for key, raw := range cfg.Store.RecoveredResults() {
			var res api.JobResult
			if err := json.Unmarshal(raw, &res); err != nil {
				m.log.Warn("discarding unreadable journaled result", "key", key, "err", err)
				continue
			}
			m.cache.put(key, &res)
			m.rewarmed.Add(1)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the registry the manager's job metrics live in, so
// the serving layer can add its own families and expose one /metrics.
func (m *Manager) Registry() *telemetry.Registry { return m.cfg.Metrics }

// registerMetrics declares the manager's metric families. Live
// counters/histograms are updated on the job paths; everything the
// Stats() call already counts is mirrored into families at scrape
// time instead, so GET /metrics and GET /v1/stats can never disagree.
func (m *Manager) registerMetrics() {
	reg := m.cfg.Metrics
	m.stageSeconds = reg.HistogramVec("gtl_job_stage_seconds",
		"Completed-job stage latency in seconds by job kind and stage: queue_wait, engine, merge, plus the engine's own engine_* phases.",
		nil, "kind", "stage")
	m.jobsFinished = reg.CounterVec("gtl_jobs_finished_total",
		"Jobs reaching a terminal state by running, by kind and outcome (done, failed, cancelled). Cache hits are not counted here.",
		"kind", "outcome")
	cacheVec := reg.CounterVec("gtl_job_cache_total",
		"Result-cache consultations for accepted submissions, by outcome (hit, miss).", "result")
	m.cacheHitC = cacheVec.With("hit")
	m.cacheMissC = cacheVec.With("miss")
	grantVec := reg.CounterVec("gtl_worker_grants_total",
		"Engine-worker grants at job start, by outcome: full means the request fit the pool budget, capped means it was trimmed.", "outcome")
	m.grantFullC = grantVec.With("full")
	m.grantCapC = grantVec.With("capped")

	// Scrape-time mirrors of the /v1/stats payload.
	submitted := reg.Counter("gtl_jobs_submitted_total", "Accepted job submissions (including cache hits) since process start.")
	cacheHits := reg.Counter("gtl_job_cache_hits_total", "Submissions answered from the result cache without engine work.")
	engineRuns := reg.Counter("gtl_engine_runs_total", "Jobs that actually ran the finder engine.")
	incrRuns := reg.Counter("gtl_incremental_runs_total", "Completed find_incremental engine runs.")
	incrFallbacks := reg.Counter("gtl_incremental_fallbacks_total", "Incremental runs that degraded to a full re-detection.")
	lintRuns := reg.Counter("gtl_lint_runs_total", "Completed lint engine runs.")
	lintIncr := reg.Counter("gtl_lint_incremental_total", "Lint runs answered incrementally from a parent report.")
	seedsStolen := reg.Counter("gtl_parallel_seeds_stolen_total", "Seeds migrated between engine workers by the work-stealing scheduler.")
	coalesced := reg.Counter("gtl_jobs_coalesced_total", "Submissions attached as followers of an identical in-flight job (one engine run serves the whole group).")
	rewarmed := reg.Counter("gtl_job_results_rewarmed_total", "Result-cache entries restored from the store journal at startup.")
	queueDepth := reg.Gauge("gtl_jobs_queue_depth", "Jobs accepted but not yet picked up by a worker.")
	queued := reg.Gauge("gtl_jobs_queued", "Jobs currently in the queued state.")
	running := reg.Gauge("gtl_jobs_running", "Jobs currently running.")
	inFlight := reg.GaugeVec("gtl_jobs_in_flight", "Non-terminal jobs (queued + running) by job kind.", "kind")
	cachedResults := reg.Gauge("gtl_job_cached_results", "Entries currently held by the result cache.")
	incrBytes := reg.Gauge("gtl_incremental_state_bytes", "Estimated memory retained by recorded incremental seed states.")
	byLevels := reg.CounterVec("gtl_engine_runs_by_levels_total", "Completed engine runs by hierarchy levels actually used (1 = flat).", "levels")
	reg.OnScrape(func() {
		st := m.Stats()
		submitted.Set(float64(st.Submitted))
		cacheHits.Set(float64(st.CacheHits))
		engineRuns.Set(float64(st.EngineRuns))
		incrRuns.Set(float64(st.IncrementalRuns))
		incrFallbacks.Set(float64(st.IncrementalFallbacks))
		lintRuns.Set(float64(st.LintRuns))
		lintIncr.Set(float64(st.LintIncremental))
		seedsStolen.Set(float64(st.ParallelSeedsStolen))
		coalesced.Set(float64(st.CoalescedJobs))
		rewarmed.Set(float64(st.RewarmedResults))
		queueDepth.Set(float64(st.QueueDepth))
		queued.Set(float64(st.Queued))
		running.Set(float64(st.Running))
		cachedResults.Set(float64(st.CachedSets))
		incrBytes.Set(float64(st.IncrStateBytes))
		for _, k := range []api.Kind{api.KindFind, api.KindCluster, api.KindDecompose, api.KindFindIncremental, api.KindLint} {
			inFlight.With(string(k)).Set(float64(st.InFlightByKind[string(k)]))
		}
		for lv, n := range st.RunsByLevels {
			byLevels.With(lv).Set(float64(n))
		}
	})
}

// Job is one unit of work. All mutable state is behind mu; the
// identity fields are immutable after Submit.
type Job struct {
	id   string
	kind api.Kind
	// reqID is the HTTP request ID that submitted the job, carried
	// through statuses and logs so one curl correlates end to end.
	reqID    string
	digest   string
	opt      tanglefind.Options
	maxPins  int
	timeout  time.Duration
	cacheKey string
	finder   *tanglefind.Finder
	// Incremental jobs resolve their lineage at submit time; the
	// parent's recorded state is looked up at run time (it may still
	// be computing when the job is queued).
	parent string
	dirty  []tanglefind.CellID
	// Lint jobs carry their resolved netlist and rule configuration
	// instead of finder state.
	lintNl  *tanglefind.Netlist
	lintCfg tanglefind.LintConfig
	ctx     context.Context
	cancel  context.CancelFunc

	// leader, when non-nil, marks this job a coalesced follower: its
	// result comes from the leader's engine run, not a run of its own.
	// Guarded by the manager's mu (it is only set at accept time and
	// cleared by promotion inside Cancel).
	leader *Job

	mu       sync.Mutex
	state    api.State
	cached   bool
	errMsg   string
	result   *api.JobResult
	progress *tanglefind.Progress
	created  time.Time
	started  *time.Time
	finished *time.Time
	subs     map[int]chan api.Event
	nextSub  int
	// followers are identical submissions riding this job's engine
	// run (see Manager.inflight). Guarded by this job's mu.
	followers []*Job
}

// Submit validates a request, resolves its netlist, consults the
// result cache, and either answers from cache (state done, Cached
// true, no engine work) or enqueues the job. The returned status is
// the job's state at return time.
func (m *Manager) Submit(req api.JobRequest) (api.JobStatus, error) {
	if !req.Kind.Valid() {
		return api.JobStatus{}, fmt.Errorf("%w: unknown kind %q (want find, cluster, decompose, find_incremental or lint)", ErrBadRequest, req.Kind)
	}
	if req.Kind == api.KindLint {
		return m.submitLint(req)
	}
	finder, info, err := m.cfg.Store.Engine(req.Digest)
	if err != nil {
		return api.JobStatus{}, err
	}
	opt, err := tanglefind.ParseOptions(req.Options)
	if err != nil {
		return api.JobStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var parent string
	var dirty []tanglefind.CellID
	if req.Kind == api.KindFindIncremental {
		lin, ok := m.cfg.Store.Lineage(req.Digest)
		if !ok {
			return api.JobStatus{}, fmt.Errorf("%w: digest %s has no delta lineage (POST a delta first, or use kind \"find\")", ErrBadRequest, req.Digest)
		}
		parent, dirty = lin.Parent, lin.Dirty
		// Record state on the child run too, so chains of deltas keep
		// reusing work without a priming full run per step.
		opt.RecordIncremental = true
	}
	// Mirror the CLI clamp: an ordering may not swallow the whole
	// netlist, or Phase II has no exterior curve to contrast against.
	if opt.MaxOrderLen >= info.Cells {
		opt.MaxOrderLen = info.Cells / 2
		if opt.MaxOrderLen < 2 {
			return api.JobStatus{}, fmt.Errorf("%w: netlist too small (%d cells)", ErrBadRequest, info.Cells)
		}
	}
	maxPins := 0
	if req.Kind == api.KindDecompose {
		maxPins = req.MaxPins
		if maxPins == 0 {
			maxPins = 3
		}
		if maxPins < 2 {
			return api.JobStatus{}, fmt.Errorf("%w: max_pins must be at least 2, got %d", ErrBadRequest, maxPins)
		}
	}
	if req.TimeoutMS < 0 {
		return api.JobStatus{}, fmt.Errorf("%w: timeout_ms must be non-negative", ErrBadRequest)
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		kind:     req.Kind,
		reqID:    req.RequestID,
		digest:   req.Digest,
		opt:      opt,
		maxPins:  maxPins,
		timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		cacheKey: cacheKey(req.Kind, req.Digest, maxPins, opt),
		finder:   finder,
		parent:   parent,
		dirty:    dirty,
		ctx:      ctx,
		cancel:   cancel,
		state:    api.StateQueued,
		created:  time.Now(),
		subs:     make(map[int]chan api.Event),
	}
	return m.accept(j)
}

// submitLint validates a lint request and builds its job. Lint jobs
// resolve the raw netlist (no finder engine) and key the result cache
// on the canonical rule configuration; a digest with delta lineage
// also records its parent so the run can lint incrementally.
func (m *Manager) submitLint(req api.JobRequest) (api.JobStatus, error) {
	nl, _, err := m.cfg.Store.Get(req.Digest)
	if err != nil {
		return api.JobStatus{}, err
	}
	cfg, err := tanglefind.ParseLintConfig(req.Lint)
	if err != nil {
		return api.JobStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.TimeoutMS < 0 {
		return api.JobStatus{}, fmt.Errorf("%w: timeout_ms must be non-negative", ErrBadRequest)
	}
	var parent string
	var dirty []tanglefind.CellID
	if lin, ok := m.cfg.Store.Lineage(req.Digest); ok {
		parent, dirty = lin.Parent, lin.Dirty
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		kind:     req.Kind,
		reqID:    req.RequestID,
		digest:   req.Digest,
		timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		cacheKey: lintKey(req.Digest, cfg),
		lintNl:   nl,
		lintCfg:  cfg,
		parent:   parent,
		dirty:    dirty,
		ctx:      ctx,
		cancel:   cancel,
		state:    api.StateQueued,
		created:  time.Now(),
		subs:     make(map[int]chan api.Event),
	}
	return m.accept(j)
}

// accept enqueues the job and, off the manager lock, emits the
// structured submission record.
func (m *Manager) accept(j *Job) (api.JobStatus, error) {
	st, err := m.enqueue(j)
	if err != nil {
		return st, err
	}
	msg := "job queued"
	if st.Cached {
		msg = "job served from cache"
	}
	m.log.Info(msg,
		"job_id", st.ID, "kind", string(j.kind), "digest", j.digest,
		"request_id", j.reqID)
	return st, nil
}

// enqueue consults the result cache and either answers immediately
// (state done, Cached true) or appends the job to the pending list.
func (m *Manager) enqueue(j *Job) (api.JobStatus, error) {
	cancel := j.cancel
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		cancel()
		return api.JobStatus{}, ErrClosed
	}

	// A recorded run's purpose includes (re)priming the incremental
	// state cache; if its state has been evicted from the bounded LRU,
	// the cached wire result alone cannot do that — skip the shortcut
	// and run the engine again.
	statePrimed := false
	if j.opt.RecordIncremental {
		_, statePrimed = m.incr.get(incrKey(j.digest, j.opt))
	}
	if res, ok := m.cache.get(j.cacheKey); ok && (!j.opt.RecordIncremental || statePrimed) {
		// Identical digest+kind+options already computed: serve the
		// cached result without consuming a queue slot or worker. The
		// hit gets its own shallow copy of the result: engine stages
		// carry over (they describe the run that produced the data,
		// clearly attributed by Cached=true), but queue_wait and merge
		// belong to that first job alone — a hit reports its own,
		// effectively zero, queue wait instead of another job's.
		m.submitted.Add(1)
		m.cacheHits.Add(1)
		m.cacheHitC.Inc()
		cancel()
		j.id = fmt.Sprintf("job-%06d", m.nextID.Add(1))
		now := time.Now()
		hit := *res
		hit.Stages = ownQueueWait(res.Stages, now.Sub(j.created))
		j.state = api.StateDone
		j.cached = true
		j.result = &hit
		j.finished = &now
		m.addJobLocked(j)
		return j.Status(), nil
	}

	// Single-flight: an identical job already queued or running means
	// this submission attaches as a follower of that engine run — its
	// own job id, stream and completion, no queue slot, no second run.
	// The follower's context stays live: if the leader is cancelled
	// while queued, a follower is promoted to run in its place.
	if leader := m.inflight[j.cacheKey]; leader != nil {
		leader.mu.Lock()
		if !leader.state.Terminal() {
			m.submitted.Add(1)
			m.coalesced.Add(1)
			m.cacheMissC.Inc()
			j.id = fmt.Sprintf("job-%06d", m.nextID.Add(1))
			j.leader = leader
			if leader.state == api.StateRunning {
				// The run is already underway: the follower waited for
				// nothing, and its state says so immediately.
				now := time.Now()
				j.state = api.StateRunning
				j.started = &now
			}
			leader.followers = append(leader.followers, j)
			leader.mu.Unlock()
			m.addJobLocked(j)
			return j.Status(), nil
		}
		// The leader reached a terminal state between removing itself
		// from the table and now — impossible while the worker clears
		// inflight first, but never attach to a finished run.
		leader.mu.Unlock()
		delete(m.inflight, j.cacheKey)
	}

	if len(m.pending) >= m.cfg.QueueDepth {
		cancel()
		return api.JobStatus{}, ErrQueueFull
	}
	// Accepted: only now does the submission count, so rejected
	// requests don't inflate the stats.
	m.submitted.Add(1)
	m.cacheMissC.Inc()
	j.id = fmt.Sprintf("job-%06d", m.nextID.Add(1))
	m.pending = append(m.pending, j)
	m.inflight[j.cacheKey] = j
	m.cond.Signal()
	m.addJobLocked(j)
	return j.Status(), nil
}

// ownQueueWait copies a finished run's stage breakdown for a job that
// did not run (a cache hit or a coalesced follower): the engine and
// merge stages carry over (they describe the run that produced the
// data, clearly attributed by Cached or the coalesced lineage), but
// the producing run's queue_wait is replaced by this job's own.
func ownQueueWait(stages tanglefind.StageTimings, wait time.Duration) tanglefind.StageTimings {
	out := tanglefind.StageTimings{}
	for name, d := range stages {
		if name == "queue_wait" {
			continue
		}
		out[name] = d
	}
	if wait < 0 {
		wait = 0
	}
	out.Add("queue_wait", wait)
	return out
}

// addJobLocked records a job and retires the oldest terminal records
// past the retention bound. Callers hold m.mu.
func (m *Manager) addJobLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	for len(m.order) > m.cfg.MaxJobs {
		oldest := m.jobs[m.order[0]]
		if oldest != nil && !oldest.Status().State.Terminal() {
			break // never retire a live job record
		}
		delete(m.jobs, m.order[0])
		m.order = m.order[1:]
	}
}

// Status returns the job's current externally visible state.
func (m *Manager) Status(id string) (api.JobStatus, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return api.JobStatus{}, ErrNoJob
	}
	return j.Status(), nil
}

// List returns every retained job's status, most recent submission
// first.
func (m *Manager) List() []api.JobStatus {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		if j := m.jobs[m.order[i]]; j != nil {
			js = append(js, j)
		}
	}
	m.mu.Unlock()
	out := make([]api.JobStatus, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	return out
}

// Cancel stops a job: a queued job flips to cancelled immediately, a
// running job's context is cancelled and its worker returns with
// partial work discarded (the worker is freed for the next job).
// Coalesced groups narrow the blast radius to the one submission
// being cancelled: a follower detaches from its leader's run; a
// queued leader hands the run to its first follower (promotion — the
// group still gets exactly one engine run); a running leader detaches
// its own record while the run keeps serving the remaining followers.
// It is a no-op on terminal jobs.
func (m *Manager) Cancel(id string) (api.JobStatus, error) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return api.JobStatus{}, ErrNoJob
	}
	// Follower: detach from the leader so the run no longer publishes
	// to this record, then settle it. The run itself is untouched.
	if l := j.leader; l != nil {
		l.mu.Lock()
		for i, f := range l.followers {
			if f == j {
				l.followers = append(l.followers[:i], l.followers[i+1:]...)
				break
			}
		}
		l.mu.Unlock()
		m.mu.Unlock()
		if j.finish(api.StateCancelled, nil, "cancelled") {
			m.cancelled.Add(1)
			m.observeFinish(j, "cancelled", nil)
		}
		return j.Status(), nil
	}
	detached := false
	if m.inflight[j.cacheKey] == j {
		j.mu.Lock()
		switch {
		case j.state == api.StateQueued && len(j.followers) > 0:
			// Promote the first follower: it inherits the pending slot,
			// the remaining followers and the single-flight entry, so
			// the group still runs exactly once. The promoted job keeps
			// its own submission time, so its queue_wait stays honest.
			promoted := j.followers[0]
			rest := j.followers[1:]
			j.followers = nil
			j.mu.Unlock()
			promoted.leader = nil
			if len(rest) > 0 {
				promoted.mu.Lock()
				promoted.followers = append(promoted.followers, rest...)
				promoted.mu.Unlock()
				for _, f := range rest {
					f.leader = promoted
				}
			}
			m.inflight[j.cacheKey] = promoted
			replaced := false
			for i, p := range m.pending {
				if p == j {
					m.pending[i] = promoted
					replaced = true
					break
				}
			}
			if !replaced {
				// A worker already popped j; its tryStart will lose to
				// the finish below and the worker returns empty-handed,
				// so the promoted job needs a fresh slot at the front.
				m.pending = append([]*Job{promoted}, m.pending...)
				m.cond.Signal()
			}
		case j.state == api.StateRunning && len(j.followers) > 0:
			// The run must survive for its followers: detach only this
			// job's record and leave the context alone.
			detached = true
			j.mu.Unlock()
		default:
			// No followers ride this run; drop the single-flight entry
			// so an identical submission starts fresh instead of
			// attaching to a dying run.
			j.mu.Unlock()
			delete(m.inflight, j.cacheKey)
		}
	}
	// Drop it from the pending list so its queue slot frees
	// immediately instead of when a worker eventually pops it
	// (no-op when promotion already replaced the slot).
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	if detached {
		if j.finishNoCancel(api.StateCancelled, nil, "cancelled") {
			m.cancelled.Add(1)
			m.observeFinish(j, "cancelled", nil)
		}
		return j.Status(), nil
	}
	j.mu.Lock()
	queued := j.state == api.StateQueued
	j.mu.Unlock()
	if queued {
		// finish is a no-op if the worker won the race to start it; in
		// that case the context cancellation below still stops it.
		if j.finish(api.StateCancelled, nil, "cancelled before start") {
			m.cancelled.Add(1)
			m.observeFinish(j, "cancelled", nil)
		}
	}
	j.cancel()
	return j.Status(), nil
}

// Subscribe attaches a progress consumer to a job. The channel
// immediately carries a snapshot event (so a consumer always sees at
// least one event), then every state/progress change; it is closed
// after the terminal event. Call the returned function to detach.
func (m *Manager) Subscribe(id string) (<-chan api.Event, func(), error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, nil, ErrNoJob
	}
	ch, unsub := j.subscribe()
	return ch, unsub, nil
}

// Stats reports cumulative counters and current queue occupancy.
func (m *Manager) Stats() api.JobStats {
	st := api.JobStats{
		Submitted:            m.submitted.Load(),
		Completed:            m.completed.Load(),
		Failed:               m.failed.Load(),
		Cancelled:            m.cancelled.Load(),
		CacheHits:            m.cacheHits.Load(),
		EngineRuns:           m.engineRuns.Load(),
		IncrementalRuns:      m.incrRuns.Load(),
		IncrementalFallbacks: m.incrFallbacks.Load(),
		LintRuns:             m.lintRuns.Load(),
		LintIncremental:      m.lintIncr.Load(),
		CachedSets:           m.cache.len(),
		IncrStateBytes:       m.incr.memoryEstimate(),
		ParallelSeedsStolen:  m.seedsStolen.Load(),
		WorkerGrantsCapped:   m.grantsCapped.Load(),
		CoalescedJobs:        m.coalesced.Load(),
		RewarmedResults:      m.rewarmed.Load(),
	}
	m.levelMu.Lock()
	if len(m.runsByLevel) > 0 {
		st.RunsByLevels = make(map[string]int64, len(m.runsByLevel))
		for lv, n := range m.runsByLevel {
			st.RunsByLevels[fmt.Sprintf("%d", lv)] = n
		}
	}
	m.levelMu.Unlock()
	m.mu.Lock()
	st.QueueDepth = len(m.pending)
	for _, j := range m.jobs {
		jst := j.Status()
		switch jst.State {
		case api.StateQueued:
			st.Queued++
		case api.StateRunning:
			st.Running++
		}
		if !jst.State.Terminal() {
			if st.InFlightByKind == nil {
				st.InFlightByKind = make(map[string]int)
			}
			st.InFlightByKind[string(jst.Kind)]++
		}
	}
	m.mu.Unlock()
	return st
}

// Shutdown drains the manager: no new submissions, queued and running
// jobs keep going until done. If ctx expires first, every remaining
// job is cancelled and Shutdown still waits for the workers to
// return before reporting the deadline error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.cond.Broadcast()
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker consumes the pending list until it is empty after Shutdown —
// jobs queued before the shutdown still drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.run(j)
	}
}

// run executes one job end to end.
func (m *Manager) run(j *Job) {
	if j.ctx.Err() != nil {
		// Cancelled while queued (explicitly or by a forced shutdown);
		// any followers go down with the run they were waiting on.
		m.finishGroup(j, api.StateCancelled, nil, "cancelled before start", nil, "cancelled")
		return
	}
	if !j.tryStart() {
		return // lost the race with Cancel, which settled the group
	}
	m.startFollowers(j)
	stages := tanglefind.StageTimings{}
	stages.Add("queue_wait", j.queueWait())
	if j.kind == api.KindLint {
		m.runLint(j, stages)
		return
	}
	ctx, cancel := j.ctx, func() {}
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
	}
	defer cancel()

	opt := j.opt
	opt.Progress = j.setProgress
	grant := m.acquireWorkers(opt.Workers)
	defer m.releaseWorkers(grant)
	opt.Workers = grant
	m.engineRuns.Add(1)
	engineStart := time.Now()
	var res *tanglefind.Result
	var err error
	if j.kind == api.KindFindIncremental {
		// The parent's recorded state is optional: absent (never run,
		// evicted from the bounded state cache, or recorded under
		// different options) the engine degrades to a full run and
		// reports the fallback in the result breakdown.
		var prev *tanglefind.Result
		if p, ok := m.incr.get(incrKey(j.parent, j.opt)); ok {
			prev = p
		}
		m.incrRuns.Add(1)
		res, err = j.finder.FindIncremental(ctx, opt, prev, j.dirty)
		if res != nil && res.Incremental != nil && res.Incremental.FullFallback {
			m.incrFallbacks.Add(1)
		}
	} else {
		res, err = j.finder.Find(ctx, opt)
	}
	stages.Add("engine", time.Since(engineStart))
	mergeStart := time.Now()
	if res != nil && res.Sched != nil {
		m.seedsStolen.Add(res.Sched.SeedsStolen)
	}
	if res != nil {
		// Count by the levels the run actually used: a Levels=4 request
		// over a small netlist may coarsen less than asked (or not at
		// all), and that is what operators need to see.
		used := len(res.Levels)
		if used == 0 {
			used = 1
		}
		m.levelMu.Lock()
		m.runsByLevel[used]++
		m.levelMu.Unlock()
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			m.finishGroup(j, api.StateCancelled, nil, "cancelled", stages, "cancelled")
		default: // deadline exceeded or an engine error
			m.finishGroup(j, api.StateFailed, nil, err.Error(), stages, "failed")
		}
		return
	}
	out := findResult(res)
	mitErr := m.testMitigationErr
	if mitErr == nil {
		mitErr = j.applyMitigation(res, out)
	}
	if mitErr != nil {
		m.finishGroup(j, api.StateFailed, nil, mitErr.Error(), stages, "failed")
		return
	}
	// Only a run that is known good primes the incremental-state
	// cache: a job that fails mitigation after a clean detection pass
	// must leave no state behind, or the next identical submission
	// would be served (or incrementally seeded) by a failed job.
	if res.IncrState != nil {
		m.incr.put(incrKey(j.digest, j.opt), res)
	}
	for name, d := range res.Stages {
		stages.Add("engine_"+name, d)
	}
	// The breakdown must be complete before the cache put: cached
	// JobResult pointers are shared across submissions and immutable.
	stages.Add("merge", time.Since(mergeStart))
	out.Stages = stages
	m.cache.put(j.cacheKey, out)
	m.journalResult(j.cacheKey, out)
	m.finishGroup(j, api.StateDone, out, "", stages, "done")
}

// finishGroup drives the job that owned an engine run — and every
// follower coalesced onto it — to a terminal state. The single-flight
// entry is cleared first, so no submission can attach once the group
// starts finishing; each follower gets a shallow result copy carrying
// its own queue_wait, and counts its own terminal outcome.
func (m *Manager) finishGroup(j *Job, state api.State, out *api.JobResult, errMsg string, stages tanglefind.StageTimings, outcome string) {
	m.mu.Lock()
	if m.inflight[j.cacheKey] == j {
		delete(m.inflight, j.cacheKey)
	}
	m.mu.Unlock()
	j.mu.Lock()
	followers := j.followers
	j.followers = nil
	var start time.Time
	if j.started != nil {
		start = *j.started
	}
	j.mu.Unlock()
	if j.finish(state, out, errMsg) {
		m.countOutcome(outcome)
		m.observeFinish(j, outcome, stages)
	}
	for _, f := range followers {
		wait := time.Since(f.created)
		if !start.IsZero() {
			wait = start.Sub(f.created)
		}
		if wait < 0 {
			wait = 0
		}
		var fres *api.JobResult
		if out != nil {
			cp := *out
			cp.Stages = ownQueueWait(out.Stages, wait)
			fres = &cp
		}
		if f.finish(state, fres, errMsg) {
			m.countOutcome(outcome)
			// Followers observe only their own wait: the engine stages
			// belong to the one run and must not be double-counted in
			// the latency histograms.
			m.observeFinish(f, outcome, tanglefind.StageTimings{"queue_wait": wait})
		}
	}
}

// countOutcome bumps the cumulative counter for one terminal outcome.
func (m *Manager) countOutcome(outcome string) {
	switch outcome {
	case "done":
		m.completed.Add(1)
	case "failed":
		m.failed.Add(1)
	case "cancelled":
		m.cancelled.Add(1)
	}
}

// startFollowers mirrors the leader's queued→running transition onto
// followers attached before the run started (followers attaching after
// it stamp their own start at accept time).
func (m *Manager) startFollowers(j *Job) {
	j.mu.Lock()
	followers := append([]*Job(nil), j.followers...)
	var start time.Time
	if j.started != nil {
		start = *j.started
	}
	j.mu.Unlock()
	for _, f := range followers {
		f.mirrorStart(start)
	}
}

// journalResult appends a finished result to the store journal (a
// no-op on non-durable stores) so a restart rewarms the result cache.
// Journal trouble never fails the job — the result is already
// computed and cached; it just will not survive a restart.
func (m *Manager) journalResult(key string, out *api.JobResult) {
	if m.cfg.Store == nil || !m.cfg.Store.Durable() {
		return
	}
	raw, err := json.Marshal(out)
	if err == nil {
		err = m.cfg.Store.AppendResult(key, raw)
	}
	if err != nil {
		m.journalErrs.Add(1)
		m.log.Warn("result journal append failed", "cache_key", key, "err", err)
	}
}

// observeFinish records a terminal outcome off the job and manager
// locks: the per-kind outcome counter, the stage-latency histograms
// (completed runs only — failures have no meaningful breakdown) and a
// structured lifecycle record correlated by request ID.
func (m *Manager) observeFinish(j *Job, outcome string, stages tanglefind.StageTimings) {
	m.jobsFinished.With(string(j.kind), outcome).Inc()
	if outcome == "done" {
		for stage, d := range stages {
			m.stageSeconds.With(string(j.kind), stage).Observe(d.Seconds())
		}
	}
	m.log.Info("job finished",
		"job_id", j.id, "kind", string(j.kind), "outcome", outcome,
		"request_id", j.reqID, "stages", stages.String())
}

// acquireWorkers grants a starting job its engine-goroutine share:
// min(requested, what the pool budget has free), never below 1 — a
// job always makes progress even when concurrent jobs hold the whole
// budget. requested <= 0 means "all of it" (the engine's own
// GOMAXPROCS default), so unconfigured jobs split the budget instead
// of each assuming an idle machine.
func (m *Manager) acquireWorkers(requested int) int {
	if requested <= 0 || requested > m.cfg.EngineWorkers {
		requested = m.cfg.EngineWorkers
	}
	m.grantMu.Lock()
	defer m.grantMu.Unlock()
	free := m.cfg.EngineWorkers - m.grantsInUse
	grant := requested
	if grant > free {
		grant = free
	}
	if grant < 1 {
		grant = 1
	}
	if grant < requested {
		m.grantsCapped.Add(1)
		m.grantCapC.Inc()
	} else {
		m.grantFullC.Inc()
	}
	m.grantsInUse += grant
	return grant
}

// releaseWorkers returns a finished job's grant to the budget.
func (m *Manager) releaseWorkers(grant int) {
	m.grantMu.Lock()
	m.grantsInUse -= grant
	m.grantMu.Unlock()
}

// runLint executes a lint job: incrementally against the parent's
// retained report when the digest has delta lineage and both the
// parent netlist and its report (under the same rule config) are still
// available, from scratch otherwise. The finished report is retained
// in the lint-state LRU so the next delta in the chain stays
// incremental.
func (m *Manager) runLint(j *Job, stages tanglefind.StageTimings) {
	m.lintRuns.Add(1)
	engineStart := time.Now()
	var rep *tanglefind.LintReport
	if j.parent != "" {
		if prev, ok := m.lints.get(lintKey(j.parent, j.lintCfg)); ok {
			if parentNl, _, err := m.cfg.Store.Get(j.parent); err == nil {
				rep = tanglefind.LintDelta(prev, parentNl, j.lintNl, j.dirty, j.lintCfg)
				if rep.Incremental {
					m.lintIncr.Add(1)
				}
			}
		}
	}
	if rep == nil {
		rep = tanglefind.Lint(j.lintNl, j.lintCfg)
	}
	stages.Add("engine", time.Since(engineStart))
	mergeStart := time.Now()
	m.lints.put(j.cacheKey, rep)
	out := &api.JobResult{Lint: rep}
	stages.Add("merge", time.Since(mergeStart))
	out.Stages = stages
	m.cache.put(j.cacheKey, out)
	m.journalResult(j.cacheKey, out)
	m.finishGroup(j, api.StateDone, out, "", stages, "done")
}

// lintKey is a lint job's compute identity: the digest plus the
// canonical rule configuration, shared by the result cache and the
// lint-state LRU.
func lintKey(digest string, cfg tanglefind.LintConfig) string {
	return "lint|" + digest + "|" + cfg.CacheKey()
}

// applyMitigation attaches the cluster/decompose summary for the
// non-find kinds, operating on the groups the finder detected.
func (j *Job) applyMitigation(res *tanglefind.Result, out *api.JobResult) error {
	if j.kind == api.KindFind || j.kind == api.KindFindIncremental {
		return nil
	}
	groups := make([][]tanglefind.CellID, len(res.GTLs))
	for i := range res.GTLs {
		groups[i] = res.GTLs[i].Members
	}
	nl := j.finder.Netlist()
	switch j.kind {
	case api.KindCluster:
		cl, err := tanglefind.Cluster(nl, groups)
		if err != nil {
			return err
		}
		out.Cluster = &api.ClusterInfo{
			Macros:     len(cl.Groups),
			MacroCells: cl.Clustered.NumCells(),
			MacroNets:  cl.Clustered.NumNets(),
		}
	case api.KindDecompose:
		rs, err := tanglefind.Decompose(nl, groups, j.maxPins)
		if err != nil {
			return err
		}
		out.Decompose = &api.DecomposeInfo{
			CellsAdded: rs.CellsAdded,
			Cells:      rs.Netlist.NumCells(),
			Nets:       rs.Netlist.NumNets(),
			Pins:       rs.Netlist.NumPins(),
		}
	}
	return nil
}

// findResult converts an engine result to its wire form. Member
// slices are shared with the engine result, which is immutable once
// returned.
func findResult(res *tanglefind.Result) *api.JobResult {
	out := &api.JobResult{
		GTLs:        make([]api.GTLInfo, 0, len(res.GTLs)),
		Candidates:  res.Candidates,
		SeedsRun:    len(res.Seeds),
		Rent:        res.Rent,
		EngineMS:    float64(res.Elapsed) / float64(time.Millisecond),
		Levels:      res.Levels,
		Incremental: res.Incremental,
		Sched:       res.Sched,
	}
	for i := range res.GTLs {
		g := &res.GTLs[i]
		out.GTLs = append(out.GTLs, api.GTLInfo{
			Size:    g.Size(),
			Cut:     g.Cut,
			Pins:    g.Pins,
			NGTLS:   g.NGTLS,
			GTLSD:   g.GTLSD,
			Rent:    g.Rent,
			Seed:    g.Seed,
			Members: g.Members,
		})
	}
	return out
}

// cacheKey canonicalizes a request's compute identity. Workers is
// zeroed because it never changes results (the engine is
// deterministic for a fixed RandSeed regardless of parallelism), so
// requests differing only in worker count share a cache line.
func cacheKey(kind api.Kind, digest string, maxPins int, opt tanglefind.Options) string {
	opt.Workers = 0
	opt.Progress = nil
	data, err := json.Marshal(opt)
	if err != nil {
		// Options is a plain struct with tagged scalar fields; this
		// cannot fail, but never let a cache key collapse to "".
		return fmt.Sprintf("%s|%s|%d|unmarshalable", kind, digest, maxPins)
	}
	return fmt.Sprintf("%s|%s|%d|%s", kind, digest, maxPins, data)
}

// incrKey addresses recorded incremental state: one slot per digest
// and result-affecting option set. A find job recorded with
// record_incremental and a later find_incremental job on a derived
// digest land on the same key family, which is exactly the chain the
// state exists for.
func incrKey(digest string, opt tanglefind.Options) string {
	return digest + "|" + opt.IncrementalKey()
}

// ---- Job state machine ----

// tryStart moves queued → running; false means the job was already
// finished (cancelled) and must not run.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != api.StateQueued {
		return false
	}
	j.state = api.StateRunning
	now := time.Now()
	j.started = &now
	j.publishLocked()
	return true
}

// queueWait reports how long the job sat between submission and its
// worker picking it up. Called by the running worker after tryStart.
func (j *Job) queueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started != nil {
		return j.started.Sub(j.created)
	}
	return time.Since(j.created)
}

// setProgress records the latest engine snapshot, fans it out, and
// forwards it to any coalesced followers. A terminal job skips its own
// record (a late callback after cancellation; subscribers are gone)
// but still forwards: a running leader cancelled out of the group
// keeps relaying progress to the followers its run is serving.
func (j *Job) setProgress(p tanglefind.Progress) {
	j.mu.Lock()
	if !j.state.Terminal() {
		cp := p
		j.progress = &cp
		j.publishLocked()
	}
	followers := append([]*Job(nil), j.followers...)
	j.mu.Unlock()
	for _, f := range followers {
		f.setProgress(p)
	}
}

// mirrorStart flips a queued follower to running at the leader's start
// time; a no-op once the follower left the queued state.
func (j *Job) mirrorStart(at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != api.StateQueued {
		return
	}
	j.state = api.StateRunning
	t := at
	j.started = &t
	j.publishLocked()
}

// finish moves the job to a terminal state exactly once, publishes
// the terminal event and closes all subscriber channels. It reports
// whether this call performed the transition (so callers count each
// outcome once).
func (j *Job) finish(state api.State, res *api.JobResult, errMsg string) bool {
	j.cancel()
	return j.finishNoCancel(state, res, errMsg)
}

// finishNoCancel is finish without cancelling the job's context — for
// the one case where a record goes terminal while its engine run must
// stay alive: a running leader cancelled out of a coalesced group.
func (j *Job) finishNoCancel(state api.State, res *api.JobResult, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = res
	if state != api.StateDone {
		j.errMsg = errMsg
	}
	now := time.Now()
	j.finished = &now
	j.publishLocked()
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	return true
}

// Status snapshots the job for the API.
func (j *Job) Status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		ID:         j.id,
		Kind:       j.kind,
		RequestID:  j.reqID,
		Digest:     j.digest,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.errMsg,
		Progress:   j.progress,
		Result:     j.result,
		CreatedAt:  j.created,
		StartedAt:  j.started,
		FinishedAt: j.finished,
	}
	return st
}

// subscribe registers a fan-out channel; see Manager.Subscribe.
func (j *Job) subscribe() (chan api.Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan api.Event, 16)
	ch <- j.eventLocked() // snapshot; fresh buffer, never blocks
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
}

// eventLocked builds the current event; callers hold j.mu. Terminal
// events carry the finished result's stage breakdown so stream
// consumers get the timings without a second status fetch.
func (j *Job) eventLocked() api.Event {
	ev := api.Event{JobID: j.id, State: j.state, Progress: j.progress, Error: j.errMsg}
	if j.state.Terminal() && j.result != nil {
		ev.Stages = j.result.Stages
	}
	return ev
}

// publishLocked fans the current event out to every subscriber. Slow
// consumers lose intermediate progress events (oldest dropped), never
// the terminal event — finish publishes after the last progress and
// nothing else writes afterwards.
func (j *Job) publishLocked() {
	ev := j.eventLocked()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}
