package netlist

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Netlist {
	t.Helper()
	var b Builder
	c0 := b.AddCell("u0")
	c1 := b.AddCell("u1")
	c2 := b.AddCell("u2")
	c3 := b.AddCell("u3")
	b.AddNet("n0", c0, c1)
	b.AddNet("n1", c1, c2, c3)
	b.AddNet("n2", c0, c3)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestBuilderBasics(t *testing.T) {
	nl := buildSmall(t)
	if nl.NumCells() != 4 || nl.NumNets() != 3 || nl.NumPins() != 7 {
		t.Fatalf("counts = %d/%d/%d, want 4/3/7", nl.NumCells(), nl.NumNets(), nl.NumPins())
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := nl.AvgPins(); got != 7.0/4.0 {
		t.Errorf("AvgPins = %v", got)
	}
	if nl.CellName(0) != "u0" || nl.NetName(1) != "n1" {
		t.Error("names lost")
	}
	if nl.CellDegree(1) != 2 || nl.NetSize(1) != 3 {
		t.Error("degree/size wrong")
	}
}

func TestBuilderDedupesPins(t *testing.T) {
	var b Builder
	c0 := b.AddCell("")
	c1 := b.AddCell("")
	b.AddNet("", c0, c1, c0, c0)
	nl := b.MustBuild()
	if nl.NetSize(0) != 2 {
		t.Errorf("net size = %d, want 2 after dedupe", nl.NetSize(0))
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDropDegenerate(t *testing.T) {
	var b Builder
	b.DropDegenerateNets = true
	c0 := b.AddCell("")
	c1 := b.AddCell("")
	b.AddNet("single", c0)
	b.AddNet("dup", c1, c1)
	b.AddNet("good", c0, c1)
	nl := b.MustBuild()
	if nl.NumNets() != 1 {
		t.Errorf("nets = %d, want 1", nl.NumNets())
	}
}

func TestBuilderRejectsUnknownCell(t *testing.T) {
	var b Builder
	b.AddCell("")
	b.AddNet("", 0, 99)
	if _, err := b.Build(); err == nil {
		t.Error("expected error for out-of-range cell")
	}
}

func TestAreas(t *testing.T) {
	var b Builder
	c := b.AddCell("")
	b.AddCell("")
	b.SetCellArea(c, 2.5)
	nl := b.MustBuild()
	if nl.CellArea(c) != 2.5 || nl.CellArea(1) != 1 {
		t.Error("areas wrong")
	}
	if nl.TotalArea() != 3.5 {
		t.Errorf("TotalArea = %v", nl.TotalArea())
	}
	nl2, err := nl.WithAreas([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if nl2.CellArea(c) != 1 || nl.CellArea(c) != 2.5 {
		t.Error("WithAreas should not mutate the original")
	}
	if _, err := nl.WithAreas([]float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestCutAndPins(t *testing.T) {
	nl := buildSmall(t)
	// Group {c0, c1}: n0 internal, n1 cut (c1 in, c2/c3 out), n2 cut.
	members := []CellID{0, 1}
	if got := nl.Cut(members, SliceMembers(members)); got != 2 {
		t.Errorf("Cut = %d, want 2", got)
	}
	if got := nl.PinsIn(members); got != 4 {
		t.Errorf("PinsIn = %d, want 4 (deg 2 + deg 2)", got)
	}
	if got := nl.InternalNets(members, SliceMembers(members)); got != 1 {
		t.Errorf("InternalNets = %d, want 1", got)
	}
	nb := nl.Neighbors(members, SliceMembers(members))
	if len(nb) != 2 {
		t.Errorf("Neighbors = %v, want {2,3}", nb)
	}
}

func TestStats(t *testing.T) {
	nl := buildSmall(t)
	st := nl.Stats()
	if st.MaxNetSize != 3 || st.MaxDegree != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIORoundTrip(t *testing.T) {
	nl := buildSmall(t)
	var buf bytes.Buffer
	if err := nl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != nl.NumCells() || back.NumNets() != nl.NumNets() || back.NumPins() != nl.NumPins() {
		t.Fatal("round trip changed counts")
	}
	for n := 0; n < nl.NumNets(); n++ {
		if !reflect.DeepEqual(back.NetPins(NetID(n)), nl.NetPins(NetID(n))) {
			t.Fatalf("net %d pins differ", n)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus header\ncells 3\n",
		"tfnet 1\nnets 3\n",
		"tfnet 1\ncells 2\nnet n0 0 xyz\n",
		"tfnet 1\ncells 2\nunexpected line\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

// TestIORoundTripProperty: random netlists survive serialization.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b Builder
		n := 2 + r.Intn(30)
		b.AddCells(n)
		nets := 1 + r.Intn(40)
		for i := 0; i < nets; i++ {
			sz := 1 + r.Intn(5)
			pins := make([]CellID, sz)
			for j := range pins {
				pins[j] = CellID(r.Intn(n))
			}
			b.AddNet("", pins...)
		}
		nl := b.MustBuild()
		var buf bytes.Buffer
		if err := nl.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumCells() != nl.NumCells() || back.NumPins() != nl.NumPins() {
			return false
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCliqueExpand(t *testing.T) {
	nl := buildSmall(t)
	adj := nl.CliqueExpand(0)
	// c1 neighbors: c0 (via n0), c2 and c3 (via n1).
	nb := adj.NeighborsOf(1)
	if len(nb) != 3 {
		t.Fatalf("c1 neighbors = %v", nb)
	}
	// c0-c3 edge: only via n2 (2-pin, weight 1). c1-c2 via n1: 1/2.
	found := false
	for i, v := range adj.NeighborsOf(1) {
		if v == 2 {
			found = true
			if w := adj.WeightsOf(1)[i]; w != 0.5 {
				t.Errorf("c1-c2 weight = %v, want 0.5", w)
			}
		}
	}
	if !found {
		t.Error("c1-c2 edge missing")
	}
	if adj.Degree(0) != 2 {
		t.Errorf("c0 degree = %d, want 2", adj.Degree(0))
	}
}

func TestCliqueExpandSkipsBigNets(t *testing.T) {
	var b Builder
	b.AddCells(30)
	pins := make([]CellID, 30)
	for i := range pins {
		pins[i] = CellID(i)
	}
	b.AddNet("huge", pins...)
	b.AddNet("small", 0, 1)
	nl := b.MustBuild()
	adj := nl.CliqueExpand(10)
	if adj.Degree(0) != 1 {
		t.Errorf("degree = %d, want 1 (huge net skipped)", adj.Degree(0))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	// Swap a pin on the net side only: cell 2 takes cell 1's slot on
	// net n0, breaking the incidence symmetry.
	nl := buildSmall(t)
	nl.netPinCell = append([]CellID(nil), nl.netPinCell...)
	for i := nl.netPinOff[0]; i < nl.netPinOff[1]; i++ {
		if nl.netPinCell[i] == 1 {
			nl.netPinCell[i] = 2
		}
	}
	if err := nl.Validate(); err == nil {
		t.Error("expected validation error for asymmetric pin")
	}
}

func TestValidateCatchesBadOffsets(t *testing.T) {
	nl := buildSmall(t)
	nl.netPinOff = append([]int32(nil), nl.netPinOff...)
	nl.netPinOff[1], nl.netPinOff[2] = nl.netPinOff[2], nl.netPinOff[1]
	if err := nl.Validate(); err == nil {
		t.Error("expected validation error for decreasing offsets")
	}
}

func TestValidateCatchesDuplicatePins(t *testing.T) {
	nl := buildSmall(t)
	// Duplicate the first pin of net n1 in place: the run is no longer
	// strictly ascending.
	nl.netPinCell = append([]CellID(nil), nl.netPinCell...)
	lo := nl.netPinOff[1]
	nl.netPinCell[lo+1] = nl.netPinCell[lo]
	if err := nl.Validate(); err == nil {
		t.Error("expected validation error for duplicate incidence")
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	nl := buildSmall(t)
	nl.netPinCell = append([]CellID(nil), nl.netPinCell...)
	nl.netPinCell[0] = CellID(nl.NumCells())
	if err := nl.Validate(); err == nil {
		t.Error("expected validation error for out-of-range cell id")
	}
}

func TestComponents(t *testing.T) {
	var b Builder
	b.AddCells(7)
	b.AddNet("", 0, 1)
	b.AddNet("", 1, 2)
	b.AddNet("", 3, 4, 5)
	// cell 6 isolated
	nl := b.MustBuild()
	comps := nl.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d/%d/%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	// Largest-first with id tie-break: {0,1,2} before {3,4,5}.
	if comps[0][0] != 0 || comps[1][0] != 3 || comps[2][0] != 6 {
		t.Errorf("component order wrong: %v", comps)
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 7 {
		t.Errorf("components cover %d cells, want 7", total)
	}
}

func TestComponentsEmpty(t *testing.T) {
	var b Builder
	nl := b.MustBuild()
	if got := nl.Components(); got != nil {
		t.Errorf("empty netlist components = %v", got)
	}
}

// TestCliqueExpandHubCell: a star cell on thousands of 2-pin nets has
// a raw pre-merge degree far beyond any net-size bound; the expansion
// must stay fast (heapsort path) and correct.
func TestCliqueExpandHubCell(t *testing.T) {
	var b Builder
	const leaves = 3000
	hub := b.AddCell("hub")
	for i := 0; i < leaves; i++ {
		leaf := b.AddCell("")
		b.AddNet("", hub, leaf)
		b.AddNet("", hub, leaf) // parallel net: weights must merge to 2
	}
	nl := b.MustBuild()
	adj := nl.CliqueExpand(10)
	if adj.Degree(hub) != leaves {
		t.Fatalf("hub degree = %d, want %d", adj.Degree(hub), leaves)
	}
	nb, ws := adj.NeighborsOf(hub), adj.WeightsOf(hub)
	for i := range nb {
		if i > 0 && nb[i-1] >= nb[i] {
			t.Fatalf("hub neighbors not sorted at %d", i)
		}
		if ws[i] != 2 {
			t.Fatalf("hub weight[%d] = %v, want 2 (two parallel 2-pin nets)", i, ws[i])
		}
	}
}
