//go:build !race

package netlist

// raceEnabled reports whether the race detector instruments this test
// binary (it disables sync.Pool caching and skews allocation counts).
const raceEnabled = false
