package netlist

// Membership abstracts "is cell c in the group?", so subset queries work
// with bitsets, maps or slices without copying.
type Membership interface {
	Has(c int) bool
}

// SliceMembers adapts a []CellID to a Membership (linear scan; use only
// for small groups or tests).
type SliceMembers []CellID

// Has reports whether c is in the slice.
func (s SliceMembers) Has(c int) bool {
	for _, x := range s {
		if int(x) == c {
			return true
		}
	}
	return false
}

// subsetScratch is the reusable epoch-stamped marker state behind Cut,
// InternalNets and Neighbors. A marker is "set" when its entry equals
// the current epoch, so clearing between queries is one integer
// increment instead of a map allocation — Phase III set algebra calls
// these in a loop and must not allocate per call. Instances live in
// the netlist's sync.Pool, which keeps the queries safe for concurrent
// use without sharing marker arrays.
type subsetScratch struct {
	netMark  []uint32
	cellMark []uint32
	epoch    uint32
}

// next starts a new query epoch, re-zeroing the arrays on the (once
// per 2^32 queries) wraparound so stale stamps can never collide.
func (s *subsetScratch) next() {
	s.epoch++
	if s.epoch == 0 {
		clear(s.netMark)
		clear(s.cellMark)
		s.epoch = 1
	}
}

func (s *subsetScratch) markNet(n NetID) bool {
	if s.netMark[n] == s.epoch {
		return false
	}
	s.netMark[n] = s.epoch
	return true
}

func (s *subsetScratch) markCell(c CellID) bool {
	if s.cellMark[c] == s.epoch {
		return false
	}
	s.cellMark[c] = s.epoch
	return true
}

// acquireScratch borrows an epoch scratch sized to this netlist.
func (nl *Netlist) acquireScratch() *subsetScratch {
	if nl.scratch == nil {
		// Zero-value netlist: nothing to mark, but keep the methods
		// total.
		return &subsetScratch{}
	}
	return nl.scratch.Get().(*subsetScratch)
}

func (nl *Netlist) releaseScratch(s *subsetScratch) {
	if nl.scratch != nil {
		nl.scratch.Put(s)
	}
}

// Cut returns T(C): the number of nets with at least one pin inside the
// group and at least one outside. members enumerates the group's cells;
// in is the membership test (must agree with members).
//
// This is the one-shot O(Σ_{c∈C} deg(c) · |e|) reference used by tests
// and by Phase III set algebra; the finder's inner loop uses the
// incremental tracker in package group instead.
func (nl *Netlist) Cut(members []CellID, in Membership) int {
	s := nl.acquireScratch()
	defer nl.releaseScratch(s)
	s.next()
	cut := 0
	for _, c := range members {
		for _, n := range nl.CellPins(c) {
			if !s.markNet(n) {
				continue
			}
			for _, other := range nl.NetPins(n) {
				if !in.Has(int(other)) {
					cut++
					break
				}
			}
		}
	}
	return cut
}

// PinsIn returns the total pin count of the group's cells: Σ_{c∈C} deg(c).
// Divided by |C| this is the paper's A_C.
func (nl *Netlist) PinsIn(members []CellID) int {
	pins := 0
	for _, c := range members {
		pins += nl.CellDegree(c)
	}
	return pins
}

// InternalNets returns the number of nets entirely inside the group.
func (nl *Netlist) InternalNets(members []CellID, in Membership) int {
	s := nl.acquireScratch()
	defer nl.releaseScratch(s)
	s.next()
	internal := 0
	for _, c := range members {
		for _, n := range nl.CellPins(c) {
			if !s.markNet(n) {
				continue
			}
			inside := true
			for _, other := range nl.NetPins(n) {
				if !in.Has(int(other)) {
					inside = false
					break
				}
			}
			if inside {
				internal++
			}
		}
	}
	return internal
}

// Neighbors returns the distinct cells outside the group that share a
// net with it (the group's frontier). The returned slice is the only
// allocation the query makes.
func (nl *Netlist) Neighbors(members []CellID, in Membership) []CellID {
	s := nl.acquireScratch()
	defer nl.releaseScratch(s)
	s.next()
	var out []CellID
	for _, c := range members {
		for _, n := range nl.CellPins(c) {
			if !s.markNet(n) {
				continue
			}
			for _, other := range nl.NetPins(n) {
				if !in.Has(int(other)) && s.markCell(other) {
					out = append(out, other)
				}
			}
		}
	}
	return out
}
