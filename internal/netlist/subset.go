package netlist

// Membership abstracts "is cell c in the group?", so subset queries work
// with bitsets, maps or slices without copying.
type Membership interface {
	Has(c int) bool
}

// SliceMembers adapts a []CellID to a Membership (linear scan; use only
// for small groups or tests).
type SliceMembers []CellID

// Has reports whether c is in the slice.
func (s SliceMembers) Has(c int) bool {
	for _, x := range s {
		if int(x) == c {
			return true
		}
	}
	return false
}

// Cut returns T(C): the number of nets with at least one pin inside the
// group and at least one outside. members enumerates the group's cells;
// in is the membership test (must agree with members).
//
// This is the one-shot O(Σ_{c∈C} deg(c) · |e|) reference used by tests
// and by Phase III set algebra; the finder's inner loop uses the
// incremental tracker in package group instead.
func (nl *Netlist) Cut(members []CellID, in Membership) int {
	seen := make(map[NetID]bool)
	cut := 0
	for _, c := range members {
		for _, n := range nl.cellPins[c] {
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, other := range nl.netPins[n] {
				if !in.Has(int(other)) {
					cut++
					break
				}
			}
		}
	}
	return cut
}

// PinsIn returns the total pin count of the group's cells: Σ_{c∈C} deg(c).
// Divided by |C| this is the paper's A_C.
func (nl *Netlist) PinsIn(members []CellID) int {
	pins := 0
	for _, c := range members {
		pins += len(nl.cellPins[c])
	}
	return pins
}

// InternalNets returns the number of nets entirely inside the group.
func (nl *Netlist) InternalNets(members []CellID, in Membership) int {
	seen := make(map[NetID]bool)
	internal := 0
	for _, c := range members {
		for _, n := range nl.cellPins[c] {
			if seen[n] {
				continue
			}
			seen[n] = true
			inside := true
			for _, other := range nl.netPins[n] {
				if !in.Has(int(other)) {
					inside = false
					break
				}
			}
			if inside {
				internal++
			}
		}
	}
	return internal
}

// Neighbors returns the distinct cells outside the group that share a
// net with it (the group's frontier).
func (nl *Netlist) Neighbors(members []CellID, in Membership) []CellID {
	seenNet := make(map[NetID]bool)
	seenCell := make(map[CellID]bool)
	var out []CellID
	for _, c := range members {
		for _, n := range nl.cellPins[c] {
			if seenNet[n] {
				continue
			}
			seenNet[n] = true
			for _, other := range nl.netPins[n] {
				if !in.Has(int(other)) && !seenCell[other] {
					seenCell[other] = true
					out = append(out, other)
				}
			}
		}
	}
	return out
}
