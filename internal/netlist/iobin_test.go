package netlist

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func buildNamed(t *testing.T) *Netlist {
	t.Helper()
	var b Builder
	u0 := b.AddCell("u0")
	u1 := b.AddCell("alu/add17")
	u2 := b.AddCell("")
	u3 := b.AddCell("rom_q3")
	b.SetCellArea(u1, 2.25)
	b.AddNet("clk", u0, u1, u2, u3)
	b.AddNet("", u1, u2)
	b.AddNet("q", u0, u3)
	return b.MustBuild()
}

// sameHypergraph compares structure plus the observable names/areas.
func sameHypergraph(t *testing.T, got, want *Netlist) {
	t.Helper()
	if got.NumCells() != want.NumCells() || got.NumNets() != want.NumNets() || got.NumPins() != want.NumPins() {
		t.Fatalf("counts %d/%d/%d, want %d/%d/%d",
			got.NumCells(), got.NumNets(), got.NumPins(),
			want.NumCells(), want.NumNets(), want.NumPins())
	}
	for n := 0; n < want.NumNets(); n++ {
		if !reflect.DeepEqual(got.NetPins(NetID(n)), want.NetPins(NetID(n))) {
			t.Fatalf("net %d pins differ: %v vs %v", n, got.NetPins(NetID(n)), want.NetPins(NetID(n)))
		}
	}
	for c := 0; c < want.NumCells(); c++ {
		if !reflect.DeepEqual(got.CellPins(CellID(c)), want.CellPins(CellID(c))) {
			t.Fatalf("cell %d pins differ", c)
		}
	}
}

func TestBinaryRoundTripFullFidelity(t *testing.T) {
	nl := buildNamed(t)
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, back, nl)
	// Unlike .tfnet, the binary format carries cell names and areas.
	for c := 0; c < nl.NumCells(); c++ {
		if back.CellName(CellID(c)) != nl.CellName(CellID(c)) {
			t.Errorf("cell %d name %q, want %q", c, back.CellName(CellID(c)), nl.CellName(CellID(c)))
		}
		if back.CellArea(CellID(c)) != nl.CellArea(CellID(c)) {
			t.Errorf("cell %d area %v, want %v", c, back.CellArea(CellID(c)), nl.CellArea(CellID(c)))
		}
	}
	for n := 0; n < nl.NumNets(); n++ {
		if back.NetName(NetID(n)) != nl.NetName(NetID(n)) {
			t.Errorf("net %d name %q, want %q", n, back.NetName(NetID(n)), nl.NetName(NetID(n)))
		}
	}
}

// TestTextBinaryCrossFormat is the .tfnet ↔ .tfb golden: the same
// netlist written through either format must read back to the same
// hypergraph, and re-serializing the binary-loaded netlist as text
// must be byte-identical to the original text form.
func TestTextBinaryCrossFormat(t *testing.T) {
	nl := buildNamed(t)
	var text bytes.Buffer
	if err := nl.Write(&text); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := nl.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromText, err := Read(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, fromBin, fromText)
	var textAgain bytes.Buffer
	if err := fromBin.Write(&textAgain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(textAgain.Bytes(), text.Bytes()) {
		t.Errorf("binary-loaded netlist re-serialized differently:\n%q\nvs\n%q", textAgain.Bytes(), text.Bytes())
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		var b Builder
		n := 1 + r.Intn(50)
		b.AddCells(n)
		nets := r.Intn(80)
		for i := 0; i < nets; i++ {
			sz := 1 + r.Intn(6)
			pins := make([]CellID, sz)
			for j := range pins {
				pins[j] = CellID(r.Intn(n))
			}
			b.AddNet("", pins...)
		}
		nl := b.MustBuild()
		var buf bytes.Buffer
		if err := nl.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameHypergraph(t, back, nl)
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	var b Builder
	nl := b.MustBuild()
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != 0 || back.NumNets() != 0 || back.NumPins() != 0 {
		t.Fatalf("empty round trip changed counts: %d/%d/%d", back.NumCells(), back.NumNets(), back.NumPins())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	nl := buildNamed(t)
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), base[4:]...),
		"bad version": append(append([]byte{}, base[:4]...), append([]byte{9, 0, 0, 0}, base[8:]...)...),
		"truncated":   base[:len(base)/2],
	}
	for name, input := range cases {
		if _, err := ReadBinary(bytes.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadWriteFileAutodetect(t *testing.T) {
	nl := buildNamed(t)
	dir := t.TempDir()
	for _, name := range []string{"a.tfnet", "a.tfb"} {
		path := filepath.Join(dir, name)
		if err := nl.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameHypergraph(t, back, nl)
	}
	// The two files must actually be in different formats.
	tfb, err := os.ReadFile(filepath.Join(dir, "a.tfb"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(tfb, tfbMagic[:]) {
		t.Error("a.tfb is not binary")
	}
	text, err := os.ReadFile(filepath.Join(dir, "a.tfnet"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(text, []byte("tfnet 1")) {
		t.Error("a.tfnet is not text")
	}
}

func TestBinaryLyingHeaderDoesNotOverAllocate(t *testing.T) {
	// A 28-byte header claiming 2^31-1 pins followed by nothing must
	// fail on the short read without materializing giant arrays.
	var buf bytes.Buffer
	buf.Write(tfbMagic[:])
	buf.Write([]byte{1, 0, 0, 0}) // version
	buf.Write([]byte{0, 0, 0, 0}) // flags
	buf.Write([]byte{10, 0, 0, 0})
	buf.Write([]byte{5, 0, 0, 0})
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // numPins
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestBinaryRejectsImplausibleCellCount(t *testing.T) {
	// Header claiming 2^31-1 cells with zero pins is a crafted
	// allocation bomb (fromNetCSR would build two O(numCells) arrays
	// from 32 input bytes); the reader must reject it up front.
	var buf bytes.Buffer
	buf.Write(tfbMagic[:])
	buf.Write([]byte{1, 0, 0, 0})             // version
	buf.Write([]byte{0, 0, 0, 0})             // flags
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // numCells = MaxInt32
	buf.Write([]byte{0, 0, 0, 0})             // numNets = 0
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // numPins = 0
	buf.Write([]byte{0, 0, 0, 0})             // offsets[0] = 0
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected implausible-header error")
	}
}
