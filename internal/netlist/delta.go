package netlist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"tanglefind/internal/ds"
)

// Delta is an ECO-style edit batch against a parent netlist: append
// cells, disconnect (remove) cells, replace net pin sets, append nets
// and remove nets. Net splits and merges are composed from these
// primitives with the SplitNet/MergeNets helpers.
//
// Id stability is the contract that makes incremental detection
// possible: applying a delta never renumbers a surviving cell or net.
// A removed cell or net stays in the id space as a tombstone — an
// empty pin run that keeps its name and area, so a later delta can
// reconnect it — with one exception: a removed *suffix* of the id
// space genuinely shrinks the arrays. The exception is what lets
// Inverse of an append be an exact undo (apply → inverse-apply
// round-trips the CSR bit-identically, see Inverse).
//
// New cells are addressable by the edits of the same delta: AddNets
// and SetNets may pin ids in [NumCells, NumCells+len(AddCells)).
// Removing a cell implicitly drops its pin from every net; a delta may
// not remove a cell or net it also adds or edits.
type Delta struct {
	// AddCells appends new cells; the i-th gets id NumCells+i.
	AddCells []NewCell `json:"add_cells,omitempty"`
	// RemoveCells disconnects cells: their pins are dropped from every
	// incident net. Duplicates are tolerated.
	RemoveCells []CellID `json:"remove_cells,omitempty"`
	// SetNets replaces the full pin set of existing nets (reconnect).
	SetNets []NetEdit `json:"set_nets,omitempty"`
	// AddNets appends new nets; the i-th gets id NumNets+i.
	AddNets []NewNet `json:"add_nets,omitempty"`
	// RemoveNets empties existing nets. Duplicates are tolerated.
	RemoveNets []NetID `json:"remove_nets,omitempty"`
}

// NewCell describes one appended cell.
type NewCell struct {
	Name string `json:"name,omitempty"`
	// Area is the placement area; <= 0 means unit area.
	Area float64 `json:"area,omitempty"`
}

// NewNet describes one appended net. Drivers (optional, only valid
// against a directed parent) lists which of Cells drive the net; an
// absent list appends an undriven net.
type NewNet struct {
	Name    string   `json:"name,omitempty"`
	Cells   []CellID `json:"cells"`
	Drivers []CellID `json:"drivers,omitempty"`
}

// NetEdit replaces the pin set of one existing net. Duplicate cells
// are collapsed; the stored run is sorted ascending like every other.
// Against a directed parent the edit is authoritative for direction
// too: Drivers lists the resulting driver pins (subset of Cells), and
// an absent list leaves the net undriven.
type NetEdit struct {
	Net     NetID    `json:"net"`
	Cells   []CellID `json:"cells"`
	Drivers []CellID `json:"drivers,omitempty"`
}

// Empty reports whether the delta contains no operations.
func (d *Delta) Empty() bool {
	return len(d.AddCells) == 0 && len(d.RemoveCells) == 0 &&
		len(d.SetNets) == 0 && len(d.AddNets) == 0 && len(d.RemoveNets) == 0
}

// ParseDelta decodes a JSON delta document, rejecting unknown fields.
func ParseDelta(data []byte) (*Delta, error) {
	d := &Delta{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(d); err != nil {
		return nil, fmt.Errorf("netlist: parse delta: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("netlist: parse delta: trailing data after JSON document")
	}
	return d, nil
}

// SplitNet appends the operations that move the given cells off net n
// onto a fresh net (returned id is in the post-apply id space). Every
// moved cell must currently pin n.
func (d *Delta) SplitNet(nl *Netlist, n NetID, moved []CellID, newName string) (NetID, error) {
	if n < 0 || int(n) >= nl.NumNets() {
		return 0, fmt.Errorf("netlist: split: net %d out of range", n)
	}
	cur := nl.NetPins(n)
	onNet := make(map[CellID]bool, len(cur))
	for _, c := range cur {
		onNet[c] = true
	}
	movedSet := make(map[CellID]bool, len(moved))
	for _, c := range moved {
		if !onNet[c] {
			return 0, fmt.Errorf("netlist: split: cell %d not on net %d", c, n)
		}
		movedSet[c] = true
	}
	keep := make([]CellID, 0, len(cur)-len(movedSet))
	for _, c := range cur {
		if !movedSet[c] {
			keep = append(keep, c)
		}
	}
	d.SetNets = append(d.SetNets, NetEdit{Net: n, Cells: keep})
	id := NetID(nl.NumNets() + len(d.AddNets))
	d.AddNets = append(d.AddNets, NewNet{Name: newName, Cells: append([]CellID(nil), moved...)})
	return id, nil
}

// MergeNets appends the operations that fold net `from` into net
// `into`: into's pin set becomes the union, from is removed.
func (d *Delta) MergeNets(nl *Netlist, into, from NetID) error {
	if into < 0 || int(into) >= nl.NumNets() || from < 0 || int(from) >= nl.NumNets() {
		return fmt.Errorf("netlist: merge: net out of range (%d, %d)", into, from)
	}
	if into == from {
		return fmt.Errorf("netlist: merge: net %d with itself", into)
	}
	union := append([]CellID(nil), nl.NetPins(into)...)
	union = append(union, nl.NetPins(from)...)
	d.SetNets = append(d.SetNets, NetEdit{Net: into, Cells: union})
	d.RemoveNets = append(d.RemoveNets, from)
	return nil
}

// DeltaEffect summarizes what Apply changed, in the child id space.
type DeltaEffect struct {
	// Dirty is the sorted set of cells whose connectivity changed:
	// removed and added cells plus every cell on a touched net (old or
	// new pin set). This is the seed set incremental detection guards
	// reuse against.
	Dirty []CellID
	// TouchedNets counts edited, removed and added nets.
	TouchedNets  int
	CellsAdded   int
	CellsRemoved int
	NetsAdded    int
	NetsRemoved  int
	// CellsTruncated/NetsTruncated count removed trailing entries that
	// genuinely left the id space instead of tombstoning.
	CellsTruncated int
	NetsTruncated  int
}

// deltaPlan is the validated, canonicalized form of a delta against
// one parent netlist, shared by Apply and Inverse so the two agree on
// tombstoning and truncation.
type deltaPlan struct {
	nCells, nNets   int
	directed        bool       // parent carries a driver annotation
	removedCell     *ds.Bitset // parent-id space
	removedNet      *ds.Bitset
	nRemovedCells   int
	nRemovedNets    int
	edited          map[NetID][]CellID // canonical (sorted, deduped) replacement runs
	editedDrv       map[NetID][]CellID // canonical driver runs for edited nets
	touchedNet      *ds.Bitset         // edited ∪ removed ∪ incident-to-removed-cell
	newCellsRaw     int                // nCells + adds, before truncation
	newNetsRaw      int
	truncCellStart  int // first truncated cell id (== newCellsRaw when none)
	truncNetStart   int
	addNetCanonical [][]CellID // canonical pin runs for AddNets
	addNetDrv       [][]CellID // canonical driver runs for AddNets
}

// plan validates d against nl and computes the canonical edit plan.
func (d *Delta) plan(nl *Netlist) (*deltaPlan, error) {
	p := &deltaPlan{
		nCells:      nl.NumCells(),
		nNets:       nl.NumNets(),
		directed:    nl.Directed(),
		removedCell: ds.NewBitset(nl.NumCells()),
		removedNet:  ds.NewBitset(nl.NumNets()),
		edited:      make(map[NetID][]CellID, len(d.SetNets)),
		editedDrv:   make(map[NetID][]CellID, len(d.SetNets)),
		touchedNet:  ds.NewBitset(nl.NumNets()),
	}
	cellSpace := p.nCells + len(d.AddCells)
	for i, c := range d.AddCells {
		if c.Area < 0 || math.IsNaN(c.Area) || math.IsInf(c.Area, 0) {
			return nil, fmt.Errorf("netlist: delta: added cell %d has invalid area %g", i, c.Area)
		}
	}
	for _, c := range d.RemoveCells {
		if c < 0 || int(c) >= p.nCells {
			return nil, fmt.Errorf("netlist: delta: remove of unknown cell %d", c)
		}
		if p.removedCell.Add(int(c)) {
			p.nRemovedCells++
		}
	}
	for _, n := range d.RemoveNets {
		if n < 0 || int(n) >= p.nNets {
			return nil, fmt.Errorf("netlist: delta: remove of unknown net %d", n)
		}
		if p.removedNet.Add(int(n)) {
			p.nRemovedNets++
		}
		p.touchedNet.Add(int(n))
	}
	checkPins := func(what string, cells []CellID) ([]CellID, error) {
		out := make([]CellID, len(cells))
		copy(out, cells)
		out = dedupe(out)
		for _, c := range out {
			if c < 0 || int(c) >= cellSpace {
				return nil, fmt.Errorf("netlist: delta: %s pins unknown cell %d", what, c)
			}
			if int(c) < p.nCells && p.removedCell.Has(int(c)) {
				return nil, fmt.Errorf("netlist: delta: %s pins cell %d removed by the same delta", what, c)
			}
		}
		return out, nil
	}
	// checkDrivers canonicalizes an edit's driver list: deduped, a
	// subset of the net's canonical pin run, and only meaningful
	// against a directed parent (a delta cannot introduce direction
	// information — that would make apply → inverse-apply lossy).
	checkDrivers := func(what string, drivers, run []CellID) ([]CellID, error) {
		if len(drivers) == 0 {
			return nil, nil
		}
		if !p.directed {
			return nil, fmt.Errorf("netlist: delta: %s specifies drivers but the parent netlist is undirected", what)
		}
		drv := make([]CellID, len(drivers))
		copy(drv, drivers)
		drv = dedupe(drv)
		if err := checkSubset(drv, run); err != nil {
			return nil, fmt.Errorf("netlist: delta: %s: %w", what, err)
		}
		return drv, nil
	}
	for _, e := range d.SetNets {
		if e.Net < 0 || int(e.Net) >= p.nNets {
			return nil, fmt.Errorf("netlist: delta: edit of unknown net %d (new nets take their pins from add_nets)", e.Net)
		}
		if p.removedNet.Has(int(e.Net)) {
			return nil, fmt.Errorf("netlist: delta: net %d both edited and removed", e.Net)
		}
		if _, dup := p.edited[e.Net]; dup {
			return nil, fmt.Errorf("netlist: delta: net %d edited twice", e.Net)
		}
		what := fmt.Sprintf("edit of net %d", e.Net)
		run, err := checkPins(what, e.Cells)
		if err != nil {
			return nil, err
		}
		drv, err := checkDrivers(what, e.Drivers, run)
		if err != nil {
			return nil, err
		}
		p.edited[e.Net] = run
		p.editedDrv[e.Net] = drv
		p.touchedNet.Add(int(e.Net))
	}
	p.addNetCanonical = make([][]CellID, len(d.AddNets))
	p.addNetDrv = make([][]CellID, len(d.AddNets))
	for i, an := range d.AddNets {
		what := fmt.Sprintf("added net %d", i)
		run, err := checkPins(what, an.Cells)
		if err != nil {
			return nil, err
		}
		drv, err := checkDrivers(what, an.Drivers, run)
		if err != nil {
			return nil, err
		}
		p.addNetCanonical[i] = run
		p.addNetDrv[i] = drv
	}
	// Nets incident to removed cells are implicitly edited.
	if p.nRemovedCells > 0 {
		p.removedCell.ForEach(func(c int) {
			for _, n := range nl.CellPins(CellID(c)) {
				p.touchedNet.Add(int(n))
			}
		})
	}
	// Suffix truncation: a removed tail leaves the id space for real,
	// but appends occupy the tail first, so adds disable truncation.
	p.newCellsRaw = p.nCells + len(d.AddCells)
	p.truncCellStart = p.newCellsRaw
	if len(d.AddCells) == 0 {
		for p.truncCellStart > 0 && p.removedCell.Has(p.truncCellStart-1) {
			p.truncCellStart--
		}
	}
	p.newNetsRaw = p.nNets + len(d.AddNets)
	p.truncNetStart = p.newNetsRaw
	if len(d.AddNets) == 0 {
		for p.truncNetStart > 0 && p.removedNet.Has(p.truncNetStart-1) {
			p.truncNetStart--
		}
	}
	return p, nil
}

// Validate checks the delta against its parent netlist without
// applying it.
func (d *Delta) Validate(nl *Netlist) error {
	_, err := d.plan(nl)
	return err
}

// Apply patches nl, returning the child netlist and the effect
// summary. The parent is never mutated — child and parent share no
// mutable state, so both stay usable concurrently.
//
// Only touched pin runs are rebuilt (sorted, deduped, validated);
// untouched runs are copied verbatim into the child's CSR arrays, and
// the cell-side direction is re-derived with the same counting pass
// the .tfb loader uses.
func (d *Delta) Apply(nl *Netlist) (*Netlist, *DeltaEffect, error) {
	p, err := d.plan(nl)
	if err != nil {
		return nil, nil, err
	}
	newNets := p.truncNetStart
	newCells := p.truncCellStart

	// run returns the child pin set of one surviving net.
	run := func(n int) []CellID {
		switch {
		case n >= p.nNets:
			return p.addNetCanonical[n-p.nNets]
		case p.removedNet.Has(n):
			return nil
		default:
			if r, ok := p.edited[NetID(n)]; ok {
				return r
			}
			old := nl.NetPins(NetID(n))
			if !p.touchedNet.Has(n) {
				return old
			}
			// Incident to a removed cell: drop the removed pins, keep
			// the (already ascending) remainder.
			kept := make([]CellID, 0, len(old))
			for _, c := range old {
				if !p.removedCell.Has(int(c)) {
					kept = append(kept, c)
				}
			}
			return kept
		}
	}

	totalPins := 0
	for n := 0; n < newNets; n++ {
		totalPins += len(run(n))
	}
	if totalPins > math.MaxInt32 {
		return nil, nil, fmt.Errorf("netlist: delta: %d pins overflow the int32 CSR offset space", totalPins)
	}
	netPinOff := make([]int32, newNets+1)
	netPinCell := make([]CellID, totalPins)
	at := int32(0)
	for n := 0; n < newNets; n++ {
		netPinOff[n] = at
		at += int32(copy(netPinCell[at:], run(n)))
	}
	netPinOff[newNets] = at

	// Names and areas: tombstones keep theirs (a later delta can
	// reconnect the cell); truncated entries drop for real.
	netNames := extendNames(nl.netNames, p.nNets, len(d.AddNets), func(i int) string { return d.AddNets[i].Name })
	if len(netNames) > newNets {
		netNames = netNames[:newNets]
	}
	cellNames := extendNames(nl.cellNames, p.nCells, len(d.AddCells), func(i int) string { return d.AddCells[i].Name })
	if len(cellNames) > newCells {
		cellNames = cellNames[:newCells]
	}
	cellArea := extendAreas(nl.cellArea, p.nCells, d.AddCells)
	if cellArea != nil && len(cellArea) > newCells {
		cellArea = cellArea[:newCells]
	}

	child := fromNetCSR(newCells, netPinOff, netPinCell, netNames, cellNames, cellArea)

	// Direction: a directed parent yields a directed child (and an
	// undirected parent cannot gain drivers — plan rejects that).
	// Untouched nets copy their driver runs verbatim; edited and added
	// nets take the delta's (canonical) driver lists; nets incident to
	// a removed cell drop the removed drivers.
	if p.directed {
		drvRun := func(n int) []CellID {
			switch {
			case n >= p.nNets:
				return p.addNetDrv[n-p.nNets]
			case p.removedNet.Has(n):
				return nil
			default:
				if _, ok := p.edited[NetID(n)]; ok {
					return p.editedDrv[NetID(n)]
				}
				old := nl.NetDrivers(NetID(n))
				if !p.touchedNet.Has(n) {
					return old
				}
				kept := make([]CellID, 0, len(old))
				for _, c := range old {
					if !p.removedCell.Has(int(c)) {
						kept = append(kept, c)
					}
				}
				return kept
			}
		}
		totalDrv := 0
		for n := 0; n < newNets; n++ {
			totalDrv += len(drvRun(n))
		}
		drvOff := make([]int32, newNets+1)
		drvCell := make([]CellID, totalDrv)
		dat := int32(0)
		for n := 0; n < newNets; n++ {
			drvOff[n] = dat
			dat += int32(copy(drvCell[dat:], drvRun(n)))
		}
		drvOff[newNets] = dat
		child.attachDrivers(drvOff, drvCell)
	}

	// Dirty set: removed and added cells plus every cell on a touched
	// net, before or after the edit — all clamped to the child space.
	dirty := ds.NewBitset(newCells)
	mark := func(c CellID) {
		if int(c) < newCells {
			dirty.Add(int(c))
		}
	}
	p.removedCell.ForEach(func(c int) { mark(CellID(c)) })
	for i := range d.AddCells {
		mark(CellID(p.nCells + i))
	}
	touched := 0
	p.touchedNet.ForEach(func(n int) {
		touched++
		for _, c := range nl.NetPins(NetID(n)) {
			mark(c)
		}
		if n < newNets {
			for _, c := range child.NetPins(NetID(n)) {
				mark(c)
			}
		}
	})
	for _, r := range p.addNetCanonical {
		touched++
		for _, c := range r {
			mark(c)
		}
	}
	eff := &DeltaEffect{
		TouchedNets:    touched,
		CellsAdded:     len(d.AddCells),
		CellsRemoved:   p.nRemovedCells,
		NetsAdded:      len(d.AddNets),
		NetsRemoved:    p.nRemovedNets,
		CellsTruncated: p.newCellsRaw - p.truncCellStart,
		NetsTruncated:  p.newNetsRaw - p.truncNetStart,
	}
	eff.Dirty = make([]CellID, 0, dirty.Len())
	dirty.ForEach(func(c int) { eff.Dirty = append(eff.Dirty, CellID(c)) })
	return child, eff, nil
}

// Inverse computes the delta that exactly undoes d: with
// child, _, _ := d.Apply(parent) and inv, _ := d.Inverse(parent),
// inv.Apply(child) reproduces parent bit-identically — CSR arrays,
// names and areas. Tombstoned entries get their pins restored via
// SetNets (their metadata never left); truncated entries are
// re-appended in id order so they regain their exact ids.
func (d *Delta) Inverse(parent *Netlist) (*Delta, error) {
	p, err := d.plan(parent)
	if err != nil {
		return nil, err
	}
	inv := &Delta{}
	// Undo appended cells/nets: remove them. They sit at the tail of
	// the child, so applying the inverse truncates them away.
	for i := range d.AddCells {
		inv.RemoveCells = append(inv.RemoveCells, CellID(p.nCells+i))
	}
	for i := range d.AddNets {
		inv.RemoveNets = append(inv.RemoveNets, NetID(p.nNets+i))
	}
	// Undo truncation: re-append the dropped tail with its metadata.
	for c := p.truncCellStart; c < p.nCells; c++ {
		inv.AddCells = append(inv.AddCells, NewCell{
			Name: rawName(parent.cellNames, c),
			Area: parent.CellArea(CellID(c)),
		})
	}
	for n := p.truncNetStart; n < p.nNets; n++ {
		inv.AddNets = append(inv.AddNets, NewNet{
			Name:    rawName(parent.netNames, n),
			Cells:   append([]CellID(nil), parent.NetPins(NetID(n))...),
			Drivers: append([]CellID(nil), parent.NetDrivers(NetID(n))...),
		})
	}
	// Restore every surviving touched net's parent pin set (drivers
	// included — NetDrivers is nil on undirected parents, so the field
	// stays absent there).
	p.touchedNet.ForEach(func(n int) {
		if n >= p.truncNetStart {
			return // truncated: restored via AddNets above
		}
		inv.SetNets = append(inv.SetNets, NetEdit{
			Net:     NetID(n),
			Cells:   append([]CellID(nil), parent.NetPins(NetID(n))...),
			Drivers: append([]CellID(nil), parent.NetDrivers(NetID(n))...),
		})
	})
	return inv, nil
}

// extendNames copies a (possibly nil or short) name slice out to base
// entries and appends extra added names. Returns nil when no name
// exists anywhere, preserving the parent's "no names" representation.
func extendNames(names []string, base, added int, name func(int) string) []string {
	any := false
	for _, s := range names {
		if s != "" {
			any = true
			break
		}
	}
	for i := 0; i < added; i++ {
		if name(i) != "" {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	out := make([]string, base+added)
	copy(out, names)
	for i := 0; i < added; i++ {
		out[base+i] = name(i)
	}
	return out
}

// extendAreas extends the area slice with added cells' areas (<= 0
// means unit). A parent with implicit unit areas stays implicit when
// every added cell is unit too.
func extendAreas(area []float64, base int, added []NewCell) []float64 {
	allUnit := area == nil
	if allUnit {
		for _, c := range added {
			if c.Area > 0 && c.Area != 1 {
				allUnit = false
				break
			}
		}
		if allUnit {
			return nil
		}
	}
	out := make([]float64, base+len(added))
	if area == nil {
		for i := 0; i < base; i++ {
			out[i] = 1
		}
	} else {
		copy(out, area)
	}
	for i, c := range added {
		a := c.Area
		if a <= 0 {
			a = 1
		}
		out[base+i] = a
	}
	return out
}

// rawName returns the stored (not synthesized) name for id i.
func rawName(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return ""
}

// SameStructure reports whether two netlists are bit-identical in CSR
// structure, names and areas — the equality the delta round-trip
// (Apply then Inverse-apply) guarantees. It is O(pins) and intended
// for tests and content-address sanity checks.
func (nl *Netlist) SameStructure(o *Netlist) error {
	if nl.NumCells() != o.NumCells() || nl.NumNets() != o.NumNets() || nl.NumPins() != o.NumPins() {
		return fmt.Errorf("netlist: shape differs: %dx%dx%d vs %dx%dx%d",
			nl.NumCells(), nl.NumNets(), nl.NumPins(), o.NumCells(), o.NumNets(), o.NumPins())
	}
	for n := 0; n < nl.NumNets(); n++ {
		a, b := nl.NetPins(NetID(n)), o.NetPins(NetID(n))
		if len(a) != len(b) {
			return fmt.Errorf("netlist: net %d size %d vs %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("netlist: net %d pin %d: cell %d vs %d", n, i, a[i], b[i])
			}
		}
		if nl.NetName(NetID(n)) != o.NetName(NetID(n)) {
			return fmt.Errorf("netlist: net %d name %q vs %q", n, nl.NetName(NetID(n)), o.NetName(NetID(n)))
		}
	}
	if nl.Directed() != o.Directed() {
		return fmt.Errorf("netlist: directed %v vs %v", nl.Directed(), o.Directed())
	}
	for n := 0; n < nl.NumNets(); n++ {
		a, b := nl.NetDrivers(NetID(n)), o.NetDrivers(NetID(n))
		if len(a) != len(b) {
			return fmt.Errorf("netlist: net %d has %d drivers vs %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("netlist: net %d driver %d: cell %d vs %d", n, i, a[i], b[i])
			}
		}
	}
	for c := 0; c < nl.NumCells(); c++ {
		if nl.CellName(CellID(c)) != o.CellName(CellID(c)) {
			return fmt.Errorf("netlist: cell %d name %q vs %q", c, nl.CellName(CellID(c)), o.CellName(CellID(c)))
		}
		if nl.CellArea(CellID(c)) != o.CellArea(CellID(c)) {
			return fmt.Errorf("netlist: cell %d area %g vs %g", c, nl.CellArea(CellID(c)), o.CellArea(CellID(c)))
		}
	}
	return nil
}
