package netlist

import (
	"slices"
	"testing"
)

func TestLocalityOrderIsPermutation(t *testing.T) {
	nl := randomTestNetlist(t, 500, 1000, 11)
	perm := LocalityOrder(nl)
	if len(perm) != nl.NumCells() {
		t.Fatalf("perm length %d, want %d", len(perm), nl.NumCells())
	}
	seen := make([]bool, len(perm))
	for old, nw := range perm {
		if nw < 0 || int(nw) >= len(perm) {
			t.Fatalf("perm[%d] = %d out of range", old, nw)
		}
		if seen[nw] {
			t.Fatalf("perm maps two cells to %d", nw)
		}
		seen[nw] = true
	}
}

func TestPermuteCellsPreservesStructure(t *testing.T) {
	nl := randomTestNetlist(t, 400, 800, 23)
	perm := LocalityOrder(nl)
	pnl, err := PermuteCells(nl, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := pnl.Validate(); err != nil {
		t.Fatalf("permuted netlist fails validation: %v", err)
	}
	if pnl.NumCells() != nl.NumCells() || pnl.NumNets() != nl.NumNets() {
		t.Fatalf("shape changed: %d/%d cells, %d/%d nets",
			pnl.NumCells(), nl.NumCells(), pnl.NumNets(), nl.NumNets())
	}
	// Net identity is untouched; each net's pin set maps through perm.
	for n := NetID(0); int(n) < nl.NumNets(); n++ {
		want := make([]CellID, 0, nl.NetSize(n))
		for _, c := range nl.NetPins(n) {
			want = append(want, perm[c])
		}
		slices.Sort(want)
		got := slices.Clone(pnl.NetPins(n))
		slices.Sort(got)
		if !slices.Equal(want, got) {
			t.Fatalf("net %d pins %v, want %v", n, got, want)
		}
	}
	// Per-cell degree and incident-net sets survive the relabeling.
	for c := CellID(0); int(c) < nl.NumCells(); c++ {
		if nl.CellDegree(c) != pnl.CellDegree(perm[c]) {
			t.Fatalf("cell %d degree %d became %d", c, nl.CellDegree(c), pnl.CellDegree(perm[c]))
		}
		want := slices.Clone(nl.CellPins(c))
		got := slices.Clone(pnl.CellPins(perm[c]))
		slices.Sort(want)
		slices.Sort(got)
		if !slices.Equal(want, got) {
			t.Fatalf("cell %d incident nets %v, want %v", c, got, want)
		}
	}
}

func TestPermuteCellsIdentity(t *testing.T) {
	nl := randomTestNetlist(t, 120, 240, 5)
	perm := make([]CellID, nl.NumCells())
	for i := range perm {
		perm[i] = CellID(i)
	}
	pnl, err := PermuteCells(nl, perm)
	if err != nil {
		t.Fatal(err)
	}
	for c := CellID(0); int(c) < nl.NumCells(); c++ {
		if !slices.Equal(nl.CellPins(c), pnl.CellPins(c)) {
			t.Fatalf("identity permutation changed cell %d pins", c)
		}
	}
	for n := NetID(0); int(n) < nl.NumNets(); n++ {
		if !slices.Equal(nl.NetPins(n), pnl.NetPins(n)) {
			t.Fatalf("identity permutation changed net %d pins", n)
		}
	}
}

func TestPermuteCellsRejectsBadPerm(t *testing.T) {
	nl := randomTestNetlist(t, 50, 100, 3)
	if _, err := PermuteCells(nl, make([]CellID, 10)); err == nil {
		t.Fatal("short perm accepted")
	}
	dup := make([]CellID, nl.NumCells())
	for i := range dup {
		dup[i] = 0 // everything collapses onto cell 0
	}
	if _, err := PermuteCells(nl, dup); err == nil {
		t.Fatal("non-bijective perm accepted")
	}
}
