// Package netlist models a synthesized VLSI netlist as a hypergraph:
// cells (gates) connected by nets, where each net pins a set of cells.
//
// This is the substrate every other tanglefind package builds on. The
// representation is a flat CSR (compressed sparse row) incidence
// structure — cells and nets are dense int32 ids, and both directions
// of the incidence relation live in two flat arrays each:
//
//	cellPinOff[c] : cellPinOff[c+1]  indexes cellPinNet  → nets on cell c
//	netPinOff[n]  : netPinOff[n+1]   indexes netPinCell  → cells on net n
//
// so that the tangled-logic finder can traverse netlists with hundreds
// of thousands of cells with one cache line per pin run instead of a
// pointer dereference per pin list. Accessors return subslices of the
// flat arrays; callers never copy pins to walk the graph.
//
// Invariants (established by Builder and the file readers, checked by
// Validate): each pin run is strictly ascending (which also rules out
// duplicate incidences), offsets are non-decreasing and span the flat
// arrays exactly, and the two directions are symmetric.
//
// Pin semantics follow the paper: a net e is a subset of cells, so a
// cell contributes at most one pin to a given net (the Builder dedupes
// repeated connections), |e| is the number of cells on e, and the pin
// count of a cell is the number of distinct nets incident to it.
//
// # Optional direction annotation
//
// A netlist may additionally carry a driver annotation: a third CSR
// run set (netDrvOff/netDrvCell) listing, per net, the sorted subset
// of its pins that drive the net. The detection engine never reads it
// — tangle mining is purely topological — but the lint rules in
// internal/lint need a directed view (multi-driven nets, undriven
// nets, combinational loops), and synthesized-netlist sources know
// their drivers. A nil driver CSR means "no direction information"
// (Directed reports false); a directed netlist with an empty driver
// run for some net means that net is genuinely undriven, which is a
// lintable defect, not missing data. Derived structures that resample
// the hypergraph (coarsening levels, induced views) drop the
// annotation; lint runs at full resolution.
package netlist

import (
	"fmt"
	"sync"
)

// CellID identifies a cell (gate) within a Netlist.
type CellID = int32

// NetID identifies a net within a Netlist.
type NetID = int32

// Netlist is an immutable hypergraph of cells and nets in CSR form.
// Construct one with a Builder, a generator or the .tfnet/.tfb
// readers; the zero value is an empty netlist.
type Netlist struct {
	cellPinOff []int32  // len NumCells+1; cell -> range in cellPinNet
	cellPinNet []NetID  // flat pin array; per-cell runs strictly ascending
	netPinOff  []int32  // len NumNets+1; net -> range in netPinCell
	netPinCell []CellID // flat pin array; per-net runs strictly ascending

	// Optional driver annotation (see the package comment): per net,
	// the sorted subset of its pins that drive it. nil netDrvOff means
	// the netlist carries no direction information at all.
	netDrvOff  []int32
	netDrvCell []CellID

	cellNames []string  // optional; empty means synthesized names
	netNames  []string  // optional
	cellArea  []float64 // optional; nil means unit area

	// scratch pools the epoch-stamped marker arrays behind the subset
	// queries in subset.go. It is shared (by pointer) between WithAreas
	// copies, which view the same hypergraph.
	scratch *sync.Pool
}

// initScratch installs the subset-query scratch pool; called once by
// every constructor (Builder.Build, fromNetCSR).
func (nl *Netlist) initScratch() {
	nl.scratch = &sync.Pool{New: func() any {
		return &subsetScratch{
			netMark:  make([]uint32, nl.NumNets()),
			cellMark: make([]uint32, nl.NumCells()),
		}
	}}
}

// NumCells returns the number of cells.
func (nl *Netlist) NumCells() int {
	if len(nl.cellPinOff) == 0 {
		return 0
	}
	return len(nl.cellPinOff) - 1
}

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int {
	if len(nl.netPinOff) == 0 {
		return 0
	}
	return len(nl.netPinOff) - 1
}

// NumPins returns the total pin count Σ_e |e|.
func (nl *Netlist) NumPins() int { return len(nl.cellPinNet) }

// CellPins returns the nets incident to cell c as a subslice of the
// flat CSR array, strictly ascending. The caller must not modify it.
func (nl *Netlist) CellPins(c CellID) []NetID {
	return nl.cellPinNet[nl.cellPinOff[c]:nl.cellPinOff[c+1]]
}

// NetPins returns the cells on net n as a subslice of the flat CSR
// array, strictly ascending. The caller must not modify it.
func (nl *Netlist) NetPins(n NetID) []CellID {
	return nl.netPinCell[nl.netPinOff[n]:nl.netPinOff[n+1]]
}

// Directed reports whether the netlist carries a driver annotation.
func (nl *Netlist) Directed() bool { return nl.netDrvOff != nil }

// NetDrivers returns the cells driving net n as a subslice of the
// driver CSR, strictly ascending; nil when the netlist is undirected.
// An empty run on a directed netlist means the net is undriven. The
// caller must not modify the slice.
func (nl *Netlist) NetDrivers(n NetID) []CellID {
	if nl.netDrvOff == nil {
		return nil
	}
	return nl.netDrvCell[nl.netDrvOff[n]:nl.netDrvOff[n+1]]
}

// NumDriverPins returns the total driver pin count across all nets
// (0 for undirected netlists).
func (nl *Netlist) NumDriverPins() int { return len(nl.netDrvCell) }

// attachDrivers installs a driver CSR, taking ownership of the
// slices. Constructors call it after the pin CSR is in place; the
// caller guarantees well-formed offsets and sorted runs that are
// subsets of the corresponding pin runs (Validate checks all of it).
func (nl *Netlist) attachDrivers(off []int32, cells []CellID) {
	nl.netDrvOff = off
	nl.netDrvCell = cells
}

// CellDegree returns the number of pins on cell c (distinct nets).
func (nl *Netlist) CellDegree(c CellID) int {
	return int(nl.cellPinOff[c+1] - nl.cellPinOff[c])
}

// NetSize returns |e| for net n: the number of cells it pins.
func (nl *Netlist) NetSize(n NetID) int {
	return int(nl.netPinOff[n+1] - nl.netPinOff[n])
}

// NetCSR returns a copy of the net→cell direction of the incidence
// structure: offsets (len NumNets+1) and the flat pin array it
// indexes. Callers that rewrite pins wholesale (resynthesis, netlist
// editing) mutate the copy and feed it back through a Builder, instead
// of materializing one slice per net.
func (nl *Netlist) NetCSR() (offsets []int32, pins []CellID) {
	offsets = make([]int32, len(nl.netPinOff))
	copy(offsets, nl.netPinOff)
	pins = make([]CellID, len(nl.netPinCell))
	copy(pins, nl.netPinCell)
	return offsets, pins
}

// MemoryFootprint estimates the netlist's retained bytes: both CSR
// directions plus names and areas. Used by serving layers to account
// for coarse hierarchy levels against memory budgets.
func (nl *Netlist) MemoryFootprint() int64 {
	b := int64(len(nl.cellPinOff))*4 + int64(len(nl.cellPinNet))*4 +
		int64(len(nl.netPinOff))*4 + int64(len(nl.netPinCell))*4 +
		int64(len(nl.netDrvOff))*4 + int64(len(nl.netDrvCell))*4 +
		int64(len(nl.cellArea))*8
	for _, s := range nl.cellNames {
		b += int64(len(s)) + 16
	}
	for _, s := range nl.netNames {
		b += int64(len(s)) + 16
	}
	return b
}

// AvgPins returns A(G): total pins divided by the number of cells.
// This is the paper's normalization constant A_G. It returns 0 for an
// empty netlist.
func (nl *Netlist) AvgPins() float64 {
	if nl.NumCells() == 0 {
		return 0
	}
	return float64(nl.NumPins()) / float64(nl.NumCells())
}

// CellName returns the name of cell c, synthesizing "c<id>" when the
// netlist carries no names.
func (nl *Netlist) CellName(c CellID) string {
	if int(c) < len(nl.cellNames) && nl.cellNames[c] != "" {
		return nl.cellNames[c]
	}
	return fmt.Sprintf("c%d", c)
}

// NetName returns the name of net n, synthesizing "n<id>" when absent.
func (nl *Netlist) NetName(n NetID) string {
	if int(n) < len(nl.netNames) && nl.netNames[n] != "" {
		return nl.netNames[n]
	}
	return fmt.Sprintf("n%d", n)
}

// CellArea returns the placement area of cell c (1.0 when unset).
func (nl *Netlist) CellArea(c CellID) float64 {
	if nl.cellArea == nil {
		return 1
	}
	return nl.cellArea[c]
}

// TotalArea returns the sum of all cell areas.
func (nl *Netlist) TotalArea() float64 {
	if nl.cellArea == nil {
		return float64(nl.NumCells())
	}
	sum := 0.0
	for _, a := range nl.cellArea {
		sum += a
	}
	return sum
}

// WithAreas returns a shallow copy of the netlist with the given cell
// areas (len must equal NumCells). The hypergraph itself is shared.
func (nl *Netlist) WithAreas(area []float64) (*Netlist, error) {
	if len(area) != nl.NumCells() {
		return nil, fmt.Errorf("netlist: area slice has %d entries for %d cells", len(area), nl.NumCells())
	}
	cp := &Netlist{
		cellPinOff: nl.cellPinOff,
		cellPinNet: nl.cellPinNet,
		netPinOff:  nl.netPinOff,
		netPinCell: nl.netPinCell,
		netDrvOff:  nl.netDrvOff,
		netDrvCell: nl.netDrvCell,
		cellNames:  nl.cellNames,
		netNames:   nl.netNames,
		cellArea:   area,
		scratch:    nl.scratch,
	}
	return cp, nil
}

// checkOffsets verifies one CSR offset array: starts at 0, is
// non-decreasing and ends exactly at the flat array's length.
func checkOffsets(kind string, off []int32, flatLen int) error {
	if len(off) == 0 {
		if flatLen != 0 {
			return fmt.Errorf("netlist: %s offsets missing for %d pins", kind, flatLen)
		}
		return nil
	}
	if off[0] != 0 {
		return fmt.Errorf("netlist: %s offsets start at %d, want 0", kind, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("netlist: %s offsets decrease at %d (%d -> %d)", kind, i, off[i-1], off[i])
		}
	}
	if int(off[len(off)-1]) != flatLen {
		return fmt.Errorf("netlist: %s offsets end at %d, want %d", kind, off[len(off)-1], flatLen)
	}
	return nil
}

// Validate checks the structural invariants of the CSR netlist
// directly on the flat arrays: well-formed offsets, ids in range,
// strictly ascending pin runs (which rules out duplicate incidences)
// and symmetric incidence — all in O(pins) with no hashing.
func (nl *Netlist) Validate() error {
	numCells, numNets := nl.NumCells(), nl.NumNets()
	if err := checkOffsets("cell", nl.cellPinOff, len(nl.cellPinNet)); err != nil {
		return err
	}
	if err := checkOffsets("net", nl.netPinOff, len(nl.netPinCell)); err != nil {
		return err
	}
	if len(nl.cellPinNet) != len(nl.netPinCell) {
		return fmt.Errorf("netlist: cell-side pin count %d != net-side %d", len(nl.cellPinNet), len(nl.netPinCell))
	}
	for c := 0; c < numCells; c++ {
		pins := nl.CellPins(CellID(c))
		for i, n := range pins {
			if n < 0 || int(n) >= numNets {
				return fmt.Errorf("netlist: cell %d (%s) pins out-of-range net %d", c, nl.CellName(CellID(c)), n)
			}
			if i > 0 && pins[i-1] >= n {
				// Name the offending run precisely: which cell, where in
				// its run, and both ids in the violating pair — lint and
				// delta debugging lean on these diagnostics.
				return fmt.Errorf("netlist: cell %d (%s) pin run not strictly ascending: position %d lists net %d after net %d",
					c, nl.CellName(CellID(c)), i, n, pins[i-1])
			}
		}
	}
	for n := 0; n < numNets; n++ {
		pins := nl.NetPins(NetID(n))
		for i, c := range pins {
			if c < 0 || int(c) >= numCells {
				return fmt.Errorf("netlist: net %d (%s) pins out-of-range cell %d", n, nl.NetName(NetID(n)), c)
			}
			if i > 0 && pins[i-1] >= c {
				return fmt.Errorf("netlist: net %d (%s) pin run not strictly ascending: position %d lists cell %d after cell %d",
					n, nl.NetName(NetID(n)), i, c, pins[i-1])
			}
		}
	}
	if err := nl.validateDrivers(); err != nil {
		return err
	}
	// Symmetry by counting: walk nets in ascending id order and advance
	// a read cursor per cell. Because each cell's pin run is ascending,
	// the cursor must see exactly net n when net n lists the cell —
	// any mismatch in either direction surfaces as a cursor miss or as
	// unconsumed cell-side pins.
	cursor := make([]int32, numCells)
	for n := 0; n < numNets; n++ {
		for _, c := range nl.NetPins(NetID(n)) {
			at := nl.cellPinOff[c] + cursor[c]
			if at >= nl.cellPinOff[c+1] || nl.cellPinNet[at] != NetID(n) {
				return fmt.Errorf("netlist: net %d lists cell %d but cell does not list net", n, c)
			}
			cursor[c]++
		}
	}
	for c := 0; c < numCells; c++ {
		if int(cursor[c]) != nl.CellDegree(CellID(c)) {
			return fmt.Errorf("netlist: cell %d lists %d nets but nets list it %d times", c, nl.CellDegree(CellID(c)), cursor[c])
		}
	}
	return nil
}

// validateDrivers checks the optional driver CSR: well-formed
// offsets, strictly ascending runs, and every driver present in the
// corresponding pin run — O(pins) via a merge walk per net.
func (nl *Netlist) validateDrivers() error {
	if nl.netDrvOff == nil {
		if len(nl.netDrvCell) != 0 {
			return fmt.Errorf("netlist: driver offsets missing for %d driver pins", len(nl.netDrvCell))
		}
		return nil
	}
	if err := checkOffsets("driver", nl.netDrvOff, len(nl.netDrvCell)); err != nil {
		return err
	}
	if len(nl.netDrvOff) != nl.NumNets()+1 {
		return fmt.Errorf("netlist: driver offsets cover %d nets, want %d", len(nl.netDrvOff)-1, nl.NumNets())
	}
	for n := 0; n < nl.NumNets(); n++ {
		drv := nl.NetDrivers(NetID(n))
		pins := nl.NetPins(NetID(n))
		at := 0
		for i, c := range drv {
			if i > 0 && drv[i-1] >= c {
				return fmt.Errorf("netlist: net %d (%s) driver run not strictly ascending: position %d lists cell %d after cell %d",
					n, nl.NetName(NetID(n)), i, c, drv[i-1])
			}
			for at < len(pins) && pins[at] < c {
				at++
			}
			if at >= len(pins) || pins[at] != c {
				return fmt.Errorf("netlist: net %d (%s) lists driver %d that is not one of its pins", n, nl.NetName(NetID(n)), c)
			}
		}
	}
	return nil
}

// Stats summarizes a netlist for reports and sanity checks.
type Stats struct {
	Cells, Nets, Pins     int
	AvgPins               float64 // A(G)
	MaxNetSize, MaxDegree int
}

// Stats computes summary statistics.
func (nl *Netlist) Stats() Stats {
	s := Stats{Cells: nl.NumCells(), Nets: nl.NumNets(), Pins: nl.NumPins(), AvgPins: nl.AvgPins()}
	for n := 0; n < s.Nets; n++ {
		if sz := nl.NetSize(NetID(n)); sz > s.MaxNetSize {
			s.MaxNetSize = sz
		}
	}
	for c := 0; c < s.Cells; c++ {
		if d := nl.CellDegree(CellID(c)); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}
