// Package netlist models a synthesized VLSI netlist as a hypergraph:
// cells (gates) connected by nets, where each net pins a set of cells.
//
// This is the substrate every other tanglefind package builds on. The
// representation is flat and id-based — cells and nets are dense int32
// ids — so that the tangled-logic finder can run over netlists with
// hundreds of thousands of cells without pointer-chasing overhead.
//
// Pin semantics follow the paper: a net e is a subset of cells, so a
// cell contributes at most one pin to a given net (the Builder dedupes
// repeated connections), |e| is the number of cells on e, and the pin
// count of a cell is the number of distinct nets incident to it.
package netlist

import (
	"errors"
	"fmt"
)

// CellID identifies a cell (gate) within a Netlist.
type CellID = int32

// NetID identifies a net within a Netlist.
type NetID = int32

// Netlist is an immutable hypergraph of cells and nets.
// Construct one with a Builder or a generator; the zero value is an
// empty netlist.
type Netlist struct {
	cellPins [][]NetID  // cell -> distinct incident nets
	netPins  [][]CellID // net -> distinct incident cells
	numPins  int        // Σ len(cellPins[i]) == Σ len(netPins[j])

	cellNames []string  // optional; empty means synthesized names
	netNames  []string  // optional
	cellArea  []float64 // optional; nil means unit area
}

// NumCells returns the number of cells.
func (nl *Netlist) NumCells() int { return len(nl.cellPins) }

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int { return len(nl.netPins) }

// NumPins returns the total pin count Σ_e |e|.
func (nl *Netlist) NumPins() int { return nl.numPins }

// CellPins returns the nets incident to cell c. The caller must not
// modify the returned slice.
func (nl *Netlist) CellPins(c CellID) []NetID { return nl.cellPins[c] }

// NetPins returns the cells on net n. The caller must not modify the
// returned slice.
func (nl *Netlist) NetPins(n NetID) []CellID { return nl.netPins[n] }

// CellDegree returns the number of pins on cell c (distinct nets).
func (nl *Netlist) CellDegree(c CellID) int { return len(nl.cellPins[c]) }

// NetSize returns |e| for net n: the number of cells it pins.
func (nl *Netlist) NetSize(n NetID) int { return len(nl.netPins[n]) }

// AvgPins returns A(G): total pins divided by the number of cells.
// This is the paper's normalization constant A_G. It returns 0 for an
// empty netlist.
func (nl *Netlist) AvgPins() float64 {
	if len(nl.cellPins) == 0 {
		return 0
	}
	return float64(nl.numPins) / float64(len(nl.cellPins))
}

// CellName returns the name of cell c, synthesizing "c<id>" when the
// netlist carries no names.
func (nl *Netlist) CellName(c CellID) string {
	if int(c) < len(nl.cellNames) && nl.cellNames[c] != "" {
		return nl.cellNames[c]
	}
	return fmt.Sprintf("c%d", c)
}

// NetName returns the name of net n, synthesizing "n<id>" when absent.
func (nl *Netlist) NetName(n NetID) string {
	if int(n) < len(nl.netNames) && nl.netNames[n] != "" {
		return nl.netNames[n]
	}
	return fmt.Sprintf("n%d", n)
}

// CellArea returns the placement area of cell c (1.0 when unset).
func (nl *Netlist) CellArea(c CellID) float64 {
	if nl.cellArea == nil {
		return 1
	}
	return nl.cellArea[c]
}

// TotalArea returns the sum of all cell areas.
func (nl *Netlist) TotalArea() float64 {
	if nl.cellArea == nil {
		return float64(len(nl.cellPins))
	}
	sum := 0.0
	for _, a := range nl.cellArea {
		sum += a
	}
	return sum
}

// WithAreas returns a shallow copy of the netlist with the given cell
// areas (len must equal NumCells). The hypergraph itself is shared.
func (nl *Netlist) WithAreas(area []float64) (*Netlist, error) {
	if len(area) != nl.NumCells() {
		return nil, fmt.Errorf("netlist: area slice has %d entries for %d cells", len(area), nl.NumCells())
	}
	cp := *nl
	cp.cellArea = area
	return &cp, nil
}

// Validate checks the structural invariants of the netlist: pin lists
// are symmetric, ids in range, no duplicate incidences.
func (nl *Netlist) Validate() error {
	if nl.numPins < 0 {
		return errors.New("netlist: negative pin count")
	}
	seen := make(map[int64]bool)
	pins := 0
	for c, nets := range nl.cellPins {
		for _, n := range nets {
			if n < 0 || int(n) >= len(nl.netPins) {
				return fmt.Errorf("netlist: cell %d pins out-of-range net %d", c, n)
			}
			key := int64(c)<<32 | int64(n)
			if seen[key] {
				return fmt.Errorf("netlist: duplicate incidence cell %d / net %d", c, n)
			}
			seen[key] = true
			pins++
		}
	}
	if pins != nl.numPins {
		return fmt.Errorf("netlist: pin count %d != recorded %d", pins, nl.numPins)
	}
	back := 0
	for n, cells := range nl.netPins {
		for _, c := range cells {
			if c < 0 || int(c) >= len(nl.cellPins) {
				return fmt.Errorf("netlist: net %d pins out-of-range cell %d", n, c)
			}
			if !seen[int64(c)<<32|int64(n)] {
				return fmt.Errorf("netlist: net %d lists cell %d but cell does not list net", n, c)
			}
			back++
		}
	}
	if back != pins {
		return fmt.Errorf("netlist: net-side pin count %d != cell-side %d", back, pins)
	}
	return nil
}

// Stats summarizes a netlist for reports and sanity checks.
type Stats struct {
	Cells, Nets, Pins     int
	AvgPins               float64 // A(G)
	MaxNetSize, MaxDegree int
}

// Stats computes summary statistics.
func (nl *Netlist) Stats() Stats {
	s := Stats{Cells: nl.NumCells(), Nets: nl.NumNets(), Pins: nl.numPins, AvgPins: nl.AvgPins()}
	for _, p := range nl.netPins {
		if len(p) > s.MaxNetSize {
			s.MaxNetSize = len(p)
		}
	}
	for _, p := range nl.cellPins {
		if len(p) > s.MaxDegree {
			s.MaxDegree = len(p)
		}
	}
	return s
}
