package netlist

import (
	"iter"
	"sort"
)

// View is a zero-copy induced subnetlist: the hypergraph restricted to
// a cell subset, exposed through dense local ids. It is built from two
// id-remap arrays (global→local for cells and nets) over the parent's
// flat CSR — no pin list is ever copied, so constructing a view is
// O(|parent| + pins(members)) memory-light compared to rebuilding a
// netlist through a Builder the way resynthesis and clustered
// placement used to.
//
// Induced semantics match Builder.DropDegenerateNets: a parent net
// joins the view iff at least two member cells pin it (a net with one
// inside pin can never be cut inside the subset). Local cell and net
// ids are assigned in ascending global order, so every local pin run
// stays sorted.
//
// A View shares the parent's arrays and is immutable and safe for
// concurrent use.
type View struct {
	nl        *Netlist
	cells     []CellID // local -> global, strictly ascending
	localCell []int32  // global -> local; -1 outside the view
	nets      []NetID  // local -> global, strictly ascending
	localNet  []int32  // global -> local; -1 outside the view
	netSize   []int32  // per view net: member pins on it
	pins      int      // Σ netSize
}

// InducedView builds the view of the subnetlist induced by members.
// Duplicate members are collapsed; members order is irrelevant.
func (nl *Netlist) InducedView(members []CellID) *View {
	v := &View{nl: nl}
	v.localCell = make([]int32, nl.NumCells())
	for i := range v.localCell {
		v.localCell[i] = -1
	}
	v.cells = make([]CellID, 0, len(members))
	for _, c := range members {
		if v.localCell[c] < 0 {
			v.localCell[c] = 0 // mark; real ids assigned after sorting
			v.cells = append(v.cells, c)
		}
	}
	sort.Slice(v.cells, func(i, j int) bool { return v.cells[i] < v.cells[j] })
	for i, c := range v.cells {
		v.localCell[c] = int32(i)
	}
	// Count member pins per net, then keep nets with >= 2 of them.
	inside := make([]int32, nl.NumNets())
	for _, c := range v.cells {
		for _, n := range nl.CellPins(c) {
			inside[n]++
		}
	}
	v.localNet = make([]int32, nl.NumNets())
	for n := range v.localNet {
		if inside[n] >= 2 {
			v.localNet[n] = int32(len(v.nets))
			v.nets = append(v.nets, NetID(n))
			v.netSize = append(v.netSize, inside[n])
			v.pins += int(inside[n])
		} else {
			v.localNet[n] = -1
		}
	}
	return v
}

// Parent returns the netlist the view was induced from.
func (v *View) Parent() *Netlist { return v.nl }

// NumCells returns the number of cells in the view.
func (v *View) NumCells() int { return len(v.cells) }

// NumNets returns the number of induced nets (>= 2 member pins).
func (v *View) NumNets() int { return len(v.nets) }

// NumPins returns the total pin count of the induced subnetlist.
func (v *View) NumPins() int { return v.pins }

// GlobalCell maps a local cell id back to the parent netlist.
func (v *View) GlobalCell(c int32) CellID { return v.cells[c] }

// GlobalNet maps a local net id back to the parent netlist.
func (v *View) GlobalNet(n int32) NetID { return v.nets[n] }

// LocalCell maps a parent cell id into the view (-1 when outside).
func (v *View) LocalCell(c CellID) int32 { return v.localCell[c] }

// LocalNet maps a parent net id into the view (-1 when outside).
func (v *View) LocalNet(n NetID) int32 { return v.localNet[n] }

// Has reports whether parent cell c is in the view.
func (v *View) Has(c int) bool { return v.localCell[c] >= 0 }

// NetSize returns the pin count of local net n inside the view.
func (v *View) NetSize(n int32) int { return int(v.netSize[n]) }

// CellPins iterates the local ids of the view nets on local cell c, in
// ascending order, straight off the parent's flat arrays.
func (v *View) CellPins(c int32) iter.Seq[int32] {
	return func(yield func(int32) bool) {
		for _, n := range v.nl.CellPins(v.cells[c]) {
			if ln := v.localNet[n]; ln >= 0 {
				if !yield(ln) {
					return
				}
			}
		}
	}
}

// NetPins iterates the local ids of the member cells on local net n,
// in ascending order, straight off the parent's flat arrays.
func (v *View) NetPins(n int32) iter.Seq[int32] {
	return func(yield func(int32) bool) {
		for _, c := range v.nl.NetPins(v.nets[n]) {
			if lc := v.localCell[c]; lc >= 0 {
				if !yield(lc) {
					return
				}
			}
		}
	}
}

// CellDegree returns the number of view nets on local cell c (O(parent
// degree) — the filtered count is not precomputed).
func (v *View) CellDegree(c int32) int {
	d := 0
	for _, n := range v.nl.CellPins(v.cells[c]) {
		if v.localNet[n] >= 0 {
			d++
		}
	}
	return d
}

// CellArea returns the parent area of local cell c.
func (v *View) CellArea(c int32) float64 { return v.nl.CellArea(v.cells[c]) }

// Materialize copies the view into a standalone Netlist in local id
// space, carrying the parent's names and areas. This is the one place
// a view pays for pin copies — callers that only traverse use the
// view directly.
func (v *View) Materialize() *Netlist {
	off := make([]int32, len(v.nets)+1)
	for n := range v.nets {
		off[n+1] = off[n] + v.netSize[n]
	}
	pins := make([]CellID, v.pins)
	at := 0
	for n := range v.nets {
		for _, c := range v.nl.NetPins(v.nets[n]) {
			if lc := v.localCell[c]; lc >= 0 {
				pins[at] = lc
				at++
			}
		}
	}
	var names []string
	var areas []float64
	if len(v.nl.cellNames) > 0 {
		names = make([]string, len(v.cells))
		for i, c := range v.cells {
			if int(c) < len(v.nl.cellNames) {
				names[i] = v.nl.cellNames[c]
			}
		}
	}
	if v.nl.cellArea != nil {
		areas = make([]float64, len(v.cells))
		for i, c := range v.cells {
			areas[i] = v.nl.cellArea[c]
		}
	}
	var netNames []string
	if len(v.nl.netNames) > 0 {
		netNames = make([]string, len(v.nets))
		for i, n := range v.nets {
			if int(n) < len(v.nl.netNames) {
				netNames[i] = v.nl.netNames[n]
			}
		}
	}
	return fromNetCSR(len(v.cells), off, pins, netNames, names, areas)
}
