package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestReadNeverPanics feeds the parser structured garbage: mutated
// valid files, truncations and random bytes. The parser must return an
// error or a valid netlist — never panic, never return a netlist that
// fails Validate.
func TestReadNeverPanics(t *testing.T) {
	var b Builder
	b.AddCells(20)
	for i := 0; i < 19; i++ {
		b.AddNet("", CellID(i), CellID(i+1))
	}
	nl := b.MustBuild()
	var valid bytes.Buffer
	if err := nl.Write(&valid); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()

	r := rand.New(rand.NewSource(42))
	check := func(input []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on %q: %v", truncate(input), p)
			}
		}()
		got, err := Read(bytes.NewReader(input))
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				t.Fatalf("parser accepted invalid netlist from %q: %v", truncate(input), vErr)
			}
		}
	}
	// Truncations.
	for cut := 0; cut < len(base); cut += 7 {
		check(base[:cut])
	}
	// Byte mutations.
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), base...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] = byte(r.Intn(256))
		}
		check(mut)
	}
	// Random garbage.
	for trial := 0; trial < 200; trial++ {
		g := make([]byte, r.Intn(200))
		for i := range g {
			g[i] = byte(r.Intn(256))
		}
		check(g)
	}
	// Adversarial structured inputs.
	for _, s := range []string{
		"tfnet 1\ncells -5\n",
		"tfnet 1\ncells 999999999999999999999\n",
		"tfnet 1\ncells 2\nnet x -1\n",
		"tfnet 1\ncells 2\nnet x 99999999\n",
		"tfnet 1\ncells 1\nnet\n",
		strings.Repeat("tfnet 1\n", 50),
	} {
		check([]byte(s))
	}
}

func truncate(b []byte) string {
	s := string(b)
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
