package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestReadNeverPanics feeds the parser structured garbage: mutated
// valid files, truncations and random bytes. The parser must return an
// error or a valid netlist — never panic, never return a netlist that
// fails Validate.
func TestReadNeverPanics(t *testing.T) {
	var b Builder
	b.AddCells(20)
	for i := 0; i < 19; i++ {
		b.AddNet("", CellID(i), CellID(i+1))
	}
	nl := b.MustBuild()
	var valid bytes.Buffer
	if err := nl.Write(&valid); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()

	r := rand.New(rand.NewSource(42))
	check := func(input []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on %q: %v", truncate(input), p)
			}
		}()
		got, err := Read(bytes.NewReader(input))
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				t.Fatalf("parser accepted invalid netlist from %q: %v", truncate(input), vErr)
			}
		}
	}
	// Truncations.
	for cut := 0; cut < len(base); cut += 7 {
		check(base[:cut])
	}
	// Byte mutations.
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), base...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] = byte(r.Intn(256))
		}
		check(mut)
	}
	// Random garbage.
	for trial := 0; trial < 200; trial++ {
		g := make([]byte, r.Intn(200))
		for i := range g {
			g[i] = byte(r.Intn(256))
		}
		check(g)
	}
	// Adversarial structured inputs.
	for _, s := range []string{
		"tfnet 1\ncells -5\n",
		"tfnet 1\ncells 999999999999999999999\n",
		"tfnet 1\ncells 2\nnet x -1\n",
		"tfnet 1\ncells 2\nnet x 99999999\n",
		"tfnet 1\ncells 1\nnet\n",
		strings.Repeat("tfnet 1\n", 50),
	} {
		check([]byte(s))
	}
}

func truncate(b []byte) string {
	s := string(b)
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}

// binarySeed serializes a small netlist with names and areas so the
// binary fuzz inputs exercise every section of the .tfb layout.
func binarySeed(tb testing.TB) []byte {
	var b Builder
	b.AddCell("u0")
	b.AddCell("u1")
	b.AddCells(18)
	b.SetCellArea(1, 2.5)
	for i := 0; i < 19; i++ {
		b.AddNet("w", CellID(i), CellID(i+1))
	}
	nl := b.MustBuild()
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// checkBinaryInput is the shared oracle: the reader must return an
// error or a netlist that passes Validate — never panic.
func checkBinaryInput(tb testing.TB, input []byte) {
	defer func() {
		if p := recover(); p != nil {
			tb.Fatalf("binary reader panicked on %q: %v", truncate(input), p)
		}
	}()
	got, err := ReadBinary(bytes.NewReader(input))
	if err == nil {
		if vErr := got.Validate(); vErr != nil {
			tb.Fatalf("binary reader accepted invalid netlist from %q: %v", truncate(input), vErr)
		}
	}
}

// TestReadBinaryNeverPanics is the .tfb analog of TestReadNeverPanics:
// truncations, byte mutations and random garbage.
func TestReadBinaryNeverPanics(t *testing.T) {
	base := binarySeed(t)
	r := rand.New(rand.NewSource(43))
	for cut := 0; cut < len(base); cut += 5 {
		checkBinaryInput(t, base[:cut])
	}
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), base...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] = byte(r.Intn(256))
		}
		checkBinaryInput(t, mut)
	}
	for trial := 0; trial < 200; trial++ {
		g := make([]byte, r.Intn(300))
		for i := range g {
			g[i] = byte(r.Intn(256))
		}
		copy(g, tfbMagic[:]) // get past the magic so deeper code runs
		checkBinaryInput(t, g)
	}
}

// FuzzReadBinary is the native fuzz target for the .tfb reader; `go
// test` runs the seed corpus, `go test -fuzz=FuzzReadBinary` explores.
func FuzzReadBinary(f *testing.F) {
	f.Add(binarySeed(f))
	f.Add([]byte{})
	f.Add(tfbMagic[:])
	f.Fuzz(func(t *testing.T, input []byte) {
		checkBinaryInput(t, input)
	})
}

// FuzzDeltaApply feeds arbitrary delta documents at a fixed parent
// netlist. The invariants: ParseDelta/Apply never panic, an accepted
// delta always yields a netlist passing Validate, and apply followed
// by inverse-apply reproduces the parent bit-identically — both the
// CSR structure (SameStructure) and the canonical .tfb serialization
// the content-addressed store keys on.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte(`{"set_nets":[{"net":0,"cells":[0,5,3]}]}`))
	f.Add([]byte(`{"remove_cells":[19,4],"remove_nets":[18]}`))
	f.Add([]byte(`{"add_cells":[{"name":"b","area":2}],"add_nets":[{"cells":[20,0]}]}`))
	f.Add([]byte(`{"add_cells":[{}],"remove_cells":[0],"set_nets":[{"net":3,"cells":[20,7]}],"add_nets":[{"cells":[1,2]}],"remove_nets":[9]}`))
	f.Add([]byte(`{"set_nets":[{"net":1,"cells":[]}]}`))
	f.Add([]byte(`{}`))

	base, err := ReadBinary(bytes.NewReader(binarySeed(f)))
	if err != nil {
		f.Fatal(err)
	}
	var parentBytes bytes.Buffer
	if err := base.WriteBinary(&parentBytes); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, doc []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("delta apply panicked on %q: %v", truncate(doc), p)
			}
		}()
		d, err := ParseDelta(doc)
		if err != nil {
			return
		}
		child, eff, err := d.Apply(base)
		if err != nil {
			// Rejected deltas must agree with Validate.
			if vErr := d.Validate(base); vErr == nil {
				t.Fatalf("apply rejected (%v) a delta Validate accepts: %q", err, truncate(doc))
			}
			return
		}
		if vErr := child.Validate(); vErr != nil {
			t.Fatalf("apply produced invalid netlist from %q: %v", truncate(doc), vErr)
		}
		for _, c := range eff.Dirty {
			if c < 0 || int(c) >= child.NumCells() {
				t.Fatalf("dirty cell %d out of child range %d", c, child.NumCells())
			}
		}
		inv, err := d.Inverse(base)
		if err != nil {
			t.Fatalf("inverse failed on an applicable delta %q: %v", truncate(doc), err)
		}
		back, _, err := inv.Apply(child)
		if err != nil {
			t.Fatalf("inverse apply failed for %q: %v", truncate(doc), err)
		}
		if err := base.SameStructure(back); err != nil {
			t.Fatalf("round trip diverged for %q: %v", truncate(doc), err)
		}
		var buf bytes.Buffer
		if err := back.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(parentBytes.Bytes(), buf.Bytes()) {
			t.Fatalf("serialized round trip differs for %q", truncate(doc))
		}
	})
}

// FuzzCoarsen feeds arbitrary bytes through the .tfb reader and, when
// a valid netlist comes out, coarsens it and checks every hierarchy
// invariant: BuildHierarchy must never panic, every coarse level must
// pass Validate, the projection maps must partition the fine cells and
// conserve area, and coarse nets must be exactly the image of the fine
// nets. Runs the seed corpus under plain `go test`; explore with `go
// test -fuzz=FuzzCoarsen`.
func FuzzCoarsen(f *testing.F) {
	f.Add(binarySeed(f), 3, 8)
	f.Add([]byte{}, 2, 0)
	f.Add(tfbMagic[:], 5, 1)
	f.Fuzz(func(t *testing.T, input []byte, levels, minCells int) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("coarsen panicked on %q (levels=%d minCells=%d): %v", truncate(input), levels, minCells, p)
			}
		}()
		nl, err := ReadBinary(bytes.NewReader(input))
		if err != nil || nl.Validate() != nil {
			return
		}
		if levels < 1 {
			levels = 1
		}
		if levels > 6 {
			levels = 6
		}
		if minCells < 1 {
			minCells = 1
		}
		h, err := BuildHierarchy(nl, CoarsenOptions{Levels: levels, MinCells: minCells})
		if err != nil {
			if nl.NumCells() > 0 {
				t.Fatalf("coarsen failed on a valid %d-cell netlist: %v", nl.NumCells(), err)
			}
			return
		}
		checkHierarchyInvariants(t, h)
	})
}
