package netlist

import "tanglefind/internal/ds"

// Components returns the connected components of the netlist as cell
// id lists, largest first. The finder's linear orderings cannot cross
// component boundaries, so callers seeding searches or sanity-checking
// generated circuits use this to see what is reachable.
func (nl *Netlist) Components() [][]CellID {
	n := nl.NumCells()
	if n == 0 {
		return nil
	}
	dsu := ds.NewDSU(n)
	for e := 0; e < nl.NumNets(); e++ {
		pins := nl.NetPins(NetID(e))
		for i := 1; i < len(pins); i++ {
			dsu.Union(pins[0], pins[i])
		}
	}
	byRoot := make(map[CellID][]CellID)
	for c := 0; c < n; c++ {
		r := dsu.Find(CellID(c))
		byRoot[r] = append(byRoot[r], CellID(c))
	}
	out := make([][]CellID, 0, len(byRoot))
	for _, comp := range byRoot {
		out = append(out, comp)
	}
	// Largest first; ties by first cell id for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b []CellID) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	return a[0] < b[0]
}
