package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The .tfnet text format is a minimal portable netlist exchange format:
//
//	tfnet 1
//	cells <numCells>
//	net <name> <cellID> <cellID> ...
//	...
//
// Lines starting with '#' are comments. A cell id prefixed with '*'
// marks a driver pin (the cell drives that net); any '*' marker makes
// the parsed netlist directed (see the package comment). Cell names
// and areas are not serialized — the format exists so generated
// benchmarks can be saved and re-loaded by the CLI tools;
// full-fidelity exchange uses the Bookshelf reader/writer in
// internal/bookshelf or the .tfb binary format in iobin.go (which
// also loads ~an order of magnitude faster).

// Write serializes the netlist in .tfnet form. Driver pins of a
// directed netlist carry the '*' marker.
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "tfnet 1")
	fmt.Fprintf(bw, "cells %d\n", nl.NumCells())
	for n := 0; n < nl.NumNets(); n++ {
		fmt.Fprintf(bw, "net %s", nl.NetName(NetID(n)))
		drv := nl.NetDrivers(NetID(n))
		at := 0
		for _, c := range nl.NetPins(NetID(n)) {
			for at < len(drv) && drv[at] < c {
				at++
			}
			if at < len(drv) && drv[at] == c {
				fmt.Fprintf(bw, " *%d", c)
			} else {
				fmt.Fprintf(bw, " %d", c)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a .tfnet stream produced by Write.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimSpace(sc.Text())
			if t == "" || strings.HasPrefix(t, "#") {
				continue
			}
			return t, true
		}
		return "", false
	}
	hdr, ok := next()
	if !ok || !strings.HasPrefix(hdr, "tfnet ") {
		return nil, fmt.Errorf("netlist: line %d: missing tfnet header", line)
	}
	cellsLine, ok := next()
	if !ok {
		return nil, fmt.Errorf("netlist: line %d: missing cells line", line)
	}
	var numCells int
	if _, err := fmt.Sscanf(cellsLine, "cells %d", &numCells); err != nil {
		return nil, fmt.Errorf("netlist: line %d: bad cells line: %v", line, err)
	}
	if numCells < 0 || numCells > math.MaxInt32 {
		return nil, fmt.Errorf("netlist: line %d: cell count %d out of range", line, numCells)
	}
	var b Builder
	b.AddCells(numCells)
	for {
		t, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(t)
		if fields[0] != "net" || len(fields) < 2 {
			return nil, fmt.Errorf("netlist: line %d: expected net line, got %q", line, t)
		}
		cells := make([]CellID, 0, len(fields)-2)
		var drivers []CellID
		for _, f := range fields[2:] {
			raw, isDrv := strings.CutPrefix(f, "*")
			id, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: bad cell id %q", line, f)
			}
			cells = append(cells, CellID(id))
			if isDrv {
				drivers = append(drivers, CellID(id))
			}
		}
		id := b.AddNet(fields[1], cells...)
		if drivers != nil {
			b.MarkDrivers(id, drivers...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}
	return b.Build()
}
