package netlist

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomTestNetlist builds a deterministic pseudo-random netlist with a
// dense planted block, exercising matched pairs, singletons and
// self-loop elision.
func randomTestNetlist(t testing.TB, cells, nets int, seed int64) *Netlist {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var b Builder
	b.DropDegenerateNets = true
	b.AddCells(cells)
	for i := 0; i < cells; i++ {
		b.SetCellArea(CellID(i), 0.5+r.Float64())
	}
	for e := 0; e < nets; e++ {
		k := 2 + r.Intn(4)
		pins := make([]CellID, k)
		for i := range pins {
			pins[i] = CellID(r.Intn(cells))
		}
		b.AddNet("", pins...)
	}
	// Dense block over the first tenth of the cells.
	blk := cells / 10
	for e := 0; e < blk*3; e++ {
		k := 2 + r.Intn(3)
		pins := make([]CellID, k)
		for i := range pins {
			pins[i] = CellID(r.Intn(blk))
		}
		b.AddNet("", pins...)
	}
	return b.MustBuild()
}

// checkHierarchyInvariants asserts, for every coarsening step of h:
// the fine→coarse map is total and in range, the member lists form a
// partition of the fine cells (disjoint, union = all, matches the
// forward map) with at most two cells per aggregate, area is conserved
// level to level, the coarse netlist is exactly the image of the fine
// nets (pin aggregation + self-loop elision), and the coarse CSR
// passes Validate.
func checkHierarchyInvariants(t testing.TB, h *Hierarchy) {
	t.Helper()
	for l := 0; l+1 < h.NumLevels(); l++ {
		fine, coarse := h.Level(l), h.Level(l+1)
		if err := coarse.Validate(); err != nil {
			t.Fatalf("level %d: coarse netlist invalid: %v", l+1, err)
		}

		// Total map, in range.
		seen := make([]int, coarse.NumCells())
		for c := 0; c < fine.NumCells(); c++ {
			cc := h.CoarseCell(l, CellID(c))
			if cc < 0 || int(cc) >= coarse.NumCells() {
				t.Fatalf("level %d: cell %d maps out of range (%d)", l, c, cc)
			}
			seen[cc]++
		}
		// Partition: members match the forward map, 1-2 per aggregate.
		total := 0
		for cc := 0; cc < coarse.NumCells(); cc++ {
			mem := h.FineCells(l, CellID(cc))
			if len(mem) < 1 || len(mem) > 2 {
				t.Fatalf("level %d: coarse cell %d has %d members", l, cc, len(mem))
			}
			if len(mem) != seen[cc] {
				t.Fatalf("level %d: coarse cell %d members %d != forward-map count %d", l, cc, len(mem), seen[cc])
			}
			for _, f := range mem {
				if h.CoarseCell(l, f) != CellID(cc) {
					t.Fatalf("level %d: member %d of coarse %d maps to %d", l, f, cc, h.CoarseCell(l, f))
				}
			}
			total += len(mem)
		}
		if total != fine.NumCells() {
			t.Fatalf("level %d: members cover %d of %d fine cells", l, total, fine.NumCells())
		}

		// Area conservation.
		if fa, ca := fine.TotalArea(), coarse.TotalArea(); math.Abs(fa-ca) > 1e-6*math.Max(1, fa) {
			t.Fatalf("level %d: area not conserved: fine %g coarse %g", l, fa, ca)
		}

		// Pin aggregation: the coarse nets are exactly the fine nets
		// with >= 2 distinct coarse endpoints, in fine net order, each
		// holding the sorted distinct mapped pins.
		cn := 0
		for e := 0; e < fine.NumNets(); e++ {
			set := map[CellID]bool{}
			for _, c := range fine.NetPins(NetID(e)) {
				set[h.CoarseCell(l, c)] = true
			}
			if len(set) < 2 {
				continue // self-loop: elided
			}
			if cn >= coarse.NumNets() {
				t.Fatalf("level %d: more surviving fine nets than coarse nets", l)
			}
			got := coarse.NetPins(NetID(cn))
			if len(got) != len(set) {
				t.Fatalf("level %d: coarse net %d has %d pins, want %d", l, cn, len(got), len(set))
			}
			for _, p := range got {
				if !set[p] {
					t.Fatalf("level %d: coarse net %d pins unexpected cell %d", l, cn, p)
				}
			}
			if coarse.NetSize(NetID(cn)) > fine.NetSize(NetID(e)) {
				t.Fatalf("level %d: coarse net %d grew: %d > %d pins", l, cn, coarse.NetSize(NetID(cn)), fine.NetSize(NetID(e)))
			}
			cn++
		}
		if cn != coarse.NumNets() {
			t.Fatalf("level %d: %d surviving fine nets but %d coarse nets", l, cn, coarse.NumNets())
		}
	}
}

func TestBuildHierarchyInvariants(t *testing.T) {
	nl := randomTestNetlist(t, 4000, 8000, 7)
	h, err := BuildHierarchy(nl, CoarsenOptions{Levels: 4, MinCells: 100})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatalf("expected at least 2 levels, got %d", h.NumLevels())
	}
	if h.Level(0) != nl {
		t.Fatal("level 0 must be the original netlist")
	}
	for l := 1; l < h.NumLevels(); l++ {
		fineN, coarseN := h.Level(l-1).NumCells(), h.Level(l).NumCells()
		if coarseN >= fineN {
			t.Fatalf("level %d did not shrink: %d -> %d", l, fineN, coarseN)
		}
		t.Logf("level %d: %d cells, %d nets, %d pins", l, coarseN, h.Level(l).NumNets(), h.Level(l).NumPins())
	}
	checkHierarchyInvariants(t, h)
}

// TestHierarchyProjectionRoundTrip checks ExpandDown/ExpandToFinest
// against the forward map: projecting any coarse subset down and
// mapping every resulting cell back up recovers exactly the subset,
// and expansions of disjoint sets stay disjoint.
func TestHierarchyProjectionRoundTrip(t *testing.T) {
	nl := randomTestNetlist(t, 3000, 6000, 11)
	h, err := BuildHierarchy(nl, CoarsenOptions{Levels: 3, MinCells: 50})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 3 {
		t.Fatalf("want 3 levels, got %d", h.NumLevels())
	}
	r := rand.New(rand.NewSource(5))
	for l := 1; l < h.NumLevels(); l++ {
		n := h.Level(l).NumCells()
		pick := map[CellID]bool{}
		for len(pick) < n/4 {
			pick[CellID(r.Intn(n))] = true
		}
		var subset []CellID
		for c := range pick {
			subset = append(subset, c)
		}
		down := h.ExpandDown(l, subset)
		// Round trip: every expanded cell maps back into the subset,
		// and expansion counts add up (partition ⇒ no dup, no loss).
		for _, f := range down {
			if !pick[h.CoarseCell(l-1, f)] {
				t.Fatalf("level %d: expanded cell %d maps outside the subset", l, f)
			}
		}
		wantLen := 0
		for c := range pick {
			wantLen += len(h.FineCells(l-1, c))
		}
		if len(down) != wantLen {
			t.Fatalf("level %d: expansion has %d cells, want %d", l, len(down), wantLen)
		}
		dup := map[CellID]bool{}
		for _, f := range down {
			if dup[f] {
				t.Fatalf("level %d: duplicate cell %d in expansion", l, f)
			}
			dup[f] = true
		}
		// Finest projection of all of level l is all of level 0.
		all := make([]CellID, n)
		for i := range all {
			all[i] = CellID(i)
		}
		if got := h.ExpandToFinest(l, all); len(got) != nl.NumCells() {
			t.Fatalf("level %d: full expansion has %d cells, want %d", l, len(got), nl.NumCells())
		}
	}
	// Representative must be a member of the expansion.
	for l := 1; l < h.NumLevels(); l++ {
		c := CellID(r.Intn(h.Level(l).NumCells()))
		rep := h.RepresentativeAtFinest(l, c)
		found := false
		for _, f := range h.ExpandToFinest(l, []CellID{c}) {
			if f == rep {
				found = true
			}
		}
		if !found {
			t.Fatalf("level %d: representative %d not in expansion of %d", l, rep, c)
		}
	}
}

// TestHierarchyTFBRoundTrip asserts the .tfb binary round-trip holds
// at every level — coarse netlists are ordinary Builder products.
func TestHierarchyTFBRoundTrip(t *testing.T) {
	nl := randomTestNetlist(t, 2000, 4000, 3)
	h, err := BuildHierarchy(nl, CoarsenOptions{Levels: 3, MinCells: 50})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < h.NumLevels(); l++ {
		var buf bytes.Buffer
		if err := h.Level(l).WriteBinary(&buf); err != nil {
			t.Fatalf("level %d: write: %v", l, err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("level %d: read: %v", l, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("level %d: round-tripped netlist invalid: %v", l, err)
		}
		a, b := h.Level(l).Stats(), got.Stats()
		if a != b {
			t.Fatalf("level %d: stats changed across round trip: %+v vs %+v", l, a, b)
		}
	}
}

// TestBuildHierarchyStops checks the floor and progress guards.
func TestBuildHierarchyStops(t *testing.T) {
	nl := randomTestNetlist(t, 500, 1000, 9)
	// MinCells above the netlist size: no coarsening happens.
	h, err := BuildHierarchy(nl, CoarsenOptions{Levels: 5, MinCells: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 1 {
		t.Fatalf("expected 1 level, got %d", h.NumLevels())
	}
	// A netlist with no nets cannot match anything: progress guard.
	var b Builder
	b.AddCells(64)
	iso := b.MustBuild()
	h, err = BuildHierarchy(iso, CoarsenOptions{Levels: 4, MinCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 1 {
		t.Fatalf("isolated cells coarsened: %d levels", h.NumLevels())
	}
	// Empty netlist is a descriptive error.
	if _, err := BuildHierarchy(&Netlist{}, CoarsenOptions{Levels: 2}); err == nil {
		t.Fatal("empty netlist accepted")
	}
}

// TestCoarsenDeterminism: identical inputs must produce identical
// hierarchies (the engine's reproducibility depends on it).
func TestCoarsenDeterminism(t *testing.T) {
	nl := randomTestNetlist(t, 2500, 5000, 13)
	h1, err := BuildHierarchy(nl, CoarsenOptions{Levels: 3, MinCells: 50})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := BuildHierarchy(nl, CoarsenOptions{Levels: 3, MinCells: 50})
	if err != nil {
		t.Fatal(err)
	}
	if h1.NumLevels() != h2.NumLevels() {
		t.Fatalf("level counts differ: %d vs %d", h1.NumLevels(), h2.NumLevels())
	}
	for l := 0; l+1 < h1.NumLevels(); l++ {
		for c := 0; c < h1.Level(l).NumCells(); c++ {
			if h1.CoarseCell(l, CellID(c)) != h2.CoarseCell(l, CellID(c)) {
				t.Fatalf("level %d: cell %d maps differently across runs", l, c)
			}
		}
	}
}
