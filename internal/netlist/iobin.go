package netlist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// The .tfb binary format stores the net→cell direction of the CSR
// incidence structure verbatim, so loading is O(pins): read two flat
// arrays, derive the cell side with one counting pass, done — no
// tokenizing, no Builder dedupe. Layout (all integers little-endian):
//
//	magic     [4]byte  "TFBN"
//	version   uint32   (1 or 2)
//	flags     uint32   bit0 net names, bit1 cell names, bit2 areas,
//	                   bit3 drivers (version 2 only)
//	numCells  uint32
//	numNets   uint32
//	numPins   uint64
//	netPinOff uint32 × (numNets+1)   CSR offsets into netPinCell
//	netPinCell uint32 × numPins      per-net runs strictly ascending
//	[drivers]    uint64 numDrvPins, then uint32 × (numNets+1) offsets
//	             and uint32 × numDrvPins driver cells (flag bit3):
//	             the per-net driver runs, each a sorted subset of the
//	             net's pin run
//	[net names]  per net: uvarint length + bytes   (flag bit0)
//	[cell names] per cell: uvarint length + bytes  (flag bit1)
//	[areas]      float64 bits uint64 × numCells    (flag bit2)
//
// Format versions:
//
//	.tfnet 1 — text, header "tfnet 1" (io.go; `*`-prefixed pins mark drivers)
//	.tfb   1 — binary CSR, magic "TFBN" version 1 (this file)
//	.tfb   2 — version 1 plus the optional driver section (flag bit3)
//
// Undirected netlists always serialize as version 1, byte-identical
// to what older writers produced, so existing content digests are
// stable; only a directed netlist emits version 2, which old readers
// reject loudly instead of silently dropping the annotation.
//
// The reader rejects any other version, validates ids and sortedness
// while decoding (so a loaded netlist always passes Validate), and
// never allocates more than the bytes actually present in the stream —
// a truncated header claiming 2^31 pins fails on the first short read,
// not with a 16 GiB allocation.

var tfbMagic = [4]byte{'T', 'F', 'B', 'N'}

// tfbVersion is the baseline binary format version; tfbVersionDrivers
// adds the optional driver section.
const (
	tfbVersion        = 1
	tfbVersionDrivers = 2
)

const (
	tfbFlagNetNames  = 1 << 0
	tfbFlagCellNames = 1 << 1
	tfbFlagAreas     = 1 << 2
	tfbFlagDrivers   = 1 << 3
)

// maxStringLen bounds a single serialized name; anything longer is a
// corrupt or adversarial stream.
const maxStringLen = 1 << 20

// allocChunk caps speculative slice growth while decoding: arrays are
// grown in chunks as bytes actually arrive, so a lying header cannot
// force a huge allocation.
const allocChunk = 1 << 16

// WriteBinary serializes the netlist in .tfb form.
func (nl *Netlist) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var flags uint32
	if hasAnyName(nl.netNames) {
		flags |= tfbFlagNetNames
	}
	if hasAnyName(nl.cellNames) {
		flags |= tfbFlagCellNames
	}
	if nl.cellArea != nil && !allUnitArea(nl.cellArea) {
		flags |= tfbFlagAreas
	}
	version := uint32(tfbVersion)
	if nl.Directed() {
		flags |= tfbFlagDrivers
		version = tfbVersionDrivers
	}
	bw.Write(tfbMagic[:])
	writeU32(bw, version)
	writeU32(bw, flags)
	writeU32(bw, uint32(nl.NumCells()))
	writeU32(bw, uint32(nl.NumNets()))
	writeU64(bw, uint64(nl.NumPins()))
	for _, off := range nl.netPinOff {
		writeU32(bw, uint32(off))
	}
	if nl.NumNets() == 0 {
		// The zero-value netlist has no offset array; emit the
		// implicit single 0 so the reader sees a well-formed CSR.
		if len(nl.netPinOff) == 0 {
			writeU32(bw, 0)
		}
	}
	for _, c := range nl.netPinCell {
		writeU32(bw, uint32(c))
	}
	if flags&tfbFlagDrivers != 0 {
		writeU64(bw, uint64(len(nl.netDrvCell)))
		for _, off := range nl.netDrvOff {
			writeU32(bw, uint32(off))
		}
		if len(nl.netDrvOff) == 0 {
			writeU32(bw, 0) // zero-net directed netlist: implicit single 0
		}
		for _, c := range nl.netDrvCell {
			writeU32(bw, uint32(c))
		}
	}
	if flags&tfbFlagNetNames != 0 {
		writeStrings(bw, nl.netNames, nl.NumNets())
	}
	if flags&tfbFlagCellNames != 0 {
		writeStrings(bw, nl.cellNames, nl.NumCells())
	}
	if flags&tfbFlagAreas != 0 {
		for _, a := range nl.cellArea {
			writeU64(bw, math.Float64bits(a))
		}
	}
	return bw.Flush()
}

// ReadBinary parses a .tfb stream produced by WriteBinary.
func ReadBinary(r io.Reader) (*Netlist, error) {
	br := bufio.NewReader(r)
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netlist: tfb: short header: %w", err)
	}
	if [4]byte(hdr[0:4]) != tfbMagic {
		return nil, fmt.Errorf("netlist: tfb: bad magic %q", hdr[0:4])
	}
	le := binary.LittleEndian
	version := le.Uint32(hdr[4:8])
	if version != tfbVersion && version != tfbVersionDrivers {
		return nil, fmt.Errorf("netlist: tfb: unsupported version %d (want %d or %d)", version, tfbVersion, tfbVersionDrivers)
	}
	flags := le.Uint32(hdr[8:12])
	if version == tfbVersion && flags&tfbFlagDrivers != 0 {
		return nil, fmt.Errorf("netlist: tfb: driver flag requires version %d", tfbVersionDrivers)
	}
	numCells := int(le.Uint32(hdr[12:16]))
	numNets := int(le.Uint32(hdr[16:20]))
	numPins64 := le.Uint64(hdr[20:28])
	if numCells > math.MaxInt32 || numNets > math.MaxInt32 || numPins64 > math.MaxInt32 {
		return nil, fmt.Errorf("netlist: tfb: sizes out of range (%d cells, %d nets, %d pins)", numCells, numNets, numPins64)
	}
	numPins := int(numPins64)
	// Every other size is backed by stream bytes (offsets: 4 per net,
	// pins: 4 each), but numCells is a bare header claim that drives
	// O(numCells) allocations in fromNetCSR. Beyond a 1M-cell
	// allowance, demand pin evidence — real netlists average ~4 pins
	// per cell; a stream claiming over 1M cells with fewer than half a
	// pin per cell is a crafted allocation bomb, not a netlist.
	if numCells > 1<<20 && numCells > 2*numPins {
		return nil, fmt.Errorf("netlist: tfb: implausible header: %d cells backed by only %d pins", numCells, numPins)
	}

	off, err := readU32sAsI32(br, numNets+1)
	if err != nil {
		return nil, fmt.Errorf("netlist: tfb: offsets: %w", err)
	}
	if off[0] != 0 || int(off[numNets]) != numPins {
		return nil, fmt.Errorf("netlist: tfb: offsets span [%d,%d], want [0,%d]", off[0], off[numNets], numPins)
	}
	for i := 1; i <= numNets; i++ {
		if off[i] < off[i-1] {
			return nil, fmt.Errorf("netlist: tfb: offsets decrease at net %d", i-1)
		}
	}
	pins, err := readU32sAsI32(br, numPins)
	if err != nil {
		return nil, fmt.Errorf("netlist: tfb: pins: %w", err)
	}
	for n := 0; n < numNets; n++ {
		run := pins[off[n]:off[n+1]]
		for i, c := range run {
			if c < 0 || int(c) >= numCells {
				return nil, fmt.Errorf("netlist: tfb: net %d pins out-of-range cell %d", n, c)
			}
			if i > 0 && run[i-1] >= c {
				return nil, fmt.Errorf("netlist: tfb: net %d pin run not strictly ascending", n)
			}
		}
	}
	var drvOff []int32
	var drvCell []CellID
	if flags&tfbFlagDrivers != 0 {
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, fmt.Errorf("netlist: tfb: driver count: %w", err)
		}
		numDrv64 := le.Uint64(cnt[:])
		if numDrv64 > uint64(numPins) {
			return nil, fmt.Errorf("netlist: tfb: %d driver pins exceed %d pins", numDrv64, numPins)
		}
		numDrv := int(numDrv64)
		if drvOff, err = readU32sAsI32(br, numNets+1); err != nil {
			return nil, fmt.Errorf("netlist: tfb: driver offsets: %w", err)
		}
		if drvOff[0] != 0 || int(drvOff[numNets]) != numDrv {
			return nil, fmt.Errorf("netlist: tfb: driver offsets span [%d,%d], want [0,%d]", drvOff[0], drvOff[numNets], numDrv)
		}
		for i := 1; i <= numNets; i++ {
			if drvOff[i] < drvOff[i-1] {
				return nil, fmt.Errorf("netlist: tfb: driver offsets decrease at net %d", i-1)
			}
			if drvOff[i]-drvOff[i-1] > off[i]-off[i-1] {
				return nil, fmt.Errorf("netlist: tfb: net %d has more drivers than pins", i-1)
			}
		}
		drvCell, err = readU32sAsI32(br, numDrv)
		if err != nil {
			return nil, fmt.Errorf("netlist: tfb: driver pins: %w", err)
		}
		for n := 0; n < numNets; n++ {
			drv := drvCell[drvOff[n]:drvOff[n+1]]
			run := pins[off[n]:off[n+1]]
			at := 0
			for i, c := range drv {
				if i > 0 && drv[i-1] >= c {
					return nil, fmt.Errorf("netlist: tfb: net %d driver run not strictly ascending", n)
				}
				for at < len(run) && run[at] < c {
					at++
				}
				if at >= len(run) || run[at] != c {
					return nil, fmt.Errorf("netlist: tfb: net %d driver %d is not one of its pins", n, c)
				}
			}
		}
	}
	var netNames, cellNames []string
	if flags&tfbFlagNetNames != 0 {
		if netNames, err = readStrings(br, numNets); err != nil {
			return nil, fmt.Errorf("netlist: tfb: net names: %w", err)
		}
	}
	if flags&tfbFlagCellNames != 0 {
		if cellNames, err = readStrings(br, numCells); err != nil {
			return nil, fmt.Errorf("netlist: tfb: cell names: %w", err)
		}
	}
	var areas []float64
	if flags&tfbFlagAreas != 0 {
		areas = make([]float64, 0, min(numCells, allocChunk))
		var buf [8]byte
		for i := 0; i < numCells; i++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("netlist: tfb: areas: %w", err)
			}
			a := math.Float64frombits(le.Uint64(buf[:]))
			if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
				return nil, fmt.Errorf("netlist: tfb: cell %d has invalid area %v", i, a)
			}
			areas = append(areas, a)
		}
	}
	nl := fromNetCSR(numCells, off, pins, netNames, cellNames, areas)
	if flags&tfbFlagDrivers != 0 {
		nl.attachDrivers(drvOff, drvCell)
	}
	return nl, nil
}

// ReadAuto parses a netlist from r, autodetecting the format by
// content: a "TFBN" magic selects the .tfb binary reader, anything
// else falls through to the .tfnet text parser.
func ReadAuto(r io.Reader) (*Netlist, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(len(tfbMagic))
	if len(head) == len(tfbMagic) && [4]byte(head) == tfbMagic {
		return ReadBinary(br)
	}
	return Read(br)
}

// ReadFile loads a netlist from path, autodetecting the format by
// content (see ReadAuto).
func ReadFile(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}

// WriteFile saves the netlist to path, picking the format from the
// extension: ".tfb" writes the binary form, everything else the
// .tfnet text form.
func (nl *Netlist) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.EqualFold(filepath.Ext(path), ".tfb") {
		werr = nl.WriteBinary(f)
	} else {
		werr = nl.Write(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func hasAnyName(names []string) bool {
	for _, s := range names {
		if s != "" {
			return true
		}
	}
	return false
}

func allUnitArea(area []float64) bool {
	for _, a := range area {
		if a != 1 {
			return false
		}
	}
	return true
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeStrings(w *bufio.Writer, names []string, n int) {
	var b [binary.MaxVarintLen64]byte
	for i := 0; i < n; i++ {
		s := ""
		if i < len(names) {
			s = names[i]
		}
		w.Write(b[:binary.PutUvarint(b[:], uint64(len(s)))])
		w.WriteString(s)
	}
}

// readU32sAsI32 decodes n little-endian uint32 values that must fit in
// int32, growing the result chunk by chunk so the allocation tracks
// the bytes actually read.
func readU32sAsI32(r *bufio.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, allocChunk))
	var buf [4 * 1024]byte
	for len(out) < n {
		want := min((n-len(out))*4, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i += 4 {
			v := binary.LittleEndian.Uint32(buf[i : i+4])
			if v > math.MaxInt32 {
				return nil, fmt.Errorf("value %d overflows int32", v)
			}
			out = append(out, int32(v))
		}
	}
	return out, nil
}

func readStrings(r *bufio.Reader, n int) ([]string, error) {
	out := make([]string, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if l > maxStringLen {
			return nil, fmt.Errorf("name %d length %d exceeds limit", i, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		out = append(out, string(b))
	}
	return out, nil
}
