//go:build race

package netlist

const raceEnabled = true
