package netlist

import (
	"fmt"
	"sort"
)

// Builder incrementally assembles a Netlist. It dedupes repeated
// (cell, net) incidences so the finished netlist has set semantics, and
// can optionally drop degenerate nets (fewer than two distinct cells).
//
// The zero value is ready to use.
type Builder struct {
	netCells  [][]CellID
	netNames  []string
	cellNames []string
	cellArea  []float64
	numCells  int

	// DropDegenerateNets discards nets with < 2 distinct cells at
	// Build time. Single-pin nets can never be cut and only perturb
	// the average pin count, so generators usually drop them.
	DropDegenerateNets bool
}

// AddCell registers a new cell and returns its id. name may be empty.
func (b *Builder) AddCell(name string) CellID {
	id := CellID(b.numCells)
	b.numCells++
	b.cellNames = append(b.cellNames, name)
	b.cellArea = append(b.cellArea, 1)
	return id
}

// AddCells registers n anonymous unit-area cells and returns the id of
// the first; the ids are contiguous.
func (b *Builder) AddCells(n int) CellID {
	first := CellID(b.numCells)
	b.numCells += n
	for i := 0; i < n; i++ {
		b.cellNames = append(b.cellNames, "")
		b.cellArea = append(b.cellArea, 1)
	}
	return first
}

// SetCellArea overrides the placement area of cell c.
func (b *Builder) SetCellArea(c CellID, area float64) { b.cellArea[c] = area }

// NumCells returns the number of cells added so far.
func (b *Builder) NumCells() int { return b.numCells }

// AddNet registers a net pinning the given cells and returns its id.
// Duplicate cells within one net are collapsed. name may be empty.
func (b *Builder) AddNet(name string, cells ...CellID) NetID {
	id := NetID(len(b.netCells))
	cp := make([]CellID, len(cells))
	copy(cp, cells)
	b.netCells = append(b.netCells, cp)
	b.netNames = append(b.netNames, name)
	return id
}

// Build finalizes the netlist. It returns an error if any net pins an
// unknown cell id.
func (b *Builder) Build() (*Netlist, error) {
	nl := &Netlist{
		cellPins:  make([][]NetID, b.numCells),
		cellNames: b.cellNames,
		cellArea:  b.cellArea,
	}
	degree := make([]int32, b.numCells)
	type finalNet struct {
		name  string
		cells []CellID
	}
	finals := make([]finalNet, 0, len(b.netCells))
	for i, cells := range b.netCells {
		uniq := dedupe(cells)
		for _, c := range uniq {
			if c < 0 || int(c) >= b.numCells {
				return nil, fmt.Errorf("netlist: net %q pins unknown cell %d", b.netNames[i], c)
			}
		}
		if b.DropDegenerateNets && len(uniq) < 2 {
			continue
		}
		finals = append(finals, finalNet{b.netNames[i], uniq})
	}
	nl.netPins = make([][]CellID, len(finals))
	nl.netNames = make([]string, len(finals))
	for i, fn := range finals {
		nl.netPins[i] = fn.cells
		nl.netNames[i] = fn.name
		for _, c := range fn.cells {
			degree[c]++
		}
		nl.numPins += len(fn.cells)
	}
	for c := range nl.cellPins {
		nl.cellPins[c] = make([]NetID, 0, degree[c])
	}
	for n, cells := range nl.netPins {
		for _, c := range cells {
			nl.cellPins[c] = append(nl.cellPins[c], NetID(n))
		}
	}
	return nl, nil
}

// MustBuild is Build but panics on error; for tests and generators
// whose inputs are constructed correctly by design.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}

func dedupe(cells []CellID) []CellID {
	if len(cells) <= 1 {
		return cells
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	out := cells[:1]
	for _, c := range cells[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
