package netlist

import (
	"fmt"
	"math"
	"sort"
)

// Builder incrementally assembles a Netlist. It dedupes repeated
// (cell, net) incidences so the finished netlist has set semantics, and
// can optionally drop degenerate nets (fewer than two distinct cells).
//
// The zero value is ready to use.
type Builder struct {
	netCells  [][]CellID
	netNames  []string
	cellNames []string
	cellArea  []float64
	numCells  int

	// Direction annotation: per-net driver lists, parallel to
	// netCells. directed flips on the first MarkDrivers/AddDrivenNet
	// call; a directed netlist may still contain nets with no drivers
	// (undriven — a lint finding, not missing data).
	netDrivers [][]CellID
	directed   bool

	// DropDegenerateNets discards nets with < 2 distinct cells at
	// Build time. Single-pin nets can never be cut and only perturb
	// the average pin count, so generators usually drop them.
	DropDegenerateNets bool
}

// AddCell registers a new cell and returns its id. name may be empty.
func (b *Builder) AddCell(name string) CellID {
	id := CellID(b.numCells)
	b.numCells++
	b.cellNames = append(b.cellNames, name)
	b.cellArea = append(b.cellArea, 1)
	return id
}

// AddCells registers n anonymous unit-area cells and returns the id of
// the first; the ids are contiguous.
func (b *Builder) AddCells(n int) CellID {
	first := CellID(b.numCells)
	b.numCells += n
	for i := 0; i < n; i++ {
		b.cellNames = append(b.cellNames, "")
		b.cellArea = append(b.cellArea, 1)
	}
	return first
}

// SetCellArea overrides the placement area of cell c.
func (b *Builder) SetCellArea(c CellID, area float64) { b.cellArea[c] = area }

// NumCells returns the number of cells added so far.
func (b *Builder) NumCells() int { return b.numCells }

// AddNet registers a net pinning the given cells and returns its id.
// Duplicate cells within one net are collapsed. name may be empty.
func (b *Builder) AddNet(name string, cells ...CellID) NetID {
	id := NetID(len(b.netCells))
	cp := make([]CellID, len(cells))
	copy(cp, cells)
	b.netCells = append(b.netCells, cp)
	b.netNames = append(b.netNames, name)
	b.netDrivers = append(b.netDrivers, nil)
	return id
}

// AddDrivenNet registers a net whose pin set is drivers ∪ sinks and
// records the drivers, marking the netlist directed. A cell listed in
// both slices counts once as a pin and stays a driver.
func (b *Builder) AddDrivenNet(name string, drivers []CellID, sinks ...CellID) NetID {
	pins := make([]CellID, 0, len(drivers)+len(sinks))
	pins = append(pins, drivers...)
	pins = append(pins, sinks...)
	id := b.AddNet(name, pins...)
	b.MarkDrivers(id, drivers...)
	return id
}

// MarkDrivers records the given cells as drivers of net n (appending
// to any already marked) and marks the netlist directed. Every driver
// must be one of the net's pins by Build time.
func (b *Builder) MarkDrivers(n NetID, drivers ...CellID) {
	b.directed = true
	b.netDrivers[n] = append(b.netDrivers[n], drivers...)
}

// Build finalizes the netlist into its flat CSR form with two counting
// passes (net side sizes, then cell side degrees) and no per-list
// allocations. It returns an error if any net pins an unknown cell id
// or the total pin count overflows the int32 offset space.
func (b *Builder) Build() (*Netlist, error) {
	// Dedupe every net in place and validate ids, remembering which
	// nets survive and the total pin count.
	keep := make([][]CellID, 0, len(b.netCells))
	names := make([]string, 0, len(b.netCells))
	var drivers [][]CellID
	if b.directed {
		drivers = make([][]CellID, 0, len(b.netCells))
	}
	totalPins, totalDrv := 0, 0
	for i, cells := range b.netCells {
		uniq := dedupe(cells)
		for _, c := range uniq {
			if c < 0 || int(c) >= b.numCells {
				return nil, fmt.Errorf("netlist: net %q pins unknown cell %d", b.netNames[i], c)
			}
		}
		if b.DropDegenerateNets && len(uniq) < 2 {
			continue
		}
		if b.directed {
			drv := dedupe(b.netDrivers[i])
			if err := checkSubset(drv, uniq); err != nil {
				return nil, fmt.Errorf("netlist: net %q: %w", b.netNames[i], err)
			}
			drivers = append(drivers, drv)
			totalDrv += len(drv)
		}
		keep = append(keep, uniq)
		names = append(names, b.netNames[i])
		totalPins += len(uniq)
	}
	if totalPins > math.MaxInt32 {
		return nil, fmt.Errorf("netlist: %d pins overflow the int32 CSR offset space", totalPins)
	}

	nl := &Netlist{
		cellPinOff: make([]int32, b.numCells+1),
		cellPinNet: make([]NetID, totalPins),
		netPinOff:  make([]int32, len(keep)+1),
		netPinCell: make([]CellID, totalPins),
		cellNames:  b.cellNames,
		netNames:   names,
		cellArea:   b.cellArea,
	}
	// Net side: concatenate the deduped (sorted) pin lists.
	at := int32(0)
	for n, cells := range keep {
		nl.netPinOff[n] = at
		copy(nl.netPinCell[at:], cells)
		at += int32(len(cells))
		// Count cell degrees in the same pass (shifted by one so the
		// prefix sum below lands the counts as offsets).
		for _, c := range cells {
			nl.cellPinOff[c+1]++
		}
	}
	nl.netPinOff[len(keep)] = at
	// Cell side: prefix-sum the degrees into offsets, then scatter the
	// nets. Visiting nets in ascending id order keeps every cell's pin
	// run strictly ascending — the CSR invariant.
	for c := 0; c < b.numCells; c++ {
		nl.cellPinOff[c+1] += nl.cellPinOff[c]
	}
	cursor := make([]int32, b.numCells)
	for n, cells := range keep {
		for _, c := range cells {
			nl.cellPinNet[nl.cellPinOff[c]+cursor[c]] = NetID(n)
			cursor[c]++
		}
	}
	if b.directed {
		drvOff := make([]int32, len(keep)+1)
		drvCell := make([]CellID, totalDrv)
		dat := int32(0)
		for n, drv := range drivers {
			drvOff[n] = dat
			dat += int32(copy(drvCell[dat:], drv))
		}
		drvOff[len(keep)] = dat
		nl.attachDrivers(drvOff, drvCell)
	}
	nl.initScratch()
	return nl, nil
}

// checkSubset verifies sub ⊆ super for two ascending runs.
func checkSubset(sub, super []CellID) error {
	at := 0
	for _, c := range sub {
		for at < len(super) && super[at] < c {
			at++
		}
		if at >= len(super) || super[at] != c {
			return fmt.Errorf("driver %d is not one of the net's pins", c)
		}
	}
	return nil
}

// MustBuild is Build but panics on error; for tests and generators
// whose inputs are constructed correctly by design.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}

// fromNetCSR constructs a Netlist directly from the net→cell direction
// of the incidence structure, taking ownership of the given slices and
// deriving the cell side in O(pins). Every pin run must already be
// strictly ascending with ids in range — callers (the .tfb reader,
// View.Materialize) verify that before handing the arrays over.
// Optional names/areas may be nil or shorter than the id space.
func fromNetCSR(numCells int, netPinOff []int32, netPinCell []CellID, netNames, cellNames []string, cellArea []float64) *Netlist {
	nl := &Netlist{
		cellPinOff: make([]int32, numCells+1),
		cellPinNet: make([]NetID, len(netPinCell)),
		netPinOff:  netPinOff,
		netPinCell: netPinCell,
		cellNames:  cellNames,
		netNames:   netNames,
		cellArea:   cellArea,
	}
	for _, c := range netPinCell {
		nl.cellPinOff[c+1]++
	}
	for c := 0; c < numCells; c++ {
		nl.cellPinOff[c+1] += nl.cellPinOff[c]
	}
	cursor := make([]int32, numCells)
	numNets := len(netPinOff) - 1
	for n := 0; n < numNets; n++ {
		for _, c := range netPinCell[netPinOff[n]:netPinOff[n+1]] {
			nl.cellPinNet[nl.cellPinOff[c]+cursor[c]] = NetID(n)
			cursor[c]++
		}
	}
	nl.initScratch()
	return nl
}

func dedupe(cells []CellID) []CellID {
	if len(cells) <= 1 {
		return cells
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	out := cells[:1]
	for _, c := range cells[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
