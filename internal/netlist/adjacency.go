package netlist

import "sort"

// Adjacency is a weighted cell-to-cell graph derived from the
// hypergraph by clique expansion: every net e contributes an edge of
// weight 1/(|e|-1) between each pair of its cells, and parallel edges
// are merged by summing weights.
//
// The baselines from the paper's related-work chapter — degree
// separation, (K,L)-connectivity, edge separability, adhesion — are all
// defined on an ordinary graph, so they operate on this expansion.
type Adjacency struct {
	Start  []int32   // CSR offsets, len NumCells+1
	Adj    []CellID  // neighbor ids
	Weight []float64 // merged clique weights, parallel to Adj
}

// Degree returns the number of distinct neighbors of cell c.
func (a *Adjacency) Degree(c CellID) int { return int(a.Start[c+1] - a.Start[c]) }

// NeighborsOf returns the neighbor slice of cell c (do not modify).
func (a *Adjacency) NeighborsOf(c CellID) []CellID { return a.Adj[a.Start[c]:a.Start[c+1]] }

// WeightsOf returns the edge weights parallel to NeighborsOf(c).
func (a *Adjacency) WeightsOf(c CellID) []float64 { return a.Weight[a.Start[c]:a.Start[c+1]] }

// CliqueExpand builds the weighted adjacency graph. Nets larger than
// maxNetSize are skipped (0 means no limit): expanding a 10K-pin clock
// net would add 10^8 edges while carrying almost no clustering signal,
// which is the same pruning every clustering tool in the literature
// applies.
func (nl *Netlist) CliqueExpand(maxNetSize int) *Adjacency {
	n := nl.NumCells()
	type edge struct {
		to CellID
		w  float64
	}
	adj := make([][]edge, n)
	for _, cells := range nl.netPins {
		k := len(cells)
		if k < 2 || (maxNetSize > 0 && k > maxNetSize) {
			continue
		}
		w := 1.0 / float64(k-1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				adj[cells[i]] = append(adj[cells[i]], edge{cells[j], w})
				adj[cells[j]] = append(adj[cells[j]], edge{cells[i], w})
			}
		}
	}
	out := &Adjacency{Start: make([]int32, n+1)}
	for c := 0; c < n; c++ {
		es := adj[c]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		// Merge parallel edges.
		m := 0
		for i := 0; i < len(es); {
			j := i
			w := 0.0
			for j < len(es) && es[j].to == es[i].to {
				w += es[j].w
				j++
			}
			es[m] = edge{es[i].to, w}
			m++
			i = j
		}
		es = es[:m]
		out.Start[c+1] = out.Start[c] + int32(m)
		for _, e := range es {
			out.Adj = append(out.Adj, e.to)
			out.Weight = append(out.Weight, e.w)
		}
		adj[c] = nil
	}
	return out
}
