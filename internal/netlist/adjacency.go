package netlist

import "math"

// Adjacency is a weighted cell-to-cell graph derived from the
// hypergraph by clique expansion: every net e contributes an edge of
// weight 1/(|e|-1) between each pair of its cells, and parallel edges
// are merged by summing weights.
//
// The baselines from the paper's related-work chapter — degree
// separation, (K,L)-connectivity, edge separability, adhesion — are all
// defined on an ordinary graph, so they operate on this expansion.
type Adjacency struct {
	Start  []int32   // CSR offsets, len NumCells+1
	Adj    []CellID  // neighbor ids
	Weight []float64 // merged clique weights, parallel to Adj
}

// Degree returns the number of distinct neighbors of cell c.
func (a *Adjacency) Degree(c CellID) int { return int(a.Start[c+1] - a.Start[c]) }

// NeighborsOf returns the neighbor slice of cell c (do not modify).
func (a *Adjacency) NeighborsOf(c CellID) []CellID { return a.Adj[a.Start[c]:a.Start[c+1]] }

// WeightsOf returns the edge weights parallel to NeighborsOf(c).
func (a *Adjacency) WeightsOf(c CellID) []float64 { return a.Weight[a.Start[c]:a.Start[c+1]] }

// sortPairs sorts one cell's raw edge range by neighbor id, keeping
// the weight array parallel, without boxing an interface — so
// CliqueExpand stays free of per-cell allocations. Short runs (the
// common case: a cell's pre-merge degree is typically tens) use
// binary-insertion sort; hub cells — a clock or reset buffer on tens
// of thousands of small nets can have a raw degree far beyond what
// maxNetSize bounds — fall back to heapsort to stay O(d log d).
func sortPairs(adj []CellID, w []float64) {
	if len(adj) > 48 {
		heapSortPairs(adj, w)
		return
	}
	for i := 1; i < len(adj); i++ {
		ai, wi := adj[i], w[i]
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if adj[mid] <= ai {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(adj[lo+1:i+1], adj[lo:i])
		copy(w[lo+1:i+1], w[lo:i])
		adj[lo], w[lo] = ai, wi
	}
}

// heapSortPairs is an in-place, allocation-free heapsort over the
// parallel (adj, w) arrays. Unstable — but so was the seed
// implementation's sort.Slice, and equal-id weights only reorder the
// float additions the merge performs, not the resulting edge set.
func heapSortPairs(adj []CellID, w []float64) {
	n := len(adj)
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && adj[child+1] > adj[child] {
				child++
			}
			if adj[root] >= adj[child] {
				return
			}
			adj[root], adj[child] = adj[child], adj[root]
			w[root], w[child] = w[child], w[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for end := n - 1; end > 0; end-- {
		adj[0], adj[end] = adj[end], adj[0]
		w[0], w[end] = w[end], w[0]
		siftDown(0, end)
	}
}

// CliqueExpand builds the weighted adjacency graph with two counting
// passes over the nets: the first sizes every cell's raw (pre-merge)
// edge range, the second scatters the pairs into two flat arrays.
// Parallel edges are then merged in place per cell, so the build never
// appends into per-cell slices. Nets larger than maxNetSize are
// skipped (0 means no limit): expanding a 10K-pin clock net would add
// 10^8 edges while carrying almost no clustering signal, which is the
// same pruning every clustering tool in the literature applies.
func (nl *Netlist) CliqueExpand(maxNetSize int) *Adjacency {
	n := nl.NumCells()
	numNets := nl.NumNets()
	// Pass 1: every net of size k adds k-1 raw edges to each pin. Raw
	// counts are quadratic in net size — Σ_e k(k-1) can legitimately
	// exceed int32 when huge nets are expanded unpruned — so the
	// offsets accumulate in int64.
	rawStart := make([]int64, n+1)
	for e := 0; e < numNets; e++ {
		k := nl.NetSize(NetID(e))
		if k < 2 || (maxNetSize > 0 && k > maxNetSize) {
			continue
		}
		for _, c := range nl.NetPins(NetID(e)) {
			rawStart[c+1] += int64(k - 1)
		}
	}
	for c := 0; c < n; c++ {
		rawStart[c+1] += rawStart[c]
	}
	total := int(rawStart[n])
	rawAdj := make([]CellID, total)
	rawW := make([]float64, total)
	// Pass 2: scatter the pairs.
	cursor := make([]int64, n)
	for e := 0; e < numNets; e++ {
		k := nl.NetSize(NetID(e))
		if k < 2 || (maxNetSize > 0 && k > maxNetSize) {
			continue
		}
		w := 1.0 / float64(k-1)
		pins := nl.NetPins(NetID(e))
		for i := 0; i < k; i++ {
			ci := pins[i]
			for j := i + 1; j < k; j++ {
				cj := pins[j]
				ai := rawStart[ci] + cursor[ci]
				rawAdj[ai], rawW[ai] = cj, w
				cursor[ci]++
				aj := rawStart[cj] + cursor[cj]
				rawAdj[aj], rawW[aj] = ci, w
				cursor[cj]++
			}
		}
	}
	// Merge parallel edges per cell, compacting the flat arrays in
	// place. The write cursor never overtakes the read range because
	// merging only shrinks runs.
	out := &Adjacency{Start: make([]int32, n+1)}
	w := int64(0)
	for c := 0; c < n; c++ {
		lo, hi := rawStart[c], rawStart[c+1]
		sortPairs(rawAdj[lo:hi], rawW[lo:hi])
		for i := lo; i < hi; {
			to := rawAdj[i]
			sum := 0.0
			for i < hi && rawAdj[i] == to {
				sum += rawW[i]
				i++
			}
			rawAdj[w], rawW[w] = to, sum
			w++
		}
		if w > math.MaxInt32 {
			// Start is int32 CSR like the netlist's; a graph this
			// dense (>2^31 merged edges, ≥24 GiB) must be pruned with
			// maxNetSize rather than silently wrapped.
			panic("netlist: clique expansion exceeds int32 edge offsets; prune with maxNetSize")
		}
		out.Start[c+1] = int32(w)
	}
	out.Adj = rawAdj[:w:w]
	out.Weight = rawW[:w:w]
	return out
}
