package netlist

import (
	"math/rand"
	"testing"
)

// viewFixture builds a netlist with a mix of internal, boundary and
// external nets around the subset {1, 2, 3}.
func viewFixture(t *testing.T) *Netlist {
	t.Helper()
	var b Builder
	b.AddCells(6)
	b.AddNet("inner", 1, 2)    // fully inside
	b.AddNet("span", 1, 2, 3)  // fully inside
	b.AddNet("cut", 2, 4)      // one pin inside -> dropped from view
	b.AddNet("out", 0, 5)      // fully outside
	b.AddNet("mixed", 1, 3, 5) // two pins inside -> kept, restricted
	return b.MustBuild()
}

func TestInducedViewBasics(t *testing.T) {
	nl := viewFixture(t)
	v := nl.InducedView([]CellID{3, 1, 2, 3}) // unsorted, duplicated
	if v.NumCells() != 3 {
		t.Fatalf("NumCells = %d, want 3", v.NumCells())
	}
	// Kept nets: inner (2 in), span (3 in), mixed (2 in).
	if v.NumNets() != 3 {
		t.Fatalf("NumNets = %d, want 3", v.NumNets())
	}
	if v.NumPins() != 2+3+2 {
		t.Fatalf("NumPins = %d, want 7", v.NumPins())
	}
	for i, want := range []CellID{1, 2, 3} {
		if v.GlobalCell(int32(i)) != want {
			t.Errorf("GlobalCell(%d) = %d, want %d", i, v.GlobalCell(int32(i)), want)
		}
		if v.LocalCell(want) != int32(i) {
			t.Errorf("LocalCell(%d) = %d, want %d", want, v.LocalCell(want), i)
		}
	}
	if v.LocalCell(0) != -1 || v.LocalCell(4) != -1 {
		t.Error("outside cells must map to -1")
	}
	if v.LocalNet(2) != -1 || v.LocalNet(3) != -1 {
		t.Error("dropped nets must map to -1")
	}
	// Net "mixed" (global 4) restricted to {1, 3} = locals {0, 2}.
	ln := v.LocalNet(4)
	if ln < 0 {
		t.Fatal("net 4 missing from view")
	}
	if v.NetSize(ln) != 2 {
		t.Errorf("NetSize(mixed) = %d, want 2", v.NetSize(ln))
	}
	var got []int32
	for c := range v.NetPins(ln) {
		got = append(got, c)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1+1 {
		t.Errorf("NetPins(mixed) = %v, want [0 2]", got)
	}
	// Cell 2 (local 1) pins nets inner and span but not the dropped
	// "cut" net.
	var nets []int32
	for n := range v.CellPins(1) {
		nets = append(nets, n)
	}
	if len(nets) != 2 {
		t.Errorf("CellPins(local 1) = %v, want 2 nets", nets)
	}
	if v.CellDegree(1) != 2 {
		t.Errorf("CellDegree(local 1) = %d, want 2", v.CellDegree(1))
	}
	if !v.Has(1) || v.Has(5) {
		t.Error("Has wrong")
	}
}

func TestViewMaterializeEquivalence(t *testing.T) {
	// Property: Materialize must equal the induced netlist built the
	// slow way through a Builder with DropDegenerateNets.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var b Builder
		n := 5 + r.Intn(40)
		b.AddCells(n)
		for i := 0; i < n; i++ {
			b.SetCellArea(CellID(i), 1+float64(r.Intn(4)))
		}
		nets := 1 + r.Intn(60)
		for i := 0; i < nets; i++ {
			sz := 1 + r.Intn(6)
			pins := make([]CellID, sz)
			for j := range pins {
				pins[j] = CellID(r.Intn(n))
			}
			b.AddNet("", pins...)
		}
		nl := b.MustBuild()
		var members []CellID
		for c := 0; c < n; c++ {
			if r.Intn(2) == 0 {
				members = append(members, CellID(c))
			}
		}
		v := nl.InducedView(members)
		got := v.Materialize()
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: materialized netlist invalid: %v", trial, err)
		}

		// Reference: rebuild through the Builder.
		var rb Builder
		local := make(map[CellID]CellID)
		for i, c := range v.cells {
			id := rb.AddCell("")
			rb.SetCellArea(id, nl.CellArea(c))
			local[c] = CellID(i)
		}
		rb.DropDegenerateNets = true
		for e := 0; e < nl.NumNets(); e++ {
			var pins []CellID
			for _, c := range nl.NetPins(NetID(e)) {
				if lc, ok := local[c]; ok {
					pins = append(pins, lc)
				}
			}
			rb.AddNet("", pins...)
		}
		want := rb.MustBuild()
		if got.NumCells() != want.NumCells() || got.NumNets() != want.NumNets() || got.NumPins() != want.NumPins() {
			t.Fatalf("trial %d: counts %d/%d/%d want %d/%d/%d", trial,
				got.NumCells(), got.NumNets(), got.NumPins(),
				want.NumCells(), want.NumNets(), want.NumPins())
		}
		for e := 0; e < got.NumNets(); e++ {
			gp, wp := got.NetPins(NetID(e)), want.NetPins(NetID(e))
			if len(gp) != len(wp) {
				t.Fatalf("trial %d: net %d size %d want %d", trial, e, len(gp), len(wp))
			}
			for i := range gp {
				if gp[i] != wp[i] {
					t.Fatalf("trial %d: net %d pin %d = %d want %d", trial, e, i, gp[i], wp[i])
				}
			}
		}
		for c := 0; c < got.NumCells(); c++ {
			if got.CellArea(CellID(c)) != want.CellArea(CellID(c)) {
				t.Fatalf("trial %d: cell %d area differs", trial, c)
			}
		}
	}
}

func TestViewEmpty(t *testing.T) {
	nl := viewFixture(t)
	v := nl.InducedView(nil)
	if v.NumCells() != 0 || v.NumNets() != 0 || v.NumPins() != 0 {
		t.Fatalf("empty view has %d/%d/%d", v.NumCells(), v.NumNets(), v.NumPins())
	}
	m := v.Materialize()
	if m.NumCells() != 0 || m.NumNets() != 0 {
		t.Fatal("materialized empty view not empty")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestViewTraversalDoesNotAllocate(t *testing.T) {
	nl := viewFixture(t)
	v := nl.InducedView([]CellID{1, 2, 3})
	allocs := testing.AllocsPerRun(100, func() {
		sum := 0
		for c := int32(0); c < int32(v.NumCells()); c++ {
			for n := range v.CellPins(c) {
				sum += v.NetSize(n)
			}
		}
		if sum == 0 {
			t.Fatal("no pins traversed")
		}
	})
	// The iterator closures may cost a couple of allocations per cell,
	// but the pin lists themselves must never be copied.
	if allocs > 8 {
		t.Errorf("traversal allocates %v times per run", allocs)
	}
}

func TestSubsetQueriesDoNotAllocatePerCall(t *testing.T) {
	if raceEnabled {
		// The race detector defeats sync.Pool caching, so the scratch
		// reuse this test pins cannot hold under -race.
		t.Skip("allocation counts are unreliable under the race detector")
	}
	nl := viewFixture(t)
	members := []CellID{1, 2, 3}
	// Box the Membership once: converting a slice to an interface
	// allocates, and that caller-side cost is not what this test pins.
	var in Membership = SliceMembers(members)
	// Warm the scratch pool.
	nl.Cut(members, in)
	allocs := testing.AllocsPerRun(200, func() {
		nl.Cut(members, in)
		nl.InternalNets(members, in)
	})
	if allocs > 0 {
		t.Errorf("Cut/InternalNets allocate %v times per call pair", allocs)
	}
}
