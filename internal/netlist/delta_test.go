package netlist

import (
	"bytes"
	"testing"
)

// chainNetlist builds the shared fixture: 8 cells in a chain plus one
// 4-pin net, with names and one non-unit area.
func chainNetlist(t testing.TB) *Netlist {
	t.Helper()
	var b Builder
	for i := 0; i < 8; i++ {
		b.AddCell("u" + string(rune('a'+i)))
	}
	b.SetCellArea(3, 2.5)
	for i := 0; i < 7; i++ {
		b.AddNet("w", CellID(i), CellID(i+1))
	}
	b.AddNet("bus", 0, 2, 4, 6)
	return b.MustBuild()
}

func mustApply(t *testing.T, nl *Netlist, d *Delta) (*Netlist, *DeltaEffect) {
	t.Helper()
	child, eff, err := d.Apply(nl)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := child.Validate(); err != nil {
		t.Fatalf("apply produced invalid netlist: %v", err)
	}
	return child, eff
}

func TestDeltaApplyReconnect(t *testing.T) {
	nl := chainNetlist(t)
	d := &Delta{SetNets: []NetEdit{{Net: 0, Cells: []CellID{0, 5, 5, 3}}}}
	child, eff := mustApply(t, nl, d)
	got := child.NetPins(0)
	want := []CellID{0, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("edited net pins = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edited net pins = %v, want %v", got, want)
		}
	}
	// Dirty: old pins {0,1} ∪ new pins {0,3,5}.
	wantDirty := []CellID{0, 1, 3, 5}
	if len(eff.Dirty) != len(wantDirty) {
		t.Fatalf("dirty = %v, want %v", eff.Dirty, wantDirty)
	}
	for i := range wantDirty {
		if eff.Dirty[i] != wantDirty[i] {
			t.Fatalf("dirty = %v, want %v", eff.Dirty, wantDirty)
		}
	}
	if eff.TouchedNets != 1 {
		t.Errorf("touched nets = %d, want 1", eff.TouchedNets)
	}
	// Untouched structure intact, parent unmodified.
	if child.NetSize(7) != 4 || nl.NetSize(0) != 2 {
		t.Error("untouched runs or parent were modified")
	}
}

func TestDeltaRemoveCellTombstones(t *testing.T) {
	nl := chainNetlist(t)
	child, eff := mustApply(t, nl, &Delta{RemoveCells: []CellID{4, 4}})
	if child.NumCells() != 8 {
		t.Fatalf("mid-range removal changed cell count to %d", child.NumCells())
	}
	if child.CellDegree(4) != 0 {
		t.Errorf("removed cell degree = %d, want 0", child.CellDegree(4))
	}
	if child.CellName(4) != "ue" {
		t.Errorf("tombstone lost its name: %q", child.CellName(4))
	}
	if eff.CellsRemoved != 1 || eff.CellsTruncated != 0 {
		t.Errorf("effect = %+v", eff)
	}
	// Nets that pinned cell 4 lost exactly that pin: w3 (3-4), w4
	// (4-5), bus (0,2,4,6).
	if child.NetSize(3) != 1 || child.NetSize(4) != 1 || child.NetSize(7) != 3 {
		t.Errorf("incident nets = %d,%d,%d pins", child.NetSize(3), child.NetSize(4), child.NetSize(7))
	}
}

func TestDeltaTrailingRemovalTruncates(t *testing.T) {
	nl := chainNetlist(t)
	child, eff := mustApply(t, nl, &Delta{RemoveCells: []CellID{7, 6}})
	if child.NumCells() != 6 {
		t.Fatalf("trailing removal kept %d cells, want 6", child.NumCells())
	}
	if eff.CellsTruncated != 2 {
		t.Errorf("truncated = %d, want 2", eff.CellsTruncated)
	}
	// Net 8 (bus) referenced cell 6, which is gone from its run.
	if child.NetSize(7) != 3 {
		t.Errorf("bus size = %d, want 3", child.NetSize(7))
	}
}

func TestDeltaAddCellsAndNets(t *testing.T) {
	nl := chainNetlist(t)
	d := &Delta{
		AddCells: []NewCell{{Name: "buf0"}, {Name: "buf1", Area: 3}},
		AddNets:  []NewNet{{Name: "nn", Cells: []CellID{8, 9, 2}}},
	}
	child, eff := mustApply(t, nl, d)
	if child.NumCells() != 10 || child.NumNets() != 9 {
		t.Fatalf("child shape = %d cells %d nets", child.NumCells(), child.NumNets())
	}
	if child.CellName(9) != "buf1" || child.CellArea(9) != 3 || child.CellArea(8) != 1 {
		t.Errorf("added cell metadata wrong: %q %g %g", child.CellName(9), child.CellArea(9), child.CellArea(8))
	}
	if child.NetName(8) != "nn" || child.NetSize(8) != 3 {
		t.Errorf("added net wrong: %q size %d", child.NetName(8), child.NetSize(8))
	}
	if eff.CellsAdded != 2 || eff.NetsAdded != 1 {
		t.Errorf("effect = %+v", eff)
	}
	// Added cells and the touched net's cells are dirty.
	dirty := map[CellID]bool{}
	for _, c := range eff.Dirty {
		dirty[c] = true
	}
	for _, c := range []CellID{2, 8, 9} {
		if !dirty[c] {
			t.Errorf("cell %d missing from dirty set %v", c, eff.Dirty)
		}
	}
}

func TestDeltaSplitMerge(t *testing.T) {
	nl := chainNetlist(t)
	d := &Delta{}
	id, err := d.SplitNet(nl, 7, []CellID{4, 6}, "bus_hi")
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 {
		t.Fatalf("split net id = %d, want 8", id)
	}
	child, _ := mustApply(t, nl, d)
	if child.NetSize(7) != 2 || child.NetSize(8) != 2 {
		t.Fatalf("split sizes = %d,%d", child.NetSize(7), child.NetSize(8))
	}

	m := &Delta{}
	if err := m.MergeNets(child, 7, 8); err != nil {
		t.Fatal(err)
	}
	merged, eff := mustApply(t, child, m)
	// Net 8 was trailing and removed, so the merge truncates it.
	if merged.NumNets() != 8 || eff.NetsTruncated != 1 {
		t.Fatalf("merge: %d nets, truncated %d", merged.NumNets(), eff.NetsTruncated)
	}
	if merged.NetSize(7) != 4 {
		t.Fatalf("merged bus size = %d, want 4", merged.NetSize(7))
	}
}

func TestDeltaValidationErrors(t *testing.T) {
	nl := chainNetlist(t)
	cases := []struct {
		name string
		d    Delta
	}{
		{"remove unknown cell", Delta{RemoveCells: []CellID{99}}},
		{"remove negative net", Delta{RemoveNets: []NetID{-1}}},
		{"edit unknown net", Delta{SetNets: []NetEdit{{Net: 42}}}},
		{"edit removed net", Delta{RemoveNets: []NetID{1}, SetNets: []NetEdit{{Net: 1}}}},
		{"double edit", Delta{SetNets: []NetEdit{{Net: 1}, {Net: 1}}}},
		{"edit pins removed cell", Delta{RemoveCells: []CellID{2}, SetNets: []NetEdit{{Net: 0, Cells: []CellID{0, 2}}}}},
		{"added net pins unknown cell", Delta{AddNets: []NewNet{{Cells: []CellID{77}}}}},
		{"negative area", Delta{AddCells: []NewCell{{Area: -1}}}},
	}
	for _, tc := range cases {
		if _, _, err := tc.d.Apply(nl); err == nil {
			t.Errorf("%s: apply accepted an invalid delta", tc.name)
		}
	}
}

// TestDeltaInverseRoundTrip applies a delta touching every operation
// kind, then its inverse, and demands the original netlist back
// bit-identically — structure, names, areas and serialized bytes.
func TestDeltaInverseRoundTrip(t *testing.T) {
	nl := chainNetlist(t)
	deltas := []*Delta{
		{SetNets: []NetEdit{{Net: 2, Cells: []CellID{0, 7}}}},
		{RemoveCells: []CellID{3}},
		{RemoveCells: []CellID{7}}, // truncates
		{AddCells: []NewCell{{Name: "x", Area: 2}}, AddNets: []NewNet{{Name: "nx", Cells: []CellID{8, 0}}}},
		{RemoveNets: []NetID{7}}, // trailing net: truncates
		{RemoveNets: []NetID{2}}, // mid-range net: tombstones
		{
			RemoveCells: []CellID{1},
			SetNets:     []NetEdit{{Net: 5, Cells: []CellID{0, 2, 4}}},
			RemoveNets:  []NetID{4},
		},
	}
	for i, d := range deltas {
		child, _, err := d.Apply(nl)
		if err != nil {
			t.Fatalf("delta %d: apply: %v", i, err)
		}
		inv, err := d.Inverse(nl)
		if err != nil {
			t.Fatalf("delta %d: inverse: %v", i, err)
		}
		back, _, err := inv.Apply(child)
		if err != nil {
			t.Fatalf("delta %d: inverse apply: %v", i, err)
		}
		if err := nl.SameStructure(back); err != nil {
			t.Fatalf("delta %d: round trip diverged: %v", i, err)
		}
		var a, b bytes.Buffer
		if err := nl.WriteBinary(&a); err != nil {
			t.Fatal(err)
		}
		if err := back.WriteBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("delta %d: serialized round trip differs (%d vs %d bytes)", i, a.Len(), b.Len())
		}
	}
}

func TestParseDelta(t *testing.T) {
	d, err := ParseDelta([]byte(`{"set_nets":[{"net":1,"cells":[0,2]}],"remove_cells":[5]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SetNets) != 1 || len(d.RemoveCells) != 1 {
		t.Fatalf("parsed = %+v", d)
	}
	if _, err := ParseDelta([]byte(`{"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseDelta([]byte(`{} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
}
