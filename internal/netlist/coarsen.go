package netlist

import "fmt"

// This file implements multilevel coarsening of the hypergraph: the
// substrate of the coarsen → detect → project + refine detection
// pipeline. One coarsening step contracts a heavy-edge matching of the
// clique-expansion graph — every cell pairs with the unmatched
// neighbor it shares the most connection weight with — which roughly
// halves the cell count while preserving exactly the dense local
// connectivity the tangled-logic metrics key on. Repeating the step
// yields a Hierarchy: a pyramid of netlists whose coarsest member is
// small enough that full seed-and-grow detection costs a fraction of a
// flat run, plus the projection maps needed to carry detected groups
// back down to the original cells.
//
// Every coarse netlist is produced by the ordinary two-pass Builder,
// so the CSR invariants (Validate) and the .tfnet/.tfb round-trips
// hold at every level. Nets whose pins collapse into a single coarse
// cell become self-loops and are elided (Builder.DropDegenerateNets);
// cell areas aggregate by summation so TotalArea is conserved level to
// level. Coarsening is fully deterministic: matching visits cells in
// ascending id order and breaks weight ties toward the smallest
// neighbor id.

// CoarsenOptions configures BuildHierarchy. The zero value of every
// field selects a documented default.
type CoarsenOptions struct {
	// Levels is the total number of levels including the finest
	// original netlist (so Levels=1 means no coarsening at all).
	// Values < 1 are treated as 1.
	Levels int
	// MinCells stops coarsening once a level has at most this many
	// cells — detection on a tiny coarse netlist has nothing left to
	// contrast candidate groups against. 0 means DefaultMinCoarseCells.
	MinCells int
	// MaxNetSize excludes nets larger than this from the matching's
	// clique expansion (they carry almost no clustering signal and
	// expand quadratically). 0 means DefaultCoarsenMaxNet; negative
	// disables the limit.
	MaxNetSize int
}

// DefaultMinCoarseCells is the coarsening floor when
// CoarsenOptions.MinCells is zero.
const DefaultMinCoarseCells = 2500

// DefaultCoarsenMaxNet is the matching's net-size cutoff when
// CoarsenOptions.MaxNetSize is zero.
const DefaultCoarsenMaxNet = 64

// levelMap records one coarsening step: how the cells of level l
// (fine) aggregate into the cells of level l+1 (coarse).
type levelMap struct {
	fineToCoarse []CellID // len = fine NumCells; total map
	memOff       []int32  // len = coarse NumCells+1; CSR into members
	members      []CellID // fine ids grouped by coarse id, ascending per run
}

// Hierarchy is a pyramid of coarsened netlists. Level 0 is the
// original netlist; level NumLevels()-1 is the coarsest. A Hierarchy
// is immutable and safe for concurrent use.
type Hierarchy struct {
	levels []*Netlist
	maps   []levelMap // maps[l] connects level l (fine) to level l+1 (coarse)
}

// BuildHierarchy coarsens nl into at most o.Levels levels. It stops
// early when a level reaches o.MinCells cells or a matching step stops
// making progress (almost nothing left to contract), so the returned
// hierarchy may be shallower than requested; it always contains at
// least the original netlist at level 0.
func BuildHierarchy(nl *Netlist, o CoarsenOptions) (*Hierarchy, error) {
	if nl == nil || nl.NumCells() == 0 {
		return nil, fmt.Errorf("netlist: cannot coarsen an empty netlist")
	}
	if o.Levels < 1 {
		o.Levels = 1
	}
	if o.MinCells == 0 {
		o.MinCells = DefaultMinCoarseCells
	}
	maxNet := o.MaxNetSize
	switch {
	case maxNet == 0:
		maxNet = DefaultCoarsenMaxNet
	case maxNet < 0:
		maxNet = 0 // CliqueExpand's "no limit"
	}
	h := &Hierarchy{levels: []*Netlist{nl}}
	for len(h.levels) < o.Levels {
		fine := h.levels[len(h.levels)-1]
		if fine.NumCells() <= o.MinCells {
			break
		}
		coarse, m, err := coarsenStep(fine, maxNet)
		if err != nil {
			return nil, err
		}
		// A step that barely contracts (pathologically sparse or
		// disconnected graphs) would stack near-identical levels; stop.
		if coarse.NumCells() > fine.NumCells()*19/20 {
			break
		}
		h.levels = append(h.levels, coarse)
		h.maps = append(h.maps, m)
	}
	return h, nil
}

// NumLevels returns the number of levels, the original included.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns the netlist at level l (0 = original/finest).
func (h *Hierarchy) Level(l int) *Netlist { return h.levels[l] }

// CoarseCell maps a level-l cell to its level-l+1 aggregate.
func (h *Hierarchy) CoarseCell(l int, c CellID) CellID {
	return h.maps[l].fineToCoarse[c]
}

// FineCells returns the level-l cells aggregated into level-l+1 cell
// c (one or two of them — matching pairs at most two cells per step).
// The returned slice aliases the hierarchy; do not modify it.
func (h *Hierarchy) FineCells(l int, c CellID) []CellID {
	m := &h.maps[l]
	return m.members[m.memOff[c]:m.memOff[c+1]]
}

// ExpandDown projects level-l cells one level down, to level l-1. The
// result is duplicate-free when cells is duplicate-free (aggregates
// partition the finer level) but not sorted: members follow the input
// order, and a pair's second member can exceed a later aggregate's
// cells.
func (h *Hierarchy) ExpandDown(l int, cells []CellID) []CellID {
	m := &h.maps[l-1]
	total := 0
	for _, c := range cells {
		total += int(m.memOff[c+1] - m.memOff[c])
	}
	out := make([]CellID, 0, total)
	for _, c := range cells {
		out = append(out, m.members[m.memOff[c]:m.memOff[c+1]]...)
	}
	return out
}

// ExpandToFinest projects level-l cells all the way down to level 0.
func (h *Hierarchy) ExpandToFinest(l int, cells []CellID) []CellID {
	for ; l > 0; l-- {
		cells = h.ExpandDown(l, cells)
	}
	return cells
}

// RepresentativeAtFinest maps one level-l cell to a single level-0
// representative (the smallest-id constituent), for reporting fields
// that carry one cell, like a GTL's seed.
func (h *Hierarchy) RepresentativeAtFinest(l int, c CellID) CellID {
	for ; l > 0; l-- {
		m := &h.maps[l-1]
		best := m.members[m.memOff[c]]
		for _, f := range m.members[m.memOff[c]:m.memOff[c+1]] {
			if f < best {
				best = f
			}
		}
		c = best
	}
	return c
}

// coarsenStep contracts one heavy-edge matching of nl, returning the
// coarse netlist and the fine→coarse aggregation map. Deterministic
// for a fixed input.
//
// The matching accumulates clique-expansion weights (each net e
// contributes 1/(|e|-1) between every pair of its cells) directly off
// the net-side CSR, one cell at a time with an epoch-free scatter
// buffer — it never materializes the full Adjacency. Only each cell's
// best unmatched neighbor is needed, so building and sorting tens of
// millions of expanded edges (the CliqueExpand path) would be pure
// overhead; the direct walk is O(Σ_c Σ_{e∋c} |e|) with two O(cells)
// scratch arrays.
func coarsenStep(nl *Netlist, maxNetSize int) (*Netlist, levelMap, error) {
	n := nl.NumCells()

	// Heavy-edge matching: visit cells in ascending id order; each
	// unmatched cell grabs its heaviest unmatched neighbor, breaking
	// weight ties toward the smallest neighbor id.
	match := make([]CellID, n)
	for i := range match {
		match[i] = -1
	}
	weight := make([]float64, n) // scatter buffer, zeroed after each cell
	var touched []CellID
	for c := 0; c < n; c++ {
		if match[c] >= 0 {
			continue
		}
		touched = touched[:0]
		for _, e := range nl.CellPins(CellID(c)) {
			k := nl.NetSize(e)
			if k < 2 || (maxNetSize > 0 && k > maxNetSize) {
				continue
			}
			we := 1.0 / float64(k-1)
			for _, nb := range nl.NetPins(e) {
				if int(nb) == c || match[nb] >= 0 {
					continue
				}
				if weight[nb] == 0 {
					touched = append(touched, nb)
				}
				weight[nb] += we
			}
		}
		best, bestW := CellID(-1), 0.0
		for _, nb := range touched {
			if w := weight[nb]; w > bestW || (w == bestW && best >= 0 && nb < best) {
				best, bestW = nb, w
			}
			weight[nb] = 0
		}
		if best >= 0 {
			match[c], match[best] = best, CellID(c)
		} else {
			match[c] = CellID(c)
		}
	}

	// Assign coarse ids in ascending order of each pair's smaller fine
	// id, so coarse id order follows fine id order (keeps pin runs easy
	// to reason about and the step deterministic).
	m := levelMap{fineToCoarse: make([]CellID, n)}
	numCoarse := 0
	for c := 0; c < n; c++ {
		if int(match[c]) >= c { // c is its pair's representative
			id := CellID(numCoarse)
			numCoarse++
			m.fineToCoarse[c] = id
			if match[c] != CellID(c) {
				m.fineToCoarse[match[c]] = id
			}
		}
	}
	m.memOff = make([]int32, numCoarse+1)
	for c := 0; c < n; c++ {
		m.memOff[m.fineToCoarse[c]+1]++
	}
	for i := 0; i < numCoarse; i++ {
		m.memOff[i+1] += m.memOff[i]
	}
	m.members = make([]CellID, n)
	cursor := make([]int32, numCoarse)
	for c := 0; c < n; c++ {
		cc := m.fineToCoarse[c]
		m.members[m.memOff[cc]+cursor[cc]] = CellID(c)
		cursor[cc]++
	}

	// Build the coarse netlist with the ordinary two-pass Builder:
	// areas aggregate by summation, every fine net maps through the
	// matching (Builder dedupes pins that collapse onto one coarse
	// cell), and nets left with a single distinct coarse pin are
	// self-loops that DropDegenerateNets elides.
	var b Builder
	b.DropDegenerateNets = true
	b.AddCells(numCoarse)
	for cc := 0; cc < numCoarse; cc++ {
		area := 0.0
		for _, f := range m.members[m.memOff[cc]:m.memOff[cc+1]] {
			area += nl.CellArea(f)
		}
		b.SetCellArea(CellID(cc), area)
	}
	mapped := make([]CellID, 0, 64)
	for e := 0; e < nl.NumNets(); e++ {
		pins := nl.NetPins(NetID(e))
		mapped = mapped[:0]
		for _, c := range pins {
			mapped = append(mapped, m.fineToCoarse[c])
		}
		b.AddNet("", mapped...)
	}
	coarse, err := b.Build()
	if err != nil {
		return nil, levelMap{}, fmt.Errorf("netlist: coarsen: %w", err)
	}
	return coarse, m, nil
}
