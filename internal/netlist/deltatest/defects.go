package deltatest

import (
	"fmt"

	"tanglefind/internal/netlist"
)

// Defect is a golden pair for one lint rule: Pos plants exactly one
// instance of the rule's defect into an otherwise clean directed
// netlist, Neg is the same construction with the defect repaired. A
// rule is specified by these pairs — it must fire on Pos with the
// given anchors and stay silent on Neg.
//
// This package only builds the netlists; internal/lint's tests
// consume them (the dependency points that way to keep deltatest free
// of lint imports).
type Defect struct {
	// Rule is the lint rule id the pair specifies.
	Rule string
	Pos  *netlist.Netlist
	Neg  *netlist.Netlist
	// WantAnchors are cell/net names that must appear among the
	// positive findings' anchor names.
	WantAnchors []string
}

// Defects returns one golden pair per builtin lint rule, under the
// default lint thresholds (fanout 64, chain 3).
func Defects() []Defect {
	return []Defect{
		multiDrivenDefect(),
		undrivenDefect(),
		floatingDefect(),
		danglingDefect(),
		combLoopDefect(),
		constTiedDefect(),
		bufferChainDefect(),
		sizeOnlyDefect(),
		highFanoutDefect(),
	}
}

// DefectByRule returns the golden pair for one rule id, or nil.
func DefectByRule(rule string) *Defect {
	for _, d := range Defects() {
		if d.Rule == rule {
			return &d
		}
	}
	return nil
}

func multiDrivenDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		u1 := b.AddCell("u_and1")
		u2 := b.AddCell("u_and2")
		po := b.AddCell("po_x")
		b.AddDrivenNet("n_in1", []netlist.CellID{pi}, u1)
		b.AddDrivenNet("n_in2", []netlist.CellID{pi}, u2)
		if planted {
			// Both gates fight over one net.
			b.AddDrivenNet("n_bad", []netlist.CellID{u1, u2}, po)
		} else {
			b.AddDrivenNet("n_bad", []netlist.CellID{u1}, po)
			b.AddDrivenNet("n_ok2", []netlist.CellID{u2}, po)
		}
		return b.MustBuild()
	}
	return Defect{
		Rule: "multi-driven-net", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"n_bad"},
	}
}

func undrivenDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		u1 := b.AddCell("u_and1")
		po := b.AddCell("po_x")
		b.AddDrivenNet("n_in", []netlist.CellID{pi}, u1)
		if planted {
			// Both pins of n_bad are sinks; nothing drives it.
			n := b.AddNet("n_bad", u1, po)
			_ = n // directedness comes from the other nets
			b.AddDrivenNet("n_keep", []netlist.CellID{u1}, po)
		} else {
			b.AddDrivenNet("n_bad", []netlist.CellID{u1}, po)
		}
		return b.MustBuild()
	}
	return Defect{
		Rule: "undriven-net", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"n_bad"},
	}
}

func floatingDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		u1 := b.AddCell("u_and1")
		po := b.AddCell("po_x")
		b.AddDrivenNet("n_in", []netlist.CellID{pi}, u1)
		b.AddDrivenNet("n_out", []netlist.CellID{u1}, po)
		if planted {
			// A driven net with nobody on the other end.
			b.AddDrivenNet("n_float", []netlist.CellID{u1})
		}
		return b.MustBuild()
	}
	return Defect{
		Rule: "floating-net", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"n_float"},
	}
}

func danglingDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		u1 := b.AddCell("u_and1")
		po := b.AddCell("po_x")
		dead := b.AddCell("u_dead")
		b.AddDrivenNet("n_in", []netlist.CellID{pi}, u1, dead)
		b.AddDrivenNet("n_out", []netlist.CellID{u1}, po)
		if planted {
			// u_dead drives a net no sink ever reads.
			b.AddDrivenNet("n_dead", []netlist.CellID{dead})
		} else {
			b.AddDrivenNet("n_dead", []netlist.CellID{dead}, po)
		}
		return b.MustBuild()
	}
	return Defect{
		Rule: "dangling-cell", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"u_dead"},
	}
}

func combLoopDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		l1 := b.AddCell("u_loop1")
		l2 := b.AddCell("u_loop2")
		po := b.AddCell("po_x")
		b.AddDrivenNet("n_in", []netlist.CellID{pi}, l1)
		b.AddDrivenNet("n_fwd", []netlist.CellID{l1}, l2, po)
		if planted {
			// l2 feeds straight back into l1: a combinational cycle.
			b.AddDrivenNet("n_back", []netlist.CellID{l2}, l1)
		} else {
			// The same cycle broken by a flop.
			brk := b.AddCell("dff_brk")
			b.AddDrivenNet("n_back1", []netlist.CellID{l2}, brk)
			b.AddDrivenNet("n_back2", []netlist.CellID{brk}, l1)
		}
		return b.MustBuild()
	}
	return Defect{
		Rule: "comb-loop", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"u_loop1"},
	}
}

func constTiedDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		name := "pi_en"
		if planted {
			name = "tie_hi"
		}
		src := b.AddCell(name)
		u1 := b.AddCell("u_and1")
		po := b.AddCell("po_x")
		b.AddDrivenNet("n_en", []netlist.CellID{src}, u1)
		b.AddDrivenNet("n_out", []netlist.CellID{u1}, po)
		return b.MustBuild()
	}
	return Defect{
		Rule: "const-tied", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"n_en"},
	}
}

func bufferChainDefect() Defect {
	build := func(chain int) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		prev := pi
		for i := 0; i < chain; i++ {
			buf := b.AddCell(fmt.Sprintf("u_buf%d", i+1))
			b.AddDrivenNet(fmt.Sprintf("n_b%d", i), []netlist.CellID{prev}, buf)
			prev = buf
		}
		po := b.AddCell("po_x")
		b.AddDrivenNet("n_out", []netlist.CellID{prev}, po)
		return b.MustBuild()
	}
	return Defect{
		// Three repeaters in a row trip the default MinChain of 3; two
		// do not.
		Rule: "buffer-chain", Pos: build(3), Neg: build(2),
		WantAnchors: []string{"u_buf1"},
	}
}

func sizeOnlyDefect() Defect {
	build := func(planted bool) *netlist.Netlist {
		var b netlist.Builder
		name := "u_pad"
		if planted {
			name = "u_size_only_pad"
		}
		pi := b.AddCell("pi_a")
		pad := b.AddCell(name)
		b.AddDrivenNet("n_in", []netlist.CellID{pi}, pad)
		return b.MustBuild()
	}
	return Defect{
		Rule: "size-only", Pos: build(true), Neg: build(false),
		WantAnchors: []string{"u_size_only_pad"},
	}
}

func highFanoutDefect() Defect {
	build := func(sinks int) *netlist.Netlist {
		var b netlist.Builder
		pi := b.AddCell("pi_a")
		src := b.AddCell("u_drv")
		b.AddDrivenNet("n_in", []netlist.CellID{pi}, src)
		fan := make([]netlist.CellID, sinks)
		for i := range fan {
			fan[i] = b.AddCell(fmt.Sprintf("po_f%d", i))
		}
		b.AddDrivenNet("n_big", []netlist.CellID{src}, fan...)
		return b.MustBuild()
	}
	// Default MaxFanout is 64 pins: 63 sinks + 1 driver reaches it.
	return Defect{
		Rule: "high-fanout-net", Pos: build(63), Neg: build(10),
		WantAnchors: []string{"n_big"},
	}
}
