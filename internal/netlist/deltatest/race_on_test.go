//go:build race

package deltatest

// Under the race detector every engine run is ~10x slower; a reduced
// sequence budget keeps the race shard honest (every generator kind
// still fires) without dominating CI. The full 204 run in the normal
// shard.
const differentialSequences = 36
