package deltatest

import (
	"context"
	"testing"

	"tanglefind/internal/core"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// base is one recorded starting point sequences mutate from.
type base struct {
	name   string
	nl     *netlist.Netlist
	blocks [][]netlist.CellID
	opt    core.Options
	prev   *core.Result // recorded full run over nl
}

// buildBases generates Table-1-sized workloads (the paper's case 1/2
// geometries at test scale) and records one incremental-capable run
// over each; every differential sequence starts from one of them.
func buildBases(t *testing.T) []*base {
	t.Helper()
	specs := []struct {
		name   string
		cells  int
		blocks []int
		seed   uint64
	}{
		{"case1_like", 3000, []int{250}, 21},
		{"case2_like", 5000, []int{350, 200}, 22},
		{"case3_like", 4000, []int{300}, 23},
	}
	ctx := context.Background()
	var out []*base
	for _, s := range specs {
		spec := generate.RandomGraphSpec{Cells: s.cells, Seed: s.seed}
		maxBlock := 0
		for _, b := range s.blocks {
			spec.Blocks = append(spec.Blocks, generate.BlockSpec{Size: b})
			if b > maxBlock {
				maxBlock = b
			}
		}
		rg, err := generate.NewRandomGraph(spec)
		if err != nil {
			t.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.Seeds = 24
		opt.MaxOrderLen = 2 * maxBlock
		opt.RecordIncremental = true
		f, err := core.NewFinder(rg.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := f.Find(ctx, opt)
		if err != nil {
			t.Fatal(err)
		}
		if prev.IncrState == nil {
			t.Fatal("base run carries no incremental state")
		}
		out = append(out, &base{name: s.name, nl: rg.Netlist, blocks: rg.Blocks, opt: opt, prev: prev})
	}
	return out
}

// TestDifferentialOracle is the harness the whole delta pipeline is
// specified by: across > 200 randomized edit sequences (chains of 1-3
// deltas drawn from every generator kind), the incremental result on
// each patched netlist must match a from-scratch full run — same
// groups, scores within 1e-9 — and the chain feeds each incremental
// result forward as the next step's previous state.
func TestDifferentialOracle(t *testing.T) {
	const sequences = differentialSequences
	bases := buildBases(t)
	ctx := context.Background()

	totalSteps, reusedSeeds, rerunSeeds, fallbacks := 0, 0, 0, 0
	kindCount := map[string]int{}
	for s := 0; s < sequences; s++ {
		b := bases[s%len(bases)]
		gen := NewGen(uint64(1000 + s))
		nl, prev := b.nl, b.prev
		steps := 1 + s%3
		for step := 0; step < steps; step++ {
			d, kind := gen.RandomEdit(nl, b.blocks)
			if d.Empty() {
				continue
			}
			kindCount[kind]++
			patched, eff, err := d.Apply(nl)
			if err != nil {
				t.Fatalf("seq %d step %d (%s): apply: %v", s, step, kind, err)
			}
			if err := patched.Validate(); err != nil {
				t.Fatalf("seq %d step %d (%s): invalid patched netlist: %v", s, step, kind, err)
			}

			fFull, err := core.NewFinder(patched)
			if err != nil {
				t.Fatalf("seq %d step %d: %v", s, step, err)
			}
			optFull := b.opt
			optFull.RecordIncremental = false
			full, err := fFull.Find(ctx, optFull)
			if err != nil {
				t.Fatalf("seq %d step %d (%s): full run: %v", s, step, kind, err)
			}

			fIncr, err := core.NewFinder(patched)
			if err != nil {
				t.Fatalf("seq %d step %d: %v", s, step, err)
			}
			incr, err := fIncr.FindIncremental(ctx, b.opt, prev, eff.Dirty)
			if err != nil {
				t.Fatalf("seq %d step %d (%s): incremental run: %v", s, step, kind, err)
			}
			if err := DiffResults(full, incr, 1e-9); err != nil {
				t.Fatalf("seq %d step %d (%s, %d dirty): differential oracle failed: %v",
					s, step, kind, len(eff.Dirty), err)
			}
			if st := incr.Incremental; st != nil {
				reusedSeeds += st.ReusedSeeds
				rerunSeeds += st.RerunSeeds
				if st.FullFallback {
					fallbacks++
				}
			}
			totalSteps++
			nl, prev = patched, incr
		}
	}
	if totalSteps < sequences {
		t.Fatalf("only %d steps executed across %d sequences", totalSteps, sequences)
	}
	// The harness must exercise actual reuse, or it proves nothing
	// about the replay path.
	if reusedSeeds == 0 {
		t.Fatal("no seed was ever reused; the incremental path never ran")
	}
	t.Logf("oracle held on %d sequences / %d steps: %d seeds replayed, %d rerun, %d full fallbacks, kinds %v",
		sequences, totalSteps, reusedSeeds, rerunSeeds, fallbacks, kindCount)
}

// TestRelabelInvariance pins the strongest special case: pure net-id
// churn (remove + re-add identical pin sets) must leave every group
// and score exactly where it was, and the incremental run must agree.
func TestRelabelInvariance(t *testing.T) {
	bases := buildBases(t)
	b := bases[0]
	ctx := context.Background()
	gen := NewGen(99)
	d := gen.Relabel(b.nl, 4)
	patched, eff, err := d.Apply(b.nl)
	if err != nil {
		t.Fatal(err)
	}
	fFull, _ := core.NewFinder(patched)
	optFull := b.opt
	optFull.RecordIncremental = false
	full, err := fFull.Find(ctx, optFull)
	if err != nil {
		t.Fatal(err)
	}
	// Relabeling nets keeps every score: compare against the base run.
	if err := DiffResults(b.prev, full, 1e-9); err != nil {
		t.Fatalf("net relabeling changed detection output: %v", err)
	}
	fIncr, _ := core.NewFinder(patched)
	incr, err := fIncr.FindIncremental(ctx, b.opt, b.prev, eff.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffResults(full, incr, 1e-9); err != nil {
		t.Fatalf("incremental diverged on relabeling: %v", err)
	}
}
