//go:build !race

package deltatest

// differentialSequences is the randomized edit-sequence budget of the
// oracle harness: the full 200+ the incremental engine is specified
// by.
const differentialSequences = 204
