package deltatest

import (
	"context"
	"runtime"
	"testing"

	"tanglefind/internal/core"
	"tanglefind/internal/generate"
)

// Parallel-vs-sequential differential: the work-stealing scheduler's
// bit-identical-to-Workers=1 guarantee, locked across the whole
// feature matrix — flat, multilevel, incremental and sharded+merged
// runs. Every mode runs once at Workers=1 and once at the parallel
// width, and the outputs must agree to 1e-9 via the same DiffResults
// oracle the delta pipeline is specified by. The CI race shard runs
// this file under -race, so a steal race that corrupts shared state
// (rather than merely reordering execution) is caught even when the
// outputs happen to match.

// parallelWidth is the concurrent side of every differential: NumCPU,
// floored at 4 so the steal scheduler is genuinely contended on small
// CI boxes too — goroutines interleave (and race-instrument) under
// any GOMAXPROCS.
func parallelWidth() int {
	if n := runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	width := parallelWidth()

	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 400}, {Size: 250}},
		Seed:   31,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist

	flat := core.DefaultOptions()
	flat.Seeds = 24
	flat.MaxOrderLen = 800

	multi := flat
	multi.Levels = 3
	multi.MinCoarseCells = 512 // let a 6K-cell workload actually coarsen

	find := func(t *testing.T, opt core.Options, workers int) *core.Result {
		t.Helper()
		f, err := core.NewFinder(nl)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = workers
		res, err := f.Find(ctx, opt)
		if err != nil {
			t.Fatalf("find (workers=%d): %v", workers, err)
		}
		return res
	}

	// checkSched asserts the parallel run really exercised the pool —
	// a differential against an accidentally sequential run proves
	// nothing.
	checkSched := func(t *testing.T, res *core.Result, workers int) {
		t.Helper()
		if res.Sched == nil {
			t.Fatal("parallel run reported no schedule stats")
		}
		if res.Sched.Workers != workers {
			t.Fatalf("schedule ran %d workers, want %d", res.Sched.Workers, workers)
		}
	}

	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"flat", flat},
		{"multilevel", multi},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := find(t, tc.opt, 1)
			par := find(t, tc.opt, width)
			checkSched(t, par, width)
			if err := DiffResults(seq, par, 1e-9); err != nil {
				t.Fatalf("workers=%d diverged from workers=1: %v", width, err)
			}
		})

		t.Run(tc.name+"_sharded", func(t *testing.T) {
			seq := find(t, tc.opt, 1)
			f, err := core.NewFinder(nl)
			if err != nil {
				t.Fatal(err)
			}
			opt := tc.opt
			opt.Workers = width
			mid := opt.Seeds / 2
			// Out-of-order shard completion is the production shape.
			hiShard, err := f.FindShard(ctx, opt, mid, opt.Seeds)
			if err != nil {
				t.Fatal(err)
			}
			loShard, err := f.FindShard(ctx, opt, 0, mid)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := f.Merge(opt, hiShard, loShard)
			if err != nil {
				t.Fatal(err)
			}
			if err := DiffResults(seq, merged, 1e-9); err != nil {
				t.Fatalf("parallel sharded+merged diverged from sequential whole run: %v", err)
			}
		})

		t.Run(tc.name+"_incremental", func(t *testing.T) {
			opt := tc.opt
			opt.RecordIncremental = true
			// Record the previous run under the parallel width too: the
			// captured seed state must be schedule-independent.
			prev := find(t, opt, width)
			if prev.IncrState == nil {
				t.Fatal("recorded run carries no incremental state")
			}
			gen := NewGen(77)
			d := gen.Reconnect(nl, 3)
			if d.Empty() {
				t.Fatal("empty edit")
			}
			patched, eff, err := d.Apply(nl)
			if err != nil {
				t.Fatal(err)
			}
			incr := func(workers int) *core.Result {
				f, err := core.NewFinder(patched)
				if err != nil {
					t.Fatal(err)
				}
				runOpt := opt
				runOpt.Workers = workers
				res, err := f.FindIncremental(ctx, runOpt, prev, eff.Dirty)
				if err != nil {
					t.Fatalf("incremental (workers=%d): %v", workers, err)
				}
				return res
			}
			seq := incr(1)
			par := incr(width)
			if err := DiffResults(seq, par, 1e-9); err != nil {
				t.Fatalf("parallel incremental diverged from sequential: %v", err)
			}
		})
	}
}
