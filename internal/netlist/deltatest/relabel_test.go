package deltatest

import (
	"context"
	"testing"

	"tanglefind/internal/core"
	"tanglefind/internal/generate"
)

// Hot-path equivalence differentials, in two strengths:
//
//   - TestOptimizedMatchesBaseline: the overhauled absorb loop
//     (outside-pin compaction, push coalescing, 4-ary heap) against
//     the retained pre-overhaul loop, bit-identical via DiffResults —
//     member order included — across orderings and pipelines.
//   - TestRelabelMatchesUnpermuted: Options.Relabel (locality-permuted
//     execution) against the unpermuted engine, set-identical with
//     scores to 1e-9 via DiffResultsSetwise, across flat, multilevel,
//     sharded+merged and incremental runs.
//
// The CI race shard runs this file under -race alongside the
// parallel-vs-sequential differential.

func relabelWorkload(t *testing.T) *generate.RandomGraph {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 400}, {Size: 250}},
		Seed:   31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

func TestOptimizedMatchesBaseline(t *testing.T) {
	ctx := context.Background()
	nl := relabelWorkload(t).Netlist

	base := core.DefaultOptions()
	base.Seeds = 24
	base.MaxOrderLen = 800

	multi := base
	multi.Levels = 3
	multi.MinCoarseCells = 512

	cases := []struct {
		name string
		opt  core.Options
	}{
		{"flat_weighted", base},
		{"multilevel", multi},
	}
	bfs := base
	bfs.Ordering = core.OrderBFS
	cases = append(cases, struct {
		name string
		opt  core.Options
	}{"flat_bfs", bfs})
	mincut := base
	mincut.Ordering = core.OrderMinCut
	cases = append(cases, struct {
		name string
		opt  core.Options
	}{"flat_mincut", mincut})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := core.NewFinder(nl)
			if err != nil {
				t.Fatal(err)
			}
			ref.SetBaselineGrowth(true)
			want, err := ref.Find(ctx, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			opt2, err2 := core.NewFinder(nl)
			if err2 != nil {
				t.Fatal(err2)
			}
			got, err := opt2.Find(ctx, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			// Zero tolerance: the optimized loop must be bit-identical
			// to the retained pre-overhaul engine, ordering and all.
			if err := DiffResults(want, got, 0); err != nil {
				t.Fatalf("optimized absorb loop diverged from baseline: %v", err)
			}
		})
	}
}

func TestRelabelMatchesUnpermuted(t *testing.T) {
	ctx := context.Background()
	nl := relabelWorkload(t).Netlist

	flat := core.DefaultOptions()
	flat.Seeds = 24
	flat.MaxOrderLen = 800

	multi := flat
	multi.Levels = 3
	multi.MinCoarseCells = 512 // let a 6K-cell workload actually coarsen

	find := func(t *testing.T, opt core.Options, relabel bool) *core.Result {
		t.Helper()
		f, err := core.NewFinder(nl)
		if err != nil {
			t.Fatal(err)
		}
		opt.Relabel = relabel
		res, err := f.Find(ctx, opt)
		if err != nil {
			t.Fatalf("find (relabel=%v): %v", relabel, err)
		}
		if relabel {
			// The run must actually have built and retained the shadow;
			// a silently ignored option would make this test vacuous.
			if f.MemoryEstimate() < nl.MemoryFootprint() {
				t.Fatalf("relabel run retains %d bytes, expected at least the %d-byte shadow netlist",
					f.MemoryEstimate(), nl.MemoryFootprint())
			}
		}
		return res
	}

	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"flat", flat},
		{"multilevel", multi},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := find(t, tc.opt, false)
			perm := find(t, tc.opt, true)
			if err := DiffResultsSetwise(plain, perm, 1e-9); err != nil {
				t.Fatalf("relabel diverged from unpermuted: %v", err)
			}
		})

		t.Run(tc.name+"_sharded", func(t *testing.T) {
			plain := find(t, tc.opt, false)
			f, err := core.NewFinder(nl)
			if err != nil {
				t.Fatal(err)
			}
			opt := tc.opt
			opt.Relabel = true
			mid := opt.Seeds / 2
			// Out-of-order shard completion is the production shape.
			hiShard, err := f.FindShard(ctx, opt, mid, opt.Seeds)
			if err != nil {
				t.Fatal(err)
			}
			loShard, err := f.FindShard(ctx, opt, 0, mid)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := f.Merge(opt, hiShard, loShard)
			if err != nil {
				t.Fatal(err)
			}
			if err := DiffResultsSetwise(plain, merged, 1e-9); err != nil {
				t.Fatalf("relabel sharded+merged diverged from unpermuted whole run: %v", err)
			}
		})

		t.Run(tc.name+"_incremental", func(t *testing.T) {
			opt := tc.opt
			opt.RecordIncremental = true
			// Record under Relabel: the captured records must come back
			// translated to original id space, or replay on the patched
			// netlist would guard footprints in the wrong space.
			prev := find(t, opt, true)
			if prev.IncrState == nil {
				t.Fatal("recorded relabel run carries no incremental state")
			}
			gen := NewGen(77)
			d := gen.Reconnect(nl, 3)
			if d.Empty() {
				t.Fatal("empty edit")
			}
			patched, eff, err := d.Apply(nl)
			if err != nil {
				t.Fatal(err)
			}
			runOpt := opt
			runOpt.Relabel = true
			fi, err := core.NewFinder(patched)
			if err != nil {
				t.Fatal(err)
			}
			incr, err := fi.FindIncremental(ctx, runOpt, prev, eff.Dirty)
			if err != nil {
				t.Fatalf("relabel incremental: %v", err)
			}
			if incr.Incremental == nil {
				t.Fatal("incremental run reported no reuse stats")
			}
			// Multilevel may legitimately fall back when the edit
			// reshapes coarsening; the flat path must genuinely reuse —
			// a fallback there would make the replay differential vacuous.
			if tc.opt.Levels <= 1 && incr.Incremental.FullFallback {
				t.Fatalf("flat relabel incremental fell back to a full run: %+v", incr.Incremental)
			}
			ff, err := core.NewFinder(patched)
			if err != nil {
				t.Fatal(err)
			}
			fullOpt := opt
			fullOpt.Relabel = false
			full, err := ff.Find(ctx, fullOpt)
			if err != nil {
				t.Fatal(err)
			}
			if err := DiffResultsSetwise(full, incr, 1e-9); err != nil {
				t.Fatalf("relabel incremental diverged from unpermuted full run: %v", err)
			}
		})
	}
}
