// Package deltatest is the differential test harness that specifies
// incremental detection: random delta generators (net relabeling,
// reconnects, splits, merges, cell removal, planted-tangle insertion
// and deletion) plus the incremental-vs-full oracle — a
// core.FindIncremental run over a patched netlist must produce exactly
// what a from-scratch core.Find produces (same groups, scores within
// 1e-9), for every delta the generators can emit.
//
// The gate-level testing literature (Lee et al., PAPERS.md) argues
// mutation + differential oracles are how an incremental engine earns
// trust; this package is that argument executed in go test.
package deltatest

import (
	"fmt"
	"math"
	"slices"

	"tanglefind/internal/core"
	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Gen emits random deltas over a netlist, deterministically for a
// fixed seed.
type Gen struct {
	rng *ds.RNG
}

// NewGen returns a generator with its own RNG stream.
func NewGen(seed uint64) *Gen { return &Gen{rng: ds.NewRNG(seed)} }

// KindNames enumerates the generator's edit kinds, for reporting.
var KindNames = []string{"relabel", "reconnect", "split", "merge", "remove_cells", "insert_tangle", "delete_cells_block"}

func (g *Gen) randNet(nl *netlist.Netlist, minSize int) netlist.NetID {
	for tries := 0; tries < 64; tries++ {
		n := netlist.NetID(g.rng.Intn(nl.NumNets()))
		if nl.NetSize(n) >= minSize {
			return n
		}
	}
	return -1
}

func (g *Gen) randCell(nl *netlist.Netlist) netlist.CellID {
	return netlist.CellID(g.rng.Intn(nl.NumCells()))
}

// Relabel removes k nets and re-adds identical pin sets under fresh
// ids: a pure id-space churn whose detection outcome must be invariant
// — the sharpest check that incremental bookkeeping tracks identity,
// not position.
func (g *Gen) Relabel(nl *netlist.Netlist, k int) *netlist.Delta {
	d := &netlist.Delta{}
	seen := map[netlist.NetID]bool{}
	for i := 0; i < k; i++ {
		n := g.randNet(nl, 2)
		if n < 0 || seen[n] {
			continue
		}
		seen[n] = true
		d.RemoveNets = append(d.RemoveNets, n)
		d.AddNets = append(d.AddNets, netlist.NewNet{
			Name:  fmt.Sprintf("relabel%d", i),
			Cells: append([]netlist.CellID(nil), nl.NetPins(n)...),
		})
	}
	return d
}

// Reconnect rewires k nets: each keeps a random subset of its pins and
// gains 1-2 random cells.
func (g *Gen) Reconnect(nl *netlist.Netlist, k int) *netlist.Delta {
	d := &netlist.Delta{}
	seen := map[netlist.NetID]bool{}
	for i := 0; i < k; i++ {
		n := g.randNet(nl, 2)
		if n < 0 || seen[n] {
			continue
		}
		seen[n] = true
		pins := nl.NetPins(n)
		keep := make([]netlist.CellID, 0, len(pins)+2)
		for _, c := range pins {
			if g.rng.Intn(4) != 0 { // drop ~25%
				keep = append(keep, c)
			}
		}
		for j := 0; j < 1+g.rng.Intn(2); j++ {
			keep = append(keep, g.randCell(nl))
		}
		d.SetNets = append(d.SetNets, netlist.NetEdit{Net: n, Cells: keep})
	}
	return d
}

// Split moves half the pins of one wide net onto a fresh net.
func (g *Gen) Split(nl *netlist.Netlist) *netlist.Delta {
	d := &netlist.Delta{}
	n := g.randNet(nl, 4)
	if n < 0 {
		return d
	}
	pins := nl.NetPins(n)
	moved := append([]netlist.CellID(nil), pins[len(pins)/2:]...)
	if _, err := d.SplitNet(nl, n, moved, "split"); err != nil {
		return &netlist.Delta{}
	}
	return d
}

// Merge folds one random net into another.
func (g *Gen) Merge(nl *netlist.Netlist) *netlist.Delta {
	d := &netlist.Delta{}
	a, b := g.randNet(nl, 2), g.randNet(nl, 2)
	if a < 0 || b < 0 || a == b {
		return d
	}
	if err := d.MergeNets(nl, a, b); err != nil {
		return &netlist.Delta{}
	}
	return d
}

// RemoveCells disconnects k random cells (ECO rip-up).
func (g *Gen) RemoveCells(nl *netlist.Netlist, k int) *netlist.Delta {
	d := &netlist.Delta{}
	for i := 0; i < k; i++ {
		d.RemoveCells = append(d.RemoveCells, g.randCell(nl))
	}
	return d
}

// InsertTangle plants a small dense block by delta: size new cells,
// dense internal nets and a few boundary nets into the existing
// netlist — the "ECO drops in a dissolved ROM" scenario.
func (g *Gen) InsertTangle(nl *netlist.Netlist, size int) *netlist.Delta {
	d := &netlist.Delta{}
	base := netlist.CellID(nl.NumCells())
	for i := 0; i < size; i++ {
		d.AddCells = append(d.AddCells, netlist.NewCell{})
	}
	// Dense internal 3-pin nets: ~2.5 nets per cell.
	nets := size * 5 / 2
	for i := 0; i < nets; i++ {
		d.AddNets = append(d.AddNets, netlist.NewNet{Cells: []netlist.CellID{
			base + netlist.CellID(g.rng.Intn(size)),
			base + netlist.CellID(g.rng.Intn(size)),
			base + netlist.CellID(g.rng.Intn(size)),
		}})
	}
	// A few boundary nets tying the block in.
	for i := 0; i < 4; i++ {
		d.AddNets = append(d.AddNets, netlist.NewNet{Cells: []netlist.CellID{
			base + netlist.CellID(g.rng.Intn(size)),
			g.randCell(nl),
		}})
	}
	return d
}

// DeleteCells disconnects a contiguous run of cells — pointed at a
// planted block's ground truth it deletes the tangle.
func (g *Gen) DeleteCells(nl *netlist.Netlist, cells []netlist.CellID) *netlist.Delta {
	d := &netlist.Delta{}
	d.RemoveCells = append(d.RemoveCells, cells...)
	return d
}

// RandomEdit draws one delta of a random kind. blocks (may be nil) is
// the workload's ground truth, enabling tangle deletion.
func (g *Gen) RandomEdit(nl *netlist.Netlist, blocks [][]netlist.CellID) (*netlist.Delta, string) {
	kinds := 6
	if len(blocks) > 0 {
		kinds = 7
	}
	switch k := g.rng.Intn(kinds); k {
	case 0:
		return g.Relabel(nl, 1+g.rng.Intn(3)), "relabel"
	case 1:
		return g.Reconnect(nl, 1+g.rng.Intn(4)), "reconnect"
	case 2:
		return g.Split(nl), "split"
	case 3:
		return g.Merge(nl), "merge"
	case 4:
		return g.RemoveCells(nl, 1+g.rng.Intn(3)), "remove_cells"
	case 5:
		return g.InsertTangle(nl, 48+g.rng.Intn(32)), "insert_tangle"
	default:
		b := blocks[g.rng.Intn(len(blocks))]
		// Delete a slice of a planted block, not necessarily all of it.
		lo := g.rng.Intn(len(b) / 2)
		hi := lo + len(b)/4 + g.rng.Intn(len(b)/4)
		if hi > len(b) {
			hi = len(b)
		}
		return g.DeleteCells(nl, b[lo:hi]), "delete_cells_block"
	}
}

// DiffResults compares two finder results under the differential
// oracle: identical groups and traces, scores within tol. It returns
// nil when they match.
func DiffResults(want, got *core.Result, tol float64) error {
	if len(want.GTLs) != len(got.GTLs) {
		return fmt.Errorf("GTL count %d vs %d", len(want.GTLs), len(got.GTLs))
	}
	for i := range want.GTLs {
		a, b := &want.GTLs[i], &got.GTLs[i]
		if a.Size() != b.Size() || a.Cut != b.Cut || a.Pins != b.Pins || a.Seed != b.Seed {
			return fmt.Errorf("GTL %d shape differs: size %d/%d cut %d/%d pins %d/%d seed %d/%d",
				i, a.Size(), b.Size(), a.Cut, b.Cut, a.Pins, b.Pins, a.Seed, b.Seed)
		}
		for j := range a.Members {
			if a.Members[j] != b.Members[j] {
				return fmt.Errorf("GTL %d member %d: %d vs %d", i, j, a.Members[j], b.Members[j])
			}
		}
		if math.Abs(a.Score-b.Score) > tol || math.Abs(a.NGTLS-b.NGTLS) > tol || math.Abs(a.GTLSD-b.GTLSD) > tol || math.Abs(a.Rent-b.Rent) > tol {
			return fmt.Errorf("GTL %d scores differ beyond %g", i, tol)
		}
	}
	if want.Candidates != got.Candidates {
		return fmt.Errorf("candidates %d vs %d", want.Candidates, got.Candidates)
	}
	if len(want.Seeds) != len(got.Seeds) {
		return fmt.Errorf("seed traces %d vs %d", len(want.Seeds), len(got.Seeds))
	}
	for i := range want.Seeds {
		a, b := &want.Seeds[i], &got.Seeds[i]
		if a.Seed != b.Seed || a.OrderLen != b.OrderLen || a.Extracted != b.Extracted || a.Size != b.Size {
			return fmt.Errorf("trace %d differs: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Score-b.Score) > tol {
			return fmt.Errorf("trace %d score %g vs %g", i, a.Score, b.Score)
		}
	}
	if math.Abs(want.Rent-got.Rent) > tol {
		return fmt.Errorf("rent %g vs %g", want.Rent, got.Rent)
	}
	return nil
}

// DiffResultsSetwise is DiffResults with each GTL's members compared
// as a set instead of a sequence — the oracle for core's Relabel mode,
// whose contract is set-equality with bitwise-equal scores: growth
// runs in a permuted id space where recombined winners come out sorted
// by permuted id, so member order inside a group is the one thing
// allowed to differ. Group alignment, seeds, traces, candidate counts
// and all scores are held to the same standard as DiffResults.
func DiffResultsSetwise(want, got *core.Result, tol float64) error {
	ws := sortedMembersCopy(want)
	gs := sortedMembersCopy(got)
	return DiffResults(ws, gs, tol)
}

// sortedMembersCopy returns a shallow result copy whose GTL member
// slices are sorted duplicates, leaving the input untouched.
func sortedMembersCopy(res *core.Result) *core.Result {
	out := *res
	out.GTLs = slices.Clone(res.GTLs)
	for i := range out.GTLs {
		m := slices.Clone(out.GTLs[i].Members)
		slices.Sort(m)
		out.GTLs[i].Members = m
	}
	return &out
}
