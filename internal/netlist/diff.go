package netlist

import "slices"

// DiffDirty compares two netlists over the same id space and returns
// the dirty cell set of their structural difference: every cell on a
// net whose pin (or driver) run differs between the two, old or new
// side — the same semantics a Delta reports for the edit it applied.
// A cell outside both runs of every differing net provably reads
// identical bytes from either netlist, which is exactly the soundness
// condition incremental replay needs.
//
// ok=false means the netlists are not comparable as an in-place edit
// (different cell or net counts); the caller should treat the whole
// difference as global. Multilevel incremental detection uses this to
// diff the coarsest levels of two independently built hierarchies:
// when local fine edits keep the coarsening stable the diff is local
// and coarse seeds replay, and when the hierarchy reshapes the size
// check fails and detection falls back to a full coarse run.
func DiffDirty(a, b *Netlist) (dirty []CellID, ok bool) {
	if a == nil || b == nil || a.NumCells() != b.NumCells() || a.NumNets() != b.NumNets() {
		return nil, false
	}
	seen := make([]bool, a.NumCells())
	mark := func(cells []CellID) {
		for _, c := range cells {
			if !seen[c] {
				seen[c] = true
				dirty = append(dirty, c)
			}
		}
	}
	for n := 0; n < a.NumNets(); n++ {
		id := NetID(n)
		if !slices.Equal(a.NetPins(id), b.NetPins(id)) ||
			((a.Directed() || b.Directed()) && !slices.Equal(a.NetDrivers(id), b.NetDrivers(id))) {
			mark(a.NetPins(id))
			mark(b.NetPins(id))
		}
	}
	slices.Sort(dirty)
	return dirty, true
}
