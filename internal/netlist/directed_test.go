package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// directedSample builds a small directed netlist:
//
//	in0 --w0--> g1 --w1--> g2 --w2--> out3
//
// with an extra multi-driven net w3 driven by both g1 and g2 onto
// out4.
func directedSample(t *testing.T) *Netlist {
	t.Helper()
	var b Builder
	in0 := b.AddCell("in0")
	g1 := b.AddCell("g1")
	g2 := b.AddCell("g2")
	out3 := b.AddCell("out3")
	out4 := b.AddCell("out4")
	b.AddDrivenNet("w0", []CellID{in0}, g1)
	b.AddDrivenNet("w1", []CellID{g1}, g2)
	b.AddDrivenNet("w2", []CellID{g2}, out3)
	b.AddDrivenNet("w3", []CellID{g1, g2}, out4)
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return nl
}

func TestDirectedBuild(t *testing.T) {
	nl := directedSample(t)
	if !nl.Directed() {
		t.Fatal("netlist should be directed")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := nl.NetDrivers(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("net 0 drivers = %v, want [0]", got)
	}
	if got := nl.NetDrivers(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("net 3 drivers = %v, want [1 2]", got)
	}
	if nl.NumDriverPins() != 5 {
		t.Fatalf("NumDriverPins = %d, want 5", nl.NumDriverPins())
	}

	var undirected Builder
	undirected.AddCells(2)
	undirected.AddNet("", 0, 1)
	u := undirected.MustBuild()
	if u.Directed() {
		t.Fatal("plain AddNet netlist must stay undirected")
	}
	if u.NetDrivers(0) != nil {
		t.Fatal("undirected NetDrivers must be nil")
	}
}

func TestDirectedBuildRejectsNonPinDriver(t *testing.T) {
	var b Builder
	b.AddCells(3)
	n := b.AddNet("w", 0, 1)
	b.MarkDrivers(n, 2) // cell 2 is not on the net
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a driver that is not a pin")
	}
}

func TestDirectedBinaryRoundTrip(t *testing.T) {
	nl := directedSample(t)
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	// Directed netlists must serialize as version 2.
	if v := buf.Bytes()[4]; v != 2 {
		t.Fatalf("directed .tfb version = %d, want 2", v)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if err := nl.SameStructure(got); err != nil {
		t.Fatalf("binary round trip: %v", err)
	}

	// Undirected netlists keep emitting version 1 byte-identically.
	var ub Builder
	ub.AddCells(2)
	ub.AddNet("w", 0, 1)
	u := ub.MustBuild()
	var ubuf bytes.Buffer
	if err := u.WriteBinary(&ubuf); err != nil {
		t.Fatalf("WriteBinary undirected: %v", err)
	}
	if v := ubuf.Bytes()[4]; v != 1 {
		t.Fatalf("undirected .tfb version = %d, want 1", v)
	}
}

func TestDirectedBinaryRejectsV1DriverFlag(t *testing.T) {
	nl := directedSample(t)
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	data := buf.Bytes()
	data[4] = 1 // claim version 1 while keeping the driver flag
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("ReadBinary accepted version 1 with the driver flag set")
	}
}

func TestDirectedTextRoundTrip(t *testing.T) {
	nl := directedSample(t)
	var buf bytes.Buffer
	if err := nl.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatalf("directed .tfnet carries no driver markers:\n%s", buf.String())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Directed() {
		t.Fatal("parsed netlist lost its direction annotation")
	}
	for n := 0; n < nl.NumNets(); n++ {
		a, b := nl.NetDrivers(NetID(n)), got.NetDrivers(NetID(n))
		if len(a) != len(b) {
			t.Fatalf("net %d drivers %v vs %v", n, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("net %d drivers %v vs %v", n, a, b)
			}
		}
	}
}

func TestDirectedDeltaApplyInverse(t *testing.T) {
	parent := directedSample(t)
	d := &Delta{
		AddCells: []NewCell{{Name: "g5"}},
		SetNets: []NetEdit{
			// Rewire w1 to include the new cell as a second driver.
			{Net: 1, Cells: []CellID{1, 2, 5}, Drivers: []CellID{1, 5}},
		},
		AddNets: []NewNet{{Name: "w4", Cells: []CellID{0, 5}, Drivers: []CellID{0}}},
	}
	child, eff, err := d.Apply(parent)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !child.Directed() {
		t.Fatal("directed parent must yield a directed child")
	}
	if err := child.Validate(); err != nil {
		t.Fatalf("child Validate: %v", err)
	}
	if got := child.NetDrivers(1); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("child net 1 drivers = %v, want [1 5]", got)
	}
	if got := child.NetDrivers(4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("child net 4 drivers = %v, want [0]", got)
	}
	// Untouched nets keep their driver runs verbatim.
	if got := child.NetDrivers(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("child net 3 drivers = %v, want [1 2]", got)
	}
	if len(eff.Dirty) == 0 {
		t.Fatal("delta reported no dirty cells")
	}
	inv, err := d.Inverse(parent)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	back, _, err := inv.Apply(child)
	if err != nil {
		t.Fatalf("inverse Apply: %v", err)
	}
	if err := parent.SameStructure(back); err != nil {
		t.Fatalf("apply → inverse-apply round trip: %v", err)
	}
}

func TestDirectedDeltaEditWithoutDriversClearsThem(t *testing.T) {
	parent := directedSample(t)
	d := &Delta{SetNets: []NetEdit{{Net: 0, Cells: []CellID{0, 1}}}}
	child, _, err := d.Apply(parent)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := child.NetDrivers(0); len(got) != 0 {
		t.Fatalf("edit without drivers left %v, want none", got)
	}
}

func TestDeltaRejectsDriversOnUndirectedParent(t *testing.T) {
	var b Builder
	b.AddCells(3)
	b.AddNet("w", 0, 1)
	parent := b.MustBuild()
	d := &Delta{SetNets: []NetEdit{{Net: 0, Cells: []CellID{0, 1}, Drivers: []CellID{0}}}}
	if err := d.Validate(parent); err == nil {
		t.Fatal("delta with drivers accepted against an undirected parent")
	}
	d2 := &Delta{SetNets: []NetEdit{{Net: 0, Cells: []CellID{0, 1}, Drivers: []CellID{2}}}}
	if err := d2.Validate(directedSample(t)); err == nil {
		t.Fatal("delta accepted a driver outside the edited pin set")
	}
}

func TestDirectedRemoveCellDropsDriverPins(t *testing.T) {
	parent := directedSample(t)
	d := &Delta{RemoveCells: []CellID{1}} // g1 drives w1 and co-drives w3
	child, _, err := d.Apply(parent)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := child.Validate(); err != nil {
		t.Fatalf("child Validate: %v", err)
	}
	if got := child.NetDrivers(1); len(got) != 0 {
		t.Fatalf("w1 drivers after removing g1 = %v, want none", got)
	}
	if got := child.NetDrivers(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("w3 drivers after removing g1 = %v, want [2]", got)
	}
}

// TestValidateAscendingDiagnostics locks in the enriched Validate
// messages: a violating run is reported with its owner, the position
// inside the run, and both offending ids.
func TestValidateAscendingDiagnostics(t *testing.T) {
	nl := directedSample(t)
	// Corrupt net 1's pin run in place: swap its two pins.
	run := nl.netPinCell[nl.netPinOff[1]:nl.netPinOff[1+1]]
	run[0], run[1] = run[1], run[0]
	err := nl.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unsorted pin run")
	}
	for _, want := range []string{"net 1", "position 1", "cell 1", "after cell 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Validate error %q does not name %q", err, want)
		}
	}
	run[0], run[1] = run[1], run[0] // restore

	// Corrupt a driver run: point it at a non-pin cell.
	nl.netDrvCell[nl.netDrvOff[0]] = 4
	err = nl.Validate()
	if err == nil {
		t.Fatal("Validate accepted a driver that is not a pin")
	}
	if !strings.Contains(err.Error(), "driver") {
		t.Fatalf("Validate error %q does not mention the driver run", err)
	}
}
