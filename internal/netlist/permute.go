package netlist

import (
	"fmt"
	"slices"
)

// Cell relabeling for memory locality.
//
// The finder's hot loop is memory-bound: per absorbed cell it streams
// that cell's pin runs and a dense per-cell frontier array. When a
// netlist's id assignment scatters logically adjacent cells across the
// id space (common after per-module numbering or netlist surgery),
// every one of those touches is a cache miss. LocalityOrder computes a
// reverse Cuthill–McKee style permutation — connected cells get nearby
// ids — and PermuteCells applies a cell permutation to a netlist,
// which together give the detection engine a locality-optimized shadow
// id space (core's Options.Relabel). Net ids are never renumbered:
// only the cell side moves, so per-net structure (sizes, names,
// drivers) is positionally unchanged.

// LocalityOrder returns a locality-improving cell permutation with
// perm[old] = new: a breadth-first traversal from a minimum-degree
// start per connected component, neighbor cells visited in pin-run
// order through each net once, with the final order reversed (reverse
// Cuthill–McKee). The result is deterministic for a given netlist and
// is always a valid permutation of [0, NumCells).
func LocalityOrder(nl *Netlist) []CellID {
	n := nl.NumCells()
	perm := make([]CellID, n)
	if n == 0 {
		return perm
	}
	// Start candidates in ascending (degree, id) order: BFS from a
	// low-degree periphery cell yields the narrow level sets RCM wants.
	starts := make([]CellID, n)
	for i := range starts {
		starts[i] = CellID(i)
	}
	slices.SortFunc(starts, func(a, b CellID) int {
		if d := nl.CellDegree(a) - nl.CellDegree(b); d != 0 {
			return d
		}
		return int(a) - int(b)
	})

	visited := make([]bool, n)
	netSeen := make([]bool, nl.NumNets())
	order := make([]CellID, 0, n)
	for _, s := range starts {
		if visited[s] {
			continue
		}
		visited[s] = true
		order = append(order, s)
		// Plain queue over the order slice: cells are appended exactly
		// once, so order[head:] is the BFS frontier of this component.
		for head := len(order) - 1; head < len(order); head++ {
			c := order[head]
			for _, e := range nl.CellPins(c) {
				if netSeen[e] {
					continue // this net's pins were already enqueued
				}
				netSeen[e] = true
				for _, w := range nl.NetPins(e) {
					if !visited[w] {
						visited[w] = true
						order = append(order, w)
					}
				}
			}
		}
	}
	for i, c := range order {
		perm[c] = CellID(n - 1 - i) // the "reverse" in reverse Cuthill–McKee
	}
	return perm
}

// PermuteCells returns a new netlist with cell ids renumbered by perm
// (perm[old] = new; must be a permutation of [0, NumCells)). Net ids,
// net names and net sizes are unchanged; pin runs are re-sorted into
// the new ascending id order, and cell names, areas and driver sets
// follow their cells. The input netlist is not modified and shares no
// mutable state with the result.
func PermuteCells(nl *Netlist, perm []CellID) (*Netlist, error) {
	n := nl.NumCells()
	if len(perm) != n {
		return nil, fmt.Errorf("netlist: permutation has %d entries for %d cells", len(perm), n)
	}
	seen := make([]bool, n)
	for old, nw := range perm {
		if nw < 0 || int(nw) >= n || seen[nw] {
			return nil, fmt.Errorf("netlist: perm[%d]=%d is not a bijection on [0,%d)", old, nw, n)
		}
		seen[nw] = true
	}

	mapRun := func(off []int32, cells []CellID) ([]int32, []CellID) {
		offCopy := make([]int32, len(off))
		copy(offCopy, off)
		mapped := make([]CellID, len(cells))
		for i, c := range cells {
			mapped[i] = perm[c]
		}
		for e := 0; e+1 < len(offCopy); e++ {
			slices.Sort(mapped[offCopy[e]:offCopy[e+1]])
		}
		return offCopy, mapped
	}
	off, pins := mapRun(nl.netPinOff, nl.netPinCell)

	var names []string
	if nl.cellNames != nil {
		names = make([]string, n)
		for old, name := range nl.cellNames {
			names[perm[old]] = name
		}
	}
	var areas []float64
	if nl.cellArea != nil {
		areas = make([]float64, n)
		for old, a := range nl.cellArea {
			areas[perm[old]] = a
		}
	}
	var netNames []string
	if nl.netNames != nil {
		netNames = append([]string(nil), nl.netNames...)
	}

	out := fromNetCSR(n, off, pins, netNames, names, areas)
	if nl.netDrvOff != nil {
		out.netDrvOff, out.netDrvCell = mapRun(nl.netDrvOff, nl.netDrvCell)
	}
	return out, nil
}
