// Package store is the serving layer's content-addressed netlist
// registry. Uploaded .tfnet/.tfb payloads are keyed by the SHA-256 of
// their bytes, parsed once into an immutable *netlist.Netlist shared
// by every job that references the digest, and paired with a lazily
// built tanglefind.Finder engine so repeated jobs over one netlist
// reuse the engine's pooled per-worker state.
//
// Memory is bounded by a pin budget: when the pins of all loaded
// netlists exceed it, least-recently-used entries are evicted.
// Eviction drops the parsed netlist and engine but keeps the metadata
// as a tombstone (Loaded=false), so clients get "re-upload" instead
// of "never existed". Jobs that resolved their netlist before the
// eviction keep running — the hypergraph is immutable and only
// becomes collectable once the last job releases it.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"tanglefind"
	"tanglefind/api"
	"tanglefind/internal/netlist"
)

// ErrNotFound is returned for digests never uploaded.
var ErrNotFound = fmt.Errorf("store: netlist not found")

// ErrEvicted is returned for digests whose netlist was evicted by the
// pin budget; the payload must be uploaded again.
var ErrEvicted = fmt.Errorf("store: netlist evicted (re-upload it)")

// Store is the registry. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	pinBudget int64 // max Σ pins of loaded entries; <= 0 means unlimited
	pins      int64
	entries   map[string]*entry
	lru       *list.List // front = most recently used; element value is *entry
	evictions int64
}

type entry struct {
	info   api.NetlistInfo
	nl     *netlist.Netlist
	finder *tanglefind.Finder // built on first Engine call
	elem   *list.Element      // nil once evicted
	// lineage survives eviction (it is metadata, like info): an
	// incremental job on a reloaded child can still find its parent.
	lineage *Lineage
}

// Lineage records how a delta-derived netlist relates to its parent:
// the parent digest and the dirty cell set of the edit, in the child
// id space. Incremental jobs use it to locate the parent's recorded
// state and to bound re-detection.
type Lineage struct {
	Parent string
	Dirty  []netlist.CellID
}

// New creates a registry that evicts least-recently-used netlists once
// the loaded pin total exceeds pinBudget (<= 0 disables eviction).
func New(pinBudget int64) *Store {
	return &Store{
		pinBudget: pinBudget,
		entries:   make(map[string]*entry),
		lru:       list.New(),
	}
}

// Digest returns the registry key for a payload: lowercase hex
// SHA-256 of the raw bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Ingest registers a payload: parses it (format autodetected by
// content), stores the netlist under its digest and returns the entry
// metadata. Re-uploading known bytes is idempotent and cheap when the
// netlist is still loaded; re-uploading an evicted digest reloads it.
func (s *Store) Ingest(data []byte) (api.NetlistInfo, error) {
	digest := Digest(data)

	// Fast path outside the parse: already loaded.
	s.mu.Lock()
	if e, ok := s.entries[digest]; ok && e.nl != nil {
		s.touch(e)
		info := e.info
		s.mu.Unlock()
		return info, nil
	}
	s.mu.Unlock()

	// Parse outside the lock; uploads must not block readers.
	nl, err := netlist.ReadAuto(bytes.NewReader(data))
	if err != nil {
		return api.NetlistInfo{}, err
	}
	if nl.NumCells() == 0 {
		return api.NetlistInfo{}, fmt.Errorf("store: empty netlist")
	}
	format := "tfnet"
	if len(data) >= 4 && string(data[:4]) == "TFBN" {
		format = "tfb"
	}
	st := nl.Stats()
	info := api.NetlistInfo{
		Digest:  digest,
		Format:  format,
		Bytes:   int64(len(data)),
		Cells:   st.Cells,
		Nets:    st.Nets,
		Pins:    st.Pins,
		AvgPins: st.AvgPins,
		Loaded:  true,
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[digest]; ok {
		if e.nl != nil {
			// Lost a reload race; the winner's copy is equivalent.
			s.touch(e)
			return e.info, nil
		}
		// Evicted tombstone: reload in place so metadata that is not
		// derivable from the bytes — delta lineage, Parent — survives
		// the eviction/re-upload cycle.
		s.loadLocked(e, nl)
		return e.info, nil
	}
	e := &entry{info: info}
	s.entries[digest] = e
	s.loadLocked(e, nl)
	return e.info, nil
}

// ApplyDelta patches the parent netlist with a JSON delta document
// and registers the child under its own content address — the SHA-256
// of the patched netlist's canonical .tfb serialization, so identical
// post-edit netlists unify regardless of the edit path. The child
// entry records its lineage (parent digest + dirty cells); nothing is
// invalidated, because content addressing means the parent's caches
// and engines stay exactly as valid as they were.
//
// Re-applying a delta that lands on a known digest is idempotent (and
// reloads the netlist if it had been evicted); the first recorded
// lineage wins.
func (s *Store) ApplyDelta(parent string, deltaJSON []byte) (api.DeltaResult, error) {
	d, err := netlist.ParseDelta(deltaJSON)
	if err != nil {
		return api.DeltaResult{}, err
	}
	parentNL, _, err := s.Get(parent)
	if err != nil {
		return api.DeltaResult{}, err
	}
	// Patch and serialize outside the lock; edits must not block
	// readers. The parent netlist is immutable, so concurrent deltas
	// against one parent are safe.
	child, eff, err := d.Apply(parentNL)
	if err != nil {
		return api.DeltaResult{}, err
	}
	if child.NumCells() == 0 {
		return api.DeltaResult{}, fmt.Errorf("store: delta leaves an empty netlist")
	}
	var buf bytes.Buffer
	if err := child.WriteBinary(&buf); err != nil {
		return api.DeltaResult{}, err
	}
	digest := Digest(buf.Bytes())
	if digest == parent {
		// Identity edit on a canonically-serialized parent: the child
		// IS the parent. Report it without touching lineage — a digest
		// must never become its own delta ancestor.
		_, info, gerr := s.Get(parent)
		if gerr != nil {
			return api.DeltaResult{}, gerr
		}
		return api.DeltaResult{Parent: parent, Netlist: info, DirtyCells: len(eff.Dirty)}, nil
	}
	st := child.Stats()
	info := api.NetlistInfo{
		Digest:  digest,
		Format:  "tfb",
		Bytes:   int64(buf.Len()),
		Cells:   st.Cells,
		Nets:    st.Nets,
		Pins:    st.Pins,
		AvgPins: st.AvgPins,
		Loaded:  true,
		Parent:  parent,
	}
	lineage := &Lineage{Parent: parent, Dirty: eff.Dirty}

	res := api.DeltaResult{
		Parent:       parent,
		DirtyCells:   len(eff.Dirty),
		CellsAdded:   eff.CellsAdded,
		CellsRemoved: eff.CellsRemoved,
		NetsAdded:    eff.NetsAdded,
		NetsRemoved:  eff.NetsRemoved,
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[digest]; ok {
		if e.lineage == nil {
			e.lineage = lineage
			// An entry that predates its lineage (the child bytes were
			// uploaded directly first) gets the parent backfilled so
			// the wire metadata and Lineage never contradict.
			if e.info.Parent == "" {
				e.info.Parent = parent
			}
		}
		if e.nl == nil {
			// Known digest, evicted payload: reload it in place.
			s.loadLocked(e, child)
		} else {
			s.touch(e)
		}
		res.Netlist = e.info
		return res, nil
	}
	e := &entry{info: info, lineage: lineage}
	s.entries[digest] = e
	s.loadLocked(e, child)
	res.Netlist = e.info
	return res, nil
}

// Lineage returns a digest's delta lineage (parent + dirty cells), if
// it was produced by ApplyDelta. It survives eviction.
func (s *Store) Lineage(digest string) (*Lineage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok || e.lineage == nil {
		return nil, false
	}
	return e.lineage, true
}

// Get returns the loaded netlist for digest, refreshing its LRU
// position. It fails with ErrNotFound or ErrEvicted.
func (s *Store) Get(digest string) (*netlist.Netlist, api.NetlistInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.loaded(digest)
	if err != nil {
		return nil, api.NetlistInfo{}, err
	}
	s.touch(e)
	return e.nl, e.info, nil
}

// Engine returns the shared finder engine for digest, building it on
// first use. Jobs should hold the returned engine (it pins the
// netlist) rather than re-resolving the digest mid-run.
func (s *Store) Engine(digest string) (*tanglefind.Finder, api.NetlistInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.loaded(digest)
	if err != nil {
		return nil, api.NetlistInfo{}, err
	}
	if e.finder == nil {
		f, ferr := tanglefind.NewFinder(e.nl)
		if ferr != nil {
			return nil, api.NetlistInfo{}, ferr
		}
		e.finder = f
	}
	s.touch(e)
	return e.finder, e.info, nil
}

// Info returns the metadata for digest, loaded or tombstoned.
func (s *Store) Info(digest string) (api.NetlistInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return api.NetlistInfo{}, false
	}
	return e.info, true
}

// List returns every entry's metadata, most recently used first,
// tombstones last.
func (s *Store) List() []api.NetlistInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.NetlistInfo, 0, len(s.entries))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).info)
	}
	for _, e := range s.entries {
		if e.elem == nil {
			out = append(out, e.info)
		}
	}
	return out
}

// Stats reports the registry's memory state. EngineBytes is the
// estimated footprint of the lazily built engines on top of the
// netlists the pin budget tracks: pooled per-worker scratch and cached
// coarsening hierarchies.
func (s *Store) Stats() api.StoreStats {
	s.mu.Lock()
	finders := make([]*tanglefind.Finder, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.finder != nil {
			finders = append(finders, e.finder)
		}
	}
	st := api.StoreStats{
		Netlists:   s.lru.Len(),
		Tombstones: len(s.entries) - s.lru.Len(),
		PinsLoaded: s.pins,
		PinBudget:  max(s.pinBudget, 0),
		Evictions:  s.evictions,
	}
	s.mu.Unlock()
	// Estimate outside the registry lock: MemoryEstimate takes engine
	// locks, and a stats poll must never queue Ingest/Get behind them.
	for _, f := range finders {
		st.EngineBytes += f.MemoryEstimate()
	}
	return st
}

// TrimEngines drops the idle pooled worker state of every loaded
// engine (cached coarse hierarchies stay — rebuilding them is the
// expensive part). Callers can invoke it on memory pressure; running
// jobs are unaffected and pools refill lazily.
func (s *Store) TrimEngines() {
	s.mu.Lock()
	finders := make([]*tanglefind.Finder, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.finder != nil {
			finders = append(finders, e.finder)
		}
	}
	s.mu.Unlock()
	// Trim outside the registry lock: a trim must never block Ingest/Get.
	for _, f := range finders {
		f.TrimPool()
	}
}

// loadLocked makes e resident: attaches the parsed netlist, marks the
// metadata loaded, fronts the LRU and charges the pin budget (evicting
// as needed). Callers hold s.mu.
func (s *Store) loadLocked(e *entry, nl *netlist.Netlist) {
	e.nl = nl
	e.info.Loaded = true
	e.elem = s.lru.PushFront(e)
	s.pins += int64(e.info.Pins)
	s.evict()
}

// loaded resolves digest to a live entry; callers hold s.mu.
func (s *Store) loaded(digest string) (*entry, error) {
	e, ok := s.entries[digest]
	if !ok {
		return nil, ErrNotFound
	}
	if e.nl == nil {
		return nil, ErrEvicted
	}
	return e, nil
}

// touch marks an entry most recently used; callers hold s.mu.
func (s *Store) touch(e *entry) {
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
}

// evict drops least-recently-used entries until the pin budget holds
// again, always sparing the most recent entry so a single netlist
// larger than the whole budget is still servable. Callers hold s.mu.
func (s *Store) evict() {
	if s.pinBudget <= 0 {
		return
	}
	for s.pins > s.pinBudget && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		e.elem = nil
		e.nl = nil
		e.finder = nil
		e.info.Loaded = false
		s.pins -= int64(e.info.Pins)
		s.evictions++
	}
}
