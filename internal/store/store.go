// Package store is the serving layer's content-addressed netlist
// registry. Uploaded .tfnet/.tfb payloads are keyed by the SHA-256 of
// their bytes, parsed once into an immutable *netlist.Netlist shared
// by every job that references the digest, and paired with a lazily
// built tanglefind.Finder engine so repeated jobs over one netlist
// reuse the engine's pooled per-worker state.
//
// Memory is bounded by a pin budget: when the pins of all loaded
// netlists exceed it, least-recently-used entries are evicted.
// Eviction drops the parsed netlist and engine but keeps the metadata
// as a tombstone (Loaded=false), so clients get "re-upload" instead
// of "never existed". Jobs that resolved their netlist before the
// eviction keep running — the hypergraph is immutable and only
// becomes collectable once the last job releases it.
//
// Durability is pluggable (Backend): Open replays a crash-safe
// journal of netlist metadata, delta lineage and completed job
// results, with payload blobs content-addressed on disk and lazily
// re-parsed on first touch. Under a durable backend, eviction and
// restarts are both invisible to clients — the blob reloads on
// demand — and ErrEvicted only remains reachable on the in-memory
// NullBackend.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tanglefind"
	"tanglefind/api"
	"tanglefind/internal/netlist"
)

// ErrNotFound is returned for digests never uploaded.
var ErrNotFound = fmt.Errorf("store: netlist not found")

// ErrEvicted is returned for digests whose netlist was evicted by the
// pin budget and whose payload the backend cannot re-read; it must be
// uploaded again. With a durable backend, eviction is invisible to
// callers — the blob is lazily re-parsed on the next touch.
var ErrEvicted = fmt.Errorf("store: netlist evicted (re-upload it)")

// Store is the registry. Safe for concurrent use.
type Store struct {
	backend   Backend
	mu        sync.Mutex
	pinBudget int64 // max Σ pins of loaded entries; <= 0 means unlimited
	pins      int64
	entries   map[string]*entry
	lru       *list.List // front = most recently used; element value is *entry
	evictions int64

	lazyLoads atomic.Int64 // blobs re-parsed on touch (recovery or post-eviction)

	// Recovery bookkeeping, fixed after Open.
	recoveredNetlists int
	truncatedBytes    int64
	// recoveredResults holds the journal's job results until the jobs
	// layer drains them into its cache (RecoveredResults); the count
	// survives for stats.
	recoveredResults     map[string][]byte
	recoveredResultCount int
}

type entry struct {
	info   api.NetlistInfo
	nl     *netlist.Netlist
	finder *tanglefind.Finder // built on first Engine call
	elem   *list.Element      // nil once evicted
	// lineage survives eviction (it is metadata, like info): an
	// incremental job on a reloaded child can still find its parent.
	lineage *Lineage
}

// Lineage records how a delta-derived netlist relates to its parent:
// the parent digest and the dirty cell set of the edit, in the child
// id space. Incremental jobs use it to locate the parent's recorded
// state and to bound re-detection.
type Lineage struct {
	Parent string
	Dirty  []netlist.CellID
}

// New creates a registry that evicts least-recently-used netlists once
// the loaded pin total exceeds pinBudget (<= 0 disables eviction).
// Nothing is persisted: New is Open with the NullBackend.
func New(pinBudget int64) *Store {
	s, _ := Open(pinBudget, NullBackend{}) // NullBackend replay cannot fail
	return s
}

// Open creates a registry backed by b and replays b's journal:
// netlist metadata and delta lineage are fully recovered (payloads are
// lazily re-parsed from the blob store on first touch, so recovery
// cost is O(journal records), not O(pins)), and completed job results
// are staged for the jobs layer to rewarm its cache from
// (RecoveredResults). A torn journal tail — a crash mid-append — is
// truncated and reported in Stats, never an error.
func Open(pinBudget int64, b Backend) (*Store, error) {
	s := &Store{
		backend:          b,
		pinBudget:        pinBudget,
		entries:          make(map[string]*entry),
		lru:              list.New(),
		recoveredResults: make(map[string][]byte),
	}
	rs, err := b.Replay(func(rec Record) error {
		switch rec.Kind {
		case RecNetlist:
			if rec.Info == nil || rec.Info.Digest == "" {
				return nil // malformed but checksummed: skip, don't fail recovery
			}
			e, ok := s.entries[rec.Info.Digest]
			if !ok {
				e = &entry{}
				s.entries[rec.Info.Digest] = e
				s.recoveredNetlists++
			}
			lineage := e.lineage
			e.info = *rec.Info
			e.info.Loaded = false // resident only after the blob is re-parsed
			e.lineage = lineage
		case RecLineage:
			e, ok := s.entries[rec.Digest]
			if !ok {
				return nil // can't happen (lineage follows its netlist record)
			}
			if e.lineage == nil {
				e.lineage = &Lineage{Parent: rec.Parent, Dirty: rec.Dirty}
				if e.info.Parent == "" {
					e.info.Parent = rec.Parent
				}
			}
		case RecResult:
			if rec.Key != "" {
				s.recoveredResults[rec.Key] = rec.Result // last writer wins
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: journal replay: %w", err)
	}
	s.truncatedBytes = rs.TruncatedBytes
	s.recoveredResultCount = len(s.recoveredResults)
	return s, nil
}

// Close releases the backend. In-memory state stays usable, but
// nothing further is persisted.
func (s *Store) Close() error { return s.backend.Close() }

// Durable reports whether the store persists across restarts.
func (s *Store) Durable() bool { return s.backend.Durable() }

// AppendResult journals one completed job result under its compute
// identity so the result cache survives restarts. The jobs layer calls
// it after each cache fill; on a non-durable backend it is a no-op.
func (s *Store) AppendResult(key string, result json.RawMessage) error {
	return s.backend.Append(Record{Kind: RecResult, Key: key, Result: result})
}

// RecoveredResults drains the job results recovered by Open — one
// (cacheKey, api.JobResult JSON) pair per distinct key, last journal
// write winning. The jobs layer consumes it exactly once at startup.
func (s *Store) RecoveredResults() map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.recoveredResults
	s.recoveredResults = nil
	return out
}

// Digest returns the registry key for a payload: lowercase hex
// SHA-256 of the raw bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Ingest registers a payload: parses it (format autodetected by
// content), stores the netlist under its digest and returns the entry
// metadata. Re-uploading known bytes is idempotent and cheap when the
// netlist is still loaded; re-uploading an evicted digest reloads it.
// On a durable backend the payload and its metadata are journaled
// before Ingest returns, so the digest resolves after a restart.
func (s *Store) Ingest(data []byte) (api.NetlistInfo, error) {
	digest := Digest(data)

	// Fast path outside the parse: already loaded.
	s.mu.Lock()
	_, known := s.entries[digest]
	if e, ok := s.entries[digest]; ok && e.nl != nil {
		s.touch(e)
		info := e.info
		s.mu.Unlock()
		return info, nil
	}
	s.mu.Unlock()

	// Parse outside the lock; uploads must not block readers.
	nl, err := netlist.ReadAuto(bytes.NewReader(data))
	if err != nil {
		return api.NetlistInfo{}, err
	}
	if nl.NumCells() == 0 {
		return api.NetlistInfo{}, fmt.Errorf("store: empty netlist")
	}
	format := "tfnet"
	if len(data) >= 4 && string(data[:4]) == "TFBN" {
		format = "tfb"
	}
	st := nl.Stats()
	info := api.NetlistInfo{
		Digest:  digest,
		Format:  format,
		Bytes:   int64(len(data)),
		Cells:   st.Cells,
		Nets:    st.Nets,
		Pins:    st.Pins,
		AvgPins: st.AvgPins,
		Loaded:  true,
	}

	// Persist before registering: a digest must never be visible to
	// clients without its blob and journal record behind it (blob
	// first, so replay never meets a record without bytes; duplicate
	// records from a racing identical upload are last-writer-wins on
	// replay and therefore harmless).
	if !known || !s.backend.HasBlob(digest) {
		if err := s.backend.PutBlob(digest, data); err != nil {
			return api.NetlistInfo{}, err
		}
		if err := s.backend.Append(Record{Kind: RecNetlist, Info: &info}); err != nil {
			return api.NetlistInfo{}, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[digest]; ok {
		if e.nl != nil {
			// Lost a reload race; the winner's copy is equivalent.
			s.touch(e)
			return e.info, nil
		}
		// Evicted tombstone: reload in place so metadata that is not
		// derivable from the bytes — delta lineage, Parent — survives
		// the eviction/re-upload cycle.
		s.loadLocked(e, nl)
		return e.info, nil
	}
	e := &entry{info: info}
	s.entries[digest] = e
	s.loadLocked(e, nl)
	return e.info, nil
}

// ApplyDelta patches the parent netlist with a JSON delta document
// and registers the child under its own content address — the SHA-256
// of the patched netlist's canonical .tfb serialization, so identical
// post-edit netlists unify regardless of the edit path. The child
// entry records its lineage (parent digest + dirty cells); nothing is
// invalidated, because content addressing means the parent's caches
// and engines stay exactly as valid as they were.
//
// Re-applying a delta that lands on a known digest is idempotent (and
// reloads the netlist if it had been evicted); the first recorded
// lineage wins.
func (s *Store) ApplyDelta(parent string, deltaJSON []byte) (api.DeltaResult, error) {
	d, err := netlist.ParseDelta(deltaJSON)
	if err != nil {
		return api.DeltaResult{}, err
	}
	parentNL, _, err := s.Get(parent)
	if err != nil {
		return api.DeltaResult{}, err
	}
	// Patch and serialize outside the lock; edits must not block
	// readers. The parent netlist is immutable, so concurrent deltas
	// against one parent are safe.
	child, eff, err := d.Apply(parentNL)
	if err != nil {
		return api.DeltaResult{}, err
	}
	if child.NumCells() == 0 {
		return api.DeltaResult{}, fmt.Errorf("store: delta leaves an empty netlist")
	}
	var buf bytes.Buffer
	if err := child.WriteBinary(&buf); err != nil {
		return api.DeltaResult{}, err
	}
	digest := Digest(buf.Bytes())
	if digest == parent {
		// Identity edit on a canonically-serialized parent: the child
		// IS the parent. Report it without touching lineage — a digest
		// must never become its own delta ancestor.
		_, info, gerr := s.Get(parent)
		if gerr != nil {
			return api.DeltaResult{}, gerr
		}
		return api.DeltaResult{Parent: parent, Netlist: info, DirtyCells: len(eff.Dirty)}, nil
	}
	st := child.Stats()
	info := api.NetlistInfo{
		Digest:  digest,
		Format:  "tfb",
		Bytes:   int64(buf.Len()),
		Cells:   st.Cells,
		Nets:    st.Nets,
		Pins:    st.Pins,
		AvgPins: st.AvgPins,
		Loaded:  true,
		Parent:  parent,
	}
	lineage := &Lineage{Parent: parent, Dirty: eff.Dirty}

	// Persist the child like an upload (blob first, then its netlist
	// record, so replay never meets a record without bytes). The
	// lineage record is appended after registration below — only by
	// the call that actually attached it — and therefore always lands
	// behind its netlist record in the journal: a torn tail can strand
	// a lineage-less netlist (harmless: it just loses incremental
	// routing until the delta is re-applied) but never lineage
	// pointing at an unknown digest.
	if !s.backend.HasBlob(digest) {
		if err := s.backend.PutBlob(digest, buf.Bytes()); err != nil {
			return api.DeltaResult{}, err
		}
		if err := s.backend.Append(Record{Kind: RecNetlist, Info: &info}); err != nil {
			return api.DeltaResult{}, err
		}
	}

	res := api.DeltaResult{
		Parent:       parent,
		DirtyCells:   len(eff.Dirty),
		CellsAdded:   eff.CellsAdded,
		CellsRemoved: eff.CellsRemoved,
		NetsAdded:    eff.NetsAdded,
		NetsRemoved:  eff.NetsRemoved,
	}

	attachedLineage := false
	s.mu.Lock()
	if e, ok := s.entries[digest]; ok {
		if e.lineage == nil {
			e.lineage = lineage
			attachedLineage = true
			// An entry that predates its lineage (the child bytes were
			// uploaded directly first) gets the parent backfilled so
			// the wire metadata and Lineage never contradict.
			if e.info.Parent == "" {
				e.info.Parent = parent
			}
		}
		if e.nl == nil {
			// Known digest, non-resident payload: reload it in place.
			s.loadLocked(e, child)
		} else {
			s.touch(e)
		}
		res.Netlist = e.info
	} else {
		e := &entry{info: info, lineage: lineage}
		s.entries[digest] = e
		s.loadLocked(e, child)
		res.Netlist = e.info
		attachedLineage = true
	}
	s.mu.Unlock()

	// Journal the lineage exactly once — by whichever call attached it
	// ("the first recorded lineage wins" holds across restarts too).
	if attachedLineage {
		if err := s.backend.Append(Record{Kind: RecLineage, Digest: digest, Parent: parent, Dirty: eff.Dirty}); err != nil {
			return api.DeltaResult{}, err
		}
	}
	return res, nil
}

// Lineage returns a digest's delta lineage (parent + dirty cells), if
// it was produced by ApplyDelta. It survives eviction.
func (s *Store) Lineage(digest string) (*Lineage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok || e.lineage == nil {
		return nil, false
	}
	return e.lineage, true
}

// Get returns the loaded netlist for digest, refreshing its LRU
// position. A digest that is known but not resident (recovered from
// the journal, or evicted under a durable backend) is lazily re-parsed
// from the blob store; Get fails with ErrNotFound for unknown digests
// and ErrEvicted when no payload is retrievable.
func (s *Store) Get(digest string) (*netlist.Netlist, api.NetlistInfo, error) {
	_, nl, info, err := s.acquire(digest)
	return nl, info, err
}

// acquire resolves digest to a resident entry, re-parsing the blob on
// a miss (the lazy half of recovery). It returns with s.mu released;
// the returned netlist pointer stays valid regardless of later
// eviction (the hypergraph is immutable).
func (s *Store) acquire(digest string) (*entry, *netlist.Netlist, api.NetlistInfo, error) {
	s.mu.Lock()
	e, ok := s.entries[digest]
	if !ok {
		s.mu.Unlock()
		return nil, nil, api.NetlistInfo{}, ErrNotFound
	}
	if e.nl != nil {
		s.touch(e)
		nl, info := e.nl, e.info
		s.mu.Unlock()
		return e, nl, info, nil
	}
	s.mu.Unlock()

	// Not resident. Re-parse outside the lock: a recovery-sized replay
	// of blobs must not serialize every reader behind one parse.
	data, err := s.backend.GetBlob(digest)
	if err != nil {
		if errors.Is(err, ErrNoBlob) {
			return nil, nil, api.NetlistInfo{}, ErrEvicted
		}
		return nil, nil, api.NetlistInfo{}, err
	}
	nl, err := netlist.ReadAuto(bytes.NewReader(data))
	if err != nil {
		return nil, nil, api.NetlistInfo{}, fmt.Errorf("store: reload %s: %w", digest, err)
	}
	s.mu.Lock()
	if e.nl == nil {
		s.loadLocked(e, nl)
		s.lazyLoads.Add(1)
	} else {
		s.touch(e) // lost a reload race; the winner's copy is equivalent
	}
	rnl, info := e.nl, e.info
	s.mu.Unlock()
	return e, rnl, info, nil
}

// Engine returns the shared finder engine for digest, building it on
// first use (and lazily reloading the netlist like Get). Jobs should
// hold the returned engine (it pins the netlist) rather than
// re-resolving the digest mid-run.
func (s *Store) Engine(digest string) (*tanglefind.Finder, api.NetlistInfo, error) {
	e, nl, _, err := s.acquire(digest)
	if err != nil {
		return nil, api.NetlistInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.nl == nil {
		// Evicted between acquire and here; the parse we hold is still
		// the digest's netlist, so reinstate it rather than failing.
		s.loadLocked(e, nl)
	}
	if e.finder == nil {
		f, ferr := tanglefind.NewFinder(e.nl)
		if ferr != nil {
			return nil, api.NetlistInfo{}, ferr
		}
		e.finder = f
	}
	s.touch(e)
	return e.finder, e.info, nil
}

// Info returns the metadata for digest, loaded or tombstoned.
func (s *Store) Info(digest string) (api.NetlistInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return api.NetlistInfo{}, false
	}
	return e.info, true
}

// List returns every entry's metadata in the API's documented total
// order: resident entries most recently used first, then non-resident
// entries (tombstones and not-yet-reloaded recovered digests) in
// ascending digest order. Two consecutive calls over an unchanged
// registry return identical listings.
func (s *Store) List() []api.NetlistInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.NetlistInfo, 0, len(s.entries))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).info)
	}
	unloadedFrom := len(out)
	for _, e := range s.entries {
		if e.elem == nil {
			out = append(out, e.info)
		}
	}
	// Map iteration order is random; pin the tail so the listing is a
	// total order, not a per-call shuffle.
	tail := out[unloadedFrom:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].Digest < tail[j].Digest })
	return out
}

// Stats reports the registry's memory state. EngineBytes is the
// estimated footprint of the lazily built engines on top of the
// netlists the pin budget tracks: pooled per-worker scratch and cached
// coarsening hierarchies.
func (s *Store) Stats() api.StoreStats {
	s.mu.Lock()
	finders := make([]*tanglefind.Finder, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.finder != nil {
			finders = append(finders, e.finder)
		}
	}
	st := api.StoreStats{
		Netlists:              s.lru.Len(),
		Tombstones:            len(s.entries) - s.lru.Len(),
		PinsLoaded:            s.pins,
		PinBudget:             max(s.pinBudget, 0),
		Evictions:             s.evictions,
		Durable:               s.backend.Durable(),
		RecoveredNetlists:     s.recoveredNetlists,
		RecoveredResults:      s.recoveredResultCount,
		LazyReloads:           s.lazyLoads.Load(),
		JournalTruncatedBytes: s.truncatedBytes,
	}
	s.mu.Unlock()
	// Estimate outside the registry lock: MemoryEstimate takes engine
	// locks, and a stats poll must never queue Ingest/Get behind them.
	for _, f := range finders {
		st.EngineBytes += f.MemoryEstimate()
	}
	return st
}

// TrimEngines drops the idle pooled worker state of every loaded
// engine (cached coarse hierarchies stay — rebuilding them is the
// expensive part). Callers can invoke it on memory pressure; running
// jobs are unaffected and pools refill lazily.
func (s *Store) TrimEngines() {
	s.mu.Lock()
	finders := make([]*tanglefind.Finder, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.finder != nil {
			finders = append(finders, e.finder)
		}
	}
	s.mu.Unlock()
	// Trim outside the registry lock: a trim must never block Ingest/Get.
	for _, f := range finders {
		f.TrimPool()
	}
}

// loadLocked makes e resident: attaches the parsed netlist, marks the
// metadata loaded, fronts the LRU and charges the pin budget (evicting
// as needed). Callers hold s.mu.
func (s *Store) loadLocked(e *entry, nl *netlist.Netlist) {
	e.nl = nl
	e.info.Loaded = true
	e.elem = s.lru.PushFront(e)
	s.pins += int64(e.info.Pins)
	s.evict()
}

// touch marks an entry most recently used; callers hold s.mu.
func (s *Store) touch(e *entry) {
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
}

// evict drops least-recently-used entries until the pin budget holds
// again, always sparing the most recent entry so a single netlist
// larger than the whole budget is still servable. Callers hold s.mu.
func (s *Store) evict() {
	if s.pinBudget <= 0 {
		return
	}
	for s.pins > s.pinBudget && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		e.elem = nil
		e.nl = nil
		e.finder = nil
		e.info.Loaded = false
		s.pins -= int64(e.info.Pins)
		s.evictions++
	}
}
