package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// payload serializes a small planted-block netlist in the requested
// format.
func payload(t *testing.T, cells int, seed uint64, binary bool) []byte {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: cells, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if binary {
		err = rg.Netlist.WriteBinary(&buf)
	} else {
		err = rg.Netlist.Write(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestIdempotentAndAutodetect(t *testing.T) {
	s := New(0)
	text := payload(t, 300, 1, false)
	bin := payload(t, 300, 1, true)

	it, err := s.Ingest(text)
	if err != nil {
		t.Fatal(err)
	}
	if it.Format != "tfnet" || it.Cells != 300 || !it.Loaded {
		t.Errorf("text info = %+v", it)
	}
	ib, err := s.Ingest(bin)
	if err != nil {
		t.Fatal(err)
	}
	if ib.Format != "tfb" {
		t.Errorf("binary info = %+v", ib)
	}
	// Same hypergraph, different bytes: distinct registry identities.
	if it.Digest == ib.Digest {
		t.Error("text and binary payloads share a digest")
	}

	// Re-ingest returns the same entry without growing the registry.
	it2, err := s.Ingest(text)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Digest != it.Digest {
		t.Error("re-ingest changed digest")
	}
	if st := s.Stats(); st.Netlists != 2 {
		t.Errorf("registry has %d entries, want 2", st.Netlists)
	}

	nl, _, err := s.Get(it.Digest)
	if err != nil || nl.NumCells() != 300 {
		t.Fatalf("Get: %v (cells %d)", err, nl.NumCells())
	}
	if _, _, err := s.Get("deadbeef"); err != ErrNotFound {
		t.Errorf("unknown digest error = %v", err)
	}
	if _, err := s.Ingest([]byte("not a netlist")); err == nil {
		t.Error("garbage payload accepted")
	}
}

func TestEngineSharedAndPinned(t *testing.T) {
	s := New(0)
	info, err := s.Ingest(payload(t, 400, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := s.Engine(info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := s.Engine(info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("Engine rebuilt per call; must be shared")
	}
	if f1.Netlist().NumCells() != 400 {
		t.Errorf("engine netlist cells = %d", f1.Netlist().NumCells())
	}
}

func TestEvictionByPinBudget(t *testing.T) {
	// Budget fits roughly two of the three netlists.
	first := payload(t, 400, 3, true)
	nl, err := netlist.ReadAuto(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(nl.NumPins()) * 5 / 2
	s := New(budget)

	var infos []string
	for i := uint64(3); i < 6; i++ {
		info, err := s.Ingest(payload(t, 400, i, true))
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info.Digest)
	}
	st := s.Stats()
	if st.Evictions == 0 || st.PinsLoaded > budget {
		t.Fatalf("stats after overflow: %+v (budget %d)", st, budget)
	}
	// The oldest entry was evicted: tombstoned, not forgotten.
	if _, _, err := s.Get(infos[0]); err != ErrEvicted {
		t.Errorf("oldest entry error = %v, want ErrEvicted", err)
	}
	info, ok := s.Info(infos[0])
	if !ok || info.Loaded {
		t.Errorf("tombstone info = %+v, ok=%v", info, ok)
	}
	if _, _, err := s.Get(infos[2]); err != nil {
		t.Errorf("newest entry evicted: %v", err)
	}

	// Touching an entry protects it: access infos[1], ingest a fourth
	// netlist, and infos[1] must survive while infos[2] goes.
	if _, _, err := s.Get(infos[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(payload(t, 400, 6, true)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(infos[1]); err != nil {
		t.Errorf("recently used entry evicted: %v", err)
	}
	if _, _, err := s.Get(infos[2]); err != ErrEvicted {
		t.Errorf("LRU entry error = %v, want ErrEvicted", err)
	}

	// Re-uploading an evicted payload reloads it in place.
	reload, err := s.Ingest(payload(t, 400, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	if reload.Digest != infos[0] || !reload.Loaded {
		t.Errorf("reload info = %+v", reload)
	}
	if _, _, err := s.Get(infos[0]); err != nil {
		t.Errorf("reloaded entry unreadable: %v", err)
	}
}

func TestSingleOversizeEntrySurvives(t *testing.T) {
	s := New(1) // absurd budget: every entry exceeds it
	info, err := s.Ingest(payload(t, 300, 9, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(info.Digest); err != nil {
		t.Errorf("sole oversize entry evicted: %v", err)
	}
	// A second ingest displaces it: the newest always survives.
	info2, err := s.Ingest(payload(t, 300, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(info2.Digest); err != nil {
		t.Errorf("new entry missing: %v", err)
	}
	if _, _, err := s.Get(info.Digest); err != ErrEvicted {
		t.Errorf("displaced entry error = %v", err)
	}
}

func TestListOrder(t *testing.T) {
	s := New(0)
	var digests []string
	for i := uint64(1); i <= 3; i++ {
		info, err := s.Ingest(payload(t, 250, i, true))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, info.Digest)
	}
	// Touch the first so it becomes most recent.
	if _, _, err := s.Get(digests[0]); err != nil {
		t.Fatal(err)
	}
	l := s.List()
	if len(l) != 3 {
		t.Fatalf("list has %d entries", len(l))
	}
	if l[0].Digest != digests[0] {
		t.Errorf("most recent is %s, want %s", l[0].Digest, digests[0])
	}
}

func TestDigestStable(t *testing.T) {
	d := Digest([]byte("abc"))
	if d != fmt.Sprintf("%x", [32]byte{0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea,
		0x41, 0x41, 0x40, 0xde, 0x5d, 0xae, 0x22, 0x23,
		0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c,
		0xb4, 0x10, 0xff, 0x61, 0xf2, 0x00, 0x15, 0xad}) {
		t.Errorf("Digest(abc) = %s", d)
	}
}

// deltaDoc builds a small reconnect delta against the registered
// netlist: rewire net 0 onto cells {0, 5}.
func deltaDoc() []byte {
	return []byte(`{"set_nets":[{"net":0,"cells":[0,5]}]}`)
}

func TestApplyDeltaRegistersChild(t *testing.T) {
	s := New(0)
	parent, err := s.Ingest(payload(t, 4000, 71, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ApplyDelta(parent.Digest, deltaDoc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent != parent.Digest || res.Netlist.Parent != parent.Digest {
		t.Fatalf("lineage not recorded: %+v", res)
	}
	if res.Netlist.Digest == parent.Digest {
		t.Fatal("child digest equals parent")
	}
	if res.DirtyCells == 0 {
		t.Fatal("no dirty cells reported")
	}
	lin, ok := s.Lineage(res.Netlist.Digest)
	if !ok || lin.Parent != parent.Digest || len(lin.Dirty) != res.DirtyCells {
		t.Fatalf("Lineage = %+v, %v", lin, ok)
	}
	if _, ok := s.Lineage(parent.Digest); ok {
		t.Fatal("parent has lineage")
	}
	// The child is a live, loadable entry.
	nl, info, err := s.Get(res.Netlist.Digest)
	if err != nil || !info.Loaded {
		t.Fatalf("child not loaded: %v", err)
	}
	if nl.NetSize(0) != 2 {
		t.Fatalf("edit not applied: net 0 has %d pins", nl.NetSize(0))
	}

	// Idempotent: same delta lands on the same digest, one entry.
	res2, err := s.ApplyDelta(parent.Digest, deltaDoc())
	if err != nil || res2.Netlist.Digest != res.Netlist.Digest {
		t.Fatalf("re-apply: %+v, %v", res2, err)
	}
	if n := len(s.List()); n != 2 {
		t.Fatalf("registry holds %d entries, want 2", n)
	}

	// Content addressing: uploading the child's canonical bytes lands
	// on the same digest.
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	up, err := s.Ingest(buf.Bytes())
	if err != nil || up.Digest != res.Netlist.Digest {
		t.Fatalf("content address mismatch: %+v, %v", up, err)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	s := New(0)
	if _, err := s.ApplyDelta("nope", deltaDoc()); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing parent: %v", err)
	}
	parent, err := s.Ingest(payload(t, 2000, 72, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDelta(parent.Digest, []byte(`{"bogus":1}`)); err == nil {
		t.Error("malformed delta accepted")
	}
	if _, err := s.ApplyDelta(parent.Digest, []byte(`{"remove_cells":[99999999]}`)); err == nil {
		t.Error("out-of-range delta accepted")
	}
}

// TestLineageSurvivesEvictAndReupload: evicting a delta child and
// re-uploading its bytes must keep its lineage and Parent — the
// metadata is not derivable from the payload.
func TestLineageSurvivesEvictAndReupload(t *testing.T) {
	s := New(0)
	parent, err := s.Ingest(payload(t, 3000, 73, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ApplyDelta(parent.Digest, deltaDoc())
	if err != nil {
		t.Fatal(err)
	}
	child := res.Netlist.Digest
	nl, _, err := s.Get(child)
	if err != nil {
		t.Fatal(err)
	}
	var childBytes bytes.Buffer
	if err := nl.WriteBinary(&childBytes); err != nil {
		t.Fatal(err)
	}

	// Touch the parent so the child is least recently used, then force
	// it out with a tiny budget (eviction spares the MRU entry).
	if _, _, err := s.Get(parent.Digest); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.pinBudget = 1
	s.evict()
	s.mu.Unlock()
	if _, _, err := s.Get(child); !errors.Is(err, ErrEvicted) {
		t.Fatalf("child not evicted: %v", err)
	}
	if lin, ok := s.Lineage(child); !ok || lin.Parent != parent.Digest {
		t.Fatalf("lineage lost at eviction: %+v, %v", lin, ok)
	}

	s.mu.Lock()
	s.pinBudget = 0
	s.mu.Unlock()
	info, err := s.Ingest(childBytes.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != child || !info.Loaded {
		t.Fatalf("re-upload landed elsewhere: %+v", info)
	}
	if info.Parent != parent.Digest {
		t.Errorf("re-upload dropped Parent: %+v", info)
	}
	if lin, ok := s.Lineage(child); !ok || lin.Parent != parent.Digest {
		t.Fatalf("lineage lost on re-upload: %+v, %v", lin, ok)
	}
}

// TestIdentityDeltaDoesNotSelfLineage: a no-op delta on a canonically
// serialized parent lands on the parent's own digest and must not make
// the digest its own ancestor.
func TestIdentityDeltaDoesNotSelfLineage(t *testing.T) {
	s := New(0)
	parent, err := s.Ingest(payload(t, 2000, 74, true)) // canonical .tfb bytes
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ApplyDelta(parent.Digest, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.Digest != parent.Digest || res.Netlist.Parent != "" {
		t.Fatalf("identity delta result: %+v", res)
	}
	if _, ok := s.Lineage(parent.Digest); ok {
		t.Fatal("identity delta attached self-lineage")
	}
}

// TestLineageBackfillsParentOnConvergence: uploading the child bytes
// first and then reaching the same digest via a delta must leave the
// wire metadata (Parent) and Lineage agreeing.
func TestLineageBackfillsParentOnConvergence(t *testing.T) {
	s := New(0)
	parent, err := s.Ingest(payload(t, 3000, 75, true))
	if err != nil {
		t.Fatal(err)
	}
	// Compute the child bytes out-of-band and upload them directly.
	nl, _, err := s.Get(parent.Digest)
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.ParseDelta(deltaDoc())
	if err != nil {
		t.Fatal(err)
	}
	child, _, err := d.Apply(nl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := child.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	up, err := s.Ingest(buf.Bytes())
	if err != nil || up.Parent != "" {
		t.Fatalf("direct upload: %+v, %v", up, err)
	}
	// The delta converges on the uploaded digest and backfills Parent.
	res, err := s.ApplyDelta(parent.Digest, deltaDoc())
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.Digest != up.Digest || res.Netlist.Parent != parent.Digest {
		t.Fatalf("converged delta result: %+v", res)
	}
	if info, ok := s.Info(up.Digest); !ok || info.Parent != parent.Digest {
		t.Fatalf("registry metadata not backfilled: %+v", info)
	}
	if lin, ok := s.Lineage(up.Digest); !ok || lin.Parent != parent.Digest {
		t.Fatalf("lineage missing: %+v, %v", lin, ok)
	}
}
