package store

import (
	"bytes"
	"fmt"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// payload serializes a small planted-block netlist in the requested
// format.
func payload(t *testing.T, cells int, seed uint64, binary bool) []byte {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: cells, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if binary {
		err = rg.Netlist.WriteBinary(&buf)
	} else {
		err = rg.Netlist.Write(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestIdempotentAndAutodetect(t *testing.T) {
	s := New(0)
	text := payload(t, 300, 1, false)
	bin := payload(t, 300, 1, true)

	it, err := s.Ingest(text)
	if err != nil {
		t.Fatal(err)
	}
	if it.Format != "tfnet" || it.Cells != 300 || !it.Loaded {
		t.Errorf("text info = %+v", it)
	}
	ib, err := s.Ingest(bin)
	if err != nil {
		t.Fatal(err)
	}
	if ib.Format != "tfb" {
		t.Errorf("binary info = %+v", ib)
	}
	// Same hypergraph, different bytes: distinct registry identities.
	if it.Digest == ib.Digest {
		t.Error("text and binary payloads share a digest")
	}

	// Re-ingest returns the same entry without growing the registry.
	it2, err := s.Ingest(text)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Digest != it.Digest {
		t.Error("re-ingest changed digest")
	}
	if st := s.Stats(); st.Netlists != 2 {
		t.Errorf("registry has %d entries, want 2", st.Netlists)
	}

	nl, _, err := s.Get(it.Digest)
	if err != nil || nl.NumCells() != 300 {
		t.Fatalf("Get: %v (cells %d)", err, nl.NumCells())
	}
	if _, _, err := s.Get("deadbeef"); err != ErrNotFound {
		t.Errorf("unknown digest error = %v", err)
	}
	if _, err := s.Ingest([]byte("not a netlist")); err == nil {
		t.Error("garbage payload accepted")
	}
}

func TestEngineSharedAndPinned(t *testing.T) {
	s := New(0)
	info, err := s.Ingest(payload(t, 400, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := s.Engine(info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := s.Engine(info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("Engine rebuilt per call; must be shared")
	}
	if f1.Netlist().NumCells() != 400 {
		t.Errorf("engine netlist cells = %d", f1.Netlist().NumCells())
	}
}

func TestEvictionByPinBudget(t *testing.T) {
	// Budget fits roughly two of the three netlists.
	first := payload(t, 400, 3, true)
	nl, err := netlist.ReadAuto(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(nl.NumPins()) * 5 / 2
	s := New(budget)

	var infos []string
	for i := uint64(3); i < 6; i++ {
		info, err := s.Ingest(payload(t, 400, i, true))
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info.Digest)
	}
	st := s.Stats()
	if st.Evictions == 0 || st.PinsLoaded > budget {
		t.Fatalf("stats after overflow: %+v (budget %d)", st, budget)
	}
	// The oldest entry was evicted: tombstoned, not forgotten.
	if _, _, err := s.Get(infos[0]); err != ErrEvicted {
		t.Errorf("oldest entry error = %v, want ErrEvicted", err)
	}
	info, ok := s.Info(infos[0])
	if !ok || info.Loaded {
		t.Errorf("tombstone info = %+v, ok=%v", info, ok)
	}
	if _, _, err := s.Get(infos[2]); err != nil {
		t.Errorf("newest entry evicted: %v", err)
	}

	// Touching an entry protects it: access infos[1], ingest a fourth
	// netlist, and infos[1] must survive while infos[2] goes.
	if _, _, err := s.Get(infos[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(payload(t, 400, 6, true)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(infos[1]); err != nil {
		t.Errorf("recently used entry evicted: %v", err)
	}
	if _, _, err := s.Get(infos[2]); err != ErrEvicted {
		t.Errorf("LRU entry error = %v, want ErrEvicted", err)
	}

	// Re-uploading an evicted payload reloads it in place.
	reload, err := s.Ingest(payload(t, 400, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	if reload.Digest != infos[0] || !reload.Loaded {
		t.Errorf("reload info = %+v", reload)
	}
	if _, _, err := s.Get(infos[0]); err != nil {
		t.Errorf("reloaded entry unreadable: %v", err)
	}
}

func TestSingleOversizeEntrySurvives(t *testing.T) {
	s := New(1) // absurd budget: every entry exceeds it
	info, err := s.Ingest(payload(t, 300, 9, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(info.Digest); err != nil {
		t.Errorf("sole oversize entry evicted: %v", err)
	}
	// A second ingest displaces it: the newest always survives.
	info2, err := s.Ingest(payload(t, 300, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(info2.Digest); err != nil {
		t.Errorf("new entry missing: %v", err)
	}
	if _, _, err := s.Get(info.Digest); err != ErrEvicted {
		t.Errorf("displaced entry error = %v", err)
	}
}

func TestListOrder(t *testing.T) {
	s := New(0)
	var digests []string
	for i := uint64(1); i <= 3; i++ {
		info, err := s.Ingest(payload(t, 250, i, true))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, info.Digest)
	}
	// Touch the first so it becomes most recent.
	if _, _, err := s.Get(digests[0]); err != nil {
		t.Fatal(err)
	}
	l := s.List()
	if len(l) != 3 {
		t.Fatalf("list has %d entries", len(l))
	}
	if l[0].Digest != digests[0] {
		t.Errorf("most recent is %s, want %s", l[0].Digest, digests[0])
	}
}

func TestDigestStable(t *testing.T) {
	d := Digest([]byte("abc"))
	if d != fmt.Sprintf("%x", [32]byte{0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea,
		0x41, 0x41, 0x40, 0xde, 0x5d, 0xae, 0x22, 0x23,
		0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c,
		0xb4, 0x10, 0xff, 0x61, 0xf2, 0x00, 0x15, 0xad}) {
		t.Errorf("Digest(abc) = %s", d)
	}
}
