package store

import (
	"encoding/json"
	"errors"

	"tanglefind/api"
	"tanglefind/internal/netlist"
)

// ErrNoBlob is returned by Backend.GetBlob for digests whose payload
// the backend does not hold.
var ErrNoBlob = errors.New("store: no blob for digest")

// Record kinds in the journal. Every record is one self-contained JSON
// document; replay applies them in append order with last-writer-wins
// semantics per key, so duplicated records (e.g. from a racing upload
// of identical bytes) are harmless.
const (
	// RecNetlist registers a digest's metadata. The payload bytes are
	// stored separately (PutBlob) and re-parsed lazily on first touch,
	// so replay is O(journal), not O(pins).
	RecNetlist = "netlist"
	// RecLineage attaches delta lineage (parent digest + dirty cells)
	// to a digest. Always appended after the digest's RecNetlist, so a
	// torn tail can never leave lineage for an unknown netlist.
	RecLineage = "lineage"
	// RecResult journals one completed job result under its compute
	// identity (the jobs layer's cacheKey), rewarming the result cache
	// on restart.
	RecResult = "result"
)

// Record is one journal entry. Only the fields of its Kind are set.
type Record struct {
	Kind string `json:"kind"`
	// RecNetlist:
	Info *api.NetlistInfo `json:"info,omitempty"`
	// RecLineage:
	Digest string           `json:"digest,omitempty"`
	Parent string           `json:"parent,omitempty"`
	Dirty  []netlist.CellID `json:"dirty,omitempty"`
	// RecResult:
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// ReplayStats summarizes one journal replay.
type ReplayStats struct {
	// Records is the number of intact records applied.
	Records int
	// TruncatedBytes is the size of the torn tail discarded (and
	// physically truncated) at the end of the journal: a crash mid-
	// append leaves a record with a short or checksum-failing frame,
	// which replay cuts off so the next append starts clean.
	TruncatedBytes int64
}

// Backend is the persistence layer behind a Store: a blob store for
// the raw .tfnet/.tfb payloads keyed by digest, plus an append-only
// record journal for everything that is not derivable from the blobs
// (registry membership, delta lineage, completed job results).
//
// Implementations must be safe for concurrent use. Append must be
// durable when it returns (fsync'd for disk backends); Replay is
// called once, before the Store serves traffic.
type Backend interface {
	// Durable reports whether the backend survives a process restart.
	Durable() bool
	// PutBlob stores data under digest. Storing a digest that already
	// exists is a cheap no-op (blobs are content-addressed, so equal
	// digests mean equal bytes).
	PutBlob(digest string, data []byte) error
	// GetBlob returns the payload stored under digest, or ErrNoBlob.
	GetBlob(digest string) ([]byte, error)
	// HasBlob reports whether digest's payload is retrievable.
	HasBlob(digest string) bool
	// Append durably adds one record to the journal.
	Append(rec Record) error
	// Replay streams the journal in append order, truncating any torn
	// tail, and reports what it did. fn returning an error aborts.
	Replay(fn func(Record) error) (ReplayStats, error)
	// Close releases the backend's resources.
	Close() error
}

// NullBackend is the in-memory no-op backend: nothing is persisted,
// nothing is recovered, every blob read misses. A Store built on it
// behaves exactly like the pre-durability registry — eviction means
// re-upload.
type NullBackend struct{}

func (NullBackend) Durable() bool                  { return false }
func (NullBackend) PutBlob(string, []byte) error   { return nil }
func (NullBackend) GetBlob(string) ([]byte, error) { return nil, ErrNoBlob }
func (NullBackend) HasBlob(string) bool            { return false }
func (NullBackend) Append(Record) error            { return nil }
func (NullBackend) Replay(func(Record) error) (ReplayStats, error) {
	return ReplayStats{}, nil
}
func (NullBackend) Close() error { return nil }
