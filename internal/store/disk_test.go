package store

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"tanglefind/api"
	"tanglefind/internal/netlist"
)

// reopen cycles a disk backend: close, reopen the same directory.
func reopen(t *testing.T, b *DiskBackend) *DiskBackend {
	t.Helper()
	dir := b.Dir()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	nb, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return nb
}

// replayAll collects every intact record.
func replayAll(t *testing.T, b *DiskBackend) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	st, err := b.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, st
}

func TestDiskJournalRoundTrip(t *testing.T) {
	b, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	want := []Record{
		{Kind: RecNetlist, Info: &api.NetlistInfo{Digest: "aaa", Cells: 10, Pins: 40}},
		{Kind: RecLineage, Digest: "bbb", Parent: "aaa", Dirty: []netlist.CellID{1, 2, 3}},
		{Kind: RecResult, Key: "find|aaa|0|{}", Result: json.RawMessage(`{"candidates":7}`)},
	}
	for _, r := range want {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	b = reopen(t, b)
	defer b.Close()
	got, st := replayAll(t, b)
	if st.TruncatedBytes != 0 {
		t.Errorf("clean journal reported %d truncated bytes", st.TruncatedBytes)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if got[0].Info == nil || got[0].Info.Digest != "aaa" || got[0].Info.Pins != 40 {
		t.Errorf("netlist record = %+v", got[0])
	}
	if got[1].Parent != "aaa" || len(got[1].Dirty) != 3 {
		t.Errorf("lineage record = %+v", got[1])
	}
	if got[2].Key == "" || string(got[2].Result) != `{"candidates":7}` {
		t.Errorf("result record = %+v", got[2])
	}

	// Appending after a replay extends the log, never overwrites it.
	if err := b.Append(Record{Kind: RecResult, Key: "k2", Result: json.RawMessage(`1`)}); err != nil {
		t.Fatal(err)
	}
	b = reopen(t, b)
	defer b.Close()
	if got, _ := replayAll(t, b); len(got) != 4 {
		t.Fatalf("after post-replay append: %d records, want 4", len(got))
	}
}

func TestDiskJournalTornTailTruncated(t *testing.T) {
	b, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := b.Append(Record{Kind: RecResult, Key: "k", Result: json.RawMessage(`0`)}); err != nil {
			t.Fatal(err)
		}
	}
	intact, err := os.Stat(b.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn frame: a header promising more
	// payload than made it to disk.
	f, err := os.OpenFile(b.JournalPath(), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b = reopen(t, b)
	defer b.Close()
	got, st := replayAll(t, b)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want the 3 intact ones", len(got))
	}
	if st.TruncatedBytes != 6 {
		t.Errorf("truncated %d bytes, want 6", st.TruncatedBytes)
	}
	if fi, _ := os.Stat(b.JournalPath()); fi.Size() != intact.Size() {
		t.Errorf("journal size %d after truncation, want %d", fi.Size(), intact.Size())
	}
	// The log is clean again: the next append replays intact.
	if err := b.Append(Record{Kind: RecResult, Key: "fresh", Result: json.RawMessage(`1`)}); err != nil {
		t.Fatal(err)
	}
	b = reopen(t, b)
	defer b.Close()
	if got, st := replayAll(t, b); len(got) != 4 || st.TruncatedBytes != 0 {
		t.Fatalf("after recovery append: %d records, %d truncated", len(got), st.TruncatedBytes)
	}
}

func TestDiskJournalChecksumCutsCorruptRecord(t *testing.T) {
	b, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 2; i++ {
		if err := b.Append(Record{Kind: RecResult, Key: "k", Result: json.RawMessage(`0`)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte inside the second record.
	data, err := os.ReadFile(b.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(b.JournalPath(), data, 0o644); err != nil {
		t.Fatal(err)
	}

	b = reopen(t, b)
	defer b.Close()
	got, st := replayAll(t, b)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1 (corrupt second record dropped)", len(got))
	}
	if st.TruncatedBytes == 0 {
		t.Error("corrupt record not counted as truncated")
	}
}

func TestDiskBlobs(t *testing.T) {
	b, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.HasBlob("d1") {
		t.Error("HasBlob on empty store")
	}
	if _, err := b.GetBlob("d1"); !errors.Is(err, ErrNoBlob) {
		t.Errorf("GetBlob miss error = %v, want ErrNoBlob", err)
	}
	if err := b.PutBlob("d1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBlob("d1", []byte("payload")); err != nil {
		t.Fatal(err) // content-addressed re-put is a no-op
	}
	data, err := b.GetBlob("d1")
	if err != nil || string(data) != "payload" {
		t.Fatalf("GetBlob = %q, %v", data, err)
	}
	if !b.HasBlob("d1") {
		t.Error("HasBlob after put")
	}
}

// tornBackend simulates a crash mid-journal-append: the configured
// append writes only half its frame to disk, exactly what a power cut
// between write and sync can leave behind.
type tornBackend struct {
	*DiskBackend
	tearAt int // 1-based Append call to tear; 0 tears nothing
	calls  int
}

func (tb *tornBackend) Append(rec Record) error {
	tb.calls++
	if tb.calls != tb.tearAt {
		return tb.DiskBackend.Append(rec)
	}
	before, err := os.Stat(tb.JournalPath())
	if err != nil {
		return err
	}
	if err := tb.DiskBackend.Append(rec); err != nil {
		return err
	}
	after, err := os.Stat(tb.JournalPath())
	if err != nil {
		return err
	}
	cut := before.Size() + (after.Size()-before.Size())/2
	return os.Truncate(tb.JournalPath(), cut)
}

func TestStoreRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(0, b)
	if err != nil {
		t.Fatal(err)
	}
	data := payload(t, 300, 7, true)
	info, err := s.Ingest(data)
	if err != nil {
		t.Fatal(err)
	}
	child, err := s.ApplyDelta(info.Digest, deltaDoc())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResult("find|key", json.RawMessage(`{"candidates":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: metadata and lineage recover from the journal alone.
	b2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(0, b2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if !st.Durable || st.RecoveredNetlists != 2 || st.RecoveredResults != 1 {
		t.Fatalf("recovery stats = %+v", st)
	}
	if st.Netlists != 0 {
		t.Errorf("%d netlists resident before first touch, want 0 (lazy)", st.Netlists)
	}
	ri, ok := s2.Info(info.Digest)
	if !ok || ri.Loaded || ri.Cells != info.Cells {
		t.Fatalf("recovered parent info = %+v, %v", ri, ok)
	}
	lin, ok := s2.Lineage(child.Netlist.Digest)
	if !ok || lin.Parent != info.Digest || len(lin.Dirty) == 0 {
		t.Fatalf("recovered lineage = %+v, %v", lin, ok)
	}
	res := s2.RecoveredResults()
	if string(res["find|key"]) != `{"candidates":3}` {
		t.Fatalf("recovered results = %v", res)
	}
	if again := s2.RecoveredResults(); len(again) != 0 {
		t.Error("RecoveredResults drained twice")
	}

	// First touch lazily re-parses the blob; the netlist is whole.
	nl, gi, err := s2.Get(info.Digest)
	if err != nil || nl.NumCells() != 300 || !gi.Loaded {
		t.Fatalf("lazy Get = %v (info %+v)", err, gi)
	}
	if st := s2.Stats(); st.LazyReloads != 1 || st.Netlists != 1 {
		t.Errorf("after lazy load: %+v", st)
	}
	// The child blob reloads too, and the engine builds over it.
	if _, _, err := s2.Engine(child.Netlist.Digest); err != nil {
		t.Fatalf("recovered child engine: %v", err)
	}
}

func TestStoreRecoveryAfterTornAppend(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the 4th Append: ingest is record 1, the delta's netlist
	// record is 2, its lineage 3, so the journaled result is the torn
	// write "in flight" when the process dies.
	tb := &tornBackend{DiskBackend: b, tearAt: 4}
	s, err := Open(0, tb)
	if err != nil {
		t.Fatal(err)
	}
	data := payload(t, 300, 7, true)
	info, err := s.Ingest(data)
	if err != nil {
		t.Fatal(err)
	}
	child, err := s.ApplyDelta(info.Digest, deltaDoc())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResult("find|key", json.RawMessage(`{"candidates":3}`)); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "died" with a half-written frame on disk.

	b2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(0, b2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.JournalTruncatedBytes == 0 {
		t.Error("torn tail not reported")
	}
	if st.RecoveredNetlists != 2 || st.RecoveredResults != 0 {
		t.Errorf("recovery stats = %+v (want both netlists, torn result lost)", st)
	}
	// Everything before the torn record survived whole.
	if _, _, err := s2.Get(info.Digest); err != nil {
		t.Errorf("parent after torn tail: %v", err)
	}
	if _, ok := s2.Lineage(child.Netlist.Digest); !ok {
		t.Error("lineage lost despite preceding the torn record")
	}
	// And the truncated log accepts new appends cleanly.
	if err := s2.AppendResult("find|key2", json.RawMessage(`{"candidates":4}`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	b3, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Open(0, b3)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.JournalTruncatedBytes != 0 || st.RecoveredResults != 1 {
		t.Errorf("third boot stats = %+v", st)
	}
}

func TestEvictionInvisibleUnderDurableBackend(t *testing.T) {
	b, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A budget below one netlist's pins forces eviction on every second
	// load; under a durable backend the evicted digest must keep
	// resolving via lazy blob reload instead of ErrEvicted.
	s, err := Open(1, b)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	i1, err := s.Ingest(payload(t, 300, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := s.Ingest(payload(t, 300, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no eviction under pin budget 1: %+v", st)
	}
	for _, d := range []string{i1.Digest, i2.Digest} {
		if _, _, err := s.Get(d); err != nil {
			t.Errorf("durable Get(%s) after eviction: %v", d[:8], err)
		}
	}
	if st := s.Stats(); st.LazyReloads == 0 {
		t.Error("expected lazy reloads serving the evicted digests")
	}
}
