package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// DiskBackend persists a Store under one data directory:
//
//	<dir>/blobs/<digest>   raw uploaded/derived payload bytes
//	<dir>/journal.log      append-only record log
//
// The journal frames each record as
//
//	[4-byte LE payload length][4-byte LE IEEE CRC32 of payload][payload JSON]
//
// and fsyncs after every append, so a record either replays intact or
// fails its frame check. Replay stops at the first short or
// checksum-failing frame and truncates the file there — a torn tail
// from a crash mid-append costs exactly the record being written,
// never earlier history (records behind it were already synced).
//
// Blobs are written to a temp file, synced, then renamed into place,
// so a blob path either holds the complete payload or does not exist.
type DiskBackend struct {
	dir string

	mu      sync.Mutex // serializes journal appends
	journal *os.File
}

// journal frame header: payload length + payload CRC32 (IEEE).
const frameHeaderLen = 8

// maxJournalRecord bounds one record's payload so a corrupt length
// field cannot drive a multi-gigabyte allocation on replay. Journal
// records hold metadata and wire results, never netlist payloads.
const maxJournalRecord = 64 << 20

// OpenDisk opens (creating as needed) the data directory and its
// journal. The returned backend is ready for Replay.
func OpenDisk(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	j, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	// Appends extend the log even if the caller skips Replay (which
	// re-positions the cursor itself after truncating any torn tail).
	if _, err := j.Seek(0, io.SeekEnd); err != nil {
		j.Close()
		return nil, err
	}
	return &DiskBackend{dir: dir, journal: j}, nil
}

// Dir returns the backend's data directory.
func (b *DiskBackend) Dir() string { return b.dir }

// JournalPath returns the journal file's path (tests use it to
// simulate torn writes).
func (b *DiskBackend) JournalPath() string { return filepath.Join(b.dir, "journal.log") }

func (b *DiskBackend) Durable() bool { return true }

func (b *DiskBackend) blobPath(digest string) string {
	return filepath.Join(b.dir, "blobs", digest)
}

func (b *DiskBackend) PutBlob(digest string, data []byte) error {
	path := b.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: same digest, same bytes
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+digest+".tmp*")
	if err != nil {
		return fmt.Errorf("store: blob temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: blob write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: blob sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: blob close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: blob rename: %w", err)
	}
	return nil
}

func (b *DiskBackend) GetBlob(digest string) ([]byte, error) {
	data, err := os.ReadFile(b.blobPath(digest))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoBlob
	}
	return data, err
}

func (b *DiskBackend) HasBlob(digest string) bool {
	_, err := os.Stat(b.blobPath(digest))
	return err == nil
}

func (b *DiskBackend) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal journal record: %w", err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.journal == nil {
		return errors.New("store: journal closed")
	}
	if _, err := b.journal.Write(frame); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := b.journal.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// Replay reads the journal from the start, applying every intact
// record. The first frame that is short (torn tail) or fails its
// checksum (torn payload) ends the replay: the file is truncated at
// the last good offset so subsequent appends extend a clean log.
func (b *DiskBackend) Replay(fn func(Record) error) (ReplayStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var st ReplayStats
	size, err := b.journal.Seek(0, io.SeekEnd)
	if err != nil {
		return st, err
	}
	if _, err := b.journal.Seek(0, io.SeekStart); err != nil {
		return st, err
	}
	r := &countingReader{r: b.journal}
	var good int64 // offset just past the last intact record
	for {
		var hdr [frameHeaderLen]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or a short header: stop either way
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxJournalRecord {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // bit rot or a torn-then-overwritten frame
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // checksummed garbage should be impossible; stop cleanly
		}
		if err := fn(rec); err != nil {
			return st, err
		}
		st.Records++
		good = r.n
	}
	if good < size {
		st.TruncatedBytes = size - good
		if err := b.journal.Truncate(good); err != nil {
			return st, fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
	}
	// Leave the write cursor at the end for O_RDWR appends.
	if _, err := b.journal.Seek(good, io.SeekStart); err != nil {
		return st, err
	}
	return st, nil
}

func (b *DiskBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.journal == nil {
		return nil
	}
	err := b.journal.Close()
	b.journal = nil
	return err
}

// countingReader tracks how many bytes have been consumed, giving
// Replay the exact offset of the last intact record boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
