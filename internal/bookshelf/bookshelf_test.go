package bookshelf

import (
	"os"
	"path/filepath"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadHandWrittenDesign(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "d.aux", "RowBasedPlacement : d.nodes d.nets d.pl\n")
	writeFile(t, dir, "d.nodes", `UCLA nodes 1.0
# comment
NumNodes : 3
NumTerminals : 1
  a1 2 1
  a2 1 1
  p0 1 1 terminal
`)
	writeFile(t, dir, "d.nets", `UCLA nets 1.0

NumNets : 2
NumPins : 5
NetDegree : 3 n0
  a1 B : 0 0
  a2 B
  p0 B
NetDegree : 2
  a1 O
  a2 I
`)
	writeFile(t, dir, "d.pl", `UCLA pl 1.0
a1 10.0 20.0 : N
a2 30 40 : N
p0 0 0 : N /FIXED
`)
	d, err := ReadAux(filepath.Join(dir, "d.aux"))
	if err != nil {
		t.Fatal(err)
	}
	nl := d.Netlist
	if nl.NumCells() != 3 || nl.NumNets() != 2 || nl.NumPins() != 5 {
		t.Fatalf("counts = %d/%d/%d", nl.NumCells(), nl.NumNets(), nl.NumPins())
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.Terminal[2] || d.Terminal[0] {
		t.Error("terminal flags wrong")
	}
	if nl.CellArea(0) != 2 {
		t.Errorf("a1 area = %v, want 2", nl.CellArea(0))
	}
	if d.X[1] != 30 || d.Y[1] != 40 {
		t.Errorf("a2 placed at (%v,%v)", d.X[1], d.Y[1])
	}
	if nl.NetName(0) != "n0" {
		t.Errorf("net name = %q", nl.NetName(0))
	}
}

func TestReadErrors(t *testing.T) {
	dir := t.TempDir()
	// Pin line before any NetDegree header.
	writeFile(t, dir, "bad.nodes", "UCLA nodes 1.0\n a1 1 1\n")
	writeFile(t, dir, "bad.nets", "UCLA nets 1.0\n a1 B\n")
	if _, err := ReadFiles(filepath.Join(dir, "bad.nodes"), filepath.Join(dir, "bad.nets"), ""); err == nil {
		t.Error("expected error for pin before NetDegree")
	}
	// Unknown node in a net.
	writeFile(t, dir, "unk.nets", "UCLA nets 1.0\nNetDegree : 1\n ghost B\n")
	if _, err := ReadFiles(filepath.Join(dir, "bad.nodes"), filepath.Join(dir, "unk.nets"), ""); err == nil {
		t.Error("expected error for unknown node")
	}
	// Aux without .nets reference.
	aux := writeFile(t, dir, "empty.aux", "RowBasedPlacement : foo.bar\n")
	if _, err := ReadAux(aux); err == nil {
		t.Error("expected error for aux without nodes/nets")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  800,
		Blocks: []generate.BlockSpec{{Size: 100}},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist
	dir := t.TempDir()
	if err := Write(dir, "rt", nl); err != nil {
		t.Fatal(err)
	}
	d, err := ReadAux(filepath.Join(dir, "rt.aux"))
	if err != nil {
		t.Fatal(err)
	}
	back := d.Netlist
	if back.NumCells() != nl.NumCells() || back.NumNets() != nl.NumNets() || back.NumPins() != nl.NumPins() {
		t.Fatalf("round trip: %d/%d/%d vs %d/%d/%d",
			back.NumCells(), back.NumNets(), back.NumPins(),
			nl.NumCells(), nl.NumNets(), nl.NumPins())
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Net contents must survive (names map ids 1:1 since Write emits
	// synthesized names in id order).
	for n := 0; n < nl.NumNets(); n++ {
		want := nl.NetPins(netlist.NetID(n))
		got := back.NetPins(netlist.NetID(n))
		if len(want) != len(got) {
			t.Fatalf("net %d size changed: %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("net %d pin %d: %d vs %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestParserRobustness: mutated and truncated inputs must produce
// errors or valid designs, never panics.
func TestParserRobustness(t *testing.T) {
	nodes := "UCLA nodes 1.0\nNumNodes : 3\n a 1 1\n b 1 1\n c 1 1\n"
	nets := "UCLA nets 1.0\nNumNets : 2\nNetDegree : 2\n a B\n b B\nNetDegree : 2\n b B\n c B\n"
	dir := t.TempDir()
	check := func(nodesContent, netsContent string) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked: %v", p)
			}
		}()
		np := writeFile(t, dir, "f.nodes", nodesContent)
		tp := writeFile(t, dir, "f.nets", netsContent)
		d, err := ReadFiles(np, tp, "")
		if err == nil {
			if vErr := d.Netlist.Validate(); vErr != nil {
				t.Fatalf("accepted invalid design: %v", vErr)
			}
		}
	}
	// Truncations of both files.
	for cut := 0; cut <= len(nodes); cut += 5 {
		check(nodes[:cut], nets)
	}
	for cut := 0; cut <= len(nets); cut += 5 {
		check(nodes, nets[:cut])
	}
	// Structured adversarial inputs.
	adversarial := []string{
		"UCLA nets 1.0\nNetDegree : -3\n a B\n",
		"UCLA nets 1.0\nNetDegree : 99999999999999999999\n",
		"UCLA nets 1.0\n a B\n",
		"NetDegree : 2 x y z w\n a B\n b B\n",
	}
	for _, a := range adversarial {
		check(nodes, a)
	}
	check(" a not-a-number 1\n", nets)
	check("", "")
}
