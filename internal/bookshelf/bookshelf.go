// Package bookshelf reads and writes the UCLA/ISPD Bookshelf placement
// format (.aux, .nodes, .nets, .pl) used by the ISPD 2005/06 placement
// benchmarks the paper evaluates on. With real benchmark files on disk
// the finder runs on the genuine circuits; without them the generate
// package's proxies stand in.
//
// Only the subset of the format the experiments need is implemented:
// node names/sizes (terminals flagged), net pin lists, and optional
// placement coordinates. Pin offsets inside macros are parsed and
// ignored — the finder is purely topological.
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tanglefind/internal/netlist"
)

// Design is a parsed Bookshelf circuit.
type Design struct {
	Netlist *netlist.Netlist
	// Terminal flags pads/fixed IO per cell.
	Terminal []bool
	// X, Y hold .pl coordinates when present (nil otherwise).
	X, Y []float64
}

// ReadAux loads a design from its .aux file, resolving the .nodes,
// .nets and (optionally) .pl files it references.
func ReadAux(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var nodesFile, netsFile, plFile string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		for _, tok := range strings.Fields(sc.Text()) {
			switch strings.ToLower(filepath.Ext(tok)) {
			case ".nodes":
				nodesFile = tok
			case ".nets":
				netsFile = tok
			case ".pl":
				plFile = tok
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if nodesFile == "" || netsFile == "" {
		return nil, fmt.Errorf("bookshelf: %s references no .nodes/.nets files", path)
	}
	dir := filepath.Dir(path)
	return ReadFiles(filepath.Join(dir, nodesFile), filepath.Join(dir, netsFile), plMaybe(dir, plFile))
}

func plMaybe(dir, pl string) string {
	if pl == "" {
		return ""
	}
	return filepath.Join(dir, pl)
}

// ReadFiles loads a design from explicit .nodes/.nets paths; plPath may
// be empty.
func ReadFiles(nodesPath, netsPath, plPath string) (*Design, error) {
	nodes, err := os.Open(nodesPath)
	if err != nil {
		return nil, err
	}
	defer nodes.Close()
	names, areas, terminal, err := parseNodes(nodes)
	if err != nil {
		return nil, fmt.Errorf("bookshelf: %s: %w", nodesPath, err)
	}
	nets, err := os.Open(netsPath)
	if err != nil {
		return nil, err
	}
	defer nets.Close()
	d, err := assemble(names, areas, terminal, nets)
	if err != nil {
		return nil, fmt.Errorf("bookshelf: %s: %w", netsPath, err)
	}
	if plPath != "" {
		pl, err := os.Open(plPath)
		if err != nil {
			return nil, err
		}
		defer pl.Close()
		if err := parsePl(pl, names, d); err != nil {
			return nil, fmt.Errorf("bookshelf: %s: %w", plPath, err)
		}
	}
	return d, nil
}

// lineScanner yields non-comment, non-blank, non-header lines.
type lineScanner struct {
	sc   *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &lineScanner{sc: sc}
}

func (ls *lineScanner) next() (string, bool) {
	for ls.sc.Scan() {
		ls.line++
		t := strings.TrimSpace(ls.sc.Text())
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "UCLA") {
			continue
		}
		return t, true
	}
	return "", false
}

func parseNodes(r io.Reader) (names []string, areas []float64, terminal []bool, err error) {
	ls := newLineScanner(r)
	for {
		t, ok := ls.next()
		if !ok {
			break
		}
		if strings.HasPrefix(t, "NumNodes") || strings.HasPrefix(t, "NumTerminals") {
			continue
		}
		fields := strings.Fields(t)
		name := fields[0]
		w, h := 1.0, 1.0
		if len(fields) >= 3 {
			if v, e := strconv.ParseFloat(fields[1], 64); e == nil {
				w = v
			}
			if v, e := strconv.ParseFloat(fields[2], 64); e == nil {
				h = v
			}
		}
		isTerminal := len(fields) >= 4 && strings.EqualFold(fields[3], "terminal")
		names = append(names, name)
		areas = append(areas, w*h)
		terminal = append(terminal, isTerminal)
	}
	return names, areas, terminal, ls.sc.Err()
}

func assemble(names []string, areas []float64, terminal []bool, nets io.Reader) (*Design, error) {
	index := make(map[string]netlist.CellID, len(names))
	var b netlist.Builder
	for i, n := range names {
		id := b.AddCell(n)
		b.SetCellArea(id, areas[i])
		index[n] = id
	}
	ls := newLineScanner(nets)
	var current []netlist.CellID
	var currentName string
	degree := -1
	flush := func() {
		if degree >= 0 {
			b.AddNet(currentName, current...)
		}
		current = nil
	}
	for {
		t, ok := ls.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(t, "NumNets"), strings.HasPrefix(t, "NumPins"):
			continue
		case strings.HasPrefix(t, "NetDegree"):
			flush()
			fields := strings.Fields(t)
			// "NetDegree : <k> [name]"
			degree = 0
			currentName = ""
			for i := 1; i < len(fields); i++ {
				if fields[i] == ":" {
					continue
				}
				if d, err := strconv.Atoi(fields[i]); err == nil && degree == 0 {
					degree = d
				} else {
					currentName = fields[i]
				}
			}
		default:
			if degree < 0 {
				return nil, fmt.Errorf("line %d: pin line before NetDegree", ls.line)
			}
			nodeName := strings.Fields(t)[0]
			id, ok := index[nodeName]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", ls.line, nodeName)
			}
			current = append(current, id)
		}
	}
	flush()
	if err := ls.sc.Err(); err != nil {
		return nil, err
	}
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Design{Netlist: nl, Terminal: terminal}, nil
}

func parsePl(r io.Reader, names []string, d *Design) error {
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	d.X = make([]float64, len(names))
	d.Y = make([]float64, len(names))
	ls := newLineScanner(r)
	for {
		t, ok := ls.next()
		if !ok {
			break
		}
		fields := strings.Fields(t)
		if len(fields) < 3 {
			continue
		}
		i, ok := index[fields[0]]
		if !ok {
			continue
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("line %d: bad coordinates %q", ls.line, t)
		}
		d.X[i], d.Y[i] = x, y
	}
	return ls.sc.Err()
}

// Write emits the design as .nodes/.nets files (plus .aux) under dir
// with the given base name, so generated proxies can feed external
// placement tools.
func Write(dir, base string, nl *netlist.Netlist) error {
	aux := fmt.Sprintf("RowBasedPlacement : %s.nodes %s.nets\n", base, base)
	if err := os.WriteFile(filepath.Join(dir, base+".aux"), []byte(aux), 0o644); err != nil {
		return err
	}
	nodes, err := os.Create(filepath.Join(dir, base+".nodes"))
	if err != nil {
		return err
	}
	defer nodes.Close()
	w := bufio.NewWriter(nodes)
	fmt.Fprintf(w, "UCLA nodes 1.0\n\nNumNodes : %d\nNumTerminals : 0\n", nl.NumCells())
	for c := 0; c < nl.NumCells(); c++ {
		a := nl.CellArea(netlist.CellID(c))
		fmt.Fprintf(w, "  %s %g 1\n", nl.CellName(netlist.CellID(c)), a)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	nets, err := os.Create(filepath.Join(dir, base+".nets"))
	if err != nil {
		return err
	}
	defer nets.Close()
	w = bufio.NewWriter(nets)
	fmt.Fprintf(w, "UCLA nets 1.0\n\nNumNets : %d\nNumPins : %d\n", nl.NumNets(), nl.NumPins())
	for n := 0; n < nl.NumNets(); n++ {
		pins := nl.NetPins(netlist.NetID(n))
		fmt.Fprintf(w, "NetDegree : %d %s\n", len(pins), nl.NetName(netlist.NetID(n)))
		for _, c := range pins {
			fmt.Fprintf(w, "  %s B\n", nl.CellName(c))
		}
	}
	return w.Flush()
}
