package place

import (
	"fmt"
	"math"
	"sync"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// This file implements the paper's floorplanning application: "since a
// GTL will stay together during placement, the designer may wish to
// form a soft block for the gates in the GTL", with the soft block
// driving placement as a unit. We realize it as two-level clustered
// placement: each GTL collapses into one macro cell, the clustered
// netlist is placed, and each macro's members are then placed inside
// the die region the macro received.

// Clustering maps a netlist onto a clustered version where each given
// group is one macro cell.
type Clustering struct {
	// Clustered is the macro-level netlist: first the untouched cells
	// (renumbered), then one macro cell per group.
	Clustered *netlist.Netlist
	// MacroOf maps an original cell to its clustered id (its own new
	// id, or the macro's id when it belongs to a group).
	MacroOf []netlist.CellID
	// Groups holds each macro's original member cells.
	Groups [][]netlist.CellID
	// MacroStart is the clustered id of the first macro.
	MacroStart netlist.CellID
}

// Cluster builds the soft-block netlist. Groups must be disjoint; a
// cell in two groups is an error.
func Cluster(nl *netlist.Netlist, groups [][]netlist.CellID) (*Clustering, error) {
	n := nl.NumCells()
	macroOf := make([]netlist.CellID, n)
	for i := range macroOf {
		macroOf[i] = -1
	}
	for gi, g := range groups {
		for _, c := range g {
			if macroOf[c] != -1 {
				return nil, fmt.Errorf("place: cell %d in multiple groups", c)
			}
			macroOf[c] = netlist.CellID(gi) // temporarily the group index
		}
	}
	var b netlist.Builder
	// Untouched cells first, preserving relative order.
	newID := make([]netlist.CellID, n)
	for c := 0; c < n; c++ {
		if macroOf[c] == -1 {
			id := b.AddCell(nl.CellName(netlist.CellID(c)))
			b.SetCellArea(id, nl.CellArea(netlist.CellID(c)))
			newID[c] = id
		}
	}
	macroStart := netlist.CellID(b.NumCells())
	for gi, g := range groups {
		id := b.AddCell(fmt.Sprintf("gtl_macro_%d", gi))
		area := 0.0
		for _, c := range g {
			area += nl.CellArea(c)
		}
		b.SetCellArea(id, area)
		for _, c := range g {
			newID[c] = id
		}
	}
	for c := 0; c < n; c++ {
		macroOf[c] = newID[c]
	}
	// Nets: map pins through newID; Builder dedupes pins that collapse
	// into the same macro, and drops nets that become single-pin. One
	// reused buffer serves every net — AddNet copies what it keeps.
	b.DropDegenerateNets = true
	var mapped []netlist.CellID
	for ni := 0; ni < nl.NumNets(); ni++ {
		pins := nl.NetPins(netlist.NetID(ni))
		mapped = mapped[:0]
		for _, c := range pins {
			mapped = append(mapped, newID[c])
		}
		b.AddNet(nl.NetName(netlist.NetID(ni)), mapped...)
	}
	clustered, err := b.Build()
	if err != nil {
		return nil, err
	}
	cp := make([][]netlist.CellID, len(groups))
	for i, g := range groups {
		cp[i] = append([]netlist.CellID(nil), g...)
	}
	return &Clustering{
		Clustered:  clustered,
		MacroOf:    macroOf,
		Groups:     cp,
		MacroStart: macroStart,
	}, nil
}

// PlaceSoftBlocks runs the two-level flow: place the clustered netlist,
// then place each GTL's members inside the region its macro occupies
// (sized to the macro's area share of the die). It returns a placement
// of the original netlist.
func PlaceSoftBlocks(nl *netlist.Netlist, groups [][]netlist.CellID, die Rect, opt Options) (*Placement, error) {
	cl, err := Cluster(nl, groups)
	if err != nil {
		return nil, err
	}
	top, err := Place(cl.Clustered, die, opt)
	if err != nil {
		return nil, err
	}
	pl := &Placement{
		Die: top.Die,
		X:   make([]float64, nl.NumCells()),
		Y:   make([]float64, nl.NumCells()),
	}
	// Untouched cells take their clustered position directly.
	for c := 0; c < nl.NumCells(); c++ {
		id := cl.MacroOf[c]
		pl.X[c] = top.X[id]
		pl.Y[c] = top.Y[id]
	}
	// Each macro expands into a local square region centered on the
	// macro position, sized so the members sit at the die's average
	// density.
	density := nl.TotalArea() / top.Die.Area()
	for gi, g := range cl.Groups {
		macro := cl.MacroStart + netlist.CellID(gi)
		area := cl.Clustered.CellArea(macro) / density
		half := math.Sqrt(area) / 2
		cx, cy := top.X[macro], top.Y[macro]
		region := Rect{
			X0: clamp(cx-half, top.Die.X0, top.Die.X1),
			Y0: clamp(cy-half, top.Die.Y0, top.Die.Y1),
			X1: clamp(cx+half, top.Die.X0, top.Die.X1),
			Y1: clamp(cy+half, top.Die.Y0, top.Die.Y1),
		}
		sub := opt
		sub.Seed = opt.Seed + uint64(gi) + 1
		if err := placeSubset(nl, g, region, sub, pl); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// placeSubset recursively bisects just the given cells into region,
// writing their coordinates into out. It works on a zero-copy induced
// view of the group materialized in local id space, so the per-group
// working set is O(|group| + pins(group)) instead of a full-netlist
// coordinate array per group; nets leaving the group are irrelevant
// here because the bisection already treats outside pins as free
// terminals.
func placeSubset(nl *netlist.Netlist, cells []netlist.CellID, region Rect, opt Options, out *Placement) error {
	opt.fill()
	if region.Area() <= 0 {
		for _, c := range cells {
			out.X[c] = region.X0
			out.Y[c] = region.Y0
		}
		return nil
	}
	view := nl.InducedView(cells)
	sub := view.Materialize()
	pl := &Placement{
		Die: region,
		X:   make([]float64, sub.NumCells()),
		Y:   make([]float64, sub.NumCells()),
	}
	// Keep the caller's cell order (it seeds the FM random walk), but
	// in local ids.
	localCells := make([]netlist.CellID, len(cells))
	for i, c := range cells {
		localCells[i] = view.LocalCell(c)
	}
	opt.ParallelDepth = -1 // sequential: per-group placements are small
	var wg sync.WaitGroup
	bisect(sub, pl, localCells, region, 0, ds.NewRNG(opt.Seed+0x50f7), &opt, &wg)
	wg.Wait()
	for i, c := range cells {
		out.X[c] = pl.X[localCells[i]]
		out.Y[c] = pl.Y[localCells[i]]
	}
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
