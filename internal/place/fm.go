// Package place provides the placement substrate for the paper's
// congestion experiments: a Fiduccia–Mattheyses hypergraph
// bipartitioner driving a recursive-bisection global placer, plus the
// cell-inflation transform the paper applies to detected GTLs.
//
// A min-cut placer is exactly the kind of engine the paper's premise
// assumes: it pulls highly interconnected cells together, so a GTL's
// cells land in a tight clump and create a local routing hotspot —
// which 4× inflation then spreads apart.
package place

import (
	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// fmProblem is one bipartitioning instance over a subset of cells.
// Cells and nets use local indices; nets with fewer than two local pins
// are dropped (they cannot be cut inside the region).
type fmProblem struct {
	cells    []netlist.CellID
	area     []float64
	nets     [][]int32 // local pin lists
	netOf    [][]int32 // local cell -> incident local nets
	side     []uint8
	cnt      [][2]int32 // per net: pins on each side
	gain     []int32
	locked   []bool
	sideArea [2]float64
	maxArea  float64 // per-side area cap
	cut      int
}

// buildFM extracts the sub-hypergraph induced by cells (pins outside
// the region are ignored — free terminals).
func buildFM(nl *netlist.Netlist, cells []netlist.CellID, balanceTol float64) *fmProblem {
	p := &fmProblem{cells: cells}
	local := make(map[netlist.CellID]int32, len(cells))
	for i, c := range cells {
		local[c] = int32(i)
	}
	p.area = make([]float64, len(cells))
	total := 0.0
	for i, c := range cells {
		p.area[i] = nl.CellArea(c)
		total += p.area[i]
	}
	p.maxArea = total * (0.5 + balanceTol)
	seen := make(map[netlist.NetID]bool)
	p.netOf = make([][]int32, len(cells))
	for _, c := range cells {
		for _, n := range nl.CellPins(c) {
			if seen[n] {
				continue
			}
			seen[n] = true
			var pins []int32
			for _, other := range nl.NetPins(n) {
				if li, ok := local[other]; ok {
					pins = append(pins, li)
				}
			}
			if len(pins) < 2 {
				continue
			}
			ni := int32(len(p.nets))
			p.nets = append(p.nets, pins)
			for _, li := range pins {
				p.netOf[li] = append(p.netOf[li], ni)
			}
		}
	}
	p.side = make([]uint8, len(cells))
	p.cnt = make([][2]int32, len(p.nets))
	p.gain = make([]int32, len(cells))
	p.locked = make([]bool, len(cells))
	return p
}

// randomInit assigns sides greedily in random order, always to the
// lighter side, giving a balanced random start.
func (p *fmProblem) randomInit(rng *ds.RNG) {
	order := rng.Perm(len(p.cells))
	p.sideArea = [2]float64{}
	for _, i := range order {
		s := 0
		if p.sideArea[1] < p.sideArea[0] {
			s = 1
		}
		p.side[i] = uint8(s)
		p.sideArea[s] += p.area[i]
	}
	p.recount()
}

// recount rebuilds per-net side counts and the cut from scratch.
func (p *fmProblem) recount() {
	p.cut = 0
	for ni, pins := range p.nets {
		c := [2]int32{}
		for _, li := range pins {
			c[p.side[li]]++
		}
		p.cnt[ni] = c
		if c[0] > 0 && c[1] > 0 {
			p.cut++
		}
	}
}

// computeGains initializes the FM gain of every cell.
func (p *fmProblem) computeGains() {
	for i := range p.gain {
		g := int32(0)
		f := p.side[i]
		t := 1 - f
		for _, ni := range p.netOf[i] {
			if p.cnt[ni][f] == 1 {
				g++ // moving i uncuts the net
			}
			if p.cnt[ni][t] == 0 {
				g-- // moving i cuts the net
			}
		}
		p.gain[i] = g
	}
}

// move flips cell i to the other side, updating counts, cut and the
// gains of unlocked cells on its nets (standard FM delta rules). push
// receives every cell whose gain changed.
func (p *fmProblem) move(i int32, push func(cell int32)) {
	f := p.side[i]
	t := 1 - f
	for _, ni := range p.netOf[i] {
		pins := p.nets[ni]
		// Before the move.
		switch p.cnt[ni][t] {
		case 0:
			for _, d := range pins {
				if !p.locked[d] && d != i {
					p.gain[d]++
					push(d)
				}
			}
		case 1:
			for _, d := range pins {
				if !p.locked[d] && d != i && p.side[d] == t {
					p.gain[d]--
					push(d)
				}
			}
		}
		if p.cnt[ni][f] > 0 && p.cnt[ni][t] == 0 {
			p.cut++ // net becomes cut
		}
		p.cnt[ni][f]--
		p.cnt[ni][t]++
		if p.cnt[ni][f] == 0 && p.cnt[ni][t] > 0 {
			p.cut-- // net becomes uncut
		}
		// After the move.
		switch p.cnt[ni][f] {
		case 0:
			for _, d := range pins {
				if !p.locked[d] && d != i {
					p.gain[d]--
					push(d)
				}
			}
		case 1:
			for _, d := range pins {
				if !p.locked[d] && d != i && p.side[d] == f {
					p.gain[d]++
					push(d)
				}
			}
		}
	}
	p.side[i] = t
	p.sideArea[f] -= p.area[i]
	p.sideArea[t] += p.area[i]
}

// pass runs one FM pass: move every cell once in best-gain order,
// remember the best prefix, roll back the rest. Returns the cut
// improvement (>= 0).
func (p *fmProblem) pass(rng *ds.RNG) int {
	for i := range p.locked {
		p.locked[i] = false
	}
	p.computeGains()
	var heap ds.GainHeap
	for i := range p.cells {
		heap.Push(int32(i), float64(p.gain[i]), int32(rng.Intn(1<<20)))
	}
	push := func(c int32) {
		heap.Push(c, float64(p.gain[c]), int32(rng.Intn(1<<20)))
	}
	startCut := p.cut
	bestCut := p.cut
	var moves []int32
	bestPrefix := 0
	for {
		var pick int32 = -1
		for {
			c, g, _, ok := heap.Pop()
			if !ok {
				break
			}
			if p.locked[c] || float64(p.gain[c]) != g {
				continue
			}
			// Balance check: the destination side must stay in bounds.
			t := 1 - p.side[c]
			if p.sideArea[t]+p.area[c] > p.maxArea {
				continue // cannot move now; dropped for this pass
			}
			pick = c
			break
		}
		if pick < 0 {
			break
		}
		p.locked[pick] = true
		p.move(pick, push)
		moves = append(moves, pick)
		if p.cut < bestCut {
			bestCut = p.cut
			bestPrefix = len(moves)
		}
	}
	// Roll back past the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		p.move(moves[i], func(int32) {})
	}
	return startCut - p.cut
}

// BipartitionResult is the outcome of one min-cut bipartitioning.
type BipartitionResult struct {
	Side [2][]netlist.CellID
	Area [2]float64
	Cut  int
}

// Bipartition splits the given cells into two area-balanced sides with
// small hypergraph cut using FM with random initialization. balanceTol
// is the allowed deviation from an even area split (e.g. 0.1), and
// maxPasses bounds the FM passes (4 is plenty; passes stop early once a
// pass yields no gain).
func Bipartition(nl *netlist.Netlist, cells []netlist.CellID, balanceTol float64, maxPasses int, rng *ds.RNG) BipartitionResult {
	p := buildFM(nl, cells, balanceTol)
	p.randomInit(rng)
	for pass := 0; pass < maxPasses; pass++ {
		if p.pass(rng) <= 0 {
			break
		}
	}
	var res BipartitionResult
	res.Cut = p.cut
	res.Area = p.sideArea
	for i, c := range cells {
		s := p.side[i]
		res.Side[s] = append(res.Side[s], c)
	}
	return res
}
