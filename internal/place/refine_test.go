package place

import (
	"testing"

	"tanglefind/internal/ds"
	"tanglefind/internal/generate"
)

func TestRefineGreedyNeverWorsens(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 1500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(rg.Netlist, Rect{}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := HPWL(rg.Netlist, pl)
	swaps := RefineGreedy(rg.Netlist, pl, 5000, 3)
	after := HPWL(rg.Netlist, pl)
	t.Logf("HPWL %.0f -> %.0f (%d swaps accepted)", before, after, swaps)
	if after > before+1e-9 {
		t.Errorf("refinement worsened HPWL: %.0f -> %.0f", before, after)
	}
}

func TestRefineGreedyImprovesRandomPlacement(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := ds.NewRNG(11)
	pl := &Placement{
		Die: Rect{X0: 0, Y0: 0, X1: 100, Y1: 100},
		X:   make([]float64, 800),
		Y:   make([]float64, 800),
	}
	for c := range pl.X {
		pl.X[c] = rng.Float64() * 100
		pl.Y[c] = rng.Float64() * 100
	}
	before := HPWL(rg.Netlist, pl)
	swaps := RefineGreedy(rg.Netlist, pl, 20000, 3)
	after := HPWL(rg.Netlist, pl)
	t.Logf("random placement HPWL %.0f -> %.0f (%d swaps)", before, after, swaps)
	if swaps == 0 {
		t.Error("no swaps accepted on a random placement")
	}
	if after >= 0.98*before {
		t.Errorf("refinement barely improved a random placement: %.0f -> %.0f", before, after)
	}
}

func TestRefineGreedyDegenerate(t *testing.T) {
	rg, _ := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 10, Seed: 1})
	pl, err := Place(rg.Netlist, Rect{}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := RefineGreedy(rg.Netlist, pl, 0, 1); got != 0 {
		t.Errorf("rounds=0 accepted %d swaps", got)
	}
}
