package place

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// Rect is an axis-aligned placement region.
type Rect struct{ X0, Y0, X1, Y1 float64 }

// W returns the rectangle width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Placement maps every cell to a die coordinate.
type Placement struct {
	Die  Rect
	X, Y []float64 // indexed by CellID
}

// Options configures the recursive-bisection placer.
type Options struct {
	// LeafSize stops recursion when a region holds this many cells or
	// fewer (0 means 12).
	LeafSize int
	// BalanceTol is the FM area-balance tolerance (0 means 0.1).
	BalanceTol float64
	// MaxPasses bounds FM passes per bisection (0 means 4).
	MaxPasses int
	// Seed drives the deterministic RNG.
	Seed uint64
	// Parallel recursion depth: levels at or above this spawn
	// goroutines (0 means 4; negative disables parallelism).
	ParallelDepth int
}

func (o *Options) fill() {
	if o.LeafSize <= 0 {
		o.LeafSize = 12
	}
	if o.BalanceTol <= 0 {
		o.BalanceTol = 0.1
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 4
	}
	if o.ParallelDepth == 0 {
		o.ParallelDepth = 4
	}
}

// Place runs recursive min-cut bisection of the whole netlist into the
// die and returns cell coordinates. The die is sized to the total cell
// area at the given utilization when die.Area() is zero.
func Place(nl *netlist.Netlist, die Rect, opt Options) (*Placement, error) {
	if nl.NumCells() == 0 {
		return nil, fmt.Errorf("place: empty netlist")
	}
	opt.fill()
	if die.Area() <= 0 {
		side := math.Sqrt(nl.TotalArea() / 0.8) // 80% utilization square die
		die = Rect{0, 0, side, side}
	}
	pl := &Placement{
		Die: die,
		X:   make([]float64, nl.NumCells()),
		Y:   make([]float64, nl.NumCells()),
	}
	cells := make([]netlist.CellID, nl.NumCells())
	for i := range cells {
		cells[i] = netlist.CellID(i)
	}
	var wg sync.WaitGroup
	bisect(nl, pl, cells, die, 0, ds.NewRNG(opt.Seed+0x91ace), &opt, &wg)
	wg.Wait()
	return pl, nil
}

// bisect recursively splits region contents; disjoint cell sets make
// the goroutine fan-out race-free, and per-branch split RNGs keep the
// result independent of scheduling.
func bisect(nl *netlist.Netlist, pl *Placement, cells []netlist.CellID, region Rect, depth int, rng *ds.RNG, opt *Options, wg *sync.WaitGroup) {
	if len(cells) <= opt.LeafSize {
		placeLeaf(nl, pl, cells, region)
		return
	}
	res := Bipartition(nl, cells, opt.BalanceTol, opt.MaxPasses, rng)
	if len(res.Side[0]) == 0 || len(res.Side[1]) == 0 {
		placeLeaf(nl, pl, cells, region) // degenerate split; stop here
		return
	}
	frac := res.Area[0] / (res.Area[0] + res.Area[1])
	var r0, r1 Rect
	if region.W() >= region.H() {
		mid := region.X0 + frac*region.W()
		r0 = Rect{region.X0, region.Y0, mid, region.Y1}
		r1 = Rect{mid, region.Y0, region.X1, region.Y1}
	} else {
		mid := region.Y0 + frac*region.H()
		r0 = Rect{region.X0, region.Y0, region.X1, mid}
		r1 = Rect{region.X0, mid, region.X1, region.Y1}
	}
	rng0, rng1 := rng.Split(), rng.Split()
	if depth < opt.ParallelDepth && opt.ParallelDepth > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bisect(nl, pl, res.Side[0], r0, depth+1, rng0, opt, wg)
		}()
		bisect(nl, pl, res.Side[1], r1, depth+1, rng1, opt, wg)
		return
	}
	bisect(nl, pl, res.Side[0], r0, depth+1, rng0, opt, wg)
	bisect(nl, pl, res.Side[1], r1, depth+1, rng1, opt, wg)
}

// placeLeaf spreads a handful of cells over their region on an
// area-weighted row grid — a stand-in for detailed placement that keeps
// density roughly uniform even after inflation.
func placeLeaf(nl *netlist.Netlist, pl *Placement, cells []netlist.CellID, region Rect) {
	if len(cells) == 0 {
		return
	}
	sorted := make([]netlist.CellID, len(cells))
	copy(sorted, cells)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	total := 0.0
	for _, c := range sorted {
		total += nl.CellArea(c)
	}
	rows := int(math.Ceil(math.Sqrt(float64(len(sorted)))))
	perRow := (len(sorted) + rows - 1) / rows
	i := 0
	for r := 0; r < rows && i < len(sorted); r++ {
		y := region.Y0 + (float64(r)+0.5)*region.H()/float64(rows)
		rowCells := sorted[i:min(i+perRow, len(sorted))]
		rowArea := 0.0
		for _, c := range rowCells {
			rowArea += nl.CellArea(c)
		}
		acc := 0.0
		for _, c := range rowCells {
			a := nl.CellArea(c)
			x := region.X0 + (acc+a/2)/rowArea*region.W()
			pl.X[c] = x
			pl.Y[c] = y
			acc += a
		}
		i += perRow
	}
}

// HPWL returns the half-perimeter wirelength of the placement.
func HPWL(nl *netlist.Netlist, pl *Placement) float64 {
	total := 0.0
	for n := 0; n < nl.NumNets(); n++ {
		pins := nl.NetPins(netlist.NetID(n))
		if len(pins) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, c := range pins {
			minX = math.Min(minX, pl.X[c])
			maxX = math.Max(maxX, pl.X[c])
			minY = math.Min(minY, pl.Y[c])
			maxY = math.Max(maxY, pl.Y[c])
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

// Inflate returns a copy of nl whose cells in each of the given groups
// have their area multiplied by factor — the paper's congestion
// mitigation (it inflates GTL cells 4×, then re-places).
func Inflate(nl *netlist.Netlist, groups [][]netlist.CellID, factor float64) (*netlist.Netlist, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("place: inflation factor must be positive, got %v", factor)
	}
	area := make([]float64, nl.NumCells())
	for c := range area {
		area[c] = nl.CellArea(netlist.CellID(c))
	}
	for _, g := range groups {
		for _, c := range g {
			area[c] = nl.CellArea(c) * factor
		}
	}
	return nl.WithAreas(area)
}
