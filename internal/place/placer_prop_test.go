package place

import (
	"testing"

	"tanglefind/internal/ds"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// TestPlacementDensityUniform: recursive bisection with proportional
// region splitting must spread area roughly evenly — no quadrant of the
// die should hold more than ~2x the area of another.
func TestPlacementDensityUniform(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  4000,
		Blocks: []generate.BlockSpec{{Size: 400}},
		Seed:   31,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(rg.Netlist, Rect{}, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	quad := [4]float64{}
	midX := (pl.Die.X0 + pl.Die.X1) / 2
	midY := (pl.Die.Y0 + pl.Die.Y1) / 2
	for c := 0; c < rg.Netlist.NumCells(); c++ {
		q := 0
		if pl.X[c] >= midX {
			q |= 1
		}
		if pl.Y[c] >= midY {
			q |= 2
		}
		quad[q] += rg.Netlist.CellArea(netlist.CellID(c))
	}
	minQ, maxQ := quad[0], quad[0]
	for _, a := range quad[1:] {
		if a < minQ {
			minQ = a
		}
		if a > maxQ {
			maxQ = a
		}
	}
	t.Logf("quadrant areas: %v", quad)
	if maxQ > 2*minQ {
		t.Errorf("density skew: quadrants %v", quad)
	}
}

// TestInflatedPlacementSpreadsGroup: after 4x inflation the group must
// occupy a visibly larger footprint than before (that is the entire
// mechanism of the paper's mitigation).
func TestInflatedPlacementSpreadsGroup(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 600}},
		Seed:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Place(rg.Netlist, Rect{}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := Inflate(rg.Netlist, rg.Blocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	infPl, err := Place(inflated, Rect{}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := groupStddev(flat, rg.Blocks[0]) / flat.Die.W()
	after := groupStddev(infPl, rg.Blocks[0]) / infPl.Die.W()
	t.Logf("relative spread before=%.3f after=%.3f", before, after)
	if after <= before*1.2 {
		t.Errorf("inflation did not spread the group: %.3f -> %.3f (die-relative)", before, after)
	}
}

// TestPlaceDeterministicAcrossParallelism: identical seeds must give
// identical placements no matter the goroutine fan-out.
func TestPlaceDeterministicAcrossParallelism(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Place(rg.Netlist, Rect{}, Options{Seed: 5, ParallelDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(rg.Netlist, Rect{}, Options{Seed: 5, ParallelDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.X {
		if a.X[c] != b.X[c] || a.Y[c] != b.Y[c] {
			t.Fatalf("cell %d differs: (%v,%v) vs (%v,%v)", c, a.X[c], a.Y[c], b.X[c], b.Y[c])
		}
	}
}

func TestBipartitionDegenerateInputs(t *testing.T) {
	var b netlist.Builder
	b.AddCells(2)
	b.AddNet("", 0, 1)
	nl := b.MustBuild()
	res := Bipartition(nl, []netlist.CellID{0, 1}, 0.1, 4, newTestRNG())
	if len(res.Side[0])+len(res.Side[1]) != 2 {
		t.Fatal("lost cells on 2-cell input")
	}
	// Single cell: everything on one side, no cut.
	res = Bipartition(nl, []netlist.CellID{0}, 0.1, 4, newTestRNG())
	if res.Cut != 0 {
		t.Errorf("1-cell cut = %d", res.Cut)
	}
}

func newTestRNG() *ds.RNG { return ds.NewRNG(99) }
