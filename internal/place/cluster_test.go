package place

import (
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func TestClusterBasics(t *testing.T) {
	var b netlist.Builder
	b.AddCells(6)
	b.AddNet("inner", 0, 1)    // fully inside the group -> dropped
	b.AddNet("cross", 1, 2, 3) // 1 in group, 2/3 out
	b.AddNet("out", 4, 5)      // untouched
	nl := b.MustBuild()
	cl, err := Cluster(nl, [][]netlist.CellID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 untouched cells + 1 macro.
	if cl.Clustered.NumCells() != 5 {
		t.Fatalf("clustered cells = %d, want 5", cl.Clustered.NumCells())
	}
	if cl.Clustered.NumNets() != 2 {
		t.Errorf("clustered nets = %d, want 2 (inner net dropped)", cl.Clustered.NumNets())
	}
	macro := cl.MacroStart
	if cl.Clustered.CellArea(macro) != 2 {
		t.Errorf("macro area = %v, want 2", cl.Clustered.CellArea(macro))
	}
	if cl.MacroOf[0] != macro || cl.MacroOf[1] != macro {
		t.Error("group cells not mapped to the macro")
	}
	if cl.MacroOf[4] == macro {
		t.Error("outside cell mapped to the macro")
	}
	if err := cl.Clustered.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterRejectsOverlap(t *testing.T) {
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("", 0, 1)
	nl := b.MustBuild()
	if _, err := Cluster(nl, [][]netlist.CellID{{0, 1}, {1, 2}}); err == nil {
		t.Error("overlapping groups accepted")
	}
}

func TestPlaceSoftBlocksKeepsGroupsTight(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 600}},
		Seed:   21,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceSoftBlocks(rg.Netlist, rg.Blocks, Rect{}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// All cells inside the die.
	for c := 0; c < rg.Netlist.NumCells(); c++ {
		if pl.X[c] < pl.Die.X0-1e-9 || pl.X[c] > pl.Die.X1+1e-9 ||
			pl.Y[c] < pl.Die.Y0-1e-9 || pl.Y[c] > pl.Die.Y1+1e-9 {
			t.Fatalf("cell %d outside die", c)
		}
	}
	// The soft block must be at least as tight as the whole die and
	// comparable to the flat placement's clustering.
	spread := groupStddev(pl, rg.Blocks[0])
	die := pl.Die.W()
	t.Logf("soft-block stddev=%.2f of die %.2f", spread, die)
	// Uniform fill of the macro's region gives stddev ≈ 0.41·side;
	// here that is ~13% of the die vs ~29% for a scattered group.
	if spread > 0.15*die {
		t.Errorf("soft block spread %.1f of die %.1f; expected a tight block", spread, die)
	}
	// HPWL should be in the same league as flat placement (the
	// paper's claim is quality guidance, not strict dominance).
	flat, err := Place(rg.Netlist, Rect{}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	soft, hard := HPWL(rg.Netlist, pl), HPWL(rg.Netlist, flat)
	t.Logf("HPWL soft=%.0f flat=%.0f ratio=%.2f", soft, hard, soft/hard)
	if soft > 1.6*hard {
		t.Errorf("soft-block HPWL %.0f far worse than flat %.0f", soft, hard)
	}
}

func TestPlaceSoftBlocksNoGroups(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceSoftBlocks(rg.Netlist, nil, Rect{}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Place(rg.Netlist, Rect{}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With no groups the flow degenerates to ordinary placement.
	if HPWL(rg.Netlist, pl) <= 0 || HPWL(rg.Netlist, flat) <= 0 {
		t.Fatal("degenerate HPWL")
	}
}
