package place

import (
	"math"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// RefineGreedy improves a placement in place by randomized pairwise
// cell swaps: candidate pairs are drawn at random, a swap is kept when
// it reduces the summed half-perimeter of the nets touching either
// cell. This is the detailed-placement cleanup pass after recursive
// bisection; HPWL never increases. rounds counts attempted swaps (a
// few × NumCells is typical). Returns the number of accepted swaps.
func RefineGreedy(nl *netlist.Netlist, pl *Placement, rounds int, seed uint64) int {
	n := nl.NumCells()
	if n < 2 || rounds <= 0 {
		return 0
	}
	rng := ds.NewRNG(seed + 0x5ef1)
	accepted := 0
	for r := 0; r < rounds; r++ {
		a := netlist.CellID(rng.Intn(n))
		b := netlist.CellID(rng.Intn(n))
		if a == b {
			continue
		}
		before := cellsWirelength(nl, pl, a, b)
		pl.X[a], pl.X[b] = pl.X[b], pl.X[a]
		pl.Y[a], pl.Y[b] = pl.Y[b], pl.Y[a]
		after := cellsWirelength(nl, pl, a, b)
		if after < before-1e-12 {
			accepted++
			continue
		}
		// Revert.
		pl.X[a], pl.X[b] = pl.X[b], pl.X[a]
		pl.Y[a], pl.Y[b] = pl.Y[b], pl.Y[a]
	}
	return accepted
}

// cellsWirelength sums the half-perimeters of the distinct nets
// incident to a or b.
func cellsWirelength(nl *netlist.Netlist, pl *Placement, a, b netlist.CellID) float64 {
	total := 0.0
	for _, n := range nl.CellPins(a) {
		total += netHPWL(nl, pl, n)
	}
	for _, n := range nl.CellPins(b) {
		if !netHasCell(nl, n, a) {
			total += netHPWL(nl, pl, n)
		}
	}
	return total
}

func netHasCell(nl *netlist.Netlist, n netlist.NetID, c netlist.CellID) bool {
	for _, p := range nl.NetPins(n) {
		if p == c {
			return true
		}
	}
	return false
}

func netHPWL(nl *netlist.Netlist, pl *Placement, n netlist.NetID) float64 {
	pins := nl.NetPins(n)
	if len(pins) < 2 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range pins {
		minX = math.Min(minX, pl.X[c])
		maxX = math.Max(maxX, pl.X[c])
		minY = math.Min(minY, pl.Y[c])
		maxY = math.Max(maxY, pl.Y[c])
	}
	return (maxX - minX) + (maxY - minY)
}
