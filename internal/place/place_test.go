package place

import (
	"math"
	"testing"

	"tanglefind/internal/ds"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func chainNetlist(n int) *netlist.Netlist {
	var b netlist.Builder
	b.AddCells(n)
	for i := 1; i < n; i++ {
		b.AddNet("", netlist.CellID(i-1), netlist.CellID(i))
	}
	return b.MustBuild()
}

func TestBipartitionBalanced(t *testing.T) {
	nl := chainNetlist(1000)
	cells := make([]netlist.CellID, nl.NumCells())
	for i := range cells {
		cells[i] = netlist.CellID(i)
	}
	res := Bipartition(nl, cells, 0.1, 4, ds.NewRNG(1))
	total := res.Area[0] + res.Area[1]
	if res.Area[0] < 0.4*total || res.Area[0] > 0.6*total {
		t.Errorf("unbalanced: %v of %v", res.Area[0], total)
	}
	if len(res.Side[0])+len(res.Side[1]) != 1000 {
		t.Fatalf("lost cells: %d + %d", len(res.Side[0]), len(res.Side[1]))
	}
	// A chain has a 1-net min bisection; FM from random start should
	// get close. Random splits cut ~500.
	if res.Cut > 60 {
		t.Errorf("chain cut = %d, want near-optimal (< 60)", res.Cut)
	}
}

func TestBipartitionRespectsCutCount(t *testing.T) {
	// Two 100-cell cliques joined by one net: optimal cut is 1 and FM
	// must find it.
	var b netlist.Builder
	b.AddCells(200)
	for g := 0; g < 2; g++ {
		base := netlist.CellID(g * 100)
		for i := 0; i < 99; i++ {
			b.AddNet("", base+netlist.CellID(i), base+netlist.CellID(i+1))
			b.AddNet("", base+netlist.CellID(i), base+netlist.CellID((i+37)%100))
		}
	}
	b.AddNet("", 0, 100)
	nl := b.MustBuild()
	cells := make([]netlist.CellID, 200)
	for i := range cells {
		cells[i] = netlist.CellID(i)
	}
	res := Bipartition(nl, cells, 0.1, 8, ds.NewRNG(3))
	if res.Cut != 1 {
		t.Errorf("two-clique cut = %d, want 1", res.Cut)
	}
}

func TestPlaceBasics(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(rg.Netlist, Rect{}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Every cell inside the die.
	for c := 0; c < rg.Netlist.NumCells(); c++ {
		if pl.X[c] < pl.Die.X0 || pl.X[c] > pl.Die.X1 || pl.Y[c] < pl.Die.Y0 || pl.Y[c] > pl.Die.Y1 {
			t.Fatalf("cell %d at (%v,%v) outside die %+v", c, pl.X[c], pl.Y[c], pl.Die)
		}
	}
	// Min-cut placement must beat random placement on HPWL by a wide
	// margin.
	rng := ds.NewRNG(9)
	rand := &Placement{Die: pl.Die, X: make([]float64, 2000), Y: make([]float64, 2000)}
	for c := range rand.X {
		rand.X[c] = pl.Die.X0 + rng.Float64()*pl.Die.W()
		rand.Y[c] = pl.Die.Y0 + rng.Float64()*pl.Die.H()
	}
	got, base := HPWL(rg.Netlist, pl), HPWL(rg.Netlist, rand)
	t.Logf("HPWL placed=%.0f random=%.0f ratio=%.2f", got, base, got/base)
	if got > 0.7*base {
		t.Errorf("placed HPWL %.0f not clearly better than random %.0f", got, base)
	}
}

func TestPlacerClustersGTL(t *testing.T) {
	// The paper's premise: a placer pulls a tangled block's cells into
	// a tight clump. Check the block's spatial spread is far below the
	// die size.
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  8000,
		Blocks: []generate.BlockSpec{{Size: 800}},
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(rg.Netlist, Rect{}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	spread := groupStddev(pl, rg.Blocks[0])
	die := pl.Die.W()
	t.Logf("block stddev=%.1f die=%.1f ratio=%.3f", spread, die, spread/die)
	// A uniformly scattered 10% subset would have stddev ≈ 0.29·die.
	if spread > 0.2*die {
		t.Errorf("block spread %.1f of die %.1f; placer did not cluster it", spread, die)
	}
}

func groupStddev(pl *Placement, cells []netlist.CellID) float64 {
	mx, my := 0.0, 0.0
	for _, c := range cells {
		mx += pl.X[c]
		my += pl.Y[c]
	}
	mx /= float64(len(cells))
	my /= float64(len(cells))
	v := 0.0
	for _, c := range cells {
		dx, dy := pl.X[c]-mx, pl.Y[c]-my
		v += dx*dx + dy*dy
	}
	return math.Sqrt(v / float64(len(cells)))
}

func TestInflate(t *testing.T) {
	nl := chainNetlist(100)
	inflated, err := Inflate(nl, [][]netlist.CellID{{1, 2, 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := inflated.CellArea(2); got != 4 {
		t.Errorf("inflated area = %v, want 4", got)
	}
	if got := inflated.CellArea(50); got != 1 {
		t.Errorf("untouched area = %v, want 1", got)
	}
	if nl.CellArea(2) != 1 {
		t.Error("Inflate mutated the original netlist")
	}
	if _, err := Inflate(nl, nil, -1); err == nil {
		t.Error("expected error for negative factor")
	}
}

func TestHPWLKnownValue(t *testing.T) {
	var b netlist.Builder
	b.AddCells(3)
	b.AddNet("", 0, 1, 2)
	nl := b.MustBuild()
	pl := &Placement{Die: Rect{0, 0, 10, 10}, X: []float64{0, 4, 10}, Y: []float64{0, 8, 2}}
	if got := HPWL(nl, pl); got != 18 {
		t.Errorf("HPWL = %v, want 18 (10 wide + 8 tall)", got)
	}
}
