package route

import (
	"fmt"
	"math"

	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
)

// This file implements a second congestion model: probabilistic
// L-shaped (two-bend) global routing, the classic Westra-style
// estimator. Each net is decomposed into two-pin segments by a
// Manhattan minimum spanning tree; each segment is routed as the lower
// and upper L with probability ½ each, accumulating horizontal and
// vertical track demand per tile. Compared to RUDY it models track
// direction and bend locations, so it is closer to what the paper's
// commercial router measured; it is also what the inflation experiment
// uses to cross-check the RUDY result.

// EstimateLRoute builds an L-routing congestion map on a gridW×gridH
// tile grid. The returned Map's Demand is the per-tile maximum of
// horizontal and vertical track usage (wires crossing the tile);
// Capacity is left at zero, as with Estimate.
func EstimateLRoute(nl *netlist.Netlist, pl *place.Placement, gridW, gridH int) (*Map, error) {
	if gridW < 1 || gridH < 1 {
		return nil, fmt.Errorf("route: invalid grid %dx%d", gridW, gridH)
	}
	hDem := make([]float64, gridW*gridH)
	vDem := make([]float64, gridW*gridH)
	binW := pl.Die.W() / float64(gridW)
	binH := pl.Die.H() / float64(gridH)
	tileX := func(x float64) int {
		t := int((x - pl.Die.X0) / binW)
		if t < 0 {
			t = 0
		}
		if t >= gridW {
			t = gridW - 1
		}
		return t
	}
	tileY := func(y float64) int {
		t := int((y - pl.Die.Y0) / binH)
		if t < 0 {
			t = 0
		}
		if t >= gridH {
			t = gridH - 1
		}
		return t
	}
	addH := func(y, x0, x1 int, w float64) {
		if x1 < x0 {
			x0, x1 = x1, x0
		}
		for x := x0; x <= x1; x++ {
			hDem[y*gridW+x] += w
		}
	}
	addV := func(x, y0, y1 int, w float64) {
		if y1 < y0 {
			y0, y1 = y1, y0
		}
		for y := y0; y <= y1; y++ {
			vDem[y*gridW+x] += w
		}
	}
	for n := 0; n < nl.NumNets(); n++ {
		pins := nl.NetPins(netlist.NetID(n))
		if len(pins) < 2 {
			continue
		}
		for _, seg := range mstSegments(nl, pl, pins) {
			ax, ay := tileX(pl.X[seg[0]]), tileY(pl.Y[seg[0]])
			bx, by := tileX(pl.X[seg[1]]), tileY(pl.Y[seg[1]])
			switch {
			case ay == by:
				addH(ay, ax, bx, 1)
			case ax == bx:
				addV(ax, ay, by, 1)
			default:
				// Lower L: horizontal at ay then vertical at bx.
				addH(ay, ax, bx, 0.5)
				addV(bx, ay, by, 0.5)
				// Upper L: vertical at ax then horizontal at by.
				addV(ax, ay, by, 0.5)
				addH(by, ax, bx, 0.5)
			}
		}
	}
	m := &Map{W: gridW, H: gridH, Die: pl.Die, Demand: make([]float64, gridW*gridH)}
	for i := range m.Demand {
		m.Demand[i] = math.Max(hDem[i], vDem[i])
	}
	return m, nil
}

// mstSegments decomposes a net's pins into two-pin segments along a
// Manhattan-distance minimum spanning tree (Prim's algorithm). Cells
// appearing at identical locations still get zero-length segments so
// connectivity is preserved.
func mstSegments(nl *netlist.Netlist, pl *place.Placement, pins []netlist.CellID) [][2]netlist.CellID {
	k := len(pins)
	if k == 2 {
		return [][2]netlist.CellID{{pins[0], pins[1]}}
	}
	inTree := make([]bool, k)
	dist := make([]float64, k)
	parent := make([]int, k)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[0] = 0
	segs := make([][2]netlist.CellID, 0, k-1)
	for iter := 0; iter < k; iter++ {
		best, bestD := -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		if parent[best] >= 0 {
			segs = append(segs, [2]netlist.CellID{pins[parent[best]], pins[best]})
		}
		bx, by := pl.X[pins[best]], pl.Y[pins[best]]
		for i := 0; i < k; i++ {
			if inTree[i] {
				continue
			}
			d := math.Abs(pl.X[pins[i]]-bx) + math.Abs(pl.Y[pins[i]]-by)
			if d < dist[i] {
				dist[i] = d
				parent[i] = best
			}
		}
	}
	return segs
}

// MSTWirelength returns the total Manhattan MST wirelength of the
// placement — a tighter routed-length estimate than HPWL for multi-pin
// nets.
func MSTWirelength(nl *netlist.Netlist, pl *place.Placement) float64 {
	total := 0.0
	for n := 0; n < nl.NumNets(); n++ {
		pins := nl.NetPins(netlist.NetID(n))
		if len(pins) < 2 {
			continue
		}
		for _, seg := range mstSegments(nl, pl, pins) {
			total += math.Abs(pl.X[seg[0]]-pl.X[seg[1]]) + math.Abs(pl.Y[seg[0]]-pl.Y[seg[1]])
		}
	}
	return total
}
