package route

import (
	"sort"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/place"
)

// TestStatsMonotoneInCapacity: raising the routing supply can only
// reduce every overflow statistic.
func TestStatsMonotoneInCapacity(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  3000,
		Blocks: []generate.BlockSpec{{Size: 300}},
		Seed:   14,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(rg.Netlist, place.Rect{}, place.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Estimate(rg.Netlist, pl, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	var prev *Stats
	for _, factor := range []float64{0.8, 1.0, 1.3, 1.8, 3.0} {
		m.Capacity = 0
		m.SetCapacityRelative(factor)
		st := ComputeStats(rg.Netlist, pl, m)
		if prev != nil {
			if st.NetsThrough100 > prev.NetsThrough100 {
				t.Errorf("factor %v: >=100%% nets rose: %d -> %d", factor, prev.NetsThrough100, st.NetsThrough100)
			}
			if st.NetsThrough90 > prev.NetsThrough90 {
				t.Errorf("factor %v: >=90%% nets rose", factor)
			}
			if st.AvgWorst20 > prev.AvgWorst20 {
				t.Errorf("factor %v: avg congestion rose", factor)
			}
			if st.MaxTile > prev.MaxTile {
				t.Errorf("factor %v: max tile rose", factor)
			}
		}
		cp := st
		prev = &cp
	}
	// And within one map, >=90% counts dominate >=100% counts.
	m.Capacity = 0
	m.SetCapacityRelative(1.2)
	st := ComputeStats(rg.Netlist, pl, m)
	if st.NetsThrough90 < st.NetsThrough100 {
		t.Errorf(">=90%% (%d) < >=100%% (%d)", st.NetsThrough90, st.NetsThrough100)
	}
}

// TestHotspotAtGTL: the congestion peak must sit where the placer
// clumped the tangled block — the paper's Figure 1 phenomenon.
func TestHotspotAtGTL(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 900, InternalPins: 6}},
		Seed:   19,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(rg.Netlist, place.Rect{}, place.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const grid = 24
	m, err := Estimate(rg.Netlist, pl, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	// Centroid of the block, as a tile.
	cx, cy := 0.0, 0.0
	for _, c := range rg.Blocks[0] {
		cx += pl.X[c]
		cy += pl.Y[c]
	}
	cx /= float64(len(rg.Blocks[0]))
	cy /= float64(len(rg.Blocks[0]))
	bx := int((cx - pl.Die.X0) / pl.Die.W() * grid)
	by := int((cy - pl.Die.Y0) / pl.Die.H() * grid)
	// Demand where the block landed must be well above the typical
	// tile (RUDY's center-accumulation from long background nets can
	// legitimately own the absolute peak, so we assert elevation, not
	// peak location).
	blockDemand := 0.0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := bx+dx, by+dy
			if x >= 0 && x < grid && y >= 0 && y < grid && m.At(x, y) > blockDemand {
				blockDemand = m.At(x, y)
			}
		}
	}
	demands := make([]float64, 0, grid*grid)
	for y := 0; y < grid; y++ {
		for x := 0; x < grid; x++ {
			demands = append(demands, m.At(x, y))
		}
	}
	sort.Float64s(demands)
	median := demands[len(demands)/2]
	t.Logf("block-centroid demand %.2f, median tile %.2f", blockDemand, median)
	if blockDemand < 1.5*median {
		t.Errorf("block region demand %.2f not elevated above median %.2f", blockDemand, median)
	}
}
