// Package route estimates routing congestion over a placed netlist
// with the RUDY model (Rectangular Uniform wire DensitY): each net
// spreads a wiring demand of (w+h)/(w·h) uniformly over its bounding
// box. RUDY is the standard fast congestion predictor in placement
// literature, and it responds to exactly the phenomenon the paper
// exploits — dense clumps of interconnected cells create local demand
// spikes — so it reproduces the Figure 1 / Figure 7 before/after
// comparison without a full global router.
package route

import (
	"fmt"
	"math"
	"sort"

	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
)

// Map is a congestion map over a uniform tile grid.
type Map struct {
	W, H     int
	Die      place.Rect
	Demand   []float64 // row-major demand per tile
	Capacity float64   // routing supply per tile (same unit as Demand)
}

// At returns the demand at tile (x, y).
func (m *Map) At(x, y int) float64 { return m.Demand[y*m.W+x] }

// Congestion returns demand/capacity at tile (x, y).
func (m *Map) Congestion(x, y int) float64 { return m.Demand[y*m.W+x] / m.Capacity }

// MaxCongestion returns the most congested tile's utilization.
func (m *Map) MaxCongestion() float64 {
	worst := 0.0
	for _, d := range m.Demand {
		if c := d / m.Capacity; c > worst {
			worst = c
		}
	}
	return worst
}

// MeanDemand returns the average tile demand.
func (m *Map) MeanDemand() float64 {
	sum := 0.0
	for _, d := range m.Demand {
		sum += d
	}
	return sum / float64(len(m.Demand))
}

// Estimate builds the RUDY congestion map on a gridW×gridH tile grid.
// Capacity is left at zero; callers fix it with SetCapacityRelative or
// by assigning Capacity directly (the before/after experiment must use
// one capacity for both maps).
func Estimate(nl *netlist.Netlist, pl *place.Placement, gridW, gridH int) (*Map, error) {
	if gridW < 1 || gridH < 1 {
		return nil, fmt.Errorf("route: invalid grid %dx%d", gridW, gridH)
	}
	m := &Map{W: gridW, H: gridH, Die: pl.Die, Demand: make([]float64, gridW*gridH)}
	binW := pl.Die.W() / float64(gridW)
	binH := pl.Die.H() / float64(gridH)
	for n := 0; n < nl.NumNets(); n++ {
		bbox, ok := netBBox(nl, pl, netlist.NetID(n))
		if !ok {
			continue
		}
		// Degenerate boxes still consume local routing: pad to one
		// tile pitch so short nets register demand where they sit.
		if bbox.X1-bbox.X0 < binW {
			cx := (bbox.X0 + bbox.X1) / 2
			bbox.X0, bbox.X1 = cx-binW/2, cx+binW/2
		}
		if bbox.Y1-bbox.Y0 < binH {
			cy := (bbox.Y0 + bbox.Y1) / 2
			bbox.Y0, bbox.Y1 = cy-binH/2, cy+binH/2
		}
		w, h := bbox.X1-bbox.X0, bbox.Y1-bbox.Y0
		density := (w + h) / (w * h) // RUDY: wirelength per unit area
		x0, x1 := tileRange(bbox.X0, bbox.X1, pl.Die.X0, binW, gridW)
		y0, y1 := tileRange(bbox.Y0, bbox.Y1, pl.Die.Y0, binH, gridH)
		for ty := y0; ty <= y1; ty++ {
			rowY0 := pl.Die.Y0 + float64(ty)*binH
			overlapY := overlap(bbox.Y0, bbox.Y1, rowY0, rowY0+binH)
			for tx := x0; tx <= x1; tx++ {
				colX0 := pl.Die.X0 + float64(tx)*binW
				overlapX := overlap(bbox.X0, bbox.X1, colX0, colX0+binW)
				m.Demand[ty*gridW+tx] += density * overlapX * overlapY
			}
		}
	}
	return m, nil
}

// SetCapacityRelative fixes the tile capacity at factor × the map's
// mean demand — e.g. 1.2 models a design routed with modest headroom,
// so demand spikes above ~120% of average become overflows.
func (m *Map) SetCapacityRelative(factor float64) {
	m.Capacity = factor * m.MeanDemand()
	if m.Capacity <= 0 {
		m.Capacity = 1
	}
}

func netBBox(nl *netlist.Netlist, pl *place.Placement, n netlist.NetID) (place.Rect, bool) {
	pins := nl.NetPins(n)
	if len(pins) < 2 {
		return place.Rect{}, false
	}
	r := place.Rect{X0: math.Inf(1), Y0: math.Inf(1), X1: math.Inf(-1), Y1: math.Inf(-1)}
	for _, c := range pins {
		r.X0 = math.Min(r.X0, pl.X[c])
		r.X1 = math.Max(r.X1, pl.X[c])
		r.Y0 = math.Min(r.Y0, pl.Y[c])
		r.Y1 = math.Max(r.Y1, pl.Y[c])
	}
	return r, true
}

func tileRange(lo, hi, origin, bin float64, n int) (int, int) {
	a := int(math.Floor((lo - origin) / bin))
	b := int(math.Floor((hi - origin) / bin))
	if a < 0 {
		a = 0
	}
	if b >= n {
		b = n - 1
	}
	if b < a {
		b = a
	}
	return a, b
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := math.Max(a0, b0), math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Stats are the paper's §5.1.3 congestion statistics.
type Stats struct {
	// NetsThrough100 counts nets whose bounding box touches at least
	// one tile at or above 100% utilization.
	NetsThrough100 int
	// NetsThrough90 is the same at 90%.
	NetsThrough90 int
	// AvgWorst20 is the paper's "average congestion metric": take the
	// worst 20% congested nets and average the congestion of the tiles
	// they pass through.
	AvgWorst20 float64
	// MaxTile is the single worst tile utilization.
	MaxTile float64
}

// ComputeStats evaluates the paper's congestion statistics for a
// placed netlist against an existing map (whose Capacity must be set).
func ComputeStats(nl *netlist.Netlist, pl *place.Placement, m *Map) Stats {
	if m.Capacity <= 0 {
		panic("route: ComputeStats requires Capacity to be set")
	}
	binW := m.Die.W() / float64(m.W)
	binH := m.Die.H() / float64(m.H)
	var st Stats
	st.MaxTile = m.MaxCongestion()
	var perNet []float64
	for n := 0; n < nl.NumNets(); n++ {
		bbox, ok := netBBox(nl, pl, netlist.NetID(n))
		if !ok {
			continue
		}
		x0, x1 := tileRange(bbox.X0, bbox.X1, m.Die.X0, binW, m.W)
		y0, y1 := tileRange(bbox.Y0, bbox.Y1, m.Die.Y0, binH, m.H)
		sum, cnt := 0.0, 0
		worst := 0.0
		for ty := y0; ty <= y1; ty++ {
			for tx := x0; tx <= x1; tx++ {
				c := m.Congestion(tx, ty)
				sum += c
				cnt++
				if c > worst {
					worst = c
				}
			}
		}
		if cnt == 0 {
			continue
		}
		if worst >= 1.0 {
			st.NetsThrough100++
		}
		if worst >= 0.9 {
			st.NetsThrough90++
		}
		perNet = append(perNet, sum/float64(cnt))
	}
	if len(perNet) > 0 {
		sort.Float64s(perNet)
		k := len(perNet) / 5
		if k == 0 {
			k = 1
		}
		worst := perNet[len(perNet)-k:]
		sum := 0.0
		for _, v := range worst {
			sum += v
		}
		st.AvgWorst20 = sum / float64(len(worst))
	}
	return st
}
