package route

import (
	"math"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
)

func TestEstimateConservesDemand(t *testing.T) {
	// Total demand summed over tiles must equal Σ_nets (w+h) — RUDY
	// spreads exactly the net's half-perimeter wirelength, whatever
	// the grid resolution (as long as boxes are not padded).
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("", 0, 1)
	b.AddNet("", 2, 3)
	b.AddNet("", 0, 3)
	nl := b.MustBuild()
	// Every net spans at least 25 units in both axes so no box gets
	// padded at the coarsest grid (4x4 tiles of 25 units).
	pl := &place.Placement{
		Die: place.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100},
		X:   []float64{10, 90, 20, 70},
		Y:   []float64{5, 95, 75, 35},
	}
	want := 0.0
	for n := 0; n < nl.NumNets(); n++ {
		pins := nl.NetPins(netlist.NetID(n))
		w := math.Abs(pl.X[pins[0]] - pl.X[pins[1]])
		h := math.Abs(pl.Y[pins[0]] - pl.Y[pins[1]])
		want += w + h
	}
	for _, grid := range []int{4, 10, 25} {
		m, err := Estimate(nl, pl, grid, grid)
		if err != nil {
			t.Fatal(err)
		}
		got := 0.0
		for _, d := range m.Demand {
			got += d
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("grid %d: total demand %.4f, want %.4f", grid, got, want)
		}
	}
}

func TestCongestionStats(t *testing.T) {
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("", 0, 1) // short net in a hot corner
	b.AddNet("", 2, 3) // long net through cool area
	nl := b.MustBuild()
	pl := &place.Placement{
		Die: place.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100},
		X:   []float64{1, 9, 10, 95},
		Y:   []float64{1, 9, 60, 60},
	}
	m, err := Estimate(nl, pl, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	m.Capacity = m.MaxCongestion() * m.Capacity // placeholder; set below
	m.Capacity = 0
	m.SetCapacityRelative(1.0)
	st := ComputeStats(nl, pl, m)
	if st.MaxTile <= 1.0 {
		t.Fatalf("expected an overflowed tile, max=%.2f", st.MaxTile)
	}
	if st.NetsThrough100 < 1 {
		t.Errorf("NetsThrough100 = %d, want >= 1", st.NetsThrough100)
	}
	if st.NetsThrough90 < st.NetsThrough100 {
		t.Errorf("NetsThrough90 (%d) < NetsThrough100 (%d)", st.NetsThrough90, st.NetsThrough100)
	}
	if st.AvgWorst20 <= 0 {
		t.Errorf("AvgWorst20 = %v, want > 0", st.AvgWorst20)
	}
}

// TestInflationRelievesCongestion is the §5.1.3 experiment end to end:
// place the industrial proxy, measure congestion, inflate the
// ground-truth GTL cells 4×, re-place, re-measure with the same tile
// capacity. All three of the paper's statistics must improve.
func TestInflationRelievesCongestion(t *testing.T) {
	d, err := generate.NewIndustrialProxy(0.02, 6)
	if err != nil {
		t.Fatal(err)
	}
	nl := d.Netlist
	pl, err := place.Place(nl, place.Rect{}, place.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	const grid = 48
	before, err := Estimate(nl, pl, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	before.SetCapacityRelative(1.25)
	stBefore := ComputeStats(nl, pl, before)

	inflated, err := place.Inflate(nl, d.Structures, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := place.Place(inflated, place.Rect{}, place.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Estimate(inflated, pl2, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	// Same absolute routing capacity per tile for a fair comparison.
	// The inflated die is larger, so per-tile area differs; normalize
	// capacity to demand-per-area of the before map.
	after.Capacity = before.Capacity * (after.Die.Area() / float64(after.W*after.H)) /
		(before.Die.Area() / float64(before.W*before.H))
	stAfter := ComputeStats(inflated, pl2, after)

	t.Logf("before: >=100%%=%d >=90%%=%d avgWorst20=%.3f maxTile=%.2f",
		stBefore.NetsThrough100, stBefore.NetsThrough90, stBefore.AvgWorst20, stBefore.MaxTile)
	t.Logf("after:  >=100%%=%d >=90%%=%d avgWorst20=%.3f maxTile=%.2f",
		stAfter.NetsThrough100, stAfter.NetsThrough90, stAfter.AvgWorst20, stAfter.MaxTile)

	if stBefore.NetsThrough100 == 0 {
		t.Fatal("baseline has no overflowed nets; the experiment is vacuous")
	}
	if stAfter.NetsThrough100 >= stBefore.NetsThrough100 {
		t.Errorf("inflation did not reduce >=100%% nets: %d -> %d",
			stBefore.NetsThrough100, stAfter.NetsThrough100)
	}
	if stAfter.AvgWorst20 >= stBefore.AvgWorst20 {
		t.Errorf("inflation did not reduce worst-20%% congestion: %.3f -> %.3f",
			stBefore.AvgWorst20, stAfter.AvgWorst20)
	}
}
