package route

import (
	"math"
	"testing"

	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
)

func lrouteFixture(xs, ys []float64, nets [][]netlist.CellID) (*netlist.Netlist, *place.Placement) {
	var b netlist.Builder
	b.AddCells(len(xs))
	for _, n := range nets {
		b.AddNet("", n...)
	}
	return b.MustBuild(), &place.Placement{
		Die: place.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100},
		X:   xs, Y: ys,
	}
}

func TestLRouteStraightNet(t *testing.T) {
	// Horizontal 2-pin net: every tile along its row gets 1 horizontal
	// track, nothing vertical anywhere else.
	nl, pl := lrouteFixture(
		[]float64{5, 95},
		[]float64{55, 55},
		[][]netlist.CellID{{0, 1}},
	)
	m, err := EstimateLRoute(nl, pl, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	row := 5 // y=55 -> tile 5
	for x := 0; x < 10; x++ {
		if got := m.At(x, row); got != 1 {
			t.Errorf("tile (%d,%d) demand = %v, want 1", x, row, got)
		}
	}
	total := 0.0
	for _, d := range m.Demand {
		total += d
	}
	if total != 10 {
		t.Errorf("total demand = %v, want 10 (row only)", total)
	}
}

func TestLRouteSplitsLs(t *testing.T) {
	// Diagonal 2-pin net: both L routes get weight 0.5; the two bend
	// tiles see max(h,v)=0.5 each, corner tiles at the pins see both a
	// 0.5 horizontal and a 0.5 vertical -> max 0.5.
	nl, pl := lrouteFixture(
		[]float64{5, 95},
		[]float64{5, 95},
		[][]netlist.CellID{{0, 1}},
	)
	m, err := EstimateLRoute(nl, pl, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal demand on row 0 and row 9 must each be 0.5 per tile.
	if got := m.At(5, 0); got != 0.5 {
		t.Errorf("lower-L mid tile = %v, want 0.5", got)
	}
	if got := m.At(5, 9); got != 0.5 {
		t.Errorf("upper-L mid tile = %v, want 0.5", got)
	}
	// Nothing in the interior.
	if got := m.At(5, 5); got != 0 {
		t.Errorf("interior tile = %v, want 0", got)
	}
}

func TestMSTSegmentsCollinear(t *testing.T) {
	// Three collinear pins: the MST must chain adjacent pins, not
	// create a long redundant segment.
	nl, pl := lrouteFixture(
		[]float64{10, 50, 90},
		[]float64{50, 50, 50},
		[][]netlist.CellID{{0, 1, 2}},
	)
	segs := mstSegments(nl, pl, nl.NetPins(0))
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	totalLen := 0.0
	for _, s := range segs {
		totalLen += math.Abs(pl.X[s[0]] - pl.X[s[1]])
	}
	if totalLen != 80 {
		t.Errorf("MST length = %v, want 80 (10-50 + 50-90)", totalLen)
	}
}

func TestMSTWirelengthVsHPWL(t *testing.T) {
	// For 2-pin nets MST == HPWL; for multi-pin nets MST >= HPWL.
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(rg.Netlist, place.Rect{}, place.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mst := MSTWirelength(rg.Netlist, pl)
	hp := place.HPWL(rg.Netlist, pl)
	if mst < hp {
		t.Errorf("MST %v < HPWL %v; MST must dominate", mst, hp)
	}
	if mst > 2*hp {
		t.Errorf("MST %v > 2x HPWL %v; decomposition looks broken", mst, hp)
	}
}

// TestLRouteAgreesWithRUDYOnHotspot: both models must see elevated
// demand where the placer clumps a tangled block.
func TestLRouteAgreesWithRUDYOnHotspot(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  6000,
		Blocks: []generate.BlockSpec{{Size: 900, InternalPins: 6}},
		Seed:   19,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(rg.Netlist, place.Rect{}, place.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const grid = 24
	rudy, err := Estimate(rg.Netlist, pl, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := EstimateLRoute(rg.Netlist, pl, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	// Correlate the two demand fields: the hotspot structure must make
	// them strongly positively correlated.
	corr := pearson(rudy.Demand, lr.Demand)
	t.Logf("RUDY/L-route demand correlation = %.3f", corr)
	if corr < 0.6 {
		t.Errorf("models disagree: correlation %.3f", corr)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	num := sab - sa*sb/n
	den := math.Sqrt((saa - sa*sa/n) * (sbb - sb*sb/n))
	if den == 0 {
		return 0
	}
	return num / den
}

// TestInflationHoldsUnderLRoute cross-checks the §5.1.3 result with the
// second congestion model: inflation must reduce L-routing overflow
// too, not just RUDY's.
func TestInflationHoldsUnderLRoute(t *testing.T) {
	d, err := generate.NewIndustrialProxy(0.02, 6)
	if err != nil {
		t.Fatal(err)
	}
	nl := d.Netlist
	pl, err := place.Place(nl, place.Rect{}, place.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	const grid = 48
	before, err := EstimateLRoute(nl, pl, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	before.SetCapacityRelative(1.25)
	stBefore := ComputeStats(nl, pl, before)

	inflated, err := place.Inflate(nl, d.Structures, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := place.Place(inflated, place.Rect{}, place.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	after, err := EstimateLRoute(inflated, pl2, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	// L-route demand counts wires per tile; tiles are larger on the
	// inflated die, so scale supply with tile width (tracks scale
	// linearly, not with area).
	after.Capacity = before.Capacity * (after.Die.W() / float64(after.W)) /
		(before.Die.W() / float64(before.W))
	stAfter := ComputeStats(inflated, pl2, after)
	t.Logf("L-route before: >=100%%=%d worst20=%.2f; after: >=100%%=%d worst20=%.2f",
		stBefore.NetsThrough100, stBefore.AvgWorst20, stAfter.NetsThrough100, stAfter.AvgWorst20)
	if stBefore.NetsThrough100 == 0 {
		t.Fatal("baseline has no L-route overflow; vacuous")
	}
	if stAfter.NetsThrough100 >= stBefore.NetsThrough100 {
		t.Errorf("inflation did not reduce L-route overflow: %d -> %d",
			stBefore.NetsThrough100, stAfter.NetsThrough100)
	}
}
