package cliutil

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tanglefind/internal/generate"
)

func TestLoadNetlistAutodetect(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	text := filepath.Join(dir, "x.tfnet")
	bin := filepath.Join(dir, "x.tfb")
	if err := rg.Netlist.WriteFile(text); err != nil {
		t.Fatal(err)
	}
	if err := rg.Netlist.WriteFile(bin); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{text, bin} {
		nl, err := LoadNetlist(p, "")
		if err != nil {
			t.Fatalf("LoadNetlist(%s): %v", p, err)
		}
		if nl.NumCells() != 300 {
			t.Errorf("%s: cells = %d", p, nl.NumCells())
		}
	}
}

func TestLoadNetlistArgErrors(t *testing.T) {
	if _, err := LoadNetlist("", ""); err == nil {
		t.Error("no input accepted")
	}
	if _, err := LoadNetlist("a.tfnet", "b.aux"); err == nil {
		t.Error("ambiguous input accepted")
	}
	if _, err := LoadNetlist(filepath.Join(t.TempDir(), "missing.tfnet"), ""); err == nil {
		t.Error("missing file accepted")
	}
	if !os.IsNotExist(func() error {
		_, err := LoadNetlist(filepath.Join(t.TempDir(), "missing.tfnet"), "")
		return err
	}()) {
		t.Error("missing file error is not an os.IsNotExist error")
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout imposed a deadline")
	}
	ctx2, cancel2 := WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Error("positive timeout imposed no deadline")
	}
}

func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	if ctx.Err() != nil {
		t.Error("fresh signal context already cancelled")
	}
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Error("stop did not cancel the context")
	}
}
