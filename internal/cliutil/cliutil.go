// Package cliutil holds the I/O and lifecycle boilerplate shared by
// the command-line tools (and the server binary): loading a netlist
// from any supported on-disk form with autodetection, signal-driven
// cancellation contexts, and uniform fatal-error exits.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tanglefind/internal/bookshelf"
	"tanglefind/internal/netlist"
)

// LoadNetlist loads a netlist from exactly one of inPath (a
// .tfnet/.tfb file, format autodetected by content) or auxPath (an
// ISPD Bookshelf .aux file). Passing both or neither is an error, so
// CLIs can feed their -in/-aux flags straight through.
func LoadNetlist(inPath, auxPath string) (*netlist.Netlist, error) {
	switch {
	case inPath == "" && auxPath == "":
		return nil, errors.New("no input: provide a netlist path (-in) or a Bookshelf .aux path (-aux)")
	case inPath != "" && auxPath != "":
		return nil, errors.New("ambiguous input: provide only one of -in and -aux")
	case auxPath != "":
		d, err := bookshelf.ReadAux(auxPath)
		if err != nil {
			return nil, err
		}
		return d.Netlist, nil
	default:
		return netlist.ReadFile(inPath)
	}
}

// SignalContext returns a context cancelled on Ctrl-C (SIGINT) or
// SIGTERM, so long runs exit cleanly with partial results instead of
// being killed mid-write. Call the returned stop function when the
// run finishes to restore default signal behavior.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WithTimeout layers a deadline onto ctx when d > 0 and is a no-op
// otherwise, matching the CLIs' "-timeout 0 means none" convention.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// Fatal prints "tool: err" to stderr and exits — with the
// conventional 130 when the error is a context cancellation (an
// interrupted run, not a failed one), 1 otherwise.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		os.Exit(130)
	}
	os.Exit(1)
}
