// Package viz renders placements and congestion maps as ASCII art and
// PGM/PPM images — the stand-ins for the paper's Figures 1, 4, 6 and 7
// (placement plots with GTL overlays and routing congestion maps).
package viz

import (
	"bufio"
	"fmt"
	"io"

	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
	"tanglefind/internal/route"
)

// asciiRamp maps utilization 0..1+ to characters of rising intensity.
const asciiRamp = " .:-=+*#%@"

// CongestionASCII renders the congestion map as width×height character
// art; tiles at or above 100% utilization show '@'.
func CongestionASCII(m *route.Map, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for y := m.H - 1; y >= 0; y-- { // die origin bottom-left
		for x := 0; x < m.W; x++ {
			c := m.Congestion(x, y)
			idx := int(c * float64(len(asciiRamp)-1))
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			bw.WriteByte(asciiRamp[idx])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// CongestionPGM writes the congestion map as a binary PGM image, one
// pixel per tile, 255 = the map's max utilization.
func CongestionPGM(m *route.Map, w io.Writer) error {
	bw := bufio.NewWriter(w)
	maxC := m.MaxCongestion()
	if maxC <= 0 {
		maxC = 1
	}
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.W, m.H)
	for y := m.H - 1; y >= 0; y-- {
		for x := 0; x < m.W; x++ {
			v := int(m.Congestion(x, y) / maxC * 255)
			if v > 255 {
				v = 255
			}
			bw.WriteByte(byte(v))
		}
	}
	return bw.Flush()
}

// palette holds distinct RGB colors for GTL overlays; background cells
// render dark gray.
var palette = [][3]byte{
	{230, 60, 60}, {60, 200, 60}, {70, 110, 255}, {240, 200, 40},
	{200, 70, 220}, {40, 220, 220}, {250, 140, 30}, {150, 230, 100},
}

// PlacementPPM renders a placement as a px×px PPM: every cell is a
// pixel at its die location; cells of GTL i use palette color i mod 8.
// This is the Figure 4 / Figure 6 visualization.
func PlacementPPM(pl *place.Placement, gtls [][]netlist.CellID, px int, w io.Writer) error {
	if px < 8 {
		px = 8
	}
	img := make([][3]byte, px*px)
	for i := range img {
		img[i] = [3]byte{15, 15, 20}
	}
	put := func(c netlist.CellID, color [3]byte) {
		x := int((pl.X[c] - pl.Die.X0) / pl.Die.W() * float64(px))
		y := int((pl.Y[c] - pl.Die.Y0) / pl.Die.H() * float64(px))
		if x < 0 {
			x = 0
		}
		if x >= px {
			x = px - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= px {
			y = px - 1
		}
		img[(px-1-y)*px+x] = color
	}
	for c := 0; c < len(pl.X); c++ {
		put(netlist.CellID(c), [3]byte{90, 90, 90})
	}
	for i, g := range gtls {
		color := palette[i%len(palette)]
		for _, c := range g {
			put(c, color)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", px, px)
	for _, p := range img {
		bw.Write(p[:])
	}
	return bw.Flush()
}

// PlacementASCII renders the placement as character art: '.' for
// background cells, digits/letters for GTL membership (GTL i uses the
// i-th symbol). Tiles show the dominant occupant.
func PlacementASCII(pl *place.Placement, gtls [][]netlist.CellID, size int, w io.Writer) error {
	if size < 4 {
		size = 4
	}
	const symbols = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	// counts[tile][0] = background, [i+1] = GTL i.
	counts := make([][]int, size*size)
	tile := func(c netlist.CellID) int {
		x := int((pl.X[c] - pl.Die.X0) / pl.Die.W() * float64(size))
		y := int((pl.Y[c] - pl.Die.Y0) / pl.Die.H() * float64(size))
		if x < 0 {
			x = 0
		}
		if x >= size {
			x = size - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= size {
			y = size - 1
		}
		return (size-1-y)*size + x
	}
	bump := func(t, slot int) {
		if counts[t] == nil {
			counts[t] = make([]int, len(gtls)+1)
		}
		counts[t][slot]++
	}
	// Flat GTL-membership array (0 = background), matching the id-dense
	// substrate instead of hashing every cell.
	inGTL := make([]int, len(pl.X))
	for i, g := range gtls {
		for _, c := range g {
			inGTL[c] = i + 1
		}
	}
	for c := 0; c < len(pl.X); c++ {
		bump(tile(netlist.CellID(c)), inGTL[c])
	}
	bw := bufio.NewWriter(w)
	for row := 0; row < size; row++ {
		for col := 0; col < size; col++ {
			cnt := counts[row*size+col]
			ch := byte(' ')
			if cnt != nil {
				best, bestN := 0, 0
				for slot, n := range cnt {
					if n > bestN {
						best, bestN = slot, n
					}
				}
				if best == 0 {
					ch = '.'
				} else {
					// A GTL tile only counts if GTLs dominate it.
					gtlCells := 0
					for slot := 1; slot < len(cnt); slot++ {
						gtlCells += cnt[slot]
					}
					if gtlCells*2 >= cnt[0] {
						ch = symbols[(best-1)%len(symbols)]
					} else {
						ch = '.'
					}
				}
			}
			bw.WriteByte(ch)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
