package viz

import (
	"bytes"
	"strings"
	"testing"

	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
	"tanglefind/internal/route"
)

func testMap() *route.Map {
	m := &route.Map{
		W: 4, H: 4,
		Die:      place.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40},
		Demand:   make([]float64, 16),
		Capacity: 1,
	}
	m.Demand[0] = 2.0  // bottom-left overflows
	m.Demand[15] = 0.5 // top-right mild
	return m
}

func TestCongestionASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := CongestionASCII(testMap(), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 4 {
		t.Fatalf("grid shape wrong: %q", buf.String())
	}
	// Origin is bottom-left, so the overflow tile is last row, first col.
	if lines[3][0] != '@' {
		t.Errorf("overflow tile renders %q, want '@'", lines[3][0])
	}
	if lines[3][3] != ' ' && lines[0][0] != ' ' {
		t.Log(buf.String())
	}
}

func TestCongestionPGM(t *testing.T) {
	var buf bytes.Buffer
	if err := CongestionPGM(testMap(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 4\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pixels := out[len("P5\n4 4\n255\n"):]
	if len(pixels) != 16 {
		t.Fatalf("pixel count = %d", len(pixels))
	}
	if pixels[12] != 255 { // bottom-left = worst tile = full white
		t.Errorf("hottest pixel = %d, want 255", pixels[12])
	}
}

func placementFixture() (*place.Placement, [][]netlist.CellID) {
	pl := &place.Placement{
		Die: place.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100},
		X:   []float64{10, 12, 90, 95},
		Y:   []float64{10, 12, 90, 95},
	}
	gtls := [][]netlist.CellID{{0, 1}}
	return pl, gtls
}

func TestPlacementPPM(t *testing.T) {
	pl, gtls := placementFixture()
	var buf bytes.Buffer
	if err := PlacementPPM(pl, gtls, 16, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P6\n16 16\n255\n")) {
		t.Fatal("bad PPM header")
	}
	if len(buf.Bytes()) != len("P6\n16 16\n255\n")+16*16*3 {
		t.Fatalf("pixel payload = %d bytes", buf.Len())
	}
}

func TestPlacementASCII(t *testing.T) {
	pl, gtls := placementFixture()
	var buf bytes.Buffer
	if err := PlacementASCII(pl, gtls, 10, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "0") {
		t.Errorf("GTL symbol missing:\n%s", s)
	}
	if !strings.Contains(s, ".") {
		t.Errorf("background symbol missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("rows = %d, want 10", len(lines))
	}
	// GTL cells sit at (10..12, 10..12) => tile (1,1) => rendered row
	// size-1-1 = 8, near the bottom-left.
	if !strings.Contains(lines[8], "0") {
		t.Errorf("GTL tile should be in row 8:\n%s", s)
	}
	// Background cells at (90..95, 90..95) => tile 9 => top row.
	if !strings.Contains(lines[0], ".") {
		t.Errorf("background tile should be in the top row:\n%s", s)
	}
}
