// Package metrics implements the paper's tangled-logic scores —
// GTL-Score, normalized GTL-Score and density-aware GTL-Score — plus
// every baseline clustering metric the paper surveys (net cut, ratio
// cut, scaled cost, Rent metric, absorption, degree separation,
// (K,L)-connectivity, edge separability, adhesion) so the comparisons
// in its evaluation can be regenerated.
//
// Conventions: T = net cut T(C); size = |C|; pins = Σ_{c∈C} deg(c) so
// A_C = pins/size; aG = A(G) the netlist-wide average pins per cell;
// p = Rent exponent. A score of ~1 marks an average-quality group and
// scores « 1 (e.g. < 0.1) mark strong GTLs.
package metrics

import "math"

// GTLScore returns GTL-S(C) = T / |C|^p. Groups smaller than 2 cells
// return +Inf (the paper ignores tiny clusters).
func GTLScore(cut, size int, p float64) float64 {
	if size < 2 {
		return math.Inf(1)
	}
	return float64(cut) / math.Pow(float64(size), p)
}

// NGTLScore returns nGTL-S(C) = T / (A_G · |C|^p), the normalized score
// whose expected value over average-quality groups is 1.
func NGTLScore(cut, size int, p, aG float64) float64 {
	if size < 2 || aG <= 0 {
		return math.Inf(1)
	}
	return float64(cut) / (aG * math.Pow(float64(size), p))
}

// GTLSD returns the density-aware score
// GTL-SD(C) = T / (A_G · |C|^(p·A_C/A_G)) with A_C = pins/size.
// Pin-dense groups (complex NAND4/AOI-style gates) get a larger
// exponent, biasing the score downward exactly as the paper intends.
func GTLSD(cut, size, pins int, p, aG float64) float64 {
	if size < 2 || aG <= 0 || pins <= 0 {
		return math.Inf(1)
	}
	aC := float64(pins) / float64(size)
	return float64(cut) / (aG * math.Pow(float64(size), p*aC/aG))
}

// RentExponent estimates the Rent exponent of one group via the
// paper's Phase II formula p = (ln T − ln A_C)/ln |C|. ok is false when
// the estimate is undefined (size < 2, zero cut or zero pins).
func RentExponent(cut, size, pins int) (p float64, ok bool) {
	if size < 2 || cut <= 0 || pins <= 0 {
		return 0, false
	}
	aC := float64(pins) / float64(size)
	return (math.Log(float64(cut)) - math.Log(aC)) / math.Log(float64(size)), true
}

// RatioCut returns the Chan–Schlag–Zien ratio cut T/|C|. The paper uses
// it as the main baseline in Figure 5: it monotonically favors large
// groups, which is exactly the deficiency the GTL scores fix.
func RatioCut(cut, size int) float64 {
	if size < 1 {
		return math.Inf(1)
	}
	return float64(cut) / float64(size)
}

// ScaledCost returns the scaled-cost variant T/(|C|·(n−|C|)) for a
// netlist of n cells, the two-sided form of ratio cut.
func ScaledCost(cut, size, n int) float64 {
	if size < 1 || size >= n {
		return math.Inf(1)
	}
	return float64(cut) / (float64(size) * float64(n-size))
}

// RentMetric returns Ng's cluster-quality measure ln T / ln |C| — the
// metric the paper cites as "better than ratio cut but still
// monotonically decreasing with size".
func RentMetric(cut, size int) float64 {
	if size < 2 || cut < 1 {
		return math.Inf(1)
	}
	return math.Log(float64(cut)) / math.Log(float64(size))
}
