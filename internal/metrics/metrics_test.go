package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

func TestScoresKnownValues(t *testing.T) {
	// T=100, |C|=100, p=1: GTL-S = 100/100 = 1.
	if got := GTLScore(100, 100, 1.0); got != 1.0 {
		t.Errorf("GTLScore = %v, want 1", got)
	}
	// nGTL-S divides by A_G.
	if got := NGTLScore(100, 100, 1.0, 4.0); got != 0.25 {
		t.Errorf("NGTLScore = %v, want 0.25", got)
	}
	// GTL-SD with A_C == A_G reduces to nGTL-S.
	nominal := NGTLScore(50, 64, 0.6, 4.0)
	dens := GTLSD(50, 64, 64*4, 0.6, 4.0)
	if math.Abs(nominal-dens) > 1e-12 {
		t.Errorf("GTL-SD(A_C=A_G) = %v, want %v", dens, nominal)
	}
	// Denser groups (A_C > A_G) must score lower (stronger GTL).
	denser := GTLSD(50, 64, 64*6, 0.6, 4.0)
	if denser >= dens {
		t.Errorf("denser group scored %v >= %v", denser, dens)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	if !math.IsInf(GTLScore(1, 1, 0.5), 1) {
		t.Error("size-1 group should be +Inf")
	}
	if !math.IsInf(NGTLScore(1, 10, 0.5, 0), 1) {
		t.Error("zero A_G should be +Inf")
	}
	if !math.IsInf(GTLSD(1, 10, 0, 0.5, 4), 1) {
		t.Error("zero pins should be +Inf")
	}
	if GTLScore(0, 100, 0.5) != 0 {
		t.Error("zero cut should score 0 (perfect isolation)")
	}
	if _, ok := RentExponent(0, 10, 40); ok {
		t.Error("zero cut Rent estimate should be undefined")
	}
	if !math.IsInf(RatioCut(5, 0), 1) || !math.IsInf(RentMetric(0, 10), 1) {
		t.Error("degenerate baselines should be +Inf")
	}
	if !math.IsInf(ScaledCost(5, 10, 10), 1) {
		t.Error("whole-netlist scaled cost should be +Inf")
	}
}

// TestRentExponentInvertsRentsRule: if T = A_C·|C|^p exactly, the
// estimator returns p.
func TestRentExponentInvertsRentsRule(t *testing.T) {
	f := func(pRaw, sizeRaw uint8) bool {
		p := 0.3 + 0.6*float64(pRaw)/255 // p in [0.3, 0.9]
		size := 4 + int(sizeRaw)
		aC := 4.0
		cut := int(math.Round(aC * math.Pow(float64(size), p)))
		if cut < 1 {
			return true
		}
		got, ok := RentExponent(cut, size, int(aC)*size)
		if !ok {
			return false
		}
		// Rounding T to an integer perturbs the estimate slightly.
		return math.Abs(got-p) < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNGTLSSizeFairness is the paper's central claim: two groups of
// different sizes with the same Rent-relative connectivity score the
// same under nGTL-S, while ratio cut favors the large one.
func TestNGTLSSizeFairness(t *testing.T) {
	p, aG := 0.65, 4.0
	small := int(aG * math.Pow(100, p)) // T for an "average" 100-cell group
	large := int(aG * math.Pow(10000, p))
	sSmall := NGTLScore(small, 100, p, aG)
	sLarge := NGTLScore(large, 10000, p, aG)
	if math.Abs(sSmall-sLarge) > 0.05 {
		t.Errorf("nGTL-S not size-fair: %v vs %v", sSmall, sLarge)
	}
	rcSmall := RatioCut(small, 100)
	rcLarge := RatioCut(large, 10000)
	if rcLarge >= rcSmall {
		t.Errorf("ratio cut should favor the large group: %v vs %v", rcSmall, rcLarge)
	}
}

func cliqueNetlist(n int) *netlist.Netlist {
	var b netlist.Builder
	b.AddCells(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddNet("", netlist.CellID(i), netlist.CellID(j))
		}
	}
	return b.MustBuild()
}

func TestAbsorption(t *testing.T) {
	// A fully internal 2-pin net contributes 1; a net half-inside
	// contributes (|e∩C|-1)/(|e|-1).
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("", 0, 1)    // internal to {0,1}
	b.AddNet("", 1, 2, 3) // 1 pin inside
	nl := b.MustBuild()
	got := Absorption(nl, []netlist.CellID{0, 1})
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Absorption = %v, want 1 (1 + 0)", got)
	}
	// Absorption grows with group size — the paper's objection to it.
	bigger := Absorption(nl, []netlist.CellID{0, 1, 2})
	if bigger <= got {
		t.Errorf("absorption should grow with size: %v <= %v", bigger, got)
	}
}

func TestDegreeSeparationClique(t *testing.T) {
	nl := cliqueNetlist(6)
	adj := nl.CliqueExpand(0)
	members := []netlist.CellID{0, 1, 2, 3, 4, 5}
	deg, sep, dsv := DegreeSeparation(nl, adj, members, 0, nil)
	if deg != 5 {
		t.Errorf("degree = %v, want 5", deg)
	}
	if sep != 1 {
		t.Errorf("separation = %v, want 1 (clique)", sep)
	}
	if dsv != 5 {
		t.Errorf("DS = %v, want 5", dsv)
	}
}

func TestDegreeSeparationSampled(t *testing.T) {
	nl := cliqueNetlist(10)
	adj := nl.CliqueExpand(0)
	members := []netlist.CellID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	_, sep, _ := DegreeSeparation(nl, adj, members, 10, ds.NewRNG(1))
	if sep != 1 {
		t.Errorf("sampled separation = %v, want 1", sep)
	}
}

func TestKLConnectivity(t *testing.T) {
	// Path a-b-c: a and c are (1,2)-connected via b, not (2,2).
	var b netlist.Builder
	b.AddCells(3)
	b.AddNet("", 0, 1)
	b.AddNet("", 1, 2)
	nl := b.MustBuild()
	adj := nl.CliqueExpand(0)
	if !KLConnected(adj, 0, 2, 1) {
		t.Error("a,c should be (1,2)-connected")
	}
	if KLConnected(adj, 0, 2, 2) {
		t.Error("a,c should not be (2,2)-connected")
	}
	// Clique: every pair of a 5-clique is (4,2)-connected (1 direct +
	// 3 common neighbors).
	cl := cliqueNetlist(5)
	cadj := cl.CliqueExpand(0)
	if !KLConnected(cadj, 0, 1, 4) {
		t.Error("clique pair should be (4,2)-connected")
	}
	if KLConnected(cadj, 0, 1, 5) {
		t.Error("clique pair should not be (5,2)-connected")
	}
	if !KLClusterConnected(cadj, []netlist.CellID{0, 1, 2, 3, 4}, 4, 0, nil) {
		t.Error("whole clique should be (4,2)-connected")
	}
}

func TestEdgeSeparability(t *testing.T) {
	// Two triangles joined by one bridge: separability of the bridge
	// is 1 (each triangle edge has weight 1 per 2-pin net).
	var b netlist.Builder
	b.AddCells(6)
	for _, e := range [][2]netlist.CellID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}} {
		b.AddNet("", e[0], e[1])
	}
	nl := b.MustBuild()
	adj := nl.CliqueExpand(0)
	if got := EdgeSeparability(adj, 0, 3, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("bridge separability = %v, want 1", got)
	}
	// Inside a triangle: two paths (direct + around) = 2.
	if got := EdgeSeparability(adj, 0, 1, 0); math.Abs(got-2) > 1e-9 {
		t.Errorf("triangle separability = %v, want 2", got)
	}
	// Hop-limited computation agrees when the cut is local.
	if got := EdgeSeparability(adj, 0, 1, 2); math.Abs(got-2) > 1e-9 {
		t.Errorf("hop-limited separability = %v, want 2", got)
	}
}

func TestAdhesion(t *testing.T) {
	nl := cliqueNetlist(4)
	adj := nl.CliqueExpand(0)
	members := []netlist.CellID{0, 1, 2, 3}
	// In K4 with unit edges, every pairwise min-cut is 3; 6 pairs.
	got := Adhesion(adj, members, 0, nil)
	if math.Abs(got-18) > 1e-9 {
		t.Errorf("K4 adhesion = %v, want 18", got)
	}
	// Sampled estimate should land in the right ballpark.
	est := Adhesion(adj, members, 3, ds.NewRNG(7))
	if est < 12 || est > 24 {
		t.Errorf("sampled adhesion = %v, want ~18", est)
	}
}
