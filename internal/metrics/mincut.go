package metrics

import (
	"tanglefind/internal/ds"
	"tanglefind/internal/maxflow"
	"tanglefind/internal/netlist"
)

// EdgeSeparability returns the Cong–Lim separability of the edge
// (a, b): the weighted min-cut between a and b in the clique expansion.
// hopLimit restricts the flow network to cells within that many hops of
// a or b (0 means the whole graph) — the standard trick to keep the
// computation local, and still exact whenever the min cut is local.
func EdgeSeparability(adj *netlist.Adjacency, a, b netlist.CellID, hopLimit int) float64 {
	nodes, index := neighborhood(adj, []netlist.CellID{a, b}, hopLimit)
	g := maxflow.New(len(nodes))
	for _, u := range nodes {
		iu := index[u]
		for k, v := range adj.NeighborsOf(u) {
			iv, ok := index[v]
			if !ok || iu > iv {
				continue // absent or already added from the other side
			}
			g.AddUndirected(int32(iu), int32(iv), adj.WeightsOf(u)[k])
		}
	}
	return g.MaxFlow(int32(index[a]), int32(index[b]))
}

// Adhesion returns the Kudva et al. adhesion of the group: the sum of
// pairwise min-cuts inside the clique expansion restricted to the
// group. Pairs above samplePairs are sampled (the paper notes full
// adhesion is "hardly practical"; the sampled estimate is scaled back
// to the full pair count). rng may be nil when sampling is not needed.
func Adhesion(adj *netlist.Adjacency, members []netlist.CellID, samplePairs int, rng *ds.RNG) float64 {
	n := len(members)
	if n < 2 {
		return 0
	}
	index := make(map[netlist.CellID]int, n)
	for i, c := range members {
		index[c] = i
	}
	build := func() *maxflow.Graph {
		g := maxflow.New(n)
		for _, u := range members {
			iu := index[u]
			for k, v := range adj.NeighborsOf(u) {
				iv, ok := index[v]
				if !ok || iu > iv {
					continue
				}
				g.AddUndirected(int32(iu), int32(iv), adj.WeightsOf(u)[k])
			}
		}
		return g
	}
	totalPairs := n * (n - 1) / 2
	if samplePairs <= 0 || totalPairs <= samplePairs {
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += build().MaxFlow(int32(i), int32(j))
			}
		}
		return sum
	}
	sum := 0.0
	for t := 0; t < samplePairs; t++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			t--
			continue
		}
		sum += build().MaxFlow(int32(i), int32(j))
	}
	return sum * float64(totalPairs) / float64(samplePairs)
}

// neighborhood collects cells within hopLimit hops of the given roots
// (hopLimit 0 = entire graph) and returns them with an id→index map.
func neighborhood(adj *netlist.Adjacency, roots []netlist.CellID, hopLimit int) ([]netlist.CellID, map[netlist.CellID]int) {
	index := make(map[netlist.CellID]int)
	var nodes []netlist.CellID
	type item struct {
		c netlist.CellID
		d int
	}
	var queue []item
	for _, r := range roots {
		if _, ok := index[r]; !ok {
			index[r] = len(nodes)
			nodes = append(nodes, r)
			queue = append(queue, item{r, 0})
		}
	}
	if hopLimit <= 0 {
		n := len(adj.Start) - 1
		nodes = nodes[:0]
		clear(index)
		for c := 0; c < n; c++ {
			index[netlist.CellID(c)] = c
			nodes = append(nodes, netlist.CellID(c))
		}
		return nodes, index
	}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if it.d == hopLimit {
			continue
		}
		for _, v := range adj.NeighborsOf(it.c) {
			if _, ok := index[v]; !ok {
				index[v] = len(nodes)
				nodes = append(nodes, v)
				queue = append(queue, item{v, it.d + 1})
			}
		}
	}
	return nodes, index
}
