package metrics

import (
	"tanglefind/internal/ds"
	"tanglefind/internal/netlist"
)

// This file implements the connectivity-style baseline metrics from the
// paper's previous-work chapter. They exist so the library can
// reproduce the paper's qualitative comparisons (and so downstream
// users can check the survey's claims: absorption grows with size,
// degree separation ignores external connections, the min-cut-based
// metrics are expensive). They operate on the hypergraph directly or on
// its clique expansion (netlist.Adjacency).

// Absorption returns Σ_{e: e∩C≠∅} (|e∩C|−1)/(|e|−1), the Alpert–Kahng
// absorption of group C. It rises with group size, which is why it
// cannot compare candidate GTLs of different sizes.
func Absorption(nl *netlist.Netlist, members []netlist.CellID) float64 {
	in := ds.NewBitset(nl.NumCells())
	for _, c := range members {
		in.Add(int(c))
	}
	seen := make([]bool, nl.NumNets())
	total := 0.0
	for _, c := range members {
		for _, n := range nl.CellPins(c) {
			if seen[n] {
				continue
			}
			seen[n] = true
			sz := nl.NetSize(n)
			if sz < 2 {
				continue
			}
			inside := 0
			for _, other := range nl.NetPins(n) {
				if in.Has(int(other)) {
					inside++
				}
			}
			total += float64(inside-1) / float64(sz-1)
		}
	}
	return total
}

// DegreeSeparation returns the Hagen–Kahng DS value of the group:
// Degree = average nets per member cell, Separation = average shortest
// path length (in the clique expansion, hops) between member pairs.
// For groups above samplePairs members the separation is estimated from
// that many random pairs using rng; pass samplePairs <= 0 for exact
// all-pairs (small groups only). Unreachable pairs count as |C| hops.
func DegreeSeparation(nl *netlist.Netlist, adj *netlist.Adjacency, members []netlist.CellID, samplePairs int, rng *ds.RNG) (degree, separation, dsValue float64) {
	if len(members) < 2 {
		return 0, 0, 0
	}
	pins := 0
	for _, c := range members {
		pins += nl.CellDegree(c)
	}
	degree = float64(pins) / float64(len(members))

	in := ds.NewBitset(nl.NumCells())
	for _, c := range members {
		in.Add(int(c))
	}
	type pair struct{ a, b netlist.CellID }
	var pairs []pair
	if samplePairs <= 0 || len(members)*(len(members)-1)/2 <= samplePairs {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				pairs = append(pairs, pair{members[i], members[j]})
			}
		}
	} else {
		for k := 0; k < samplePairs; k++ {
			i, j := rng.Intn(len(members)), rng.Intn(len(members))
			if i == j {
				k--
				continue
			}
			pairs = append(pairs, pair{members[i], members[j]})
		}
	}
	// Flat distance array with epoch stamps: visited[v] == epoch marks
	// v reached in the current pair's BFS, so restarting is one
	// increment instead of clearing a map.
	dist := make([]int32, nl.NumCells())
	visited := make([]uint32, nl.NumCells())
	epoch := uint32(0)
	var queue []netlist.CellID
	totalHops := 0.0
	for _, pr := range pairs {
		// BFS restricted to the group.
		epoch++
		queue = queue[:0]
		queue = append(queue, pr.a)
		dist[pr.a] = 0
		visited[pr.a] = epoch
		found := -1
		for head := 0; head < len(queue) && found < 0; head++ {
			u := queue[head]
			du := dist[u]
			for _, v := range adj.NeighborsOf(u) {
				if !in.Has(int(v)) {
					continue
				}
				if visited[v] == epoch {
					continue
				}
				visited[v] = epoch
				dist[v] = du + 1
				if v == pr.b {
					found = int(du) + 1
					break
				}
				queue = append(queue, v)
			}
		}
		if found < 0 {
			found = len(members) // disconnected inside the group
		}
		totalHops += float64(found)
	}
	separation = totalHops / float64(len(pairs))
	if separation > 0 {
		dsValue = degree / separation
	}
	return degree, separation, dsValue
}

// KLConnected reports whether cells a and b are (K,2)-connected in the
// clique expansion: K edge-disjoint paths of length at most 2. Length-2
// paths through distinct middle vertices are edge-disjoint from each
// other and from the direct edge, so the count is
// [a~b] + |common neighbors|, the construction Garbers et al. use.
func KLConnected(adj *netlist.Adjacency, a, b netlist.CellID, k int) bool {
	count := 0
	na, nb := adj.NeighborsOf(a), adj.NeighborsOf(b)
	for _, v := range na {
		if v == b {
			count++ // the direct edge (counted once)
			break
		}
	}
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] < nb[j]:
			i++
		case na[i] > nb[j]:
			j++
		default:
			if na[i] != a && na[i] != b {
				count++ // common neighbor: one length-2 path
			}
			i++
			j++
		}
		if count >= k {
			return true
		}
	}
	return count >= k
}

// KLClusterConnected reports whether every sampled pair of the group is
// (K,2)-connected. samplePairs <= 0 checks all pairs.
func KLClusterConnected(adj *netlist.Adjacency, members []netlist.CellID, k, samplePairs int, rng *ds.RNG) bool {
	n := len(members)
	if n < 2 {
		return true
	}
	if samplePairs <= 0 || n*(n-1)/2 <= samplePairs {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !KLConnected(adj, members[i], members[j], k) {
					return false
				}
			}
		}
		return true
	}
	for t := 0; t < samplePairs; t++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			t--
			continue
		}
		if !KLConnected(adj, members[i], members[j], k) {
			return false
		}
	}
	return true
}
