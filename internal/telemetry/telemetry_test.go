package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	g := r.Gauge("test_depth", "A test gauge.")
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Add(-3)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_total A test counter.\n",
		"# TYPE test_total counter\n",
		"test_total 3\n",
		"# TYPE test_depth gauge\n",
		"test_depth 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 || g.Value() != 4 {
		t.Errorf("values: counter=%v gauge=%v", c.Value(), g.Value())
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_labeled_total", `Help with backslash \ and`+"\nnewline.", "kind", "outcome")
	v.With("find", "done").Add(5)
	v.With(`we"ird\val`+"\nue", "x").Inc()

	out := scrape(t, r)
	if !strings.Contains(out, `# HELP test_labeled_total Help with backslash \\ and\nnewline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_labeled_total{kind="find",outcome="done"} 5`) {
		t.Errorf("labeled sample missing:\n%s", out)
	}
	if !strings.Contains(out, `test_labeled_total{kind="we\"ird\\val\nue",outcome="x"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// Same label values resolve to the same child.
	v.With("find", "done").Inc()
	if got := scrape(t, r); !strings.Contains(got, `{kind="find",outcome="done"} 6`) {
		t.Errorf("With not stable across calls:\n%s", got)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecDefBuckets(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_vec_seconds", "Latency by kind.", nil, "kind")
	hv.With("find").Observe(0.003)
	out := scrape(t, r)
	if !strings.Contains(out, `test_vec_seconds_bucket{kind="find",le="0.005"} 1`) {
		t.Errorf("DefBuckets sample missing:\n%s", out)
	}
	if !strings.Contains(out, `test_vec_seconds_count{kind="find"} 1`) {
		t.Errorf("count with labels missing:\n%s", out)
	}
}

func TestFamiliesSortedAndHooksRun(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Last.")
	g := r.Gauge("aaa_depth", "First.")
	hooked := false
	r.OnScrape(func() { hooked = true; g.Set(42) })

	out := scrape(t, r)
	if !hooked {
		t.Fatal("OnScrape hook did not run")
	}
	if !strings.Contains(out, "aaa_depth 42\n") {
		t.Errorf("hook-set value not exported:\n%s", out)
	}
	if strings.Index(out, "aaa_depth") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic("duplicate", func() { r.Gauge("dup_total", "y") })
	mustPanic("bad metric name", func() { r.Counter("bad-name", "x") })
	mustPanic("bad label name", func() { r.CounterVec("ok_total", "x", "bad-label") })
	mustPanic("reserved label", func() { r.CounterVec("ok2_total", "x", "__reserved") })
	mustPanic("label arity", func() { r.CounterVec("ok3_total", "x", "a", "b").With("only-one") })
	mustPanic("negative counter add", func() { r.Counter("neg_total", "x").Add(-1) })
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	h := r.Histogram("conc_seconds", "x", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	out := scrape(t, r)
	if !strings.Contains(out, "conc_seconds_count 8000") {
		t.Errorf("histogram count wrong:\n%s", out)
	}
}

func TestStageTimings(t *testing.T) {
	st := StageTimings{}
	st.Add("grow", 120*time.Millisecond)
	st.Add("grow", 30*time.Millisecond)
	st.Add("score", 50*time.Millisecond)
	st.Merge(StageTimings{"score": 10 * time.Millisecond, "prune": 5 * time.Millisecond})
	st.Merge(nil) // no-op

	if st["grow"] != 150*time.Millisecond || st["score"] != 60*time.Millisecond {
		t.Fatalf("accumulation wrong: %v", st)
	}
	if st.Total() != 215*time.Millisecond {
		t.Errorf("Total = %v, want 215ms", st.Total())
	}
	if got := st.String(); got != "grow=150ms score=60ms prune=5ms" {
		t.Errorf("String = %q", got)
	}
	if got := st.Top(2); got != "grow=150ms score=60ms (+1)" {
		t.Errorf("Top(2) = %q", got)
	}
	if got := StageTimings(nil).String(); got != "-" {
		t.Errorf("nil String = %q", got)
	}

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"grow":150,"prune":5,"score":60}`; string(data) != want {
		t.Errorf("MarshalJSON = %s, want %s", data, want)
	}
	var back StageTimings
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["grow"] != 150*time.Millisecond || back["prune"] != 5*time.Millisecond {
		t.Errorf("round-trip = %v", back)
	}
}

func TestSpan(t *testing.T) {
	st := StageTimings{}
	sp := StartSpan(st, "work")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d <= 0 || st["work"] != d {
		t.Errorf("span: d=%v map=%v", d, st)
	}
	if (Span{}).End() != 0 {
		t.Error("zero Span End should be 0")
	}
	if d := StartSpan(nil, "x").End(); d < 0 {
		t.Errorf("nil-dest span: %v", d)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
	if got := formatFloat(0.25); got != "0.25" {
		t.Errorf("formatFloat(0.25) = %q", got)
	}
}
