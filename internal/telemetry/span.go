package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageTimings is a flat stage-name → wall-time map: the project's
// export-friendly timing breakdown. The engine fills it with per-phase
// totals ("grow", "score", ...), the job manager prefixes those with
// "engine_" and adds "queue_wait"/"engine"/"merge", and anything
// holding one can Observe its entries into a histogram. It marshals to
// JSON as {"stage": milliseconds} with float millisecond values, so
// breakdowns diff cleanly in committed benchmark records.
//
// The zero value (nil) is readable but not writable; create with
// StageTimings{} before Add.
type StageTimings map[string]time.Duration

// Add folds d into the named stage.
func (t StageTimings) Add(name string, d time.Duration) { t[name] += d }

// Merge folds every stage of o into t. A nil o is a no-op.
func (t StageTimings) Merge(o StageTimings) {
	for name, d := range o {
		t[name] += d
	}
}

// Total sums all stages. Stages may overlap in wall time (worker-
// summed phases, nested spans), so this is an accounting total, not an
// elapsed time.
func (t StageTimings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t {
		sum += d
	}
	return sum
}

// String renders every stage as "name=dur", longest first (ties by
// name), space-separated — the one-line form used in experiment
// tables and logs.
func (t StageTimings) String() string { return t.Top(0) }

// Top renders like String but keeps only the n longest stages,
// appending "(+k)" for the k elided ones. n <= 0 keeps all.
func (t StageTimings) Top(n int) string {
	if len(t) == 0 {
		return "-"
	}
	names := make([]string, 0, len(t))
	for name := range t {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if t[names[i]] != t[names[j]] {
			return t[names[i]] > t[names[j]]
		}
		return names[i] < names[j]
	})
	elided := 0
	if n > 0 && len(names) > n {
		elided = len(names) - n
		names = names[:n]
	}
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", name, t[name].Round(10*time.Microsecond))
	}
	if elided > 0 {
		fmt.Fprintf(&b, " (+%d)", elided)
	}
	return b.String()
}

// MarshalJSON writes {"stage": milliseconds} with float values.
// encoding/json sorts map keys, so the output is deterministic.
func (t StageTimings) MarshalJSON() ([]byte, error) {
	ms := make(map[string]float64, len(t))
	for name, d := range t {
		ms[name] = float64(d) / float64(time.Millisecond)
	}
	return json.Marshal(ms)
}

// UnmarshalJSON reads the {"stage": milliseconds} form.
func (t *StageTimings) UnmarshalJSON(data []byte) error {
	var ms map[string]float64
	if err := json.Unmarshal(data, &ms); err != nil {
		return err
	}
	out := make(StageTimings, len(ms))
	for name, v := range ms {
		out[name] = time.Duration(v * float64(time.Millisecond))
	}
	*t = out
	return nil
}

// Span is one in-flight stage measurement. Start one with StartSpan,
// finish it with End; the elapsed time folds into the destination map.
type Span struct {
	name  string
	start time.Time
	into  StageTimings
}

// StartSpan begins timing the named stage; End records it into `into`
// (which may be nil to just measure).
func StartSpan(into StageTimings, name string) Span {
	return Span{name: name, start: time.Now(), into: into}
}

// End stops the span, folds the elapsed time into the destination map
// and returns it. Safe to call on the zero Span (returns 0).
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	if s.into != nil {
		s.into.Add(s.name, d)
	}
	return d
}
