// Package telemetry is the project's dependency-free observability
// core: atomic counters, gauges and fixed-bucket histograms with
// pre-declared label sets, a Prometheus text-format exposition writer,
// and the stage-span API (Span/StageTimings, see span.go) the engine,
// the job manager and the HTTP server stamp their per-stage wall time
// with.
//
// The design is deliberately small. Metrics are registered once, up
// front, on a Registry (duplicate or malformed registrations panic —
// they are programmer errors); updates on the hot path are single
// atomic operations with no allocation; label-value resolution
// (Vec.With) takes a lock and should be hoisted out of hot loops by
// resolving children once. Values that some other subsystem already
// maintains (the job manager's cumulative counters, the store's
// occupancy) are mirrored at scrape time through OnScrape hooks, so
// /metrics and /v1/stats can never disagree.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucketing: exponential from 1ms
// to 60s, sized for request and engine latencies.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds a process's metric families and writes them in
// Prometheus text exposition format. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric family: a name, help text, kind, a declared
// label set and the children keyed by their joined label values.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only; sorted ascending

	mu       sync.Mutex
	children map[string]*child
}

// child is one labeled series. value carries the counter/gauge float64
// as bits; histograms use counts/sum/count instead.
type child struct {
	labelValues []string
	value       atomic.Uint64 // float64 bits
	counts      []atomic.Uint64
	sum         atomic.Uint64 // float64 bits
	count       atomic.Uint64
}

func addFloat(v *atomic.Uint64, delta float64) {
	for {
		old := v.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if v.CompareAndSwap(old, next) {
			return
		}
	}
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before values are read — the hook for mirroring state some
// other subsystem owns (cumulative stats counters, cache occupancy)
// into registered metrics so the exposition is always current.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels ...string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l))
		}
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		buckets = bs
	} else {
		buckets = nil
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	r.families[name] = f
	return f
}

func (f *family) with(values ...string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			c.counts = make([]atomic.Uint64, len(f.buckets))
		}
		f.children[key] = c
	}
	return c
}

// ---- Counter ----

// Counter is a monotonically increasing value. Set exists for the one
// sanctioned exception: mirroring a monotone total that some other
// subsystem maintains (an existing stats atomic) at scrape time.
type Counter struct{ c *child }

// Counter registers an unlabeled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.register(name, help, kindCounter, nil).with()}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labels...)}
}

// With resolves (creating on first use) the child for the label values.
// Resolve once and keep the child when updating from a hot path.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.with(values...)} }

// Inc adds one.
func (c *Counter) Inc() { addFloat(&c.c.value, 1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("telemetry: counter Add with negative delta")
	}
	addFloat(&c.c.value, delta)
}

// Set overwrites the counter's value — only for scrape-time mirroring
// of an externally maintained monotone total (see OnScrape).
func (c *Counter) Set(v float64) { c.c.value.Store(math.Float64bits(v)) }

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.c.value.Load()) }

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Gauge registers an unlabeled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.register(name, help, kindGauge, nil).with()}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labels...)}
}

// With resolves (creating on first use) the child for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.with(values...)} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.c.value.Store(math.Float64bits(v)) }

// Add adds delta (negative deltas subtract).
func (g *Gauge) Add(delta float64) { addFloat(&g.c.value, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.value.Load()) }

// ---- Histogram ----

// Histogram accumulates observations into fixed buckets declared at
// registration time (cumulative on export, Prometheus-style).
type Histogram struct {
	c       *child
	buckets []float64
}

// Histogram registers an unlabeled histogram family; nil buckets mean
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, buckets)
	return &Histogram{c: f.with(), buckets: f.buckets}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family; nil buckets mean
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, buckets, labels...)}
}

// With resolves (creating on first use) the child for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{c: v.f.with(values...), buckets: v.f.buckets}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are sorted; the first upper bound >= v is the sample's
	// (non-cumulative) bucket. Exposition accumulates.
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.counts()) {
		h.counts()[i].Add(1)
	}
	addFloat(&h.c.sum, v)
	h.c.count.Add(1)
}

func (h *Histogram) counts() []atomic.Uint64 { return h.c.counts }

// ---- Exposition ----

// WritePrometheus runs the scrape hooks, then writes every family in
// Prometheus text exposition format (families sorted by name, children
// by label values) to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.Unlock()
	for _, c := range kids {
		switch f.kind {
		case kindHistogram:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += c.counts[i].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				f.writeLabels(b, c.labelValues, formatFloat(ub))
				fmt.Fprintf(b, " %d\n", cum)
			}
			// Out-of-range samples still count toward +Inf via count.
			b.WriteString(f.name)
			b.WriteString("_bucket")
			f.writeLabels(b, c.labelValues, "+Inf")
			fmt.Fprintf(b, " %d\n", c.count.Load())
			b.WriteString(f.name)
			b.WriteString("_sum")
			f.writeLabels(b, c.labelValues, "")
			fmt.Fprintf(b, " %s\n", formatFloat(math.Float64frombits(c.sum.Load())))
			b.WriteString(f.name)
			b.WriteString("_count")
			f.writeLabels(b, c.labelValues, "")
			fmt.Fprintf(b, " %d\n", c.count.Load())
		default:
			b.WriteString(f.name)
			f.writeLabels(b, c.labelValues, "")
			fmt.Fprintf(b, " %s\n", formatFloat(math.Float64frombits(c.value.Load())))
		}
	}
}

// writeLabels renders {l1="v1",...}; le, when non-empty, is appended
// as a histogram bucket's upper bound.
func (f *family) writeLabels(b *strings.Builder, values []string, le string) {
	if len(values) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(values) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
