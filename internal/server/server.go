// Package server exposes the netlist registry and job manager over an
// HTTP/JSON API — the long-running front of the detection engine.
//
// Routes (all JSON unless noted):
//
//	POST   /v1/netlists                    upload a raw .tfnet/.tfb payload → NetlistInfo
//	GET    /v1/netlists                    list registry entries
//	GET    /v1/netlists/{digest}           one entry's metadata
//	POST   /v1/netlists/{digest}/deltas    apply a JSON delta → DeltaResult (child entry)
//	POST   /v1/jobs                        submit a JobRequest → JobStatus
//	GET    /v1/jobs                list retained jobs, newest first
//	GET    /v1/jobs/{id}           one job's status (+result when done)
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /v1/jobs/{id}/events    Server-Sent Events progress stream
//	GET    /v1/stats               job + registry statistics
//	GET    /v1/healthz             liveness probe (plain "ok")
//	GET    /metrics                Prometheus text exposition
//
// Every response carries an X-Request-ID header (honoring the
// client's, minting one otherwise); the same ID is attached to the
// submitted job and every structured log record the request produces.
//
// Error responses carry api.ErrorResponse bodies; submission
// backpressure surfaces as 429 with a Retry-After hint.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"tanglefind"
	"tanglefind/api"
	"tanglefind/internal/jobs"
	"tanglefind/internal/store"
	"tanglefind/internal/telemetry"
)

// maxUploadBytes bounds one netlist payload; a 256 MiB .tfb holds
// ~60M pins, far past the paper's largest circuits.
const maxUploadBytes = 256 << 20

// Server routes API traffic to a registry and a job manager. Graceful
// shutdown is composed by the owner: http.Server.Shutdown to stop
// traffic, then Manager.Shutdown to drain jobs.
type Server struct {
	store *store.Store
	mgr   *jobs.Manager
	mux   *http.ServeMux
	log   *slog.Logger
	reg   *telemetry.Registry

	httpSeconds *telemetry.HistogramVec
}

// Option configures a Server at construction.
type Option func(*Server)

// WithLogger routes request and lifecycle records to l. The default
// discards them.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// New wires the routes. The server registers its HTTP and registry
// metrics in the manager's telemetry registry so GET /metrics covers
// all three layers.
func New(st *store.Store, mgr *jobs.Manager, opts ...Option) *Server {
	s := &Server{
		store: st,
		mgr:   mgr,
		mux:   http.NewServeMux(),
		log:   slog.New(slog.DiscardHandler),
		reg:   mgr.Registry(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.registerMetrics()
	s.mux.HandleFunc("POST /v1/netlists", s.handleUpload)
	s.mux.HandleFunc("GET /v1/netlists", s.handleNetlists)
	s.mux.HandleFunc("GET /v1/netlists/{digest}", s.handleNetlist)
	s.mux.HandleFunc("POST /v1/netlists/{digest}/deltas", s.handleDelta)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// registerMetrics declares the server's families: request latency by
// route, plus scrape-time mirrors of the registry's memory state (the
// same numbers GET /v1/stats reports under "store").
func (s *Server) registerMetrics() {
	s.httpSeconds = s.reg.HistogramVec("gtl_http_request_seconds",
		"HTTP request latency in seconds by matched route pattern and status code.",
		nil, "route", "status")
	netlists := s.reg.Gauge("gtl_store_netlists_loaded", "Netlists currently resident in the registry.")
	tombstones := s.reg.Gauge("gtl_store_tombstones", "Evicted netlists whose metadata is retained.")
	pinsLoaded := s.reg.Gauge("gtl_store_pins_loaded", "Total pins across resident netlists.")
	pinBudget := s.reg.Gauge("gtl_store_pin_budget", "Registry eviction threshold in pins; 0 means unlimited.")
	engineBytes := s.reg.Gauge("gtl_store_engine_bytes", "Estimated memory retained by cached finder engines beyond the netlists.")
	evictions := s.reg.Counter("gtl_store_evictions_total", "Netlists evicted from the registry since process start.")
	durable := s.reg.Gauge("gtl_store_durable", "1 when the registry persists to a data directory, 0 for in-memory serving.")
	recovered := s.reg.Gauge("gtl_store_recovered_netlists", "Netlists recovered from the journal at startup.")
	recoveredResults := s.reg.Gauge("gtl_store_recovered_results", "Journaled job results recovered at startup (rewarmed into the result cache).")
	lazyReloads := s.reg.Counter("gtl_store_lazy_reloads_total", "Netlists re-parsed on demand from the blob store (recovered or evicted entries touched again).")
	truncated := s.reg.Gauge("gtl_store_journal_truncated_bytes", "Torn journal tail bytes discarded by the last replay.")
	s.reg.OnScrape(func() {
		st := s.store.Stats()
		netlists.Set(float64(st.Netlists))
		tombstones.Set(float64(st.Tombstones))
		pinsLoaded.Set(float64(st.PinsLoaded))
		pinBudget.Set(float64(st.PinBudget))
		engineBytes.Set(float64(st.EngineBytes))
		evictions.Set(float64(st.Evictions))
		if st.Durable {
			durable.Set(1)
		} else {
			durable.Set(0)
		}
		recovered.Set(float64(st.RecoveredNetlists))
		recoveredResults.Set(float64(st.RecoveredResults))
		lazyReloads.Set(float64(st.LazyReloads))
		truncated.Set(float64(st.JournalTruncatedBytes))
	})
}

// ctxKey namespaces request-scoped context values.
type ctxKey int

const ridKey ctxKey = iota

// newRequestID mints a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unidentified" // crypto/rand failing means bigger problems
	}
	return hex.EncodeToString(b[:])
}

// Handler returns the routed http.Handler wrapped in the telemetry
// middleware: request-ID assignment (honoring X-Request-ID), the
// route-labeled latency histogram, and one structured record per
// request.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey, rid))
		// Label by the mux pattern, not the raw path: bounded metric
		// cardinality no matter what paths clients probe.
		_, route := s.mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.httpSeconds.With(route, strconv.Itoa(sw.code())).Observe(elapsed.Seconds())
		s.log.Info("http request",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", sw.code(),
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
			"request_id", rid)
	})
}

// statusWriter records the response code for the latency labels. It
// implements http.Flusher unconditionally so the SSE handler's
// Flusher assertion keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// handleMetrics serves the Prometheus text exposition for all three
// layers (server, jobs, store — they share one registry).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("payload exceeds %d bytes", mbe.Limit))
		} else {
			// A mid-stream read failure (client hung up) is not an
			// oversize payload.
			writeError(w, http.StatusBadRequest, fmt.Errorf("read payload: %w", err))
		}
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty payload"))
		return
	}
	info, err := s.store.Ingest(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleNetlists(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleNetlist(w http.ResponseWriter, r *http.Request) {
	info, ok := s.store.Info(r.PathValue("digest"))
	if !ok {
		writeError(w, http.StatusNotFound, store.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDelta applies a JSON delta document against the parent digest
// in the path, registering the patched netlist under its own content
// address. 404/410 report a missing/evicted parent; a malformed or
// inapplicable delta is 400.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("delta exceeds %d bytes", mbe.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read delta: %w", err))
		}
		return
	}
	res, err := s.store.ApplyDelta(r.PathValue("digest"), body)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, store.ErrEvicted):
			writeError(w, http.StatusGone, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse job request: %w", err))
		return
	}
	// The submitting request's ID travels with the job; any client-set
	// field value is overridden by the header-derived ID.
	if rid, ok := r.Context().Value(ridKey).(string); ok {
		req.RequestID = rid
	}
	st, err := s.mgr.Submit(req)
	if err != nil {
		writeError(w, submitStatusCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// submitStatusCode maps the manager's typed failures onto HTTP.
func submitStatusCode(err error) int {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, store.ErrEvicted):
		// The digest is known but its payload is gone: the client must
		// re-upload, which 410 states more precisely than 404.
		return http.StatusGone
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, tanglefind.ErrUnsupportedOptions):
		// The request parsed fine but asks for a combination the
		// engine does not implement (e.g. incremental + multilevel):
		// a semantic client fault, not a server failure — 422.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress as Server-Sent Events: one
// `data: <api.Event JSON>` frame per state/progress change, starting
// with a snapshot, ending after the terminal event (or when the
// client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, unsub, err := s.mgr.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer unsub()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
			if ev.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.ServerStats{
		Jobs:  s.mgr.Stats(),
		Store: s.store.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, api.ErrorResponse{Error: err.Error()})
}
