package server

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"tanglefind"
	"tanglefind/api"
)

// dirtyPayload serializes a small directed netlist with two planted
// defects — a multi-driven net ("n_bad") and a floating net
// ("n_float") — as .tfb bytes.
func dirtyPayload(t *testing.T) []byte {
	t.Helper()
	var b tanglefind.Builder
	pi := b.AddCell("pi_a")
	u1 := b.AddCell("u_and1")
	u2 := b.AddCell("u_and2")
	po := b.AddCell("po_x")
	b.AddDrivenNet("n_in1", []tanglefind.CellID{pi}, u1)
	b.AddDrivenNet("n_in2", []tanglefind.CellID{pi}, u2)
	b.AddDrivenNet("n_bad", []tanglefind.CellID{u1, u2}, po)
	b.AddDrivenNet("n_float", []tanglefind.CellID{u1})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func lintRules(rep *tanglefind.LintReport) map[string]int {
	rules := map[string]int{}
	for _, f := range rep.Findings {
		rules[f.Rule]++
	}
	return rules
}

// TestLintEndToEnd drives the lint job kind through the whole stack:
// upload → lint → cache hit on resubmission → delta → incremental
// lint of the child, agreeing with the structural truth.
func TestLintEndToEnd(t *testing.T) {
	c, mgr := newTestServer(t)
	ctx := context.Background()

	info, err := c.UploadNetlist(ctx, dirtyPayload(t))
	if err != nil {
		t.Fatal(err)
	}

	// First lint: runs the engine, reports the planted defects.
	st, err := c.SubmitLint(ctx, info.Digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Cached {
		t.Fatalf("first lint: state=%s cached=%v", st.State, st.Cached)
	}
	if st.Result == nil || st.Result.Lint == nil {
		t.Fatalf("lint job carries no lint report: %+v", st.Result)
	}
	rules := lintRules(st.Result.Lint)
	if rules["multi-driven-net"] != 1 || rules["floating-net"] != 1 {
		t.Fatalf("planted defects not reported: %v", rules)
	}
	baseline := st.Result.Lint.Findings

	// Identical resubmission: answered from the result cache.
	st2, err := c.SubmitLint(ctx, info.Digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != api.StateDone || !st2.Cached {
		t.Fatalf("resubmission: state=%s cached=%v", st2.State, st2.Cached)
	}
	if !reflect.DeepEqual(st2.Result.Lint.Findings, baseline) {
		t.Fatal("cached lint report differs from the original")
	}

	// A different rule configuration is a different compute identity.
	st3, err := c.SubmitLint(ctx, info.Digest, &tanglefind.LintConfig{
		Disable: []string{"multi-driven-net"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached {
		t.Fatal("different lint config served from cache")
	}
	st3, err = c.Wait(ctx, st3.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r := lintRules(st3.Result.Lint); r["multi-driven-net"] != 0 {
		t.Fatalf("disabled rule still reported: %v", r)
	}

	// Fix the contention via a delta (u_and2 keeps its pin as a sink)
	// and lint the child: served incrementally off the parent report.
	dres, err := c.ApplyDelta(ctx, info.Digest, &tanglefind.Delta{
		SetNets: []tanglefind.NetEdit{{
			Net:     2, // n_bad
			Cells:   []tanglefind.CellID{1, 2, 3},
			Drivers: []tanglefind.CellID{1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st4, err := c.SubmitLint(ctx, dres.Netlist.Digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	st4, err = c.Wait(ctx, st4.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st4.State != api.StateDone {
		t.Fatalf("child lint: %s (%s)", st4.State, st4.Error)
	}
	rep := st4.Result.Lint
	if !rep.Incremental {
		t.Fatal("child lint did not run incrementally despite lineage + retained parent report")
	}
	if r := lintRules(rep); r["multi-driven-net"] != 0 || r["floating-net"] != 1 {
		t.Fatalf("child report wrong: %v", r)
	}

	stats := mgr.Stats()
	if stats.LintRuns != 3 || stats.LintIncremental != 1 {
		t.Fatalf("lint stats: runs=%d incremental=%d", stats.LintRuns, stats.LintIncremental)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("no cache hit recorded: %+v", stats)
	}
}

// TestLintBadConfig: unknown lint-config fields are rejected at submit
// time with a client error, not at run time.
func TestLintBadConfig(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	info, err := c.UploadNetlist(ctx, dirtyPayload(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, api.JobRequest{
		Kind:   api.KindLint,
		Digest: info.Digest,
		Lint:   []byte(`{"nope":1}`),
	})
	if err == nil {
		t.Fatal("unknown lint config field accepted")
	}
}
