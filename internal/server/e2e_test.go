package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tanglefind"
	"tanglefind/api"
	"tanglefind/client"
	"tanglefind/internal/generate"
	"tanglefind/internal/jobs"
	"tanglefind/internal/store"
)

// newTestServer boots the whole stack in-process: registry, manager
// (1 worker so occupancy is observable), HTTP server, Go client.
func newTestServer(t *testing.T) (*client.Client, *jobs.Manager) {
	t.Helper()
	st := store.New(0)
	mgr := jobs.New(jobs.Config{Store: st, Workers: 1, QueueDepth: 16})
	hs := httptest.NewServer(New(st, mgr).Handler())
	t.Cleanup(func() {
		hs.Close()
		mgr.Shutdown(context.Background())
	})
	return client.New(hs.URL, hs.Client()), mgr
}

// tfbPayload serializes a planted-block netlist as .tfb bytes.
func tfbPayload(t *testing.T, cells, block int, seed uint64) []byte {
	t.Helper()
	spec := generate.RandomGraphSpec{Cells: cells, Seed: seed}
	if block > 0 {
		spec.Blocks = []generate.BlockSpec{{Size: block}}
	}
	rg, err := generate.NewRandomGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rg.Netlist.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func options(t *testing.T, kv map[string]any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(kv)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestEndToEnd is the acceptance flow: upload a generated netlist,
// submit a find job while streaming its progress (≥ 1 event arrives
// before completion), fetch the result, then submit the identical
// request and verify it is served from the result cache without
// another engine run.
func TestEndToEnd(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	// Upload.
	payload := tfbPayload(t, 6000, 500, 21)
	info, err := c.UploadNetlist(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cells != 6000 || info.Format != "tfb" || !info.Loaded {
		t.Fatalf("upload info = %+v", info)
	}
	// Idempotent re-upload, and the metadata endpoints agree.
	again, err := c.UploadNetlist(ctx, payload)
	if err != nil || again.Digest != info.Digest {
		t.Fatalf("re-upload: %+v, %v", again, err)
	}
	listed, err := c.Netlists(ctx)
	if err != nil || len(listed) != 1 {
		t.Fatalf("netlist list = %+v, %v", listed, err)
	}

	// Submit a find job and stream its events concurrently. The seed
	// count keeps the engine busy long enough that the stream attaches
	// while the job is still running (hundreds of per-seed events).
	req := api.JobRequest{
		Kind:    api.KindFind,
		Digest:  info.Digest,
		Options: options(t, map[string]any{"seeds": 400, "max_order_len": 2500}),
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() && !st.Cached {
		t.Fatalf("fresh job already terminal: %+v", st)
	}

	var mu sync.Mutex
	var events []api.Event
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- c.StreamEvents(ctx, st.ID, func(ev api.Event) bool {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			return true
		})
	}()

	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone || final.Result == nil {
		t.Fatalf("final status: %+v", final)
	}
	if len(final.Result.GTLs) == 0 || final.Result.GTLs[0].Size < 400 {
		t.Fatalf("planted block not detected: %+v", final.Result)
	}
	if len(final.Result.GTLs[0].Members) != final.Result.GTLs[0].Size {
		t.Error("GTL members not transported")
	}
	if err := <-streamDone; err != nil {
		t.Fatalf("stream: %v", err)
	}
	mu.Lock()
	n := len(events)
	sawNonTerminal := false
	for _, ev := range events {
		if !ev.State.Terminal() {
			sawNonTerminal = true
		}
	}
	last := events[n-1]
	mu.Unlock()
	if n < 2 || !sawNonTerminal {
		t.Fatalf("progress consumer saw %d events (non-terminal: %v); want >= 1 before completion", n, sawNonTerminal)
	}
	if last.State != api.StateDone {
		t.Errorf("last streamed state = %s", last.State)
	}

	// Identical request: cache hit, no new engine run.
	stats0, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != api.StateDone || st2.Result == nil {
		t.Fatalf("second submission not served from cache: %+v", st2)
	}
	if len(st2.Result.GTLs) != len(final.Result.GTLs) {
		t.Error("cached result disagrees with computed result")
	}
	stats1, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Jobs.EngineRuns != stats0.Jobs.EngineRuns {
		t.Errorf("cache hit ran the engine: %d -> %d runs", stats0.Jobs.EngineRuns, stats1.Jobs.EngineRuns)
	}
	if stats1.Jobs.CacheHits != stats0.Jobs.CacheHits+1 {
		t.Errorf("cache hits %d -> %d, want +1", stats0.Jobs.CacheHits, stats1.Jobs.CacheHits)
	}

	// A cached job's event stream still delivers its terminal snapshot.
	var cachedEvents int
	if err := c.StreamEvents(ctx, st2.ID, func(ev api.Event) bool {
		cachedEvents++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if cachedEvents != 1 {
		t.Errorf("cached job streamed %d events, want exactly the snapshot", cachedEvents)
	}
}

// TestCancelFreesWorker proves a cancelled job releases its worker:
// with a single worker, cancel a long job and a follow-up must run.
func TestCancelFreesWorker(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	info, err := c.UploadNetlist(ctx, tfbPayload(t, 30000, 2000, 31))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := c.Submit(ctx, api.JobRequest{
		Kind:    api.KindFind,
		Digest:  info.Digest,
		Options: options(t, map[string]any{"seeds": 5000, "max_order_len": 12000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it holds the only worker, then cancel it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := c.Job(ctx, slow.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == api.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow job never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(ctx, slow.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.StateCancelled {
		t.Fatalf("cancelled job state = %s", got.State)
	}

	quick, err := c.Submit(ctx, api.JobRequest{
		Kind:    api.KindFind,
		Digest:  info.Digest,
		Options: options(t, map[string]any{"seeds": 4, "max_order_len": 2000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Wait(ctx, quick.ID, 10*time.Millisecond); err != nil || got.State != api.StateDone {
		t.Fatalf("follow-up job after cancel: %+v, %v", got, err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Cancelled != 1 || stats.Jobs.Completed != 1 {
		t.Errorf("stats = %+v", stats.Jobs)
	}
}

// TestHTTPErrors locks the API's failure statuses.
func TestHTTPErrors(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	wantStatus := func(err error, code int) {
		t.Helper()
		var ae *client.APIError
		if err == nil {
			t.Error("expected an error")
			return
		}
		if !errors.As(err, &ae) || ae.StatusCode != code {
			t.Errorf("error = %v, want HTTP %d", err, code)
		}
	}

	_, err := c.UploadNetlist(ctx, []byte("definitely not a netlist"))
	wantStatus(err, http.StatusBadRequest)
	_, err = c.UploadNetlist(ctx, nil)
	wantStatus(err, http.StatusBadRequest)
	_, err = c.Netlist(ctx, "missing-digest")
	wantStatus(err, http.StatusNotFound)
	_, err = c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: "missing-digest"})
	wantStatus(err, http.StatusNotFound)
	_, err = c.Job(ctx, "job-999999")
	wantStatus(err, http.StatusNotFound)
	_, err = c.Cancel(ctx, "job-999999")
	wantStatus(err, http.StatusNotFound)

	info, err := c.UploadNetlist(ctx, tfbPayload(t, 2000, 0, 41))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, api.JobRequest{
		Kind:    api.KindFind,
		Digest:  info.Digest,
		Options: json.RawMessage(`{"seeds": "many"}`),
	})
	wantStatus(err, http.StatusBadRequest)
	_, err = c.Submit(ctx, api.JobRequest{Kind: "unknown", Digest: info.Digest})
	wantStatus(err, http.StatusBadRequest)

	// Health endpoint speaks plain text.
	resp, err := http.Get(c.BaseURL() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

// TestEvictedDigestIsGone exercises the 410 path: a tiny pin budget
// evicts the first upload once a second arrives.
func TestEvictedDigestIsGone(t *testing.T) {
	st := store.New(1)
	mgr := jobs.New(jobs.Config{Store: st, Workers: 1})
	hs := httptest.NewServer(New(st, mgr).Handler())
	t.Cleanup(func() {
		hs.Close()
		mgr.Shutdown(context.Background())
	})
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	first, err := c.UploadNetlist(ctx, tfbPayload(t, 2000, 0, 51))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadNetlist(ctx, tfbPayload(t, 2000, 0, 52)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: first.Digest})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusGone {
		t.Fatalf("evicted digest error = %v, want HTTP 410", err)
	}
	// The tombstone is still listed, marked unloaded.
	got, err := c.Netlist(ctx, first.Digest)
	if err != nil || got.Loaded {
		t.Errorf("tombstone = %+v, %v", got, err)
	}
}

// backgroundEditDoc builds a pin-preserving JSON delta editing a net
// whose pins all live in the top half of the id space (background
// territory: generated workloads plant blocks at the low ids).
func backgroundEdit(t *testing.T, nl *tanglefind.Netlist, salt int32) *tanglefind.Delta {
	t.Helper()
	for e := nl.NumNets() - 1 - int(salt); e >= 0; e-- {
		pins := nl.NetPins(tanglefind.NetID(e))
		ok := len(pins) >= 2
		for _, c := range pins {
			if int(c) < nl.NumCells()/2 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		return &tanglefind.Delta{SetNets: []tanglefind.NetEdit{{
			Net:   tanglefind.NetID(e),
			Cells: []tanglefind.CellID{pins[0], pins[0] - 1 - tanglefind.CellID(salt%7)},
		}}}
	}
	t.Fatal("no background net found")
	return nil
}

func backgroundEditDoc(t *testing.T, nl *tanglefind.Netlist, salt int32) []byte {
	t.Helper()
	doc, err := json.Marshal(backgroundEdit(t, nl, salt))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestDeltaAndIncrementalFlow drives the ECO loop over HTTP: upload,
// recorded find, POST a delta, find_incremental on the child — the
// incremental result must reuse seeds and agree with a full run.
func TestDeltaAndIncrementalFlow(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	payload := tfbPayload(t, 9000, 400, 61)
	parent, err := c.UploadNetlist(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := tanglefind.ReadNetlist(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	opts := options(t, map[string]any{"seeds": 16, "max_order_len": 700, "record_incremental": true})

	base, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: parent.Digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, base.ID, 5*time.Millisecond); err != nil || st.State != api.StateDone {
		t.Fatalf("base run: %+v, %v", st, err)
	}

	dres, err := c.ApplyDelta(ctx, parent.Digest, backgroundEdit(t, nl, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dres.Parent != parent.Digest || dres.Netlist.Digest == parent.Digest || dres.DirtyCells == 0 {
		t.Fatalf("delta result: %+v", dres)
	}
	if dres.Netlist.Parent != parent.Digest {
		t.Fatalf("child lineage missing: %+v", dres.Netlist)
	}

	// The typed convenience submitter must land on the same state the
	// raw-options base run recorded (options canonicalize equally).
	incrOpt := tanglefind.DefaultOptions()
	incrOpt.Seeds = 16
	incrOpt.MaxOrderLen = 700
	incrOpt.RecordIncremental = true
	incr, err := c.SubmitFindIncremental(ctx, dres.Netlist.Digest, &incrOpt)
	if err != nil {
		t.Fatal(err)
	}
	ist, err := c.Wait(ctx, incr.ID, 5*time.Millisecond)
	if err != nil || ist.State != api.StateDone || ist.Result == nil {
		t.Fatalf("incremental job: %+v, %v", ist, err)
	}
	if ist.Result.Incremental == nil || ist.Result.Incremental.FullFallback || ist.Result.Incremental.ReusedSeeds == 0 {
		t.Fatalf("no reuse over HTTP: %+v", ist.Result.Incremental)
	}

	full, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: dres.Netlist.Digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	fst, err := c.Wait(ctx, full.ID, 5*time.Millisecond)
	if err != nil || fst.State != api.StateDone {
		t.Fatalf("full child run: %+v, %v", fst, err)
	}
	if len(fst.Result.GTLs) != len(ist.Result.GTLs) || fst.Result.Candidates != ist.Result.Candidates {
		t.Fatalf("incremental diverged over HTTP: %d/%d GTLs", len(ist.Result.GTLs), len(fst.Result.GTLs))
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.IncrementalRuns != 1 {
		t.Errorf("incremental runs = %d", stats.Jobs.IncrementalRuns)
	}
}

// TestDeltaHTTPErrors locks the delta/incremental failure statuses:
// 404 unknown parent, 400 malformed delta, 422 for option
// combinations the engine rejects as unsupported (not 500).
func TestDeltaHTTPErrors(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	wantStatus := func(err error, code int) {
		t.Helper()
		var ae *client.APIError
		if err == nil || !errors.As(err, &ae) || ae.StatusCode != code {
			t.Errorf("error = %v, want HTTP %d", err, code)
		}
	}

	_, err := c.ApplyDeltaJSON(ctx, "missing-digest", []byte(`{}`))
	wantStatus(err, http.StatusNotFound)

	payload := tfbPayload(t, 4000, 300, 62)
	parent, err := c.UploadNetlist(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ApplyDeltaJSON(ctx, parent.Digest, []byte(`{"nope":true}`))
	wantStatus(err, http.StatusBadRequest)
	_, err = c.ApplyDeltaJSON(ctx, parent.Digest, []byte(`{"remove_cells":[123456789]}`))
	wantStatus(err, http.StatusBadRequest)

	// find_incremental without lineage: 400.
	_, err = c.Submit(ctx, api.JobRequest{Kind: api.KindFindIncremental, Digest: parent.Digest})
	wantStatus(err, http.StatusBadRequest)

	nl, err := tanglefind.ReadNetlist(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	dres, err := c.ApplyDeltaJSON(ctx, parent.Digest, backgroundEditDoc(t, nl, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Incremental + multilevel composes now: the submit is accepted
	// and the job completes (as a reported full fallback here — the
	// parent has no recorded multilevel run to chain from).
	mlst, err := c.Submit(ctx, api.JobRequest{
		Kind:    api.KindFindIncremental,
		Digest:  dres.Netlist.Digest,
		Options: options(t, map[string]any{"levels": 3, "seeds": 8, "max_order_len": 600}),
	})
	if err != nil {
		t.Fatalf("multilevel incremental submit = %v, want accepted", err)
	}
	got, err := c.Wait(ctx, mlst.ID, 5*time.Millisecond)
	if err != nil || got.State != api.StateDone || got.Result == nil || got.Result.Incremental == nil {
		t.Fatalf("multilevel incremental over HTTP: %+v, %v", got, err)
	}
	if !got.Result.Incremental.FullFallback {
		t.Error("first-in-chain multilevel incremental should report a full fallback")
	}
}

// TestConcurrentDeltaIngestAndIncrementalJobs is the race-detector
// target for the delta pipeline: many goroutines apply distinct (and
// sometimes identical) deltas against one parent digest while
// submitting incremental jobs on the children and polling stats. Run
// with -race (the CI race shard does).
func TestConcurrentDeltaIngestAndIncrementalJobs(t *testing.T) {
	st := store.New(0)
	mgr := jobs.New(jobs.Config{Store: st, Workers: 2, QueueDepth: 64})
	hs := httptest.NewServer(New(st, mgr).Handler())
	t.Cleanup(func() {
		hs.Close()
		mgr.Shutdown(context.Background())
	})
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	payload := tfbPayload(t, 9000, 400, 63)
	parent, err := c.UploadNetlist(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := tanglefind.ReadNetlist(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	opts := options(t, map[string]any{"seeds": 12, "max_order_len": 600, "record_incremental": true})
	base, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: parent.Digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Wait(ctx, base.ID, 5*time.Millisecond); err != nil || got.State != api.StateDone {
		t.Fatalf("base: %+v, %v", got, err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				// Half the goroutines collide on identical deltas, so
				// concurrent registration of one child digest races too.
				salt := int32(w%4*3 + i)
				dres, err := c.ApplyDeltaJSON(ctx, parent.Digest, backgroundEditDoc(t, nl, salt))
				if err != nil {
					errs <- fmt.Errorf("worker %d: delta: %w", w, err)
					return
				}
				jst, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFindIncremental, Digest: dres.Netlist.Digest, Options: opts})
				if err != nil {
					errs <- fmt.Errorf("worker %d: submit: %w", w, err)
					return
				}
				got, err := c.Wait(ctx, jst.ID, 5*time.Millisecond)
				if err != nil || got.State != api.StateDone || got.Result == nil || got.Result.Incremental == nil {
					errs <- fmt.Errorf("worker %d: job %s: %+v, %v", w, jst.ID, got, err)
					return
				}
				if _, err := c.Stats(ctx); err != nil {
					errs <- fmt.Errorf("worker %d: stats: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
