package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tanglefind"
	"tanglefind/api"
	"tanglefind/client"
	"tanglefind/internal/jobs"
	"tanglefind/internal/store"
)

// durableStack boots the full serving stack over a disk-backed store
// in dir. The returned teardown shuts the stack down like a process
// exit would, so a test can boot a second stack over the same dir.
func durableStack(t *testing.T, dir string) (*client.Client, func()) {
	t.Helper()
	backend, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(0, backend)
	if err != nil {
		t.Fatal(err)
	}
	mgr := jobs.New(jobs.Config{Store: st, Workers: 1, QueueDepth: 16})
	hs := httptest.NewServer(New(st, mgr).Handler())
	teardown := func() {
		hs.Close()
		mgr.Shutdown(context.Background())
		st.Close()
	}
	return client.New(hs.URL, hs.Client()), teardown
}

// TestRestartRecoveryE2E is the durable-serving acceptance flow:
// ingest + delta + find against a -data-dir-backed stack, kill it (with
// a torn journal tail, as a crash mid-append would leave), boot a
// fresh stack over the same directory, and verify digests resolve,
// lineage still routes find_incremental, and the repeated identical
// request is a rewarmed cache hit that never touches the engine.
func TestRestartRecoveryE2E(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	payload := tfbPayload(t, 6000, 500, 21)
	opts := options(t, map[string]any{"seeds": 16, "max_order_len": 700})

	c1, teardown1 := durableStack(t, dir)
	parent, err := c1.UploadNetlist(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := c1.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: parent.Digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	fin1, err := c1.Wait(ctx, st1.ID, 5*time.Millisecond)
	if err != nil || fin1.State != api.StateDone {
		t.Fatalf("first boot find: %+v, %v", fin1, err)
	}
	nl, err := tanglefind.ReadNetlist(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	dres, err := c1.ApplyDelta(ctx, parent.Digest, backgroundEdit(t, nl, 0))
	if err != nil {
		t.Fatal(err)
	}
	child := dres.Netlist.Digest
	teardown1()

	// The "crash": a torn frame on the end of the journal, exactly
	// what dying mid-append leaves behind.
	jf, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	c2, teardown2 := durableStack(t, dir)
	defer teardown2()

	// Digests resolve with no re-upload; the listing holds both.
	ri, err := c2.Netlist(ctx, parent.Digest)
	if err != nil || ri.Cells != parent.Cells {
		t.Fatalf("recovered parent: %+v, %v", ri, err)
	}
	if ri.Loaded {
		t.Error("recovered digest resident before first touch (recovery should be lazy)")
	}
	if listed, err := c2.Netlists(ctx); err != nil || len(listed) != 2 {
		t.Fatalf("recovered listing: %d entries, %v", len(listed), err)
	}
	stats, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Store.Durable || stats.Store.RecoveredNetlists != 2 {
		t.Fatalf("store recovery stats: %+v", stats.Store)
	}
	if stats.Store.JournalTruncatedBytes != 6 {
		t.Errorf("journal_truncated_bytes = %d, want the 6 torn bytes", stats.Store.JournalTruncatedBytes)
	}
	if stats.Jobs.RewarmedResults != 1 {
		t.Errorf("rewarmed_results = %d, want 1", stats.Jobs.RewarmedResults)
	}

	// The identical request is a cache hit on the rewarmed result —
	// zero engine runs in this process.
	hit, err := c2.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: parent.Digest, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != api.StateDone || hit.Result == nil {
		t.Fatalf("post-restart identical request not served from cache: %+v", hit)
	}
	if len(hit.Result.GTLs) != len(fin1.Result.GTLs) {
		t.Errorf("rewarmed result has %d GTLs, first boot found %d", len(hit.Result.GTLs), len(fin1.Result.GTLs))
	}
	if stats, err := c2.Stats(ctx); err != nil || stats.Jobs.EngineRuns != 0 {
		t.Fatalf("engine_runs = %d after rewarmed hit, want 0 (%v)", stats.Jobs.EngineRuns, err)
	}

	// Recovered lineage still routes find_incremental on the child
	// (the in-memory seed state died with the old process, so the run
	// may degrade to a full pass — but it must be accepted and finish).
	incr, err := c2.Submit(ctx, api.JobRequest{Kind: api.KindFindIncremental, Digest: child, Options: opts})
	if err != nil {
		t.Fatalf("find_incremental on recovered lineage rejected: %v", err)
	}
	ist, err := c2.Wait(ctx, incr.ID, 5*time.Millisecond)
	if err != nil || ist.State != api.StateDone || ist.Result == nil {
		t.Fatalf("post-restart incremental job: %+v, %v", ist, err)
	}
	if ist.Result.Incremental == nil || !ist.Result.Incremental.FullFallback {
		t.Errorf("incremental state should not survive restarts (got %+v)", ist.Result.Incremental)
	}
}

// TestCoalescingRaceE2E: N concurrent identical submissions while the
// one worker is busy must produce exactly one engine run, with every
// submission completing with the full result.
func TestCoalescingRaceE2E(t *testing.T) {
	c, mgr := newTestServer(t)
	ctx := context.Background()

	blockDigest, err := c.UploadNetlist(ctx, tfbPayload(t, 30000, 2000, 13))
	if err != nil {
		t.Fatal(err)
	}
	target, err := c.UploadNetlist(ctx, tfbPayload(t, 6000, 500, 21))
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := c.Submit(ctx, api.JobRequest{
		Kind:    api.KindFind,
		Digest:  blockDigest.Digest,
		Options: options(t, map[string]any{"seeds": 5000, "max_order_len": 12000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := mgr.Status(blocker.ID); st.State == api.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	const n = 8
	opts := options(t, map[string]any{"seeds": 16, "max_order_len": 700})
	statuses := make([]api.JobStatus, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], errs[i] = c.Submit(ctx, api.JobRequest{
				Kind: api.KindFind, Digest: target.Digest, Options: opts,
			})
		}(i)
	}
	wg.Wait()
	ids := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if statuses[i].Cached {
			t.Fatalf("submission %d served from cache before any run", i)
		}
		if ids[statuses[i].ID] {
			t.Fatalf("duplicate job id %s", statuses[i].ID)
		}
		ids[statuses[i].ID] = true
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.CoalescedJobs != n-1 {
		t.Fatalf("coalesced_jobs = %d, want %d", stats.Jobs.CoalescedJobs, n-1)
	}
	if _, err := c.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}

	var want api.JobStatus
	for i, st := range statuses {
		fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
		if err != nil || fin.State != api.StateDone || fin.Result == nil {
			t.Fatalf("job %s: %+v, %v", st.ID, fin, err)
		}
		if i == 0 {
			want = fin
			continue
		}
		if len(fin.Result.GTLs) != len(want.Result.GTLs) || fin.Result.Candidates != want.Result.Candidates {
			t.Errorf("job %s result diverges from the group's", st.ID)
		}
		if _, ok := fin.Result.Stages["queue_wait"]; !ok {
			t.Errorf("job %s has no queue_wait of its own", st.ID)
		}
	}
	stats, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.EngineRuns != 2 {
		t.Errorf("engine_runs = %d, want 2 (blocker + one coalesced run)", stats.Jobs.EngineRuns)
	}
	if stats.Jobs.Completed != n {
		t.Errorf("completed = %d, want %d", stats.Jobs.Completed, n)
	}
	// The exposition mirrors the same number.
	if text, err := c.Metrics(ctx); err != nil || !strings.Contains(text, "gtl_jobs_coalesced_total 7") {
		t.Errorf("metrics missing coalesced counter (%v)", err)
	}
}
