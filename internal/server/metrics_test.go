package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tanglefind"
	"tanglefind/api"
)

// ---------------------------------------------------------------------
// A hand-rolled Prometheus text-format parser. The exposition writer
// in internal/telemetry is hand-written too, so the lock here is
// deliberately strict: every line must round-trip through an
// independent reading of the format, not through the writer's own
// assumptions.
// ---------------------------------------------------------------------

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	name    string
	typ     string
	help    string
	samples []promSample
}

// parsePromText parses a text exposition, failing the test on any
// deviation from the format: samples without a preceding TYPE,
// malformed label quoting, unparsable values.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var order []string
	var cur *promFamily
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			cur = &promFamily{name: name, help: help}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate family %q", ln+1, name)
			}
			fams[name] = cur
			order = append(order, name)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE out of order: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			cur.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s := parsePromSample(t, ln+1, line)
		if cur == nil || cur.typ == "" {
			t.Fatalf("line %d: sample %q before any # TYPE", ln+1, s.name)
		}
		base := s.name
		if cur.typ == "histogram" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if b, ok := strings.CutSuffix(s.name, suffix); ok && b == cur.name {
					base = b
					break
				}
			}
		}
		if base != cur.name {
			t.Fatalf("line %d: sample %q under family %q", ln+1, s.name, cur.name)
		}
		cur.samples = append(cur.samples, s)
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("families not sorted: %v", order)
	}
	return fams
}

// parsePromSample parses `name{l="v",...} value` with full
// label-value unescaping (\\, \", \n).
func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	}
	s.name = line[:i]
	for _, r := range s.name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			t.Fatalf("line %d: bad metric name %q", ln, s.name)
		}
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, "=")
			if eq < 0 {
				t.Fatalf("line %d: label without =: %q", ln, line)
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				t.Fatalf("line %d: unquoted label value: %q", ln, line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if len(rest) == 0 {
					t.Fatalf("line %d: unterminated label value: %q", ln, line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '"' {
					break
				}
				if c == '\\' {
					switch rest[0] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c", ln, rest[0])
					}
					rest = rest[1:]
					continue
				}
				val.WriteByte(c)
			}
			s.labels[key] = val.String()
			if rest[0] == ',' {
				rest = rest[1:]
				continue
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: bad label separator: %q", ln, line)
		}
	}
	valStr := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil && valStr != "+Inf" {
		t.Fatalf("line %d: bad value %q: %v", ln, valStr, err)
	}
	s.value = v
	return s
}

// value finds the single sample matching name and labels; -1 if none.
// Histogram _bucket/_sum/_count samples resolve through their base
// family.
func famValue(fams map[string]*promFamily, name string, labels map[string]string) float64 {
	f := fams[name]
	if f == nil {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				f = fams[base]
				break
			}
		}
	}
	if f == nil {
		return -1
	}
	for _, s := range f.samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match && len(s.labels) == len(labels) {
			return s.value
		}
	}
	return -1
}

// TestMetricsParseBack drives real jobs through the stack, scrapes
// GET /metrics, re-parses every family with an independent parser and
// cross-checks the mirrored values against GET /v1/stats.
func TestMetricsParseBack(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	info, err := c.UploadNetlist(ctx, tfbPayload(t, 6000, 500, 21))
	if err != nil {
		t.Fatal(err)
	}
	opts := map[string]any{"seeds": 8, "max_order_len": 400}
	st, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: info.Digest, Options: options(t, opts)})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil || st.State != api.StateDone {
		t.Fatalf("wait: %+v, %v", st, err)
	}
	// Identical resubmission: a cache hit, so hit and miss counters
	// both have data.
	if hit, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: info.Digest, Options: options(t, opts)}); err != nil || !hit.Cached {
		t.Fatalf("expected cache hit: %+v, %v", hit, err)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, text)
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Every mirrored counter/gauge equals the stats payload (the stack
	// is quiesced: one done job, one cache hit, nothing running).
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"gtl_jobs_submitted_total", nil, float64(stats.Jobs.Submitted)},
		{"gtl_job_cache_hits_total", nil, float64(stats.Jobs.CacheHits)},
		{"gtl_engine_runs_total", nil, float64(stats.Jobs.EngineRuns)},
		{"gtl_jobs_queue_depth", nil, float64(stats.Jobs.QueueDepth)},
		{"gtl_jobs_queued", nil, 0},
		{"gtl_jobs_running", nil, 0},
		{"gtl_job_cached_results", nil, float64(stats.Jobs.CachedSets)},
		{"gtl_store_netlists_loaded", nil, float64(stats.Store.Netlists)},
		{"gtl_store_pins_loaded", nil, float64(stats.Store.PinsLoaded)},
		{"gtl_store_evictions_total", nil, float64(stats.Store.Evictions)},
		{"gtl_jobs_finished_total", map[string]string{"kind": "find", "outcome": "done"}, 1},
		{"gtl_job_cache_total", map[string]string{"result": "hit"}, 1},
		{"gtl_job_cache_total", map[string]string{"result": "miss"}, 1},
		{"gtl_engine_runs_by_levels_total", map[string]string{"levels": "1"}, 1},
	}
	for _, ck := range checks {
		if got := famValue(fams, ck.name, ck.labels); got != ck.want {
			t.Errorf("%s%v = %v, want %v", ck.name, ck.labels, got, ck.want)
		}
	}
	if famValue(fams, "gtl_jobs_in_flight", map[string]string{"kind": "find"}) != 0 {
		t.Error("gtl_jobs_in_flight{kind=find} should be 0 when quiesced")
	}

	// Counters must be non-negative and histograms internally
	// consistent: cumulative buckets ending in +Inf, whose value
	// equals _count.
	for name, f := range fams {
		switch f.typ {
		case "counter":
			for _, s := range f.samples {
				if s.value < 0 {
					t.Errorf("counter %s went negative: %v", name, s.value)
				}
			}
		case "histogram":
			checkHistogram(t, f)
		}
	}

	// The stage histogram saw the done job: the find/engine cell has
	// exactly one observation, and queue_wait/merge cells exist.
	for _, stage := range []string{"queue_wait", "engine", "merge", "engine_grow"} {
		got := famValue(fams, "gtl_job_stage_seconds_count", map[string]string{"kind": "find", "stage": stage})
		if got != 1 {
			t.Errorf("gtl_job_stage_seconds_count{kind=find,stage=%s} = %v, want 1", stage, got)
		}
	}

	// The scrape itself was measured on a previous request? No — the
	// latency histogram records after the handler returns, so at
	// minimum the upload, waits and stats calls are present.
	if famValue(fams, "gtl_http_request_seconds_count", map[string]string{"route": "POST /v1/netlists", "status": "201"}) < 1 {
		t.Error("upload request not recorded in gtl_http_request_seconds")
	}
}

// checkHistogram asserts each child's buckets are cumulative,
// monotone, le-sorted and capped by a +Inf bucket equal to _count.
func checkHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	type key string
	buckets := map[key][]promSample{}
	sums := map[key]float64{}
	counts := map[key]float64{}
	childKey := func(s promSample) key {
		parts := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		sort.Strings(parts)
		return key(strings.Join(parts, ","))
	}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			buckets[childKey(s)] = append(buckets[childKey(s)], s)
		case f.name + "_sum":
			sums[childKey(s)] = s.value
		case f.name + "_count":
			counts[childKey(s)] = s.value
		default:
			t.Errorf("histogram %s has stray sample %s", f.name, s.name)
		}
	}
	for k, bs := range buckets {
		prev := -1.0
		prevLe := ""
		for i, b := range bs {
			if b.value < prev {
				t.Errorf("%s{%s}: bucket %q value %v < previous %v", f.name, k, b.labels["le"], b.value, prev)
			}
			prev = b.value
			prevLe = b.labels["le"]
			last := i == len(bs)-1
			if last && prevLe != "+Inf" {
				t.Errorf("%s{%s}: last bucket le=%q, want +Inf", f.name, k, prevLe)
			}
			if !last {
				le, err := strconv.ParseFloat(b.labels["le"], 64)
				if err != nil {
					t.Errorf("%s{%s}: bad le %q", f.name, k, b.labels["le"])
				}
				if i > 0 {
					leP, _ := strconv.ParseFloat(bs[i-1].labels["le"], 64)
					if le <= leP {
						t.Errorf("%s{%s}: le not increasing: %v after %v", f.name, k, le, leP)
					}
				}
			}
		}
		if prev != counts[k] {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", f.name, k, prev, counts[k])
		}
		if _, ok := sums[k]; !ok {
			t.Errorf("%s{%s}: missing _sum", f.name, k)
		}
	}
}

// TestObservabilityEndToEnd locks the request-ID and stage-timing
// plumbing: the header round-trips, the submitted job carries it, the
// finished result and terminal SSE event both carry the non-empty
// queue_wait → engine → merge breakdown, and a cached resubmission
// returns the populating run's breakdown.
func TestObservabilityEndToEnd(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	// A client-supplied request ID is honored and echoed.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL()+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("echoed request ID = %q, want trace-me-42", got)
	}
	// Absent one, the server mints a non-empty ID.
	bare, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL()+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	respBare, err := http.DefaultClient.Do(bare)
	if err != nil {
		t.Fatal(err)
	}
	respBare.Body.Close()
	if respBare.Header.Get("X-Request-ID") == "" {
		t.Error("server did not mint a request ID")
	}

	info, err := c.UploadNetlist(ctx, tfbPayload(t, 6000, 500, 21))
	if err != nil {
		t.Fatal(err)
	}

	// Submit with an explicit request ID via raw HTTP so the header is
	// under test control; the job status must carry it back.
	body, _ := json.Marshal(api.JobRequest{Kind: api.KindFind, Digest: info.Digest,
		Options: options(t, map[string]any{"seeds": 8, "max_order_len": 400})})
	sub, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL()+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	sub.Header.Set("Content-Type", "application/json")
	sub.Header.Set("X-Request-ID", "corr-7")
	sresp, err := http.DefaultClient.Do(sub)
	if err != nil {
		t.Fatal(err)
	}
	var st api.JobStatus
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", sresp.StatusCode)
	}
	if st.RequestID != "corr-7" {
		t.Errorf("job RequestID = %q, want corr-7", st.RequestID)
	}

	done, err := c.Wait(ctx, st.ID, 0)
	if err != nil || done.State != api.StateDone {
		t.Fatalf("wait: %+v, %v", done, err)
	}
	if done.RequestID != "corr-7" {
		t.Errorf("finished job RequestID = %q", done.RequestID)
	}
	if done.Result == nil {
		t.Fatal("done without result")
	}
	assertBreakdown(t, "result", done.Result.Stages)

	// The terminal SSE event carries the same breakdown (a subscriber
	// on a finished job gets the terminal snapshot immediately).
	var last api.Event
	if err := c.StreamEvents(ctx, st.ID, func(ev api.Event) bool { last = ev; return true }); err != nil {
		t.Fatal(err)
	}
	if last.State != api.StateDone {
		t.Fatalf("terminal event state = %v", last.State)
	}
	assertBreakdown(t, "terminal event", last.Stages)

	// A cached resubmission returns the populating run's breakdown.
	hit, err := c.Submit(ctx, api.JobRequest{Kind: api.KindFind, Digest: info.Digest,
		Options: options(t, map[string]any{"seeds": 8, "max_order_len": 400})})
	if err != nil || !hit.Cached {
		t.Fatalf("expected cache hit: %+v, %v", hit, err)
	}
	assertBreakdown(t, "cached result", hit.Result.Stages)

	// Lint jobs complete with a breakdown too — "every completed job".
	lst, err := c.SubmitLint(ctx, info.Digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lst, err = c.Wait(ctx, lst.ID, 0); err != nil || lst.State != api.StateDone {
		t.Fatalf("lint wait: %+v, %v", lst, err)
	}
	if lst.Result == nil || len(lst.Result.Stages) == 0 {
		t.Fatalf("lint result missing stages: %+v", lst.Result)
	}
	for _, stage := range []string{"queue_wait", "engine", "merge"} {
		if _, ok := lst.Result.Stages[stage]; !ok {
			t.Errorf("lint breakdown missing %q: %v", stage, lst.Result.Stages)
		}
	}
}

// assertBreakdown checks the jobs-layer stages plus the engine's own
// phases are present, and the engine stage positive.
func assertBreakdown(t *testing.T, where string, stages tanglefind.StageTimings) {
	t.Helper()
	if len(stages) == 0 {
		t.Fatalf("%s: empty stage breakdown", where)
	}
	for _, stage := range []string{"queue_wait", "engine", "merge", "engine_grow", "engine_prune"} {
		if _, ok := stages[stage]; !ok {
			t.Errorf("%s: stage %q missing: %v", where, stage, stages)
		}
		if stages[stage] < 0 {
			t.Errorf("%s: stage %q negative: %v", where, stage, stages[stage])
		}
	}
	if stages["engine"] <= 0 {
		t.Errorf("%s: engine stage not positive: %v", where, stages)
	}
}
