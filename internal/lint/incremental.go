package lint

import (
	"sort"

	"tanglefind/internal/netlist"
)

// LintDelta re-lints a netlist after a delta, reusing a previous
// report instead of re-walking the whole design for local rules.
//
// The contract mirrors full Lint exactly: for any (parent, child,
// dirty) produced by Delta.Apply, LintDelta returns the same findings
// as Lint(child, cfg) — this is locked by a differential test. The
// split is:
//
//   - Local rules (whose findings depend only on the anchor's own
//     pins) are re-checked on the dirty neighborhood only; previous
//     findings anchored outside it are carried over verbatim.
//   - Global rules (comb-loop, dangling-cell, buffer-chain) are re-run
//     in full — a single edit can create or break a cycle arbitrarily
//     far away, and the report does not pretend otherwise. Their
//     previous findings are discarded, not merged.
//
// prev must be the report of Lint(parent, cfg) (or a LintDelta chain
// rooted there) under the same config; if prev is nil or was produced
// under a different config, LintDelta falls back to a full Lint.
func LintDelta(prev *Report, parent, child *netlist.Netlist, dirty []netlist.CellID, cfg Config) *Report {
	key := cfg.CacheKey()
	if prev == nil || prev.ConfigKey != key {
		rep := Lint(child, cfg)
		rep.Incremental = false
		return rep
	}
	norm := cfg.normalized()

	// The affected scope: dirty cells plus every net incident to one in
	// either id space. Parent pins matter because a net emptied by the
	// delta is invisible from the child side of its former cells.
	cellSet := make(map[netlist.CellID]bool, len(dirty))
	netSet := make(map[netlist.NetID]bool)
	for _, c := range dirty {
		cellSet[c] = true
		if int(c) < child.NumCells() {
			for _, n := range child.CellPins(c) {
				netSet[n] = true
			}
		}
		if int(c) < parent.NumCells() {
			for _, n := range parent.CellPins(c) {
				if int(n) < child.NumNets() {
					netSet[n] = true
				}
			}
		}
	}
	scopeCells := make([]netlist.CellID, 0, len(cellSet))
	for c := range cellSet {
		if int(c) < child.NumCells() {
			scopeCells = append(scopeCells, c)
		}
	}
	scopeNets := make([]netlist.NetID, 0, len(netSet))
	for n := range netSet {
		scopeNets = append(scopeNets, n)
	}
	sort.Slice(scopeCells, func(i, j int) bool { return scopeCells[i] < scopeCells[j] })
	sort.Slice(scopeNets, func(i, j int) bool { return scopeNets[i] < scopeNets[j] })

	localRules := make(map[string]bool)
	for _, r := range Rules() {
		if r.Local() {
			localRules[r.ID()] = true
		}
	}

	rep := &Report{
		ConfigKey:      key,
		Incremental:    true,
		RecheckedCells: len(scopeCells),
	}

	// Carry over local findings anchored outside the affected scope.
	// Anything global, in scope, or referring to an id the child no
	// longer has is dropped and recomputed below.
	for _, f := range prev.Findings {
		if !localRules[f.Rule] {
			continue
		}
		if f.Net >= 0 {
			if int(f.Net) >= child.NumNets() || netSet[f.Net] {
				continue
			}
		}
		if f.Cell >= 0 {
			if int(f.Cell) >= child.NumCells() || cellSet[f.Cell] {
				continue
			}
		}
		rep.Findings = append(rep.Findings, f)
	}

	// Local rules on the dirty neighborhood only.
	scoped := &Pass{nl: child, cfg: &norm, scopeCells: scopeCells, scopeNets: scopeNets}
	local := true
	runRules(scoped, Rules(), rep, &local)

	// Global rules from scratch: a fresh unscoped pass.
	full := &Pass{nl: child, cfg: &norm}
	local = false
	runRules(full, Rules(), rep, &local)

	sortFindings(rep.Findings)
	return rep
}
