package lint

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"tanglefind/internal/netlist"
	"tanglefind/internal/netlist/deltatest"
)

// TestGoldenPairs is the rule specification: every builtin rule must
// fire on its planted-defect netlist (anchored where the defect was
// planted) and stay silent on the repaired control.
func TestGoldenPairs(t *testing.T) {
	covered := map[string]bool{}
	for _, d := range deltatest.Defects() {
		d := d
		t.Run(d.Rule, func(t *testing.T) {
			covered[d.Rule] = true
			if RuleByID(d.Rule) == nil {
				t.Fatalf("defect pair names unknown rule %q", d.Rule)
			}
			pos := Lint(d.Pos, Config{})
			var hits []Finding
			for _, f := range pos.Findings {
				if f.Rule == d.Rule {
					hits = append(hits, f)
				}
			}
			if len(hits) == 0 {
				t.Fatalf("rule did not fire on its positive golden; report: %+v", pos.Findings)
			}
			for _, want := range d.WantAnchors {
				found := false
				for _, f := range hits {
					if f.CellName == want || f.NetName == want {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("no finding anchored at %q; got %+v", want, hits)
				}
			}
			neg := Lint(d.Neg, Config{})
			for _, f := range neg.Findings {
				if f.Rule == d.Rule {
					t.Errorf("rule fired on its negative golden: %+v", f)
				}
			}
		})
	}
	for _, r := range Rules() {
		if !covered[r.ID()] {
			t.Errorf("rule %q has no golden defect pair", r.ID())
		}
	}
}

// TestUndirectedSkips: direction-dependent rules must be skipped — and
// reported as skipped — on an undirected netlist, not silently pass.
func TestUndirectedSkips(t *testing.T) {
	var b netlist.Builder
	b.AddCells(4)
	b.AddNet("w0", 0, 1)
	b.AddNet("w1", 1, 2, 3)
	rep := Lint(b.MustBuild(), Config{})
	skipped := map[string]bool{}
	for _, s := range rep.Skipped {
		skipped[s.Rule] = true
	}
	for _, r := range Rules() {
		if r.NeedsDirection() != skipped[r.ID()] {
			t.Errorf("rule %s: NeedsDirection=%v but skipped=%v",
				r.ID(), r.NeedsDirection(), skipped[r.ID()])
		}
	}
	for _, f := range rep.Findings {
		if RuleByID(f.Rule).NeedsDirection() {
			t.Errorf("direction-dependent finding on undirected netlist: %+v", f)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	d := deltatest.DefectByRule("floating-net")
	rep := Lint(d.Pos, Config{Disable: []string{"floating-net"}})
	for _, f := range rep.Findings {
		if f.Rule == "floating-net" {
			t.Fatalf("disabled rule fired: %+v", f)
		}
	}
	rep = Lint(d.Pos, Config{Enable: []string{"floating-net"}})
	if len(rep.Findings) == 0 {
		t.Fatal("enabled rule did not fire")
	}
	for _, f := range rep.Findings {
		if f.Rule != "floating-net" {
			t.Fatalf("rule outside the enable list fired: %+v", f)
		}
	}
}

func TestConfigCacheKey(t *testing.T) {
	a := Config{Enable: []string{"comb-loop", "floating-net"}, MaxFanout: 64}
	b := Config{Enable: []string{"floating-net", "comb-loop"}}
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("order/default differences changed the cache key:\n%s\n%s",
			a.CacheKey(), b.CacheKey())
	}
	c := Config{Enable: []string{"floating-net"}}
	if a.CacheKey() == c.CacheKey() {
		t.Error("different rule selections share a cache key")
	}
}

// TestFingerprintStability: fingerprints key on names, so a finding's
// fingerprint must survive unrelated edits that shift ids around it.
func TestFingerprintStability(t *testing.T) {
	d := deltatest.DefectByRule("multi-driven-net")
	before := Lint(d.Pos, Config{Enable: []string{"multi-driven-net"}})
	if len(before.Findings) != 1 {
		t.Fatalf("want 1 finding, got %+v", before.Findings)
	}
	// Unrelated edit: bolt a fresh input cone onto the design.
	delta := &netlist.Delta{
		AddCells: []netlist.NewCell{{Name: "u_new"}},
		AddNets: []netlist.NewNet{{
			Name:    "n_new",
			Cells:   []netlist.CellID{netlist.CellID(d.Pos.NumCells()), 3},
			Drivers: []netlist.CellID{netlist.CellID(d.Pos.NumCells())},
		}},
	}
	child, _, err := delta.Apply(d.Pos)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	after := Lint(child, Config{Enable: []string{"multi-driven-net"}})
	if len(after.Findings) != 1 {
		t.Fatalf("want 1 finding after edit, got %+v", after.Findings)
	}
	if before.Findings[0].Fingerprint != after.Findings[0].Fingerprint {
		t.Errorf("fingerprint drifted across an unrelated edit: %s vs %s",
			before.Findings[0].Fingerprint, after.Findings[0].Fingerprint)
	}
}

func TestDeterministicReports(t *testing.T) {
	nl := randomDirected(7, 400, 600)
	a, b := Lint(nl, Config{}), Lint(nl, Config{})
	if !reflect.DeepEqual(a.Findings, b.Findings) {
		t.Fatal("two runs over the same netlist disagree")
	}
}

// randomDirected builds a pseudo-random directed netlist with a mix of
// combinational gates, flops, fanout and the occasional defect — raw
// material for the differential test.
func randomDirected(seed int64, cells, nets int) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	var b netlist.Builder
	for i := 0; i < cells; i++ {
		switch rng.Intn(10) {
		case 0:
			b.AddCell("")
		case 1:
			b.AddCell(nameN("dff", i))
		default:
			b.AddCell(nameN("g", i))
		}
	}
	for i := 0; i < nets; i++ {
		drv := netlist.CellID(rng.Intn(cells))
		sinks := make([]netlist.CellID, 1+rng.Intn(3))
		for j := range sinks {
			sinks[j] = netlist.CellID(rng.Intn(cells))
		}
		b.AddDrivenNet(nameN("w", i), []netlist.CellID{drv}, sinks...)
	}
	return b.MustBuild()
}

func nameN(prefix string, i int) string { return prefix + strconv.Itoa(i) }

// TestLintDeltaDifferential is the incremental oracle: across a chain
// of random deltas, LintDelta must report exactly what a from-scratch
// Lint of the patched netlist reports.
func TestLintDeltaDifferential(t *testing.T) {
	cfg := Config{}
	gen := deltatest.NewGen(42)
	nl := randomDirected(11, 300, 450)
	prev := Lint(nl, cfg)
	for round := 0; round < 25; round++ {
		d, kind := gen.RandomEdit(nl, nil)
		child, eff, err := d.Apply(nl)
		if err != nil {
			t.Fatalf("round %d (%s): Apply: %v", round, kind, err)
		}
		full := Lint(child, cfg)
		inc := LintDelta(prev, nl, child, eff.Dirty, cfg)
		if !inc.Incremental {
			t.Fatalf("round %d (%s): LintDelta fell back to a full run", round, kind)
		}
		if !reflect.DeepEqual(inc.Findings, full.Findings) {
			t.Fatalf("round %d (%s): incremental and full lint disagree\nfull: %+v\ninc:  %+v",
				round, kind, full.Findings, inc.Findings)
		}
		nl, prev = child, inc
	}
}

// TestLintDeltaFallback: a stale or missing previous report must
// trigger an honest full re-lint, never a wrong incremental answer.
func TestLintDeltaFallback(t *testing.T) {
	nl := randomDirected(3, 50, 80)
	rep := LintDelta(nil, nl, nl, nil, Config{})
	if rep.Incremental {
		t.Error("nil previous report still claimed an incremental run")
	}
	prev := Lint(nl, Config{})
	rep = LintDelta(prev, nl, nl, nil, Config{MaxFanout: 8})
	if rep.Incremental {
		t.Error("config mismatch still claimed an incremental run")
	}
}

// TestCombLoopScale exercises the loop rule on a netlist in the
// hundred-thousand-cell range (the million-cell point runs as
// BenchmarkLintMillion) and checks findings are stable across runs.
func TestCombLoopScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large netlist")
	}
	nl := ringMill(200_000, 512)
	cfg := Config{Enable: []string{"comb-loop"}}
	a := Lint(nl, cfg)
	if len(a.Findings) != 512 {
		t.Fatalf("want 512 loop findings, got %d", len(a.Findings))
	}
	b := Lint(nl, cfg)
	if !reflect.DeepEqual(a.Findings, b.Findings) {
		t.Fatal("loop findings unstable across runs")
	}
}

// ringMill builds numCells cells arranged as `loops` disjoint directed
// rings plus straight chains for the rest — a worst-ish case for the
// SCC walk (every cell is on a long path).
func ringMill(numCells, loops int) *netlist.Netlist {
	var b netlist.Builder
	b.AddCells(numCells)
	per := numCells / loops
	net := 0
	for l := 0; l < loops; l++ {
		base := l * per
		for i := 0; i < per; i++ {
			from := netlist.CellID(base + i)
			to := netlist.CellID(base + (i+1)%per)
			b.AddDrivenNet(nameN("w", net), []netlist.CellID{from}, to)
			net++
		}
	}
	for c := loops * per; c < numCells; c++ {
		b.AddDrivenNet(nameN("t", c), []netlist.CellID{netlist.CellID(c - 1)}, netlist.CellID(c))
		net++
	}
	return b.MustBuild()
}

func BenchmarkLintMillion(b *testing.B) {
	nl := ringMill(1_000_000, 1024)
	cfg := Config{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Lint(nl, cfg)
		if len(rep.Findings) == 0 {
			b.Fatal("expected findings")
		}
	}
}
