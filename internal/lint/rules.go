package lint

import (
	"fmt"
	"sort"
	"strings"

	"tanglefind/internal/netlist"
)

// ruleSpec is the in-house Rule implementation: a flat descriptor plus
// a check function. All builtin rules are ruleSpecs so the registry
// reads as a table.
type ruleSpec struct {
	id    string
	sev   Severity
	doc   string
	dir   bool // needs the driver annotation
	local bool // findings depend only on the anchor's own pins
	check func(r Rule, p *Pass) []Finding
}

func (r *ruleSpec) ID() string              { return r.id }
func (r *ruleSpec) Severity() Severity      { return r.sev }
func (r *ruleSpec) Doc() string             { return r.doc }
func (r *ruleSpec) NeedsDirection() bool    { return r.dir }
func (r *ruleSpec) Local() bool             { return r.local }
func (r *ruleSpec) Check(p *Pass) []Finding { return r.check(r, p) }

// registry lists the builtin rules in report order. Rule ids are part
// of the wire format (configs, fingerprints): never rename one.
var registry = []Rule{
	&ruleSpec{
		id: "multi-driven-net", sev: SevError, dir: true, local: true,
		doc:   "net with two or more driver pins (bus contention)",
		check: checkMultiDriven,
	},
	&ruleSpec{
		id: "undriven-net", sev: SevError, dir: true, local: true,
		doc:   "net with sink pins but no driver",
		check: checkUndriven,
	},
	&ruleSpec{
		id: "floating-net", sev: SevWarning, local: true,
		doc:   "net connecting fewer than two cells",
		check: checkFloating,
	},
	&ruleSpec{
		id: "dangling-cell", sev: SevWarning, dir: true,
		doc:   "cell whose fanout never reaches an output",
		check: checkDangling,
	},
	&ruleSpec{
		id: "comb-loop", sev: SevError, dir: true,
		doc:   "combinational cycle (strongly connected cells with no sequential break)",
		check: checkCombLoop,
	},
	&ruleSpec{
		id: "const-tied", sev: SevWarning, dir: true, local: true,
		doc:   "net driven only by constant-source (tie) cells",
		check: checkConstTied,
	},
	&ruleSpec{
		id: "buffer-chain", sev: SevInfo, dir: true,
		doc:   "chain of single-input single-output cells",
		check: checkBufferChain,
	},
	&ruleSpec{
		id: "size-only", sev: SevInfo, local: true,
		doc:   "cell marked size-only/structural by name",
		check: checkSizeOnly,
	},
	&ruleSpec{
		id: "high-fanout-net", sev: SevWarning, local: true,
		doc:   "net whose pin count reaches the fanout threshold",
		check: checkHighFanout,
	},
}

// Rules returns the builtin rule set in registry (report) order.
func Rules() []Rule {
	out := make([]Rule, len(registry))
	copy(out, registry)
	return out
}

// RuleByID returns the builtin rule with the given id, or nil.
func RuleByID(id string) Rule {
	for _, r := range registry {
		if r.ID() == id {
			return r
		}
	}
	return nil
}

func checkMultiDriven(r Rule, p *Pass) []Finding {
	var fs []Finding
	nl := p.Netlist()
	p.EachNet(func(n netlist.NetID) {
		if d := len(nl.NetDrivers(n)); d >= 2 {
			fs = append(fs, p.NetFinding(r, n,
				fmt.Sprintf("net %s has %d drivers", netKey(nl, n), d)))
		}
	})
	return fs
}

func checkUndriven(r Rule, p *Pass) []Finding {
	var fs []Finding
	nl := p.Netlist()
	p.EachNet(func(n netlist.NetID) {
		if nl.NetSize(n) > 0 && len(nl.NetDrivers(n)) == 0 {
			fs = append(fs, p.NetFinding(r, n,
				fmt.Sprintf("net %s has no driver", netKey(nl, n))))
		}
	})
	return fs
}

func checkFloating(r Rule, p *Pass) []Finding {
	var fs []Finding
	nl := p.Netlist()
	p.EachNet(func(n netlist.NetID) {
		// Zero-pin nets are delta tombstones (bookkeeping, like
		// degree-0 cells); exactly one pin is a real floating wire.
		if nl.NetSize(n) == 1 {
			fs = append(fs, p.NetFinding(r, n,
				fmt.Sprintf("net %s connects a single cell", netKey(nl, n))))
		}
	})
	return fs
}

// checkDangling flags cells whose fanout never reaches an output. An
// output is a connected cell that drives nothing (a pure sink);
// reachability is a reverse BFS from the outputs across driver→sink
// edges. Disconnected (degree-0) cells are ignored — deltas leave
// id-stable tombstones with no pins, and those are bookkeeping, not
// defects.
func checkDangling(r Rule, p *Pass) []Finding {
	nl := p.Netlist()
	numCells := nl.NumCells()
	reached := make([]bool, numCells)
	queue := make([]netlist.CellID, 0, numCells/8+1)
	for c := 0; c < numCells; c++ {
		id := netlist.CellID(c)
		if nl.CellDegree(id) > 0 && p.OutDegree(id) == 0 {
			reached[c] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		p.EachInNet(c, func(n netlist.NetID) {
			for _, d := range nl.NetDrivers(n) {
				if !reached[d] {
					reached[d] = true
					queue = append(queue, d)
				}
			}
		})
	}
	var fs []Finding
	for c := 0; c < numCells; c++ {
		id := netlist.CellID(c)
		if nl.CellDegree(id) > 0 && !reached[c] {
			fs = append(fs, p.CellFinding(r, id,
				fmt.Sprintf("cell %s has no path to any output", cellKey(nl, id))))
		}
	}
	return fs
}

// isSequential reports whether the cell's name marks it as a
// sequential element (flop/latch), which legally breaks a cycle.
func isSequential(p *Pass, c netlist.CellID) bool {
	name := strings.ToLower(p.Netlist().CellName(c))
	if name == "" {
		return false
	}
	for _, pre := range p.Config().SeqPrefixes {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

// checkCombLoop finds strongly connected components of size ≥ 2 in
// the driver→sink cell graph, skipping sequential cells. The Tarjan
// walk is iterative with flat scratch arrays — no recursion, no
// per-cell allocations — so it holds up on million-cell netlists.
func checkCombLoop(r Rule, p *Pass) []Finding {
	nl := p.Netlist()
	numCells := nl.NumCells()

	seq := make([]bool, numCells)
	for c := 0; c < numCells; c++ {
		seq[c] = isSequential(p, netlist.CellID(c))
	}

	const unvisited = int32(-1)
	index := make([]int32, numCells)
	lowlink := make([]int32, numCells)
	onStack := make([]bool, numCells)
	for c := range index {
		index[c] = unvisited
	}
	sccStack := make([]int32, 0, 1024)

	// Explicit DFS frames as parallel flat arrays. Each frame walks the
	// successors of one cell: outIdx selects a driven net; pinIdx and
	// drvIdx cursor through that net's pins and drivers (merge walk to
	// enumerate sinks only).
	var (
		fcell   []int32
		foutIdx []int32
		fpinIdx []int32
		fdrvIdx []int32
	)
	push := func(c int32) {
		fcell = append(fcell, c)
		foutIdx = append(foutIdx, 0)
		fpinIdx = append(fpinIdx, 0)
		fdrvIdx = append(fdrvIdx, 0)
	}

	var fs []Finding
	var next int32
	for root := 0; root < numCells; root++ {
		if index[root] != unvisited || seq[root] {
			continue
		}
		push(int32(root))
		index[root] = next
		lowlink[root] = next
		next++
		onStack[root] = true
		sccStack = append(sccStack, int32(root))

		for len(fcell) > 0 {
			top := len(fcell) - 1
			c := netlist.CellID(fcell[top])
			out := p.OutNets(c)

			// Find the next sink successor of c, resuming cursors.
			var succ int32 = -1
			for foutIdx[top] < int32(len(out)) {
				n := out[foutIdx[top]]
				pins := nl.NetPins(n)
				drv := nl.NetDrivers(n)
				for fpinIdx[top] < int32(len(pins)) {
					s := pins[fpinIdx[top]]
					for fdrvIdx[top] < int32(len(drv)) && drv[fdrvIdx[top]] < s {
						fdrvIdx[top]++
					}
					fpinIdx[top]++
					if fdrvIdx[top] < int32(len(drv)) && drv[fdrvIdx[top]] == s {
						continue // s drives this net too; not a sink
					}
					if seq[s] {
						continue // sequential cells break the cycle
					}
					succ = int32(s)
					break
				}
				if succ >= 0 {
					break
				}
				foutIdx[top]++
				fpinIdx[top] = 0
				fdrvIdx[top] = 0
			}

			if succ >= 0 {
				if index[succ] == unvisited {
					push(succ)
					index[succ] = next
					lowlink[succ] = next
					next++
					onStack[succ] = true
					sccStack = append(sccStack, succ)
				} else if onStack[succ] && lowlink[fcell[top]] > index[succ] {
					lowlink[fcell[top]] = index[succ]
				}
				continue
			}

			// c is exhausted: pop, fold lowlink into the parent, and
			// emit an SCC when c is its root.
			fcell = fcell[:top]
			foutIdx = foutIdx[:top]
			fpinIdx = fpinIdx[:top]
			fdrvIdx = fdrvIdx[:top]
			if top > 0 && lowlink[fcell[top-1]] > lowlink[c] {
				lowlink[fcell[top-1]] = lowlink[c]
			}
			if lowlink[c] != index[c] {
				continue
			}
			// Pop the SCC rooted at c off the component stack.
			start := len(sccStack)
			for {
				start--
				if sccStack[start] == int32(c) {
					break
				}
			}
			members := sccStack[start:]
			sccStack = sccStack[:start]
			if len(members) < 2 {
				onStack[members[0]] = false
				continue
			}
			anchor := members[0]
			keys := make([]string, len(members))
			for i, m := range members {
				onStack[m] = false
				if m < anchor {
					anchor = m
				}
				keys[i] = cellKey(nl, netlist.CellID(m))
			}
			sort.Strings(keys)
			label := strings.Join(keys[:min(len(keys), 6)], ", ")
			if len(keys) > 6 {
				label += ", ..."
			}
			fs = append(fs, p.GroupFinding(r, netlist.CellID(anchor), keys,
				fmt.Sprintf("combinational loop through %d cells: %s", len(members), label)))
		}
	}
	return fs
}

// isTieCell reports whether the cell looks like a constant source:
// it drives but never sinks, and its name matches a tie pattern.
func isTieCell(p *Pass, c netlist.CellID) bool {
	if p.OutDegree(c) == 0 || p.InDegree(c) != 0 {
		return false
	}
	name := strings.ToLower(p.Netlist().CellName(c))
	if name == "" {
		return false
	}
	for _, pat := range p.Config().TiePatterns {
		if strings.Contains(name, pat) {
			return true
		}
	}
	return false
}

func checkConstTied(r Rule, p *Pass) []Finding {
	var fs []Finding
	nl := p.Netlist()
	p.EachNet(func(n netlist.NetID) {
		drv := nl.NetDrivers(n)
		if len(drv) == 0 {
			return
		}
		for _, d := range drv {
			if !isTieCell(p, d) {
				return
			}
		}
		fs = append(fs, p.NetFinding(r, n,
			fmt.Sprintf("net %s is tied to a constant by %s",
				netKey(nl, n), cellKey(nl, drv[0]))))
	})
	return fs
}

// checkBufferChain reports maximal chains of buffer-like cells (one
// input net, one driven net, linked through two-pin nets) of length ≥
// MinChain. Such chains are usually repeater insertion or leftover
// synthesis artifacts worth a look.
func checkBufferChain(r Rule, p *Pass) []Finding {
	nl := p.Netlist()
	bufferish := func(c netlist.CellID) bool {
		return p.OutDegree(c) == 1 && p.InDegree(c) == 1
	}
	// nextInChain returns the sole sink fed by c through a two-pin,
	// singly driven net, or -1 if c's output branches.
	nextInChain := func(c netlist.CellID) netlist.CellID {
		n := p.OutNets(c)[0]
		if nl.NetSize(n) != 2 || len(nl.NetDrivers(n)) != 1 {
			return -1
		}
		for _, pin := range nl.NetPins(n) {
			if pin != c {
				return pin
			}
		}
		return -1
	}
	// prevFeeds reports whether some chain cell already leads into c —
	// if so, c is mid-chain and not a chain head.
	prevFeeds := func(c netlist.CellID) bool {
		var in netlist.NetID = -1
		p.EachInNet(c, func(n netlist.NetID) { in = n })
		if in < 0 || nl.NetSize(in) != 2 {
			return false
		}
		drv := nl.NetDrivers(in)
		return len(drv) == 1 && bufferish(drv[0]) && nextInChain(drv[0]) == c
	}

	var fs []Finding
	for ci := 0; ci < nl.NumCells(); ci++ {
		head := netlist.CellID(ci)
		if !bufferish(head) || prevFeeds(head) {
			continue
		}
		length := 1
		last := head
		for {
			s := nextInChain(last)
			if s < 0 || !bufferish(s) {
				break
			}
			last = s
			length++
		}
		if length >= p.Config().MinChain {
			fs = append(fs, p.GroupFinding(r, head,
				[]string{cellKey(nl, head), cellKey(nl, last)},
				fmt.Sprintf("buffer chain of %d cells from %s to %s",
					length, cellKey(nl, head), cellKey(nl, last))))
		}
	}
	return fs
}

func checkSizeOnly(r Rule, p *Pass) []Finding {
	var fs []Finding
	nl := p.Netlist()
	p.EachCell(func(c netlist.CellID) {
		if nl.CellDegree(c) == 0 {
			return // tombstones and unplaced spares are not findings
		}
		name := strings.ToLower(nl.CellName(c))
		if name == "" {
			return
		}
		for _, pat := range p.Config().SizeOnlyPatterns {
			if strings.Contains(name, pat) {
				fs = append(fs, p.CellFinding(r, c,
					fmt.Sprintf("cell %s is marked size-only", cellKey(nl, c))))
				return
			}
		}
	})
	return fs
}

func checkHighFanout(r Rule, p *Pass) []Finding {
	var fs []Finding
	nl := p.Netlist()
	max := p.Config().MaxFanout
	p.EachNet(func(n netlist.NetID) {
		if s := nl.NetSize(n); s >= max {
			fs = append(fs, p.NetFinding(r, n,
				fmt.Sprintf("net %s fans out to %d pins (threshold %d)",
					netKey(nl, n), s, max)))
		}
	})
	return fs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
